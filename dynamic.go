// Dynamic instances: versioned data with incremental version-space
// maintenance. An Instance is no longer frozen at load time — InsertRows /
// DeleteRows append a Delta to its log and return the next version, and
// ApplyDelta carries the expensive derived state (the T-classes and, via
// Session.ApplyUpdate, each live session's engine) onto that version
// incrementally, re-examining only what the delta can actually flip
// instead of recomputing the product. The maintained state is
// bit-identical to a rebuild from scratch on the new version (the
// differential suites check this at every layer), so dynamic and static
// instances are indistinguishable to everything downstream.
package joininference

import (
	"fmt"

	"repro/internal/inference"
	"repro/internal/policy"
	"repro/internal/predicate"
	"repro/internal/product"
	"repro/internal/relation"
	"repro/internal/semijoin"
)

// Delta is one batch of row changes against an instance version: rows to
// append to R and P, and live row indexes to delete. Apply one with
// Instance.ApplyDelta (or the InsertRows/DeleteRows shorthands), then lift
// it through the derived layers with the package-level ApplyDelta.
type Delta = relation.Delta

// ErrStaleVersion reports a delta applied to an instance version that is
// no longer the tip of its history.
var ErrStaleVersion = relation.ErrStaleVersion

// InstanceUpdate is one applied delta lifted to the T-class layer: the two
// instance versions, the delta between them, and the maintained class set
// for the new version. Live sessions move onto it with Session.ApplyUpdate;
// a shared PolicyCache migrates its memoized trees with
// PolicyCache.ApplyUpdate.
type InstanceUpdate struct {
	// From and To are the instance before and after the delta
	// (To.Version() == From.Version()+1).
	From, To *Instance
	// Delta is the applied change.
	Delta Delta
	// Classes are the new version's T-classes, maintained incrementally —
	// sessions built fresh on To with WithPrecomputedClasses(Classes) and
	// sessions carried over with ApplyUpdate see identical class state.
	Classes *ClassSet

	res        *product.DeltaResult
	oldClasses []*product.Class
	// maxKept memoizes the ⊆-maximal-set comparison the TD tree migration
	// needs (O(classes²), computed at most once per update).
	maxKept *bool
}

// ApplyDelta applies d to inst (which must be the tip of its version
// history) and incrementally maintains the T-classes, touching only the
// classes the delta's product pairs land in or vanish from. cs must be the
// classes of inst (from PrecomputeClasses or a previous update's Classes).
// Errors wrap ErrStaleVersion when inst is no longer the tip.
func ApplyDelta(inst *Instance, cs *ClassSet, d Delta) (*InstanceUpdate, error) {
	if cs == nil {
		return nil, fmt.Errorf("joininference: ApplyDelta needs the current version's classes")
	}
	next, err := inst.ApplyDelta(d)
	if err != nil {
		return nil, fmt.Errorf("joininference: %w", err)
	}
	u := predicate.NewUniverse(inst)
	dr, err := product.ApplyDelta(inst, next, u, cs.classes, d)
	if err != nil {
		return nil, fmt.Errorf("joininference: %w", err)
	}
	return &InstanceUpdate{
		From:       inst,
		To:         next,
		Delta:      d.Clone(),
		Classes:    &ClassSet{classes: dr.Classes},
		res:        dr,
		oldClasses: cs.classes,
	}, nil
}

// Version returns the instance version this update produced.
func (upd *InstanceUpdate) Version() int64 { return upd.To.Version() }

// ClassesMinted returns how many T-classes the delta created.
func (upd *InstanceUpdate) ClassesMinted() int { return len(upd.res.Added) }

// ClassesRetired returns how many T-classes the delta emptied.
func (upd *InstanceUpdate) ClassesRetired() int { return upd.res.Retired }

// ApplyUpdate moves a live session onto the updated instance version,
// maintaining its engine incrementally: only classes the delta minted or
// whose settledness the delta could have flipped are re-examined. The
// session afterwards asks bit-identical questions to one snapshotted on
// the old version and resumed on the new one — examples whose rows the
// delta deleted are dropped from the sample (widening the version space;
// budget allowance returns with them), everything else is untouched, and
// the RND stream position is preserved.
//
// The session must be on upd.From (ErrStaleVersion otherwise); updates
// must be applied in version order. For semijoin sessions, deleting P rows
// can orphan a positive answer (its last witness disappears) — that
// surfaces as ErrInconsistent and the session is left unchanged on the old
// version, for the caller to retire.
//
// Sessions with WithCustomStrategy see the maintained engine through their
// StrategyView on the next question; a custom strategy that memoized view
// state across calls is the caller's to refresh.
func (s *Session) ApplyUpdate(upd *InstanceUpdate) error {
	if upd == nil {
		return fmt.Errorf("joininference: nil instance update")
	}
	if s.inst != upd.From {
		return fmt.Errorf("joininference: session is on version %d, update starts at %d: %w",
			s.inst.Version(), upd.From.Version(), ErrStaleVersion)
	}
	if s.sj != nil {
		return s.semijoinApplyUpdate(upd)
	}
	if _, err := s.engine.ApplyDelta(upd.To, upd.res); err != nil {
		if err == inference.ErrInconsistent {
			return ErrInconsistent
		}
		return fmt.Errorf("joininference: %w", err)
	}
	s.inst = upd.To
	s.cfg.classes = upd.Classes
	s.asked = len(s.engine.Sample().Examples())
	// The strategy caches are instance-bound (TD memoizes the ⊆-maximal
	// set per engine, and the engine was mutated in place); drop them so
	// the next question re-derives against the new classes. RND re-seeds
	// and fast-forwards to rngMark, exactly as a snapshot resume would.
	s.strat, s.stratErr = nil, nil
	s.strats = make(map[StrategyID]inference.Strategy)
	s.classIdx = nil
	// Beliefs are keyed by class index; surviving classes carry their
	// evidence across the remap, retired classes lose it (their tuples are
	// gone, so the votes describe nothing).
	if s.soft != nil {
		s.soft.Remap(upd.res.Remap)
	}
	return nil
}

// semijoinApplyUpdate rebuilds the semijoin state against the new version:
// answers for deleted R rows are dropped, the witness-caching solver is
// rebuilt (its caches are instance-bound), and the surviving sample is
// re-checked for consistency — deletes in P can orphan a positive row.
// The session is mutated only on success.
func (s *Session) semijoinApplyUpdate(upd *InstanceUpdate) error {
	st := &semijoinState{
		u:       s.sj.u,
		solver:  semijoin.NewSolver(upd.To),
		labeled: make([]bool, upd.To.R.Len()),
	}
	for _, e := range s.sj.entries {
		if !upd.To.RAlive(e.RIndex) {
			continue
		}
		if e.Positive {
			st.sample.Pos = append(st.sample.Pos, e.RIndex)
		} else {
			st.sample.Neg = append(st.sample.Neg, e.RIndex)
		}
		st.labeled[e.RIndex] = true
		st.entries = append(st.entries, e)
	}
	theta, ok, err := st.solver.Consistent(st.sample)
	if err != nil {
		return fmt.Errorf("joininference: %w", err)
	}
	if !ok {
		return ErrInconsistent
	}
	st.current = theta
	st.valid = true
	s.sj = st
	s.inst = upd.To
	s.asked = len(st.entries)
	// Row indexes are stable across versions; only dead rows lose their
	// accumulated evidence.
	if s.soft != nil {
		s.soft.Drop(func(ri int) bool { return ri < upd.To.R.Len() && upd.To.RAlive(ri) })
	}
	return nil
}

// InstanceVersion returns the version of the instance the session currently
// runs over; ApplyUpdate advances it.
func (s *Session) InstanceVersion() int64 { return s.inst.Version() }

// PolicyInvalidation summarizes what one instance update did to a policy
// cache: how many of the old version's resident trees were migrated onto
// the new version's keys versus dropped wholesale, and the node counts
// carried over versus retired.
type PolicyInvalidation struct {
	TreesMigrated, TreesDropped int
	NodesMigrated, NodesRetired int
}

// ApplyUpdate migrates the cache's resident decision trees for instanceID
// across the update. Per strategy, exactly the subtrees the delta can have
// invalidated are retired and the rest are re-keyed onto the new instance
// version (trees are version-keyed, so a retired node is recomputed on
// demand and a stale one can never serve):
//
//   - BU and TD trees survive whenever the delta preserves the surviving
//     classes' canonical order (their picks scan classes in index order);
//     retired classes drop the nodes referencing them, minted classes
//     clear "scan exhausted" markers, and TD additionally requires the
//     ⊆-maximal class set to be unchanged (its pre-positive walk follows
//     it).
//   - RND trees survive only deltas that change no class indexes at all —
//     the draw depends on the informative-class count, which a minted or
//     retired class shifts.
//   - L1S/L2S trees additionally require no class count to have changed:
//     their picks weigh counts through the entropy lookahead.
//   - Semijoin ("⋉") trees are always dropped — their picks rest on
//     NP-complete witness scans over the very rows the delta changed.
func (pc *PolicyCache) ApplyUpdate(instanceID string, upd *InstanceUpdate) PolicyInvalidation {
	var inv PolicyInvalidation
	for _, k := range pc.c.Trees(instanceID, upd.From.Version()) {
		mig, ok := planMigration(k.Strategy, upd)
		if !ok {
			inv.NodesRetired += pc.c.Invalidate(k)
			inv.TreesDropped++
			continue
		}
		mig.Old = k
		mig.New = k
		mig.New.Version = upd.To.Version()
		m, r := pc.c.InvalidateSubtrees(mig)
		inv.TreesMigrated++
		inv.NodesMigrated += m
		inv.NodesRetired += r
	}
	return inv
}

// planMigration decides whether (and how) one strategy's decision tree
// survives the update; ok=false means no sound migration exists and the
// tree must be dropped.
func planMigration(strategyID string, upd *InstanceUpdate) (mig policy.Migration, ok bool) {
	res := upd.res
	minted := len(res.Added)
	identity := upd.identityRemap()
	switch strategyID {
	case string(StrategyBU), string(StrategyTD):
		// Both scan classes in index order; decisions survive exactly when
		// the surviving classes' relative order is intact and minted
		// classes sit past the old tail (so a resumed batch scan reaches
		// them). TD's pre-positive walk additionally follows the ⊆-maximal
		// set, which retirement can widen and minting can shrink.
		if !upd.orderPreserved() {
			return policy.Migration{}, false
		}
		if strategyID == string(StrategyTD) && (minted > 0 || res.Retired > 0) && !upd.maximalPreserved() {
			return policy.Migration{}, false
		}
		mig.DropDone = minted > 0
		if !identity {
			mig.Remap = res.Remap
		}
		return mig, true
	case string(StrategyRND):
		return policy.Migration{}, identity && minted == 0
	case string(StrategyL1S), string(StrategyL2S):
		return policy.Migration{}, identity && minted == 0 && !res.CountChanged
	default:
		// Semijoin trees ("⋉") and unknown strategies: drop.
		return policy.Migration{}, false
	}
}

// identityRemap reports that every old class kept its index (which implies
// minted classes, if any, took fresh tail indexes).
func (upd *InstanceUpdate) identityRemap() bool {
	for i, ni := range upd.res.Remap {
		if ni != i {
			return false
		}
	}
	return true
}

// orderPreserved reports that surviving classes kept their relative
// canonical order and minted classes all sit after them — the condition
// under which index-order scans resume correctly through a remap.
func (upd *InstanceUpdate) orderPreserved() bool {
	last := -1
	for _, ni := range upd.res.Remap {
		if ni < 0 {
			continue
		}
		if ni <= last {
			return false
		}
		last = ni
	}
	survivors := len(upd.res.Remap) - upd.res.Retired
	for _, a := range upd.res.Added {
		if a < survivors {
			return false
		}
	}
	return true
}

// maximalPreserved reports that the update maps the old ⊆-maximal class
// set exactly onto the new one: every old maximal class survives and stays
// maximal, and nothing else became maximal. Memoized — the check is
// O(classes²) subset tests.
func (upd *InstanceUpdate) maximalPreserved() bool {
	if upd.maxKept == nil {
		v := computeMaximalPreserved(upd)
		upd.maxKept = &v
	}
	return *upd.maxKept
}

func computeMaximalPreserved(upd *InstanceUpdate) bool {
	oldMax := maximalIdx(upd.oldClasses)
	newMax := maximalIdx(upd.res.Classes)
	if len(oldMax) != len(newMax) {
		return false
	}
	img := make(map[int]bool, len(oldMax))
	for _, oi := range oldMax {
		ni := upd.res.Remap[oi]
		if ni < 0 {
			return false
		}
		img[ni] = true
	}
	for _, ni := range newMax {
		if !img[ni] {
			return false
		}
	}
	return true
}

// maximalIdx returns the indexes of the ⊆-maximal classes, in class order
// (mirroring the TD strategy's walk order).
func maximalIdx(cs []*product.Class) []int {
	var out []int
	for i, c := range cs {
		maximal := true
		for j, d := range cs {
			if i != j && c.Theta.Set.ProperSubsetOf(d.Theta.Set) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, i)
		}
	}
	return out
}

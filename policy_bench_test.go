package joininference

import (
	"context"
	"testing"

	"repro/internal/synth"
)

// BenchmarkPolicyCache measures the serving win of the shared policy-tree
// cache: full inference sessions (honest oracle, questions fetched one per
// round like the Run loop a server drives) over one instance, uncached
// versus served from a warm cache. The workload is a lookahead strategy —
// the case the cache exists for, since L2S recomputes an entropy^K sweep
// per question — on the paper's Figure 7 synthetic configuration (3, 3,
// 100, 100). The custom metric is questions served per second; the warm
// number is what a popular instance sustains once its tree is resident.
// BENCH_policy.json records a reference run.
func BenchmarkPolicyCache(b *testing.B) {
	inst, err := synth.Generate(synth.Config{AttrsR: 3, AttrsP: 3, Rows: 100, Values: 100}, 1)
	if err != nil {
		b.Fatal(err)
	}
	classes := PrecomputeClasses(inst)
	u := NewSession(inst, WithPrecomputedClasses(classes)).Universe()
	goal, err := PredFromNames(u, [2]string{"A1", "B1"})
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range []StrategyID{StrategyL1S, StrategyL2S} {
		base := []Option{WithStrategy(id), WithPrecomputedClasses(classes)}
		serve := func(b *testing.B, opts []Option) {
			b.Helper()
			total := 0
			for i := 0; i < b.N; i++ {
				s := NewSession(inst, opts...)
				res, err := Run(context.Background(), s, HonestOracle(goal))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Determined {
					b.Fatal("session did not converge")
				}
				total += res.Questions
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "questions/s")
		}
		b.Run(string(id)+"/uncached", func(b *testing.B) {
			serve(b, base)
		})
		b.Run(string(id)+"/warm", func(b *testing.B) {
			cache := NewPolicyCache(64 << 20)
			opts := append(append([]Option(nil), base...), WithPolicyCache(cache, "bench"))
			// One full session populates the tree outside the timer.
			if _, err := Run(context.Background(), NewSession(inst, opts...), HonestOracle(goal)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			serve(b, opts)
		})
	}
}

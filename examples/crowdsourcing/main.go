// Crowdsourcing: the paper motivates minimizing interactions by
// crowdsourcing costs — every label is a paid microtask. This example
// compares what each strategy would cost to join two product catalogs
// (same entities, different vendors, no shared keys), pricing every
// question and exploiting T-class grouping (one answer can decide many
// equivalent pairs at once). It then simulates *unreliable* workers with
// the reliability-weighted oracle: named workers accumulate Beta-posterior
// accuracy estimates, votes are weighted by estimated reliability, and the
// soft session absorbs wrong answers within an error budget instead of
// failing. The inferred predicate comes with a Banzhaf-style explanation —
// which answers actually determined it. Finally questions dispatch in
// parallel batches: NextQuestions(ctx, k) returns pairwise-informative
// questions, so a whole batch can be posted to the crowd at once and every
// answer that comes back still carries information.
//
// Run with:
//
//	go run ./examples/crowdsourcing
package main

import (
	"context"
	"fmt"
	"log"

	joininference "repro"
)

const centsPerQuestion = 5 // a typical microtask price

func main() {
	ctx := context.Background()
	vendorA, vendorB := catalogs()
	inst, err := joininference.NewInstance(vendorA, vendorB)
	if err != nil {
		log.Fatal(err)
	}
	classes := joininference.PrecomputeClasses(inst)
	session := joininference.NewSession(inst, joininference.WithPrecomputedClasses(classes))
	u := session.Universe()

	// Ground truth the crowd implicitly knows: products match when the
	// manufacturer code and the model year both agree.
	goal, err := joininference.PredFromNames(u,
		[2]string{"MfrCode", "Maker"}, [2]string{"Year", "ModelYear"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Catalog A: %d rows; catalog B: %d rows; %d candidate pairs, %d classes.\n",
		vendorA.Len(), vendorB.Len(), inst.ProductSize(), session.Classes())
	fmt.Printf("Target mapping: %s\n\n", goal.Format(u))
	fmt.Println("Crowd cost per strategy (5¢ per labeled pair):")

	for _, id := range []joininference.StrategyID{
		joininference.StrategyRND, joininference.StrategyBU,
		joininference.StrategyTD, joininference.StrategyL1S,
		joininference.StrategyL2S,
	} {
		s := joininference.NewSession(inst,
			joininference.WithStrategy(id),
			joininference.WithPrecomputedClasses(classes))
		res, err := joininference.Run(ctx, s, joininference.HonestOracle(goal))
		if err != nil {
			log.Fatal(err)
		}
		match := "✓"
		if len(joininference.Join(inst, res.Inferred)) != len(joininference.Join(inst, goal)) {
			match = "✗"
		}
		fmt.Printf("  %-3s: %2d questions → $%.2f  result %s %s\n",
			id, res.Questions, float64(res.Questions*centsPerQuestion)/100,
			match, res.Inferred.Format(u))
	}
	fmt.Println("\nEvery strategy recovers the mapping; the lookahead ones pay the crowd least.")

	noisyCrowd(ctx, inst, classes, goal)
	batchDispatch(ctx, inst, classes, goal)
}

// noisyCrowd reruns the inference through a named worker pool with
// per-worker reliability tracking: a careful worker, two sloppy ones, and
// one outright adversarial. Votes are weighted by each worker's
// Beta-posterior accuracy, the soft session commits a label only once
// belief clears the threshold, and up to three wrong commits can be
// retracted instead of aborting the run. The commit/retraction events feed
// the posteriors, so the adversary is identified and down-weighted.
func noisyCrowd(ctx context.Context, inst *joininference.Instance,
	classes *joininference.ClassSet, goal joininference.Pred) {
	workers := []joininference.WorkerSpec{
		{ID: "alice", ErrorRate: 0.05},
		{ID: "bob", ErrorRate: 0.25},
		{ID: "carol", ErrorRate: 0.25},
		{ID: "mallory", ErrorRate: 0.05, Adversarial: true},
	}
	fmt.Println("\nNow with a tracked worker pool (reliability-weighted votes, 4 votes/round):")
	for _, w := range workers {
		role := fmt.Sprintf("honest, %.0f%% error rate", w.ErrorRate*100)
		if w.Adversarial {
			role = "adversarial (answers inverted)"
		}
		fmt.Printf("  %-8s %s\n", w.ID, role)
	}
	crowd, err := joininference.ReliabilityOracle(
		joininference.HonestOracle(goal), workers, 4, centsPerQuestion, 11)
	if err != nil {
		log.Fatal(err)
	}
	s := joininference.NewSession(inst,
		joininference.WithStrategy(joininference.StrategyTD),
		joininference.WithPrecomputedClasses(classes),
		joininference.WithSoftInference(2),
		joininference.WithErrorBudget(3))
	res, err := joininference.Run(ctx, s, crowd)
	if err != nil {
		log.Fatal(err)
	}
	match := "✓"
	if len(joininference.Join(inst, res.Inferred)) != len(joininference.Join(inst, goal)) {
		match = "✗"
	}
	stats := s.SoftStats()
	fmt.Printf("Inferred %s %s after %d questions (%d microtasks, $%.2f, %d retraction(s)).\n",
		match, res.Inferred.Format(s.Universe()), s.Questions(),
		crowd.Microtasks(), crowd.TotalCost()/100, stats.Retractions)

	fmt.Println("Learned worker reliabilities (Beta-posterior accuracy):")
	for _, r := range crowd.Reliabilities() {
		fmt.Printf("  %-8s %.2f  (%d agreed / %d graded)\n",
			r.Worker, r.Accuracy, r.Correct, r.Correct+r.Wrong)
	}

	fmt.Println("Why this join? Banzhaf attribution of the committed answers:")
	for _, a := range s.Explain() {
		label := "No "
		if a.Positive {
			label = "Yes"
		}
		critical := ""
		if a.Critical {
			critical = "  [critical]"
		}
		fmt.Printf("  pair (R[%d], P[%d]) → %s  score %.2f%s\n",
			a.Ref.RIndex, a.Ref.PIndex, label, a.Score, critical)
	}
	fmt.Println("High-score answers carried the inference; score-0 answers were redundant.")
}

// batchDispatch shows the parallel deployment: instead of one question per
// round trip to the crowd platform, ask for up to 3 pairwise-informative
// questions per round, post them all, and fold the answers back in with
// AnswerBatch.
func batchDispatch(ctx context.Context, inst *joininference.Instance,
	classes *joininference.ClassSet, goal joininference.Pred) {
	const batch = 3
	fmt.Printf("\nParallel dispatch (%d pairwise-informative questions per crowd round):\n", batch)
	panel, err := joininference.CrowdOracle(joininference.HonestOracle(goal), 5, 0.1, centsPerQuestion, 7)
	if err != nil {
		log.Fatal(err)
	}
	s := joininference.NewSession(inst,
		joininference.WithStrategy(joininference.StrategyL1S),
		joininference.WithPrecomputedClasses(classes))
	rounds := 0
	for {
		qs, err := s.NextQuestions(ctx, batch)
		if err != nil {
			log.Fatal(err)
		}
		if len(qs) == 0 {
			break
		}
		rounds++
		// One round trip: every question goes to its own worker panel in
		// parallel.
		labels := make([]joininference.Label, len(qs))
		for i, q := range qs {
			labels[i], err = panel.Label(ctx, q)
			if err != nil {
				log.Fatal(err)
			}
		}
		applied, err := s.AnswerBatch(qs, labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  round %d: dispatched %d questions, %d informative answers\n",
			rounds, len(qs), applied)
	}
	u := s.Universe()
	fmt.Printf("Converged in %d crowd rounds (%d questions, %d microtasks, $%.2f): %s\n",
		rounds, s.Questions(), panel.Microtasks(), panel.TotalCost()/100,
		s.Inferred().Format(u))
}

func catalogs() (*joininference.Relation, *joininference.Relation) {
	aSchema, err := joininference.NewSchema("CatalogA",
		"SKU", "MfrCode", "Year", "PriceUSD")
	if err != nil {
		log.Fatal(err)
	}
	a := joininference.NewRelation(aSchema)
	a.MustAddTuple("A-100", "ACME", "2019", "149")
	a.MustAddTuple("A-101", "ACME", "2021", "199")
	a.MustAddTuple("A-102", "GLOBX", "2019", "99")
	a.MustAddTuple("A-103", "GLOBX", "2023", "129")
	a.MustAddTuple("A-104", "INITE", "2021", "349")
	a.MustAddTuple("A-105", "INITE", "2023", "399")

	bSchema, err := joininference.NewSchema("CatalogB",
		"ItemNo", "Maker", "ModelYear", "ListPrice")
	if err != nil {
		log.Fatal(err)
	}
	b := joininference.NewRelation(bSchema)
	b.MustAddTuple("7001", "ACME", "2019", "155")
	b.MustAddTuple("7002", "ACME", "2021", "199") // price collides with A-101
	b.MustAddTuple("7003", "GLOBX", "2019", "95")
	b.MustAddTuple("7004", "GLOBX", "2023", "129") // price collides with A-103
	b.MustAddTuple("7005", "INITE", "2021", "349")
	b.MustAddTuple("7006", "INITE", "2023", "2023") // price collides with year!
	return a, b
}

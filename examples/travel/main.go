// Travel: the paper's introductory scenario (Figures 1–2). A travel agent
// builds flight & hotel packages; two plausible queries exist (Q1: match
// destination city; Q2: additionally match the discount airline) and the
// session distinguishes them with a handful of labels, comparing every
// strategy through the Run/Oracle API.
//
// Run with:
//
//	go run ./examples/travel
package main

import (
	"context"
	"fmt"
	"log"

	joininference "repro"
)

func buildInstance() *joininference.Instance {
	flightSchema, err := joininference.NewSchema("Flight", "From", "To", "Airline")
	if err != nil {
		log.Fatal(err)
	}
	flight := joininference.NewRelation(flightSchema)
	flight.MustAddTuple("Paris", "Lille", "AF")
	flight.MustAddTuple("Lille", "NYC", "AA")
	flight.MustAddTuple("NYC", "Paris", "AA")
	flight.MustAddTuple("Paris", "NYC", "AF")

	hotelSchema, err := joininference.NewSchema("Hotel", "City", "Discount")
	if err != nil {
		log.Fatal(err)
	}
	hotel := joininference.NewRelation(hotelSchema)
	hotel.MustAddTuple("NYC", "AA")
	hotel.MustAddTuple("Paris", "None")
	hotel.MustAddTuple("Lille", "AF")

	inst, err := joininference.NewInstance(flight, hotel)
	if err != nil {
		log.Fatal(err)
	}
	return inst
}

func main() {
	inst := buildInstance()
	// Share the product scan across all the sessions below.
	classes := joininference.PrecomputeClasses(inst)
	u := joininference.NewSession(inst, joininference.WithPrecomputedClasses(classes)).Universe()

	q1, err := joininference.PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		log.Fatal(err)
	}
	q2, err := joininference.PredFromNames(u,
		[2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The travel agent may want:")
	fmt.Printf("  Q1: %s  (%d packages)\n", q1.Format(u), len(joininference.Join(inst, q1)))
	fmt.Printf("  Q2: %s  (%d packages)\n", q2.Format(u), len(joininference.Join(inst, q2)))
	fmt.Println()

	ctx := context.Background()
	strategies := []joininference.StrategyID{
		joininference.StrategyBU, joininference.StrategyTD,
		joininference.StrategyL1S, joininference.StrategyL2S,
		joininference.StrategyRND,
	}
	for _, goal := range []struct {
		name string
		pred joininference.Pred
	}{{"Q1", q1}, {"Q2", q2}} {
		fmt.Printf("Inferring %s:\n", goal.name)
		for _, id := range strategies {
			session := joininference.NewSession(inst,
				joininference.WithStrategy(id),
				joininference.WithPrecomputedClasses(classes))
			res, err := joininference.Run(ctx, session, joininference.HonestOracle(goal.pred))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-3s: %2d questions → %s\n", id, res.Questions, res.Inferred.Format(u))
		}
		fmt.Println()
	}
}

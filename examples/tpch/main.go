// TPC-H: run the paper's Section 5.1 scenario end to end — generate the
// mini TPC-H database, then infer each of the five key/foreign-key goal
// joins with the top-down strategy through the Run/Oracle API, reporting
// interactions, timing and the instance's join ratio.
//
// Run with:
//
//	go run ./examples/tpch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	joininference "repro"
	"repro/internal/tpch"
)

func main() {
	data, err := tpch.Generate(1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Mini TPC-H generated: Part", data.Part.Len(), "| Supplier", data.Supplier.Len(),
		"| PartSupp", data.PartSupp.Len(), "| Customer", data.Customer.Len(),
		"| Orders", data.Orders.Len(), "| Lineitem", data.Lineitem.Len())
	fmt.Println()

	ctx := context.Background()
	for _, j := range tpch.AllJoins() {
		inst, goal, err := data.Instance(j)
		if err != nil {
			log.Fatal(err)
		}
		session := joininference.NewSession(inst,
			joininference.WithStrategy(joininference.StrategyTD))
		u := session.Universe()

		start := time.Now()
		res, err := joininference.Run(ctx, session, joininference.HonestOracle(goal))
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		fmt.Printf("%s: %s × %s  (|D| = %d, join ratio %.3f)\n",
			j, inst.R.Schema.Name, inst.P.Schema.Name,
			inst.ProductSize(), joininference.JoinRatio(inst))
		fmt.Printf("  goal:     %s\n", goal.Format(u))
		fmt.Printf("  inferred: %s\n", res.Inferred.Format(u))
		fmt.Printf("  %d questions in %v\n\n", res.Questions, elapsed.Round(time.Microsecond))
	}
}

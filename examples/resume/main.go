// Resume: snapshot an inference session mid-run, "crash", and continue it
// in a fresh session — asking bit-identical remaining questions and
// arriving at the same predicate an uninterrupted session would have.
// This is the in-process core of what cmd/joinserve does across process
// lifetimes with -persist-dir.
//
// Run with:
//
//	go run ./examples/resume
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	joininference "repro"
)

func main() {
	inst, goal := travelInstance()
	u := joininference.NewSession(inst).Universe()
	oracle := joininference.HonestOracle(goal)
	ctx := context.Background()
	opts := []joininference.Option{
		joininference.WithStrategy(joininference.StrategyL2S),
		joininference.WithSeed(7),
	}

	// Phase 1: a user answers two questions, then walks away.
	session := joininference.NewSession(inst, opts...)
	fmt.Println("— day 1 —")
	for i := 0; i < 2; i++ {
		askOne(ctx, session, oracle, u)
	}

	// Park the session as a small JSON document (a file, a row in a DB,
	// an HTTP response — anywhere).
	snap, err := session.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	var parked bytes.Buffer
	if err := snap.Encode(&parked); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot after %d answers (%d bytes of JSON):\n%s\n",
		snap.Asked, parked.Len(), parked.String())

	// Phase 2: days later, a new process resumes and finishes the run.
	restored, err := joininference.DecodeSnapshot(&parked)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := joininference.ResumeSession(inst, restored)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— day 2 (resumed) —")
	for !resumed.Done() {
		askOne(ctx, resumed, oracle, u)
	}

	fmt.Printf("\ninferred after %d total questions: %s\n",
		resumed.Questions(), resumed.Inferred().Format(u))
	fmt.Printf("goal was:                            %s\n", goal.Format(u))
}

// askOne fetches the next question, prints it, and answers it honestly.
func askOne(ctx context.Context, s *joininference.Session, o joininference.Oracle, u *joininference.Universe) {
	qs, err := s.NextQuestions(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	if len(qs) == 0 {
		return
	}
	l, err := o.Label(ctx, qs[0])
	if err != nil {
		log.Fatal(err)
	}
	answer := "No"
	if bool(l) {
		answer = "Yes"
	}
	fmt.Printf("  join %v with %v? %s\n", qs[0].RTuple, qs[0].PTuple, answer)
	if err := s.Answer(qs[0], l); err != nil {
		log.Fatal(err)
	}
}

// travelInstance builds the paper's running flight/hotel example.
func travelInstance() (*joininference.Instance, joininference.Pred) {
	fs, err := joininference.NewSchema("Flight", "From", "To", "Airline")
	if err != nil {
		log.Fatal(err)
	}
	flights := joininference.NewRelation(fs)
	flights.MustAddTuple("Paris", "Lille", "AF")
	flights.MustAddTuple("Paris", "NYC", "AA")
	flights.MustAddTuple("NYC", "Paris", "AA")

	hs, err := joininference.NewSchema("Hotel", "City", "Discount")
	if err != nil {
		log.Fatal(err)
	}
	hotels := joininference.NewRelation(hs)
	hotels.MustAddTuple("Paris", "AF")
	hotels.MustAddTuple("NYC", "AA")
	hotels.MustAddTuple("Lille", "AF")

	inst, err := joininference.NewInstance(flights, hotels)
	if err != nil {
		log.Fatal(err)
	}
	u := joininference.NewSession(inst).Universe()
	goal, err := joininference.PredFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if err != nil {
		log.Fatal(err)
	}
	return inst, goal
}

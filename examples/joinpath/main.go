// Joinpath: infer a multi-relation join path (the paper's Section 7
// future-work direction) — Customer → Orders → Lineitem over the mini
// TPC-H database, one pairwise inference per step.
//
// Run with:
//
//	go run ./examples/joinpath
package main

import (
	"fmt"
	"log"

	"repro/internal/inference"
	"repro/internal/joinpath"
	"repro/internal/predicate"
	"repro/internal/strategy"
	"repro/internal/tpch"
)

func main() {
	data, err := tpch.Generate(1, 42)
	if err != nil {
		log.Fatal(err)
	}
	path, err := joinpath.NewPath(data.Customer, data.Orders, data.Lineitem)
	if err != nil {
		log.Fatal(err)
	}

	// The goal the simulated user has in mind: the FK chain
	// Customer.Custkey = Orders.OCustkey ⋈ Orders.Orderkey = Lineitem.LOrderkey.
	goal := make(joinpath.Goal, path.Steps())
	_, u0 := path.Step(0)
	goal[0] = predicate.MustFromNames(u0, [2]string{"Custkey", "OCustkey"})
	_, u1 := path.Step(1)
	goal[1] = predicate.MustFromNames(u1, [2]string{"Orderkey", "LOrderkey"})

	fmt.Println("Inferring the 3-relation join path Customer ⋈ Orders ⋈ Lineitem")
	fmt.Println("goal:", joinpath.Format(path, goal))
	fmt.Println()

	res, err := joinpath.Infer(path,
		func() inference.Strategy { return strategy.NewTopDown() },
		&joinpath.GoalOracle{Path: path, Goal: goal})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("inferred: %s\n", joinpath.Format(path, res.Preds))
	fmt.Printf("questions: %d total (%v per step)\n", res.Interactions, res.PerStep)

	want, err := joinpath.Eval(path, goal)
	if err != nil {
		log.Fatal(err)
	}
	got, err := joinpath.Eval(path, res.Preds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path join rows: %d (goal) vs %d (inferred)\n", len(want), len(got))
}

// Joinpath: infer a multi-relation join path (the paper's Section 7
// future-work direction) — Customer → Orders → Lineitem over the mini
// TPC-H database, one pairwise public-API session per step.
//
// Run with:
//
//	go run ./examples/joinpath
package main

import (
	"context"
	"fmt"
	"log"

	joininference "repro"
	"repro/internal/joinpath"
	"repro/internal/tpch"
)

func main() {
	data, err := tpch.Generate(1, 42)
	if err != nil {
		log.Fatal(err)
	}
	path, err := joinpath.NewPath(data.Customer, data.Orders, data.Lineitem)
	if err != nil {
		log.Fatal(err)
	}

	// The goal the simulated user has in mind: the FK chain
	// Customer.Custkey = Orders.OCustkey ⋈ Orders.Orderkey = Lineitem.LOrderkey.
	goal := make(joinpath.Goal, path.Steps())
	_, u0 := path.Step(0)
	goal[0] = mustPred(u0, [2]string{"Custkey", "OCustkey"})
	_, u1 := path.Step(1)
	goal[1] = mustPred(u1, [2]string{"Orderkey", "LOrderkey"})

	fmt.Println("Inferring the 3-relation join path Customer ⋈ Orders ⋈ Lineitem")
	fmt.Println("goal:", joinpath.Format(path, goal))
	fmt.Println()

	// One public session per step: the path decomposes into pairwise
	// inferences, each driven by Run against an honest oracle.
	ctx := context.Background()
	inferred := make(joinpath.Goal, path.Steps())
	perStep := make([]int, path.Steps())
	total := 0
	for i := 0; i < path.Steps(); i++ {
		inst, _ := path.Step(i)
		session := joininference.NewSession(inst,
			joininference.WithStrategy(joininference.StrategyTD))
		res, err := joininference.Run(ctx, session, joininference.HonestOracle(goal[i]))
		if err != nil {
			log.Fatal(err)
		}
		inferred[i] = res.Inferred
		perStep[i] = res.Questions
		total += res.Questions
	}

	fmt.Printf("inferred: %s\n", joinpath.Format(path, inferred))
	fmt.Printf("questions: %d total (%v per step)\n", total, perStep)

	want, err := joinpath.Eval(path, goal)
	if err != nil {
		log.Fatal(err)
	}
	got, err := joinpath.Eval(path, inferred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path join rows: %d (goal) vs %d (inferred)\n", len(want), len(got))
}

func mustPred(u *joininference.Universe, pairs ...[2]string) joininference.Pred {
	p, err := joininference.PredFromNames(u, pairs...)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

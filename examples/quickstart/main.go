// Quickstart: infer a join predicate over two tiny in-memory tables with a
// simulated user, using only the public API: a session configured with
// functional options, driven question by question against an Oracle.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	joininference "repro"
)

func main() {
	// Build two relations: employees and departments, with no declared
	// foreign keys — the library does not need them.
	empSchema, err := joininference.NewSchema("Emp", "EmpID", "Name", "DeptID")
	if err != nil {
		log.Fatal(err)
	}
	emp := joininference.NewRelation(empSchema)
	emp.MustAddTuple("1", "Ada", "10")
	emp.MustAddTuple("2", "Grace", "20")
	emp.MustAddTuple("3", "Edsger", "10")
	emp.MustAddTuple("4", "Barbara", "30")

	deptSchema, err := joininference.NewSchema("Dept", "DID", "DeptName", "Floor")
	if err != nil {
		log.Fatal(err)
	}
	dept := joininference.NewRelation(deptSchema)
	dept.MustAddTuple("10", "Databases", "1")
	dept.MustAddTuple("20", "Systems", "2")
	dept.MustAddTuple("30", "Theory", "3")

	inst, err := joininference.NewInstance(emp, dept)
	if err != nil {
		log.Fatal(err)
	}

	// The "user" has Emp.DeptID = Dept.DID in mind but cannot write it.
	session := joininference.NewSession(inst,
		joininference.WithStrategy(joininference.StrategyL2S))
	goal, err := joininference.PredFromNames(session.Universe(), [2]string{"DeptID", "DID"})
	if err != nil {
		log.Fatal(err)
	}
	user := joininference.HonestOracle(goal)

	fmt.Printf("Cartesian product: %d pairs, %d equivalence classes\n\n",
		inst.ProductSize(), session.Classes())

	ctx := context.Background()
	for {
		qs, err := session.NextQuestions(ctx, 1)
		if err != nil {
			log.Fatal(err)
		}
		if len(qs) == 0 {
			break
		}
		q := qs[0]
		label, err := user.Label(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q%d: pair %v with %v?  user says %v\n",
			session.Questions()+1, q.RTuple, q.PTuple, label)
		if err := session.Answer(q, label); err != nil {
			log.Fatal(err)
		}
	}

	theta := session.Inferred()
	fmt.Printf("\nInferred after %d questions:\n  %s\n",
		session.Questions(), theta.Format(session.Universe()))
	fmt.Printf("Join result: %d pairs (goal selects %d)\n",
		len(joininference.Join(inst, theta)), len(joininference.Join(inst, goal)))
}

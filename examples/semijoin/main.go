// Semijoin: demonstrate Section 6 — consistency checking for semijoin
// predicates is NP-complete. The example (1) solves a small semijoin
// consistency instance through the public API, (2) runs the interactive
// semijoin heuristic through the same Run/Oracle surface as join
// inference, and (3) encodes a 3SAT formula as a CONS⋉ instance via the
// Appendix A.1 reduction and solves it both ways, showing the round trip
// formula → database → predicate → satisfying valuation.
//
// Run with:
//
//	go run ./examples/semijoin
package main

import (
	"context"
	"fmt"
	"log"

	joininference "repro"
	"repro/internal/paperdata"
	"repro/internal/semijoin"
)

func main() {
	// Part 1: the Section 6 example on the Example 2.1 instance.
	inst := paperdata.Example21()
	u := joininference.NewSemijoinSession(inst).Universe()
	s := joininference.SemijoinSample{Keep: []int{0, 1}, Drop: []int{2}} // S'+ = {t1,t2}, S'− = {t3}

	theta, ok, err := joininference.SemijoinConsistent(inst, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Semijoin sample over Example 2.1: t1,t2 must be kept, t3 dropped.")
	if ok {
		fmt.Printf("Consistent — witness predicate: %s\n", theta.Format(u))
		fmt.Printf("R ⋉θ P selects R-tuples %v\n\n", joininference.SemijoinEval(inst, theta))
	} else {
		fmt.Println("Inconsistent.")
	}

	// Part 2: interactive semijoin inference through the unified session
	// API — the same Run/Oracle loop as join inference, but every
	// informativeness test pays the NP-complete CONS⋉ price.
	goal, err := joininference.PredFromNames(u, [2]string{"A1", "B2"})
	if err != nil {
		log.Fatal(err)
	}
	session := joininference.NewSemijoinSession(inst)
	res, err := joininference.Run(context.Background(), session, joininference.HonestOracle(goal))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Interactive semijoin inference of %s: %d questions, inferred %s (keeps rows %v)\n\n",
		goal.Format(u), res.Questions, res.Inferred.Format(u),
		joininference.SemijoinEval(inst, res.Inferred))

	// Part 3: the NP-hardness reduction on the appendix formula
	// ϕ0 = (x1 ∨ x2 ∨ ¬x3) ∧ (¬x1 ∨ x3 ∨ x4).
	phi := semijoin.Formula{NumVars: 4, Clauses: []semijoin.Clause{
		{1, 2, -3},
		{-1, 3, 4},
	}}
	red, err := semijoin.Reduce(phi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Reduced ϕ0 to a CONS⋉ instance: R has %d rows × %d attrs, P has %d rows × %d attrs, Ω has %d pairs.\n",
		red.Instance.R.Len(), red.Instance.R.Schema.Arity(),
		red.Instance.P.Len(), red.Instance.P.Schema.Arity(), red.U.Size())

	thetaPhi, consistent, err := semijoin.Consistent(red.Instance, red.Sample)
	if err != nil {
		log.Fatal(err)
	}
	assign, sat := phi.Solve()
	fmt.Printf("CONS⋉ says consistent=%v; DPLL says satisfiable=%v\n", consistent, sat)
	if consistent {
		v := red.DecodeValuation(thetaPhi)
		fmt.Printf("Valuation decoded from the predicate: x1=%v x2=%v x3=%v x4=%v (satisfies ϕ0: %v)\n",
			v[1], v[2], v[3], v[4], phi.Satisfies(v))
	}
	if sat {
		enc, err := red.EncodeValuation(assign)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Predicate encoded from DPLL's model has %d pairs and is consistent with the sample.\n",
			enc.Size())
	}
}

package joininference

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/paperdata"
)

func runSession(t *testing.T, goalText string) (*Session, Pred) {
	t.Helper()
	inst := paperdata.FlightHotel()
	s := NewSession(inst)
	goal, err := ParsePredicate(s.Universe(), goalText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), s, HonestOracle(goal)); err != nil {
		t.Fatal(err)
	}
	return s, goal
}

func TestTranscriptRoundTrip(t *testing.T) {
	s, _ := runSession(t, "Flight.To = Hotel.City")
	if len(s.Transcript()) != s.Questions() {
		t.Fatalf("transcript has %d entries, %d questions asked",
			len(s.Transcript()), s.Questions())
	}

	var buf bytes.Buffer
	if err := s.SaveTranscript(&buf); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayTranscript(paperdata.FlightHotel(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Inferred().Equal(s.Inferred()) {
		t.Errorf("replayed predicate %v ≠ original %v",
			replayed.Inferred(), s.Inferred())
	}
	if !replayed.Done() {
		t.Error("replayed session should be done")
	}
}

func TestReplayErrors(t *testing.T) {
	inst := paperdata.FlightHotel()
	if _, err := ReplayTranscript(inst, strings.NewReader("not json")); err == nil {
		t.Error("garbage transcript accepted")
	}
	if _, err := ReplayTranscript(inst, strings.NewReader(`{"r":99,"p":0,"positive":true}`)); err == nil {
		t.Error("out-of-range entry accepted")
	}
	// Inconsistent transcript: label the same class-equivalent information
	// contradictorily. (3)=(Paris→Lille AF, Lille AF) positive then a
	// contradiction via an impossible mix: everything positive then one
	// negative of a tuple made certain positive.
	bad := `{"r":0,"p":1,"positive":true}
{"r":0,"p":0,"positive":true}
{"r":2,"p":2,"positive":false}
`
	// T(S+) after the two positives may make the third certain — if its
	// class is undecided and the label contradicts, we must get an error;
	// if the entry is skipped as decided, replay succeeds. Either way no
	// panic and a valid session or error.
	if s, err := ReplayTranscript(inst, strings.NewReader(bad)); err == nil && s == nil {
		t.Error("nil session without error")
	}
}

func TestReplaySkipsDecidedDuplicates(t *testing.T) {
	// The same entry twice: second occurrence must be skipped silently.
	two := `{"r":0,"p":2,"positive":true}
{"r":0,"p":2,"positive":true}
`
	s, err := ReplayTranscript(paperdata.FlightHotel(), strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	if s.Questions() != 1 {
		t.Errorf("questions = %d, want 1 (duplicate skipped)", s.Questions())
	}
}

func TestSQLFacade(t *testing.T) {
	s, goal := runSession(t, "Flight.To = Hotel.City")
	sql := SQL(s.Universe(), goal, false, false)
	if !strings.Contains(sql, `JOIN "Hotel"`) {
		t.Errorf("SQL = %q", sql)
	}
	semi := SQL(s.Universe(), goal, true, true)
	if !strings.Contains(semi, "EXISTS") {
		t.Errorf("semijoin SQL = %q", semi)
	}
}

func TestParsePredicateFacade(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	p, err := ParsePredicate(u, "To = City")
	if err != nil || p.Size() != 1 {
		t.Errorf("ParsePredicate: %v, size %d", err, p.Size())
	}
	if _, err := ParsePredicate(u, "garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

package joininference

import (
	"context"
	"testing"

	"repro/internal/synth"
)

// BenchmarkNoise measures what the soft layer costs on top of the exact
// engine. Two axes, recorded in BENCH_noise.json:
//
//	hard / soft-clean    full honest BU inference at Fig-7 scale
//	                     (synth (3, 3, 100, 100)): identical question
//	                     sequences — the differential suites prove it — so
//	                     the gap is pure belief bookkeeping overhead.
//	batch-honest /       batched feed-all runs on the cold-path fixture
//	batch-recovery       (synth (9, 8, 5, 3)); recovery plants a wrong
//	                     answer at position 1, which triggers the
//	                     retraction search and two replay rebuilds — the
//	                     gap is the cost of absorbing an error instead of
//	                     failing with ErrInconsistent.
func BenchmarkNoise(b *testing.B) {
	ctx := context.Background()

	runHonest := func(b *testing.B, s *Session, goal Pred) {
		b.Helper()
		oracle := HonestOracle(goal)
		for {
			qs, err := s.NextQuestions(ctx, 1)
			if err != nil {
				b.Fatal(err)
			}
			if len(qs) == 0 {
				return
			}
			l, err := oracle.Label(ctx, qs[0])
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Answer(qs[0], l); err != nil {
				b.Fatal(err)
			}
		}
	}

	fig7 := synth.MustGenerate(synth.PaperConfigs()[0], 1) // (3, 3, 100, 100)
	fig7Classes := PrecomputeClasses(fig7)
	fig7Goal, err := PredFromNames(NewSession(fig7).Universe(), [2]string{"A1", "B1"})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("hard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := NewSession(fig7, WithStrategy(StrategyBU), WithPrecomputedClasses(fig7Classes))
			runHonest(b, s, fig7Goal)
		}
	})

	b.Run("soft-clean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := NewSession(fig7, WithStrategy(StrategyBU), WithPrecomputedClasses(fig7Classes),
				WithSoftInference(1))
			runHonest(b, s, fig7Goal)
		}
	})

	cold := coldPathInstance(b)
	coldClasses := PrecomputeClasses(cold)
	coldGoal := coldPathGoal(cold)

	b.Run("batch-honest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := NewSession(cold, WithStrategy(StrategyBU), WithSeed(7),
				WithPrecomputedClasses(coldClasses), WithErrorBudget(3))
			if err := runBatched(ctx, s, HonestOracle(coldGoal), lieBatch); err != nil {
				b.Fatal(err)
			}
			if st := s.SoftStats(); st.Retractions != 0 {
				b.Fatalf("honest run retracted %d times", st.Retractions)
			}
		}
	})

	b.Run("batch-recovery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := NewSession(cold, WithStrategy(StrategyBU), WithSeed(7),
				WithPrecomputedClasses(coldClasses), WithErrorBudget(3))
			err := runBatched(ctx, s,
				&lyingOracle{honest: HonestOracle(coldGoal), flipAt: 1}, lieBatch)
			if err != nil {
				b.Fatal(err)
			}
			if st := s.SoftStats(); st.Retractions == 0 {
				b.Fatal("planted lie did not trigger a retraction")
			}
		}
	})
}

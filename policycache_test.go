package joininference

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/paperdata"
	"repro/internal/policy"
	"repro/internal/synth"
)

// questionSeq drives a session to completion against an honest oracle,
// fetching k questions per round, and returns every question served in
// order — the bit-identity witness the policy cache must preserve.
func questionSeq(t *testing.T, s *Session, goal Pred, k int) []QuestionRef {
	t.Helper()
	ctx := context.Background()
	oracle := HonestOracle(goal)
	var seq []QuestionRef
	for round := 0; ; round++ {
		if round > 10000 {
			t.Fatal("session did not converge")
		}
		qs, err := s.NextQuestions(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			return seq
		}
		labels := make([]Label, len(qs))
		for i, q := range qs {
			seq = append(seq, q.Ref())
			l, err := oracle.Label(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			labels[i] = l
		}
		if _, err := s.AnswerBatch(qs, labels); err != nil {
			t.Fatal(err)
		}
	}
}

func sameSeq(t *testing.T, name string, want, got []QuestionRef) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d questions, want %d\n got %v\nwant %v", name, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: question %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

// TestPolicyCacheDifferentialJoin proves the correctness bar of the cache:
// for every built-in strategy, an uncached session, the session that
// populates a cold cache, and a session served from the warm cache ask
// bit-identical question sequences — for single fetches and for batches.
func TestPolicyCacheDifferentialJoin(t *testing.T) {
	inst := paperdata.FlightHotel()
	classes := PrecomputeClasses(inst)
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range KnownStrategies() {
		for _, k := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/k=%d", id, k), func(t *testing.T) {
				base := []Option{WithStrategy(id), WithSeed(7), WithPrecomputedClasses(classes)}
				ref := questionSeq(t, NewSession(inst, base...), goal, k)

				cache := NewPolicyCache(0)
				cached := append(append([]Option(nil), base...), WithPolicyCache(cache, "flight-hotel"))
				cold := questionSeq(t, NewSession(inst, cached...), goal, k)
				sameSeq(t, "cold cache", ref, cold)
				if cache.Stats().Publishes == 0 {
					t.Fatal("cold session published nothing")
				}

				before := cache.Stats()
				warm := questionSeq(t, NewSession(inst, cached...), goal, k)
				sameSeq(t, "warm cache", ref, warm)
				after := cache.Stats()
				if after.Hits == before.Hits {
					t.Error("warm session never hit the cache")
				}
				if after.Misses != before.Misses {
					t.Errorf("warm session missed %d times on an unbounded cache", after.Misses-before.Misses)
				}
			})
		}
	}
}

// TestPolicyCacheDifferentialSemijoin is the semijoin counterpart: the
// cached walk must skip the NP-complete CONS⋉ scans yet pick identical
// rows.
func TestPolicyCacheDifferentialSemijoin(t *testing.T) {
	inst := paperdata.Example21()
	u := NewSemijoinSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"A1", "B2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			ref := questionSeq(t, NewSemijoinSession(inst), goal, k)

			cache := NewPolicyCache(0)
			opt := WithPolicyCache(cache, "example21")
			cold := questionSeq(t, NewSemijoinSession(inst, opt), goal, k)
			sameSeq(t, "cold cache", ref, cold)

			before := cache.Stats()
			warm := questionSeq(t, NewSemijoinSession(inst, opt), goal, k)
			sameSeq(t, "warm cache", ref, warm)
			if cache.Stats().Hits == before.Hits {
				t.Error("warm semijoin session never hit the cache")
			}
		})
	}
}

// TestPolicyCacheBatchExtension publishes nodes with k=1 and reads them
// with k=3: the cached strategy pick is reused and the batch scan extends
// live, still bit-identical to an uncached k=3 session.
func TestPolicyCacheBatchExtension(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range KnownStrategies() {
		t.Run(string(id), func(t *testing.T) {
			base := []Option{WithStrategy(id), WithSeed(3)}
			ref := questionSeq(t, NewSession(inst, base...), goal, 3)

			cache := NewPolicyCache(0)
			cached := append(append([]Option(nil), base...), WithPolicyCache(cache, "fh"))
			// Populate with single fetches: nodes carry no pivots.
			questionSeq(t, NewSession(inst, cached...), goal, 1)
			got := questionSeq(t, NewSession(inst, cached...), goal, 3)
			sameSeq(t, "k=1-published nodes read at k=3", ref, got)
		})
	}
}

// TestPolicyCacheEvictionMidWalk bounds the cache so tightly that nodes
// are evicted while sessions are mid-walk; every fetch then falls back to
// live computation and sequences stay bit-identical.
func TestPolicyCacheEvictionMidWalk(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []StrategyID{StrategyL2S, StrategyRND} {
		t.Run(string(id), func(t *testing.T) {
			base := []Option{WithStrategy(id), WithSeed(5)}
			ref := questionSeq(t, NewSession(inst, base...), goal, 2)

			cache := NewPolicyCache(360) // room for only a couple of nodes
			cached := append(append([]Option(nil), base...), WithPolicyCache(cache, "fh"))
			for i := 0; i < 3; i++ {
				got := questionSeq(t, NewSession(inst, cached...), goal, 2)
				sameSeq(t, fmt.Sprintf("run %d under eviction pressure", i), ref, got)
			}
			if cache.Stats().Evictions == 0 {
				t.Error("no evictions despite the tiny byte bound")
			}
		})
	}
}

// TestPolicyCacheChurn runs concurrent sessions over one shared cache and
// instance, with goals that make their walks diverge at different depths;
// every session must match its uncached twin. Run with -race.
func TestPolicyCacheChurn(t *testing.T) {
	inst, err := synth.Generate(synth.Config{AttrsR: 3, AttrsP: 3, Rows: 18, Values: 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	classes := PrecomputeClasses(inst)
	u := NewSession(inst).Universe()
	goals := make([]Pred, 0, 4)
	for _, pairs := range [][][2]string{
		{{"A1", "B1"}},
		{{"A1", "B1"}, {"A2", "B2"}},
		{{"A3", "B3"}},
		{{"A2", "B1"}},
	} {
		g, err := PredFromNames(u, pairs...)
		if err != nil {
			t.Fatal(err)
		}
		goals = append(goals, g)
	}
	for _, maxBytes := range []int64{0, 2000} { // unbounded, and eviction-heavy
		t.Run(fmt.Sprintf("maxBytes=%d", maxBytes), func(t *testing.T) {
			cache := NewPolicyCache(maxBytes)
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					id := KnownStrategies()[w%len(KnownStrategies())]
					goal := goals[w%len(goals)]
					base := []Option{WithStrategy(id), WithSeed(9), WithPrecomputedClasses(classes)}
					ref := questionSeq(t, NewSession(inst, base...), goal, 2)
					cached := append(append([]Option(nil), base...), WithPolicyCache(cache, "synth"))
					got := questionSeq(t, NewSession(inst, cached...), goal, 2)
					sameSeq(t, fmt.Sprintf("worker %d (%s)", w, id), ref, got)
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestPolicyCacheResume snapshots a cached session mid-walk and resumes it
// (still cached): the remaining questions must match the uninterrupted
// uncached session, RND included — the stream position survives both the
// snapshot and the cache's fast-forward bookkeeping.
func TestPolicyCacheResume(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, id := range KnownStrategies() {
		t.Run(string(id), func(t *testing.T) {
			base := []Option{WithStrategy(id), WithSeed(21)}
			ref := questionSeq(t, NewSession(inst, base...), goal, 1)
			if len(ref) < 2 {
				t.Skipf("only %d questions; nothing to resume", len(ref))
			}

			cache := NewPolicyCache(0)
			cached := append(append([]Option(nil), base...), WithPolicyCache(cache, "fh"))
			// Warm the cache with a full run, then walk a fresh session two
			// answers deep on pure hits, snapshot, resume, and finish.
			questionSeq(t, NewSession(inst, cached...), goal, 1)
			s := NewSession(inst, cached...)
			oracle := HonestOracle(goal)
			var seq []QuestionRef
			for i := 0; i < 2; i++ {
				qs, err := s.NextQuestions(ctx, 1)
				if err != nil || len(qs) == 0 {
					t.Fatalf("fetch %d: qs=%d err=%v", i, len(qs), err)
				}
				seq = append(seq, qs[0].Ref())
				l, _ := oracle.Label(ctx, qs[0])
				if err := s.Answer(qs[0], l); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := ResumeSession(inst, snap, WithPolicyCache(cache, "fh"))
			if err != nil {
				t.Fatal(err)
			}
			seq = append(seq, questionSeq(t, resumed, goal, 1)...)
			sameSeq(t, "snapshot/resume through the cache", ref, seq)
		})
	}
}

// TestPolicyCachePrecompute warms the tree breadth-first and checks that a
// fresh session's first depth fetches are pure hits.
func TestPolicyCachePrecompute(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []StrategyID{StrategyL2S, StrategyRND} {
		t.Run(string(id), func(t *testing.T) {
			const depth = 3
			cache := NewPolicyCache(0)
			opts := []Option{WithStrategy(id), WithSeed(2), WithParallelism(4)}
			n, err := cache.Precompute(context.Background(), inst, "fh", depth, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if n < depth { // at minimum the leftmost path exists
				t.Fatalf("expanded %d nodes, want ≥ %d", n, depth)
			}

			ref := questionSeq(t, NewSession(inst, opts...), goal, 1)
			before := cache.Stats()
			cached := append(append([]Option(nil), opts...), WithPolicyCache(cache, "fh"))
			got := questionSeq(t, NewSession(inst, cached...), goal, 1)
			sameSeq(t, "after precompute", ref, got)
			after := cache.Stats()
			wantHits := uint64(depth)
			if fetches := uint64(len(ref) + 1); fetches < wantHits {
				wantHits = fetches
			}
			if after.Hits-before.Hits < wantHits {
				t.Errorf("precomputed walk hit %d times, want ≥ %d", after.Hits-before.Hits, wantHits)
			}
		})
	}
}

// TestPolicyCacheCustomStrategyIgnored keeps caller-implemented strategies
// (which may be nondeterministic) out of the cache.
func TestPolicyCacheCustomStrategyIgnored(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPolicyCache(0)
	s := NewSession(inst, WithCustomStrategy(firstInformative{}), WithPolicyCache(cache, "fh"))
	questionSeq(t, s, goal, 1)
	if st := cache.Stats(); st.Publishes != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("custom-strategy session touched the cache: %+v", st)
	}
	if _, err := cache.Precompute(context.Background(), inst, "fh", 2, WithCustomStrategy(firstInformative{})); err == nil {
		t.Error("Precompute accepted a custom strategy")
	}
}

type firstInformative struct{}

func (firstInformative) Name() string { return "first" }
func (firstInformative) Next(v StrategyView) int {
	inf := v.InformativeClasses()
	if len(inf) == 0 {
		return -1
	}
	return inf[0]
}

// TestPolicyCacheCorruptNodeFallsBack: a node that does not describe the
// engine (e.g. two different instances wrongly sharing an instance id)
// must fall back to live computation, never panic or serve a dead pick.
func TestPolicyCacheCorruptNodeFallsBack(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []policyNodeSpec{
		{chosen: 1 << 20},                   // class index from a bigger instance
		{chosen: 0, pivots: []int{1 << 20}}, // out-of-range pivot
		{chosen: 0, pivots: []int{-3}},      // negative pivot
	} {
		cache := NewPolicyCache(0)
		s := NewSession(inst, WithStrategy(StrategyBU), WithPolicyCache(cache, "fh"))
		// Poison the root node under exactly the key the session consults.
		cache.c.Publish(s.policyTreeKey(), nil, 0, bad.node())
		got := questionSeq(t, s, goal, 2)
		want := questionSeq(t, NewSession(inst, WithStrategy(StrategyBU)), goal, 2)
		sameSeq(t, "after corrupt node", want, got)
	}
}

type policyNodeSpec struct {
	chosen int
	pivots []int
}

func (sp policyNodeSpec) node() policy.Node {
	return policy.Node{Chosen: sp.chosen, Pivots: sp.pivots, Complete: true}
}

// TestPolicyCacheUndoRedraw: Undo rebuilds the RND stream from the seed,
// and the cache must follow the uncached behavior exactly (the post-undo
// node variants live under their own stream positions).
func TestPolicyCacheUndoRedraw(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...Option) []QuestionRef {
		s := NewSession(inst, opts...)
		ctx := context.Background()
		oracle := HonestOracle(goal)
		var seq []QuestionRef
		answer := func() Question {
			qs, err := s.NextQuestions(ctx, 1)
			if err != nil || len(qs) == 0 {
				t.Fatalf("qs=%d err=%v", len(qs), err)
			}
			seq = append(seq, qs[0].Ref())
			l, _ := oracle.Label(ctx, qs[0])
			if err := s.Answer(qs[0], l); err != nil {
				t.Fatal(err)
			}
			return qs[0]
		}
		answer()
		answer()
		if err := s.Undo(); err != nil {
			t.Fatal(err)
		}
		seq = append(seq, questionSeq(t, s, goal, 1)...)
		return seq
	}
	base := []Option{WithStrategy(StrategyRND), WithSeed(13)}
	ref := run(base...)
	cache := NewPolicyCache(0)
	got := run(append(append([]Option(nil), base...), WithPolicyCache(cache, "fh"))...)
	sameSeq(t, "undo under RND", ref, got)
}

// TestPolicyCacheInconsistentRollback: a rejected answer leaves no trace,
// so the cached session must keep serving the same node as before.
func TestPolicyCacheInconsistentRollback(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPolicyCache(0)
	s := NewSession(inst, WithStrategy(StrategyBU), WithPolicyCache(cache, "fh"))
	ctx := context.Background()
	oracle := HonestOracle(goal)
	// Walk honestly until informative questions remain alongside an
	// unlabeled certain class; contradict the certainty, expect the
	// rejection, and check the next fetch is unchanged.
	for {
		next1, err := s.NextQuestions(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(next1) == 0 {
			t.Skip("no moment with both an informative question and a certain class")
		}
		contradicted := false
		for ci := 0; ci < s.Classes(); ci++ {
			if s.engine.IsLabeled(ci) || s.engine.Informative(ci) {
				continue
			}
			c := s.engine.Classes()[ci]
			q, err := s.QuestionByRef(QuestionRef{RIndex: c.RI, PIndex: c.PI})
			if err != nil {
				continue
			}
			wrong := Negative
			if s.engine.CertainNegative(ci) {
				wrong = Positive
			}
			if err := s.Answer(q, wrong); !errors.Is(err, ErrInconsistent) {
				t.Fatalf("contradicting answer error = %v, want ErrInconsistent", err)
			}
			contradicted = true
			break
		}
		if contradicted {
			next2, err := s.NextQuestions(ctx, 1)
			if err != nil || len(next2) == 0 {
				t.Fatalf("after rollback: qs=%d err=%v", len(next2), err)
			}
			if next1[0].Ref() != next2[0].Ref() {
				t.Errorf("question changed across rejected answer: %+v vs %+v", next1[0].Ref(), next2[0].Ref())
			}
			return
		}
		l, _ := oracle.Label(ctx, next1[0])
		if err := s.Answer(next1[0], l); err != nil {
			t.Fatal(err)
		}
	}
}

package joininference

import (
	"context"
	"errors"
	"testing"

	"repro/internal/inference"
	"repro/internal/paperdata"
)

// honestRun drives a fresh session with the given options to completion
// against an honest oracle.
func honestRun(t *testing.T, inst *Instance, goal Pred, opts ...Option) (RunResult, *Session) {
	t.Helper()
	s := NewSession(inst, opts...)
	res, err := Run(context.Background(), s, HonestOracle(goal))
	if err != nil {
		t.Fatal(err)
	}
	return res, s
}

func TestRunAllStrategies(t *testing.T) {
	inst := paperdata.FlightHotel()
	classes := PrecomputeClasses(inst)
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []StrategyID{StrategyBU, StrategyTD, StrategyL1S, StrategyL2S, StrategyRND} {
		res, _ := honestRun(t, inst, goal, WithStrategy(id), WithPrecomputedClasses(classes))
		if !res.Determined {
			t.Errorf("%s: run not determined", id)
		}
		if res.Questions < 1 || res.Questions > 12 {
			t.Errorf("%s asked %d questions", id, res.Questions)
		}
		if len(Join(inst, res.Inferred)) != len(Join(inst, goal)) {
			t.Errorf("%s inferred %v, not instance-equivalent to goal", id, res.Inferred.Format(u))
		}
	}
}

func TestSeededRNDDeterminism(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) []TranscriptEntry {
		_, s := honestRun(t, inst, goal, WithStrategy(StrategyRND), WithSeed(seed))
		return s.Transcript()
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different question %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBudgetExhausted(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(inst, WithBudget(1))
	res, err := Run(context.Background(), s, HonestOracle(goal))
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Run error = %v, want ErrBudgetExhausted", err)
	}
	if res.Questions != 1 {
		t.Errorf("questions = %d, want 1", res.Questions)
	}
	if res.Determined {
		t.Error("budget-stopped run reported determined")
	}
	// The session stays usable read-only and keeps refusing questions.
	if _, err := s.NextQuestions(context.Background(), 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("NextQuestions error = %v, want ErrBudgetExhausted", err)
	}
	if err := s.Answer(Question{}, Positive); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("Answer error = %v, want ErrBudgetExhausted", err)
	}
	// A budget generous enough is never hit.
	res2, _ := honestRun(t, inst, goal, WithBudget(100))
	if !res2.Determined {
		t.Error("run with slack budget not determined")
	}
}

// countdownCtx reports cancellation after a fixed number of Err calls —
// deterministic mid-computation cancellation without goroutines.
type countdownCtx struct {
	context.Context
	calls, after int
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func TestContextCancellation(t *testing.T) {
	inst := paperdata.FlightHotel()

	// Already-cancelled context: rejected before any work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession(inst, WithStrategy(StrategyL2S))
	if _, err := s.NextQuestions(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx error = %v, want context.Canceled", err)
	}

	// Cancellation mid-L2S: the countdown survives the entry check and
	// fires inside the lookahead's per-candidate loop.
	s2 := NewSession(inst, WithStrategy(StrategyL2S))
	cc := &countdownCtx{Context: context.Background(), after: 2}
	if _, err := s2.NextQuestions(cc, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("mid-L2S error = %v, want context.Canceled", err)
	}
	if cc.calls <= cc.after {
		t.Errorf("cancellation was never polled mid-computation (calls = %d)", cc.calls)
	}
	// The session was not corrupted: a live context works.
	if _, err := s2.NextQuestions(context.Background(), 1); err != nil {
		t.Errorf("session unusable after cancellation: %v", err)
	}
}

func TestNextQuestionsPairwiseInformative(t *testing.T) {
	inst := paperdata.FlightHotel()
	classes := PrecomputeClasses(inst)
	s := NewSession(inst, WithPrecomputedClasses(classes))
	qs, err := s.NextQuestions(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) < 2 {
		t.Fatalf("only %d questions in batch; need ≥ 2 to test pairwise informativeness", len(qs))
	}
	// Every question must stay informative whichever way any other one is
	// answered. Replay each single answer on a fresh session sharing the
	// class set (so class indexes agree) and re-check the rest.
	for i, qi := range qs {
		for _, l := range []Label{Positive, Negative} {
			fresh := NewSession(inst, WithPrecomputedClasses(classes))
			if err := fresh.Answer(qi, l); err != nil {
				t.Fatalf("answering question %d with %v: %v", i, l, err)
			}
			for j, qj := range qs {
				if i == j {
					continue
				}
				if !fresh.IsInformative(qj) {
					t.Errorf("question %d became uninformative after question %d answered %v",
						j, i, l)
				}
			}
		}
	}
}

func TestAnswerBatchSkipsDecided(t *testing.T) {
	inst := paperdata.FlightHotel()
	s := NewSession(inst)
	u := s.Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	oracle := HonestOracle(goal)
	ctx := context.Background()
	qs, err := s.NextQuestions(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("no questions")
	}
	labels := make([]Label, len(qs))
	for i, q := range qs {
		labels[i], _ = oracle.Label(ctx, q)
	}
	// Answer the first by hand; AnswerBatch must skip it (and anything the
	// remaining answers decide) instead of erroring.
	if err := s.Answer(qs[0], labels[0]); err != nil {
		t.Fatal(err)
	}
	applied, err := s.AnswerBatch(qs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(qs)-1 {
		t.Errorf("applied = %d, want %d (first answer pre-recorded)", applied, len(qs)-1)
	}
	if _, err := s.AnswerBatch(qs[:1], labels); err == nil {
		t.Error("mismatched question/label lengths accepted")
	}
}

func TestCrowdOracleAggregation(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	// Perfect workers: majority aggregation is exact, costs workers·questions.
	crowd, err := CrowdOracle(HonestOracle(goal), 3, 0, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(inst)
	res, err := Run(context.Background(), s, crowd)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Determined || len(Join(inst, res.Inferred)) != len(Join(inst, goal)) {
		t.Errorf("perfect crowd failed to recover the goal: %v", res.Inferred.Format(u))
	}
	if crowd.Questions() != res.Questions {
		t.Errorf("crowd answered %d questions, session recorded %d", crowd.Questions(), res.Questions)
	}
	if crowd.Microtasks() != 3*crowd.Questions() {
		t.Errorf("microtasks = %d, want %d (3 per question, no ties at error 0)",
			crowd.Microtasks(), 3*crowd.Questions())
	}
	if crowd.WrongAnswers() != 0 {
		t.Errorf("wrong answers = %d with perfect workers", crowd.WrongAnswers())
	}
	if got, want := crowd.TotalCost(), float64(crowd.Microtasks())*0.05; got != want {
		t.Errorf("total cost = %v, want %v", got, want)
	}
	// Redundancy shrinks the aggregated error rate monotonically.
	if !(CrowdErrorRate(7, 0.2) < CrowdErrorRate(3, 0.2) && CrowdErrorRate(3, 0.2) < CrowdErrorRate(1, 0.2)) {
		t.Errorf("majority error not decreasing: %v %v %v",
			CrowdErrorRate(1, 0.2), CrowdErrorRate(3, 0.2), CrowdErrorRate(7, 0.2))
	}
	if _, err := CrowdOracle(HonestOracle(goal), 3, 1.5, 0, 1); err == nil {
		t.Error("invalid error rate accepted")
	}
}

type biggestClassFirst struct{}

func (biggestClassFirst) Name() string { return "BIG" }
func (biggestClassFirst) Next(v StrategyView) int {
	best, bestCount := -1, int64(-1)
	for _, ci := range v.InformativeClasses() {
		if c := v.ClassCount(ci); c > bestCount {
			best, bestCount = ci, c
		}
	}
	return best
}

func TestWithCustomStrategy(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := honestRun(t, inst, goal, WithCustomStrategy(biggestClassFirst{}))
	if !res.Determined {
		t.Fatal("custom strategy run not determined")
	}
	if len(Join(inst, res.Inferred)) != len(Join(inst, goal)) {
		t.Errorf("custom strategy inferred %v", res.Inferred.Format(u))
	}
}

func TestUnknownStrategySentinel(t *testing.T) {
	s := NewSession(paperdata.FlightHotel(), WithStrategy(StrategyID("NOPE")))
	if _, err := s.NextQuestions(context.Background(), 1); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("error = %v, want ErrUnknownStrategy", err)
	}
	if _, err := Run(context.Background(), s, HonestOracle(Pred{})); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("Run error = %v, want ErrUnknownStrategy", err)
	}
}

func TestErrorSentinelsWrapInternal(t *testing.T) {
	if !errors.Is(ErrInconsistent, inference.ErrInconsistent) {
		t.Error("public ErrInconsistent does not wrap the internal sentinel")
	}
}

func TestSemijoinSessionRun(t *testing.T) {
	inst := paperdata.Example21()
	s := NewSemijoinSession(inst)
	u := s.Universe()
	goal, err := PredFromNames(u, [2]string{"A1", "B2"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, HonestOracle(goal))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Determined {
		t.Error("semijoin run not determined")
	}
	if res.Questions < 1 || res.Questions > inst.R.Len() {
		t.Errorf("questions = %d", res.Questions)
	}
	want := SemijoinEval(inst, goal)
	got := SemijoinEval(inst, res.Inferred)
	if len(want) != len(got) {
		t.Fatalf("semijoin differs: %v vs %v", got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("semijoin differs: %v vs %v", got, want)
		}
	}
	if !s.Done() {
		t.Error("session not done after determined run")
	}
	if s.Classes() != 0 {
		t.Errorf("semijoin session reports %d classes", s.Classes())
	}
	// A budget below the full interaction count surfaces the sentinel.
	if res.Questions > 1 {
		s2 := NewSemijoinSession(inst, WithBudget(1))
		res2, err := Run(context.Background(), s2, HonestOracle(goal))
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Errorf("budgeted semijoin error = %v, want ErrBudgetExhausted", err)
		}
		if res2.Questions != 1 {
			t.Errorf("budgeted semijoin asked %d", res2.Questions)
		}
	}
}

func TestSemijoinBatchAndUndo(t *testing.T) {
	inst := paperdata.Example21()
	s := NewSemijoinSession(inst)
	qs, err := s.NextQuestions(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("no semijoin questions")
	}
	for _, q := range qs {
		if !q.Semijoin() || q.PIndex != -1 || q.PTuple != nil {
			t.Errorf("semijoin question malformed: %+v", q)
		}
	}
	// Pairwise guarantee, checked by replaying single answers.
	if len(qs) >= 2 {
		for i, qi := range qs {
			for _, l := range []Label{Positive, Negative} {
				fresh := NewSemijoinSession(inst)
				if err := fresh.Answer(qi, l); err != nil {
					t.Fatalf("answer %v on row %d: %v", l, qi.RIndex, err)
				}
				for j, qj := range qs {
					if i != j && !fresh.IsInformative(qj) {
						t.Errorf("row %d uninformative after row %d answered %v",
							qj.RIndex, qi.RIndex, l)
					}
				}
			}
		}
	}
	if err := s.Answer(qs[0], Positive); err != nil {
		t.Fatal(err)
	}
	if s.Questions() != 1 || len(s.Transcript()) != 1 {
		t.Errorf("questions = %d, transcript = %d", s.Questions(), len(s.Transcript()))
	}
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if s.Questions() != 0 {
		t.Errorf("after undo questions = %d", s.Questions())
	}
	if !s.IsInformative(qs[0]) {
		t.Error("undone row no longer informative")
	}
}

func TestPrecomputedClassesShared(t *testing.T) {
	inst := paperdata.FlightHotel()
	classes := PrecomputeClasses(inst)
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := honestRun(t, inst, goal)
	shared, _ := honestRun(t, inst, goal, WithPrecomputedClasses(classes))
	if direct.Questions != shared.Questions || !direct.Inferred.Equal(shared.Inferred) {
		t.Errorf("precomputed classes changed the run: %+v vs %+v", direct, shared)
	}
}

// TestDeprecatedShims keeps the v1 surface compiling and behaving.
func TestDeprecatedShims(t *testing.T) {
	inst := paperdata.FlightHotel()
	s := NewSession(inst)
	u := s.Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	got, asked, err := InferGoal(inst, StrategyTD, goal)
	if err != nil {
		t.Fatal(err)
	}
	if asked < 1 || len(Join(inst, got)) != len(Join(inst, goal)) {
		t.Errorf("InferGoal: %d questions, %v", asked, got.Format(u))
	}
	for !s.Done() {
		q, ok := s.NextQuestion(StrategyTD)
		if !ok {
			break
		}
		l, _ := HonestOracle(goal).Label(context.Background(), q)
		if err := s.Answer(q, l); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Inferred().Equal(got) {
		t.Errorf("NextQuestion loop inferred %v, InferGoal %v", s.Inferred(), got)
	}
	if _, ok := s.NextQuestion(StrategyTD); ok {
		t.Error("NextQuestion after done returned a question")
	}
}

package joininference

import (
	"context"
	"testing"

	"repro/internal/predicate"
	"repro/internal/semijoin"
	"repro/internal/synth"
)

// The cold-path differential suite: on a >64-pair universe (Ω = 9·8 = 72,
// the former fast-path cliff) every strategy must ask a bit-identical
// question sequence at every parallelism — the arena general path, the
// incremental engine, and the semijoin solver are pure optimizations.

// coldPathInstance returns the 72-pair instance shared by the suite.
func coldPathInstance(tb testing.TB) *Instance {
	tb.Helper()
	inst := synth.MustGenerate(synth.Config{AttrsR: 9, AttrsP: 8, Rows: 5, Values: 3}, 1)
	if predicate.NewUniverse(inst).Size() <= 64 {
		tb.Fatal("universe fits a word; want > 64")
	}
	return inst
}

// coldPathGoal is a two-pair goal predicate over the 72-pair universe.
func coldPathGoal(inst *Instance) Pred {
	u := predicate.NewUniverse(inst)
	return predicate.FromPairs(u, [2]int{0, 0}, [2]int{3, 2})
}

// transcriptSeq runs a session to completion and returns the ordered
// (RIndex, PIndex, label) sequence it asked.
func transcriptSeq(t *testing.T, s *Session, goal Pred) []TranscriptEntry {
	t.Helper()
	if _, err := Run(context.Background(), s, HonestOracle(goal)); err != nil {
		t.Fatal(err)
	}
	return s.Transcript()
}

func sameEntries(a, b []TranscriptEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestColdPathJoinSequencesBitIdentical: for all five strategies on the
// >64-pair universe, join sessions ask the same questions at Workers 1 and
// 4 and infer an instance-equivalent predicate. (Arena-vs-legacy sequence
// equality for the lookaheads is asserted in internal/strategy; the
// incremental engine is differentially tested in internal/inference.)
func TestColdPathJoinSequencesBitIdentical(t *testing.T) {
	inst := coldPathInstance(t)
	goal := coldPathGoal(inst)
	u := predicate.NewUniverse(inst)
	cs := PrecomputeClasses(inst)
	want := predicate.Join(inst, u, goal)
	for _, id := range KnownStrategies() {
		var base []TranscriptEntry
		for _, workers := range []int{1, 4} {
			s := NewSession(inst, WithStrategy(id), WithSeed(7),
				WithParallelism(workers), WithPrecomputedClasses(cs))
			seq := transcriptSeq(t, s, goal)
			if len(seq) == 0 {
				t.Fatalf("%s/w%d: empty question sequence", id, workers)
			}
			if workers == 1 {
				base = seq
			} else if !sameEntries(base, seq) {
				t.Fatalf("%s: question sequence diverged between Workers 1 and %d:\n  w1: %v\n  w%d: %v",
					id, workers, base, workers, seq)
			}
			got := predicate.Join(inst, u, s.Inferred())
			if len(got) != len(want) {
				t.Fatalf("%s/w%d: inferred predicate not instance-equivalent (%d vs %d join tuples)",
					id, workers, len(got), len(want))
			}
		}
	}
}

// TestColdPathSemijoinSequencesBitIdentical: semijoin sessions on the same
// instance ask the scan-order sequence the pre-solver implementation
// produced — computed here as the reference with the package-level
// (seed) semijoin.Informative — for every strategy id (ignored by
// semijoin sessions) and parallelism.
func TestColdPathSemijoinSequencesBitIdentical(t *testing.T) {
	inst := coldPathInstance(t)
	goal := coldPathGoal(inst)

	// Reference: the seed scan loop over package-level CONS⋉ decisions.
	keeps := func(ri int) bool {
		for _, tP := range inst.P.Tuples {
			if goal.Selects(predicate.NewUniverse(inst), inst.R.Tuples[ri], tP) {
				return true
			}
		}
		return false
	}
	var ref []TranscriptEntry
	var sample semijoin.Sample
	labeled := make([]bool, inst.R.Len())
	for {
		next := -1
		for ri := 0; ri < inst.R.Len() && next < 0; ri++ {
			if labeled[ri] {
				continue
			}
			ok, err := semijoin.Informative(inst, sample, ri)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				next = ri
			}
		}
		if next < 0 {
			break
		}
		labeled[next] = true
		pos := keeps(next)
		if pos {
			sample.Pos = append(sample.Pos, next)
		} else {
			sample.Neg = append(sample.Neg, next)
		}
		ref = append(ref, TranscriptEntry{RIndex: next, PIndex: -1, Positive: pos})
	}
	if len(ref) == 0 {
		t.Fatal("reference semijoin sequence is empty")
	}

	for _, id := range KnownStrategies() {
		for _, workers := range []int{1, 4} {
			s := NewSemijoinSession(inst, WithStrategy(id), WithSeed(7), WithParallelism(workers))
			seq := transcriptSeq(t, s, goal)
			if !sameEntries(ref, seq) {
				t.Fatalf("%s/w%d: semijoin sequence diverged from seed reference:\n  ref: %v\n  got: %v",
					id, workers, ref, seq)
			}
		}
	}
}

package joininference

import (
	"context"
	"sync"
	"testing"

	"repro/internal/paperdata"
	"repro/internal/tpch"
)

// TestWithParallelismDeterministic: a session asks the exact same question
// sequence at every parallelism level — the acceptance bar for the parallel
// lookahead engine is bit-identical interaction counts.
func TestWithParallelismDeterministic(t *testing.T) {
	data := tpch.MustGenerate(1, 42)
	inst, goal, err := data.Instance(tpch.Join2)
	if err != nil {
		t.Fatal(err)
	}
	classes := PrecomputeClasses(inst)
	for _, id := range []StrategyID{StrategyL1S, StrategyL2S} {
		transcript := func(workers int) []TranscriptEntry {
			_, s := honestRun(t, inst, goal,
				WithStrategy(id), WithPrecomputedClasses(classes), WithParallelism(workers))
			return s.Transcript()
		}
		base := transcript(1)
		if len(base) == 0 {
			t.Fatalf("%s: empty transcript", id)
		}
		for _, workers := range []int{4, 16, -1} {
			got := transcript(workers)
			if len(got) != len(base) {
				t.Fatalf("%s parallelism %d: %d questions, serial asked %d", id, workers, len(got), len(base))
			}
			for i := range got {
				if got[i] != base[i] {
					t.Fatalf("%s parallelism %d: question %d is (%d,%d), serial asked (%d,%d)",
						id, workers, i, got[i].RIndex, got[i].PIndex, base[i].RIndex, base[i].PIndex)
				}
			}
		}
	}
}

// TestParallelBatchCrowdDispatch drives the crowdsourcing deployment the
// way a real one runs: every NextQuestions batch fans out to concurrent
// workers hitting the Crowd oracle at once, and the answers come back
// through AnswerBatch. Exercises the narrowed Crowd.Label critical section
// (and fails under -race if the truth path shares state).
func TestParallelBatchCrowdDispatch(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := CrowdOracle(HonestOracle(goal), 5, 0, 0.05, 99)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(inst, WithStrategy(StrategyL2S), WithParallelism(4))
	ctx := context.Background()
	rounds := 0
	for {
		qs, err := s.NextQuestions(ctx, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			break
		}
		labels := make([]Label, len(qs))
		var wg sync.WaitGroup
		wg.Add(len(qs))
		for i, q := range qs {
			go func(i int, q Question) {
				defer wg.Done()
				l, err := crowd.Label(ctx, q)
				if err != nil {
					t.Error(err)
				}
				labels[i] = l
			}(i, q)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		if _, err := s.AnswerBatch(qs, labels); err != nil {
			t.Fatal(err)
		}
		if rounds++; rounds > 50 {
			t.Fatal("batch loop did not converge")
		}
	}
	// Error rate 0: the crowd is always right, so the inference must land
	// on the goal and the accounting must line up exactly.
	if got, want := len(Join(inst, s.Inferred())), len(Join(inst, goal)); got != want {
		t.Errorf("inferred join selects %d pairs, goal selects %d", got, want)
	}
	// Every session answer consumed a crowd round; the crowd may have
	// answered a few more (batch answers that earlier answers in the same
	// round made uninformative are dropped by AnswerBatch).
	if crowd.Questions() < s.Questions() {
		t.Errorf("crowd answered %d questions, session recorded %d", crowd.Questions(), s.Questions())
	}
	if crowd.WrongAnswers() != 0 {
		t.Errorf("error-free crowd produced %d wrong answers", crowd.WrongAnswers())
	}
	if min := crowd.Questions() * 5; crowd.Microtasks() < min {
		t.Errorf("microtasks %d < %d (5 workers per question)", crowd.Microtasks(), min)
	}
}

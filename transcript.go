package joininference

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/predicate"
	"repro/internal/querytext"
)

// TranscriptEntry records one answered question, addressed by row indexes
// so a transcript replays against the same instance. Semijoin entries carry
// PIndex -1.
type TranscriptEntry struct {
	RIndex   int  `json:"r"`
	PIndex   int  `json:"p"`
	Positive bool `json:"positive"`
}

// Transcript returns the answered questions in order.
func (s *Session) Transcript() []TranscriptEntry {
	if s.sj != nil {
		return append([]TranscriptEntry(nil), s.sj.entries...)
	}
	var out []TranscriptEntry
	for _, ex := range s.engine.Sample().Examples() {
		out = append(out, TranscriptEntry{
			RIndex:   ex.RI,
			PIndex:   ex.PI,
			Positive: bool(ex.Label),
		})
	}
	return out
}

// SaveTranscript writes the session's transcript as JSON lines.
func (s *Session) SaveTranscript(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range s.Transcript() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("joininference: writing transcript: %w", err)
		}
	}
	return nil
}

// ReplayTranscript builds a new join session over the instance and replays
// a JSON-lines transcript, re-validating consistency along the way. Entries
// whose class was already decided by earlier answers are skipped (they
// carry no information), mirroring what a live session would have asked.
// Semijoin transcripts (PIndex -1) are not replayable.
func ReplayTranscript(inst *Instance, r io.Reader) (*Session, error) {
	s := NewSession(inst)
	dec := json.NewDecoder(r)
	for line := 1; ; line++ {
		var e TranscriptEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("joininference: transcript entry %d: %w", line, err)
		}
		if e.RIndex < 0 || e.RIndex >= inst.R.Len() || e.PIndex < 0 || e.PIndex >= inst.P.Len() {
			return nil, fmt.Errorf("joininference: transcript entry %d: tuple (%d,%d) out of range",
				line, e.RIndex, e.PIndex)
		}
		ci := s.classIndexFor(e.RIndex, e.PIndex)
		if ci < 0 {
			return nil, fmt.Errorf("joininference: transcript entry %d: no class for tuple (%d,%d)",
				line, e.RIndex, e.PIndex)
		}
		if s.engine.IsLabeled(ci) {
			continue // duplicate of an earlier answer's class
		}
		if err := s.engine.Label(ci, Label(e.Positive)); err != nil {
			return nil, fmt.Errorf("joininference: transcript entry %d: %w", line, err)
		}
		s.asked++
	}
	return s, nil
}

// classIndexFor finds the T-class of a product tuple through a map from
// T-class predicate key to index, built once per session — so replay and
// undo stay linear in the number of answers.
func (s *Session) classIndexFor(ri, pi int) int {
	if s.classIdx == nil {
		cs := s.engine.Classes()
		s.classIdx = make(map[string]int, len(cs))
		for ci, c := range cs {
			s.classIdx[c.Theta.Key()] = ci
		}
	}
	theta := predicate.T(s.engine.U, s.engine.Inst.R.Tuples[ri], s.engine.Inst.P.Tuples[pi])
	ci, ok := s.classIdx[theta.Key()]
	if !ok {
		return -1
	}
	return ci
}

// ParsePredicate parses a textual predicate such as
// "Flight.To = Hotel.City AND Flight.Airline = Hotel.Discount" (or "TRUE"
// for the empty conjunction) over the universe's schemas.
func ParsePredicate(u *Universe, input string) (Pred, error) {
	return querytext.ParsePredicate(u, input)
}

// SQL renders a predicate as a runnable SQL join (or semijoin) over the
// instance's relations.
func SQL(u *Universe, p Pred, semijoin, pretty bool) string {
	return querytext.SQL(u, p, querytext.SQLOptions{Semijoin: semijoin, Pretty: pretty})
}

package joininference

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/inference"
	"repro/internal/predicate"
	"repro/internal/querytext"
)

// TranscriptEntry records one answered question, addressed by row indexes
// so a transcript replays against the same instance. Semijoin entries carry
// PIndex -1.
type TranscriptEntry struct {
	RIndex   int  `json:"r"`
	PIndex   int  `json:"p"`
	Positive bool `json:"positive"`
}

// Transcript returns the answered questions in order.
func (s *Session) Transcript() []TranscriptEntry {
	if s.sj != nil {
		return append([]TranscriptEntry(nil), s.sj.entries...)
	}
	var out []TranscriptEntry
	for _, ex := range s.engine.Sample().Examples() {
		out = append(out, TranscriptEntry{
			RIndex:   ex.RI,
			PIndex:   ex.PI,
			Positive: bool(ex.Label),
		})
	}
	return out
}

// SaveTranscript writes the session's transcript as JSON lines.
func (s *Session) SaveTranscript(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range s.Transcript() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("joininference: writing transcript: %w", err)
		}
	}
	return nil
}

// LoadTranscript parses a JSON-lines transcript and validates every entry
// against the instance's bounds: RIndex must name a row of R, and PIndex a
// row of P or -1 (a semijoin entry). Malformed JSON or out-of-range indexes
// — a corrupt file, or a transcript saved against a different instance —
// return an error wrapping ErrBadTranscript that names the offending entry,
// never a panic.
func LoadTranscript(inst *Instance, r io.Reader) ([]TranscriptEntry, error) {
	var out []TranscriptEntry
	dec := json.NewDecoder(r)
	for line := 1; ; line++ {
		var e TranscriptEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadTranscript, line, err)
		}
		if err := validateEntry(inst, e); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadTranscript, line, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// validateEntry checks one transcript entry against the instance's bounds
// (PIndex -1 marks a semijoin entry; below -1 is corruption).
func validateEntry(inst *Instance, e TranscriptEntry) error {
	if e.RIndex < 0 || e.RIndex >= inst.R.Len() {
		return fmt.Errorf("row %d of R out of range [0,%d)", e.RIndex, inst.R.Len())
	}
	if e.PIndex < -1 || e.PIndex >= inst.P.Len() {
		return fmt.Errorf("row %d of P out of range [0,%d) (or -1)", e.PIndex, inst.P.Len())
	}
	return nil
}

// ReplayTranscript builds a new join session over the instance and replays
// a JSON-lines transcript, re-validating bounds and consistency along the
// way (every failure wraps ErrBadTranscript). Entries whose class was
// already decided by earlier answers are skipped (they carry no
// information), mirroring what a live session would have asked. Semijoin
// transcripts (PIndex -1) are not replayable here — resume those through
// ResumeSession.
func ReplayTranscript(inst *Instance, r io.Reader) (*Session, error) {
	entries, err := LoadTranscript(inst, r)
	if err != nil {
		return nil, err
	}
	s := NewSession(inst)
	if err := s.replayEntries(entries, true); err != nil {
		return nil, err
	}
	return s, nil
}

// replayEntries replays join-transcript entries into a fresh session,
// validating bounds and consistency; every failure wraps ErrBadTranscript.
// skipDecided selects the policy for entries whose class is already
// labeled: transcripts skip them (duplicates carry no information),
// snapshots reject them (a live session never labels one class twice, so a
// duplicate means corruption).
func (s *Session) replayEntries(entries []TranscriptEntry, skipDecided bool) error {
	for i, e := range entries {
		if err := validateEntry(s.inst, e); err != nil {
			return fmt.Errorf("%w: entry %d: %v", ErrBadTranscript, i+1, err)
		}
		if e.PIndex < 0 {
			return fmt.Errorf("%w: entry %d: semijoin entry (row %d) in a join replay",
				ErrBadTranscript, i+1, e.RIndex)
		}
		ci := s.classIndexFor(e.RIndex, e.PIndex)
		if ci < 0 {
			return fmt.Errorf("%w: entry %d: no class for tuple (%d,%d)",
				ErrBadTranscript, i+1, e.RIndex, e.PIndex)
		}
		if s.engine.IsLabeled(ci) {
			if skipDecided {
				continue // duplicate of an earlier answer's class
			}
			return fmt.Errorf("%w: entry %d: class of tuple (%d,%d) already labeled",
				ErrBadTranscript, i+1, e.RIndex, e.PIndex)
		}
		if err := s.engine.Label(ci, Label(e.Positive)); err != nil {
			if errors.Is(err, inference.ErrInconsistent) {
				// Surface the public sentinel, matching Session.Answer and
				// the semijoin resume path.
				err = ErrInconsistent
			}
			return fmt.Errorf("%w: entry %d: %w", ErrBadTranscript, i+1, err)
		}
		s.asked++
	}
	return nil
}

// classIndexFor finds the T-class of a product tuple through a map from
// T-class predicate key to index, built once per session — so replay and
// undo stay linear in the number of answers.
func (s *Session) classIndexFor(ri, pi int) int {
	if s.classIdx == nil {
		cs := s.engine.Classes()
		s.classIdx = make(map[string]int, len(cs))
		for ci, c := range cs {
			s.classIdx[c.Theta.Key()] = ci
		}
	}
	theta := predicate.T(s.engine.U, s.engine.Inst.R.Tuples[ri], s.engine.Inst.P.Tuples[pi])
	ci, ok := s.classIdx[theta.Key()]
	if !ok {
		return -1
	}
	return ci
}

// ParsePredicate parses a textual predicate such as
// "Flight.To = Hotel.City AND Flight.Airline = Hotel.Discount" (or "TRUE"
// for the empty conjunction) over the universe's schemas.
func ParsePredicate(u *Universe, input string) (Pred, error) {
	return querytext.ParsePredicate(u, input)
}

// SQL renders a predicate as a runnable SQL join (or semijoin) over the
// instance's relations.
func SQL(u *Universe, p Pred, semijoin, pretty bool) string {
	return querytext.SQL(u, p, querytext.SQLOptions{Semijoin: semijoin, Pretty: pretty})
}

package joininference

import (
	"errors"
	"fmt"

	"repro/internal/inference"
)

// Public sentinel errors. Every error returned by the package wraps one of
// these (or an I/O / validation error), so callers dispatch with errors.Is
// instead of string matching. ErrInconsistent additionally wraps the
// internal inference sentinel, keeping errors.Is compatible across layers.
var (
	// ErrInconsistent reports that the recorded labels admit no consistent
	// predicate (lines 6–7 of Algorithm 1); with an honest oracle it never
	// occurs.
	ErrInconsistent error = fmt.Errorf("joininference: %w", inference.ErrInconsistent)

	// ErrBudgetExhausted reports that the session's question budget (see
	// WithBudget) is spent while informative questions remain. The session
	// stays usable: Inferred returns the best predicate so far.
	ErrBudgetExhausted = errors.New("joininference: question budget exhausted")

	// ErrUnknownStrategy reports a StrategyID the package does not know.
	ErrUnknownStrategy = errors.New("joininference: unknown strategy")
)

package joininference

import (
	"errors"
	"fmt"

	"repro/internal/inference"
)

// Public sentinel errors. Every error returned by the package wraps one of
// these (or an I/O / validation error), so callers dispatch with errors.Is
// instead of string matching. ErrInconsistent additionally wraps the
// internal inference sentinel, keeping errors.Is compatible across layers.
var (
	// ErrInconsistent reports that the recorded labels admit no consistent
	// predicate (lines 6–7 of Algorithm 1); with an honest oracle it never
	// occurs.
	ErrInconsistent error = fmt.Errorf("joininference: %w", inference.ErrInconsistent)

	// ErrBudgetExhausted reports that the session's question budget (see
	// WithBudget) is spent while informative questions remain. The session
	// stays usable: Inferred returns the best predicate so far.
	ErrBudgetExhausted = errors.New("joininference: question budget exhausted")

	// ErrUnknownStrategy reports a StrategyID the package does not know.
	ErrUnknownStrategy = errors.New("joininference: unknown strategy")

	// ErrBadTranscript reports a transcript that cannot be applied to the
	// instance at hand: malformed JSON, row indexes out of bounds, labels
	// inconsistent with every predicate, or join/semijoin entries fed to the
	// wrong kind of session. Wrapped errors carry the offending entry number.
	ErrBadTranscript = errors.New("joininference: bad transcript")

	// ErrBadQuestionRef reports a QuestionRef that does not address this
	// session's instance: indexes out of range, a semijoin ref on a join
	// session, or vice versa.
	ErrBadQuestionRef = errors.New("joininference: bad question ref")

	// ErrBadSnapshot reports a snapshot that cannot be resumed: an
	// unsupported version, an unknown kind, or internal inconsistencies
	// (see Snapshot for the compatibility policy).
	ErrBadSnapshot = errors.New("joininference: bad snapshot")

	// ErrNotSnapshottable reports a session whose state cannot be captured —
	// today only sessions configured with WithCustomStrategy, since a
	// caller-implemented Strategy may hold arbitrary unserializable state.
	ErrNotSnapshottable = errors.New("joininference: session cannot be snapshotted")
)

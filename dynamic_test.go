package joininference

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/inference"
	"repro/internal/paperdata"
)

// TestErrInconsistentWrapsInference pins the public error contract: the
// root ErrInconsistent must satisfy errors.Is against the internal
// inference sentinel (handlers match on either), including through
// further fmt.Errorf wrapping.
func TestErrInconsistentWrapsInference(t *testing.T) {
	if !errors.Is(ErrInconsistent, inference.ErrInconsistent) {
		t.Fatal("ErrInconsistent does not wrap inference.ErrInconsistent")
	}
	wrapped := fmt.Errorf("answering question 3: %w", ErrInconsistent)
	if !errors.Is(wrapped, ErrInconsistent) || !errors.Is(wrapped, inference.ErrInconsistent) {
		t.Fatal("wrapping breaks the ErrInconsistent chain")
	}
}

func TestApplyDeltaBasics(t *testing.T) {
	inst := paperdata.FlightHotel()
	cs := PrecomputeClasses(inst)

	if _, err := ApplyDelta(inst, nil, Delta{InsertR: []Tuple{{"X", "Y", "Z"}}}); err == nil {
		t.Fatal("ApplyDelta accepted nil classes")
	}

	ins := Delta{InsertR: []Tuple{{"NYC", "Lille", "BA"}}, InsertP: []Tuple{{"Lille", "BA"}}}
	upd, err := ApplyDelta(inst, cs, ins)
	if err != nil {
		t.Fatal(err)
	}
	if upd.Version() != 1 || upd.From != inst || upd.To.Version() != 1 {
		t.Fatalf("versions: upd.Version=%d From=%d To=%d", upd.Version(), upd.From.Version(), upd.To.Version())
	}
	if want := PrecomputeClasses(upd.To).Len(); upd.Classes.Len() != want {
		t.Fatalf("maintained %d classes, fresh compute has %d", upd.Classes.Len(), want)
	}
	if got := upd.Classes.Len() - cs.Len() + upd.ClassesRetired(); upd.ClassesMinted() != got {
		t.Fatalf("minted %d does not balance: %d classes -> %d, retired %d",
			upd.ClassesMinted(), cs.Len(), upd.Classes.Len(), upd.ClassesRetired())
	}

	// The old version is no longer the tip.
	if _, err := ApplyDelta(inst, cs, ins); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("delta on a stale tip: %v", err)
	}

	// Deletes retire what they empty, and the maintained set still matches a
	// fresh compute on the new version.
	upd2, err := ApplyDelta(upd.To, upd.Classes, Delta{DeleteR: []int{4}, DeleteP: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if upd2.Version() != 2 {
		t.Fatalf("version after second delta = %d", upd2.Version())
	}
	if want := PrecomputeClasses(upd2.To).Len(); upd2.Classes.Len() != want {
		t.Fatalf("after delete: maintained %d classes, fresh compute has %d", upd2.Classes.Len(), want)
	}
}

func TestApplyUpdateRejectsWrongVersion(t *testing.T) {
	inst := paperdata.FlightHotel()
	cs := PrecomputeClasses(inst)
	s := NewSession(inst, WithStrategy(StrategyBU), WithPrecomputedClasses(cs))

	upd1, err := ApplyDelta(inst, cs, Delta{InsertR: []Tuple{{"A", "B", "C"}}})
	if err != nil {
		t.Fatal(err)
	}
	upd2, err := ApplyDelta(upd1.To, upd1.Classes, Delta{InsertP: []Tuple{{"B", "C"}}})
	if err != nil {
		t.Fatal(err)
	}
	// The session is on v0; upd2 starts at v1.
	if err := s.ApplyUpdate(upd2); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("out-of-order update: %v", err)
	}
	if err := s.ApplyUpdate(nil); err == nil {
		t.Fatal("nil update accepted")
	}
	if err := s.ApplyUpdate(upd1); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdate(upd2); err != nil {
		t.Fatal(err)
	}
	if s.InstanceVersion() != 2 {
		t.Fatalf("session version = %d", s.InstanceVersion())
	}
}

// pruneForResume drops transcript entries whose rows the update deleted —
// exactly what a client resuming an old snapshot on the new version would
// have to do — and keeps everything else (RNG position included) intact.
func pruneForResume(snap *Snapshot, to *Instance) *Snapshot {
	out := *snap
	out.Transcript = nil
	for _, e := range snap.Transcript {
		if !to.RAlive(e.RIndex) {
			continue
		}
		if e.PIndex >= 0 && !to.PAlive(e.PIndex) {
			continue
		}
		out.Transcript = append(out.Transcript, e)
	}
	out.Asked = len(out.Transcript)
	return &out
}

// lockstep drives two sessions with the same oracle, requiring them to ask
// bit-identical questions at every step, for maxSteps answers (< 0 = until
// both are done). Returns the number of answers recorded.
func lockstep(t *testing.T, tag string, a, b *Session, oracle Oracle, maxSteps int) int {
	t.Helper()
	ctx := context.Background()
	steps := 0
	for maxSteps < 0 || steps < maxSteps {
		qa, err := a.NextQuestions(ctx, 1)
		if err != nil {
			t.Fatalf("%s: maintained session step %d: %v", tag, steps, err)
		}
		qb, err := b.NextQuestions(ctx, 1)
		if err != nil {
			t.Fatalf("%s: resumed session step %d: %v", tag, steps, err)
		}
		if len(qa) != len(qb) {
			t.Fatalf("%s: step %d: maintained has %d questions, resumed %d", tag, steps, len(qa), len(qb))
		}
		if len(qa) == 0 {
			break
		}
		if qa[0].Ref() != qb[0].Ref() {
			t.Fatalf("%s: step %d: maintained asks %v, resumed asks %v", tag, steps, qa[0].Ref(), qb[0].Ref())
		}
		l, err := oracle.Label(ctx, qa[0])
		if err != nil {
			t.Fatalf("%s: oracle: %v", tag, err)
		}
		if err := a.Answer(qa[0], l); err != nil {
			t.Fatalf("%s: maintained answer: %v", tag, err)
		}
		if err := b.Answer(qb[0], l); err != nil {
			t.Fatalf("%s: resumed answer: %v", tag, err)
		}
		steps++
	}
	return steps
}

// runDynamicDifferential is the acceptance differential for dynamic
// instances: a session maintained across deltas with ApplyUpdate must be
// indistinguishable — bit-identical question sequence, same inferred
// predicate — from a session snapshotted before each delta, pruned of
// deleted rows, and resumed fresh on the new version. When an update makes
// the recorded answers inconsistent (semijoin positives orphaned by a
// delete), the resume must fail the same way.
func runDynamicDifferential(t *testing.T, tag string, semijoinKind bool, mkOpts func(cs *ClassSet) []Option, inst *Instance, goal Pred, deltas []Delta) {
	t.Helper()
	cs := PrecomputeClasses(inst)
	oracle := HonestOracle(goal)

	var a *Session
	if semijoinKind {
		a = NewSemijoinSession(inst, mkOpts(nil)...)
	} else {
		a = NewSession(inst, mkOpts(cs)...)
	}
	driveRecording(t, a, goal, 2)

	var b *Session
	for i, d := range deltas {
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot before delta %d: %v", tag, i, err)
		}
		upd, err := ApplyDelta(inst, cs, d)
		if err != nil {
			t.Fatalf("%s: delta %d: %v", tag, i, err)
		}
		inst, cs = upd.To, upd.Classes

		aerr := a.ApplyUpdate(upd)
		var bopts []Option
		if semijoinKind {
			bopts = mkOpts(nil)
		} else {
			bopts = mkOpts(upd.Classes)
		}
		b, err = ResumeSession(upd.To, pruneForResume(snap, upd.To), bopts...)

		if aerr != nil {
			// The maintained path refused the update; the rebuild-from-
			// scratch path must refuse the same snapshot for the same reason.
			if !errors.Is(aerr, ErrInconsistent) {
				t.Fatalf("%s: delta %d: ApplyUpdate: %v", tag, i, aerr)
			}
			if err == nil || !errors.Is(err, ErrInconsistent) {
				t.Fatalf("%s: delta %d: maintained session inconsistent but resume says %v", tag, i, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("%s: delta %d: resume on v%d: %v", tag, i, upd.Version(), err)
		}
		if a.InstanceVersion() != upd.Version() {
			t.Fatalf("%s: session version %d after update to %d", tag, a.InstanceVersion(), upd.Version())
		}

		steps := -1
		if i < len(deltas)-1 {
			steps = 2 // keep the run alive for the next delta
		}
		lockstep(t, fmt.Sprintf("%s/v%d", tag, upd.Version()), a, b, oracle, steps)
	}

	// Both drove to completion on the final version; the inferred
	// predicates must select the same rows.
	if a.Done() != b.Done() {
		t.Fatalf("%s: maintained done=%v, resumed done=%v", tag, a.Done(), b.Done())
	}
	if semijoinKind {
		if !reflect.DeepEqual(SemijoinEval(inst, a.Inferred()), SemijoinEval(inst, b.Inferred())) {
			t.Fatalf("%s: inferred semijoins differ", tag)
		}
	} else {
		if !reflect.DeepEqual(Join(inst, a.Inferred()), Join(inst, b.Inferred())) {
			t.Fatalf("%s: inferred joins differ", tag)
		}
	}
}

// TestDynamicMaintainedMatchesResumeJoin runs the differential for every
// built-in strategy at Workers 1 and 4, over a delta script that inserts
// into both relations, deletes answered rows from both, and then mixes the
// two — so examples are dropped, classes are minted and retired, and the
// remap is non-trivial.
func TestDynamicMaintainedMatchesResumeJoin(t *testing.T) {
	deltas := []Delta{
		{InsertR: []Tuple{{"NYC", "Lille", "BA"}, {"Lille", "Paris", "AF"}}, InsertP: []Tuple{{"Lille", "BA"}}},
		{DeleteR: []int{1}, DeleteP: []int{0}},
		{InsertR: []Tuple{{"Paris", "Lille", "AA"}}, InsertP: []Tuple{{"NYC", "AA"}}, DeleteR: []int{4}},
	}
	for _, strat := range []StrategyID{StrategyBU, StrategyTD, StrategyL1S, StrategyL2S, StrategyRND} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", strat, workers), func(t *testing.T) {
				inst := paperdata.FlightHotel()
				u := NewSession(inst).Universe()
				goal, err := PredFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
				if err != nil {
					t.Fatal(err)
				}
				mkOpts := func(cs *ClassSet) []Option {
					opts := []Option{WithStrategy(strat), WithSeed(7), WithParallelism(workers)}
					if cs != nil {
						opts = append(opts, WithPrecomputedClasses(cs))
					}
					return opts
				}
				runDynamicDifferential(t, t.Name(), false, mkOpts, inst, goal, deltas)
			})
		}
	}
}

// TestDynamicMaintainedMatchesResumeSemijoin is the semijoin leg: R and P
// grow and answered R rows disappear across the run. (P deletions, which
// can orphan a positive answer, get their own test below.)
func TestDynamicMaintainedMatchesResumeSemijoin(t *testing.T) {
	deltas := []Delta{
		{InsertR: []Tuple{{"5", "5"}}, InsertP: []Tuple{{"7", "8", "9"}}},
		{DeleteR: []int{3}},
		{InsertR: []Tuple{{"0", "2"}}, InsertP: []Tuple{{"4", "4", "4"}}},
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			inst := paperdata.Example21()
			u := NewSession(inst).Universe()
			goal, err := PredFromNames(u, [2]string{"A1", "B2"})
			if err != nil {
				t.Fatal(err)
			}
			mkOpts := func(*ClassSet) []Option {
				return []Option{WithParallelism(workers)}
			}
			runDynamicDifferential(t, t.Name(), true, mkOpts, inst, goal, deltas)
		})
	}
}

// TestSemijoinUpdateOrphanedPositive: deleting every witness of a
// positively-answered R row makes the recorded sample unsatisfiable. The
// update must surface ErrInconsistent and leave the session untouched on
// its old version (for the owner to retire).
func TestSemijoinUpdateOrphanedPositive(t *testing.T) {
	inst := paperdata.Example21()
	cs := PrecomputeClasses(inst)
	s := NewSemijoinSession(inst)
	q, err := s.QuestionByRef(QuestionRef{RIndex: 0, PIndex: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Answer(q, Positive); err != nil {
		t.Fatal(err)
	}

	upd, err := ApplyDelta(inst, cs, Delta{DeleteP: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdate(upd); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("orphaned positive: %v", err)
	}
	if s.InstanceVersion() != 0 || s.Questions() != 1 {
		t.Fatalf("failed update mutated the session: version %d, asked %d", s.InstanceVersion(), s.Questions())
	}
	// The session is still serviceable on the old version.
	if _, err := s.NextQuestions(context.Background(), 1); err != nil {
		t.Fatalf("session unusable after refused update: %v", err)
	}
}

// TestPolicyCacheApplyUpdateKeepsEquivalence populates a shared policy
// cache on v0, migrates it across a delta, and checks the cache's
// soundness contract on the new version: a cached session must ask
// bit-identical questions to an uncached one. Migrated trees answer from
// memory; dropped trees recompute — either way the sequence cannot change.
func TestPolicyCacheApplyUpdateKeepsEquivalence(t *testing.T) {
	for _, strat := range []StrategyID{StrategyBU, StrategyTD, StrategyL1S, StrategyL2S, StrategyRND} {
		t.Run(string(strat), func(t *testing.T) {
			inst := paperdata.FlightHotel()
			cs := PrecomputeClasses(inst)
			u := NewSession(inst).Universe()
			goal, err := PredFromNames(u, [2]string{"To", "City"})
			if err != nil {
				t.Fatal(err)
			}
			pc := NewPolicyCache(0)
			warm := NewSession(inst, WithStrategy(strat), WithSeed(5),
				WithPrecomputedClasses(cs), WithPolicyCache(pc, "fh"))
			driveRecording(t, warm, goal, -1)

			upd, err := ApplyDelta(inst, cs, Delta{
				InsertR: []Tuple{{"Lille", "Paris", "BA"}},
				InsertP: []Tuple{{"Paris", "BA"}},
			})
			if err != nil {
				t.Fatal(err)
			}
			inv := pc.ApplyUpdate("fh", upd)
			if inv.TreesMigrated+inv.TreesDropped == 0 {
				t.Fatalf("no resident tree was touched: %+v", inv)
			}

			cached := NewSession(upd.To, WithStrategy(strat), WithSeed(5),
				WithPrecomputedClasses(upd.Classes), WithPolicyCache(pc, "fh"))
			plain := NewSession(upd.To, WithStrategy(strat), WithSeed(5),
				WithPrecomputedClasses(upd.Classes))
			lockstep(t, string(strat), plain, cached, HonestOracle(goal), -1)
			if !reflect.DeepEqual(Join(upd.To, plain.Inferred()), Join(upd.To, cached.Inferred())) {
				t.Fatal("cached and uncached sessions inferred different joins")
			}
		})
	}
}

package joininference

import (
	"testing"

	"repro/internal/paperdata"
)

func TestSemijoinConsistentPublic(t *testing.T) {
	inst := paperdata.Example21()
	theta, ok, err := SemijoinConsistent(inst, SemijoinSample{Keep: []int{0, 1}, Drop: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Section 6 sample should be consistent")
	}
	sel := map[int]bool{}
	for _, ri := range SemijoinEval(inst, theta) {
		sel[ri] = true
	}
	if !sel[0] || !sel[1] || sel[2] {
		t.Errorf("predicate selects %v", sel)
	}
	if _, _, err := SemijoinConsistent(inst, SemijoinSample{Keep: []int{99}}); err == nil {
		t.Error("invalid sample accepted")
	}
}

func TestInferSemijoinPublic(t *testing.T) {
	inst := paperdata.Example21()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"A1", "B2"})
	if err != nil {
		t.Fatal(err)
	}
	theta, asked, err := InferSemijoinGoal(inst, goal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if asked < 1 || asked > inst.R.Len() {
		t.Errorf("asked = %d", asked)
	}
	want := SemijoinEval(inst, goal)
	got := SemijoinEval(inst, theta)
	if len(want) != len(got) {
		t.Fatalf("semijoin differs: %v vs %v", got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("semijoin differs: %v vs %v", got, want)
		}
	}
}

func TestInferSemijoinCustomOracle(t *testing.T) {
	inst := paperdata.Example21()
	// User keeps rows whose A2 value is "2" (t2 and t3).
	keep := map[int]bool{1: true, 2: true}
	theta, asked, err := InferSemijoin(inst, func(ri int) bool { return keep[ri] }, 0)
	if err != nil {
		// The user's mental filter may be inexpressible as a semijoin on
		// this instance — the error path is legitimate API behaviour.
		t.Logf("inconsistent user filter detected after %d questions: %v", asked, err)
		return
	}
	sel := map[int]bool{}
	for _, ri := range SemijoinEval(inst, theta) {
		sel[ri] = true
	}
	for ri, want := range keep {
		if want && !sel[ri] {
			t.Errorf("row %d should be kept", ri)
		}
	}
}

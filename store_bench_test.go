package joininference

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/paperdata"
	"repro/internal/store"
)

// benchSnapshot builds a transcript-heavy snapshot for the codec benches.
func benchSnapshot(b *testing.B) *Snapshot {
	b.Helper()
	inst := paperdata.FlightHotel()
	u := NewSession(inst).Universe()
	goal, err := PredFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if err != nil {
		b.Fatal(err)
	}
	s := NewSession(inst, WithStrategy(StrategyBU))
	ctx := context.Background()
	oracle := HonestOracle(goal)
	for {
		qs, err := s.NextQuestions(ctx, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(qs) == 0 {
			break
		}
		l, _ := oracle.Label(ctx, qs[0])
		if err := s.Answer(qs[0], l); err != nil {
			b.Fatal(err)
		}
	}
	sn, err := s.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	return sn
}

// BenchmarkSnapshotEncode compares the store's binary snapshot codec with
// the legacy JSON form (the BENCH_store.json numbers).
func BenchmarkSnapshotEncode(b *testing.B) {
	sn := benchSnapshot(b)
	b.Run("json", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := sn.Encode(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	})
	b.Run("binary", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = sn.AppendBinary(buf[:0])
		}
		b.SetBytes(int64(len(buf)))
	})
}

func BenchmarkSnapshotDecode(b *testing.B) {
	sn := benchSnapshot(b)
	var jsonBuf bytes.Buffer
	if err := sn.Encode(&jsonBuf); err != nil {
		b.Fatal(err)
	}
	binBuf := sn.AppendBinary(nil)
	b.Run("json", func(b *testing.B) {
		b.SetBytes(int64(jsonBuf.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeSnapshotBytes(jsonBuf.Bytes()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.SetBytes(int64(len(binBuf)))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeSnapshotBytes(binBuf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPolicyColdStart compares the first question of a fresh L2S
// session computed live against one served by paging a warm tree in from
// the store — the latency the store tier saves on popular instances.
func BenchmarkPolicyColdStart(b *testing.B) {
	inst := paperdata.FlightHotel()
	classes := PrecomputeClasses(inst)
	ctx := context.Background()
	base := []Option{WithStrategy(StrategyL2S), WithPrecomputedClasses(classes)}

	b.Run("live-compute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := NewSession(inst, base...)
			if _, err := s.NextQuestions(ctx, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("store-page-in", func(b *testing.B) {
		kv := store.NewMem()
		warm := NewPolicyCache(0)
		warm.AttachStore(kv, 0)
		s := NewSession(inst, append(append([]Option(nil), base...), WithPolicyCache(warm, "fh"))...)
		if _, err := s.NextQuestions(ctx, 1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Fresh LRU each iteration: every lookup must page in from the
			// store, as it would on the first request after a restart.
			cold := NewPolicyCache(0)
			cold.AttachStore(kv, 0)
			s := NewSession(inst, append(append([]Option(nil), base...), WithPolicyCache(cold, "fh"))...)
			if _, err := s.NextQuestions(ctx, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package joininference

import (
	"context"
	"math/big"
	"testing"

	"repro/internal/paperdata"
)

func TestProgressAndCandidates(t *testing.T) {
	inst := paperdata.FlightHotel()
	s := NewSession(inst, WithStrategy(StrategyL1S))
	p0 := s.Progress()
	if p0.Answered != 0 || p0.TotalClasses != s.Classes() {
		t.Errorf("initial progress = %+v", p0)
	}
	if p0.Candidates == nil || p0.Candidates.Cmp(big.NewInt(1)) <= 0 {
		t.Errorf("initial candidates = %v", p0.Candidates)
	}

	u := s.Universe()
	goal, err := ParsePredicate(u, "To = City")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	oracle := HonestOracle(goal)
	var prev *big.Int = p0.Candidates
	for {
		qs, err := s.NextQuestions(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			break
		}
		l, err := oracle.Label(ctx, qs[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Answer(qs[0], l); err != nil {
			t.Fatal(err)
		}
		cur := s.Progress().Candidates
		if cur.Cmp(prev) >= 0 {
			t.Fatalf("candidates did not shrink: %v → %v", prev, cur)
		}
		prev = cur
	}
	// Done: enumerate the survivors; all must be instance-equivalent.
	cands := s.Candidates(16)
	if cands == nil || len(cands) == 0 {
		t.Fatal("no candidates enumerated")
	}
	wantLen := len(Join(inst, s.Inferred()))
	for _, c := range cands {
		if len(Join(inst, c)) != wantLen {
			t.Errorf("candidate %v not instance-equivalent", c.Format(u))
		}
	}
}

// TestExplainFigure5 cross-checks Explain against Figure 5: on Example 2.1
// with an empty sample, the ∅ tuple decides 11 tuples if labeled yes and 0
// if labeled no.
func TestExplainFigure5(t *testing.T) {
	inst := paperdata.Example21()
	s := NewSession(inst, WithStrategy(StrategyBU))
	// Find the question for the ∅ class by asking BU (it starts at ∅).
	qs, err := s.NextQuestions(context.Background(), 1)
	if err != nil || len(qs) == 0 {
		t.Fatalf("no question: %v", err)
	}
	q := qs[0]
	ex := s.ExplainQuestion(q)
	if ex.DecidedIfYes != 11 || ex.DecidedIfNo != 0 {
		t.Errorf("decided = (%d, %d), want (11, 0)", ex.DecidedIfYes, ex.DecidedIfNo)
	}
	// Candidate split: a yes leaves only ∅ (1 candidate); a no removes ∅
	// from the 64 (63 candidates). The split must partition the space.
	if ex.CandidatesIfYes.Int64() != 1 || ex.CandidatesIfNo.Int64() != 63 {
		t.Errorf("candidates = (%v, %v), want (1, 63)", ex.CandidatesIfYes, ex.CandidatesIfNo)
	}
	total := s.Progress().Candidates.Int64()
	if ex.CandidatesIfYes.Int64()+ex.CandidatesIfNo.Int64() != total {
		t.Errorf("candidate split %v + %v ≠ %v",
			ex.CandidatesIfYes, ex.CandidatesIfNo, total)
	}
	// Explain must not mutate the session.
	if s.Questions() != 0 {
		t.Error("Explain recorded an answer")
	}
}

func TestUndo(t *testing.T) {
	ctx := context.Background()
	inst := paperdata.FlightHotel()
	s := NewSession(inst)
	if err := s.Undo(); err == nil {
		t.Error("undo of empty session accepted")
	}

	next := func() Question {
		t.Helper()
		qs, err := s.NextQuestions(ctx, 1)
		if err != nil || len(qs) == 0 {
			t.Fatalf("no question: %v", err)
		}
		return qs[0]
	}
	if err := s.Answer(next(), Positive); err != nil {
		t.Fatal(err)
	}
	afterOne := s.Inferred()
	if err := s.Answer(next(), Negative); err != nil {
		t.Fatal(err)
	}
	if s.Questions() != 2 {
		t.Fatalf("questions = %d", s.Questions())
	}

	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if s.Questions() != 1 {
		t.Errorf("after undo questions = %d, want 1", s.Questions())
	}
	if !s.Inferred().Equal(afterOne) {
		t.Error("undo did not restore the one-answer state")
	}

	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if s.Questions() != 0 {
		t.Errorf("after second undo questions = %d, want 0", s.Questions())
	}
	// The session is usable again after undo.
	next()
}

package joininference

import (
	"fmt"
	"sort"

	"repro/internal/belief"
	"repro/internal/inference"
	"repro/internal/predicate"
	"repro/internal/semijoin"
)

// WithSoftInference turns on the error-tolerant soft layer: answers become
// weighted votes accumulating per-class log-odds belief, and a label
// commits to the exact version-space engine only when the net belief
// magnitude reaches threshold. A non-positive threshold means 1 — a single
// unit vote decides, which (with a zero error budget) makes the session's
// question sequence bit-identical to the hard path. Combine with
// WithErrorBudget to absorb and later correct wrong commits instead of
// surfacing ErrInconsistent.
func WithSoftInference(threshold float64) Option {
	return func(c *sessionConfig) {
		c.soft = true
		c.softThreshold = threshold
	}
}

// WithErrorBudget allows up to n committed answers to be retracted over the
// session's lifetime: when a commit contradicts the version space, the
// session searches the committed transcript for a minimal set of answers
// (lowest belief first, violated negatives first) whose removal restores
// consistency, replays the engine without them, and re-opens their
// questions — instead of rejecting the new answer with ErrInconsistent.
// The option implies soft inference (at the default threshold unless
// WithSoftInference also appears). Contradictions beyond the budget fall
// back to the hard path's behavior: the offending answer is rejected, the
// session stays intact.
func WithErrorBudget(n int) Option {
	return func(c *sessionConfig) {
		c.soft = true
		c.errorBudget = n
	}
}

// Vote identifies the provenance of one soft answer: the worker who cast
// it and the weight of their voice (a log-odds reliability estimate;
// non-positive or non-finite weights count as 1 unit vote).
type Vote struct {
	Worker string
	Weight float64
}

// WorkerVote is one recorded vote behind a committed (or retracted)
// answer, reported by SoftEvents and Explain.
type WorkerVote struct {
	Worker   string  `json:"worker,omitempty"`
	Weight   float64 `json:"weight"`
	Positive bool    `json:"positive"`
}

// SoftEventKind labels a SoftEvent.
type SoftEventKind string

const (
	// SoftCommit records a label crossing the belief threshold into the
	// hard engine.
	SoftCommit SoftEventKind = "commit"
	// SoftRetract records a committed label being withdrawn to restore
	// consistency; its question re-opens.
	SoftRetract SoftEventKind = "retract"
)

// SoftEvent is one commit or retraction, with the votes that backed the
// answer — the feedback signal for worker-reliability models (a retracted
// answer's supporters were probably wrong).
type SoftEvent struct {
	Kind     SoftEventKind `json:"kind"`
	Ref      QuestionRef   `json:"ref"`
	Positive bool          `json:"positive"`
	Votes    []WorkerVote  `json:"votes,omitempty"`
}

// maxSoftEvents bounds the undrained event queue so a caller that never
// reads SoftEvents cannot leak memory; the oldest events drop first.
const maxSoftEvents = 1024

// SoftEventAbsorber is implemented by oracles that learn from commit and
// retraction events (ReliabilityOracle does); Run feeds them automatically.
type SoftEventAbsorber interface {
	Absorb(events []SoftEvent)
}

// SoftStats reports the soft layer's state.
type SoftStats struct {
	// Enabled is false for hard sessions (all other fields are zero).
	Enabled bool `json:"enabled"`
	// Threshold and ErrorBudget echo the options (after normalization).
	Threshold   float64 `json:"threshold"`
	ErrorBudget int     `json:"error_budget"`
	// Votes counts every recorded vote; with a budget set, this is the
	// quantity the budget caps.
	Votes int `json:"votes"`
	// Pending counts classes holding votes that have not committed yet.
	Pending int `json:"pending"`
	// Retractions counts committed answers withdrawn so far (budget spent).
	Retractions int `json:"retractions"`
}

// Soft reports whether the session runs the error-tolerant soft layer.
func (s *Session) Soft() bool { return s.soft != nil }

// SoftStats returns the soft layer's counters (zero value for hard
// sessions).
func (s *Session) SoftStats() SoftStats {
	if s.soft == nil {
		return SoftStats{}
	}
	pending := 0
	for _, k := range s.soft.Keys() {
		if b := s.soft.Get(k); b != (belief.Belief{}) && !s.softKeyCommitted(k) {
			pending++
		}
	}
	return SoftStats{
		Enabled:     true,
		Threshold:   s.soft.Threshold,
		ErrorBudget: s.soft.Budget,
		Votes:       s.soft.Votes,
		Pending:     pending,
		Retractions: s.soft.Spent,
	}
}

// softKeyCommitted reports whether key's class (or row) carries a
// committed label.
func (s *Session) softKeyCommitted(key int) bool {
	if s.sj != nil {
		return key >= 0 && key < len(s.sj.labeled) && s.sj.labeled[key]
	}
	return key >= 0 && key < len(s.engine.Classes()) && s.engine.IsLabeled(key)
}

// SoftEvents drains the queued commit/retraction events (oldest first).
func (s *Session) SoftEvents() []SoftEvent {
	evs := s.softEvents
	s.softEvents = nil
	return evs
}

func (s *Session) pushEvent(ev SoftEvent) {
	s.softEvents = append(s.softEvents, ev)
	if over := len(s.softEvents) - maxSoftEvents; over > 0 {
		s.softEvents = append(s.softEvents[:0], s.softEvents[over:]...)
	}
}

// interactions is the quantity WithBudget caps: recorded votes for soft
// sessions (every vote costs money in the crowdsourcing deployment),
// committed answers otherwise.
func (s *Session) interactions() int {
	if s.soft != nil {
		return s.soft.Votes
	}
	return s.asked
}

// softKey maps a question to its belief key (class index for join, row
// index for semijoin) or an error when the question does not belong to
// this session.
func (s *Session) softKey(q Question) (int, error) {
	if s.sj != nil {
		if !q.Semijoin() || q.RIndex < 0 || q.RIndex >= len(s.sj.labeled) {
			return 0, fmt.Errorf("joininference: question was not produced by this semijoin session")
		}
		return q.RIndex, nil
	}
	if q.classIndex < 0 || q.classIndex >= len(s.engine.Classes()) {
		return 0, fmt.Errorf("joininference: question was not produced by this join session")
	}
	return q.classIndex, nil
}

// AnswerVote records one weighted vote for a question of a soft session
// (WithSoftInference). The vote accumulates into the class's belief; when
// the net belief magnitude reaches the threshold, the majority label
// commits to the exact engine — and a commit contradicting earlier answers
// triggers the error-budget retraction search instead of failing. Returns
// ErrBudgetExhausted when WithBudget's allowance (counted in votes) is
// spent, and ErrInconsistent only when a contradiction cannot be absorbed
// within the error budget (the offending answer is then rejected and its
// belief cleared; the session stays intact, exactly like the hard path).
func (s *Session) AnswerVote(q Question, l Label, v Vote) error {
	if s.soft == nil {
		return fmt.Errorf("joininference: AnswerVote requires WithSoftInference")
	}
	if s.cfg.budget > 0 && s.soft.Votes >= s.cfg.budget {
		return ErrBudgetExhausted
	}
	key, err := s.softKey(q)
	if err != nil {
		return err
	}
	s.soft.Vote(key, bool(l), v.Weight, v.Worker)
	positive, decided := s.soft.Decided(key)
	if !decided {
		return nil
	}
	if s.sj != nil {
		return s.softCommitSemijoin(q, Label(positive))
	}
	return s.softCommitJoin(q, Label(positive))
}

// workerVotes copies the recorded votes behind key into the public form.
func (s *Session) workerVotes(key int) []WorkerVote {
	recs := s.soft.VotesFor(key)
	if len(recs) == 0 {
		return nil
	}
	out := make([]WorkerVote, len(recs))
	for i, r := range recs {
		out[i] = WorkerVote{Worker: r.Worker, Weight: r.Weight, Positive: r.Positive}
	}
	return out
}

// disputedQuestions lists re-verification questions: refs holding votes
// that never committed, on classes (or rows) the committed sample already
// decides — exactly the questions a strategy will never serve again. They
// only exist after a retraction repair (evidence was set aside), and
// re-asking them is how a repair that guessed wrong gets corrected: the
// re-asks grow the disputed side's belief until it either re-commits
// consistently or wins the next contradiction's suspicion ordering.
func (s *Session) disputedQuestions(k int) []Question {
	if s.soft == nil || s.soft.Spent == 0 {
		return nil
	}
	var qs []Question
	if s.sj != nil {
		for _, ri := range s.soft.Keys() {
			if ri < 0 || ri >= len(s.sj.labeled) || s.sj.labeled[ri] || s.soft.Get(ri).Net() == 0 {
				continue
			}
			q := s.semijoinQuestion(ri)
			if s.IsInformative(q) {
				continue // the normal flow re-asks it
			}
			qs = append(qs, q)
			if len(qs) == k {
				break
			}
		}
		return qs
	}
	for _, ci := range s.soft.Keys() {
		if ci < 0 || ci >= len(s.engine.Classes()) || s.engine.IsLabeled(ci) ||
			s.soft.Get(ci).Net() == 0 || s.engine.Informative(ci) {
			continue
		}
		qs = append(qs, s.question(ci))
		if len(qs) == k {
			break
		}
	}
	return qs
}

// softCommitJoin pushes a threshold-clearing label into the hard engine,
// recovering via retraction when it contradicts the committed sample.
func (s *Session) softCommitJoin(q Question, l Label) error {
	ci := q.classIndex
	if s.engine.IsLabeled(ci) && s.engine.CertainPositive(ci) == bool(l) {
		return nil // already committed with this label; the extra evidence is absorbed
	}
	if err := s.engine.Label(ci, l); err != nil {
		if err == inference.ErrInconsistent {
			// Label records the example before detecting inconsistency; roll
			// back first so the committed transcript is clean, then search
			// for a retraction within the error budget.
			tr := s.Transcript()
			if rbErr := s.rebuildJoin(tr[:len(tr)-1]); rbErr != nil {
				return fmt.Errorf("joininference: rolling back inconsistent answer: %w", rbErr)
			}
			newEntry := TranscriptEntry{RIndex: q.RIndex, PIndex: q.PIndex, Positive: bool(l)}
			return s.softRecoverJoin(tr[:len(tr)-1], newEntry, ci)
		}
		return fmt.Errorf("joininference: %w", err)
	}
	s.asked++
	s.markRNG()
	s.pushEvent(SoftEvent{Kind: SoftCommit, Ref: QuestionRef{RIndex: q.RIndex, PIndex: q.PIndex}, Positive: bool(l), Votes: s.workerVotes(ci)})
	return nil
}

// softRecoverJoin searches for the cheapest repair that restores
// consistency, bounded by the remaining error budget: discard the new
// answer, or retract committed ones. Candidates — the new answer included —
// rank by suspicion (see joinRetractionCandidates); phase 1 tries single
// repairs in that order, phase 2 grows a prefix of the committed
// candidates. A discarded or retracted answer keeps its accumulated votes:
// its question is disputed, NextQuestions re-serves it, and the fresh
// evidence either re-commits it or singles out the actual lie at the next
// contradiction. When nothing within budget helps, the new answer is
// rejected exactly like the hard path.
func (s *Session) softRecoverJoin(committed []TranscriptEntry, newEntry TranscriptEntry, newKey int) error {
	if remaining := s.soft.Remaining(); remaining > 0 {
		cands := s.joinRetractionCandidates(committed, newEntry)
		dropped := cands[:0:0]
		for _, i := range cands {
			if i == len(committed) {
				return s.performDiscard(newEntry, newKey)
			}
			dropped = append(dropped, i)
			if trial, ok := s.joinTrial(committed, []int{i}, newEntry); ok {
				return s.performJoinRetraction(committed, []int{i}, trial, newKey, newEntry)
			}
		}
		for k := 2; k <= remaining && k <= len(dropped); k++ {
			if trial, ok := s.joinTrial(committed, dropped[:k], newEntry); ok {
				return s.performJoinRetraction(committed, dropped[:k], trial, newKey, newEntry)
			}
		}
	}
	s.soft.Reset(newKey)
	return ErrInconsistent
}

// performDiscard spends budget on the incoming answer itself: the committed
// sample stands, the new answer is set aside as disputed (its votes stay —
// re-asks accumulate on top of them) and nothing commits. Shared by join
// and semijoin recovery; the engine was already rolled back by the caller.
func (s *Session) performDiscard(newEntry TranscriptEntry, newKey int) error {
	s.soft.Spent++
	s.pushEvent(SoftEvent{Kind: SoftRetract, Ref: QuestionRef{RIndex: newEntry.RIndex, PIndex: newEntry.PIndex},
		Positive: newEntry.Positive, Votes: s.workerVotes(newKey)})
	return nil
}

// joinRetractionCandidates orders the answers in conflict — the committed
// entries plus the incoming one (index len(committed), meaning "discard the
// new answer") — by suspicion: ascending belief magnitude first (the answer
// with the least evidence behind it is the most likely lie), then negatives
// the trial T(S+) violates (the version-space math says an inconsistency is
// always "tpos ⊆ some negative's θ", so one of those negatives is lying
// whenever the positives are honest), then most recent answer first — an
// old commit has survived every consistency check since it was made, while
// the newest one has survived none. With one vote everywhere the first
// repair is a guess; if it was wrong, the disputed question's re-asks grow
// its belief and the next contradiction ranks the actual lie first.
func (s *Session) joinRetractionCandidates(committed []TranscriptEntry, newEntry TranscriptEntry) []int {
	tpos := predicate.Omega(s.engine.U)
	for _, e := range committed {
		if e.Positive {
			tpos = tpos.Intersect(s.entryTheta(e))
		}
	}
	if newEntry.Positive {
		tpos = tpos.Intersect(s.entryTheta(newEntry))
	}
	type cand struct {
		idx      int
		violated bool
		belief   float64
	}
	cands := make([]cand, 0, len(committed)+1)
	for i, e := range committed {
		c := cand{idx: i, belief: s.soft.Get(s.classIndexFor(e.RIndex, e.PIndex)).Abs()}
		if !e.Positive && tpos.MoreGeneralThan(s.entryTheta(e)) {
			c.violated = true
		}
		cands = append(cands, c)
	}
	nc := cand{idx: len(committed), belief: s.soft.Get(s.classIndexFor(newEntry.RIndex, newEntry.PIndex)).Abs()}
	if !newEntry.Positive && tpos.MoreGeneralThan(s.entryTheta(newEntry)) {
		nc.violated = true
	}
	cands = append(cands, nc)
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].belief != cands[j].belief {
			return cands[i].belief < cands[j].belief
		}
		if cands[i].violated != cands[j].violated {
			return cands[i].violated
		}
		return cands[i].idx > cands[j].idx
	})
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.idx
	}
	return out
}

// entryTheta returns the most specific predicate of the entry's T-class.
func (s *Session) entryTheta(e TranscriptEntry) Pred {
	return s.engine.Classes()[s.classIndexFor(e.RIndex, e.PIndex)].Theta
}

// joinTrial builds committed minus the dropped indexes plus newEntry and
// reports whether the result replays consistently on a fresh engine.
func (s *Session) joinTrial(committed []TranscriptEntry, drop []int, newEntry TranscriptEntry) ([]TranscriptEntry, bool) {
	trial := append(dropEntries(committed, drop), newEntry)
	fresh := inference.New(s.engine.Inst, inference.WithClasses(s.engine.Classes()))
	for _, e := range trial {
		ci := s.classIndexFor(e.RIndex, e.PIndex)
		if ci < 0 {
			return nil, false
		}
		if err := fresh.Label(ci, Label(e.Positive)); err != nil {
			return nil, false
		}
	}
	return trial, true
}

// dropEntries copies entries, skipping the listed indexes.
func dropEntries(entries []TranscriptEntry, drop []int) []TranscriptEntry {
	skip := make(map[int]bool, len(drop))
	for _, i := range drop {
		skip[i] = true
	}
	out := make([]TranscriptEntry, 0, len(entries)+1)
	for i, e := range entries {
		if !skip[i] {
			out = append(out, e)
		}
	}
	return out
}

// performJoinRetraction spends budget on the dropped entries, rebuilds the
// engine on the trial transcript, and emits the retract/commit events. The
// dropped entries keep their beliefs: their questions re-open as disputed,
// and the retained votes make a wrongly retracted answer win the next
// contradiction once re-asks corroborate it. rngMark is kept, like the hard
// path's rollback: the committed answer count changed but the RND stream
// position of the last draw did not.
func (s *Session) performJoinRetraction(committed []TranscriptEntry, drop []int, trial []TranscriptEntry, newKey int, newEntry TranscriptEntry) error {
	for _, i := range drop {
		e := committed[i]
		k := s.classIndexFor(e.RIndex, e.PIndex)
		s.pushEvent(SoftEvent{Kind: SoftRetract, Ref: QuestionRef{RIndex: e.RIndex, PIndex: e.PIndex}, Positive: e.Positive, Votes: s.workerVotes(k)})
		s.soft.Spent++
	}
	if err := s.rebuildJoin(trial); err != nil {
		return fmt.Errorf("joininference: rebuilding after retraction: %w", err)
	}
	s.pushEvent(SoftEvent{Kind: SoftCommit, Ref: QuestionRef{RIndex: newEntry.RIndex, PIndex: newEntry.PIndex}, Positive: newEntry.Positive, Votes: s.workerVotes(newKey)})
	return nil
}

// softCommitSemijoin is the semijoin counterpart of softCommitJoin. A
// commit flipping the row's own earlier label goes straight to the
// retraction search (the row cannot sit on both sides of the sample).
func (s *Session) softCommitSemijoin(q Question, l Label) error {
	ri := q.RIndex
	newEntry := TranscriptEntry{RIndex: ri, PIndex: -1, Positive: bool(l)}
	if s.sj.labeled[ri] {
		if prev, ok := s.semijoinLabelOf(ri); ok && prev == bool(l) {
			return nil // already committed with this label
		}
		return s.softRecoverSemijoin(newEntry, ri)
	}
	next := semijoin.Sample{Pos: s.sj.sample.Pos, Neg: s.sj.sample.Neg}
	if l == Positive {
		next.Pos = append(append([]int(nil), next.Pos...), ri)
	} else {
		next.Neg = append(append([]int(nil), next.Neg...), ri)
	}
	theta, ok, err := s.sj.solver.Consistent(next)
	if err != nil {
		return fmt.Errorf("joininference: %w", err)
	}
	if !ok {
		return s.softRecoverSemijoin(newEntry, ri)
	}
	s.sj.sample = next
	s.sj.labeled[ri] = true
	s.sj.entries = append(s.sj.entries, newEntry)
	s.sj.current = theta
	s.sj.valid = true
	s.asked++
	s.pushEvent(SoftEvent{Kind: SoftCommit, Ref: QuestionRef{RIndex: ri, PIndex: -1}, Positive: bool(l), Votes: s.workerVotes(ri)})
	return nil
}

// semijoinLabelOf returns the committed label of row ri.
func (s *Session) semijoinLabelOf(ri int) (positive, ok bool) {
	for _, e := range s.sj.entries {
		if e.RIndex == ri {
			return e.Positive, true
		}
	}
	return false, false
}

// softRecoverSemijoin mirrors softRecoverJoin for row samples. Semijoin has
// no cheap "violated negative" identification (consistency itself is the
// NP-complete CONS⋉), so candidates — the incoming answer included, as
// index len(committed) — order purely by ascending belief magnitude, most
// recent answer first (see joinRetractionCandidates).
func (s *Session) softRecoverSemijoin(newEntry TranscriptEntry, newKey int) error {
	committed := s.sj.entries
	if remaining := s.soft.Remaining(); remaining > 0 {
		type cand struct {
			idx    int
			belief float64
		}
		cands := make([]cand, 0, len(committed)+1)
		for i, e := range committed {
			cands = append(cands, cand{idx: i, belief: s.soft.Get(e.RIndex).Abs()})
		}
		// A flip of an already-labeled row shares its belief key with the
		// committed entry — the evidence as a whole now favors the new
		// label, so discarding the new answer is never the right repair.
		if !s.sj.labeled[newEntry.RIndex] {
			cands = append(cands, cand{idx: len(committed), belief: s.soft.Get(newKey).Abs()})
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].belief != cands[j].belief {
				return cands[i].belief < cands[j].belief
			}
			return cands[i].idx > cands[j].idx
		})
		order := make([]int, 0, len(cands))
		for _, c := range cands {
			if c.idx == len(committed) {
				continue
			}
			order = append(order, c.idx)
		}
		for _, c := range cands {
			if c.idx == len(committed) {
				return s.performDiscard(newEntry, newKey)
			}
			if trial, ok, err := s.semijoinTrial(committed, []int{c.idx}, newEntry); err != nil {
				return err
			} else if ok {
				return s.performSemijoinRetraction(committed, []int{c.idx}, trial, newKey, newEntry)
			}
		}
		for k := 2; k <= remaining && k <= len(order); k++ {
			if trial, ok, err := s.semijoinTrial(committed, order[:k], newEntry); err != nil {
				return err
			} else if ok {
				return s.performSemijoinRetraction(committed, order[:k], trial, newKey, newEntry)
			}
		}
	}
	s.soft.Reset(newKey)
	return ErrInconsistent
}

// semijoinTrial checks whether committed minus drop plus newEntry admits a
// consistent witness predicate.
func (s *Session) semijoinTrial(committed []TranscriptEntry, drop []int, newEntry TranscriptEntry) ([]TranscriptEntry, bool, error) {
	trial := append(dropEntries(committed, drop), newEntry)
	var sm semijoin.Sample
	seen := make(map[int]bool, len(trial))
	for _, e := range trial {
		if seen[e.RIndex] {
			return nil, false, nil // row on both sides: never consistent
		}
		seen[e.RIndex] = true
		if e.Positive {
			sm.Pos = append(sm.Pos, e.RIndex)
		} else {
			sm.Neg = append(sm.Neg, e.RIndex)
		}
	}
	_, ok, err := s.sj.solver.Consistent(sm)
	if err != nil {
		return nil, false, fmt.Errorf("joininference: %w", err)
	}
	return trial, ok, nil
}

// performSemijoinRetraction rebuilds the semijoin state on the trial
// transcript (the solver carries over: its witness cache is instance-bound)
// and emits the events.
func (s *Session) performSemijoinRetraction(committed []TranscriptEntry, drop []int, trial []TranscriptEntry, newKey int, newEntry TranscriptEntry) error {
	for _, i := range drop {
		e := committed[i]
		s.pushEvent(SoftEvent{Kind: SoftRetract, Ref: QuestionRef{RIndex: e.RIndex, PIndex: -1}, Positive: e.Positive, Votes: s.workerVotes(e.RIndex)})
		s.soft.Spent++
	}
	st := &semijoinState{u: s.sj.u, solver: s.sj.solver, labeled: make([]bool, s.inst.R.Len())}
	for _, e := range trial {
		if e.Positive {
			st.sample.Pos = append(st.sample.Pos, e.RIndex)
		} else {
			st.sample.Neg = append(st.sample.Neg, e.RIndex)
		}
		st.labeled[e.RIndex] = true
		st.entries = append(st.entries, e)
	}
	s.sj = st
	s.asked = len(trial)
	s.pushEvent(SoftEvent{Kind: SoftCommit, Ref: QuestionRef{RIndex: newEntry.RIndex, PIndex: -1}, Positive: newEntry.Positive, Votes: s.workerVotes(newKey)})
	return nil
}

// AnswerAttribution scores one committed answer's contribution to the
// inferred predicate (Explain).
type AnswerAttribution struct {
	// Ref addresses the answered question; Positive is the committed label.
	Ref      QuestionRef `json:"ref"`
	Positive bool        `json:"positive"`
	// Score is the Banzhaf-style contribution: the fraction of coalitions
	// of the other answers whose version-space outcome this answer changes
	// (0 = dead weight, 1 = pivotal everywhere). For semijoin sessions it
	// is 1 when Critical, else 0.
	Score float64 `json:"score"`
	// Critical reports whether dropping just this answer changes the
	// outcome given all the others.
	Critical bool `json:"critical"`
	// Workers lists the votes behind the answer (soft sessions only).
	Workers []WorkerVote `json:"workers,omitempty"`
}

// Explain attributes the inferred predicate to the committed answers: a
// Banzhaf-style score per answer ("why did you infer this join?") that
// doubles as a worker-quality signal when votes carry worker ids. Join
// sessions get exact coalition enumeration for up to 13 answers and
// deterministic seeded sampling beyond; semijoin sessions get the drop-one
// criticality test (each probe is a CONS⋉ decision).
func (s *Session) Explain() []AnswerAttribution {
	tr := s.Transcript()
	if len(tr) == 0 {
		return nil
	}
	out := make([]AnswerAttribution, len(tr))
	for i, e := range tr {
		out[i] = AnswerAttribution{Ref: QuestionRef{RIndex: e.RIndex, PIndex: e.PIndex}, Positive: e.Positive}
		if s.soft != nil {
			key := e.RIndex
			if s.sj == nil {
				key = s.classIndexFor(e.RIndex, e.PIndex)
			}
			out[i].Workers = s.workerVotes(key)
		}
	}
	if s.sj != nil {
		for i := range out {
			if changed, err := s.semijoinDropOneChanges(tr, i); err == nil && changed {
				out[i].Critical = true
				out[i].Score = 1
			}
		}
		return out
	}
	answers := make([]belief.LabeledPred, len(tr))
	for i, e := range tr {
		answers[i] = belief.LabeledPred{Theta: s.entryTheta(e), Positive: e.Positive}
	}
	classes := s.engine.Classes()
	thetas := make([]predicate.Pred, len(classes))
	for i, c := range classes {
		thetas[i] = c.Theta
	}
	scores := belief.Attribution(s.engine.U, thetas, answers, s.cfg.seed)
	crit := belief.DropOneCritical(s.engine.U, thetas, answers)
	for i := range out {
		out[i].Score = scores[i]
		out[i].Critical = crit[i]
	}
	return out
}

// semijoinDropOneChanges reports whether removing answer i changes the
// consistent witness predicate the solver finds for the remaining sample.
func (s *Session) semijoinDropOneChanges(tr []TranscriptEntry, i int) (bool, error) {
	full, fullOK, err := s.sj.solver.Consistent(s.sj.sample)
	if err != nil {
		return false, err
	}
	var sm semijoin.Sample
	for j, e := range tr {
		if j == i {
			continue
		}
		if e.Positive {
			sm.Pos = append(sm.Pos, e.RIndex)
		} else {
			sm.Neg = append(sm.Neg, e.RIndex)
		}
	}
	sub, subOK, err := s.sj.solver.Consistent(sm)
	if err != nil {
		return false, err
	}
	if fullOK != subOK {
		return true, nil
	}
	return fullOK && !full.Equal(sub), nil
}

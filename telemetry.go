package joininference

import "time"

// TelemetryEvent names one timed event on the serving hot path.
type TelemetryEvent uint8

const (
	// TelemetryStrategy is a live strategy invocation producing the next
	// question(s): the lookahead (or scan) plus the batch extension. This
	// is the expensive path a policy-cache hit avoids.
	TelemetryStrategy TelemetryEvent = iota
	// TelemetryCache is a question fetch served from the shared policy
	// cache (the memoized decision tree) instead of a live strategy run.
	TelemetryCache
	// TelemetryPageIn is one policy-cache tier-2 page-in: an LRU miss
	// streaming a stored subtree back into RAM.
	TelemetryPageIn
)

// String returns the event's metric-label form.
func (e TelemetryEvent) String() string {
	switch e {
	case TelemetryStrategy:
		return "strategy"
	case TelemetryCache:
		return "cache"
	case TelemetryPageIn:
		return "pagein"
	default:
		return "unknown"
	}
}

// Telemetry receives timed events from the serving hot paths. Implementations
// must be safe for concurrent use and cheap — one Observe per question
// fetch, called with the hot path's locks held. Both arguments are value
// types, so an Observe implemented on a pointer receiver costs no
// allocation; with no telemetry attached the hot paths pay a single nil
// check and stay allocation-free.
type Telemetry interface {
	Observe(event TelemetryEvent, d time.Duration)
}

// WithTelemetry attaches a telemetry sink to the session: NextQuestions
// reports how long each fetch spent, attributed to TelemetryStrategy
// (live lookahead or semijoin scan) or TelemetryCache (served from the
// policy cache). The split is what distinguishes "the strategy is slow"
// from "the cache went cold" on a latency dashboard.
func WithTelemetry(t Telemetry) Option {
	return func(c *sessionConfig) { c.tel = t }
}

// observe reports one event when a telemetry sink is attached; start is
// meaningful only then (telemetryStart returns the zero time otherwise).
func (s *Session) observe(ev TelemetryEvent, start time.Time) {
	if s.cfg.tel != nil {
		s.cfg.tel.Observe(ev, time.Since(start))
	}
}

// telemetryStart stamps the beginning of a timed section, or returns the
// zero time with telemetry off so the hot path skips the clock read.
func (s *Session) telemetryStart() time.Time {
	if s.cfg.tel == nil {
		return time.Time{}
	}
	return time.Now()
}

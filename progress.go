package joininference

import (
	"fmt"
	"math/big"

	"repro/internal/inference"
	"repro/internal/strategy"
	"repro/internal/versionspace"
)

// Progress summarizes how far a session has converged.
type Progress struct {
	// Candidates is the number of join predicates still consistent with
	// the answers (nil in the astronomically unlikely case it cannot be
	// counted). When the session is Done, all remaining candidates are
	// instance-equivalent.
	Candidates *big.Int
	// RemainingQuestions is the number of informative classes left — the
	// worst-case number of further questions.
	RemainingQuestions int
	// TotalClasses and Answered mirror Classes() and Questions().
	TotalClasses int
	Answered     int
}

// Progress reports the session's convergence state; useful for showing the
// user "N candidate queries remain" between questions.
func (s *Session) Progress() Progress {
	p := versionspace.Describe(s.engine)
	return Progress{
		Candidates:         p.Candidates,
		RemainingQuestions: p.InformativeClasses,
		TotalClasses:       p.TotalClasses,
		Answered:           p.Labeled,
	}
}

// Candidates enumerates the predicates still consistent with the answers,
// most general first, provided |T(S+)| ≤ maxBits (the enumeration is
// 2^|T(S+)|); it returns nil when the space is too large — check
// Progress().Candidates first.
func (s *Session) Candidates(maxBits int) []Pred {
	return versionspace.Enumerate(s.engine, maxBits)
}

// Explanation tells the user why a question is worth asking.
type Explanation struct {
	// DecidedIfYes / DecidedIfNo count the product tuples whose membership
	// each answer settles immediately (beyond the asked tuples themselves).
	DecidedIfYes, DecidedIfNo int64
	// CandidatesIfYes / CandidatesIfNo count the join predicates that
	// would remain consistent after each answer (nil if uncountable).
	CandidatesIfYes, CandidatesIfNo *big.Int
}

// Explain computes the impact of both possible answers to a question,
// without recording anything.
func (s *Session) Explain(q Question) Explanation {
	theta := s.engine.Classes()[q.classIndex].Theta
	tpos := s.engine.TPos()
	negs := s.engine.Negatives()

	return Explanation{
		CandidatesIfYes: strategy.CountConsistent(tpos.Intersect(theta), negs),
		CandidatesIfNo: strategy.CountConsistent(tpos,
			append(append([]Pred(nil), negs...), theta)),
		DecidedIfYes: countDecided(s.engine, q.classIndex, Positive),
		DecidedIfNo:  countDecided(s.engine, q.classIndex, Negative),
	}
}

// countDecided counts base-informative tuples made certain by labeling the
// class with the given label.
func countDecided(e *inference.Engine, ci int, l Label) int64 {
	theta := e.Classes()[ci].Theta
	tpos := e.TPos()
	negs := e.Negatives()
	if l == Positive {
		tpos = tpos.Intersect(theta)
	} else {
		negs = append(append([]Pred(nil), negs...), theta)
	}
	var sum int64
	for _, cj := range e.InformativeClasses() {
		if cj == ci {
			sum += e.Classes()[cj].Count - 1
			continue
		}
		if inference.CertainUnder(tpos, negs, e.Classes()[cj].Theta) {
			sum += e.Classes()[cj].Count
		}
	}
	return sum
}

// Undo retracts the most recent answer. It rebuilds the sample from the
// transcript, so it costs O(answers) and supports repeated undo back to
// the empty session.
func (s *Session) Undo() error {
	tr := s.Transcript()
	if len(tr) == 0 {
		return fmt.Errorf("joininference: nothing to undo")
	}
	tr = tr[:len(tr)-1]
	fresh := inference.New(s.engine.Inst, inference.WithClasses(s.engine.Classes()))
	replayed := 0
	for _, e := range tr {
		ci := s.classIndexFor(e.RIndex, e.PIndex)
		if ci < 0 {
			return fmt.Errorf("joininference: internal error: transcript tuple (%d,%d) has no class", e.RIndex, e.PIndex)
		}
		if err := fresh.Label(ci, Label(e.Positive)); err != nil {
			return fmt.Errorf("joininference: internal error replaying transcript: %w", err)
		}
		replayed++
	}
	s.engine = fresh
	s.asked = replayed
	return nil
}

package joininference

import (
	"fmt"
	"math/big"

	"repro/internal/inference"
	"repro/internal/strategy"
	"repro/internal/versionspace"
)

// Progress summarizes how far a session has converged.
type Progress struct {
	// Candidates is the number of join predicates still consistent with
	// the answers (nil in the astronomically unlikely case it cannot be
	// counted). When the session is Done, all remaining candidates are
	// instance-equivalent.
	Candidates *big.Int
	// RemainingQuestions is the number of informative classes left — the
	// worst-case number of further questions.
	RemainingQuestions int
	// TotalClasses and Answered mirror Classes() and Questions().
	TotalClasses int
	Answered     int
}

// Progress reports the session's convergence state; useful for showing the
// user "N candidate queries remain" between questions. For semijoin
// sessions (whose version space has no tractable description) only
// Answered is populated.
func (s *Session) Progress() Progress {
	if s.sj != nil {
		return Progress{Answered: s.asked}
	}
	p := versionspace.Describe(s.engine)
	return Progress{
		Candidates:         p.Candidates,
		RemainingQuestions: p.InformativeClasses,
		TotalClasses:       p.TotalClasses,
		Answered:           p.Labeled,
	}
}

// Candidates enumerates the predicates still consistent with the answers,
// most general first, provided |T(S+)| ≤ maxBits (the enumeration is
// 2^|T(S+)|); it returns nil when the space is too large — check
// Progress().Candidates first.
func (s *Session) Candidates(maxBits int) []Pred {
	if s.sj != nil {
		return nil
	}
	return versionspace.Enumerate(s.engine, maxBits)
}

// Explanation tells the user why a question is worth asking.
type Explanation struct {
	// DecidedIfYes / DecidedIfNo count the product tuples whose membership
	// each answer settles immediately (beyond the asked tuples themselves).
	DecidedIfYes, DecidedIfNo int64
	// CandidatesIfYes / CandidatesIfNo count the join predicates that
	// would remain consistent after each answer (nil if uncountable).
	CandidatesIfYes, CandidatesIfNo *big.Int
}

// ExplainQuestion computes the impact of both possible answers to a
// question, without recording anything. (Session.Explain attributes the
// inferred predicate to the answers already committed.)
func (s *Session) ExplainQuestion(q Question) Explanation {
	if s.sj != nil || q.classIndex < 0 || q.classIndex >= len(s.engine.Classes()) {
		return Explanation{}
	}
	theta := s.engine.Classes()[q.classIndex].Theta
	tpos := s.engine.TPos()
	negs := s.engine.Negatives()

	return Explanation{
		CandidatesIfYes: strategy.CountConsistent(tpos.Intersect(theta), negs),
		CandidatesIfNo: strategy.CountConsistent(tpos,
			append(append([]Pred(nil), negs...), theta)),
		DecidedIfYes: countDecided(s.engine, q.classIndex, Positive),
		DecidedIfNo:  countDecided(s.engine, q.classIndex, Negative),
	}
}

// countDecided counts base-informative tuples made certain by labeling the
// class with the given label.
func countDecided(e *inference.Engine, ci int, l Label) int64 {
	theta := e.Classes()[ci].Theta
	tpos := e.TPos()
	negs := e.Negatives()
	if l == Positive {
		tpos = tpos.Intersect(theta)
	} else {
		negs = append(append([]Pred(nil), negs...), theta)
	}
	var sum int64
	for _, cj := range e.InformativeClasses() {
		if cj == ci {
			sum += e.Classes()[cj].Count - 1
			continue
		}
		if inference.CertainUnder(tpos, negs, e.Classes()[cj].Theta) {
			sum += e.Classes()[cj].Count
		}
	}
	return sum
}

// Undo retracts the most recent answer. It rebuilds the sample from the
// transcript, so it costs O(answers) and supports repeated undo back to
// the empty session.
func (s *Session) Undo() error {
	tr := s.Transcript()
	if len(tr) == 0 {
		return fmt.Errorf("joininference: nothing to undo")
	}
	tr = tr[:len(tr)-1]
	if s.sj != nil {
		return s.undoSemijoin(tr)
	}
	if err := s.rebuildJoin(tr); err != nil {
		return err
	}
	// RND restarts its stream from the seed, matching the fresh strategy.
	s.rngMark = 0
	return nil
}

// rebuildJoin replaces the engine with a fresh one replaying the given
// transcript (O(answers)); strategy caches are dropped so nothing retains
// the replaced engine. rngMark is the caller's to adjust: Undo rewinds it,
// the inconsistent-answer rollback keeps it.
func (s *Session) rebuildJoin(tr []TranscriptEntry) error {
	fresh := inference.New(s.engine.Inst, inference.WithClasses(s.engine.Classes()))
	replayed := 0
	for _, e := range tr {
		ci := s.classIndexFor(e.RIndex, e.PIndex)
		if ci < 0 {
			return fmt.Errorf("joininference: internal error: transcript tuple (%d,%d) has no class", e.RIndex, e.PIndex)
		}
		if err := fresh.Label(ci, Label(e.Positive)); err != nil {
			return fmt.Errorf("joininference: internal error replaying transcript: %w", err)
		}
		replayed++
	}
	s.engine = fresh
	s.asked = replayed
	s.strat, s.stratErr = nil, nil
	s.strats = make(map[StrategyID]inference.Strategy)
	return nil
}

// undoSemijoin rebuilds the semijoin sample from the truncated transcript.
func (s *Session) undoSemijoin(tr []TranscriptEntry) error {
	// The solver carries over: its witness cache depends only on the
	// instance, never on the sample being rebuilt.
	st := &semijoinState{u: s.sj.u, solver: s.sj.solver, labeled: make([]bool, s.inst.R.Len())}
	for _, e := range tr {
		if e.Positive {
			st.sample.Pos = append(st.sample.Pos, e.RIndex)
		} else {
			st.sample.Neg = append(st.sample.Neg, e.RIndex)
		}
		st.labeled[e.RIndex] = true
		st.entries = append(st.entries, e)
	}
	s.sj = st
	s.asked = len(tr)
	return nil
}

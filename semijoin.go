package joininference

import (
	"context"
	"errors"

	"repro/internal/semijoin"
)

// Semijoin support (Section 6 of the paper). Because projection hides the
// P side, examples are rows of R alone — and merely deciding whether *any*
// semijoin predicate is consistent with a set of labeled rows is
// NP-complete (Theorem 6.1). Interactive semijoin inference runs through
// the ordinary session machinery — NewSemijoinSession plus Run or
// NextQuestions/Answer — while the functions below expose the complete
// solver directly; expect exponential worst cases by design.

// SemijoinSample labels rows of R: Keep lists indexes that must appear in
// R ⋉θ P, Drop lists indexes that must not.
type SemijoinSample struct {
	Keep []int
	Drop []int
}

// SemijoinConsistent decides whether any semijoin predicate selects all
// Keep rows and no Drop row; on success it returns one such predicate.
func SemijoinConsistent(inst *Instance, s SemijoinSample) (Pred, bool, error) {
	return semijoin.Consistent(inst, semijoin.Sample{Pos: s.Keep, Neg: s.Drop})
}

// SemijoinEval materializes R ⋉θ P as R-row indexes.
func SemijoinEval(inst *Instance, theta Pred) []int {
	return semijoin.Eval(inst, theta)
}

// InferSemijoin runs the interactive semijoin heuristic: keep asking
// "would you keep this row?" for rows whose answer is not yet determined,
// until everything is certain or the budget (0 = unlimited) runs out. It
// returns a consistent predicate and the number of questions asked.
//
// Deprecated: use Run with NewSemijoinSession(inst, WithBudget(budget)) and
// FuncOracle, which adds cancellation and crowd oracles.
func InferSemijoin(inst *Instance, keeps func(ri int) bool, budget int) (Pred, int, error) {
	return runSemijoin(inst, budget, FuncOracle(func(q Question) Label {
		return Label(keeps(q.RIndex))
	}))
}

// InferSemijoinGoal simulates an honest user with a goal semijoin
// predicate.
//
// Deprecated: use Run with NewSemijoinSession(inst, WithBudget(budget)) and
// HonestOracle(goal).
func InferSemijoinGoal(inst *Instance, goal Pred, budget int) (Pred, int, error) {
	return runSemijoin(inst, budget, HonestOracle(goal))
}

// runSemijoin keeps the deprecated shims' contract: a spent budget is a
// normal stop, not an error.
func runSemijoin(inst *Instance, budget int, o Oracle) (Pred, int, error) {
	s := NewSemijoinSession(inst, WithBudget(budget))
	res, err := Run(context.Background(), s, o)
	if errors.Is(err, ErrBudgetExhausted) {
		err = nil
	}
	if err != nil {
		return Pred{}, res.Questions, err
	}
	return res.Inferred, res.Questions, nil
}

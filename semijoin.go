package joininference

import (
	"repro/internal/predicate"
	"repro/internal/semijoin"
)

// Semijoin support (Section 6 of the paper). Because projection hides the
// P side, examples are rows of R alone — and merely deciding whether *any*
// semijoin predicate is consistent with a set of labeled rows is
// NP-complete (Theorem 6.1). The functions below expose the complete
// solver and the interactive heuristic; expect exponential worst cases by
// design.

// SemijoinSample labels rows of R: Keep lists indexes that must appear in
// R ⋉θ P, Drop lists indexes that must not.
type SemijoinSample struct {
	Keep []int
	Drop []int
}

// SemijoinConsistent decides whether any semijoin predicate selects all
// Keep rows and no Drop row; on success it returns one such predicate.
func SemijoinConsistent(inst *Instance, s SemijoinSample) (Pred, bool, error) {
	return semijoin.Consistent(inst, semijoin.Sample{Pos: s.Keep, Neg: s.Drop})
}

// SemijoinEval materializes R ⋉θ P as R-row indexes.
func SemijoinEval(inst *Instance, theta Pred) []int {
	return semijoin.Eval(inst, theta)
}

// InferSemijoin runs the interactive semijoin heuristic: keep asking
// "would you keep this row?" for rows whose answer is not yet determined,
// until everything is certain or the budget (0 = unlimited) runs out. It
// returns a consistent predicate and the number of questions asked.
func InferSemijoin(inst *Instance, keeps func(ri int) bool, budget int) (Pred, int, error) {
	res, err := semijoin.InferInteractive(inst, oracleFunc(keeps), budget)
	if err != nil {
		return Pred{}, res.Interactions, err
	}
	return res.Predicate, res.Interactions, nil
}

// InferSemijoinGoal simulates an honest user with a goal semijoin
// predicate.
func InferSemijoinGoal(inst *Instance, goal Pred, budget int) (Pred, int, error) {
	u := predicate.NewUniverse(inst)
	orc := &semijoin.GoalOracle{Inst: inst, U: u, Goal: goal}
	res, err := semijoin.InferInteractive(inst, orc, budget)
	if err != nil {
		return Pred{}, res.Interactions, err
	}
	return res.Predicate, res.Interactions, nil
}

// oracleFunc adapts a func to semijoin.LabelOracle.
type oracleFunc func(ri int) bool

func (f oracleFunc) KeepsTuple(ri int) bool { return f(ri) }

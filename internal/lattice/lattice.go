// Package lattice provides the lattice of join predicates (P(Ω), ⊆) of
// Section 4.2: enumeration of non-nullable predicates, the node/tuple
// correspondence, and instance statistics such as the join ratio used in
// the experimental analysis (Section 5.3).
//
// A predicate is non-nullable iff it selects at least one product tuple,
// which by the T characterization means it is a subset of some class
// predicate T(t). The non-nullable part of the lattice is therefore the
// downward closure of the class predicates.
package lattice

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/predicate"
	"repro/internal/product"
)

// Node is one lattice node: a non-nullable join predicate, with a flag
// telling whether some product tuple corresponds to it exactly (its box in
// Figure 4).
type Node struct {
	Theta predicate.Pred
	// HasTuple reports whether Theta = T(t) for some product tuple t.
	HasTuple bool
}

// NonNullable enumerates all non-nullable join predicates of the instance
// (the downward closure of its T-classes), sorted by ascending size then by
// canonical key. The count can be exponential in |Ω| in the worst case —
// the paper notes this too — so callers should restrict it to synthetic-
// scale universes; Ω itself is *not* included unless non-nullable.
func NonNullable(classes []*product.Class) []Node {
	seen := make(map[string]*Node)
	for _, c := range classes {
		forEachSubset(c.Theta.Set, func(sub bitset.Set) {
			k := sub.Key()
			if n, ok := seen[k]; ok {
				if sub.Equal(c.Theta.Set) {
					n.HasTuple = true
				}
				return
			}
			seen[k] = &Node{
				Theta:    predicate.Pred{Set: sub.Clone()},
				HasTuple: sub.Equal(c.Theta.Set),
			}
		})
	}
	out := make([]Node, 0, len(seen))
	for _, n := range seen {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Theta.Size(), out[j].Theta.Size()
		if si != sj {
			return si < sj
		}
		return out[i].Theta.Key() < out[j].Theta.Key()
	})
	return out
}

// forEachSubset calls fn for every subset of s (including ∅ and s itself).
// It enumerates via the elements, so cost is O(2^|s|).
func forEachSubset(s bitset.Set, fn func(bitset.Set)) {
	elems := s.Elems()
	n := len(elems)
	for mask := 0; mask < 1<<uint(n); mask++ {
		var sub bitset.Set
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				sub.Add(elems[b])
			}
		}
		fn(sub)
	}
}

// GoalsBySize groups the non-nullable predicates of the instance by |θ|,
// the way the synthetic experiments pick their goal predicates ("we have
// used all non-nullable join predicates as goal predicates", Section 5).
func GoalsBySize(classes []*product.Class) map[int][]predicate.Pred {
	out := make(map[int][]predicate.Pred)
	for _, n := range NonNullable(classes) {
		s := n.Theta.Size()
		out[s] = append(out[s], n.Theta)
	}
	return out
}

// Stats summarizes an instance's lattice the way Table 1 reports it.
type Stats struct {
	// ProductSize is |R × P|.
	ProductSize int64
	// Classes is the number of distinct T-classes.
	Classes int
	// JoinRatio is the paper's complexity measure (Section 5.3).
	JoinRatio float64
	// MaxPredicateSize is the largest |T(t)| over the product.
	MaxPredicateSize int
}

// ComputeStats derives lattice statistics from the instance's T-classes.
func ComputeStats(classes []*product.Class) Stats {
	st := Stats{
		ProductSize: product.TotalCount(classes),
		Classes:     len(classes),
		JoinRatio:   product.JoinRatio(classes),
	}
	for _, c := range classes {
		if s := c.Theta.Size(); s > st.MaxPredicateSize {
			st.MaxPredicateSize = s
		}
	}
	return st
}

package lattice

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/product"
	"repro/internal/relation"
)

func TestNonNullableExample21(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	cs := product.Classes(inst, u)
	nodes := NonNullable(cs)

	// The non-nullable lattice (downward closure of the 12 class
	// predicates): 1 node of size 0, 6 of size 1, 12 of size 2, 3 of size 3
	// — Ω excluded (nullable here). Figure 4 draws a subset of the size-2
	// layer; the counts below follow from the definition (any subset of a
	// non-nullable predicate is non-nullable by anti-monotonicity) and are
	// cross-checked against direct evaluation in
	// TestNonNullableAreNonNullable.
	hist := map[int]int{}
	withTuple := 0
	for _, n := range nodes {
		hist[n.Theta.Size()]++
		if n.HasTuple {
			withTuple++
		}
	}
	if hist[0] != 1 || hist[1] != 6 || hist[2] != 12 || hist[3] != 3 {
		t.Errorf("size histogram = %v, want map[0:1 1:6 2:12 3:3]", hist)
	}
	if len(nodes) != 22 {
		t.Errorf("total nodes = %d, want 22", len(nodes))
	}
	// Every size-1 predicate over the 6 pairs occurs in some class, hence 6.
	// Completeness: every predicate NOT in the set must be nullable.
	keys := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		keys[n.Theta.Key()] = true
	}
	for mask := 0; mask < 1<<6; mask++ {
		var p predicate.Pred
		for b := 0; b < 6; b++ {
			if mask&(1<<uint(b)) != 0 {
				p.Set.Add(b)
			}
		}
		if !keys[p.Key()] && predicate.NonNullable(inst, u, p) {
			t.Errorf("non-nullable predicate %v missing from lattice", p)
		}
	}
	// Exactly the 12 class predicates have corresponding tuples (boxes).
	if withTuple != 12 {
		t.Errorf("nodes with tuples = %d, want 12", withTuple)
	}
	// Sorted by ascending size.
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Theta.Size() > nodes[i].Theta.Size() {
			t.Fatalf("nodes not sorted by size at %d", i)
		}
	}
}

func TestNonNullableAreNonNullable(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	cs := product.Classes(inst, u)
	for _, n := range NonNullable(cs) {
		if !predicate.NonNullable(inst, u, n.Theta) {
			t.Errorf("node %v is nullable", n.Theta)
		}
	}
}

func TestGoalsBySize(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	cs := product.Classes(inst, u)
	goals := GoalsBySize(cs)
	if len(goals[0]) != 1 || len(goals[1]) != 6 || len(goals[2]) != 12 || len(goals[3]) != 3 {
		t.Errorf("goals by size = %v", map[int]int{
			0: len(goals[0]), 1: len(goals[1]), 2: len(goals[2]), 3: len(goals[3])})
	}
}

func TestComputeStatsExample21(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	cs := product.Classes(inst, u)
	st := ComputeStats(cs)
	if st.ProductSize != 12 {
		t.Errorf("ProductSize = %d", st.ProductSize)
	}
	if st.Classes != 12 {
		t.Errorf("Classes = %d", st.Classes)
	}
	if st.JoinRatio != 2.0 {
		t.Errorf("JoinRatio = %v, want 2", st.JoinRatio)
	}
	if st.MaxPredicateSize != 3 {
		t.Errorf("MaxPredicateSize = %d, want 3", st.MaxPredicateSize)
	}
}

// TestQuickDownwardClosure: the non-nullable set is downward closed and
// contains exactly the subsets of class predicates.
func TestQuickDownwardClosure(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		u := predicate.NewUniverse(inst)
		cs := product.Classes(inst, u)
		nodes := NonNullable(cs)
		keys := make(map[string]bool, len(nodes))
		for _, n := range nodes {
			keys[n.Theta.Key()] = true
			// Every node must be non-nullable by direct evaluation.
			if !predicate.NonNullable(inst, u, n.Theta) {
				return false
			}
			// Downward closed: removing any element stays in the set.
			ok := true
			n.Theta.Set.ForEach(func(id int) bool {
				sub := n.Theta.Set.Clone()
				sub.Remove(id)
				if !keys[sub.Key()] && len(nodes) > 0 {
					// The smaller set sorts earlier, so it is present iff
					// enumerated; check via map after full fill below.
					ok = keys[sub.Key()]
				}
				return true
			})
			_ = ok
		}
		// Second pass for downward closure now that keys is complete.
		for _, n := range nodes {
			closed := true
			n.Theta.Set.ForEach(func(id int) bool {
				sub := n.Theta.Set.Clone()
				sub.Remove(id)
				if !keys[sub.Key()] {
					closed = false
					return false
				}
				return true
			})
			if !closed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randInstance(r *rand.Rand) *relation.Instance {
	n := 1 + r.Intn(2)
	m := 1 + r.Intn(3)
	vals := 1 + r.Intn(4)
	ra := make([]string, n)
	for i := range ra {
		ra[i] = "A" + strconv.Itoa(i+1)
	}
	pa := make([]string, m)
	for i := range pa {
		pa[i] = "B" + strconv.Itoa(i+1)
	}
	R := relation.NewRelation(relation.MustSchema("R", ra...))
	P := relation.NewRelation(relation.MustSchema("P", pa...))
	for i := 0; i < 2+r.Intn(4); i++ {
		tr := make(relation.Tuple, n)
		for k := range tr {
			tr[k] = strconv.Itoa(r.Intn(vals))
		}
		R.Tuples = append(R.Tuples, tr)
	}
	for i := 0; i < 2+r.Intn(4); i++ {
		tp := make(relation.Tuple, m)
		for k := range tp {
			tp[k] = strconv.Itoa(r.Intn(vals))
		}
		P.Tuples = append(P.Tuples, tp)
	}
	return relation.MustInstance(R, P)
}

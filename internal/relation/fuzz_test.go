package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV loader never panics and that accepted inputs
// round-trip through WriteCSV → ReadCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("A,B\n1,2\n")
	f.Add("A\n\"x,y\"\n")
	f.Add("")
	f.Add("A,B\n1\n")
	f.Add("A,A\n1,2\n")
	f.Add("A,B\r\n1,2\r\n")
	f.Fuzz(func(t *testing.T, input string) {
		r, err := ReadCSV("F", strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of accepted relation failed: %v", err)
		}
		back, err := ReadCSV("F", &buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != r.Len() || back.Schema.Arity() != r.Schema.Arity() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				back.Len(), back.Schema.Arity(), r.Len(), r.Schema.Arity())
		}
		for i := range r.Tuples {
			for j := range r.Tuples[i] {
				if r.Tuples[i][j] != back.Tuples[i][j] {
					t.Fatalf("round trip changed value at (%d,%d)", i, j)
				}
			}
		}
	})
}

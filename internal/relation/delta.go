// Dynamic instances. The paper's setting freezes the database for the
// lifetime of an inference session, but a deployed oracle sees inserts and
// deletes mid-session. This file makes Instance a versioned, immutable
// value: ApplyDelta returns a *new* Instance one version ahead, sharing
// tuple storage with its predecessor, and records the delta in an
// append-only log shared by the whole version chain.
//
// Row indexes are stable across versions: deletes tombstone a row instead
// of compacting, and inserts append past the old length. An old version
// therefore never observes rows added later (its slice headers stop at its
// own length), and any (ri, pi) pair valid at version v names the same
// tuples at every later version — the property every layer above
// (T-classes, samples, transcripts, policy trees) relies on when a delta is
// propagated instead of recomputed.
package relation

import (
	"errors"
	"fmt"
	"sync"
)

// Delta is one batch of row changes: tuples to append to R and P, and
// current row indexes to delete. Deletions refer to the version the delta
// is applied to; inserted rows get the next free indexes, R rows first.
type Delta struct {
	InsertR []Tuple
	InsertP []Tuple
	DeleteR []int
	DeleteP []int
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return len(d.InsertR) == 0 && len(d.InsertP) == 0 && len(d.DeleteR) == 0 && len(d.DeleteP) == 0
}

// Clone returns a deep copy of the delta.
func (d Delta) Clone() Delta {
	out := Delta{}
	if len(d.InsertR) > 0 {
		out.InsertR = make([]Tuple, len(d.InsertR))
		for i, t := range d.InsertR {
			out.InsertR[i] = t.Clone()
		}
	}
	if len(d.InsertP) > 0 {
		out.InsertP = make([]Tuple, len(d.InsertP))
		for i, t := range d.InsertP {
			out.InsertP[i] = t.Clone()
		}
	}
	out.DeleteR = append([]int(nil), d.DeleteR...)
	out.DeleteP = append([]int(nil), d.DeleteP...)
	return out
}

// ErrStaleVersion is returned by ApplyDelta when the receiver is not the
// newest version of its chain. History is linear by construction: versions
// share tuple backing arrays, so only the tip may extend them.
var ErrStaleVersion = errors.New("relation: delta applied to a stale version (not the chain tip)")

// deltaLog is the shared, append-only history of one version chain.
// deltas[k] transforms version base+k into version base+k+1.
type deltaLog struct {
	mu     sync.Mutex
	base   int64
	deltas []Delta
}

func (lg *deltaLog) tipVersion() int64 { return lg.base + int64(len(lg.deltas)) }

// logInitMu guards lazy attachment of a delta log to instances built as
// literals (common in tests: &Instance{R: r, P: p} has no log until the
// first ApplyDelta or DeltasSince touches it).
var logInitMu sync.Mutex

func (i *Instance) logOrInit() *deltaLog {
	logInitMu.Lock()
	defer logInitMu.Unlock()
	if i.log == nil {
		i.log = &deltaLog{base: i.version}
	}
	return i.log
}

// Version returns the instance's position in its version chain. Instances
// built by NewInstance (or as literals) are version 0.
func (i *Instance) Version() int64 { return i.version }

// RAlive reports whether R row ri is live at this version.
func (i *Instance) RAlive(ri int) bool { return i.deadR == nil || !i.deadR[ri] }

// PAlive reports whether P row pi is live at this version.
func (i *Instance) PAlive(pi int) bool { return i.deadP == nil || !i.deadP[pi] }

// LiveR returns the number of live R rows.
func (i *Instance) LiveR() int { return i.R.Len() - i.nDeadR }

// LiveP returns the number of live P rows.
func (i *Instance) LiveP() int { return i.P.Len() - i.nDeadP }

// DeadR returns a copy of the R tombstone bitmap (nil when nothing is
// dead), indexed like R.Tuples.
func (i *Instance) DeadR() []bool {
	if i.nDeadR == 0 {
		return nil
	}
	return append([]bool(nil), i.deadR...)
}

// DeadP returns a copy of the P tombstone bitmap (nil when nothing is
// dead), indexed like P.Tuples.
func (i *Instance) DeadP() []bool {
	if i.nDeadP == 0 {
		return nil
	}
	return append([]bool(nil), i.deadP...)
}

// DeltasSince returns copies of the deltas that transform version v into
// the chain tip, oldest first. v must lie between the log's base version
// and the tip.
func (i *Instance) DeltasSince(v int64) ([]Delta, error) {
	lg := i.logOrInit()
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if v < lg.base || v > lg.tipVersion() {
		return nil, fmt.Errorf("relation: version %d outside logged range [%d, %d]", v, lg.base, lg.tipVersion())
	}
	ds := lg.deltas[v-lg.base:]
	out := make([]Delta, len(ds))
	for k, d := range ds {
		out[k] = d.Clone()
	}
	return out, nil
}

// RestoreInstance rebuilds an instance at a given version with tombstone
// bitmaps, as persisted by a snapshot. The bitmaps may be nil (all rows
// live) or must match the relations' lengths. The restored instance starts
// a fresh delta log based at its version, ready to replay later deltas.
func RestoreInstance(r, p *Relation, version int64, deadR, deadP []bool) (*Instance, error) {
	inst, err := NewInstance(r, p)
	if err != nil {
		return nil, err
	}
	if version < 0 {
		return nil, fmt.Errorf("relation: negative instance version %d", version)
	}
	if deadR != nil && len(deadR) != r.Len() {
		return nil, fmt.Errorf("relation: R tombstone bitmap has %d entries for %d rows", len(deadR), r.Len())
	}
	if deadP != nil && len(deadP) != p.Len() {
		return nil, fmt.Errorf("relation: P tombstone bitmap has %d entries for %d rows", len(deadP), p.Len())
	}
	inst.version = version
	inst.log = &deltaLog{base: version}
	inst.deadR = append([]bool(nil), deadR...)
	inst.deadP = append([]bool(nil), deadP...)
	for _, d := range inst.deadR {
		if d {
			inst.nDeadR++
		}
	}
	for _, d := range inst.deadP {
		if d {
			inst.nDeadP++
		}
	}
	if inst.nDeadR == 0 {
		inst.deadR = nil
	}
	if inst.nDeadP == 0 {
		inst.deadP = nil
	}
	return inst, nil
}

// validateDelta checks arities, index ranges, liveness and duplicates.
func (i *Instance) validateDelta(d Delta) error {
	for _, t := range d.InsertR {
		if len(t) != i.R.Schema.Arity() {
			return fmt.Errorf("relation %s: inserted tuple arity %d does not match schema arity %d",
				i.R.Schema.Name, len(t), i.R.Schema.Arity())
		}
	}
	for _, t := range d.InsertP {
		if len(t) != i.P.Schema.Arity() {
			return fmt.Errorf("relation %s: inserted tuple arity %d does not match schema arity %d",
				i.P.Schema.Name, len(t), i.P.Schema.Arity())
		}
	}
	check := func(name string, idxs []int, n int, alive func(int) bool) error {
		seen := make(map[int]bool, len(idxs))
		for _, ri := range idxs {
			if ri < 0 || ri >= n {
				return fmt.Errorf("relation %s: delete index %d out of range [0, %d)", name, ri, n)
			}
			if !alive(ri) {
				return fmt.Errorf("relation %s: row %d is already deleted", name, ri)
			}
			if seen[ri] {
				return fmt.Errorf("relation %s: row %d deleted twice in one delta", name, ri)
			}
			seen[ri] = true
		}
		return nil
	}
	if err := check(i.R.Schema.Name, d.DeleteR, i.R.Len(), i.RAlive); err != nil {
		return err
	}
	return check(i.P.Schema.Name, d.DeleteP, i.P.Len(), i.PAlive)
}

// ApplyDelta applies one batch of changes and returns the instance at the
// next version. The receiver is unchanged and stays fully usable; the two
// versions share tuple storage. ApplyDelta is only valid on the chain tip
// (ErrStaleVersion otherwise), which keeps history linear, and is safe to
// race with readers of any version.
func (i *Instance) ApplyDelta(d Delta) (*Instance, error) {
	if err := i.validateDelta(d); err != nil {
		return nil, err
	}
	d = d.Clone() // detach from caller storage before logging
	lg := i.logOrInit()
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if i.version != lg.tipVersion() {
		return nil, fmt.Errorf("%w: version %d, tip is %d", ErrStaleVersion, i.version, lg.tipVersion())
	}

	grow := func(rel *Relation, ins []Tuple, dead []bool, del []int) (*Relation, []bool, int) {
		n := rel.Len() + len(ins)
		var nd []bool
		if dead != nil || len(del) > 0 {
			nd = make([]bool, n)
			copy(nd, dead)
			for _, ri := range del {
				nd[ri] = true
			}
		}
		nDead := 0
		for _, x := range nd {
			if x {
				nDead++
			}
		}
		// Tip-only append: old versions' slice headers never reach the
		// new rows, so sharing (or reallocating) the backing array is safe.
		tuples := rel.Tuples
		for _, t := range ins {
			tuples = append(tuples, t)
		}
		if nDead == 0 {
			nd = nil
		}
		return &Relation{Schema: rel.Schema, Tuples: tuples}, nd, nDead
	}
	nr, ndr, nDeadR := grow(i.R, d.InsertR, i.deadR, d.DeleteR)
	np, ndp, nDeadP := grow(i.P, d.InsertP, i.deadP, d.DeleteP)
	ni := &Instance{
		R: nr, P: np,
		version: i.version + 1,
		deadR:   ndr, deadP: ndp,
		nDeadR: nDeadR, nDeadP: nDeadP,
		log: lg,
	}
	lg.deltas = append(lg.deltas, d)
	return ni, nil
}

// InsertRows appends rows to R and P, returning the next version.
func (i *Instance) InsertRows(rRows, pRows []Tuple) (*Instance, error) {
	return i.ApplyDelta(Delta{InsertR: rRows, InsertP: pRows})
}

// DeleteRows tombstones the given current row indexes, returning the next
// version. Indexes of later versions' rows are unchanged.
func (i *Instance) DeleteRows(rIdx, pIdx []int) (*Instance, error) {
	return i.ApplyDelta(Delta{DeleteR: rIdx, DeleteP: pIdx})
}

// Package relation provides the relational substrate the paper assumes:
// schemas, tuples, relations and two-relation database instances.
//
// The paper's setting is two relations R and P with disjoint attribute sets
// and *no* known integrity constraints; values are compared only for
// equality, so they are modeled as opaque strings. A database instance is a
// pair of finite sets of tuples (Instance).
package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Value is an attribute value. The inference algorithms only ever compare
// values for equality, so a string representation loses nothing: integer
// data like TPC-H keys and the paper's synthetic domains are stored in
// decimal form.
type Value = string

// Tuple is a row: one Value per schema attribute, in schema order.
type Tuple []Value

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as "(a, b, c)".
func (t Tuple) String() string {
	return "(" + strings.Join(t, ", ") + ")"
}

// Schema names a relation and its attributes.
type Schema struct {
	Name       string
	Attributes []string
}

// NewSchema builds a schema, validating that attribute names are non-empty
// and unique.
func NewSchema(name string, attrs ...string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema name must be non-empty")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema %s needs at least one attribute", name)
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: schema %s has an empty attribute name", name)
		}
		if seen[a] {
			return nil, fmt.Errorf("relation: schema %s has duplicate attribute %q", name, a)
		}
		seen[a] = true
	}
	return &Schema{Name: name, Attributes: append([]string(nil), attrs...)}, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(name string, attrs ...string) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attributes) }

// IndexOf returns the position of the named attribute, or -1 if absent.
func (s *Schema) IndexOf(attr string) int {
	for i, a := range s.Attributes {
		if a == attr {
			return i
		}
	}
	return -1
}

// Relation is a finite sequence of tuples conforming to a schema. Tuple
// order is preserved (it is the order of insertion or file order), which
// keeps runs deterministic; set semantics are not enforced but AddTuple can
// be asked to reject duplicates via Dedup.
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// NewRelation returns an empty relation over the schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{Schema: schema}
}

// AddTuple appends a tuple after validating its arity.
func (r *Relation) AddTuple(t Tuple) error {
	if len(t) != r.Schema.Arity() {
		return fmt.Errorf("relation %s: tuple arity %d does not match schema arity %d",
			r.Schema.Name, len(t), r.Schema.Arity())
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAddTuple is AddTuple that panics on error.
func (r *Relation) MustAddTuple(vals ...Value) {
	if err := r.AddTuple(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Dedup removes duplicate tuples in place, keeping first occurrences.
func (r *Relation) Dedup() {
	seen := make(map[string]bool, len(r.Tuples))
	out := r.Tuples[:0]
	for _, t := range r.Tuples {
		k := strings.Join(t, "\x00")
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	r.Tuples = out
}

// Project returns the values of tuple index ti at the given attribute
// positions.
func (r *Relation) Project(ti int, cols []int) Tuple {
	t := r.Tuples[ti]
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Instance is the paper's database instance I = (R^I, P^I): instances of
// two relations with disjoint attribute sets.
//
// Instances are versioned: ApplyDelta (delta.go) returns the instance at
// the next version, sharing tuple storage, with deletions recorded as
// tombstones so row indexes stay stable across versions. The zero value of
// the version machinery — a literal &Instance{R: r, P: p} — is version 0
// with every row live.
type Instance struct {
	R *Relation
	P *Relation

	// version is the instance's position in its chain; log is the shared
	// append-only delta history (lazily created, see delta.go).
	version int64
	log     *deltaLog
	// deadR/deadP tombstone deleted rows (nil: all live); nDeadR/nDeadP
	// cache their popcounts so LiveR/LiveP are O(1).
	deadR, deadP   []bool
	nDeadR, nDeadP int
}

// NewInstance pairs two relations, validating that their attribute sets are
// disjoint as the paper requires (attribute identity is positional in the
// algorithms, but disjoint names keep printed predicates unambiguous).
func NewInstance(r, p *Relation) (*Instance, error) {
	if r == nil || p == nil {
		return nil, fmt.Errorf("relation: instance needs two non-nil relations")
	}
	seen := make(map[string]bool, r.Schema.Arity())
	for _, a := range r.Schema.Attributes {
		seen[a] = true
	}
	for _, a := range p.Schema.Attributes {
		if seen[a] {
			return nil, fmt.Errorf("relation: attribute %q appears in both %s and %s",
				a, r.Schema.Name, p.Schema.Name)
		}
	}
	return &Instance{R: r, P: p}, nil
}

// MustInstance is NewInstance that panics on error.
func MustInstance(r, p *Relation) *Instance {
	i, err := NewInstance(r, p)
	if err != nil {
		panic(err)
	}
	return i
}

// ProductSize returns |R| · |P| over live rows, the number of tuples in
// the Cartesian product D = R × P at this version.
func (i *Instance) ProductSize() int64 {
	return int64(i.LiveR()) * int64(i.LiveP())
}

// ReadCSV loads a relation from CSV. The first record is the header naming
// the attributes; every following record is a tuple. name becomes the
// relation name.
func ReadCSV(name string, src io.Reader) (*Relation, error) {
	cr := csv.NewReader(src)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation %s: reading CSV header: %w", name, err)
	}
	schema, err := NewSchema(name, header...)
	if err != nil {
		return nil, err
	}
	rel := NewRelation(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation %s: reading CSV line %d: %w", name, line, err)
		}
		if len(rec) != schema.Arity() {
			return nil, fmt.Errorf("relation %s: line %d has %d fields, header has %d",
				name, line, len(rec), schema.Arity())
		}
		rel.Tuples = append(rel.Tuples, Tuple(rec))
	}
	return rel, nil
}

// WriteCSV writes the relation as CSV with a header row.
func (r *Relation) WriteCSV(dst io.Writer) error {
	cw := csv.NewWriter(dst)
	if err := cw.Write(r.Schema.Attributes); err != nil {
		return fmt.Errorf("relation %s: writing CSV header: %w", r.Schema.Name, err)
	}
	for _, t := range r.Tuples {
		if err := cw.Write(t); err != nil {
			return fmt.Errorf("relation %s: writing CSV tuple: %w", r.Schema.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name    string
		relName string
		attrs   []string
		wantErr bool
	}{
		{"ok", "R", []string{"A1", "A2"}, false},
		{"empty name", "", []string{"A1"}, true},
		{"no attrs", "R", nil, true},
		{"empty attr", "R", []string{"A1", ""}, true},
		{"duplicate attr", "R", []string{"A1", "A1"}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewSchema(c.relName, c.attrs...)
			if (err != nil) != c.wantErr {
				t.Errorf("NewSchema(%q, %v) err = %v, wantErr %v", c.relName, c.attrs, err, c.wantErr)
			}
		})
	}
}

func TestSchemaIndexOf(t *testing.T) {
	s := MustSchema("R", "A1", "A2", "A3")
	if got := s.IndexOf("A2"); got != 1 {
		t.Errorf("IndexOf(A2) = %d, want 1", got)
	}
	if got := s.IndexOf("missing"); got != -1 {
		t.Errorf("IndexOf(missing) = %d, want -1", got)
	}
	if s.Arity() != 3 {
		t.Errorf("Arity = %d, want 3", s.Arity())
	}
}

func TestAddTupleArityCheck(t *testing.T) {
	r := NewRelation(MustSchema("R", "A1", "A2"))
	if err := r.AddTuple(Tuple{"1", "2"}); err != nil {
		t.Fatalf("AddTuple valid: %v", err)
	}
	if err := r.AddTuple(Tuple{"1"}); err == nil {
		t.Error("AddTuple with wrong arity succeeded")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestMustAddTuplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAddTuple with wrong arity did not panic")
		}
	}()
	r := NewRelation(MustSchema("R", "A1", "A2"))
	r.MustAddTuple("only-one")
}

func TestDedup(t *testing.T) {
	r := NewRelation(MustSchema("R", "A1", "A2"))
	r.MustAddTuple("1", "2")
	r.MustAddTuple("1", "2")
	r.MustAddTuple("3", "4")
	r.MustAddTuple("1", "2")
	r.Dedup()
	if r.Len() != 2 {
		t.Fatalf("after Dedup Len = %d, want 2", r.Len())
	}
	if r.Tuples[0].String() != "(1, 2)" || r.Tuples[1].String() != "(3, 4)" {
		t.Errorf("Dedup changed order: %v", r.Tuples)
	}
}

func TestDedupSeparatorSafety(t *testing.T) {
	// ("a","b c") and ("a b","c")-style collisions must not merge; the
	// dedup key uses a NUL separator, which cannot occur inside CSV values
	// in practice but could in constructed ones. Values differing only by
	// comma placement must stay distinct.
	r := NewRelation(MustSchema("R", "A1", "A2"))
	r.MustAddTuple("a", "bc")
	r.MustAddTuple("ab", "c")
	r.Dedup()
	if r.Len() != 2 {
		t.Errorf("Dedup merged distinct tuples: %v", r.Tuples)
	}
}

func TestProject(t *testing.T) {
	r := NewRelation(MustSchema("R", "A1", "A2", "A3"))
	r.MustAddTuple("x", "y", "z")
	got := r.Project(0, []int{2, 0})
	if got.String() != "(z, x)" {
		t.Errorf("Project = %v", got)
	}
}

func TestTupleClone(t *testing.T) {
	orig := Tuple{"a", "b"}
	c := orig.Clone()
	c[0] = "mutated"
	if orig[0] != "a" {
		t.Error("Clone shares backing array")
	}
}

func TestInstanceDisjointAttrs(t *testing.T) {
	r := NewRelation(MustSchema("R", "A1", "A2"))
	p := NewRelation(MustSchema("P", "B1", "B2"))
	if _, err := NewInstance(r, p); err != nil {
		t.Fatalf("disjoint instance rejected: %v", err)
	}
	q := NewRelation(MustSchema("Q", "A1", "B9"))
	if _, err := NewInstance(r, q); err == nil {
		t.Error("overlapping attribute sets accepted")
	}
	if _, err := NewInstance(nil, p); err == nil {
		t.Error("nil relation accepted")
	}
}

func TestProductSize(t *testing.T) {
	r := NewRelation(MustSchema("R", "A1"))
	p := NewRelation(MustSchema("P", "B1"))
	for i := 0; i < 3; i++ {
		r.MustAddTuple("x")
	}
	for i := 0; i < 5; i++ {
		p.MustAddTuple("y")
	}
	inst := MustInstance(r, p)
	if inst.ProductSize() != 15 {
		t.Errorf("ProductSize = %d, want 15", inst.ProductSize())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := NewRelation(MustSchema("Flight", "From", "To", "Airline"))
	r.MustAddTuple("Paris", "Lille", "AF")
	r.MustAddTuple("Lille", "NYC", "AA")

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV("Flight", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip Len = %d, want 2", got.Len())
	}
	if got.Schema.Attributes[2] != "Airline" {
		t.Errorf("round trip schema = %v", got.Schema.Attributes)
	}
	if got.Tuples[1].String() != "(Lille, NYC, AA)" {
		t.Errorf("round trip tuple = %v", got.Tuples[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("R", strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV("R", strings.NewReader("A1,A1\n1,2\n")); err == nil {
		t.Error("duplicate header accepted")
	}
	if _, err := ReadCSV("R", strings.NewReader("A1,A2\n1\n")); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestReadCSVQuotedValues(t *testing.T) {
	in := "A1,A2\n\"hello, world\",plain\n"
	r, err := ReadCSV("R", strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if r.Tuples[0][0] != "hello, world" {
		t.Errorf("quoted value = %q", r.Tuples[0][0])
	}
}

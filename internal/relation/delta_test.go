package relation

import (
	"errors"
	"testing"
)

func smallInstance(t *testing.T) *Instance {
	t.Helper()
	r := NewRelation(MustSchema("R", "A", "B"))
	r.MustAddTuple("1", "2")
	r.MustAddTuple("3", "4")
	p := NewRelation(MustSchema("P", "C", "D"))
	p.MustAddTuple("1", "5")
	p.MustAddTuple("4", "6")
	return MustInstance(r, p)
}

func TestApplyDeltaVersioning(t *testing.T) {
	v0 := smallInstance(t)
	if v0.Version() != 0 {
		t.Fatalf("fresh instance version = %d, want 0", v0.Version())
	}
	v1, err := v0.InsertRows([]Tuple{{"7", "8"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version() != 1 {
		t.Fatalf("version after insert = %d, want 1", v1.Version())
	}
	if v0.R.Len() != 2 || v1.R.Len() != 3 {
		t.Fatalf("lengths: v0.R=%d (want 2), v1.R=%d (want 3)", v0.R.Len(), v1.R.Len())
	}
	if v0.LiveR() != 2 || v1.LiveR() != 3 {
		t.Fatalf("live counts: v0=%d v1=%d", v0.LiveR(), v1.LiveR())
	}
	v2, err := v1.DeleteRows([]int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if v2.LiveR() != 2 || v2.LiveP() != 1 {
		t.Fatalf("v2 live = (%d, %d), want (2, 1)", v2.LiveR(), v2.LiveP())
	}
	if v2.RAlive(0) || !v2.RAlive(1) || !v2.RAlive(2) {
		t.Fatal("v2 R liveness wrong")
	}
	// Old versions are unaffected.
	if !v1.RAlive(0) || !v1.PAlive(1) {
		t.Fatal("v1 liveness changed by later delta")
	}
	if v2.ProductSize() != 2 {
		t.Fatalf("v2 product size = %d, want 2", v2.ProductSize())
	}

	// Only the tip accepts deltas.
	if _, err := v1.InsertRows(nil, []Tuple{{"9", "9"}}); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale apply error = %v, want ErrStaleVersion", err)
	}
	// The tip still does.
	if _, err := v2.InsertRows(nil, []Tuple{{"9", "9"}}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaValidation(t *testing.T) {
	v0 := smallInstance(t)
	cases := []Delta{
		{InsertR: []Tuple{{"1"}}},           // wrong arity
		{InsertP: []Tuple{{"1", "2", "3"}}}, // wrong arity
		{DeleteR: []int{5}},                 // out of range
		{DeleteP: []int{-1}},                // out of range
		{DeleteR: []int{0, 0}},              // duplicate
	}
	for i, d := range cases {
		if _, err := v0.ApplyDelta(d); err == nil {
			t.Errorf("case %d: delta %+v accepted, want error", i, d)
		}
	}
	v1, err := v0.DeleteRows([]int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v1.DeleteRows([]int{0}, nil); err == nil {
		t.Error("deleting a dead row accepted, want error")
	}
}

func TestDeltasSinceAndRestore(t *testing.T) {
	v0 := smallInstance(t)
	v1, _ := v0.InsertRows([]Tuple{{"7", "8"}}, nil)
	v2, _ := v1.DeleteRows(nil, []int{0})
	ds, err := v2.DeltasSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("DeltasSince(0) returned %d deltas, want 2", len(ds))
	}
	if len(ds[0].InsertR) != 1 || len(ds[1].DeleteP) != 1 {
		t.Fatalf("unexpected delta contents: %+v", ds)
	}
	if _, err := v2.DeltasSince(5); err == nil {
		t.Error("DeltasSince beyond tip accepted")
	}

	// Restore at version 2 with v2's tombstones, then replay forward.
	rest, err := RestoreInstance(v2.R, v2.P, v2.Version(), v2.DeadR(), v2.DeadP())
	if err != nil {
		t.Fatal(err)
	}
	if rest.Version() != 2 || rest.LiveP() != v2.LiveP() {
		t.Fatalf("restored version=%d liveP=%d", rest.Version(), rest.LiveP())
	}
	if _, err := rest.InsertRows(nil, []Tuple{{"5", "5"}}); err != nil {
		t.Fatal(err)
	}
}

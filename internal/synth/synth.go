// Package synth implements the paper's synthetic dataset generator
// (Section 5.2). A configuration is a quadruple
// (|attrs(R)|, |attrs(P)|, l, v): the two arities, the number of tuples in
// each relation instance, and the number of possible attribute values —
// values are drawn uniformly from {0, 1, …, v−1}.
//
// Generation is deterministic given a seed, so experiments are
// reproducible; the paper averages over 100 runs, which corresponds to 100
// seeds here.
package synth

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/relation"
)

// Config is the generator quadruple of Section 5.2.
type Config struct {
	// AttrsR, AttrsP are the arities of R and P.
	AttrsR, AttrsP int
	// Rows is l: the number of tuples in each relation instance.
	Rows int
	// Values is v: attribute values are uniform over {0, …, Values−1}.
	Values int
}

// String renders the configuration the way the paper writes it,
// e.g. "(3, 3, 100, 100)".
func (c Config) String() string {
	return fmt.Sprintf("(%d, %d, %d, %d)", c.AttrsR, c.AttrsP, c.Rows, c.Values)
}

// Validate checks the configuration is usable.
func (c Config) Validate() error {
	if c.AttrsR < 1 || c.AttrsP < 1 {
		return fmt.Errorf("synth: arities must be ≥ 1, got %d and %d", c.AttrsR, c.AttrsP)
	}
	if c.Rows < 1 {
		return fmt.Errorf("synth: rows must be ≥ 1, got %d", c.Rows)
	}
	if c.Values < 1 {
		return fmt.Errorf("synth: values must be ≥ 1, got %d", c.Values)
	}
	return nil
}

// PaperConfigs returns the six configurations of Figure 7 / Table 1, in the
// paper's order. The first two "could represent triples of RDF stores".
func PaperConfigs() []Config {
	return []Config{
		{3, 3, 100, 100},
		{3, 3, 50, 100},
		{3, 4, 50, 100},
		{2, 5, 50, 100},
		{2, 4, 50, 50},
		{2, 4, 50, 100},
	}
}

// Generate builds a random instance for the configuration, deterministic in
// the seed.
func Generate(c Config, seed int64) (*relation.Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	attrsR := make([]string, c.AttrsR)
	for i := range attrsR {
		attrsR[i] = "A" + strconv.Itoa(i+1)
	}
	attrsP := make([]string, c.AttrsP)
	for j := range attrsP {
		attrsP[j] = "B" + strconv.Itoa(j+1)
	}
	R := relation.NewRelation(relation.MustSchema("R", attrsR...))
	P := relation.NewRelation(relation.MustSchema("P", attrsP...))
	for i := 0; i < c.Rows; i++ {
		t := make(relation.Tuple, c.AttrsR)
		for k := range t {
			t[k] = strconv.Itoa(rng.Intn(c.Values))
		}
		R.Tuples = append(R.Tuples, t)
	}
	for i := 0; i < c.Rows; i++ {
		t := make(relation.Tuple, c.AttrsP)
		for k := range t {
			t[k] = strconv.Itoa(rng.Intn(c.Values))
		}
		P.Tuples = append(P.Tuples, t)
	}
	return relation.MustInstance(R, P), nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(c Config, seed int64) *relation.Instance {
	inst, err := Generate(c, seed)
	if err != nil {
		panic(err)
	}
	return inst
}

package synth

import (
	"testing"

	"repro/internal/predicate"
	"repro/internal/product"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		c       Config
		wantErr bool
	}{
		{Config{3, 3, 50, 100}, false},
		{Config{0, 3, 50, 100}, true},
		{Config{3, 0, 50, 100}, true},
		{Config{3, 3, 0, 100}, true},
		{Config{3, 3, 50, 0}, true},
	}
	for _, c := range cases {
		if err := c.c.Validate(); (err != nil) != c.wantErr {
			t.Errorf("Validate(%v) err = %v, wantErr %v", c.c, err, c.wantErr)
		}
	}
}

func TestString(t *testing.T) {
	if got := (Config{3, 4, 50, 100}).String(); got != "(3, 4, 50, 100)" {
		t.Errorf("String = %q", got)
	}
}

func TestPaperConfigs(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 6 {
		t.Fatalf("got %d configs, want 6", len(cfgs))
	}
	if cfgs[0] != (Config{3, 3, 100, 100}) {
		t.Errorf("first config = %v", cfgs[0])
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("paper config %v invalid: %v", c, err)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	c := Config{3, 4, 50, 100}
	inst := MustGenerate(c, 1)
	if inst.R.Schema.Arity() != 3 || inst.P.Schema.Arity() != 4 {
		t.Errorf("arities %d, %d", inst.R.Schema.Arity(), inst.P.Schema.Arity())
	}
	if inst.R.Len() != 50 || inst.P.Len() != 50 {
		t.Errorf("rows %d, %d", inst.R.Len(), inst.P.Len())
	}
	if inst.ProductSize() != 2500 {
		t.Errorf("product = %d", inst.ProductSize())
	}
	// Values in range.
	for _, tp := range inst.R.Tuples {
		for _, v := range tp {
			if len(v) == 0 || len(v) > 3 {
				t.Fatalf("value %q out of expected range", v)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := Config{2, 4, 50, 50}
	a := MustGenerate(c, 99)
	b := MustGenerate(c, 99)
	for i := range a.R.Tuples {
		for j := range a.R.Tuples[i] {
			if a.R.Tuples[i][j] != b.R.Tuples[i][j] {
				t.Fatal("same seed produced different R")
			}
		}
	}
	diff := MustGenerate(c, 100)
	same := true
	for i := range a.R.Tuples {
		for j := range a.R.Tuples[i] {
			if a.R.Tuples[i][j] != diff.R.Tuples[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical R")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{0, 1, 1, 1}, 0); err == nil {
		t.Error("invalid config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate did not panic")
		}
	}()
	MustGenerate(Config{0, 1, 1, 1}, 0)
}

// TestJoinRatioPlausible: for the paper's configs the join ratio lands in
// the same ballpark as Table 1 (1.3–1.7 for the 50/100-value configs).
func TestJoinRatioPlausible(t *testing.T) {
	for _, c := range PaperConfigs() {
		inst := MustGenerate(c, 7)
		u := predicate.NewUniverse(inst)
		cs := product.ClassesIndexed(inst, u)
		jr := product.JoinRatio(cs)
		if jr < 0.5 || jr > 3.0 {
			t.Errorf("config %v: join ratio %v outside plausible range", c, jr)
		}
	}
}

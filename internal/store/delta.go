package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/relation"
)

// Delta-log value format (version-tagged, varint-packed):
//
//	[1B version=1]
//	[uvarint len(InsertR)] tuples... [uvarint len(InsertP)] tuples...
//	[uvarint len(DeleteR)] uvarint index... [uvarint len(DeleteP)] uvarint index...
//	tuple: [uvarint arity] ([uvarint len] bytes)...
//
// Each record holds one relation.Delta; the key (DeltaKey) carries the
// instance name and the version the delta produced, so a prefix scan over
// DeltaLogPrefix replays an instance's history in order. Decoding is
// hardened against arbitrary bytes: corrupt, truncated, or oversized input
// returns ErrCorrupt — never a panic, never a silently misparsed delta
// (FuzzDecodeDelta drives this).
const deltaRecordVersion = 1

// maxDeltaStr bounds a single encoded value; generous for real data, small
// enough that a corrupt length cannot drive a huge allocation.
const maxDeltaStr = 1 << 20

// maxDeltaArity bounds a tuple's field count.
const maxDeltaArity = 1 << 16

// EncodeDelta appends the delta's binary form to buf.
func EncodeDelta(buf []byte, d relation.Delta) []byte {
	buf = append(buf, deltaRecordVersion)
	buf = appendDeltaTuples(buf, d.InsertR)
	buf = appendDeltaTuples(buf, d.InsertP)
	buf = appendDeltaIndexes(buf, d.DeleteR)
	buf = appendDeltaIndexes(buf, d.DeleteP)
	return buf
}

func appendDeltaTuples(buf []byte, ts []relation.Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	for _, t := range ts {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		for _, v := range t {
			buf = binary.AppendUvarint(buf, uint64(len(v)))
			buf = append(buf, v...)
		}
	}
	return buf
}

func appendDeltaIndexes(buf []byte, idx []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(idx)))
	for _, i := range idx {
		buf = binary.AppendUvarint(buf, uint64(i))
	}
	return buf
}

// DecodeDelta parses a delta-log record. Corrupt input of any shape
// returns an error wrapping ErrCorrupt, never a panic.
func DecodeDelta(data []byte) (relation.Delta, error) {
	var d relation.Delta
	if len(data) == 0 {
		return d, fmt.Errorf("%w: empty delta record", ErrCorrupt)
	}
	if data[0] != deltaRecordVersion {
		return d, fmt.Errorf("%w: delta record version %d", ErrCorrupt, data[0])
	}
	b := data[1:]
	var err error
	if d.InsertR, b, err = readDeltaTuples(b); err != nil {
		return relation.Delta{}, err
	}
	if d.InsertP, b, err = readDeltaTuples(b); err != nil {
		return relation.Delta{}, err
	}
	if d.DeleteR, b, err = readDeltaIndexes(b); err != nil {
		return relation.Delta{}, err
	}
	if d.DeleteP, b, err = readDeltaIndexes(b); err != nil {
		return relation.Delta{}, err
	}
	if len(b) != 0 {
		return relation.Delta{}, fmt.Errorf("%w: %d trailing bytes in delta record", ErrCorrupt, len(b))
	}
	return d, nil
}

func readDeltaTuples(b []byte) ([]relation.Tuple, []byte, error) {
	count, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	// A tuple takes at least one byte (its arity), so count > len(b) is
	// corrupt, not data.
	if int64(count) > int64(len(b)) {
		return nil, nil, fmt.Errorf("%w: delta tuple count %d", ErrCorrupt, count)
	}
	var ts []relation.Tuple
	for i := uint64(0); i < count; i++ {
		var arity uint64
		if arity, b, err = readUvarint(b); err != nil {
			return nil, nil, err
		}
		if arity > maxDeltaArity || int64(arity) > int64(len(b)) {
			return nil, nil, fmt.Errorf("%w: delta tuple arity %d", ErrCorrupt, arity)
		}
		t := make(relation.Tuple, arity)
		for j := range t {
			var n uint64
			if n, b, err = readUvarint(b); err != nil {
				return nil, nil, err
			}
			if n > maxDeltaStr || int64(n) > int64(len(b)) {
				return nil, nil, fmt.Errorf("%w: delta value length %d", ErrCorrupt, n)
			}
			t[j] = string(b[:n])
			b = b[n:]
		}
		ts = append(ts, t)
	}
	return ts, b, nil
}

func readDeltaIndexes(b []byte) ([]int, []byte, error) {
	count, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if int64(count) > int64(len(b)) {
		return nil, nil, fmt.Errorf("%w: delta index count %d", ErrCorrupt, count)
	}
	var idx []int
	for i := uint64(0); i < count; i++ {
		var v uint64
		if v, b, err = readUvarint(b); err != nil {
			return nil, nil, err
		}
		if v > math.MaxInt32 {
			return nil, nil, fmt.Errorf("%w: delta row index %d", ErrCorrupt, v)
		}
		idx = append(idx, int(v))
	}
	return idx, b, nil
}

// AppendDelta persists the delta that produced the given version of the
// instance, under an order-preserving (instance, version) key.
func AppendDelta(kv KV, instance string, version int64, d relation.Delta) error {
	return kv.Put(DeltaKey(instance, version), EncodeDelta(nil, d))
}

// ReplayDeltaLog scans the instance's delta log in version order, calling
// fn for each record with version > from. It verifies the versions it
// visits are contiguous — a gap means lost records, and replaying past one
// would silently reconstruct the wrong instance.
func ReplayDeltaLog(kv KV, instance string, from int64, fn func(version int64, d relation.Delta) error) error {
	next := from + 1
	var replayErr error
	err := kv.Scan(DeltaLogPrefix(instance), func(key, value []byte) bool {
		name, version, err := ParseDeltaKey(key)
		if err != nil || name != instance {
			// Another instance's log whose escaped name happens to extend
			// this prefix; key escaping makes this impossible, but skipping
			// is the safe reaction to a malformed key either way.
			return true
		}
		if version < next {
			return true
		}
		if version > next {
			replayErr = fmt.Errorf("%w: delta log for %q jumps from version %d to %d", ErrCorrupt, instance, next-1, version)
			return false
		}
		d, err := DecodeDelta(value)
		if err != nil {
			replayErr = fmt.Errorf("delta log for %q at version %d: %w", instance, version, err)
			return false
		}
		if err := fn(version, d); err != nil {
			replayErr = err
			return false
		}
		next++
		return true
	})
	if replayErr != nil {
		return replayErr
	}
	return err
}

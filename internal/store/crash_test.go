package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashRecovery is the durability proof: a write fault injected after N
// bytes — for every N across the final record — leaves a log that reopens
// cleanly, keeps every acknowledged Put intact, and discards the torn tail.
func TestCrashRecovery(t *testing.T) {
	// Size one record up front so the loop can sweep every cut point.
	key := []byte("crash-key")
	val := bytes.Repeat([]byte("x"), 37)
	recLen := len(appendFrame(nil, opPut, key, val))

	for cut := 0; cut <= recLen; cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenLog(dir, LogOptions{})
			if err != nil {
				t.Fatal(err)
			}
			// Acked writes: these must survive any later crash.
			const acked = 5
			for i := 0; i < acked; i++ {
				if err := s.Put([]byte(fmt.Sprintf("acked%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// Crash mid-write of the next record: cut bytes reach the file,
			// the ack never happens.
			s.mu.Lock()
			s.failAfter = int64(cut)
			s.mu.Unlock()
			if err := s.Put(key, val); cut < recLen && err == nil {
				t.Fatal("torn write acked")
			} else if cut == recLen && err != nil {
				// The full record fit under the fault budget: a normal ack.
				t.Fatal(err)
			}
			s.Close()

			re, err := OpenLog(dir, LogOptions{})
			if err != nil {
				t.Fatalf("reopen after crash at %d bytes: %v", cut, err)
			}
			defer re.Close()
			for i := 0; i < acked; i++ {
				v, ok, err := re.Get([]byte(fmt.Sprintf("acked%d", i)))
				if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("v%d", i))) {
					t.Fatalf("acked put %d lost after crash at %d bytes (ok=%v err=%v)", i, cut, ok, err)
				}
			}
			_, ok, err := re.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if cut < recLen && ok {
				t.Fatalf("unacked record visible after a %d-byte tear", cut)
			}
			if cut == recLen && !ok {
				t.Fatal("fully-written record lost")
			}
			// The torn tail is physically discarded, so the next write starts
			// at a clean record boundary.
			if err := re.Put([]byte("after"), []byte("crash")); err != nil {
				t.Fatal(err)
			}
			if v, ok, _ := re.Get([]byte("after")); !ok || !bytes.Equal(v, []byte("crash")) {
				t.Fatal("write after recovery lost")
			}
		})
	}
}

// TestCrashRecoveryTornBatch: a crash mid-batch keeps a clean record-level
// prefix of the batch — never a half-parsed record, never a record after the
// tear.
func TestCrashRecoveryTornBatch(t *testing.T) {
	ops := []Op{
		{Key: []byte("b0"), Value: []byte("v0")},
		{Key: []byte("b1"), Value: []byte("v1")},
		{Key: []byte("b2"), Value: []byte("v2")},
	}
	var frame []byte
	for _, op := range ops {
		frame = appendFrame(frame, opPut, op.Key, op.Value)
	}
	oneRec := len(frame) / len(ops)
	// Cut inside the second record: the first must survive, the rest vanish.
	cut := oneRec + oneRec/2

	dir := t.TempDir()
	s, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.failAfter = int64(cut)
	s.mu.Unlock()
	if err := s.Batch(ops); err == nil {
		t.Fatal("torn batch acked")
	}
	s.Close()

	re, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, ok, _ := re.Get([]byte("b0")); !ok || !bytes.Equal(v, []byte("v0")) {
		t.Error("complete record before the tear was lost")
	}
	for _, k := range []string{"b1", "b2"} {
		if _, ok, _ := re.Get([]byte(k)); ok {
			t.Errorf("record %s after the tear survived", k)
		}
	}
}

// TestCrashRecoveryCorruptMiddle: flipped bits in the middle of the file
// (not a torn tail) still reopen without a panic — replay treats the first
// corrupt record as the end of the log, so the prefix before it survives.
func TestCrashRecoveryCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	for i := 0; i < 4; i++ {
		offsets = append(offsets, s.off)
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("v"), 20)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip a byte inside record 2's body.
	path := filepath.Join(dir, logFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[2]+int64(recHeader)+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatalf("reopen with mid-file corruption: %v", err)
	}
	defer re.Close()
	for i := 0; i < 2; i++ {
		if _, ok, _ := re.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Errorf("record %d before the corruption lost", i)
		}
	}
	for i := 2; i < 4; i++ {
		if _, ok, _ := re.Get([]byte(fmt.Sprintf("k%d", i))); ok {
			t.Errorf("record %d at/after the corruption served", i)
		}
	}
}

package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/policy"
	"repro/internal/relation"
)

// FuzzDecodePolicyNode: arbitrary bytes must decode to a node or fail with
// ErrCorrupt — never panic, never misparse silently (a successful decode
// must survive a re-encode/re-decode round trip).
func FuzzDecodePolicyNode(f *testing.F) {
	f.Add(EncodePolicyNode(nil, policy.Node{}))
	f.Add(EncodePolicyNode(nil, policy.Node{Chosen: -1, Complete: true}))
	f.Add(EncodePolicyNode(nil, policy.Node{Chosen: 7, Pivots: []int{1, 2, 3}, RNGAfter: 99}))
	f.Add([]byte{policyNodeVersion, 0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodePolicyNode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		again, err := DecodePolicyNode(EncodePolicyNode(nil, n))
		if err != nil {
			t.Fatalf("re-decode of a decoded node failed: %v", err)
		}
		if again.Chosen != n.Chosen || again.Complete != n.Complete || again.RNGAfter != n.RNGAfter || len(again.Pivots) != len(n.Pivots) {
			t.Fatalf("round trip diverged: %+v vs %+v", again, n)
		}
	})
}

// FuzzDecodeDelta: arbitrary bytes must decode to a delta or fail with
// ErrCorrupt — never panic, never misparse silently (a successful decode
// must survive a re-encode/re-decode round trip).
func FuzzDecodeDelta(f *testing.F) {
	f.Add(EncodeDelta(nil, relationDelta()))
	f.Add([]byte{deltaRecordVersion})
	f.Add([]byte{deltaRecordVersion, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		enc := EncodeDelta(nil, d)
		again, err := DecodeDelta(enc)
		if err != nil {
			t.Fatalf("re-decode of a decoded delta failed: %v", err)
		}
		if !bytes.Equal(enc, EncodeDelta(nil, again)) {
			t.Fatalf("round trip diverged: %+v vs %+v", d, again)
		}
	})
}

func relationDelta() relation.Delta {
	return relation.Delta{
		InsertR: []relation.Tuple{{"a", "b"}},
		InsertP: []relation.Tuple{{"c"}},
		DeleteR: []int{1, 2},
		DeleteP: []int{0},
	}
}

// FuzzKeyEscape: the string escape round-trips arbitrary bytes, and
// encoding preserves order.
func FuzzKeyEscape(f *testing.F) {
	f.Add("", "a")
	f.Add("a\x00b", "a\x00c")
	f.Add("same", "same")
	f.Fuzz(func(t *testing.T, a, b string) {
		ea := appendEscaped(nil, a)
		eb := appendEscaped(nil, b)
		got, rest, err := readEscaped(ea)
		if err != nil || got != a || len(rest) != 0 {
			t.Fatalf("round trip of %q: %q, %v, %v", a, got, rest, err)
		}
		if want := bytes.Compare([]byte(a), []byte(b)); want != bytes.Compare(ea, eb) {
			t.Fatalf("order not preserved for %q vs %q", a, b)
		}
	})
}

// FuzzLogReplay: a log file containing arbitrary bytes must open without a
// panic (garbage is a torn tail and is truncated), and the reopened log must
// accept and persist new writes.
func FuzzLogReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a log at all"))
	f.Add(appendFrame(nil, opPut, []byte("k"), []byte("v")))
	f.Add(appendFrame(appendFrame(nil, opPut, []byte("k"), []byte("v"))[:10], opDelete, []byte("k"), nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logFileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenLog(dir, LogOptions{})
		if err != nil {
			t.Fatalf("OpenLog on fuzzed file: %v", err)
		}
		if err := s.Put([]byte("probe"), []byte("alive")); err != nil {
			t.Fatal(err)
		}
		s.Close()
		re, err := OpenLog(dir, LogOptions{})
		if err != nil {
			t.Fatalf("second open: %v", err)
		}
		defer re.Close()
		if v, ok, _ := re.Get([]byte("probe")); !ok || !bytes.Equal(v, []byte("alive")) {
			t.Fatal("write after fuzzed replay did not survive reopen")
		}
	})
}

package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/policy"
)

// openTestLog opens a log backend in a fresh temp dir and closes it with
// the test.
func openTestLog(t *testing.T, opts LogOptions) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

// scanAll collects every record under prefix in visit order.
func scanAll(t *testing.T, kv KV, prefix []byte) (keys, vals [][]byte) {
	t.Helper()
	err := kv.Scan(prefix, func(k, v []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		vals = append(vals, append([]byte(nil), v...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys, vals
}

// TestKVDifferential drives the memory and log backends through one
// deterministic pseudo-random op sequence and checks they agree on every
// read, every scan, and the final state — then reopens the log and checks
// the state survived.
func TestKVDifferential(t *testing.T) {
	mem := NewMem()
	logKV, dir := openTestLog(t, LogOptions{CompactMinGarbage: 256, CompactGarbageRatio: 0.3})
	rng := rand.New(rand.NewSource(42))
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%03d", i)) }
	const keySpace = 60

	checkGet := func(i int) {
		t.Helper()
		mv, mok, merr := mem.Get(key(i))
		lv, lok, lerr := logKV.Get(key(i))
		if merr != nil || lerr != nil {
			t.Fatalf("get errors: mem=%v log=%v", merr, lerr)
		}
		if mok != lok || !bytes.Equal(mv, lv) {
			t.Fatalf("get %s diverged: mem=(%q,%v) log=(%q,%v)", key(i), mv, mok, lv, lok)
		}
	}
	for step := 0; step < 3000; step++ {
		i := rng.Intn(keySpace)
		switch rng.Intn(5) {
		case 0, 1: // put
			v := make([]byte, rng.Intn(200))
			rng.Read(v)
			if err := mem.Put(key(i), v); err != nil {
				t.Fatal(err)
			}
			if err := logKV.Put(key(i), v); err != nil {
				t.Fatal(err)
			}
		case 2: // delete
			if err := mem.Delete(key(i)); err != nil {
				t.Fatal(err)
			}
			if err := logKV.Delete(key(i)); err != nil {
				t.Fatal(err)
			}
		case 3: // batch
			var ops []Op
			for n := rng.Intn(4); n >= 0; n-- {
				j := rng.Intn(keySpace)
				if rng.Intn(3) == 0 {
					ops = append(ops, Op{Key: key(j), Delete: true})
				} else {
					v := make([]byte, rng.Intn(50))
					rng.Read(v)
					ops = append(ops, Op{Key: key(j), Value: v})
				}
			}
			if err := mem.Batch(ops); err != nil {
				t.Fatal(err)
			}
			if err := logKV.Batch(ops); err != nil {
				t.Fatal(err)
			}
		case 4: // get
			checkGet(i)
		}
		if step%250 == 0 {
			mk, mv := scanAll(t, mem, nil)
			lk, lv := scanAll(t, logKV, nil)
			if len(mk) != len(lk) {
				t.Fatalf("step %d: scan sizes diverged: mem=%d log=%d", step, len(mk), len(lk))
			}
			for x := range mk {
				if !bytes.Equal(mk[x], lk[x]) || !bytes.Equal(mv[x], lv[x]) {
					t.Fatalf("step %d: scan entry %d diverged", step, x)
				}
			}
		}
	}
	for i := 0; i < keySpace; i++ {
		checkGet(i)
	}

	// Reopen the log: replay must reconstruct the same state.
	if err := logKV.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	mk, mv := scanAll(t, mem, nil)
	rk, rv := scanAll(t, reopened, nil)
	if len(mk) != len(rk) {
		t.Fatalf("after reopen: %d keys, want %d", len(rk), len(mk))
	}
	for x := range mk {
		if !bytes.Equal(mk[x], rk[x]) || !bytes.Equal(mv[x], rv[x]) {
			t.Fatalf("after reopen: entry %d diverged", x)
		}
	}
}

// TestKeyOrdering checks the key codec's two load-bearing properties:
// bytewise order equals component order, and policy child keys extend their
// parent's bytes.
func TestKeyOrdering(t *testing.T) {
	// Escaped strings: order-preserving, including embedded zero bytes, and
	// a shorter string sorts before its extensions.
	strs := []string{"", "a", "a\x00", "a\x00b", "ab", "b"}
	for i := 0; i < len(strs)-1; i++ {
		a := appendEscaped(nil, strs[i])
		b := appendEscaped(nil, strs[i+1])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("escaped %q !< %q", strs[i], strs[i+1])
		}
		got, rest, err := readEscaped(a)
		if err != nil || got != strs[i] || len(rest) != 0 {
			t.Errorf("readEscaped(%q) = %q, %v, %v", strs[i], got, rest, err)
		}
	}
	// Int64: bytewise order equals numeric order across the sign.
	ints := []int64{-1 << 62, -1, 0, 1, 1 << 62}
	for i := 0; i < len(ints)-1; i++ {
		a := appendInt64(nil, ints[i])
		b := appendInt64(nil, ints[i+1])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("int64 %d !< %d", ints[i], ints[i+1])
		}
		got, _, err := readInt64(a)
		if err != nil || got != ints[i] {
			t.Errorf("readInt64(%d) = %d, %v", ints[i], got, err)
		}
	}
	// Session keys round-trip and mis-tagged keys are rejected.
	for _, id := range []string{"deadbeef00112233", "x", "a\x00b"} {
		got, err := SessionID(SessionKey(id))
		if err != nil || got != id {
			t.Errorf("SessionID(SessionKey(%q)) = %q, %v", id, got, err)
		}
	}
	if _, err := SessionID(RegistryKey("x")); err == nil {
		t.Error("SessionID accepted a registry key")
	}

	// Policy keys: a child's key bytes extend its parent's, so the subtree
	// is exactly the bytewise prefix range.
	parent := policy.AppendEdge(nil, 3, true)
	child := policy.AppendEdge(append([]byte(nil), parent...), 7, false)
	pk := PolicySubtreePrefix("inst", 2, "L2S", 0, parent)
	ck := PolicyNodeKey("inst", 2, "L2S", 0, child, 9)
	if !bytes.HasPrefix(ck, pk) {
		t.Error("child policy key does not extend the parent subtree prefix")
	}
	tree := PolicyTreePrefix("inst", 2, "L2S", 0)
	ap, rng, err := SplitPolicyNodeKey(tree, ck)
	if err != nil || !bytes.Equal(ap, child) || rng != 9 {
		t.Errorf("SplitPolicyNodeKey = (%v, %d, %v), want (%v, 9, nil)", ap, rng, err, child)
	}
	inst, ver, strat, seed, rest, err := ParsePolicyTree(ck)
	if err != nil || inst != "inst" || ver != 2 || strat != "L2S" || seed != 0 || !bytes.Equal(rest, ck[len(tree):]) {
		t.Errorf("ParsePolicyTree = (%q, %d, %q, %d, %v, %v)", inst, ver, strat, seed, rest, err)
	}
	// Trees with different (instance, version, strategy, seed) never share
	// a prefix.
	other := PolicyTreePrefix("inst", 2, "L2S", 1)
	if bytes.HasPrefix(other, tree) || bytes.HasPrefix(tree, other) {
		t.Error("distinct trees share a prefix")
	}
}

// TestLogCompaction drives enough garbage through a tightly-bounded log to
// trigger automatic compaction, and checks the surviving state and the
// reclaimed bytes.
func TestLogCompaction(t *testing.T) {
	s, dir := openTestLog(t, LogOptions{CompactMinGarbage: 512, CompactGarbageRatio: 0.4})
	val := bytes.Repeat([]byte("v"), 64)
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			if err := s.Put([]byte(fmt.Sprintf("key%d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Delete([]byte("key9")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d bytes of garbage: %+v", st.DeadBytes, st)
	}
	if st.CompactedBytes == 0 {
		t.Error("compaction reclaimed nothing")
	}
	if st.Keys != 9 {
		t.Errorf("got %d keys, want 9", st.Keys)
	}
	// The state survives both compaction and a reopen of the compacted file.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 9; i++ {
		v, ok, err := re.Get([]byte(fmt.Sprintf("key%d", i)))
		if err != nil || !ok || !bytes.Equal(v, val) {
			t.Fatalf("key%d after compaction+reopen: ok=%v err=%v", i, ok, err)
		}
	}
	if _, ok, _ := re.Get([]byte("key9")); ok {
		t.Error("deleted key resurrected by compaction")
	}
}

// TestLogCompactionDisabled: a negative CompactMinGarbage turns automatic
// compaction off; explicit Compact still works.
func TestLogCompactionDisabled(t *testing.T) {
	s, _ := openTestLog(t, LogOptions{CompactMinGarbage: -1})
	val := bytes.Repeat([]byte("v"), 128)
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte("k"), val); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Compactions != 0 || st.DeadBytes == 0 {
		t.Fatalf("automatic compaction ran despite being disabled: %+v", st)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Compactions != 1 || st.DeadBytes != 0 {
		t.Fatalf("explicit compaction: %+v", st)
	}
}

// TestEnsureFormat stamps an empty store and rejects newer formats.
func TestEnsureFormat(t *testing.T) {
	kv := NewMem()
	if err := EnsureFormat(kv); err != nil {
		t.Fatal(err)
	}
	if err := EnsureFormat(kv); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := kv.Put(MetaKey(), []byte{FormatVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if err := EnsureFormat(kv); !errors.Is(err, ErrCorrupt) {
		t.Errorf("newer format accepted: %v", err)
	}
}

// TestClosed: every operation fails with ErrClosed after Close, on both
// backends.
func TestClosed(t *testing.T) {
	logKV, _ := openTestLog(t, LogOptions{})
	for name, kv := range map[string]KV{"mem": NewMem(), "log": logKV} {
		if err := kv.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := kv.Close(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := kv.Get([]byte("k")); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Get after close: %v", name, err)
		}
		if err := kv.Put([]byte("k"), nil); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Put after close: %v", name, err)
		}
		if err := kv.Scan(nil, func(_, _ []byte) bool { return true }); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Scan after close: %v", name, err)
		}
		if err := kv.Sync(); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Sync after close: %v", name, err)
		}
	}
}

// TestPolicyNodeRoundTrip: the node codec is exact — what Publish wrote is
// bit-identical to what PageIn returns.
func TestPolicyNodeRoundTrip(t *testing.T) {
	nodes := []policy.Node{
		{},
		{Chosen: -1, Complete: true},
		{Chosen: 42, Pivots: []int{1, 5, 9}, Complete: true, RNGAfter: 77},
		{Chosen: 1 << 30, RNGAfter: 1 << 40},
		{Chosen: 0, Pivots: make([]int, 100)},
	}
	for i, n := range nodes {
		got, err := DecodePolicyNode(EncodePolicyNode(nil, n))
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if got.Chosen != n.Chosen || got.Complete != n.Complete || got.RNGAfter != n.RNGAfter || len(got.Pivots) != len(n.Pivots) {
			t.Fatalf("node %d: decoded %+v, want %+v", i, got, n)
		}
		for j := range n.Pivots {
			if got.Pivots[j] != n.Pivots[j] {
				t.Fatalf("node %d pivot %d: %d != %d", i, j, got.Pivots[j], n.Pivots[j])
			}
		}
	}
	for _, bad := range [][]byte{
		nil,
		{},
		{99},                            // unknown version
		{policyNodeVersion},             // truncated after version
		{policyNodeVersion, 0x02, 0x05}, // bad complete flag
		append(EncodePolicyNode(nil, policy.Node{Chosen: 1}), 0), // trailing byte
		EncodePolicyNode(nil, policy.Node{Chosen: 1})[:3],        // truncated
	} {
		if _, err := DecodePolicyNode(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("DecodePolicyNode(%v) err = %v, want ErrCorrupt", bad, err)
		}
	}
}

// TestPolicyTier exercises the KV-backed tier directly: save, exact load,
// and subtree page-in order.
func TestPolicyTier(t *testing.T) {
	kv := NewMem()
	tier := NewPolicyTier(kv, 10)
	k := policy.Key{Instance: "i", Strategy: "TD", Seed: 0}
	root := []byte(nil)
	left := policy.AppendEdge(nil, 0, false)
	leftLeft := policy.AppendEdge(append([]byte(nil), left...), 1, true)
	right := policy.AppendEdge(nil, 0, true)
	for i, p := range [][]byte{root, left, leftLeft, right} {
		tier.Save(k, p, 0, policy.Node{Chosen: i})
	}
	if n, ok := tier.Load(k, leftLeft, 0); !ok || n.Chosen != 2 {
		t.Fatalf("Load(leftLeft) = %+v, %v", n, ok)
	}
	if _, ok := tier.Load(k, leftLeft, 5); ok {
		t.Error("Load hit on a wrong RNG position")
	}
	if _, ok := tier.Load(policy.Key{Instance: "other"}, leftLeft, 0); ok {
		t.Error("Load hit on a wrong tree")
	}
	// Page in the subtree under left. The stream must cover left and its
	// descendant; fixed-width RNG-position suffixes mean keys of other nodes
	// may also land in the scan range (rngPos 0 starts with 0x00 bytes, the
	// same bytes a 0-index edge encodes to) — that is documented readahead
	// slop, and every streamed node must still decode under its true prefix.
	byPrefix := map[string]int{
		string(root): 0, string(left): 1, string(leftLeft): 2, string(right): 3,
	}
	streamed := map[string]bool{}
	tier.PageIn(k, left, func(p []byte, rng uint64, n policy.Node) bool {
		want, known := byPrefix[string(p)]
		if !known || n.Chosen != want || rng != 0 {
			t.Errorf("PageIn streamed node %+v at prefix %v rng %d", n, p, rng)
		}
		streamed[string(p)] = true
		return true
	})
	if !streamed[string(left)] || !streamed[string(leftLeft)] {
		t.Errorf("PageIn(left) missed the subtree: %v", streamed)
	}
	if streamed[string(right)] {
		t.Error("PageIn(left) streamed the right sibling")
	}
	// Readahead bound of 1: only the first node streams.
	small := NewPolicyTier(kv, 1)
	var got []int
	small.PageIn(k, nil, func(p []byte, rng uint64, n policy.Node) bool {
		got = append(got, n.Chosen)
		return true
	})
	if len(got) != 1 {
		t.Errorf("readahead=1 streamed %d nodes", len(got))
	}
	// Save failures are absorbed and counted.
	kv.Close()
	tier.Save(k, root, 0, policy.Node{})
	if tier.SaveErrors() == 0 {
		t.Error("Save error not counted")
	}
}

// TestLogLeftoverCompactTemp: a temp file left by a crash mid-compaction is
// discarded on open and the original log stays authoritative.
func TestLogLeftoverCompactTemp(t *testing.T) {
	s, dir := openTestLog(t, LogOptions{})
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, logFileName+".compact")
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, ok, _ := re.Get([]byte("k")); !ok || !bytes.Equal(v, []byte("v")) {
		t.Errorf("log state lost after leftover temp: %q, %v", v, ok)
	}
}

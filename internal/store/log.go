package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Log is the durable KV backend: a single append-only file of CRC-framed
// records plus an in-RAM key directory (key → record location). Values live
// on disk and are read back on demand, so resident memory is proportional
// to the key space, not the data; a policy tree far larger than the
// in-process LRU can persist here and page in by prefix scan.
//
// # Record framing
//
//	[4B crc32][1B op][4B key len][4B value len][key][value]
//
// The CRC covers everything after itself. op is opPut or opDelete (deletes
// are tombstone records, so a reopened log replays to the same state).
//
// # Crash safety
//
// A record is acknowledged only after its bytes are handed to the OS in one
// write. On open, the file is replayed sequentially; the first record that
// is short or fails its CRC marks a torn tail — the file is truncated there
// and every acked write before it is intact. A record that claims an
// impossible length (corruption that still passes the length read) is
// caught the same way. Compaction rewrites live records to a temp file and
// atomically renames it over the log, so a crash mid-compaction leaves the
// original untouched.
//
// # Compaction
//
// Overwritten and deleted records are garbage ("dead bytes"). After a write
// the backend compacts automatically once dead bytes exceed both
// CompactMinGarbage and CompactGarbageRatio of the file; Compact may also
// be called explicitly.
type Log struct {
	cnt   counters
	opts  LogOptions
	path  string
	tPath string // temp file used by compaction

	mu     sync.Mutex
	f      *os.File
	off    int64 // append offset == durable file size
	dir    map[string]recLoc
	keys   []string // sorted when !dirty
	dirty  bool
	live   int64 // bytes of live records
	dead   int64 // bytes of garbage records
	closed bool

	compactions    int64
	compactedBytes int64

	// failAfter, when non-negative, makes writes fail (simulating a crash)
	// after that many more bytes reach the file — possibly mid-record.
	// Test hook; -1 disables.
	failAfter int64
}

// LogOptions are the log backend's knobs; zero values select the defaults.
type LogOptions struct {
	// CompactMinGarbage is the minimum dead-byte count before an automatic
	// compaction (default 1 MiB). Negative disables automatic compaction.
	CompactMinGarbage int64
	// CompactGarbageRatio is the dead fraction of the file that must be
	// garbage before an automatic compaction (default 0.5).
	CompactGarbageRatio float64
	// SyncEvery fsyncs after every write when true; by default only Sync
	// and Close flush to stable storage.
	SyncEvery bool
	// Observe, when non-nil, receives the wall-clock duration of each
	// append ("append": framing plus the contiguous file write of one
	// batch), fsync ("fsync") and log compaction ("compact") — the hook a
	// telemetry layer points at a latency histogram. It is called with the
	// store lock held, so it must be cheap and must not call back into the
	// store.
	Observe func(op string, d time.Duration)
}

func (o LogOptions) withDefaults() LogOptions {
	if o.CompactMinGarbage == 0 {
		o.CompactMinGarbage = 1 << 20
	}
	if o.CompactGarbageRatio == 0 {
		o.CompactGarbageRatio = 0.5
	}
	return o
}

// recLoc locates one live record in the file.
type recLoc struct {
	off  int64 // record start
	size int64 // total framed size
	vOff int64 // value start
	vLen int64
}

const (
	opPut    = 1
	opDelete = 2

	recHeader = 4 + 1 + 4 + 4 // crc + op + key len + value len

	// maxRecLen bounds a single record (1 GiB): anything larger in a header
	// is corruption, not data.
	maxRecLen = 1 << 30

	logFileName = "store.log"
)

// OpenLog opens (creating if needed) the log backend rooted at dir,
// replaying the existing log into the key directory and discarding any
// torn tail left by a crash.
func OpenLog(dir string, opts LogOptions) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening log dir: %w", err)
	}
	s := &Log{
		opts:      opts.withDefaults(),
		path:      filepath.Join(dir, logFileName),
		tPath:     filepath.Join(dir, logFileName+".compact"),
		dir:       make(map[string]recLoc),
		failAfter: -1,
	}
	// A leftover temp file means a crash mid-compaction; the real log is
	// intact, the temp is garbage.
	_ = os.Remove(s.tPath)
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening log: %w", err)
	}
	s.f = f
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the log sequentially, rebuilding the key directory and
// truncating at the first torn or corrupt record.
func (s *Log) replay() error {
	size, err := s.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("store: sizing log: %w", err)
	}
	r := io.NewSectionReader(s.f, 0, size)
	var off int64
	hdr := make([]byte, recHeader)
	var body []byte
	for off < size {
		if size-off < recHeader {
			break // torn header
		}
		if _, err := io.ReadFull(r, hdr); err != nil {
			return fmt.Errorf("store: reading log: %w", err)
		}
		crc := binary.BigEndian.Uint32(hdr[0:4])
		op := hdr[4]
		kLen := int64(binary.BigEndian.Uint32(hdr[5:9]))
		vLen := int64(binary.BigEndian.Uint32(hdr[9:13]))
		bodyLen := kLen + vLen
		if kLen > maxRecLen || vLen > maxRecLen || bodyLen > size-off-recHeader {
			break // impossible length: torn or corrupt tail
		}
		if int64(cap(body)) < bodyLen {
			body = make([]byte, bodyLen)
		}
		body = body[:bodyLen]
		if _, err := io.ReadFull(r, body); err != nil {
			break // torn body
		}
		h := crc32.NewIEEE()
		h.Write(hdr[4:])
		h.Write(body)
		if h.Sum32() != crc {
			break // corrupt record: treat as torn tail
		}
		total := recHeader + bodyLen
		key := string(body[:kLen])
		s.applyReplayed(key, op, recLoc{off: off, size: total, vOff: off + recHeader + kLen, vLen: vLen})
		off += total
	}
	if off < size {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	s.off = off
	s.dirty = true
	return nil
}

// applyReplayed folds one replayed record into the directory and byte
// accounting.
func (s *Log) applyReplayed(key string, op byte, loc recLoc) {
	if old, ok := s.dir[key]; ok {
		s.dead += old.size
		s.live -= old.size
		delete(s.dir, key)
	}
	if op == opPut {
		s.dir[key] = loc
		s.live += loc.size
	} else {
		s.dead += loc.size // the tombstone itself is garbage
	}
}

// appendFrame appends one framed record (CRC computed last) to buf.
func appendFrame(buf []byte, op byte, key, value []byte) []byte {
	n := len(buf)
	buf = append(buf, 0, 0, 0, 0, op)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(value)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	crc := crc32.ChecksumIEEE(buf[n+4:])
	binary.BigEndian.PutUint32(buf[n:n+4], crc)
	return buf
}

// write appends buf at the current offset, honoring the fault-injection
// hook. On success the append offset advances by len(buf).
func (s *Log) write(buf []byte) error {
	n := len(buf)
	if s.failAfter >= 0 {
		if int64(n) > s.failAfter {
			// Simulated crash: part of the record reaches the file, the ack
			// never happens, and every later operation fails.
			if s.failAfter > 0 {
				_, _ = s.f.WriteAt(buf[:s.failAfter], s.off)
			}
			s.failAfter = -1
			s.closed = true
			return fmt.Errorf("store: injected write fault")
		}
		s.failAfter -= int64(n)
	}
	if _, err := s.f.WriteAt(buf, s.off); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	s.off += int64(n)
	return nil
}

// Get implements KV: the value bytes are read back from the file.
func (s *Log) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	s.cnt.gets.Add(1)
	loc, ok := s.dir[string(key)]
	if !ok {
		s.cnt.getMisses.Add(1)
		return nil, false, nil
	}
	v, err := s.readValueLocked(loc)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

func (s *Log) readValueLocked(loc recLoc) ([]byte, error) {
	v := make([]byte, loc.vLen)
	if _, err := s.f.ReadAt(v, loc.vOff); err != nil {
		return nil, fmt.Errorf("store: reading value: %w", err)
	}
	return v, nil
}

// Put implements KV.
func (s *Log) Put(key, value []byte) error {
	return s.Batch([]Op{{Key: key, Value: value}})
}

// Delete implements KV: a tombstone record is appended so the deletion
// survives restart.
func (s *Log) Delete(key []byte) error {
	return s.Batch([]Op{{Key: key, Delete: true}})
}

// Batch implements KV: all records land in one contiguous write, so a crash
// either keeps a prefix of the batch or tears the record it died in —
// replay discards the tear and keeps the prefix.
func (s *Log) Batch(ops []Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	var buf []byte
	start := s.off
	type staged struct {
		key string
		op  byte
		loc recLoc
	}
	st := make([]staged, 0, len(ops))
	// pending tracks key existence as earlier ops of this batch apply, so a
	// delete after a put of the same key still writes its tombstone.
	var pending map[string]bool
	exists := func(k string) bool {
		if pending != nil {
			if v, ok := pending[k]; ok {
				return v
			}
		}
		_, ok := s.dir[k]
		return ok
	}
	for _, op := range ops {
		kind := byte(opPut)
		val := op.Value
		if op.Delete {
			kind = opDelete
			val = nil
			if !exists(string(op.Key)) {
				// Deleting an absent key: no tombstone needed.
				s.cnt.deletes.Add(1)
				continue
			}
		}
		if pending == nil {
			pending = make(map[string]bool, len(ops))
		}
		pending[string(op.Key)] = kind == opPut
		recOff := start + int64(len(buf))
		buf = appendFrame(buf, kind, op.Key, val)
		st = append(st, staged{
			key: string(op.Key),
			op:  kind,
			loc: recLoc{
				off:  recOff,
				size: start + int64(len(buf)) - recOff,
				vOff: recOff + recHeader + int64(len(op.Key)),
				vLen: int64(len(val)),
			},
		})
	}
	if len(buf) == 0 {
		return nil
	}
	if err := s.timed("append", func() error { return s.write(buf) }); err != nil {
		return err
	}
	for _, rec := range st {
		if rec.op == opPut {
			s.cnt.puts.Add(1)
		} else {
			s.cnt.deletes.Add(1)
		}
		if _, ok := s.dir[rec.key]; !ok && rec.op == opPut {
			s.dirty = true
			s.keys = append(s.keys, rec.key)
		}
		s.applyReplayed(rec.key, rec.op, rec.loc)
		if rec.op == opDelete {
			s.dirty = true
		}
	}
	if s.opts.SyncEvery {
		if err := s.timed("fsync", s.f.Sync); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	s.maybeCompactLocked()
	return nil
}

// timed runs fn, reporting its duration to the Observe hook when one is
// configured (failures are timed too — a slow failing fsync is exactly
// what a latency histogram should show).
func (s *Log) timed(op string, fn func() error) error {
	if s.opts.Observe == nil {
		return fn()
	}
	start := time.Now()
	err := fn()
	s.opts.Observe(op, time.Since(start))
	return err
}

// Scan implements KV: ascending key order within the prefix. The key set is
// snapshotted at scan start; values are re-resolved per record, so
// concurrent writes and compactions are safe (a key deleted mid-scan is
// skipped). fn must not call back into this store.
func (s *Log) Scan(prefix []byte, fn func(key, value []byte) bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.cnt.scans.Add(1)
	s.resortLocked()
	p := string(prefix)
	from := sort.SearchStrings(s.keys, p)
	var snap []string
	for _, k := range s.keys[from:] {
		if !bytes.HasPrefix([]byte(k), prefix) {
			break
		}
		snap = append(snap, k)
	}
	s.mu.Unlock()
	for _, k := range snap {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		loc, ok := s.dir[k]
		if !ok {
			s.mu.Unlock()
			continue
		}
		v, err := s.readValueLocked(loc)
		s.mu.Unlock()
		if err != nil {
			return err
		}
		s.cnt.scanned.Add(1)
		if !fn([]byte(k), v) {
			break
		}
	}
	return nil
}

// resortLocked rebuilds the sorted key slice after mutations.
func (s *Log) resortLocked() {
	if !s.dirty {
		return
	}
	keys := s.keys[:0]
	for k := range s.dir {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.keys = keys
	s.dirty = false
}

// maybeCompactLocked compacts when garbage crosses the configured bounds.
func (s *Log) maybeCompactLocked() {
	min := s.opts.CompactMinGarbage
	if min < 0 || s.dead < min {
		return
	}
	total := s.live + s.dead
	if total == 0 || float64(s.dead) < s.opts.CompactGarbageRatio*float64(total) {
		return
	}
	// Compaction failures are not fatal to the write that triggered them —
	// the log is still correct, just bigger; the next write retries.
	_ = s.compactLocked()
}

// Compact rewrites the log to live records only, reclaiming dead bytes.
func (s *Log) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Log) compactLocked() error {
	return s.timed("compact", s.compactInnerLocked)
}

func (s *Log) compactInnerLocked() error {
	tmp, err := os.OpenFile(s.tPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	defer os.Remove(s.tPath) // no-op after the successful rename
	s.resortLocked()
	newDir := make(map[string]recLoc, len(s.dir))
	var off int64
	var buf []byte
	for _, k := range s.keys {
		loc, ok := s.dir[k]
		if !ok {
			continue
		}
		v, err := s.readValueLocked(loc)
		if err != nil {
			tmp.Close()
			return err
		}
		buf = appendFrame(buf[:0], opPut, []byte(k), v)
		if _, err := tmp.WriteAt(buf, off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compacting: %w", err)
		}
		newDir[k] = recLoc{
			off:  off,
			size: int64(len(buf)),
			vOff: off + recHeader + int64(len(k)),
			vLen: loc.vLen,
		}
		off += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compacting: %w", err)
	}
	// Atomic swap: a crash before the rename leaves the old log authoritative.
	if err := os.Rename(s.tPath, s.path); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compacting: %w", err)
	}
	old := s.f
	s.f = tmp
	old.Close()
	reclaimed := s.dead
	s.dir = newDir
	s.off = off
	s.live = off
	s.dead = 0
	s.compactions++
	s.compactedBytes += reclaimed
	return nil
}

// Sync implements KV: fsync to stable storage.
func (s *Log) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.timed("fsync", s.f.Sync); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return nil
}

// Stats implements KV.
func (s *Log) Stats() Stats {
	st := s.cnt.snapshot()
	s.mu.Lock()
	st.Keys = int64(len(s.dir))
	st.LiveBytes = s.live
	st.DeadBytes = s.dead
	st.Compactions = s.compactions
	st.CompactedBytes = s.compactedBytes
	s.mu.Unlock()
	return st
}

// Close implements KV: flushes and releases the file.
func (s *Log) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.f.Close()
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: closing: %w", err)
	}
	return s.f.Close()
}

package store

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// RetryOptions configures a Retry wrapper; zero values select the
// defaults.
type RetryOptions struct {
	// Attempts is the total number of tries per operation (default 3; 1
	// means no retries).
	Attempts int
	// Base and Max bound the jittered exponential backoff between attempts
	// (defaults 2ms and 50ms — store retries sit on the answer path, so the
	// budget is tight; persistent failure is the breaker's job, not ours).
	Base, Max time.Duration
	// Seed initializes the jitter PRNG.
	Seed int64
	// Sleep overrides the inter-attempt sleep (tests); nil means time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, when non-nil, observes each retry (op name, 1-based retry
	// number, the error being retried).
	OnRetry func(op string, attempt int, err error)
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Base <= 0 {
		o.Base = 2 * time.Millisecond
	}
	if o.Max <= 0 {
		o.Max = 50 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Retry wraps a KV with jittered-backoff retries for transient errors.
// ErrClosed and ErrCorrupt are permanent and never retried. Scan is
// deliberately NOT retried: a scan that failed after visiting some records
// would re-deliver them on the retry, and callers like restore-on-boot
// treat each visited record as new — re-scanning would duplicate sessions.
// Scan callers own their retry semantics.
type Retry struct {
	inner KV
	opts  RetryOptions
	bo    resilience.Backoff

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Int64
}

// NewRetry wraps inner with retry semantics.
func NewRetry(inner KV, opts RetryOptions) *Retry {
	opts = opts.withDefaults()
	return &Retry{
		inner: inner,
		opts:  opts,
		bo:    resilience.Backoff{Base: opts.Base, Max: opts.Max},
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
}

// Transient reports whether err is worth retrying: any store error except
// the permanent sentinels ErrClosed (the backend is gone) and ErrCorrupt
// (the bytes will not get better).
func Transient(err error) bool {
	return err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrCorrupt)
}

// Retries returns how many retry attempts (not counting first tries) the
// wrapper has issued.
func (r *Retry) Retries() int64 { return r.retries.Load() }

func (r *Retry) delay(attempt int) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bo.Delay(attempt, r.rng)
}

func (r *Retry) do(op string, fn func() error) error {
	err := fn()
	for attempt := 1; attempt < r.opts.Attempts && Transient(err); attempt++ {
		if r.opts.OnRetry != nil {
			r.opts.OnRetry(op, attempt, err)
		}
		r.retries.Add(1)
		r.opts.Sleep(r.delay(attempt - 1))
		err = fn()
	}
	return err
}

// Get implements KV.
func (r *Retry) Get(key []byte) (val []byte, ok bool, err error) {
	err = r.do("get", func() error {
		var e error
		val, ok, e = r.inner.Get(key)
		return e
	})
	return val, ok, err
}

// Put implements KV. Re-issuing a Put is safe: it is a full-record
// overwrite, so a retry after a torn write replaces the garbage.
func (r *Retry) Put(key, value []byte) error {
	return r.do("put", func() error { return r.inner.Put(key, value) })
}

// Delete implements KV; deletes are idempotent.
func (r *Retry) Delete(key []byte) error {
	return r.do("delete", func() error { return r.inner.Delete(key) })
}

// Scan implements KV with NO retry (see the type comment).
func (r *Retry) Scan(prefix []byte, fn func(key, value []byte) bool) error {
	return r.inner.Scan(prefix, fn)
}

// Batch implements KV; the whole batch re-applies, which is safe for the
// same overwrite reason as Put.
func (r *Retry) Batch(ops []Op) error {
	return r.do("batch", func() error { return r.inner.Batch(ops) })
}

// Sync implements KV.
func (r *Retry) Sync() error {
	return r.do("sync", func() error { return r.inner.Sync() })
}

// Stats implements KV, passing through to the inner backend.
func (r *Retry) Stats() Stats { return r.inner.Stats() }

// Close implements KV.
func (r *Retry) Close() error { return r.inner.Close() }

package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/policy"
	"repro/internal/resilience"
)

// PolicyTier adapts a KV into the policy cache's second tier: published
// decision nodes are written through as compact binary records under
// sortable (instance, version, strategy, seed, answer-prefix) keys, and an LRU miss
// pages the subtree rooted at the missed prefix back in with one prefix
// scan. The byte-bounded LRU then holds only the working set; the full
// tree — thousands of instances' worth — lives in the store.
type PolicyTier struct {
	kv KV
	// readahead bounds how many nodes one PageIn streams into the LRU.
	readahead int
	// br, when set, circuit-breaks the tier: with the breaker open every
	// Load/PageIn is a miss and every Save is skipped, so a dying store
	// costs one Allow() check instead of an IO stall per node. The walk
	// recomputes live — slower, never wrong.
	br *resilience.Breaker
	// saveErrs counts Save failures (absorbed per the Tier2 contract).
	saveErrs atomic.Int64
	// skipped counts operations short-circuited by an open breaker.
	skipped atomic.Int64
}

// DefaultPolicyReadahead is the subtree page-in bound: enough to cover the
// next several levels of a walk without flooding the LRU on every miss.
const DefaultPolicyReadahead = 512

// NewPolicyTier builds a policy tier over the KV; readahead ≤ 0 selects
// DefaultPolicyReadahead.
func NewPolicyTier(kv KV, readahead int) *PolicyTier {
	if readahead <= 0 {
		readahead = DefaultPolicyReadahead
	}
	return &PolicyTier{kv: kv, readahead: readahead}
}

// SaveErrors reports how many Save calls failed (and were absorbed).
func (t *PolicyTier) SaveErrors() int64 { return t.saveErrs.Load() }

// SetBreaker attaches a circuit breaker (typically shared with the session
// persist path, so one store-health verdict governs both). Call before the
// tier starts serving.
func (t *PolicyTier) SetBreaker(br *resilience.Breaker) { t.br = br }

// BreakerSkips reports how many tier operations an open breaker
// short-circuited.
func (t *PolicyTier) BreakerSkips() int64 { return t.skipped.Load() }

// Load implements policy.Tier2.
func (t *PolicyTier) Load(k policy.Key, prefix []byte, rngPos uint64) (policy.Node, bool) {
	if !t.br.Allow() {
		t.skipped.Add(1)
		return policy.Node{}, false
	}
	v, ok, err := t.kv.Get(PolicyNodeKey(k.Instance, k.Version, k.Strategy, k.Seed, prefix, rngPos))
	if err != nil {
		t.br.Failure(err)
		return policy.Node{}, false
	}
	t.br.Success()
	if !ok {
		return policy.Node{}, false
	}
	n, err := DecodePolicyNode(v)
	if err != nil {
		return policy.Node{}, false // corrupt record: treat as a miss
	}
	return n, true
}

// PageIn implements policy.Tier2: one prefix scan streams the stored
// subtree under the answer prefix into the LRU, in key order (the node at
// the prefix itself first for deterministic trees, then descendants).
func (t *PolicyTier) PageIn(k policy.Key, prefix []byte, insert func(prefix []byte, rngPos uint64, n policy.Node) bool) {
	if !t.br.Allow() {
		t.skipped.Add(1)
		return
	}
	treePrefix := PolicyTreePrefix(k.Instance, k.Version, k.Strategy, k.Seed)
	scanPrefix := append(append([]byte(nil), treePrefix...), prefix...)
	left := t.readahead
	err := t.kv.Scan(scanPrefix, func(key, value []byte) bool {
		answerPrefix, rngPos, err := SplitPolicyNodeKey(treePrefix, key)
		if err != nil {
			return true // not a well-formed node key; skip
		}
		n, err := DecodePolicyNode(value)
		if err != nil {
			return true // corrupt record: skip, the walk recomputes it
		}
		if !insert(answerPrefix, rngPos, n) {
			return false
		}
		left--
		return left > 0
	})
	if err != nil {
		t.br.Failure(err)
	} else {
		t.br.Success()
	}
}

// Save implements policy.Tier2: write-through of one published node.
func (t *PolicyTier) Save(k policy.Key, prefix []byte, rngPos uint64, n policy.Node) {
	if !t.br.Allow() {
		t.skipped.Add(1)
		return
	}
	key := PolicyNodeKey(k.Instance, k.Version, k.Strategy, k.Seed, prefix, rngPos)
	if err := t.kv.Put(key, EncodePolicyNode(nil, n)); err != nil {
		t.saveErrs.Add(1)
		t.br.Failure(err)
	} else {
		t.br.Success()
	}
}

// Policy node value format (version-tagged, varint-packed):
//
//	[1B version=1][varint chosen][1B complete][uvarint rngAfter]
//	[uvarint len(pivots)][varint pivot]...
const policyNodeVersion = 1

// maxPolicyPivots bounds the decoded pivot count: a batch never picks more
// pivots than there are T-classes, and no real instance has a million —
// anything above is corruption, not data.
const maxPolicyPivots = 1 << 20

// EncodePolicyNode appends the node's binary form to buf.
func EncodePolicyNode(buf []byte, n policy.Node) []byte {
	buf = append(buf, policyNodeVersion)
	buf = binary.AppendVarint(buf, int64(n.Chosen))
	if n.Complete {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, n.RNGAfter)
	buf = binary.AppendUvarint(buf, uint64(len(n.Pivots)))
	for _, p := range n.Pivots {
		buf = binary.AppendVarint(buf, int64(p))
	}
	return buf
}

// DecodePolicyNode parses a node value. Corrupt, truncated, or
// version-skewed input returns ErrCorrupt — never a panic, and never a
// silently misparsed node.
func DecodePolicyNode(data []byte) (policy.Node, error) {
	var n policy.Node
	if len(data) == 0 {
		return n, fmt.Errorf("%w: empty policy node", ErrCorrupt)
	}
	if data[0] != policyNodeVersion {
		return n, fmt.Errorf("%w: policy node version %d", ErrCorrupt, data[0])
	}
	b := data[1:]
	chosen, b, err := readVarint(b)
	if err != nil {
		return n, err
	}
	if chosen < -1 || chosen > math.MaxInt32 {
		return n, fmt.Errorf("%w: policy node chosen %d", ErrCorrupt, chosen)
	}
	if len(b) == 0 || b[0] > 1 {
		return n, fmt.Errorf("%w: policy node complete flag", ErrCorrupt)
	}
	complete := b[0] == 1
	b = b[1:]
	rngAfter, b, err := readUvarint(b)
	if err != nil {
		return n, err
	}
	count, b, err := readUvarint(b)
	if err != nil {
		return n, err
	}
	if count > maxPolicyPivots || int64(count) > int64(len(b)) {
		// Each pivot takes at least one byte, so count > len(b) is corrupt.
		return n, fmt.Errorf("%w: policy node pivot count %d", ErrCorrupt, count)
	}
	var pivots []int
	if count > 0 {
		pivots = make([]int, count)
		for i := range pivots {
			var p int64
			p, b, err = readVarint(b)
			if err != nil {
				return n, err
			}
			if p < 0 || p > math.MaxInt32 {
				return n, fmt.Errorf("%w: policy node pivot %d", ErrCorrupt, p)
			}
			pivots[i] = int(p)
		}
	}
	if len(b) != 0 {
		return n, fmt.Errorf("%w: %d trailing bytes in policy node", ErrCorrupt, len(b))
	}
	n.Chosen = int(chosen)
	n.Complete = complete
	n.RNGAfter = rngAfter
	n.Pivots = pivots
	return n, nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	return v, b[n:], nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, b[n:], nil
}

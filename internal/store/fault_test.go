package store

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/resilience"
)

func mustNode() policy.Node {
	return policy.Node{Chosen: 3, Complete: true, Pivots: []int{1, 2, 3}, RNGAfter: 9}
}

func testPolicyKey() policy.Key {
	return policy.Key{Instance: "chaos", Strategy: "L2S", Seed: 42}
}

// opTrace runs a fixed operation script against a Fault and records which
// ops failed, for determinism comparisons.
func opTrace(f *Fault) []string {
	var trace []string
	rec := func(op string, err error) {
		if err != nil {
			trace = append(trace, op+":fail")
		} else {
			trace = append(trace, op+":ok")
		}
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		rec("put", f.Put(k, []byte("value-of-some-length")))
		_, _, err := f.Get(k)
		rec("get", err)
		if i%10 == 0 {
			rec("sync", f.Sync())
		}
	}
	return trace
}

func TestFaultDeterministicSchedule(t *testing.T) {
	cfg := FaultConfig{Seed: 99, ErrorRate: 0.2, TornWriteRate: 0.05}
	a := opTrace(NewFault(NewMem(), cfg))
	b := opTrace(NewFault(NewMem(), cfg))
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d: %q vs %q", i, a[i], b[i])
		}
	}
	fails := 0
	for _, e := range a {
		if e == "put:fail" || e == "get:fail" || e == "sync:fail" {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("expected some injected failures at 20% error rate")
	}
}

func TestFaultErrorsAreTransientSentinel(t *testing.T) {
	f := NewFault(NewMem(), FaultConfig{Seed: 1, ErrorRate: 1})
	err := f.Put([]byte("k"), []byte("v"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !Transient(err) {
		t.Fatal("injected errors must be transient")
	}
	if Transient(ErrClosed) || Transient(ErrCorrupt) || Transient(nil) {
		t.Fatal("ErrClosed/ErrCorrupt/nil must not be transient")
	}
}

func TestFaultTornWriteLeavesCorruptRecord(t *testing.T) {
	mem := NewMem()
	f := NewFault(mem, FaultConfig{Seed: 0, TornWriteRate: 1})
	val := EncodePolicyNode(nil, mustNode())
	err := f.Put([]byte("node"), val)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write must also report failure, got %v", err)
	}
	// The inner backend holds a truncated record...
	got, ok, gerr := mem.Get([]byte("node"))
	if gerr != nil || !ok {
		t.Fatalf("inner Get = %v %v", ok, gerr)
	}
	if len(got) >= len(val) {
		t.Fatalf("stored %d bytes, want truncation below %d", len(got), len(val))
	}
	// ...which the decoder must reject, not misparse.
	if _, derr := DecodePolicyNode(got); !errors.Is(derr, ErrCorrupt) {
		t.Fatalf("decode of torn record = %v, want ErrCorrupt", derr)
	}
	// A clean rewrite (faults off) repairs it.
	f.SetEnabled(false)
	if err := f.Put([]byte("node"), val); err != nil {
		t.Fatal(err)
	}
	got, _, _ = f.Get([]byte("node"))
	if _, derr := DecodePolicyNode(got); derr != nil {
		t.Fatalf("decode after repair = %v", derr)
	}
	st := f.FaultStats()
	if st.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", st.TornWrites)
	}
}

func TestFaultDisabledIsPassThrough(t *testing.T) {
	f := NewFault(NewMem(), FaultConfig{Seed: 3, ErrorRate: 1, LatencyRate: 1, Latency: time.Hour})
	f.SetEnabled(false)
	if f.Enabled() {
		t.Fatal("Enabled() should be false")
	}
	for i := 0; i < 50; i++ {
		if err := f.Put([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatalf("disabled fault injected: %v", err)
		}
	}
	if st := f.FaultStats(); st != (FaultStats{}) {
		t.Fatalf("disabled fault counted injections: %+v", st)
	}
}

func TestFaultLatencyInjection(t *testing.T) {
	f := NewFault(NewMem(), FaultConfig{Seed: 5, LatencyRate: 1, Latency: 7 * time.Millisecond})
	var slept []time.Duration
	f.sleep = func(d time.Duration) { slept = append(slept, d) }
	_, _, _ = f.Get([]byte("k"))
	_ = f.Put([]byte("k"), []byte("v"))
	if len(slept) != 2 || slept[0] != 7*time.Millisecond {
		t.Fatalf("slept = %v, want two 7ms spikes", slept)
	}
	if st := f.FaultStats(); st.Latencies != 2 {
		t.Fatalf("Latencies = %d, want 2", st.Latencies)
	}
}

func TestRetryAbsorbsTransientErrors(t *testing.T) {
	f := NewFault(NewMem(), FaultConfig{Seed: 11, ErrorRate: 0.5})
	var slept int
	r := NewRetry(f, RetryOptions{
		Attempts: 24,
		Sleep:    func(time.Duration) { slept++ },
	})
	// At 50% error rate, 24 attempts all fail with p ≈ 6e-8; the fixed seed
	// makes the schedule reproducible, so a passing run stays passing.
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if err := r.Put(k, []byte("v")); err != nil {
			t.Fatalf("Put(%s) = %v despite retries", k, err)
		}
		if _, ok, err := r.Get(k); err != nil || !ok {
			t.Fatalf("Get(%s) = %v %v despite retries", k, ok, err)
		}
	}
	if r.Retries() == 0 || slept == 0 {
		t.Fatalf("expected retries (got %d) and sleeps (got %d)", r.Retries(), slept)
	}
}

func TestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	mem := NewMem()
	mem.Close()
	calls := 0
	r := NewRetry(mem, RetryOptions{
		Attempts: 5,
		Sleep:    func(time.Duration) {},
		OnRetry:  func(string, int, error) { calls++ },
	})
	if err := r.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if calls != 0 || r.Retries() != 0 {
		t.Fatalf("permanent error was retried %d times", r.Retries())
	}
}

func TestRetryScanPassesThrough(t *testing.T) {
	f := NewFault(NewMem(), FaultConfig{Seed: 2, ErrorRate: 1})
	r := NewRetry(f, RetryOptions{Attempts: 5, Sleep: func(time.Duration) {}})
	err := r.Scan(nil, func(k, v []byte) bool { return true })
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Scan err = %v, want the raw injected error", err)
	}
	if r.Retries() != 0 {
		t.Fatal("Scan must not be retried")
	}
}

func TestPolicyTierBreakerShortCircuits(t *testing.T) {
	mem := NewMem()
	f := NewFault(mem, FaultConfig{Seed: 7, ErrorRate: 1})
	f.SetEnabled(false)
	tier := NewPolicyTier(f, 0)
	br := resilience.NewBreaker(resilience.BreakerOptions{Threshold: 2, Cooloff: time.Minute})
	tier.SetBreaker(br)

	k := testPolicyKey()
	tier.Save(k, nil, 0, mustNode())
	if _, ok := tier.Load(k, nil, 0); !ok {
		t.Fatal("healthy tier should load the saved node")
	}

	// Two consecutive failures trip the shared breaker...
	f.SetEnabled(true)
	tier.Save(k, []byte{1}, 0, mustNode())
	tier.Save(k, []byte{2}, 0, mustNode())
	if br.State() != resilience.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", br.State())
	}
	before := mem.Stats().Gets
	// ...after which loads are misses without touching the KV.
	if _, ok := tier.Load(k, nil, 0); ok {
		t.Fatal("open breaker must force a miss")
	}
	if mem.Stats().Gets != before {
		t.Fatal("open breaker must not reach the backend")
	}
	if tier.BreakerSkips() == 0 {
		t.Fatal("skips must be counted")
	}
}

// Package store is the persistent storage subsystem: a small key-value
// interface with sortable binary keys, an in-memory backend for tests, and
// a dependency-free, crash-safe append-only log backend with periodic
// compaction.
//
// Everything durable in the serving stack goes through it — session
// snapshots (compact binary records instead of one JSON file per session),
// policy-tree nodes (so a warm decision tree pages into the byte-bounded
// LRU by prefix scan instead of living wholly in RAM), and the registry's
// precomputed instances and T-classes (so boot stops re-parsing CSV and
// re-generating TPC-H).
//
// # Key space
//
// Keys are binary and ordered bytewise; related records share a prefix so
// one Scan pages in a whole family. The codec in keys.go builds them:
// a one-byte table tag, then order-preserving encodings of the components
// (0x00-terminated escaped strings, big-endian sign-flipped int64s). Policy
// node keys end with the session's answer prefix, whose encoding is
// append-only — a child's key bytes extend its parent's — so "scan the
// subtree under this prefix" is exactly a bytewise prefix scan.
//
// # Durability contract
//
// Put/Delete/Batch are durable against process crash once they return: the
// log backend writes the framed record to the OS before acking, and on
// reopen a torn or corrupt tail (a crash mid-write) is detected by CRC and
// discarded — every acked write before it survives. Sync additionally
// flushes to stable storage (fsync) for machine-crash durability; callers
// invoke it at checkpoints (session persist, shutdown), not per write.
package store

import (
	"errors"
	"sync/atomic"
)

// Sentinel errors.
var (
	// ErrCorrupt reports a log record or encoded value that fails its
	// integrity checks — a CRC mismatch, an impossible length, a bad magic.
	// A corrupt tail on reopen is NOT an error (it is a torn write and is
	// discarded); ErrCorrupt surfaces only where data loss would otherwise
	// be silent.
	ErrCorrupt = errors.New("store: corrupt record")
	// ErrClosed reports use of a backend after Close.
	ErrClosed = errors.New("store: closed")
)

// Op is one operation of a Batch.
type Op struct {
	// Key is the record's key; Value nil with Delete true removes it.
	Key, Value []byte
	Delete     bool
}

// KV is the storage interface the rest of the stack programs against. All
// methods are safe for concurrent use. Keys and values passed in are copied
// (callers may reuse their buffers); values returned are private copies the
// caller owns.
type KV interface {
	// Get returns the value stored under key, and whether one exists.
	Get(key []byte) ([]byte, bool, error)
	// Put stores value under key, overwriting any previous value.
	Put(key, value []byte) error
	// Delete removes the key; deleting an absent key is a no-op.
	Delete(key []byte) error
	// Scan visits every record whose key starts with prefix, in ascending
	// key order, until fn returns false. fn's key and value are only valid
	// for the duration of the call.
	Scan(prefix []byte, fn func(key, value []byte) bool) error
	// Batch applies the operations in order as one append; on the log
	// backend they land in one contiguous write.
	Batch(ops []Op) error
	// Sync flushes acknowledged writes to stable storage (fsync).
	Sync() error
	// Stats returns a point-in-time snapshot of the backend's counters.
	Stats() Stats
	// Close releases the backend; further use fails with ErrClosed.
	Close() error
}

// Stats is a point-in-time view of a backend's counters.
type Stats struct {
	// Gets/Puts/Deletes/Scans count operations; GetMisses counts Gets that
	// found nothing; Scanned counts records visited by scans.
	Gets      int64 `json:"gets"`
	GetMisses int64 `json:"get_misses"`
	Puts      int64 `json:"puts"`
	Deletes   int64 `json:"deletes"`
	Scans     int64 `json:"scans"`
	Scanned   int64 `json:"scanned"`
	// Keys and LiveBytes are current residency (keys + live record bytes);
	// DeadBytes is log garbage awaiting compaction (0 on the memory
	// backend).
	Keys      int64 `json:"keys"`
	LiveBytes int64 `json:"live_bytes"`
	DeadBytes int64 `json:"dead_bytes"`
	// Compactions counts log rewrites; CompactedBytes the garbage they
	// reclaimed.
	Compactions    int64 `json:"compactions"`
	CompactedBytes int64 `json:"compacted_bytes"`
}

// counters are the atomic operation counters shared by the backends.
type counters struct {
	gets, getMisses, puts, deletes, scans, scanned atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Gets:      c.gets.Load(),
		GetMisses: c.getMisses.Load(),
		Puts:      c.puts.Load(),
		Deletes:   c.deletes.Load(),
		Scans:     c.scans.Load(),
		Scanned:   c.scanned.Load(),
	}
}

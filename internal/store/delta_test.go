package store

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/relation"
)

func sampleDelta(i int) relation.Delta {
	return relation.Delta{
		InsertR: []relation.Tuple{{fmt.Sprintf("r%d", i), "x"}},
		InsertP: []relation.Tuple{{"p", fmt.Sprintf("%d", i), ""}},
		DeleteR: []int{i},
		DeleteP: []int{i, i + 1},
	}
}

func TestDeltaCodecRoundtrip(t *testing.T) {
	cases := []relation.Delta{
		{},
		{InsertR: []relation.Tuple{{"a", "b"}, {"", ""}}},
		{InsertP: []relation.Tuple{{"only p"}}},
		{DeleteR: []int{0, 5, 2}},
		{DeleteP: []int{7}},
		sampleDelta(3),
		{InsertR: []relation.Tuple{{"nul\x00byte", "uni☃code"}}},
	}
	for i, d := range cases {
		got, err := DecodeDelta(EncodeDelta(nil, d))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// Encode normalizes nothing, so a round trip must be exact (modulo
		// nil vs empty slices, which reflect.DeepEqual distinguishes — use
		// the encoded form as the canonical comparison).
		if string(EncodeDelta(nil, got)) != string(EncodeDelta(nil, d)) {
			t.Fatalf("case %d: round trip diverged: %+v vs %+v", i, got, d)
		}
	}
}

func TestDecodeDeltaRejectsCorrupt(t *testing.T) {
	valid := EncodeDelta(nil, sampleDelta(1))
	cases := [][]byte{
		nil,
		{},
		{99},                 // unknown version
		valid[:1],            // truncated after version byte
		valid[:len(valid)-1], // truncated tail
		append(append([]byte(nil), valid...), 0xAB),                                      // trailing bytes
		{deltaRecordVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, // huge count
	}
	for i, data := range cases {
		if _, err := DecodeDelta(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestDeltaLogAppendReplay(t *testing.T) {
	kv := NewMem()
	for v := int64(1); v <= 4; v++ {
		if err := AppendDelta(kv, "inst", v, sampleDelta(int(v))); err != nil {
			t.Fatal(err)
		}
	}
	// A same-prefix name must not leak into the scan.
	if err := AppendDelta(kv, "inst2", 1, sampleDelta(9)); err != nil {
		t.Fatal(err)
	}

	var got []int64
	err := ReplayDeltaLog(kv, "inst", 0, func(version int64, d relation.Delta) error {
		got = append(got, version)
		want := sampleDelta(int(version))
		if !reflect.DeepEqual(d.DeleteP, want.DeleteP) || len(d.InsertR) != 1 || d.InsertR[0][0] != want.InsertR[0][0] {
			t.Errorf("version %d: replayed %+v", version, d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int64{1, 2, 3, 4}) {
		t.Fatalf("replayed versions %v", got)
	}

	// Replay from a mid-log version skips what the caller already has.
	got = nil
	if err := ReplayDeltaLog(kv, "inst", 2, func(version int64, d relation.Delta) error {
		got = append(got, version)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int64{3, 4}) {
		t.Fatalf("replay from 2: versions %v", got)
	}

	// A callback error aborts the replay and surfaces.
	sentinel := errors.New("stop")
	if err := ReplayDeltaLog(kv, "inst", 0, func(int64, relation.Delta) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error: %v", err)
	}
}

func TestReplayDeltaLogDetectsGap(t *testing.T) {
	kv := NewMem()
	if err := AppendDelta(kv, "inst", 1, sampleDelta(1)); err != nil {
		t.Fatal(err)
	}
	if err := AppendDelta(kv, "inst", 3, sampleDelta(3)); err != nil {
		t.Fatal(err)
	}
	err := ReplayDeltaLog(kv, "inst", 0, func(int64, relation.Delta) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap not detected: %v", err)
	}
}

func TestDeltaKeyRoundtripAndOrder(t *testing.T) {
	inst, ver, err := ParseDeltaKey(DeltaKey("my\x00inst", 42))
	if err != nil || inst != "my\x00inst" || ver != 42 {
		t.Fatalf("ParseDeltaKey = %q, %d, %v", inst, ver, err)
	}
	// Version order must be bytewise key order (the replay scan relies on
	// it).
	prev := DeltaKey("i", 1)
	for v := int64(2); v < 300; v += 7 {
		k := DeltaKey("i", v)
		if string(prev) >= string(k) {
			t.Fatalf("key order broken at version %d", v)
		}
		prev = k
	}
}

// TestEnsureFormatUpgradeFromV1 checks the v1→v2 upgrade path: the policy
// and registry tables (whose key layout changed, and which are pure caches)
// are dropped, session snapshots survive, and the store is restamped.
func TestEnsureFormatUpgradeFromV1(t *testing.T) {
	kv := NewMem()
	if err := kv.Put(MetaKey(), []byte{1}); err != nil {
		t.Fatal(err)
	}
	// A version-1 policy key (no version component) plus registry and
	// session records.
	v1Policy := appendEscaped([]byte{tablePolicy}, "inst")
	v1Policy = appendEscaped(v1Policy, "TD")
	v1Policy = appendInt64(v1Policy, 0)
	for _, k := range [][]byte{v1Policy, RegistryKey("inst"), SessionKey("0123456789abcdef")} {
		if err := kv.Put(k, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := EnsureFormat(kv); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := kv.Get(MetaKey()); !ok || len(v) != 1 || v[0] != FormatVersion {
		t.Fatalf("meta after upgrade = %v, %v", v, ok)
	}
	if _, ok, _ := kv.Get(v1Policy); ok {
		t.Error("v1 policy record survived the upgrade")
	}
	if _, ok, _ := kv.Get(RegistryKey("inst")); ok {
		t.Error("v1 registry record survived the upgrade")
	}
	if _, ok, _ := kv.Get(SessionKey("0123456789abcdef")); !ok {
		t.Error("session record did not survive the upgrade")
	}
	// Idempotent on a current-version store.
	if err := EnsureFormat(kv); err != nil {
		t.Fatal(err)
	}
	// A store from the future is rejected.
	if err := kv.Put(MetaKey(), []byte{FormatVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if err := EnsureFormat(kv); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future store accepted: %v", err)
	}
}

package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the transient error returned by Fault when it injects a
// failure. It is deliberately distinct from ErrCorrupt and ErrClosed so
// retry policies treat it (and any other unknown error) as transient.
var ErrInjected = fmt.Errorf("store: injected fault")

// FaultConfig describes what a Fault wrapper injects. Rates are
// probabilities in [0, 1]; the draws come from a seeded PRNG, so a given
// (seed, operation sequence) produces the same fault schedule every run.
type FaultConfig struct {
	// Seed initializes the PRNG (0 is a valid, fixed seed).
	Seed int64
	// ErrorRate is the probability an operation fails with ErrInjected
	// before reaching the inner backend.
	ErrorRate float64
	// LatencyRate is the probability an operation sleeps for Latency first.
	LatencyRate float64
	// Latency is the injected delay (spike) when a latency draw hits.
	Latency time.Duration
	// TornWriteRate is the probability a Put writes a truncated value to the
	// inner backend and then fails — modeling a crash mid-write that left a
	// corrupt record behind. Decoders must detect it (ErrCorrupt) and the
	// writer must eventually re-persist.
	TornWriteRate float64
}

// FaultStats counts what a Fault has injected so far.
type FaultStats struct {
	Errors     int64 `json:"errors"`
	Latencies  int64 `json:"latencies"`
	TornWrites int64 `json:"torn_writes"`
}

// Fault wraps any KV with seeded, deterministic fault injection: transient
// errors, latency spikes, and torn writes. It is the chaos harness's
// workhorse and is also mountable in production via joinserve's -chaos
// flag. Injection can be toggled at runtime with SetEnabled and retuned
// with SetConfig; while disabled the wrapper is pass-through.
type Fault struct {
	inner KV

	mu  sync.Mutex
	rng *rand.Rand
	cfg FaultConfig

	enabled atomic.Bool
	errors  atomic.Int64
	lats    atomic.Int64
	torn    atomic.Int64

	// sleep is swappable so tests can observe injected latency without
	// actually waiting.
	sleep func(time.Duration)
}

// NewFault wraps inner with fault injection, enabled immediately.
func NewFault(inner KV, cfg FaultConfig) *Fault {
	f := &Fault{
		inner: inner,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
		sleep: time.Sleep,
	}
	f.enabled.Store(true)
	return f
}

// SetEnabled toggles injection; while disabled every operation passes
// straight through (the PRNG is not advanced).
func (f *Fault) SetEnabled(on bool) { f.enabled.Store(on) }

// Enabled reports whether injection is active.
func (f *Fault) Enabled() bool { return f.enabled.Load() }

// SetConfig swaps the injection rates; the PRNG keeps its stream so the
// schedule stays a deterministic function of (seed, op+config sequence).
func (f *Fault) SetConfig(cfg FaultConfig) {
	f.mu.Lock()
	f.cfg = cfg
	f.mu.Unlock()
}

// FaultStats returns how many faults have been injected so far.
func (f *Fault) FaultStats() FaultStats {
	return FaultStats{
		Errors:     f.errors.Load(),
		Latencies:  f.lats.Load(),
		TornWrites: f.torn.Load(),
	}
}

// decide draws this operation's fate: an injected delay, and whether to
// fail (and for Puts, whether the failure is a torn write).
func (f *Fault) decide(put bool) (delay time.Duration, fail, torn bool) {
	if !f.enabled.Load() {
		return 0, false, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cfg := f.cfg
	if cfg.LatencyRate > 0 && cfg.Latency > 0 && f.rng.Float64() < cfg.LatencyRate {
		delay = cfg.Latency
	}
	if put && cfg.TornWriteRate > 0 && f.rng.Float64() < cfg.TornWriteRate {
		return delay, true, true
	}
	if cfg.ErrorRate > 0 && f.rng.Float64() < cfg.ErrorRate {
		return delay, true, false
	}
	return delay, false, false
}

func (f *Fault) before(op string) error {
	delay, fail, _ := f.decide(false)
	if delay > 0 {
		f.lats.Add(1)
		f.sleep(delay)
	}
	if fail {
		f.errors.Add(1)
		return fmt.Errorf("%s: %w", op, ErrInjected)
	}
	return nil
}

// Get implements KV.
func (f *Fault) Get(key []byte) ([]byte, bool, error) {
	if err := f.before("get"); err != nil {
		return nil, false, err
	}
	return f.inner.Get(key)
}

// Put implements KV. A torn-write fault stores a truncated value in the
// inner backend AND returns an error: the record on disk is garbage, and
// the caller knows the write failed. This is the nastiest realistic disk
// fault — later reads must surface ErrCorrupt, not silently succeed.
func (f *Fault) Put(key, value []byte) error {
	delay, fail, torn := f.decide(true)
	if delay > 0 {
		f.lats.Add(1)
		f.sleep(delay)
	}
	if torn {
		f.torn.Add(1)
		cut := len(value) / 2
		if err := f.inner.Put(key, value[:cut]); err != nil {
			return err
		}
		return fmt.Errorf("put (torn write): %w", ErrInjected)
	}
	if fail {
		f.errors.Add(1)
		return fmt.Errorf("put: %w", ErrInjected)
	}
	return f.inner.Put(key, value)
}

// Delete implements KV.
func (f *Fault) Delete(key []byte) error {
	if err := f.before("delete"); err != nil {
		return err
	}
	return f.inner.Delete(key)
}

// Scan implements KV; a fault fails the whole scan up front (as a real
// backend would fail opening its iterator).
func (f *Fault) Scan(prefix []byte, fn func(key, value []byte) bool) error {
	if err := f.before("scan"); err != nil {
		return err
	}
	return f.inner.Scan(prefix, fn)
}

// Batch implements KV; error injection only (no torn batches — the log
// backend's batch is one contiguous record, torn tails are dropped whole).
func (f *Fault) Batch(ops []Op) error {
	if err := f.before("batch"); err != nil {
		return err
	}
	return f.inner.Batch(ops)
}

// Sync implements KV.
func (f *Fault) Sync() error {
	if err := f.before("sync"); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Stats implements KV, passing through to the inner backend.
func (f *Fault) Stats() Stats { return f.inner.Stats() }

// Close implements KV; Close is never fault-injected.
func (f *Fault) Close() error { return f.inner.Close() }

package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Key layout. Every key starts with a one-byte table tag, then
// order-preserving encodings of its components, so records of one family
// are contiguous in key order and a bytewise prefix scan enumerates them:
//
//	0x01                          meta (format version)
//	0x02 <id>                     session snapshot, binary service codec
//	0x03 <inst> <ver8> <strat> <seed8> <answer-prefix> <rngpos8>   policy node
//	0x04 <name>                   registry instance + T-class cache
//	0x05 <inst> <ver8>            delta-log record (the delta producing <ver>)
//
// Strings are escaped (0x00 → 0x00 0xFF) and 0x00 0x01-terminated, which
// preserves bytewise order and keeps a shorter string before its
// extensions. Seeds are big-endian with the sign bit flipped, ordering
// int64s correctly. The answer prefix (policy.AppendEdge's uvarint stream)
// is embedded raw: it is append-only, so a child node's key bytes extend
// its parent's and "the subtree under this prefix" is exactly the bytewise
// prefix range — the property the policy tier's page-in scan relies on.
// The fixed-width RNG position comes last so it never breaks that
// extension property, and the full key decodes unambiguously back to
// (answer prefix, position).

// Table tags.
const (
	tableMeta     = 0x01
	tableSessions = 0x02
	tablePolicy   = 0x03
	tableRegistry = 0x04
	tableDeltas   = 0x05
)

// MetaKey is the store-format version record's key.
func MetaKey() []byte { return []byte{tableMeta} }

// FormatVersion is the store's key/value layout version, recorded under
// MetaKey. It is bumped only when the layout changes incompatibly; a store
// written by a newer build is rejected rather than misread.
//
// Version history: 1 = initial layout; 2 = policy node keys gained the
// instance version component and the delta-log table appeared.
const FormatVersion = 2

// EnsureFormat stamps an empty store with the current format version,
// upgrades a store stamped with an older one, and rejects a store stamped
// with a newer one.
//
// Upgrading from version 1 drops the policy and registry tables: both are
// caches (their loss costs recomputation, never data), and version-1 policy
// keys lack the instance-version component so reading them with the
// version-2 parser would misattribute prefix bytes. Session snapshots are
// untouched — their codec did not change.
func EnsureFormat(kv KV) error {
	v, ok, err := kv.Get(MetaKey())
	if err != nil {
		return err
	}
	if !ok {
		return kv.Put(MetaKey(), []byte{FormatVersion})
	}
	if len(v) != 1 || v[0] == 0 || v[0] > FormatVersion {
		return fmt.Errorf("%w: store format version %v not supported (this build reads up to %d)", ErrCorrupt, v, FormatVersion)
	}
	if v[0] == FormatVersion {
		return nil
	}
	for _, table := range [][]byte{{tablePolicy}, {tableRegistry}} {
		var stale [][]byte
		if err := kv.Scan(table, func(key, _ []byte) bool {
			stale = append(stale, append([]byte(nil), key...))
			return true
		}); err != nil {
			return err
		}
		for _, key := range stale {
			if err := kv.Delete(key); err != nil {
				return err
			}
		}
	}
	return kv.Put(MetaKey(), []byte{FormatVersion})
}

// appendEscaped appends s with 0x00 escaped and a terminator, preserving
// bytewise order across component boundaries.
func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, s[i])
		}
	}
	return append(dst, 0x00, 0x01)
}

// readEscaped decodes one escaped component, returning the string and the
// remainder after its terminator.
func readEscaped(b []byte) (string, []byte, error) {
	var out []byte
	for i := 0; i < len(b); i++ {
		if b[i] != 0x00 {
			out = append(out, b[i])
			continue
		}
		if i+1 >= len(b) {
			return "", nil, fmt.Errorf("%w: unterminated key component", ErrCorrupt)
		}
		switch b[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i++
		case 0x01:
			return string(out), b[i+2:], nil
		default:
			return "", nil, fmt.Errorf("%w: bad key escape", ErrCorrupt)
		}
	}
	return "", nil, fmt.Errorf("%w: unterminated key component", ErrCorrupt)
}

// appendInt64 appends v big-endian with the sign bit flipped, so bytewise
// order equals numeric order.
func appendInt64(dst []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(v)^(1<<63))
}

func readInt64(b []byte) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated key int", ErrCorrupt)
	}
	return int64(binary.BigEndian.Uint64(b) ^ (1 << 63)), b[8:], nil
}

// SessionKey addresses one persisted session snapshot.
func SessionKey(id string) []byte {
	return appendEscaped([]byte{tableSessions}, id)
}

// SessionPrefix is the scan prefix covering every persisted session.
func SessionPrefix() []byte { return []byte{tableSessions} }

// SessionID recovers the session id from a session key.
func SessionID(key []byte) (string, error) {
	if len(key) == 0 || key[0] != tableSessions {
		return "", fmt.Errorf("%w: not a session key", ErrCorrupt)
	}
	id, rest, err := readEscaped(key[1:])
	if err != nil {
		return "", err
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("%w: trailing bytes in session key", ErrCorrupt)
	}
	return id, nil
}

// RegistryKey addresses one cached registry entry (instance + T-classes).
func RegistryKey(name string) []byte {
	return appendEscaped([]byte{tableRegistry}, name)
}

// PolicyTreePrefix is the scan prefix covering one decision tree: all
// nodes of (instance, version, strategy, seed). The version sits right
// after the instance, so one scan over the instance component covers every
// version in version order — the shape a version-garbage sweep wants.
func PolicyTreePrefix(instance string, version int64, strategy string, seed int64) []byte {
	k := appendEscaped([]byte{tablePolicy}, instance)
	k = appendInt64(k, version)
	k = appendEscaped(k, strategy)
	return appendInt64(k, seed)
}

// PolicyNodeKey addresses one policy node: the tree, the answer prefix,
// and the RND stream position at fetch time.
func PolicyNodeKey(instance string, version int64, strategy string, seed int64, answerPrefix []byte, rngPos uint64) []byte {
	k := PolicyTreePrefix(instance, version, strategy, seed)
	k = append(k, answerPrefix...)
	return binary.BigEndian.AppendUint64(k, rngPos)
}

// PolicySubtreePrefix is the scan prefix covering a node and its
// descendants: every node whose answer prefix extends answerPrefix. (The
// trailing fixed-width RNG position of each key means the scan may also
// touch sibling variants whose position bytes happen to extend the prefix;
// decoding the full key resolves each record to its true node.)
func PolicySubtreePrefix(instance string, version int64, strategy string, seed int64, answerPrefix []byte) []byte {
	return append(PolicyTreePrefix(instance, version, strategy, seed), answerPrefix...)
}

// SplitPolicyNodeKey recovers (answer prefix, RNG position) from a policy
// node key, given the tree prefix it was built with.
func SplitPolicyNodeKey(treePrefix, key []byte) (answerPrefix []byte, rngPos uint64, err error) {
	if !bytes.HasPrefix(key, treePrefix) {
		return nil, 0, fmt.Errorf("%w: key outside tree", ErrCorrupt)
	}
	rest := key[len(treePrefix):]
	if len(rest) < 8 {
		return nil, 0, fmt.Errorf("%w: truncated policy node key", ErrCorrupt)
	}
	return rest[:len(rest)-8], binary.BigEndian.Uint64(rest[len(rest)-8:]), nil
}

// ParsePolicyTree recovers (instance, version, strategy, seed) plus the
// node remainder from a full policy node key; used by diagnostics and
// tests.
func ParsePolicyTree(key []byte) (instance string, version int64, strategy string, seed int64, rest []byte, err error) {
	if len(key) == 0 || key[0] != tablePolicy {
		return "", 0, "", 0, nil, fmt.Errorf("%w: not a policy key", ErrCorrupt)
	}
	instance, rest, err = readEscaped(key[1:])
	if err != nil {
		return "", 0, "", 0, nil, err
	}
	version, rest, err = readInt64(rest)
	if err != nil {
		return "", 0, "", 0, nil, err
	}
	strategy, rest, err = readEscaped(rest)
	if err != nil {
		return "", 0, "", 0, nil, err
	}
	seed, rest, err = readInt64(rest)
	if err != nil {
		return "", 0, "", 0, nil, err
	}
	return instance, version, strategy, seed, rest, nil
}

// DeltaKey addresses the delta-log record whose application produced the
// given instance version (so the log for an instance starts at version 1).
func DeltaKey(instance string, version int64) []byte {
	return appendInt64(appendEscaped([]byte{tableDeltas}, instance), version)
}

// DeltaLogPrefix is the scan prefix covering an instance's whole delta
// log, in version order.
func DeltaLogPrefix(instance string) []byte {
	return appendEscaped([]byte{tableDeltas}, instance)
}

// ParseDeltaKey recovers (instance, version) from a delta-log key.
func ParseDeltaKey(key []byte) (instance string, version int64, err error) {
	if len(key) == 0 || key[0] != tableDeltas {
		return "", 0, fmt.Errorf("%w: not a delta-log key", ErrCorrupt)
	}
	instance, rest, err := readEscaped(key[1:])
	if err != nil {
		return "", 0, err
	}
	version, rest, err = readInt64(rest)
	if err != nil {
		return "", 0, err
	}
	if len(rest) != 0 {
		return "", 0, fmt.Errorf("%w: trailing bytes in delta-log key", ErrCorrupt)
	}
	return instance, version, nil
}

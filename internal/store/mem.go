package store

import (
	"bytes"
	"sort"
	"sync"
)

// Mem is the in-memory KV backend: a map plus a lazily re-sorted key slice
// for ordered prefix scans. It exists for tests and for running joinserve
// with store semantics but no disk (-store mem); it offers the same
// interface and ordering guarantees as the log backend, minus durability.
type Mem struct {
	cnt counters

	mu     sync.Mutex
	m      map[string][]byte
	keys   []string // sorted when !dirty
	dirty  bool
	closed bool
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{m: make(map[string][]byte)}
}

// Get implements KV.
func (s *Mem) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	s.cnt.gets.Add(1)
	v, ok := s.m[string(key)]
	if !ok {
		s.cnt.getMisses.Add(1)
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Put implements KV.
func (s *Mem) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.cnt.puts.Add(1)
	s.putLocked(key, value)
	return nil
}

func (s *Mem) putLocked(key, value []byte) {
	k := string(key)
	if _, ok := s.m[k]; !ok {
		s.keys = append(s.keys, k)
		s.dirty = true
	}
	s.m[k] = append([]byte(nil), value...)
}

// Delete implements KV.
func (s *Mem) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.cnt.deletes.Add(1)
	s.deleteLocked(key)
	return nil
}

func (s *Mem) deleteLocked(key []byte) {
	k := string(key)
	if _, ok := s.m[k]; ok {
		delete(s.m, k)
		// The stale entry in s.keys is skipped by Scan's map check and
		// dropped on the next re-sort.
		s.dirty = true
	}
}

// Batch implements KV: all operations apply under one lock acquisition.
func (s *Mem) Batch(ops []Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, op := range ops {
		if op.Delete {
			s.cnt.deletes.Add(1)
			s.deleteLocked(op.Key)
		} else {
			s.cnt.puts.Add(1)
			s.putLocked(op.Key, op.Value)
		}
	}
	return nil
}

// Scan implements KV: ascending key order within the prefix.
func (s *Mem) Scan(prefix []byte, fn func(key, value []byte) bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.cnt.scans.Add(1)
	s.resortLocked()
	p := string(prefix)
	from := sort.SearchStrings(s.keys, p)
	// Snapshot the matching range so fn runs without the lock (it may call
	// back into the store).
	type kv struct {
		k string
		v []byte
	}
	var snap []kv
	for _, k := range s.keys[from:] {
		if !bytes.HasPrefix([]byte(k), prefix) {
			break
		}
		if v, ok := s.m[k]; ok {
			snap = append(snap, kv{k, v})
		}
	}
	s.mu.Unlock()
	for _, e := range snap {
		s.cnt.scanned.Add(1)
		if !fn([]byte(e.k), e.v) {
			break
		}
	}
	return nil
}

// resortLocked rebuilds the sorted key slice after mutations, dropping
// deleted keys; amortized O(n log n) per burst of writes.
func (s *Mem) resortLocked() {
	if !s.dirty {
		return
	}
	keys := s.keys[:0]
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.keys = keys
	s.dirty = false
}

// Sync implements KV; the memory backend has nothing to flush.
func (s *Mem) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Stats implements KV.
func (s *Mem) Stats() Stats {
	st := s.cnt.snapshot()
	s.mu.Lock()
	st.Keys = int64(len(s.m))
	for k, v := range s.m {
		st.LiveBytes += int64(len(k) + len(v))
	}
	s.mu.Unlock()
	return st
}

// Close implements KV.
func (s *Mem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

package store

import (
	"fmt"
	"testing"
)

// BenchmarkStore measures the log backend's hot operations (the CI smoke
// runs it at -benchtime=1x to catch wiring rot, not to time it).
func BenchmarkStore(b *testing.B) {
	val := make([]byte, 256)
	for _, backend := range []string{"mem", "log"} {
		open := func(b *testing.B) KV {
			if backend == "mem" {
				return NewMem()
			}
			s, err := OpenLog(b.TempDir(), LogOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { s.Close() })
			return s
		}
		b.Run(backend+"/put", func(b *testing.B) {
			kv := open(b)
			b.SetBytes(int64(len(val)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := kv.Put([]byte(fmt.Sprintf("key%06d", i%10000)), val); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(backend+"/get", func(b *testing.B) {
			kv := open(b)
			for i := 0; i < 1000; i++ {
				if err := kv.Put([]byte(fmt.Sprintf("key%06d", i)), val); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(val)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := kv.Get([]byte(fmt.Sprintf("key%06d", i%1000))); err != nil || !ok {
					b.Fatal(err)
				}
			}
		})
		b.Run(backend+"/scan1000", func(b *testing.B) {
			kv := open(b)
			for i := 0; i < 1000; i++ {
				if err := kv.Put([]byte(fmt.Sprintf("key%06d", i)), val); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				if err := kv.Scan([]byte("key"), func(_, _ []byte) bool { n++; return true }); err != nil {
					b.Fatal(err)
				}
				if n != 1000 {
					b.Fatalf("scanned %d", n)
				}
			}
		})
	}
	b.Run("log/reopen10k", func(b *testing.B) {
		dir := b.TempDir()
		s, err := OpenLog(dir, LogOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			if err := s.Put([]byte(fmt.Sprintf("key%06d", i)), val); err != nil {
				b.Fatal(err)
			}
		}
		s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			re, err := OpenLog(dir, LogOptions{})
			if err != nil {
				b.Fatal(err)
			}
			re.Close()
		}
	})
}

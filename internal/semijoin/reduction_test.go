package semijoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/predicate"
)

// phi0 is the running example of Appendix A.1:
// ϕ0 = (x1 ∨ x2 ∨ ¬x3) ∧ (¬x1 ∨ x3 ∨ x4).
var phi0 = Formula{NumVars: 4, Clauses: []Clause{{1, 2, -3}, {-1, 3, 4}}}

func TestReducePhi0Shape(t *testing.T) {
	r, err := Reduce(phi0)
	if err != nil {
		t.Fatal(err)
	}
	// Rϕ0: 2 clause tuples + X + 4 variable tuples = 7 rows, 5 attributes.
	if r.Instance.R.Len() != 7 {
		t.Errorf("R rows = %d, want 7", r.Instance.R.Len())
	}
	if r.Instance.R.Schema.Arity() != 5 {
		t.Errorf("R arity = %d, want 5", r.Instance.R.Schema.Arity())
	}
	// Pϕ0: 6 literal tuples + Y + 4 variable tuples = 11 rows, 9 attributes.
	if r.Instance.P.Len() != 11 {
		t.Errorf("P rows = %d, want 11", r.Instance.P.Len())
	}
	if r.Instance.P.Schema.Arity() != 9 {
		t.Errorf("P arity = %d, want 9", r.Instance.P.Schema.Arity())
	}
	// Sample: positives are the clause tuples, negatives X and the xi.
	if len(r.Sample.Pos) != 2 || len(r.Sample.Neg) != 5 {
		t.Errorf("sample: +%d −%d, want +2 −5", len(r.Sample.Pos), len(r.Sample.Neg))
	}
	// Pair universe: (n+1)(2n+1) = 5·9 = 45 — does not fit one word for
	// larger n, which is why predicates use a dynamic bitset.
	if r.U.Size() != 45 {
		t.Errorf("universe = %d, want 45", r.U.Size())
	}
}

func TestReducePhi0Consistent(t *testing.T) {
	r, err := Reduce(phi0)
	if err != nil {
		t.Fatal(err)
	}
	theta, ok, err := Consistent(r.Instance, r.Sample)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ϕ0 is satisfiable but reduction reported inconsistent")
	}
	// Decode a valuation and check it satisfies ϕ0.
	assign := r.DecodeValuation(theta)
	if !phi0.Satisfies(assign) {
		t.Errorf("decoded valuation %v does not satisfy ϕ0", assign[1:])
	}
}

func TestReduceUnsatisfiable(t *testing.T) {
	// (x1) ∧ (¬x1): trivially unsatisfiable.
	f := Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	r, err := Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := Consistent(r.Instance, r.Sample)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unsatisfiable formula reported consistent")
	}
}

func TestEncodeValuation(t *testing.T) {
	r, err := Reduce(phi0)
	if err != nil {
		t.Fatal(err)
	}
	// V = {x1=T, x2=F, x3=T, x4=F} satisfies ϕ0 (clause 1 by x1, clause 2
	// by x3).
	assign := []bool{false, true, false, true, false}
	if !phi0.Satisfies(assign) {
		t.Fatal("test valuation should satisfy ϕ0")
	}
	theta, err := r.EncodeValuation(assign)
	if err != nil {
		t.Fatal(err)
	}
	if theta.Size() != 5 { // (idR,idP) + one pair per variable
		t.Errorf("encoded predicate size = %d, want 5", theta.Size())
	}
	// The encoded predicate must be consistent with the sample.
	sel := make(map[int]bool)
	for _, ri := range predicate.Semijoin(r.Instance, r.U, theta) {
		sel[ri] = true
	}
	for _, i := range r.Sample.Pos {
		if !sel[i] {
			t.Errorf("encoded predicate misses positive %d", i)
		}
	}
	for _, j := range r.Sample.Neg {
		if sel[j] {
			t.Errorf("encoded predicate selects negative %d", j)
		}
	}
	// Round trip.
	back := r.DecodeValuation(theta)
	for v := 1; v <= 4; v++ {
		if back[v] != assign[v] {
			t.Errorf("decode(encode) flips x%d", v)
		}
	}

	if _, err := r.EncodeValuation([]bool{true}); err == nil {
		t.Error("short assignment accepted")
	}
}

func TestReduceErrors(t *testing.T) {
	if _, err := Reduce(Formula{NumVars: 0}); err == nil {
		t.Error("0-variable formula accepted")
	}
	if _, err := Reduce(Formula{NumVars: 1, Clauses: []Clause{{}}}); err == nil {
		t.Error("invalid formula accepted")
	}
}

// TestQuickReductionIffSAT is the heart of Theorem 6.1: on random 3CNF
// formulas, the reduced CONS⋉ instance is consistent iff DPLL finds the
// formula satisfiable; and in the satisfiable case both directions of the
// proof are exercised (encode a model → consistent predicate; decode the
// solver's predicate → model).
func TestQuickReductionIffSAT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fm := randFormula(r, 4, 6)
		red, err := Reduce(fm)
		if err != nil {
			return false
		}
		theta, consistent, err := Consistent(red.Instance, red.Sample)
		if err != nil {
			return false
		}
		assign, sat := fm.Solve()
		if consistent != sat {
			return false
		}
		if sat {
			// Encode direction.
			enc, err := red.EncodeValuation(assign)
			if err != nil {
				return false
			}
			sel := make(map[int]bool)
			for _, ri := range predicate.Semijoin(red.Instance, red.U, enc) {
				sel[ri] = true
			}
			for _, i := range red.Sample.Pos {
				if !sel[i] {
					return false
				}
			}
			for _, j := range red.Sample.Neg {
				if sel[j] {
					return false
				}
			}
			// Decode direction.
			if !fm.Satisfies(red.DecodeValuation(theta)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

package semijoin

import (
	"fmt"
	"sort"

	"repro/internal/predicate"
	"repro/internal/relation"
)

// Solver amortizes repeated CONS⋉ decisions over one instance — the shape
// of the interactive scenario, where every informativeness test costs two
// Consistent calls and a session issues thousands of them against the same
// R and P. The per-row witness sets {T(R[i], t') | t' ∈ P} (deduplicated,
// ⊆-maximal) depend only on the instance, so the solver computes each row's
// set once and caches it; the backtracking search itself runs on scratch —
// per-depth intersection buffers instead of a fresh predicate per branch,
// and memo keys built in a reusable byte buffer — so a decision allocates
// only its memo table. Results are exactly those of the package-level
// Consistent/Informative (solver_test.go checks differentially); the
// worst case stays exponential, as Theorem 6.1 demands.
//
// A Solver is not safe for concurrent use.
type Solver struct {
	inst *relation.Instance
	u    *predicate.Universe

	// omega is Ω, the root of every backtracking search.
	omega predicate.Pred
	// wits caches each row's witness set; witsOK marks filled entries
	// (an empty P yields legitimately empty sets).
	wits   [][]predicate.Pred
	witsOK []bool

	// Scratch: seen backs validation, posBuf/negBuf the hypothetical
	// samples of Informative, posWs/negWs the per-call witness tables,
	// levels the per-depth intersection buffers, keyBuf the memo keys.
	seen   []bool
	posBuf []int
	negBuf []int
	posWs  [][]predicate.Pred
	negWs  [][]predicate.Pred
	levels []predicate.Pred
	keyBuf []byte
}

// NewSolver returns a solver for the instance.
func NewSolver(inst *relation.Instance) *Solver {
	u := predicate.NewUniverse(inst)
	return &Solver{
		inst:   inst,
		u:      u,
		omega:  predicate.Omega(u),
		wits:   make([][]predicate.Pred, inst.R.Len()),
		witsOK: make([]bool, inst.R.Len()),
		seen:   make([]bool, inst.R.Len()),
	}
}

// Witnesses returns row ri's deduplicated ⊆-maximal witness predicates,
// computing them on first use. The slice is cached; callers must not
// mutate it.
func (sv *Solver) Witnesses(ri int) []predicate.Pred {
	if !sv.witsOK[ri] {
		sv.wits[ri] = witnesses(sv.inst, sv.u, ri)
		sv.witsOK[ri] = true
	}
	return sv.wits[ri]
}

// Consistent decides CONS⋉ for the sample, returning a witness predicate
// on success; identical results to the package-level Consistent.
func (sv *Solver) Consistent(s Sample) (predicate.Pred, bool, error) {
	theta, ok, err := sv.solve(s)
	if ok {
		theta = theta.Clone() // the search result aliases a scratch buffer
	}
	return theta, ok, err
}

// Informative reports whether both labels for row ri admit a consistent
// predicate extending the sample (two CONS⋉ decisions); identical results
// to the package-level Informative.
func (sv *Solver) Informative(s Sample, ri int) (bool, error) {
	sv.posBuf = append(append(sv.posBuf[:0], s.Pos...), ri)
	_, okPos, err := sv.solve(Sample{Pos: sv.posBuf, Neg: s.Neg})
	if err != nil {
		return false, err
	}
	if !okPos {
		return false, nil
	}
	sv.negBuf = append(append(sv.negBuf[:0], s.Neg...), ri)
	_, okNeg, err := sv.solve(Sample{Pos: s.Pos, Neg: sv.negBuf})
	return okNeg, err
}

// validate is Sample.Validate on the solver's scratch.
func (sv *Solver) validate(s Sample) error {
	defer func() {
		for _, i := range s.Pos {
			if i >= 0 && i < len(sv.seen) {
				sv.seen[i] = false
			}
		}
		for _, i := range s.Neg {
			if i >= 0 && i < len(sv.seen) {
				sv.seen[i] = false
			}
		}
	}()
	check := func(idxs []int) error {
		for _, i := range idxs {
			if i < 0 || i >= sv.inst.R.Len() {
				return fmt.Errorf("semijoin: example index %d out of range [0,%d)", i, sv.inst.R.Len())
			}
			if sv.seen[i] {
				return fmt.Errorf("semijoin: tuple %d labeled twice", i)
			}
			sv.seen[i] = true
		}
		return nil
	}
	if err := check(s.Pos); err != nil {
		return err
	}
	return check(s.Neg)
}

// stateKey encodes (depth, theta) into the reusable key buffer.
func (sv *Solver) stateKey(k int, theta predicate.Pred) []byte {
	sv.keyBuf = append(sv.keyBuf[:0], byte(k), byte(k>>8), byte(k>>16), byte(k>>24))
	sv.keyBuf = theta.Set.AppendKey(sv.keyBuf)
	return sv.keyBuf
}

// solve runs the backtracking witness assignment of Consistent on scratch
// storage. The returned predicate aliases a scratch buffer (or Ω) and is
// only valid until the next solver call.
func (sv *Solver) solve(s Sample) (predicate.Pred, bool, error) {
	if err := sv.validate(s); err != nil {
		return predicate.Pred{}, false, err
	}
	negWs := sv.negWs[:0]
	for _, j := range s.Neg {
		negWs = append(negWs, sv.Witnesses(j))
	}
	sv.negWs = negWs

	posWs := sv.posWs[:0]
	for _, i := range s.Pos {
		ws := sv.Witnesses(i)
		if len(ws) == 0 {
			// P is empty: no θ can select a positive example.
			sv.posWs = posWs
			return predicate.Pred{}, false, nil
		}
		posWs = append(posWs, ws)
	}
	sv.posWs = posWs
	// Branch on the positives with the fewest witnesses first (same order
	// as the package-level search).
	sort.SliceStable(posWs, func(a, b int) bool { return len(posWs[a]) < len(posWs[b]) })

	for len(sv.levels) < len(posWs) {
		sv.levels = append(sv.levels, predicate.Pred{})
	}

	// Memoize failed (depth, θ) states: the sub-search depends only on
	// those. The table is per-call (correctness), the keys come from the
	// shared buffer.
	failed := make(map[string]bool)

	var rec func(k int, theta predicate.Pred) (predicate.Pred, bool)
	rec = func(k int, theta predicate.Pred) (predicate.Pred, bool) {
		for _, ws := range sv.negWs {
			if selects(theta, ws) {
				return predicate.Pred{}, false
			}
		}
		if k == len(posWs) {
			return theta, true
		}
		if failed[string(sv.stateKey(k, theta))] {
			return predicate.Pred{}, false
		}
		for _, w := range posWs[k] {
			predicate.IntersectInto(&sv.levels[k], theta, w)
			if got, ok := rec(k+1, sv.levels[k]); ok {
				return got, true
			}
		}
		failed[string(sv.stateKey(k, theta))] = true
		return predicate.Pred{}, false
	}

	theta, ok := rec(0, sv.omega)
	return theta, ok, nil
}

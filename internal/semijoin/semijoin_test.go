package semijoin

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/relation"
)

// TestSemijoinSampleSection6 replays the Section 6 example: on Example 2.1,
// S'+ = {t1, t2}, S'− = {t3}; the predicate θ' = {(A1,B2)} is consistent.
func TestSemijoinSampleSection6(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	s := Sample{Pos: []int{0, 1}, Neg: []int{2}}

	// Consistency of θ' = {(A1,B2)}: it selects both positives and not the
	// negative (it also selects the unlabeled t4, which is fine).
	thetaP := predicate.MustFromNames(u, [2]string{"A1", "B2"})
	semi := predicate.Semijoin(inst, u, thetaP)
	sel0 := make(map[int]bool)
	for _, ri := range semi {
		sel0[ri] = true
	}
	if !sel0[0] || !sel0[1] || sel0[2] {
		t.Fatalf("R ⋉θ' P = %v; θ' should select t1,t2 and not t3", semi)
	}

	got, ok, err := Consistent(inst, s)
	if err != nil || !ok {
		t.Fatalf("Consistent = %v, %v, %v; want consistent", got, ok, err)
	}
	// Verify the returned predicate really is consistent.
	sel := make(map[int]bool)
	for _, ri := range predicate.Semijoin(inst, u, got) {
		sel[ri] = true
	}
	if !sel[0] || !sel[1] || sel[2] {
		t.Errorf("returned predicate %v selects %v", got.Format(u), sel)
	}
}

func TestValidate(t *testing.T) {
	inst := paperdata.Example21()
	if err := (Sample{Pos: []int{0}, Neg: []int{99}}).Validate(inst); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := (Sample{Pos: []int{0}, Neg: []int{0}}).Validate(inst); err == nil {
		t.Error("double-labeled tuple accepted")
	}
	if err := (Sample{Pos: []int{-1}}).Validate(inst); err == nil {
		t.Error("negative index accepted")
	}
	if _, _, err := Consistent(inst, Sample{Pos: []int{99}}); err == nil {
		t.Error("Consistent accepted invalid sample")
	}
	if _, _, err := BruteForce(inst, Sample{Pos: []int{99}}); err == nil {
		t.Error("BruteForce accepted invalid sample")
	}
}

func TestEmptySampleConsistent(t *testing.T) {
	inst := paperdata.Example21()
	_, ok, err := Consistent(inst, Sample{})
	if err != nil || !ok {
		t.Errorf("empty sample should be consistent (err=%v)", err)
	}
}

func TestOnlyNegatives(t *testing.T) {
	inst := paperdata.Example21()
	// Ω selects nothing on Example 2.1, so all-negative samples are
	// consistent.
	theta, ok, err := Consistent(inst, Sample{Neg: []int{0, 1, 2, 3}})
	if err != nil || !ok {
		t.Fatalf("all-negative sample should be consistent (err=%v)", err)
	}
	u := predicate.NewUniverse(inst)
	if got := predicate.Semijoin(inst, u, theta); len(got) != 0 {
		t.Errorf("returned predicate selects %v", got)
	}
}

func TestInconsistentSample(t *testing.T) {
	// R with two identical tuples, one positive one negative: any θ treats
	// them identically → inconsistent.
	R := relation.NewRelation(relation.MustSchema("R", "A1"))
	R.MustAddTuple("1")
	R.MustAddTuple("1")
	P := relation.NewRelation(relation.MustSchema("P", "B1"))
	P.MustAddTuple("1")
	inst := relation.MustInstance(R, P)
	_, ok, err := Consistent(inst, Sample{Pos: []int{0}, Neg: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("identical tuples with opposite labels reported consistent")
	}
}

func TestPositiveWithEmptyP(t *testing.T) {
	R := relation.NewRelation(relation.MustSchema("R", "A1"))
	R.MustAddTuple("1")
	P := relation.NewRelation(relation.MustSchema("P", "B1"))
	inst := relation.MustInstance(R, P)
	_, ok, err := Consistent(inst, Sample{Pos: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("positive example with empty P reported consistent")
	}
}

func TestEval(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	theta := predicate.MustFromNames(u, [2]string{"A2", "B2"})
	got := Eval(inst, theta)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("Eval = %v, want [0 3]", got)
	}
}

func randInstance(r *rand.Rand) *relation.Instance {
	n := 1 + r.Intn(2)
	m := 1 + r.Intn(3)
	vals := 1 + r.Intn(3)
	ra := make([]string, n)
	for i := range ra {
		ra[i] = "A" + strconv.Itoa(i+1)
	}
	pa := make([]string, m)
	for i := range pa {
		pa[i] = "B" + strconv.Itoa(i+1)
	}
	R := relation.NewRelation(relation.MustSchema("R", ra...))
	P := relation.NewRelation(relation.MustSchema("P", pa...))
	for i := 0; i < 2+r.Intn(4); i++ {
		tr := make(relation.Tuple, n)
		for k := range tr {
			tr[k] = strconv.Itoa(r.Intn(vals))
		}
		R.Tuples = append(R.Tuples, tr)
	}
	for i := 0; i < 1+r.Intn(4); i++ {
		tp := make(relation.Tuple, m)
		for k := range tp {
			tp[k] = strconv.Itoa(r.Intn(vals))
		}
		P.Tuples = append(P.Tuples, tp)
	}
	return relation.MustInstance(R, P)
}

// TestQuickConsistentMatchesBruteForce: the witness-assignment search and
// the definitional enumeration agree on random instances and samples.
func TestQuickConsistentMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		var s Sample
		for i := 0; i < inst.R.Len(); i++ {
			switch r.Intn(3) {
			case 0:
				s.Pos = append(s.Pos, i)
			case 1:
				s.Neg = append(s.Neg, i)
			}
		}
		gotTheta, got, err := Consistent(inst, s)
		if err != nil {
			return false
		}
		_, want, err := BruteForce(inst, s)
		if err != nil {
			return false
		}
		if got != want {
			return false
		}
		if got {
			// Verify the witness predicate by direct evaluation.
			u := predicate.NewUniverse(inst)
			sel := make(map[int]bool)
			for _, ri := range predicate.Semijoin(inst, u, gotTheta) {
				sel[ri] = true
			}
			for _, i := range s.Pos {
				if !sel[i] {
					return false
				}
			}
			for _, j := range s.Neg {
				if sel[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

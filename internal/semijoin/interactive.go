package semijoin

import (
	"fmt"

	"repro/internal/predicate"
	"repro/internal/relation"
)

// This file implements the interactive inference of semijoins that the
// paper leaves as future work ("we would like to design heuristics for the
// interactive inference of semijoins", Section 7).
//
// The equijoin machinery does not transfer: deciding whether a tuple is
// uninformative is itself intractable (it embeds CONS⋉, Theorem 6.1). The
// heuristic here pays that price explicitly — informativeness of an R tuple
// is decided with two calls to the exponential-worst-case Consistent solver
// — which is practical for the moderate R sizes where a human labels tuples
// one by one.

// LabelOracle answers semijoin membership queries: does R's i-th tuple
// belong to R ⋉θG P for the user's goal θG?
type LabelOracle interface {
	KeepsTuple(ri int) bool
}

// GoalOracle is an honest LabelOracle for a known goal predicate.
type GoalOracle struct {
	Inst *relation.Instance
	U    *predicate.Universe
	Goal predicate.Pred
}

// KeepsTuple implements LabelOracle by evaluating the goal semijoin.
func (g *GoalOracle) KeepsTuple(ri int) bool {
	tR := g.Inst.R.Tuples[ri]
	ok := false
	for _, tP := range g.Inst.P.Tuples {
		if g.Goal.Selects(g.U, tR, tP) {
			ok = true
			break
		}
	}
	return ok
}

// InteractiveResult reports an interactive semijoin inference run.
type InteractiveResult struct {
	// Predicate is a semijoin predicate consistent with all answers.
	Predicate predicate.Pred
	// Interactions is the number of tuples the user labeled.
	Interactions int
	// Determined reports whether every unlabeled tuple's membership became
	// certain (no informative tuple remained).
	Determined bool
}

// InferInteractive runs the interactive scenario for semijoins: repeatedly
// pick an *informative* R tuple — one for which a consistent predicate
// keeping it and a consistent predicate dropping it both exist — ask the
// oracle, and stop when no informative tuple remains or the budget is
// exhausted (budget ≤ 0 means unlimited).
//
// Each informativeness test costs two CONS⋉ decisions, so the loop is
// worst-case exponential in the number of positive examples — exactly the
// intractability Section 6 proves unavoidable.
func InferInteractive(inst *relation.Instance, orc LabelOracle, budget int) (InteractiveResult, error) {
	var res InteractiveResult
	var s Sample
	labeled := make([]bool, inst.R.Len())
	// One solver for the whole loop: row witness sets are computed once and
	// every Informative/Consistent decision after the first reuses them.
	sv := NewSolver(inst)

	for {
		if budget > 0 && res.Interactions >= budget {
			theta, ok, err := sv.Consistent(s)
			if err != nil {
				return res, err
			}
			if !ok {
				return res, fmt.Errorf("semijoin: answers became inconsistent")
			}
			res.Predicate = theta
			return res, nil
		}
		// Find an informative unlabeled tuple.
		informative := -1
		for ri := 0; ri < inst.R.Len() && informative < 0; ri++ {
			if labeled[ri] {
				continue
			}
			ok, err := sv.Informative(s, ri)
			if err != nil {
				return res, err
			}
			if ok {
				informative = ri
			}
		}
		if informative < 0 {
			break
		}
		labeled[informative] = true
		if orc.KeepsTuple(informative) {
			s.Pos = append(s.Pos, informative)
		} else {
			s.Neg = append(s.Neg, informative)
		}
		res.Interactions++
	}

	theta, ok, err := sv.Consistent(s)
	if err != nil {
		return res, err
	}
	if !ok {
		return res, fmt.Errorf("semijoin: answers became inconsistent")
	}
	res.Predicate = theta
	res.Determined = true
	return res, nil
}

// Informative reports whether both labels for tuple ri admit a consistent
// predicate extending the sample (two CONS⋉ calls) — i.e. whether asking
// the user about ri would narrow the candidate space.
func Informative(inst *relation.Instance, s Sample, ri int) (bool, error) {
	asPos := Sample{Pos: append(append([]int(nil), s.Pos...), ri), Neg: s.Neg}
	_, okPos, err := Consistent(inst, asPos)
	if err != nil {
		return false, err
	}
	if !okPos {
		return false, nil
	}
	asNeg := Sample{Pos: s.Pos, Neg: append(append([]int(nil), s.Neg...), ri)}
	_, okNeg, err := Consistent(inst, asNeg)
	if err != nil {
		return false, err
	}
	return okNeg, nil
}

package semijoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/paperdata"
	"repro/internal/predicate"
)

func TestInferInteractiveExample21(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	goal := predicate.MustFromNames(u, [2]string{"A1", "B2"})
	orc := &GoalOracle{Inst: inst, U: u, Goal: goal}

	res, err := InferInteractive(inst, orc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Determined {
		t.Error("run should determine all tuples")
	}
	if res.Interactions < 1 || res.Interactions > inst.R.Len() {
		t.Errorf("interactions = %d", res.Interactions)
	}
	// The inferred predicate must produce the same semijoin as the goal.
	want := predicate.Semijoin(inst, u, goal)
	got := predicate.Semijoin(inst, u, res.Predicate)
	if len(want) != len(got) {
		t.Fatalf("semijoin mismatch: got %v want %v", got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("semijoin mismatch: got %v want %v", got, want)
		}
	}
}

func TestInferInteractiveBudget(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	goal := predicate.MustFromNames(u, [2]string{"A1", "B1"})
	orc := &GoalOracle{Inst: inst, U: u, Goal: goal}

	res, err := InferInteractive(inst, orc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interactions != 1 {
		t.Errorf("interactions = %d, want 1 (budget)", res.Interactions)
	}
	// With one answer the result may be undetermined but must be a valid
	// predicate consistent with the single answer.
	if res.Determined && res.Interactions == 1 {
		t.Log("instance determined after one answer — acceptable")
	}
}

func TestGoalOracle(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	// θ1 = {(A1,B1),(A2,B3)} keeps t2, t4 (Example 2.1).
	goal := predicate.FromPairs(u, [2]int{0, 0}, [2]int{1, 2})
	orc := &GoalOracle{Inst: inst, U: u, Goal: goal}
	want := map[int]bool{1: true, 3: true}
	for ri := 0; ri < inst.R.Len(); ri++ {
		if orc.KeepsTuple(ri) != want[ri] {
			t.Errorf("KeepsTuple(%d) = %v", ri, orc.KeepsTuple(ri))
		}
	}
}

// TestQuickInteractiveMatchesGoal: on random instances and goals, the
// interactive heuristic always terminates and returns a predicate whose
// semijoin equals the goal's on the instance.
func TestQuickInteractiveMatchesGoal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		u := predicate.NewUniverse(inst)
		var goal predicate.Pred
		for id := 0; id < u.Size(); id++ {
			if r.Intn(3) == 0 {
				goal.Set.Add(id)
			}
		}
		orc := &GoalOracle{Inst: inst, U: u, Goal: goal}
		res, err := InferInteractive(inst, orc, 0)
		if err != nil {
			return false
		}
		if !res.Determined {
			return false
		}
		want := predicate.Semijoin(inst, u, goal)
		got := predicate.Semijoin(inst, u, res.Predicate)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return res.Interactions <= inst.R.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package semijoin

import (
	"fmt"
	"strconv"

	"repro/internal/predicate"
	"repro/internal/relation"
)

// bottom is the non-matching filler value ⊥ of the reduction. It never
// equals any R-side value (R uses clause/variable ids and the integers
// 1…n), so it can never contribute an attribute pair to any T(t).
const bottom = "⊥"

// Reduction is the CONS⋉ instance produced from a 3CNF formula by the
// construction of Appendix A.1 (Theorem 6.1): ϕ is satisfiable iff
// (Rϕ, Pϕ, Sϕ) ∈ CONS⋉.
type Reduction struct {
	Formula  Formula
	Instance *relation.Instance
	Sample   Sample
	// U is the pair universe of the instance, with (n+1)·(2n+1) pairs.
	U *predicate.Universe
}

// Reduce builds the reduction instance for a 3CNF formula. Clauses may have
// 1–3 literals (the hardness proof needs exactly 3, but the construction
// generalizes verbatim: one Pϕ tuple per literal occurrence).
func Reduce(f Formula) (*Reduction, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if f.NumVars < 1 {
		return nil, fmt.Errorf("semijoin: reduction needs at least one variable")
	}
	n := f.NumVars
	itoa := strconv.Itoa

	// Rϕ: attrs {idR, A1…An}. All tuples carry Aj = j; they differ only in
	// idR. Positives: one per clause (idR = "c<i>+"). Negatives: the X
	// tuple (forces (idR,idP) ∈ θ) and one per variable (forces a truth
	// choice for that variable).
	rAttrs := make([]string, 0, n+1)
	rAttrs = append(rAttrs, "idR")
	for j := 1; j <= n; j++ {
		rAttrs = append(rAttrs, "A"+itoa(j))
	}
	R := relation.NewRelation(relation.MustSchema("Rphi", rAttrs...))
	baseRow := func(id string) relation.Tuple {
		t := make(relation.Tuple, n+1)
		t[0] = id
		for j := 1; j <= n; j++ {
			t[j] = itoa(j)
		}
		return t
	}
	var s Sample
	for i := range f.Clauses {
		R.Tuples = append(R.Tuples, baseRow("c"+itoa(i+1)+"+"))
		s.Pos = append(s.Pos, len(R.Tuples)-1)
	}
	R.Tuples = append(R.Tuples, baseRow("X"))
	s.Neg = append(s.Neg, len(R.Tuples)-1)
	for i := 1; i <= n; i++ {
		R.Tuples = append(R.Tuples, baseRow("x"+itoa(i)+"-"))
		s.Neg = append(s.Neg, len(R.Tuples)-1)
	}

	// Pϕ: attrs {idP, Bt1, Bf1, …, Btn, Bfn}.
	pAttrs := make([]string, 0, 2*n+1)
	pAttrs = append(pAttrs, "idP")
	for j := 1; j <= n; j++ {
		pAttrs = append(pAttrs, "Bt"+itoa(j), "Bf"+itoa(j))
	}
	P := relation.NewRelation(relation.MustSchema("Pphi", pAttrs...))

	// One witness tuple per literal occurrence: for clause i and literal l
	// on variable k, the tuple matches Bv_k only for the truth value v that
	// satisfies l, and both values elsewhere.
	for i, c := range f.Clauses {
		for _, lit := range c {
			t := make(relation.Tuple, 2*n+1)
			t[0] = "c" + itoa(i+1) + "+"
			for j := 1; j <= n; j++ {
				bt, bf := itoa(j), itoa(j)
				if j == lit.Var() {
					if lit.Positive() {
						bf = bottom // only the "true" choice keeps this witness
					} else {
						bt = bottom // only the "false" choice keeps this witness
					}
				}
				t[2*j-1], t[2*j] = bt, bf
			}
			P.Tuples = append(P.Tuples, t)
		}
	}
	// t'P,0: idP = Y, both columns carry the value — would select the X
	// negative if (idR,idP) were missing from θ.
	{
		t := make(relation.Tuple, 2*n+1)
		t[0] = "Y"
		for j := 1; j <= n; j++ {
			t[2*j-1], t[2*j] = itoa(j), itoa(j)
		}
		P.Tuples = append(P.Tuples, t)
	}
	// t'P,i: idP = "xi-", both columns blank at variable i — would select
	// the i-th negative if θ constrained neither Bt_i nor Bf_i.
	for i := 1; i <= n; i++ {
		t := make(relation.Tuple, 2*n+1)
		t[0] = "x" + itoa(i) + "-"
		for j := 1; j <= n; j++ {
			if i == j {
				t[2*j-1], t[2*j] = bottom, bottom
			} else {
				t[2*j-1], t[2*j] = itoa(j), itoa(j)
			}
		}
		P.Tuples = append(P.Tuples, t)
	}

	inst := relation.MustInstance(R, P)
	return &Reduction{
		Formula:  f,
		Instance: inst,
		Sample:   s,
		U:        predicate.NewUniverse(inst),
	}, nil
}

// EncodeValuation builds the consistent predicate corresponding to a
// satisfying valuation (the "only if" direction of the proof):
// {(idR,idP)} ∪ {(Ai, Bt_i) if V(x_i) else (Ai, Bf_i)}.
func (r *Reduction) EncodeValuation(assign []bool) (predicate.Pred, error) {
	n := r.Formula.NumVars
	if len(assign) < n+1 {
		return predicate.Pred{}, fmt.Errorf("semijoin: assignment too short: %d < %d", len(assign), n+1)
	}
	pairs := [][2]string{{"idR", "idP"}}
	for i := 1; i <= n; i++ {
		col := "Bf" + strconv.Itoa(i)
		if assign[i] {
			col = "Bt" + strconv.Itoa(i)
		}
		pairs = append(pairs, [2]string{"A" + strconv.Itoa(i), col})
	}
	return predicate.FromNames(r.U, pairs...)
}

// DecodeValuation extracts a valuation from a consistent predicate (the
// "if" direction): V(x_i) = true iff (Ai, Bt_i) ∈ θ; if θ contains both
// columns for a variable the positive choice is preferred (possible only
// for variables unconstrained by the clauses).
func (r *Reduction) DecodeValuation(theta predicate.Pred) []bool {
	n := r.Formula.NumVars
	assign := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		ai := r.U.RSchema.IndexOf("A" + strconv.Itoa(i))
		bt := r.U.PSchema.IndexOf("Bt" + strconv.Itoa(i))
		assign[i] = theta.Set.Contains(r.U.PairID(ai, bt))
	}
	return assign
}

package semijoin

import (
	"fmt"
	"testing"
)

// chainFormula builds a satisfiable chain 3CNF over n variables.
func chainFormula(n int) Formula {
	f := Formula{NumVars: n}
	for i := 1; i+2 <= n; i++ {
		f.Clauses = append(f.Clauses,
			Clause{Literal(i), Literal(-(i + 1)), Literal(i + 2)},
			Clause{Literal(-i), Literal(i + 1), Literal(-(i + 2))},
		)
	}
	if len(f.Clauses) == 0 {
		f.Clauses = append(f.Clauses, Clause{1})
	}
	return f
}

func BenchmarkConsistentReduction(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		red, err := Reduce(chainFormula(n))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("vars%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Consistent(red.Instance, red.Sample); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDPLL(b *testing.B) {
	f := chainFormula(20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := f.Solve(); !ok {
			b.Fatal("chain formula should be satisfiable")
		}
	}
}

func BenchmarkReduce(b *testing.B) {
	f := chainFormula(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Reduce(f); err != nil {
			b.Fatal(err)
		}
	}
}

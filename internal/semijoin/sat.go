package semijoin

import "fmt"

// Literal is a propositional literal: +v for x_v, −v for ¬x_v (v ≥ 1).
type Literal int

// Var returns the literal's variable index.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is unnegated.
func (l Literal) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula over variables 1…NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks literals are non-zero and within range.
func (f Formula) Validate() error {
	for ci, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("semijoin: clause %d is empty", ci)
		}
		for _, l := range c {
			if l == 0 {
				return fmt.Errorf("semijoin: clause %d has zero literal", ci)
			}
			if l.Var() > f.NumVars {
				return fmt.Errorf("semijoin: clause %d uses variable %d > NumVars %d", ci, l.Var(), f.NumVars)
			}
		}
	}
	return nil
}

// Satisfies reports whether the assignment (1-indexed; index 0 unused)
// makes every clause true.
func (f Formula) Satisfies(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assign[l.Var()] == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Solve decides satisfiability with DPLL (unit propagation + pure-literal
// elimination + splitting). On success it returns a satisfying assignment,
// 1-indexed. It is the independent cross-check for the CONS⋉ reduction.
func (f Formula) Solve() ([]bool, bool) {
	if err := f.Validate(); err != nil {
		return nil, false
	}
	assign := make([]int8, f.NumVars+1) // 0 unset, 1 true, −1 false
	if !dpll(f.Clauses, assign) {
		return nil, false
	}
	out := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = assign[v] == 1 // unset variables default to false
	}
	return out, true
}

// dpll runs the classic recursive procedure on the clause set under the
// current partial assignment, mutating and restoring assign.
func dpll(clauses []Clause, assign []int8) bool {
	// Unit propagation to fixpoint.
	var trail []int
	undo := func() {
		for _, v := range trail {
			assign[v] = 0
		}
	}
	for {
		unit := Literal(0)
		allSat := true
		for _, c := range clauses {
			sat := false
			unassigned := 0
			var last Literal
			for _, l := range c {
				switch {
				case assign[l.Var()] == 0:
					unassigned++
					last = l
				case (assign[l.Var()] == 1) == l.Positive():
					sat = true
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			allSat = false
			if unassigned == 0 {
				undo()
				return false // conflict
			}
			if unassigned == 1 {
				unit = last
				break
			}
		}
		if allSat {
			return true
		}
		if unit == 0 {
			break
		}
		v := unit.Var()
		if unit.Positive() {
			assign[v] = 1
		} else {
			assign[v] = -1
		}
		trail = append(trail, v)
	}

	// Split on the first unassigned variable occurring in an unsatisfied
	// clause.
	branch := 0
	for _, c := range clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var()] != 0 && (assign[l.Var()] == 1) == l.Positive() {
				sat = true
				break
			}
		}
		if sat {
			continue
		}
		for _, l := range c {
			if assign[l.Var()] == 0 {
				branch = l.Var()
				break
			}
		}
		if branch != 0 {
			break
		}
	}
	if branch == 0 {
		// No unsatisfied clause had unassigned literals and we did not
		// detect a conflict: everything satisfied.
		return true
	}
	for _, val := range []int8{1, -1} {
		assign[branch] = val
		if dpll(clauses, assign) {
			return true
		}
	}
	assign[branch] = 0
	undo()
	return false
}

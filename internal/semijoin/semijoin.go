// Package semijoin implements inference-related reasoning for semijoin
// predicates R ⋉θ P (Section 6). An example here is a tuple of R alone
// (projection hides the P side), which changes the complexity landscape
// completely: consistency checking — trivially PTIME for equijoins — is
// NP-complete for semijoins (Theorem 6.1).
//
// The package provides:
//
//   - Consistent: a complete decision procedure (with predicate witness)
//     based on backtracking over witness assignments for the positive
//     examples; worst-case exponential, as the theorem predicts.
//   - BruteForce: the definition, enumerating all θ ⊆ Ω; test oracle.
//   - The 3SAT → CONS⋉ reduction of Appendix A.1 (reduction.go) and a DPLL
//     SAT solver (sat.go) to cross-validate it.
package semijoin

import (
	"fmt"
	"sort"

	"repro/internal/predicate"
	"repro/internal/relation"
)

// Sample is a set of semijoin examples: indexes into R.Tuples labeled
// positive (must appear in R ⋉θ P) or negative (must not).
type Sample struct {
	Pos []int
	Neg []int
}

// Validate checks all indexes are in range and no tuple is labeled twice.
func (s Sample) Validate(inst *relation.Instance) error {
	seen := make(map[int]bool)
	for _, i := range append(append([]int(nil), s.Pos...), s.Neg...) {
		if i < 0 || i >= inst.R.Len() {
			return fmt.Errorf("semijoin: example index %d out of range [0,%d)", i, inst.R.Len())
		}
		if seen[i] {
			return fmt.Errorf("semijoin: tuple %d labeled twice", i)
		}
		seen[i] = true
	}
	return nil
}

// witnesses returns the deduplicated most specific predicates
// {T(R[i], t') | t' ∈ P}: the possible "reasons" tuple i is in the
// semijoin. θ selects R[i] iff θ ⊆ w for some witness w.
func witnesses(inst *relation.Instance, u *predicate.Universe, i int) []predicate.Pred {
	seen := make(map[string]bool)
	var out []predicate.Pred
	for pi, tP := range inst.P.Tuples {
		if !inst.PAlive(pi) {
			continue
		}
		w := predicate.T(u, inst.R.Tuples[i], tP)
		k := w.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, w)
		}
	}
	// Keep only ⊆-maximal witnesses: if w ⊆ w', any θ ⊆ w is also ⊆ w'.
	var maxed []predicate.Pred
	for a, w := range out {
		dominated := false
		for b, w2 := range out {
			if a != b && (w.Set.ProperSubsetOf(w2.Set) || (w.Equal(w2) && a > b)) {
				dominated = true
				break
			}
		}
		if !dominated {
			maxed = append(maxed, w)
		}
	}
	return maxed
}

// selects reports whether θ selects the tuple with the given witnesses.
func selects(theta predicate.Pred, ws []predicate.Pred) bool {
	for _, w := range ws {
		if theta.MoreGeneralThan(w) {
			return true
		}
	}
	return false
}

// Consistent decides CONS⋉: is there a semijoin predicate selecting all
// positive examples and none of the negative ones? On success it returns
// one such predicate (a ⊆-maximal one: the intersection of one witness per
// positive example). The search is a backtracking assignment of witnesses,
// pruned by the monotonicity fact that if a partial intersection already
// selects a negative example, every refinement does too.
func Consistent(inst *relation.Instance, s Sample) (predicate.Pred, bool, error) {
	if err := s.Validate(inst); err != nil {
		return predicate.Pred{}, false, err
	}
	u := predicate.NewUniverse(inst)

	negWs := make([][]predicate.Pred, len(s.Neg))
	for k, j := range s.Neg {
		negWs[k] = witnesses(inst, u, j)
	}
	violates := func(theta predicate.Pred) bool {
		for _, ws := range negWs {
			if selects(theta, ws) {
				return true
			}
		}
		return false
	}

	posWs := make([][]predicate.Pred, len(s.Pos))
	for k, i := range s.Pos {
		posWs[k] = witnesses(inst, u, i)
		if len(posWs[k]) == 0 {
			// P is empty: no θ can select a positive example.
			return predicate.Pred{}, false, nil
		}
	}
	// Branch on the positives with the fewest witnesses first.
	sort.SliceStable(posWs, func(a, b int) bool { return len(posWs[a]) < len(posWs[b]) })

	// Memoize failed (depth, θ) states: the sub-search depends only on
	// those.
	failed := make(map[string]bool)

	var rec func(k int, theta predicate.Pred) (predicate.Pred, bool)
	rec = func(k int, theta predicate.Pred) (predicate.Pred, bool) {
		if violates(theta) {
			return predicate.Pred{}, false
		}
		if k == len(posWs) {
			return theta, true
		}
		key := fmt.Sprintf("%d|%s", k, theta.Key())
		if failed[key] {
			return predicate.Pred{}, false
		}
		for _, w := range posWs[k] {
			next := theta.Intersect(w)
			if got, ok := rec(k+1, next); ok {
				return got, true
			}
		}
		failed[key] = true
		return predicate.Pred{}, false
	}

	theta, ok := rec(0, predicate.Omega(u))
	return theta, ok, nil
}

// BruteForce decides CONS⋉ by enumerating every θ ⊆ Ω; usable only for
// small universes (it panics above 24 pairs). Test oracle for Consistent.
func BruteForce(inst *relation.Instance, s Sample) (predicate.Pred, bool, error) {
	if err := s.Validate(inst); err != nil {
		return predicate.Pred{}, false, err
	}
	u := predicate.NewUniverse(inst)
	if u.Size() > 24 {
		panic(fmt.Sprintf("semijoin: BruteForce limited to 24 pairs, got %d", u.Size()))
	}
	allWs := make(map[int][]predicate.Pred)
	for _, i := range append(append([]int(nil), s.Pos...), s.Neg...) {
		allWs[i] = witnesses(inst, u, i)
	}
	for mask := 0; mask < 1<<uint(u.Size()); mask++ {
		var theta predicate.Pred
		for b := 0; b < u.Size(); b++ {
			if mask&(1<<uint(b)) != 0 {
				theta.Set.Add(b)
			}
		}
		ok := true
		for _, i := range s.Pos {
			if !selects(theta, allWs[i]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, j := range s.Neg {
			if selects(theta, allWs[j]) {
				ok = false
				break
			}
		}
		if ok {
			return theta, true, nil
		}
	}
	return predicate.Pred{}, false, nil
}

// Eval materializes R ⋉θ P as R-tuple indexes; convenience re-export used
// by examples and tests.
func Eval(inst *relation.Instance, theta predicate.Pred) []int {
	u := predicate.NewUniverse(inst)
	return predicate.Semijoin(inst, u, theta)
}

package semijoin

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/relation"
)

// randSolverInstance builds a small random instance for differential
// solver tests.
func randSolverInstance(r *rand.Rand) *relation.Instance {
	n := 1 + r.Intn(3)
	m := 1 + r.Intn(3)
	vals := 1 + r.Intn(3)
	ra := make([]string, n)
	for i := range ra {
		ra[i] = "A" + strconv.Itoa(i+1)
	}
	pa := make([]string, m)
	for i := range pa {
		pa[i] = "B" + strconv.Itoa(i+1)
	}
	R := relation.NewRelation(relation.MustSchema("R", ra...))
	P := relation.NewRelation(relation.MustSchema("P", pa...))
	for i := 0; i < 2+r.Intn(4); i++ {
		tr := make(relation.Tuple, n)
		for k := range tr {
			tr[k] = strconv.Itoa(r.Intn(vals))
		}
		R.Tuples = append(R.Tuples, tr)
	}
	for i := 0; i < 2+r.Intn(4); i++ {
		tp := make(relation.Tuple, m)
		for k := range tp {
			tp[k] = strconv.Itoa(r.Intn(vals))
		}
		P.Tuples = append(P.Tuples, tp)
	}
	return relation.MustInstance(R, P)
}

// randSample labels a random subset of R's rows.
func randSample(r *rand.Rand, rows int) Sample {
	var s Sample
	for ri := 0; ri < rows; ri++ {
		switch r.Intn(3) {
		case 0:
			s.Pos = append(s.Pos, ri)
		case 1:
			s.Neg = append(s.Neg, ri)
		}
	}
	return s
}

// TestSolverMatchesConsistent: the scratch-based solver decides CONS⋉
// exactly like the package-level search — same verdict and same witness
// predicate — across random instances and samples, with the solver reused
// across samples so the witness cache is exercised.
func TestSolverMatchesConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 120; trial++ {
		inst := randSolverInstance(r)
		sv := NewSolver(inst)
		for probe := 0; probe < 6; probe++ {
			s := randSample(r, inst.R.Len())
			wantTheta, wantOK, wantErr := Consistent(inst, s)
			gotTheta, gotOK, gotErr := sv.Consistent(s)
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("trial %d: err %v vs %v", trial, wantErr, gotErr)
			}
			if wantOK != gotOK {
				t.Fatalf("trial %d sample %+v: solver ok=%v, package ok=%v", trial, s, gotOK, wantOK)
			}
			if wantOK && !wantTheta.Equal(gotTheta) {
				t.Fatalf("trial %d sample %+v: solver θ=%v, package θ=%v", trial, s, gotTheta, wantTheta)
			}
		}
	}
}

// TestSolverMatchesInformative: solver informativeness decisions equal the
// package-level ones for every row under random samples.
func TestSolverMatchesInformative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		inst := randSolverInstance(r)
		sv := NewSolver(inst)
		for probe := 0; probe < 4; probe++ {
			s := randSample(r, inst.R.Len())
			if _, ok, err := Consistent(inst, s); err != nil || !ok {
				continue // only consistent bases arise in sessions
			}
			labeled := make(map[int]bool)
			for _, i := range s.Pos {
				labeled[i] = true
			}
			for _, i := range s.Neg {
				labeled[i] = true
			}
			for ri := 0; ri < inst.R.Len(); ri++ {
				if labeled[ri] {
					continue
				}
				want, wantErr := Informative(inst, s, ri)
				got, gotErr := sv.Informative(s, ri)
				if (wantErr != nil) != (gotErr != nil) {
					t.Fatalf("trial %d row %d: err %v vs %v", trial, ri, wantErr, gotErr)
				}
				if want != got {
					t.Fatalf("trial %d sample %+v row %d: solver %v, package %v", trial, s, ri, got, want)
				}
			}
		}
	}
}

// TestSolverValidation: the scratch validation rejects exactly what
// Sample.Validate rejects, and leaves the scratch clean for the next call.
func TestSolverValidation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	inst := randSolverInstance(r)
	sv := NewSolver(inst)
	bad := []Sample{
		{Pos: []int{0, 0}},
		{Pos: []int{0}, Neg: []int{0}},
		{Neg: []int{inst.R.Len()}},
		{Pos: []int{-1}},
	}
	for i, s := range bad {
		if _, _, err := sv.Consistent(s); err == nil {
			t.Errorf("bad sample %d accepted: %+v", i, s)
		}
	}
	// A valid call right after the rejects must still work (scratch reset).
	if _, ok, err := sv.Consistent(Sample{Pos: []int{0}}); err != nil {
		t.Fatalf("valid sample after rejects: %v (ok=%v)", err, ok)
	}
}

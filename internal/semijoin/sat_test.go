package semijoin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLiteral(t *testing.T) {
	if Literal(3).Var() != 3 || Literal(-3).Var() != 3 {
		t.Error("Var wrong")
	}
	if !Literal(3).Positive() || Literal(-3).Positive() {
		t.Error("Positive wrong")
	}
}

func TestFormulaValidate(t *testing.T) {
	if err := (Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}).Validate(); err != nil {
		t.Errorf("valid formula rejected: %v", err)
	}
	if err := (Formula{NumVars: 2, Clauses: []Clause{{}}}).Validate(); err == nil {
		t.Error("empty clause accepted")
	}
	if err := (Formula{NumVars: 2, Clauses: []Clause{{0}}}).Validate(); err == nil {
		t.Error("zero literal accepted")
	}
	if err := (Formula{NumVars: 2, Clauses: []Clause{{3}}}).Validate(); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestSolveSimple(t *testing.T) {
	cases := []struct {
		name string
		f    Formula
		sat  bool
	}{
		{"single positive", Formula{1, []Clause{{1}}}, true},
		{"contradiction", Formula{1, []Clause{{1}, {-1}}}, false},
		{"paper example phi0", Formula{4, []Clause{{1, 2, -3}, {-1, 3, 4}}}, true},
		{"3 vars pigeonhole-ish", Formula{2, []Clause{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}}, false},
		{"chain", Formula{3, []Clause{{1}, {-1, 2}, {-2, 3}}}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			assign, ok := c.f.Solve()
			if ok != c.sat {
				t.Fatalf("Solve = %v, want %v", ok, c.sat)
			}
			if ok && !c.f.Satisfies(assign) {
				t.Errorf("returned assignment does not satisfy formula")
			}
		})
	}
}

// bruteSat enumerates all assignments; ground truth for DPLL.
func bruteSat(f Formula) bool {
	n := f.NumVars
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
		}
		if f.Satisfies(assign) {
			return true
		}
	}
	return false
}

func randFormula(r *rand.Rand, maxVars, maxClauses int) Formula {
	n := 1 + r.Intn(maxVars)
	f := Formula{NumVars: n}
	for i, k := 0, 1+r.Intn(maxClauses); i < k; i++ {
		var c Clause
		for j, w := 0, 1+r.Intn(3); j < w; j++ {
			v := 1 + r.Intn(n)
			if r.Intn(2) == 0 {
				c = append(c, Literal(v))
			} else {
				c = append(c, Literal(-v))
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// TestQuickDPLLMatchesBruteForce: DPLL agrees with exhaustive enumeration
// and returned assignments always satisfy the formula.
func TestQuickDPLLMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fm := randFormula(r, 8, 12)
		assign, ok := fm.Solve()
		if ok != bruteSat(fm) {
			return false
		}
		if ok && !fm.Satisfies(assign) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package sample

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/relation"
)

// exampleAt builds an Example for product tuple (ri, pi) of the instance.
func exampleAt(inst *relation.Instance, u *predicate.Universe, ri, pi int, l Label) Example {
	return Example{
		RI:    ri,
		PI:    pi,
		Theta: predicate.T(u, inst.R.Tuples[ri], inst.P.Tuples[pi]),
		Label: l,
	}
}

// TestConsistencyExample31 replays Example 3.1 exactly.
func TestConsistencyExample31(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)

	// S0: S+ = {(t2,t2'), (t4,t1')}, S− = {(t3,t2')} — consistent, with most
	// specific consistent predicate θ0 = {(A1,B1),(A2,B3)}.
	s0 := New(u)
	s0.Add(exampleAt(inst, u, 1, 1, Positive))
	s0.Add(exampleAt(inst, u, 3, 0, Positive))
	s0.Add(exampleAt(inst, u, 2, 1, Negative))
	if !s0.Consistent() {
		t.Fatal("S0 should be consistent")
	}
	theta0 := predicate.FromPairs(u, [2]int{0, 0}, [2]int{1, 2})
	if !s0.TPos().Equal(theta0) {
		t.Errorf("T(S0+) = %v, want %v", s0.TPos(), theta0)
	}
	// θ0' = {(A1,B1)} is another (non-minimal) consistent predicate.
	theta0p := predicate.FromPairs(u, [2]int{0, 0})
	if !s0.ConsistentWith(theta0p) {
		t.Error("θ0' should be consistent with S0")
	}
	// θ2 = {(A2,B2)} selects neither positive: inconsistent.
	if s0.ConsistentWith(predicate.FromPairs(u, [2]int{1, 1})) {
		t.Error("{(A2,B2)} should not be consistent with S0")
	}

	// S0': S+ = {(t1,t2'), (t1,t3')}, S− = {(t3,t1')} — not consistent,
	// because T(S0'+) = ∅ selects everything including the negative.
	s0p := New(u)
	s0p.Add(exampleAt(inst, u, 0, 1, Positive))
	s0p.Add(exampleAt(inst, u, 0, 2, Positive))
	s0p.Add(exampleAt(inst, u, 2, 0, Negative))
	if s0p.Consistent() {
		t.Fatal("S0' should be inconsistent")
	}
}

func TestEmptySampleConsistent(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	s := New(u)
	if !s.Consistent() {
		t.Error("empty sample should be consistent")
	}
	if !s.TPos().Equal(predicate.Omega(u)) {
		t.Error("T(S+) of empty sample should be Ω")
	}
	if s.Len() != 0 || s.NumPositive() != 0 || s.NumNegative() != 0 {
		t.Error("empty sample counts wrong")
	}
}

func TestCounts(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	s := New(u)
	s.Add(exampleAt(inst, u, 1, 1, Positive))
	s.Add(exampleAt(inst, u, 2, 0, Negative))
	s.Add(exampleAt(inst, u, 2, 1, Negative))
	if s.Len() != 3 || s.NumPositive() != 1 || s.NumNegative() != 2 {
		t.Errorf("counts: len=%d +%d −%d", s.Len(), s.NumPositive(), s.NumNegative())
	}
	if len(s.Positives()) != 1 || len(s.Negatives()) != 2 {
		t.Error("Positives/Negatives lengths wrong")
	}
	if s.String() != "sample{+1, −2}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	s := New(u)
	s.Add(exampleAt(inst, u, 1, 1, Positive))
	c := s.Clone()
	c.Add(exampleAt(inst, u, 2, 0, Negative))
	if s.Len() != 1 {
		t.Error("mutating clone changed original")
	}
	if !s.TPos().Equal(c.TPos()) {
		t.Error("negative example changed TPos")
	}
	c.Add(exampleAt(inst, u, 0, 0, Positive))
	if s.TPos().Equal(c.TPos()) {
		t.Error("clone TPos should have narrowed independently")
	}
}

func TestLabelString(t *testing.T) {
	if Positive.String() != "+" || Negative.String() != "−" {
		t.Error("Label.String wrong")
	}
}

// bruteforceConsistent enumerates all θ ⊆ Ω and checks consistency — the
// definition, used as ground truth for the PTIME check.
func bruteforceConsistent(u *predicate.Universe, s *Sample) bool {
	size := u.Size()
	for mask := 0; mask < 1<<uint(size); mask++ {
		var p predicate.Pred
		for b := 0; b < size; b++ {
			if mask&(1<<uint(b)) != 0 {
				p.Set.Add(b)
			}
		}
		if s.ConsistentWith(p) {
			return true
		}
	}
	return false
}

// TestQuickConsistencySoundComplete: the O(|S|) check via T(S+) agrees with
// brute-force enumeration of all 2^|Ω| predicates on random instances.
func TestQuickConsistencySoundComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(2)
		m := 1 + r.Intn(2)
		vals := 1 + r.Intn(3)
		R := relation.NewRelation(relation.MustSchema("R", attrs("A", n)...))
		P := relation.NewRelation(relation.MustSchema("P", attrs("B", m)...))
		for i := 0; i < 3; i++ {
			R.Tuples = append(R.Tuples, randTuple(r, n, vals))
			P.Tuples = append(P.Tuples, randTuple(r, m, vals))
		}
		inst := relation.MustInstance(R, P)
		u := predicate.NewUniverse(inst)
		s := New(u)
		for k := 0; k < 1+r.Intn(4); k++ {
			s.Add(exampleAt(inst, u, r.Intn(3), r.Intn(3), Label(r.Intn(2) == 0)))
		}
		return s.Consistent() == bruteforceConsistent(u, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickTPosIsConsistentWhenConsistent: whenever the sample is
// consistent, T(S+) itself must be a consistent predicate (soundness of
// returning T(S+), Section 3.1).
func TestQuickTPosIsConsistentWhenConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3)
		m := 1 + r.Intn(3)
		vals := 1 + r.Intn(3)
		R := relation.NewRelation(relation.MustSchema("R", attrs("A", n)...))
		P := relation.NewRelation(relation.MustSchema("P", attrs("B", m)...))
		for i := 0; i < 4; i++ {
			R.Tuples = append(R.Tuples, randTuple(r, n, vals))
			P.Tuples = append(P.Tuples, randTuple(r, m, vals))
		}
		inst := relation.MustInstance(R, P)
		u := predicate.NewUniverse(inst)
		s := New(u)
		for k := 0; k < 1+r.Intn(5); k++ {
			s.Add(exampleAt(inst, u, r.Intn(4), r.Intn(4), Label(r.Intn(2) == 0)))
		}
		if !s.Consistent() {
			return true // nothing to check
		}
		return s.ConsistentWith(s.TPos())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func attrs(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = prefix + string(rune('1'+i))
	}
	return out
}

func randTuple(r *rand.Rand, n, vals int) relation.Tuple {
	t := make(relation.Tuple, n)
	for i := range t {
		t[i] = string(rune('0' + r.Intn(vals)))
	}
	return t
}

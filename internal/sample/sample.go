// Package sample implements examples and samples (Section 3) and the PTIME
// consistency check of Section 3.1.
//
// An example is a product tuple labeled + or −. All reasoning about a
// sample depends only on the most specific predicates T(t) of its examples:
// a predicate θ is consistent with a sample S iff
//
//	θ ⊆ T(t)   for every positive t   (θ selects t), and
//	θ ⊄ T(t)   for every negative t   (θ does not select t),
//
// so the sample stores each example's T value alongside the tuple indexes.
package sample

import (
	"fmt"

	"repro/internal/predicate"
)

// Label marks an example as positive or negative.
type Label bool

// Example labels.
const (
	Positive Label = true
	Negative Label = false
)

// String renders the label the way the paper's figures do.
func (l Label) String() string {
	if l == Positive {
		return "+"
	}
	return "−"
}

// Example is a labeled product tuple. RI and PI index the instance's
// relations; Theta caches T(t) for the tuple.
type Example struct {
	RI, PI int
	Theta  predicate.Pred
	Label  Label
}

// Sample is a set of examples. The zero value is an empty sample.
type Sample struct {
	examples []Example
	// tpos is T(S+) maintained incrementally: the intersection of the T
	// values of all positive examples, Ω while S+ is empty.
	tpos predicate.Pred
	npos int
	u    *predicate.Universe
}

// New returns an empty sample over the universe.
func New(u *predicate.Universe) *Sample {
	return &Sample{tpos: predicate.Omega(u), u: u}
}

// Add appends an example. The caller provides the tuple's T value, which
// the engine has already computed for its class bookkeeping.
func (s *Sample) Add(e Example) {
	s.examples = append(s.examples, e)
	if e.Label == Positive {
		s.tpos = s.tpos.Intersect(e.Theta)
		s.npos++
	}
}

// Len returns the number of examples.
func (s *Sample) Len() int { return len(s.examples) }

// NumPositive returns |S+|.
func (s *Sample) NumPositive() int { return s.npos }

// NumNegative returns |S−|.
func (s *Sample) NumNegative() int { return len(s.examples) - s.npos }

// Examples returns the examples in insertion order. The returned slice is
// owned by the sample; callers must not mutate it.
func (s *Sample) Examples() []Example { return s.examples }

// Positives returns the T values of the positive examples.
func (s *Sample) Positives() []predicate.Pred {
	var out []predicate.Pred
	for _, e := range s.examples {
		if e.Label == Positive {
			out = append(out, e.Theta)
		}
	}
	return out
}

// Negatives returns the T values of the negative examples.
func (s *Sample) Negatives() []predicate.Pred {
	var out []predicate.Pred
	for _, e := range s.examples {
		if e.Label == Negative {
			out = append(out, e.Theta)
		}
	}
	return out
}

// TPos returns T(S+), the most specific predicate selecting all positive
// examples (Ω when S+ is empty). The returned predicate is shared; callers
// must not mutate it.
func (s *Sample) TPos() predicate.Pred { return s.tpos }

// Consistent implements the consistency check of Section 3.1: a consistent
// predicate exists iff the most specific predicate T(S+) selects no
// negative example, i.e. T(S+) ⊄ T(t) for every negative t. When the
// sample is consistent, T(S+) itself is a consistent predicate.
func (s *Sample) Consistent() bool {
	for _, e := range s.examples {
		if e.Label == Negative && s.tpos.MoreGeneralThan(e.Theta) {
			return false
		}
	}
	return true
}

// ConsistentWith reports whether the given predicate is consistent with the
// sample: it selects every positive example and no negative one.
func (s *Sample) ConsistentWith(p predicate.Pred) bool {
	for _, e := range s.examples {
		selects := p.MoreGeneralThan(e.Theta)
		if (e.Label == Positive) != selects {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the sample.
func (s *Sample) Clone() *Sample {
	out := &Sample{
		examples: append([]Example(nil), s.examples...),
		tpos:     s.tpos.Clone(),
		npos:     s.npos,
		u:        s.u,
	}
	return out
}

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("sample{+%d, −%d}", s.NumPositive(), s.NumNegative())
}

package crowd

import "testing"

func TestPosteriorMean(t *testing.T) {
	if got := (Posterior{}).Mean(); got != 0.5 {
		t.Errorf("fresh posterior mean = %v, want 0.5", got)
	}
	if got := (Posterior{Correct: 8}).Mean(); got != 0.9 {
		t.Errorf("8/0 mean = %v, want 0.9", got)
	}
	if got := (Posterior{Wrong: 3}).Mean(); got != 0.2 {
		t.Errorf("0/3 mean = %v, want 0.2", got)
	}
}

func TestReliabilityObserve(t *testing.T) {
	var r Reliability
	r.Observe("b", true)
	r.Observe("b", true)
	r.Observe("a", false)
	if got := r.Posterior("b"); got.Correct != 2 || got.Wrong != 0 {
		t.Errorf("posterior b = %+v", got)
	}
	if got := r.Accuracy("a"); got != 1.0/3 {
		t.Errorf("accuracy a = %v, want 1/3", got)
	}
	if got := r.Accuracy("unseen"); got != 0.5 {
		t.Errorf("unseen accuracy = %v, want 0.5", got)
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Worker != "a" || snap[1].Worker != "b" {
		t.Errorf("snapshot not sorted by id: %+v", snap)
	}
	if snap[1].Accuracy != r.Accuracy("b") {
		t.Errorf("snapshot accuracy %v != Accuracy %v", snap[1].Accuracy, r.Accuracy("b"))
	}
}

func TestNewPanelValidation(t *testing.T) {
	cases := []struct {
		name  string
		specs []WorkerSpec
	}{
		{"empty roster", nil},
		{"empty id", []WorkerSpec{{ID: ""}}},
		{"duplicate id", []WorkerSpec{{ID: "a"}, {ID: "a"}}},
		{"bad error rate", []WorkerSpec{{ID: "a", ErrorRate: 1.5}}},
	}
	for _, c := range cases {
		if _, err := NewPanel(c.specs, 1, 0, 1); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

// TestPanelRoundRobin: workers are assigned round-robin deterministically;
// error-free workers echo the truth, adversarial ones invert it, and a
// sleeper flips once past its trigger.
func TestPanelRoundRobin(t *testing.T) {
	specs := []WorkerSpec{
		{ID: "honest"},
		{ID: "liar", Adversarial: true},
		{ID: "sleeper", SleeperAfter: 1},
	}
	p, err := NewPanel(specs, 2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Workers(); len(got) != 3 || got[0] != "honest" || got[2] != "sleeper" {
		t.Fatalf("Workers = %v", got)
	}
	r1 := p.Round(true) // honest, liar
	r2 := p.Round(true) // sleeper (first answer: still honest), honest
	r3 := p.Round(true) // liar, sleeper (second answer: turned)
	if r1[0].Worker != "honest" || !bool(r1[0].Label) {
		t.Errorf("round 1 vote 0 = %+v, want honest/true", r1[0])
	}
	if r1[1].Worker != "liar" || bool(r1[1].Label) {
		t.Errorf("round 1 vote 1 = %+v, want liar/false", r1[1])
	}
	if r2[0].Worker != "sleeper" || !bool(r2[0].Label) {
		t.Errorf("round 2 vote 0 = %+v, want still-honest sleeper", r2[0])
	}
	if r3[1].Worker != "sleeper" || bool(r3[1].Label) {
		t.Errorf("round 3 vote 1 = %+v, want turned sleeper", r3[1])
	}
	if p.Questions != 3 || p.Microtasks != 6 {
		t.Errorf("Questions = %d, Microtasks = %d, want 3 and 6", p.Questions, p.Microtasks)
	}
	if p.TotalCost() != 30 {
		t.Errorf("TotalCost = %v, want 30", p.TotalCost())
	}

	// Same seed, same call sequence: identical votes.
	a, _ := NewPanel([]WorkerSpec{{ID: "w", ErrorRate: 0.5}}, 1, 0, 11)
	b, _ := NewPanel([]WorkerSpec{{ID: "w", ErrorRate: 0.5}}, 1, 0, 11)
	for i := 0; i < 50; i++ {
		if x, y := a.Round(true)[0].Label, b.Round(true)[0].Label; x != y {
			t.Fatalf("same-seed panels diverged at round %d", i)
		}
	}

	// perQuestion above the roster size clamps to every worker; below 1
	// clamps to 1.
	big, _ := NewPanel(specs, 10, 0, 1)
	if got := len(big.Round(true)); got != 3 {
		t.Errorf("oversized perQuestion gave %d votes, want 3", got)
	}
	one, _ := NewPanel(specs, 0, 0, 1)
	if got := len(one.Round(true)); got != 1 {
		t.Errorf("perQuestion 0 gave %d votes, want 1", got)
	}
}

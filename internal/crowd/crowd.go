// Package crowd models the crowdsourcing deployment the paper motivates
// (Section 1 and 7: "our study makes sense in realistic crowdsourcing
// scenarios"): membership questions become paid microtasks answered by
// error-prone workers, and reliability is bought with redundancy —
// each question goes to several workers and the majority label wins.
//
// The package quantifies the money/accuracy trade-off: more workers per
// question cost more but make the aggregated label (and hence the whole
// inference, which is brittle to a single wrong label) exponentially more
// reliable.
package crowd

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sample"
)

// Truth answers membership queries correctly (e.g. oracle.Honest).
type Truth interface {
	LabelFor(ri, pi int) sample.Label
}

// Majority is an oracle that asks Workers independent noisy workers per
// question and returns the majority label. Ties (possible only with an
// even worker count) are broken by asking one more worker.
type Majority struct {
	// Truth provides the correct label each worker perturbs. It may be nil
	// when the caller resolves the truth itself and aggregates with Vote;
	// LabelFor requires it.
	Truth Truth
	// Workers per question; values < 1 behave as 1.
	Workers int
	// ErrorRate is each worker's independent probability of flipping the
	// correct label; must be in [0, 1).
	ErrorRate float64
	// CostPerTask is the price of one worker answering one question, used
	// by TotalCost.
	CostPerTask float64

	rng *rand.Rand
	// Microtasks counts every individual worker answer.
	Microtasks int
	// Questions counts aggregated questions.
	Questions int
	// WrongAnswers counts aggregated labels that differ from the truth.
	WrongAnswers int

	// rounds accumulates per-worker-round counters: rounds[i] covers the
	// i-th vote cast on each question, so indexes ≥ Workers are tie-breaks.
	rounds []RoundStats
}

// RoundStats is the cost/accuracy breakdown for one worker round — the
// i-th vote position across all questions. The old aggregate counters
// (Microtasks, TotalCost) hid where the money went: a panel of 4 that
// constantly ties pays for a 5th round on most questions, and only a
// per-round breakdown shows it.
type RoundStats struct {
	// Round is the vote position (0-based); positions ≥ the panel size are
	// tie-break rounds.
	Round int `json:"round"`
	// Asked counts questions on which this round was consulted.
	Asked int `json:"asked"`
	// Correct counts this round's votes that matched the true label.
	Correct int `json:"correct"`
	// Cost is Asked · CostPerTask.
	Cost float64 `json:"cost"`
}

// Stats returns the per-worker-round breakdown, one entry per vote
// position that was ever consulted, in round order. The returned slice is
// a copy with costs filled in from the current CostPerTask.
func (m *Majority) Stats() []RoundStats {
	out := make([]RoundStats, len(m.rounds))
	copy(out, m.rounds)
	for i := range out {
		out[i].Cost = float64(out[i].Asked) * m.CostPerTask
	}
	return out
}

// NewMajority builds a majority-vote oracle with a seeded generator.
func NewMajority(truth Truth, workers int, errorRate float64, seed int64) (*Majority, error) {
	if errorRate < 0 || errorRate >= 1 {
		return nil, fmt.Errorf("crowd: error rate %v outside [0, 1)", errorRate)
	}
	if workers < 1 {
		workers = 1
	}
	return &Majority{
		Truth:     truth,
		Workers:   workers,
		ErrorRate: errorRate,
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

// LabelFor implements the inference oracle interface with majority voting.
func (m *Majority) LabelFor(ri, pi int) sample.Label {
	return m.Vote(m.Truth.LabelFor(ri, pi))
}

// Vote aggregates one crowd round given the true label: Workers
// independent noisy votes, majority wins, ties ask one more worker. It
// updates the running cost/accuracy statistics. Vote lets a caller that
// resolves the truth through its own channel (and outside its own locks)
// reuse the aggregation; it is not safe for concurrent use — the caller
// serializes rounds.
func (m *Majority) Vote(truth sample.Label) sample.Label {
	m.Questions++
	votesFor, votesAgainst := 0, 0
	round := 0
	ask := func() {
		m.Microtasks++
		for len(m.rounds) <= round {
			m.rounds = append(m.rounds, RoundStats{Round: len(m.rounds)})
		}
		m.rounds[round].Asked++
		if m.rng.Float64() < m.ErrorRate {
			votesAgainst++
		} else {
			votesFor++
			m.rounds[round].Correct++
		}
		round++
	}
	for i := 0; i < m.Workers; i++ {
		ask()
	}
	for votesFor == votesAgainst {
		ask()
	}
	if votesAgainst > votesFor {
		m.WrongAnswers++
		return !truth
	}
	return truth
}

// TotalCost returns Microtasks · CostPerTask.
func (m *Majority) TotalCost() float64 {
	return float64(m.Microtasks) * m.CostPerTask
}

// MajorityErrorRate returns the probability that a majority of k
// independent workers with the given per-worker error rate is wrong
// (counting ties as resolved by an extra worker, i.e. as the k+1 case's
// deciding vote — for odd k the closed form is the binomial tail).
func MajorityErrorRate(k int, errorRate float64) float64 {
	if k < 1 {
		k = 1
	}
	if k%2 == 0 {
		// An even panel plus tie-break behaves like k+1 independent votes.
		k++
	}
	p := errorRate
	wrong := 0.0
	need := k/2 + 1
	for i := need; i <= k; i++ {
		wrong += binomial(k, i) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(k-i))
	}
	return wrong
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 1; i <= k; i++ {
		res = res * float64(n-k+i) / float64(i)
	}
	return res
}

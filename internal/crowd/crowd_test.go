package crowd

import (
	"math"
	"testing"

	"repro/internal/inference"
	"repro/internal/oracle"
	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/strategy"
)

func TestNewMajorityValidation(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	truth := oracle.NewHonest(inst, u, predicate.Empty())
	if _, err := NewMajority(truth, 3, -0.1, 1); err == nil {
		t.Error("negative error rate accepted")
	}
	if _, err := NewMajority(truth, 3, 1.0, 1); err == nil {
		t.Error("error rate 1 accepted")
	}
	m, err := NewMajority(truth, 0, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != 1 {
		t.Errorf("workers = %d, want clamped 1", m.Workers)
	}
}

func TestPerfectWorkersNeverWrong(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	goal := predicate.FromPairs(u, [2]int{1, 2})
	truth := oracle.NewHonest(inst, u, goal)
	m, err := NewMajority(truth, 1, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for ri := 0; ri < 4; ri++ {
		for pi := 0; pi < 3; pi++ {
			if m.LabelFor(ri, pi) != truth.LabelFor(ri, pi) {
				t.Fatalf("perfect worker wrong at (%d,%d)", ri, pi)
			}
		}
	}
	if m.WrongAnswers != 0 {
		t.Error("WrongAnswers should be 0")
	}
	if m.Microtasks != 12 || m.Questions != 12 {
		t.Errorf("microtasks=%d questions=%d", m.Microtasks, m.Questions)
	}
}

func TestMajorityReducesErrors(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	goal := predicate.FromPairs(u, [2]int{1, 2})
	truth := oracle.NewHonest(inst, u, goal)

	wrongRate := func(workers int) float64 {
		m, err := NewMajority(truth, workers, 0.25, 99)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 2000
		for i := 0; i < trials; i++ {
			m.LabelFor(i%4, i%3)
		}
		return float64(m.WrongAnswers) / float64(m.Questions)
	}
	single := wrongRate(1)
	panel := wrongRate(7)
	if panel >= single {
		t.Errorf("7-worker majority error %v should beat single-worker %v", panel, single)
	}
	// Sanity against the closed form (±5 points sampling slack).
	if math.Abs(single-0.25) > 0.05 {
		t.Errorf("single-worker empirical error %v far from 0.25", single)
	}
	if want := MajorityErrorRate(7, 0.25); math.Abs(panel-want) > 0.05 {
		t.Errorf("panel empirical error %v far from closed form %v", panel, want)
	}
}

func TestMajorityErrorRateClosedForm(t *testing.T) {
	// k=1: error = p.
	if got := MajorityErrorRate(1, 0.3); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("k=1: %v", got)
	}
	// k=3, p=0.1: p³ + 3p²(1−p) = 0.001 + 0.027·... = 0.028.
	want := 0.001 + 3*0.01*0.9
	if got := MajorityErrorRate(3, 0.1); math.Abs(got-want) > 1e-12 {
		t.Errorf("k=3: got %v want %v", got, want)
	}
	// Monotone in k for p < 1/2.
	if MajorityErrorRate(5, 0.2) >= MajorityErrorRate(3, 0.2) {
		t.Error("majority error should shrink with k")
	}
	// Even k behaves like k+1.
	if MajorityErrorRate(4, 0.2) != MajorityErrorRate(5, 0.2) {
		t.Error("even panel should equal next odd panel")
	}
	// k < 1 clamps.
	if MajorityErrorRate(0, 0.2) != MajorityErrorRate(1, 0.2) {
		t.Error("k=0 should clamp to 1")
	}
}

func TestTotalCost(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	truth := oracle.NewHonest(inst, u, predicate.Empty())
	m, err := NewMajority(truth, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.CostPerTask = 0.05
	m.LabelFor(0, 0)
	m.LabelFor(1, 1)
	if got := m.TotalCost(); math.Abs(got-0.30) > 1e-12 {
		t.Errorf("TotalCost = %v, want 0.30", got)
	}
}

// TestInferenceThroughCrowd runs the full inference loop through a noisy
// majority oracle: with a reliable panel the goal is recovered; with a
// single unreliable worker the engine usually detects inconsistency or
// returns a wrong predicate — both acceptable, but the panel must win.
func TestInferenceThroughCrowd(t *testing.T) {
	successes := func(workers int) int {
		wins := 0
		for seed := int64(0); seed < 20; seed++ {
			inst := paperdata.Example21()
			e := inference.New(inst)
			goal := predicate.FromPairs(e.U, [2]int{0, 0}) // {(A1,B1)}
			truth := oracle.NewHonest(inst, e.U, goal)
			m, err := NewMajority(truth, workers, 0.25, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := inference.Run(e, strategy.NewTopDown(), m, 0)
			if err != nil {
				continue // inconsistency detected: a failed crowd run
			}
			gj := predicate.Join(inst, e.U, goal)
			rj := predicate.Join(inst, e.U, res.Predicate)
			if len(gj) == len(rj) {
				wins++
			}
		}
		return wins
	}
	noisy := successes(1)
	panel := successes(9)
	if panel <= noisy {
		t.Errorf("9-worker panel (%d/20 successes) should beat single worker (%d/20)", panel, noisy)
	}
	if panel < 15 {
		t.Errorf("9-worker panel succeeded only %d/20 times", panel)
	}
}

// TestMajorityStats: the per-round breakdown accounts for every microtask —
// base rounds are consulted on every question, tie-break rounds only when an
// even panel splits, and costs follow CostPerTask.
func TestMajorityStats(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	truth := oracle.NewHonest(inst, u, predicate.Empty())
	m, err := NewMajority(truth, 2, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	m.CostPerTask = 5
	const questions = 200
	for i := 0; i < questions; i++ {
		m.LabelFor(i%4, i%3)
	}
	st := m.Stats()
	if len(st) < 3 {
		t.Fatalf("2-worker panel at 40%% error never tied in %d questions: %d rounds", questions, len(st))
	}
	total := 0
	for i, r := range st {
		if r.Round != i {
			t.Errorf("round %d labeled %d", i, r.Round)
		}
		if r.Correct > r.Asked {
			t.Errorf("round %d: correct %d > asked %d", i, r.Correct, r.Asked)
		}
		if r.Cost != float64(r.Asked)*m.CostPerTask {
			t.Errorf("round %d: cost %v, want %v", i, r.Cost, float64(r.Asked)*m.CostPerTask)
		}
		total += r.Asked
	}
	if st[0].Asked != questions || st[1].Asked != questions {
		t.Errorf("base rounds asked %d/%d times, want %d each", st[0].Asked, st[1].Asked, questions)
	}
	if st[2].Asked >= questions {
		t.Errorf("tie-break round asked %d times, want < %d", st[2].Asked, questions)
	}
	if total != m.Microtasks {
		t.Errorf("per-round asks sum to %d, Microtasks = %d", total, m.Microtasks)
	}
}

// TestVoteMatchesLabelFor: LabelFor is exactly Vote over the truth's
// answer — the same seed must produce the same label sequence and the same
// statistics whichever entry point is used, so callers that resolve the
// truth themselves (outside their locks) aggregate identically.
func TestVoteMatchesLabelFor(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	goal := predicate.FromPairs(u, [2]int{1, 2})
	truth := oracle.NewHonest(inst, u, goal)
	viaLabelFor, err := NewMajority(truth, 4, 0.3, 123)
	if err != nil {
		t.Fatal(err)
	}
	viaVote, err := NewMajority(nil, 4, 0.3, 123)
	if err != nil {
		t.Fatal(err)
	}
	for ri := 0; ri < 4; ri++ {
		for pi := 0; pi < 3; pi++ {
			a := viaLabelFor.LabelFor(ri, pi)
			b := viaVote.Vote(truth.LabelFor(ri, pi))
			if a != b {
				t.Fatalf("labels diverged at (%d,%d): %v vs %v", ri, pi, a, b)
			}
		}
	}
	if viaLabelFor.Microtasks != viaVote.Microtasks ||
		viaLabelFor.Questions != viaVote.Questions ||
		viaLabelFor.WrongAnswers != viaVote.WrongAnswers {
		t.Errorf("statistics diverged: LabelFor (%d,%d,%d) vs Vote (%d,%d,%d)",
			viaLabelFor.Microtasks, viaLabelFor.Questions, viaLabelFor.WrongAnswers,
			viaVote.Microtasks, viaVote.Questions, viaVote.WrongAnswers)
	}
}

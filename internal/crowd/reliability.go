package crowd

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sample"
)

// Posterior is a Beta posterior over one worker's accuracy: Correct and
// Wrong count graded answers, and the estimate uses Laplace smoothing
// (a Beta(1,1) prior), so a fresh worker starts at accuracy ½ — zero vote
// weight — and earns influence as answers are confirmed.
type Posterior struct {
	Correct int `json:"correct"`
	Wrong   int `json:"wrong"`
}

// Mean returns the posterior mean accuracy (Correct+1)/(Correct+Wrong+2).
func (p Posterior) Mean() float64 {
	return float64(p.Correct+1) / float64(p.Correct+p.Wrong+2)
}

// Reliability tracks a Beta posterior per worker id. The zero value is
// ready to use.
type Reliability struct {
	m map[string]*Posterior
}

// Observe grades one answer from worker id: correct answers raise the
// posterior, wrong ones lower it. Grading normally comes from downstream
// agreement (did the committed label survive?) rather than ground truth.
func (r *Reliability) Observe(id string, correct bool) {
	if r.m == nil {
		r.m = make(map[string]*Posterior)
	}
	p := r.m[id]
	if p == nil {
		p = &Posterior{}
		r.m[id] = p
	}
	if correct {
		p.Correct++
	} else {
		p.Wrong++
	}
}

// Posterior returns the current posterior for worker id (zero counts for
// an unseen worker).
func (r *Reliability) Posterior(id string) Posterior {
	if p := r.m[id]; p != nil {
		return *p
	}
	return Posterior{}
}

// Accuracy returns the posterior-mean accuracy estimate for worker id.
func (r *Reliability) Accuracy(id string) float64 { return r.Posterior(id).Mean() }

// Snapshot returns every tracked worker id with its posterior, sorted by
// id for deterministic reporting.
func (r *Reliability) Snapshot() []WorkerPosterior {
	out := make([]WorkerPosterior, 0, len(r.m))
	for id, p := range r.m {
		out = append(out, WorkerPosterior{Worker: id, Posterior: *p, Accuracy: p.Mean()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// WorkerPosterior is one worker's reliability estimate for reporting.
type WorkerPosterior struct {
	Worker    string  `json:"worker"`
	Accuracy  float64 `json:"accuracy"`
	Posterior Posterior
}

// WorkerSpec describes one simulated worker for a Panel.
type WorkerSpec struct {
	// ID names the worker in votes and reliability posteriors.
	ID string
	// ErrorRate is the probability of flipping the correct label while the
	// worker is behaving; must be in [0, 1].
	ErrorRate float64
	// Adversarial inverts the behavior: the worker answers wrong with
	// probability 1−ErrorRate (a reliable liar — exactly the worker a
	// signed reliability weight learns to invert).
	Adversarial bool
	// SleeperAfter, when positive, turns the worker adversarial after that
	// many answered microtasks: a sleeper builds up a good posterior and
	// then starts lying.
	SleeperAfter int
}

// RoundVote is one worker's answer within a panel round.
type RoundVote struct {
	Worker string
	Label  sample.Label
}

// Panel simulates a roster of named workers with individual error profiles.
// Unlike Majority it does not aggregate: it returns the raw per-worker
// votes so the caller can weight them by learned reliability.
type Panel struct {
	// CostPerTask prices one microtask for TotalCost.
	CostPerTask float64

	specs       []WorkerSpec
	perQuestion int
	rng         *rand.Rand
	next        int
	answered    map[string]int

	// Microtasks counts every individual vote; Questions counts rounds.
	Microtasks int
	Questions  int
}

// NewPanel builds a worker panel. perQuestion workers answer each round,
// assigned deterministically round-robin over the roster; values < 1
// behave as 1, and values above the roster size use every worker.
func NewPanel(specs []WorkerSpec, perQuestion int, costPerTask float64, seed int64) (*Panel, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("crowd: panel needs at least one worker")
	}
	seen := make(map[string]bool, len(specs))
	for i, w := range specs {
		if w.ID == "" {
			return nil, fmt.Errorf("crowd: worker %d has empty id", i)
		}
		if seen[w.ID] {
			return nil, fmt.Errorf("crowd: duplicate worker id %q", w.ID)
		}
		seen[w.ID] = true
		if w.ErrorRate < 0 || w.ErrorRate > 1 {
			return nil, fmt.Errorf("crowd: worker %q error rate %v outside [0, 1]", w.ID, w.ErrorRate)
		}
	}
	if perQuestion < 1 {
		perQuestion = 1
	}
	if perQuestion > len(specs) {
		perQuestion = len(specs)
	}
	return &Panel{
		CostPerTask: costPerTask,
		specs:       append([]WorkerSpec(nil), specs...),
		perQuestion: perQuestion,
		rng:         rand.New(rand.NewSource(seed)),
		answered:    make(map[string]int, len(specs)),
	}, nil
}

// Workers returns the roster's ids in assignment order.
func (p *Panel) Workers() []string {
	ids := make([]string, len(p.specs))
	for i, w := range p.specs {
		ids[i] = w.ID
	}
	return ids
}

// Round asks the next perQuestion workers the question whose true label is
// truth and returns their individual (possibly wrong) votes. Deterministic
// given the seed and call sequence; not safe for concurrent use.
func (p *Panel) Round(truth sample.Label) []RoundVote {
	p.Questions++
	votes := make([]RoundVote, 0, p.perQuestion)
	for i := 0; i < p.perQuestion; i++ {
		w := p.specs[p.next]
		p.next = (p.next + 1) % len(p.specs)
		p.Microtasks++
		p.answered[w.ID]++
		adversarial := w.Adversarial
		if w.SleeperAfter > 0 && p.answered[w.ID] > w.SleeperAfter {
			adversarial = true
		}
		wrong := p.rng.Float64() < w.ErrorRate
		if adversarial {
			wrong = !wrong
		}
		l := truth
		if wrong {
			l = !l
		}
		votes = append(votes, RoundVote{Worker: w.ID, Label: l})
	}
	return votes
}

// TotalCost returns Microtasks · CostPerTask.
func (p *Panel) TotalCost() float64 {
	return float64(p.Microtasks) * p.CostPerTask
}

// Package pool provides the per-call bounded fan-out used by the parallel
// hot paths: the lookahead strategies' candidate evaluation and the
// experiment harness' task fan-out. Each ForEach call spawns its own
// goroutines bounded by its workers argument; calls are independent (there
// is no global bound), so nesting fan-outs — e.g. parallel experiment
// tasks each running a parallel lookahead — multiplies goroutine counts.
// Results must land in per-index slots; ForEach establishes the
// happens-before edge between those writes and its return, so callers
// reduce serially afterwards — which is what keeps parallel runs
// bit-identical to serial ones.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), fanning across at most workers
// goroutines. workers follows the convention of every parallelism knob in
// this module: 0 and 1 mean sequential, negative means one worker per CPU.
// Cancellation is observed per item: once ctx is done no further item
// starts and the context's error is returned (items already running
// finish). fn must confine its writes to per-index slots.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

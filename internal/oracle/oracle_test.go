package oracle

import (
	"testing"

	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/sample"
)

func TestHonest(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	goal := predicate.FromPairs(u, [2]int{1, 2}) // {(A2,B3)}
	h := NewHonest(inst, u, goal)

	// (t2,t2') has T = {(A1,B1),(A2,B3)} ⊇ goal → positive.
	if h.LabelFor(1, 1) != sample.Positive {
		t.Error("(t2,t2') should be positive")
	}
	// (t3,t1') has T = ∅ → negative.
	if h.LabelFor(2, 0) != sample.Negative {
		t.Error("(t3,t1') should be negative")
	}
	// Empty goal selects everything.
	all := NewHonest(inst, u, predicate.Empty())
	for ri := 0; ri < 4; ri++ {
		for pi := 0; pi < 3; pi++ {
			if all.LabelFor(ri, pi) != sample.Positive {
				t.Errorf("∅ should select (t%d,t%d')", ri+1, pi+1)
			}
		}
	}
}

func TestCounting(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	c := &Counting{Inner: NewHonest(inst, u, predicate.Empty())}
	c.LabelFor(0, 0)
	c.LabelFor(1, 2)
	if c.Queries != 2 {
		t.Errorf("Queries = %d", c.Queries)
	}
	if len(c.Asked) != 2 || c.Asked[1] != [2]int{1, 2} {
		t.Errorf("Asked = %v", c.Asked)
	}
}

func TestAdversaryFlips(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	goal := predicate.FromPairs(u, [2]int{1, 2})
	h := NewHonest(inst, u, goal)
	a := &Adversary{Honest: NewHonest(inst, u, goal), FlipAfter: 1}

	// First query honest, second flipped.
	if a.LabelFor(1, 1) != h.LabelFor(1, 1) {
		t.Error("first answer should be honest")
	}
	if a.LabelFor(1, 1) == h.LabelFor(1, 1) {
		t.Error("second answer should be flipped")
	}
}

func TestScripted(t *testing.T) {
	s := &Scripted{Labels: []sample.Label{sample.Positive, sample.Negative}}
	if s.LabelFor(0, 0) != sample.Positive || s.LabelFor(5, 5) != sample.Negative {
		t.Error("scripted labels out of order")
	}
	defer func() {
		if recover() == nil {
			t.Error("exhausted script did not panic")
		}
	}()
	s.LabelFor(0, 0)
}

// Package oracle simulates the user of the interactive scenario: a source
// of labels for membership queries about product tuples.
//
// The paper assumes an honest user who labels tuples consistently with a
// goal predicate θG she has in mind (Section 3.2). Honest implements that;
// Counting instruments any oracle; Adversary flips labels to exercise the
// inconsistency path of Algorithm 1 (lines 6–7) in failure-injection tests.
package oracle

import (
	"repro/internal/predicate"
	"repro/internal/relation"
	"repro/internal/sample"
)

// Honest labels every tuple exactly as the goal predicate dictates:
// positive iff θG ⊆ T(t), i.e. iff t ∈ R ⋈θG P.
type Honest struct {
	Inst *relation.Instance
	U    *predicate.Universe
	Goal predicate.Pred
}

// NewHonest builds an honest user with the given goal predicate.
func NewHonest(inst *relation.Instance, u *predicate.Universe, goal predicate.Pred) *Honest {
	return &Honest{Inst: inst, U: u, Goal: goal}
}

// LabelFor answers the membership query for product tuple (ri, pi).
func (h *Honest) LabelFor(ri, pi int) sample.Label {
	if h.Goal.Selects(h.U, h.Inst.R.Tuples[ri], h.Inst.P.Tuples[pi]) {
		return sample.Positive
	}
	return sample.Negative
}

// Counting wraps an oracle and counts queries; it also records the asked
// tuples in order, for auditing strategy behaviour in tests.
type Counting struct {
	Inner interface {
		LabelFor(ri, pi int) sample.Label
	}
	Queries int
	Asked   [][2]int
}

// LabelFor delegates to the inner oracle and records the query.
func (c *Counting) LabelFor(ri, pi int) sample.Label {
	c.Queries++
	c.Asked = append(c.Asked, [2]int{ri, pi})
	return c.Inner.LabelFor(ri, pi)
}

// Adversary answers like an honest user for the first FlipAfter queries and
// then flips every label, guaranteeing an inconsistent sample: used to test
// that the engine detects dishonest users.
type Adversary struct {
	Honest    *Honest
	FlipAfter int
	asked     int
}

// LabelFor flips the honest label once FlipAfter queries have passed.
func (a *Adversary) LabelFor(ri, pi int) sample.Label {
	l := a.Honest.LabelFor(ri, pi)
	a.asked++
	if a.asked > a.FlipAfter {
		return !l
	}
	return l
}

// Scripted replays a fixed sequence of labels regardless of the tuple
// asked; handy for unit tests of specific interaction traces.
type Scripted struct {
	Labels []sample.Label
	next   int
}

// LabelFor returns the next scripted label; it panics when the script is
// exhausted, which in a test signals more interactions than expected.
func (s *Scripted) LabelFor(ri, pi int) sample.Label {
	if s.next >= len(s.Labels) {
		panic("oracle: scripted labels exhausted")
	}
	l := s.Labels[s.next]
	s.next++
	return l
}

// Package versionspace reasons about C(S) — the set of all join predicates
// consistent with a sample — as an explicit object: counting it without
// enumeration (inclusion–exclusion), enumerating it when small, and
// summarizing the state of an inference session ("how many candidate
// queries remain?"). The engine itself never materializes C(S); this
// package exists for progress reporting, debugging and tests.
//
// Structure of C(S): a predicate θ is consistent iff θ ⊆ T(S+) and
// θ ⊄ T(t′) for every negative example t′ (both directions follow from
// t ∈ R ⋈θ P ⇔ θ ⊆ T(t)). C(S) is therefore the subset lattice of T(S+)
// minus the union of the subset lattices of the negative intersections.
package versionspace

import (
	"math/big"

	"repro/internal/bitset"
	"repro/internal/inference"
	"repro/internal/predicate"
	"repro/internal/strategy"
)

// Count returns |C(S)| for an engine's current sample, or nil when the
// inclusion–exclusion width is exceeded (more than 20 distinct ⊆-maximal
// negative intersections — practically unheard of).
func Count(e *inference.Engine) *big.Int {
	return strategy.CountConsistent(e.TPos(), e.Negatives())
}

// Enumerate lists C(S) explicitly, in ascending size order, provided
// |T(S+)| ≤ maxBits (enumeration is 2^|T(S+)|). It returns nil when the
// space is too large; callers should Count first.
func Enumerate(e *inference.Engine, maxBits int) []predicate.Pred {
	tpos := e.TPos()
	elems := tpos.Set.Elems()
	if len(elems) > maxBits {
		return nil
	}
	negs := e.Negatives()
	var out []predicate.Pred
	for mask := 0; mask < 1<<uint(len(elems)); mask++ {
		var s bitset.Set
		for b := 0; b < len(elems); b++ {
			if mask&(1<<uint(b)) != 0 {
				s.Add(elems[b])
			}
		}
		p := predicate.Pred{Set: s}
		ok := true
		for _, n := range negs {
			if p.Set.SubsetOf(n.Set) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	// Ascending size, then canonical key: a stable, readable order.
	sortPreds(out)
	return out
}

func sortPreds(ps []predicate.Pred) {
	// Insertion sort keeps this dependency-free; candidate lists are small
	// by construction (callers bound |T(S+)|).
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0; j-- {
			a, b := ps[j-1], ps[j]
			if a.Size() < b.Size() || (a.Size() == b.Size() && a.Key() <= b.Key()) {
				break
			}
			ps[j-1], ps[j] = b, a
		}
	}
}

// MinimalConsistent returns the ⊆-minimal predicates of C(S): the most
// *general* queries consistent with the answers (the engine's Result() is
// the most specific one, T(S+)). Example 3.1 of the paper shows both ends:
// θ0 = {(A1,B1),(A2,B3)} is most specific, θ0′ = {(A1,B1)} is consistent
// and smaller. Enumeration-backed, so the same maxBits bound as Enumerate
// applies (nil when too large).
func MinimalConsistent(e *inference.Engine, maxBits int) []predicate.Pred {
	all := Enumerate(e, maxBits)
	if all == nil {
		return nil
	}
	var out []predicate.Pred
	for i, p := range all {
		minimal := true
		for j, q := range all {
			if i != j && q.Set.ProperSubsetOf(p.Set) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, p)
		}
	}
	return out
}

// Progress summarizes how far an inference session has converged.
type Progress struct {
	// Candidates is |C(S)| (nil if uncountable; see Count).
	Candidates *big.Int
	// InformativeClasses is the number of classes still worth asking.
	InformativeClasses int
	// TotalClasses is the number of T-classes of the product.
	TotalClasses int
	// Labeled is the number of answered questions.
	Labeled int
}

// Describe computes a Progress snapshot for the engine.
func Describe(e *inference.Engine) Progress {
	return Progress{
		Candidates:         Count(e),
		InformativeClasses: e.NumInformative(),
		TotalClasses:       len(e.Classes()),
		Labeled:            e.Sample().Len(),
	}
}

package versionspace

import (
	"math/big"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/inference"
	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/relation"
	"repro/internal/sample"
)

func TestCountEmptySample(t *testing.T) {
	e := inference.New(paperdata.Example21())
	if got := Count(e); got.Cmp(big.NewInt(64)) != 0 {
		t.Errorf("Count = %v, want 2^6 = 64", got)
	}
}

func TestEnumerateMatchesCount(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	// Label (t2,t2') positive: T(S+) = {(A1,B1),(A2,B3)} → candidates are
	// its 4 subsets.
	ci := classIndexFor(e, 1, 1)
	if err := e.Label(ci, sample.Positive); err != nil {
		t.Fatal(err)
	}
	preds := Enumerate(e, 16)
	if len(preds) != 4 {
		t.Fatalf("Enumerate = %d predicates, want 4", len(preds))
	}
	if got := Count(e); got.Cmp(big.NewInt(int64(len(preds)))) != 0 {
		t.Errorf("Count %v ≠ len(Enumerate) %d", got, len(preds))
	}
	// Sorted ascending by size.
	for i := 1; i < len(preds); i++ {
		if preds[i-1].Size() > preds[i].Size() {
			t.Error("Enumerate not sorted by size")
		}
	}
	// Every enumerated predicate is consistent.
	for _, p := range preds {
		if !e.Sample().ConsistentWith(p) {
			t.Errorf("enumerated predicate %v not consistent", p)
		}
	}
}

func TestEnumerateTooLarge(t *testing.T) {
	e := inference.New(paperdata.Example21())
	if got := Enumerate(e, 3); got != nil { // |T(S+)| = 6 > 3
		t.Error("Enumerate should refuse oversized spaces")
	}
}

func TestDescribe(t *testing.T) {
	e := inference.New(paperdata.Example21())
	p := Describe(e)
	if p.TotalClasses != 12 || p.Labeled != 0 {
		t.Errorf("Describe = %+v", p)
	}
	if p.InformativeClasses != 12 {
		t.Errorf("informative = %d, want 12", p.InformativeClasses)
	}
	if p.Candidates.Cmp(big.NewInt(64)) != 0 {
		t.Errorf("candidates = %v", p.Candidates)
	}
}

// TestCandidatesShrinkMonotonically: every answered question weakly
// shrinks |C(S)|, and strictly when the tuple was informative.
func TestCandidatesShrinkMonotonically(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	goal := predicate.FromPairs(e.U, [2]int{1, 2})
	prev := Count(e)
	for !e.Done() {
		ci := -1
		for i := range e.Classes() {
			if e.Informative(i) {
				ci = i
				break
			}
		}
		c := e.Classes()[ci]
		l := sample.Negative
		if goal.Selects(e.U, inst.R.Tuples[c.RI], inst.P.Tuples[c.PI]) {
			l = sample.Positive
		}
		if err := e.Label(ci, l); err != nil {
			t.Fatal(err)
		}
		cur := Count(e)
		if cur.Cmp(prev) >= 0 {
			t.Fatalf("candidates did not shrink: %v → %v", prev, cur)
		}
		prev = cur
	}
	if prev.Sign() <= 0 {
		t.Error("final candidate count must stay positive")
	}
}

// TestMinimalConsistentExample31 replays Example 3.1: after the sample S0
// (positives (t2,t2'), (t4,t1'); negative (t3,t2')), the most specific
// consistent predicate is θ0 = {(A1,B1),(A2,B3)} and θ0' = {(A1,B1)} is a
// smaller consistent one; the minimal consistent predicates must all be
// single pairs or smaller, none containing another.
func TestMinimalConsistentExample31(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	for _, step := range []struct {
		ri, pi int
		l      sample.Label
	}{
		{1, 1, sample.Positive},
		{3, 0, sample.Positive},
		{2, 1, sample.Negative},
	} {
		if err := e.Label(classIndexFor(e, step.ri, step.pi), step.l); err != nil {
			t.Fatal(err)
		}
	}
	theta0 := predicate.FromPairs(e.U, [2]int{0, 0}, [2]int{1, 2})
	if !e.Result().Equal(theta0) {
		t.Fatalf("Result = %v, want θ0", e.Result())
	}
	mins := MinimalConsistent(e, 16)
	if mins == nil || len(mins) == 0 {
		t.Fatal("no minimal predicates")
	}
	theta0p := predicate.FromPairs(e.U, [2]int{0, 0}) // {(A1,B1)}
	found := false
	for _, m := range mins {
		if m.Equal(theta0p) {
			found = true
		}
		// Every minimal predicate is consistent and contains no smaller
		// consistent predicate.
		if !e.Sample().ConsistentWith(m) {
			t.Errorf("minimal predicate %v inconsistent", m)
		}
		for _, o := range mins {
			if !o.Equal(m) && o.Set.ProperSubsetOf(m.Set) {
				t.Errorf("%v not minimal (contains %v)", m, o)
			}
		}
	}
	if !found {
		t.Errorf("θ0' = {(A1,B1)} missing from minimal set %v", mins)
	}
	if got := MinimalConsistent(e, 0); got != nil {
		t.Error("maxBits 0 should refuse")
	}
}

func classIndexFor(e *inference.Engine, ri, pi int) int {
	theta := predicate.T(e.U, e.Inst.R.Tuples[ri], e.Inst.P.Tuples[pi])
	for ci, c := range e.Classes() {
		if c.Theta.Equal(theta) {
			return ci
		}
	}
	return -1
}

// TestQuickEnumerateEqualsBruteForce: enumeration equals the definition on
// random instances and samples.
func TestQuickEnumerateEqualsBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		e := inference.New(inst)
		goal := randPred(r, e.U)
		for q := 0; q < 1+r.Intn(3); q++ {
			inf := e.InformativeClasses()
			if len(inf) == 0 {
				break
			}
			ci := inf[r.Intn(len(inf))]
			c := e.Classes()[ci]
			l := sample.Negative
			if goal.Selects(e.U, inst.R.Tuples[c.RI], inst.P.Tuples[c.PI]) {
				l = sample.Positive
			}
			if err := e.Label(ci, l); err != nil {
				return false
			}
		}
		preds := Enumerate(e, 12)
		if preds == nil {
			return true
		}
		// Brute force over the full universe.
		want := 0
		size := e.U.Size()
		for mask := 0; mask < 1<<uint(size); mask++ {
			var p predicate.Pred
			for b := 0; b < size; b++ {
				if mask&(1<<uint(b)) != 0 {
					p.Set.Add(b)
				}
			}
			if e.Sample().ConsistentWith(p) {
				want++
			}
		}
		if len(preds) != want {
			return false
		}
		return Count(e).Cmp(big.NewInt(int64(want))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func randInstance(r *rand.Rand) *relation.Instance {
	n := 1 + r.Intn(2)
	m := 1 + r.Intn(2)
	vals := 1 + r.Intn(3)
	ra := make([]string, n)
	for i := range ra {
		ra[i] = "A" + strconv.Itoa(i+1)
	}
	pa := make([]string, m)
	for i := range pa {
		pa[i] = "B" + strconv.Itoa(i+1)
	}
	R := relation.NewRelation(relation.MustSchema("R", ra...))
	P := relation.NewRelation(relation.MustSchema("P", pa...))
	for i := 0; i < 2+r.Intn(3); i++ {
		tr := make(relation.Tuple, n)
		for k := range tr {
			tr[k] = strconv.Itoa(r.Intn(vals))
		}
		R.Tuples = append(R.Tuples, tr)
	}
	for i := 0; i < 2+r.Intn(3); i++ {
		tp := make(relation.Tuple, m)
		for k := range tp {
			tp[k] = strconv.Itoa(r.Intn(vals))
		}
		P.Tuples = append(P.Tuples, tp)
	}
	return relation.MustInstance(R, P)
}

func randPred(r *rand.Rand, u *predicate.Universe) predicate.Pred {
	var p predicate.Pred
	for id := 0; id < u.Size(); id++ {
		if r.Intn(3) == 0 {
			p.Set.Add(id)
		}
	}
	return p
}

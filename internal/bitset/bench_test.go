package bitset

import "testing"

func benchSets() (Set, Set) {
	a := New(128)
	b := New(128)
	for i := 0; i < 128; i += 3 {
		a.Add(i)
	}
	for i := 0; i < 128; i += 5 {
		b.Add(i)
	}
	return a, b
}

func BenchmarkSubsetOf(b *testing.B) {
	x, y := benchSets()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.SubsetOf(y)
	}
}

func BenchmarkIntersect(b *testing.B) {
	x, y := benchSets()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}

func BenchmarkIntersectInPlace(b *testing.B) {
	x, y := benchSets()
	tmp := x.Clone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tmp.IntersectInPlace(y)
	}
}

func BenchmarkKey(b *testing.B) {
	x, _ := benchSets()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Key()
	}
}

func BenchmarkElems(b *testing.B) {
	x, _ := benchSets()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Elems()
	}
}

package bitset

import (
	"math/rand"
	"testing"
)

func TestWordsFor(t *testing.T) {
	for _, c := range []struct{ n, want int }{
		{-1, 0}, {0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	} {
		if got := WordsFor(c.n); got != c.want {
			t.Errorf("WordsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCopyWordsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		s := randSet(r, n)
		dst := make([]uint64, WordsFor(n))
		for i := range dst {
			dst[i] = ^uint64(0) // must be overwritten, including zero-padding
		}
		s.CopyWords(dst)
		for i := 0; i < n; i++ {
			got := dst[i/64]&(1<<uint(i%64)) != 0
			if got != s.Contains(i) {
				t.Fatalf("n=%d bit %d: span %v, set %v", n, i, got, s.Contains(i))
			}
		}
	}
}

func TestIntersectIntoMatchesIntersect(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var dst Set
	for trial := 0; trial < 100; trial++ {
		a := randSet(r, 1+r.Intn(150))
		b := randSet(r, 1+r.Intn(150))
		IntersectInto(&dst, a, b)
		if !dst.Equal(a.Intersect(b)) {
			t.Fatalf("IntersectInto(%v, %v) = %v, want %v", a, b, dst, a.Intersect(b))
		}
	}
	// Aliasing dst with an operand is allowed.
	a := FromSlice([]int{1, 5, 70})
	b := FromSlice([]int{5, 70, 100})
	IntersectInto(&a, a, b)
	if !a.Equal(FromSlice([]int{5, 70})) {
		t.Errorf("aliased IntersectInto = %v", a)
	}
	// Steady-state reuse allocates nothing.
	x := randSet(r, 128)
	y := randSet(r, 128)
	IntersectInto(&dst, x, y)
	if allocs := testing.AllocsPerRun(100, func() { IntersectInto(&dst, x, y) }); allocs != 0 {
		t.Errorf("IntersectInto allocates %.1f per call; want 0 steady-state", allocs)
	}
}

func TestSpanOpsMatchSetOps(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(190)
		W := WordsFor(n)
		a := randSet(r, n)
		b := randSet(r, n)
		aw := make([]uint64, W)
		bw := make([]uint64, W)
		a.CopyWords(aw)
		b.CopyWords(bw)
		if got, want := SubsetWords(aw, bw), a.SubsetOf(b); got != want {
			t.Fatalf("n=%d: SubsetWords = %v, SubsetOf = %v (a=%v b=%v)", n, got, want, a, b)
		}
		dst := make([]uint64, W)
		IntersectWords(dst, aw, bw)
		inter := a.Intersect(b)
		iw := make([]uint64, W)
		inter.CopyWords(iw)
		for i := range dst {
			if dst[i] != iw[i] {
				t.Fatalf("n=%d word %d: IntersectWords %x, Intersect %x", n, i, dst[i], iw[i])
			}
		}
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		s := randSet(r, 1+r.Intn(200))
		if got := string(s.AppendKey(nil)); got != s.Key() {
			t.Fatalf("AppendKey = %q, Key = %q", got, s.Key())
		}
	}
	// Capacity must not leak into the key (trailing zero words trimmed).
	a := FromSlice([]int{3})
	b := New(500)
	b.Add(3)
	if string(a.AppendKey(nil)) != string(b.AppendKey(nil)) {
		t.Error("AppendKey differs for equal sets of different capacity")
	}
	// Appends after a prefix.
	pre := []byte("k|")
	out := a.AppendKey(pre)
	if string(out[:2]) != "k|" || string(out[2:]) != a.Key() {
		t.Errorf("AppendKey with prefix = %q", out)
	}
}

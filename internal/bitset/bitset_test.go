package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() {
		t.Error("zero Set should be empty")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
	if s.Contains(0) || s.Contains(100) {
		t.Error("empty set should contain nothing")
	}
	if s.String() != "{}" {
		t.Errorf("String = %q, want {}", s.String())
	}
}

func TestAddRemoveContains(t *testing.T) {
	var s Set
	elems := []int{0, 1, 63, 64, 65, 127, 128, 1000}
	for _, e := range elems {
		s.Add(e)
	}
	for _, e := range elems {
		if !s.Contains(e) {
			t.Errorf("Contains(%d) = false after Add", e)
		}
	}
	if s.Len() != len(elems) {
		t.Errorf("Len = %d, want %d", s.Len(), len(elems))
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if s.Len() != len(elems)-1 {
		t.Errorf("Len = %d, want %d", s.Len(), len(elems)-1)
	}
	// Removing an absent element is a no-op.
	s.Remove(9999)
	if s.Len() != len(elems)-1 {
		t.Error("Remove of absent element changed Len")
	}
}

func TestAddIdempotent(t *testing.T) {
	var s Set
	s.Add(5)
	s.Add(5)
	if s.Len() != 1 {
		t.Errorf("Len = %d after double Add, want 1", s.Len())
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestUniverse(t *testing.T) {
	u := Universe(70)
	if u.Len() != 70 {
		t.Errorf("Universe(70).Len() = %d", u.Len())
	}
	for i := 0; i < 70; i++ {
		if !u.Contains(i) {
			t.Errorf("Universe(70) missing %d", i)
		}
	}
	if u.Contains(70) {
		t.Error("Universe(70) contains 70")
	}
	if !Universe(0).IsEmpty() {
		t.Error("Universe(0) not empty")
	}
}

func TestEqualDifferentCapacities(t *testing.T) {
	a := New(10)
	b := New(200)
	a.Add(3)
	b.Add(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("sets with same elements but different capacity not Equal")
	}
	b.Add(150)
	if a.Equal(b) || b.Equal(a) {
		t.Error("different sets reported Equal")
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := FromSlice([]int{1, 2, 3})
	if !a.SubsetOf(b) {
		t.Error("{1,2} should be subset of {1,2,3}")
	}
	if b.SubsetOf(a) {
		t.Error("{1,2,3} should not be subset of {1,2}")
	}
	if !a.SubsetOf(a) {
		t.Error("set should be subset of itself")
	}
	if a.ProperSubsetOf(a) {
		t.Error("set should not be proper subset of itself")
	}
	if !a.ProperSubsetOf(b) {
		t.Error("{1,2} should be proper subset of {1,2,3}")
	}
	var empty Set
	if !empty.SubsetOf(a) || !empty.SubsetOf(empty) {
		t.Error("empty set should be subset of everything")
	}
	// Cross-word subset.
	c := FromSlice([]int{1, 100})
	if c.SubsetOf(b) {
		t.Error("{1,100} should not be subset of {1,2,3}")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice([]int{1, 2, 70})
	b := FromSlice([]int{2, 3, 70, 130})

	if got := a.Intersect(b).Elems(); len(got) != 2 || got[0] != 2 || got[1] != 70 {
		t.Errorf("Intersect = %v, want [2 70]", got)
	}
	if got := a.Union(b).Elems(); len(got) != 5 {
		t.Errorf("Union = %v, want 5 elements", got)
	}
	if got := a.Diff(b).Elems(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Diff = %v, want [1]", got)
	}
	if got := b.Diff(a).Elems(); len(got) != 2 || got[0] != 3 || got[1] != 130 {
		t.Errorf("Diff = %v, want [3 130]", got)
	}
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(FromSlice([]int{9, 99})) {
		t.Error("disjoint sets reported intersecting")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]int{1, 2, 70})
	b := FromSlice([]int{2, 3, 130})
	c := a.Clone()
	c.IntersectInPlace(b)
	if !c.Equal(a.Intersect(b)) {
		t.Error("IntersectInPlace disagrees with Intersect")
	}
	d := a.Clone()
	d.UnionInPlace(b)
	if !d.Equal(a.Union(b)) {
		t.Error("UnionInPlace disagrees with Union")
	}
	// Original must be untouched.
	if !a.Equal(FromSlice([]int{1, 2, 70})) {
		t.Error("in-place op on clone mutated original")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := a.Clone()
	b.Add(3)
	if a.Contains(3) {
		t.Error("mutating clone affected original")
	}
}

func TestElemsSorted(t *testing.T) {
	s := FromSlice([]int{128, 5, 63, 64, 0})
	got := s.Elems()
	want := []int{0, 5, 63, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4, 5})
	count := 0
	s.ForEach(func(i int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("ForEach visited %d elements, want 3", count)
	}
}

func TestKeyCanonical(t *testing.T) {
	a := New(10)
	a.Add(3)
	b := New(500) // different capacity, trailing zero words
	b.Add(3)
	if a.Key() != b.Key() {
		t.Error("Key differs for equal sets with different capacities")
	}
	var empty Set
	if empty.Key() != New(100).Key() {
		t.Error("empty keys differ")
	}
	c := FromSlice([]int{3, 64})
	if a.Key() == c.Key() {
		t.Error("distinct sets share a Key")
	}
}

func TestString(t *testing.T) {
	s := FromSlice([]int{1, 5})
	if s.String() != "{1, 5}" {
		t.Errorf("String = %q", s.String())
	}
}

// randSet builds a random set over [0, n) for property tests.
func randSet(r *rand.Rand, n int) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickAlgebraLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// De Morgan-ish / lattice laws over random sets in a 130-bit universe.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randSet(r, 130), randSet(r, 130), randSet(r, 130)

		// Commutativity.
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		// Associativity.
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		// Distributivity.
		if !a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c))) {
			return false
		}
		// Absorption.
		if !a.Union(a.Intersect(b)).Equal(a) {
			return false
		}
		// Diff definition: a\b = a ∩ complement(b) ⇒ (a\b) ∪ (a∩b) = a.
		if !a.Diff(b).Union(a.Intersect(b)).Equal(a) {
			return false
		}
		// Subset consistency.
		if !a.Intersect(b).SubsetOf(a) || !a.SubsetOf(a.Union(b)) {
			return false
		}
		// Intersects agrees with Intersect.
		if a.Intersects(b) != !a.Intersect(b).IsEmpty() {
			return false
		}
		// Len of union + len of intersection = len a + len b.
		if a.Union(b).Len()+a.Intersect(b).Len() != a.Len()+b.Len() {
			return false
		}
		// Key equality iff Equal.
		if (a.Key() == b.Key()) != a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickElemsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randSet(r, 200)
		return FromSlice(a.Elems()).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

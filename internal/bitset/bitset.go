// Package bitset provides a compact, dynamically sized bit set used to
// represent join predicates as subsets of the attribute-pair universe
// Ω = attrs(R) × attrs(P).
//
// A join predicate over relations with n and m attributes is a subset of the
// n·m attribute pairs; for most practical schemas this fits in one machine
// word, but the 3SAT reduction of Theorem 6.1 builds universes of
// (n+1)(2n+1) pairs, so the representation must grow beyond 64 bits.
//
// The zero value of Set is an empty set with capacity zero; sets grow on
// demand. All operations treat missing high words as zero, so sets of
// different capacities interoperate freely.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a set of small non-negative integers backed by a []uint64.
// Methods with a pointer receiver may mutate the set; value-receiver
// methods never do.
type Set struct {
	words []uint64
}

// New returns an empty set pre-sized to hold values in [0, n).
func New(n int) Set {
	if n <= 0 {
		return Set{}
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set containing exactly the given elements.
func FromSlice(elems []int) Set {
	var s Set
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Universe returns the full set {0, 1, …, n-1}.
func Universe(n int) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts i into the set. It panics if i is negative.
func (s *Set) Add(i int) {
	if i < 0 {
		panic("bitset: negative element " + strconv.Itoa(i))
	}
	w := i / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set; removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
	}
}

// Contains reports whether i is in the set.
func (s Set) Contains(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	long, short := s.words, t.words
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t (s ⊆ t).
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊊ t.
func (s Set) ProperSubsetOf(t Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	if n == 0 {
		return Set{}
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.words[i] & t.words[i]
	}
	return Set{words: out}
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	long, short := s.words, t.words
	if len(long) < len(short) {
		long, short = short, long
	}
	if len(long) == 0 {
		return Set{}
	}
	out := make([]uint64, len(long))
	copy(out, long)
	for i, w := range short {
		out[i] |= w
	}
	return Set{words: out}
}

// Diff returns s \ t as a new set.
func (s Set) Diff(t Set) Set {
	if len(s.words) == 0 {
		return Set{}
	}
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	for i := range out {
		if i < len(t.words) {
			out[i] &^= t.words[i]
		}
	}
	return Set{words: out}
}

// IntersectInPlace replaces s with s ∩ t.
func (s *Set) IntersectInPlace(t Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// UnionInPlace replaces s with s ∪ t.
func (s *Set) UnionInPlace(t Set) {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersects reports whether s ∩ t is non-empty.
func (s Set) Intersects(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Elems returns the elements of s in increasing order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for each element in increasing order; if fn returns
// false the iteration stops early.
func (s Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// WordsFor returns the number of words needed to hold values in [0, n).
func WordsFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + wordBits - 1) / wordBits
}

// CopyWords writes the set's first len(dst) words into dst, zero-padding
// beyond the set's capacity. Hot paths use it to lay predicates out in flat
// []uint64 arenas and then run the span operations below without touching
// Set at all.
func (s Set) CopyWords(dst []uint64) {
	n := copy(dst, s.words)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// IntersectInto replaces dst with a ∩ b, reusing dst's backing array when
// it is large enough — the allocation-free counterpart of Intersect.
// Aliasing dst with a or b is safe.
func IntersectInto(dst *Set, a, b Set) {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	if cap(dst.words) < n {
		dst.words = make([]uint64, n)
	} else {
		dst.words = dst.words[:n]
	}
	for i := 0; i < n; i++ {
		dst.words[i] = a.words[i] & b.words[i]
	}
}

// IntersectWords writes a & b elementwise into dst. The three spans must
// have equal length (the arena layout guarantees it); dst may alias a or b.
func IntersectWords(dst, a, b []uint64) {
	if len(a) == 0 {
		return
	}
	_ = dst[len(a)-1] // bounds hint
	b = b[:len(a)]
	for i := range a {
		dst[i] = a[i] & b[i]
	}
}

// SubsetWords reports a ⊆ b for two equal-length word spans without
// allocating.
func SubsetWords(a, b []uint64) bool {
	b = b[:len(a)]
	for i, w := range a {
		if w&^b[i] != 0 {
			return false
		}
	}
	return true
}

// AppendKey appends the bytes of Key to dst and returns the extended
// slice: a canonical, capacity-independent encoding usable as (part of) a
// map key via string(dst) without building intermediate strings.
func (s Set) AppendKey(dst []byte) []byte {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	for i := 0; i < n; i++ {
		w := s.words[i]
		for j := 0; j < 8; j++ {
			dst = append(dst, byte(w>>(8*j)))
		}
	}
	return dst
}

// AsWord returns the set's contents as a single machine word when every
// element is below 64; ok is false otherwise. Hot paths use this to switch
// to branch-free word arithmetic (join-predicate universes of real schemas
// almost always fit: Ω = n·m pairs ≤ 64 covers e.g. 8×8 attributes).
func (s Set) AsWord() (w uint64, ok bool) {
	if len(s.words) == 0 {
		return 0, true
	}
	for _, hi := range s.words[1:] {
		if hi != 0 {
			return 0, false
		}
	}
	return s.words[0], true
}

// Key returns a string that is equal for equal sets, usable as a map key.
// Trailing zero words are excluded so capacity does not affect the key.
func (s Set) Key() string {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	if n == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(n * 8)
	for i := 0; i < n; i++ {
		w := s.words[i]
		for j := 0; j < 8; j++ {
			b.WriteByte(byte(w >> (8 * j)))
		}
	}
	return b.String()
}

// String renders the set as "{1, 5, 9}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	joininference "repro"
	"repro/internal/obs"
	"repro/internal/paperdata"
	"repro/internal/store"
)

// obsServer builds an httptest server with the full telemetry stack: a
// bundle, a JSON logger into a buffer, and a store (so the store latency
// segment fires too).
func obsServer(t *testing.T) (*httptest.Server, *Obs, *bytes.Buffer) {
	t.Helper()
	bundle := NewObs()
	logBuf := &bytes.Buffer{}
	m, err := NewManager(testRegistry(t), Options{
		Store:  store.NewMem(),
		Logger: obs.NewLogger(logBuf, "json", 0),
		Obs:    bundle,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return srv, bundle, logBuf
}

// TestObsEndToEnd drives a session over HTTP with telemetry attached and
// checks the whole pipeline: request ids correlate the response header,
// the access log and the trace spans; /metrics parses as Prometheus text
// exposition with the serving histograms populated; /debug/metrics stays
// backward-compatible JSON.
func TestObsEndToEnd(t *testing.T) {
	srv, bundle, logBuf := obsServer(t)
	client := srv.Client()
	inst := paperdata.FlightHotel()
	goal := flightGoal(t)

	var info Info
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions",
		Params{Instance: "flights", Strategy: joininference.StrategyL2S}, http.StatusCreated, &info)

	// One questions fetch with a client-supplied request id, to pin the
	// correlation end to end.
	req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/sessions/%s/questions?k=2", srv.URL, info.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "e2e-test-request")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var qr wireQuestions
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "e2e-test-request" {
		t.Fatalf("response request id = %q", got)
	}
	if len(qr.Questions) == 0 {
		t.Fatal("no questions")
	}

	// Drive to convergence so every segment (strategy, store) observes.
	var res AnswerResult
	doJSON(t, client, http.MethodPost, fmt.Sprintf("%s/sessions/%s/answers", srv.URL, info.ID),
		answersRequest{Answers: honestAnswers(inst, goal, qr.Questions)}, http.StatusOK, &res)
	driveHTTP(t, client, srv.URL, info.ID, inst, goal, 2)

	// The access log carries the pinned request id on exactly the one
	// request that sent it.
	reqLines := 0
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q", line)
		}
		if rec["request_id"] == "e2e-test-request" {
			reqLines++
			if rec["route"] != "GET /sessions/{id}/questions" {
				t.Errorf("pinned request logged route %v", rec["route"])
			}
		}
	}
	if reqLines != 1 {
		t.Errorf("pinned request id appeared in %d access-log lines, want 1", reqLines)
	}

	// All spans of the pinned request share its trace id, and the handler
	// span nests under the http root span.
	var httpSpan, sessSpan *obs.Span
	for _, s := range bundle.Tracer.Recent("", 0) {
		if s.Trace != "e2e-test-request" {
			continue
		}
		s := s
		switch {
		case strings.HasPrefix(s.Name, "http "):
			httpSpan = &s
		case s.Name == "session.questions":
			sessSpan = &s
		}
	}
	if httpSpan == nil || sessSpan == nil {
		t.Fatalf("pinned trace incomplete: http=%v session=%v", httpSpan, sessSpan)
	}
	if sessSpan.Parent != httpSpan.ID {
		t.Errorf("session span parent = %d, want http span id %d", sessSpan.Parent, httpSpan.ID)
	}
	if sessSpan.Session != info.ID {
		t.Errorf("session span session = %q, want %q", sessSpan.Session, info.ID)
	}

	// GET /debug/trace serves the same spans, filterable by session.
	var tr traceResponse
	doJSON(t, client, http.MethodGet, srv.URL+"/debug/trace?session="+info.ID, nil, http.StatusOK, &tr)
	if len(tr.Spans) == 0 || tr.Total == 0 {
		t.Fatalf("debug trace empty: %+v", tr)
	}
	for _, s := range tr.Spans {
		if s.Session != info.ID {
			t.Errorf("trace filter leaked span %+v", s)
		}
	}

	// GET /metrics: correct content type, and the serving histograms fired.
	mresp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE question_segment_seconds histogram",
		`question_segment_seconds_count{segment="strategy"}`,
		`question_segment_seconds_count{segment="store"}`,
		"# TYPE http_requests_total counter",
		`http_requests_total{route="GET /sessions/{id}/questions"}`,
		"# TYPE sessions_created_total counter",
		"sessions_created_total 1",
		"# TYPE questions_served_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(out, `question_segment_seconds_count{segment="strategy"} 0`) {
		t.Error("strategy segment histogram never observed")
	}
	if strings.Contains(out, `question_segment_seconds_count{segment="store"} 0`) {
		t.Error("store segment histogram never observed")
	}

	// /debug/metrics stays backward-compatible JSON.
	var met Metrics
	doJSON(t, client, http.MethodGet, srv.URL+"/debug/metrics", nil, http.StatusOK, &met)
	if met.SessionsCreated != 1 || met.QuestionsServed == 0 {
		t.Errorf("debug metrics: %+v", met)
	}
}

// TestObsPolicyCacheMetrics: with a shared policy cache and store tier,
// the cache-hit segment and page-in histogram observe, and the hit-ratio
// gauge renders.
func TestObsPolicyCacheMetrics(t *testing.T) {
	bundle := NewObs()
	kv := store.NewMem()
	pc := joininference.NewPolicyCache(-1)
	pc.AttachStore(kv, 0)
	m, err := NewManager(testRegistry(t), Options{PolicyCache: pc, Obs: bundle})
	if err != nil {
		t.Fatal(err)
	}
	goal := flightGoal(t)
	// Two identical sessions: the second is served from the policy cache.
	for i := 0; i < 2; i++ {
		info, err := m.Create(Params{Instance: "flights", Strategy: joininference.StrategyL2S})
		if err != nil {
			t.Fatal(err)
		}
		driveToDone(t, m, info.ID, goal, 1)
	}
	var buf strings.Builder
	if err := bundle.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "policy_cache_hit_ratio") {
		t.Errorf("missing hit-ratio gauge:\n%s", out)
	}
	if strings.Contains(out, `question_segment_seconds_count{segment="cache"} 0`) {
		t.Error("cache segment histogram never observed")
	}
	if st := pc.Stats(); st.Hits == 0 {
		t.Errorf("expected policy cache hits, got %+v", st)
	}
}

// TestObsStoreOpTimings: the store's Observe hook feeds store_op_seconds.
func TestObsStoreOpTimings(t *testing.T) {
	bundle := NewObs()
	dir := t.TempDir()
	kv, err := store.OpenLog(dir, store.LogOptions{Observe: bundle.StoreObserver()})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Sync(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := bundle.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `store_op_seconds_count{op="append"} 0`) || !strings.Contains(out, `store_op_seconds_count{op="append"}`) {
		t.Errorf("append timing not observed:\n%s", out)
	}
	if strings.Contains(out, `store_op_seconds_count{op="fsync"} 0`) {
		t.Errorf("fsync timing not observed:\n%s", out)
	}
}

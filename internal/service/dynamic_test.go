package service

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	joininference "repro"
	"repro/internal/paperdata"
	"repro/internal/store"
)

// answerSteps answers up to n questions of a managed session honestly, one
// at a time.
func answerSteps(t *testing.T, m *Manager, id string, goal joininference.Pred, n int) {
	t.Helper()
	ctx := context.Background()
	oracle := joininference.HonestOracle(goal)
	for i := 0; i < n; i++ {
		qs, err := m.Questions(ctx, id, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			return
		}
		l, err := oracle.Label(ctx, qs[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Answer(ctx, id, []Answer{{QuestionRef: qs[0].Ref(), Positive: bool(l)}}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestManagerIngestMigratesLiveSessions: a session answering across an
// ingest is carried onto the new version at its next question boundary,
// and asks the same remaining questions as a session resumed from its
// pre-ingest snapshot directly on the new version.
func TestManagerIngestMigratesLiveSessions(t *testing.T) {
	reg := testRegistry(t)
	m, err := NewManager(reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	goal := flightGoal(t)
	info, err := m.Create(Params{Instance: "flights", Strategy: joininference.StrategyBU})
	if err != nil {
		t.Fatal(err)
	}
	answerSteps(t, m, info.ID, goal, 2)
	snap, err := m.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}

	res, err := m.Ingest("flights", joininference.Delta{
		InsertR: []joininference.Tuple{{"NYC", "Lille", "BA"}},
		InsertP: []joininference.Tuple{{"Lille", "BA"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance != "flights" || res.Version != 1 || res.Classes == 0 {
		t.Fatalf("ingest result: %+v", res)
	}
	entry, err := reg.Get("flights")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Inst.Version() != 1 {
		t.Fatalf("registry serves version %d", entry.Inst.Version())
	}

	// The snapshot resumes directly on v1; the live session migrates lazily.
	// From here on both must ask bit-identical questions.
	snap.ID = "" // force a fresh id
	resumed, err := m.Resume(snap)
	if err != nil {
		t.Fatal(err)
	}
	migratedRefs := driveToDone(t, m, info.ID, goal, 1)
	resumedRefs := driveToDone(t, m, resumed.ID, goal, 1)
	if len(migratedRefs) != len(resumedRefs) {
		t.Fatalf("migrated asked %d questions, resumed %d", len(migratedRefs), len(resumedRefs))
	}
	for i := range migratedRefs {
		if migratedRefs[i] != resumedRefs[i] {
			t.Fatalf("question %d: migrated asks %v, resumed asks %v", i, migratedRefs[i], resumedRefs[i])
		}
	}

	met := m.Metrics()
	if met.DeltasIngested != 1 || met.Registry.Ingests != 1 {
		t.Fatalf("ingest counters: %+v", met)
	}
	if met.SessionsMigrated == 0 {
		t.Fatal("no session counted as migrated")
	}
}

// TestManagerIngestDeleteDropsAnswers: deleting rows a session already
// answered about drops those examples on migration; the session keeps
// serving and completes on the new data.
func TestManagerIngestDeleteDropsAnswers(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	goal := flightGoal(t)
	info, err := m.Create(Params{Instance: "flights", Strategy: joininference.StrategyBU})
	if err != nil {
		t.Fatal(err)
	}
	answerSteps(t, m, info.ID, goal, 3)
	if _, err := m.Ingest("flights", joininference.Delta{DeleteR: []int{0}, DeleteP: []int{0}}); err != nil {
		t.Fatal(err)
	}
	driveToDone(t, m, info.ID, goal, 2)
	p, err := m.Predicate(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done {
		t.Fatalf("session did not finish after a delete migration: %+v", p)
	}
}

// TestManagerIngestRetiresInconsistentSession: a semijoin positive whose
// last witness is deleted cannot follow the instance — the session is
// retired at its next question boundary and the caller sees the underlying
// ErrInconsistent.
func TestManagerIngestRetiresInconsistentSession(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	info, err := m.Create(Params{Instance: "ex21", Semijoin: true})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := m.Questions(ctx, info.ID, 1)
	if err != nil || len(qs) == 0 {
		t.Fatalf("questions: %v, %d", err, len(qs))
	}
	if _, err := m.Answer(ctx, info.ID, []Answer{{QuestionRef: qs[0].Ref(), Positive: true}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest("ex21", joininference.Delta{DeleteP: []int{0, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Questions(ctx, info.ID, 1); !errors.Is(err, joininference.ErrInconsistent) {
		t.Fatalf("migrating an orphaned positive: %v", err)
	}
	if _, err := m.Get(info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("retired session still resident: %v", err)
	}
	if met := m.Metrics(); met.SessionsRetired != 1 {
		t.Fatalf("retire counter: %+v", met)
	}
}

func TestManagerIngestRejectsBadDeltas(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest("nope", joininference.Delta{DeleteR: []int{0}}); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("unknown instance: %v", err)
	}
	// Wrong arity and out-of-range deletes are client errors.
	if _, err := m.Ingest("flights", joininference.Delta{InsertR: []joininference.Tuple{{"only-one"}}}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("arity mismatch: %v", err)
	}
	if _, err := m.Ingest("flights", joininference.Delta{DeleteR: []int{99}}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("out-of-range delete: %v", err)
	}
}

// TestRegistryBootReplaysDeltaLog is the restart path: a store-backed
// registry serves the cached instance without re-parsing when the cache is
// at the tip, and rolls a stale cache forward by replaying the delta log —
// as after a crash between the delta append and the cache write-back.
func TestRegistryBootReplaysDeltaLog(t *testing.T) {
	kv := store.NewMem()
	boot := func() *Registry {
		reg := NewRegistry()
		if err := reg.RegisterInstance("flights", paperdata.FlightHotel()); err != nil {
			t.Fatal(err)
		}
		reg.AttachStore(kv, nil)
		return reg
	}

	reg1 := boot()
	if _, err := reg1.Get("flights"); err != nil {
		t.Fatal(err)
	}
	if st := reg1.Stats(); st.Reparses != 1 || st.CacheHits != 0 {
		t.Fatalf("first boot: %+v", st)
	}
	upd, err := reg1.Ingest("flights", joininference.Delta{
		InsertR: []joininference.Tuple{{"NYC", "Lille", "BA"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Second boot: the cache was written back at the tip — no parse, no
	// replay.
	reg2 := boot()
	e2, err := reg2.Get("flights")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Inst.Version() != 1 {
		t.Fatalf("second boot serves version %d", e2.Inst.Version())
	}
	if st := reg2.Stats(); st.CacheHits != 1 || st.Reparses != 0 || st.DeltasReplayed != 0 {
		t.Fatalf("second boot: %+v", st)
	}
	if want := joininference.PrecomputeClasses(e2.Inst).Len(); e2.Classes.Len() != want {
		t.Fatalf("restored classes: %d, fresh compute %d", e2.Classes.Len(), want)
	}

	// Crash window: the delta reached the log but the cache write-back did
	// not. Boot must decode the stale cache and roll it forward.
	d2 := joininference.Delta{InsertP: []joininference.Tuple{{"Lille", "AA"}}}
	if err := store.AppendDelta(kv, "flights", 2, d2); err != nil {
		t.Fatal(err)
	}
	reg3 := boot()
	e3, err := reg3.Get("flights")
	if err != nil {
		t.Fatal(err)
	}
	if e3.Inst.Version() != 2 {
		t.Fatalf("third boot serves version %d", e3.Inst.Version())
	}
	if st := reg3.Stats(); st.CacheHits != 1 || st.Reparses != 0 || st.DeltasReplayed != 1 {
		t.Fatalf("third boot: %+v", st)
	}
	// The rolled-forward state matches what a live ingest chain produced.
	fresh, err := joininference.ApplyDelta(upd.To, upd.Classes, d2)
	if err != nil {
		t.Fatal(err)
	}
	if e3.Classes.Len() != fresh.Classes.Len() {
		t.Fatalf("replayed classes: %d, live chain %d", e3.Classes.Len(), fresh.Classes.Len())
	}
}

// TestRegistryBootCorruptDeltaLogSticks: a corrupt delta log is the only
// record of ingested rows — serving without it would fork history, so the
// slot must fail (and keep failing) instead of falling back to the source.
func TestRegistryBootCorruptDeltaLogSticks(t *testing.T) {
	kv := store.NewMem()
	reg1 := NewRegistry()
	if err := reg1.RegisterInstance("flights", paperdata.FlightHotel()); err != nil {
		t.Fatal(err)
	}
	reg1.AttachStore(kv, nil)
	if _, err := reg1.Ingest("flights", joininference.Delta{
		InsertR: []joininference.Tuple{{"NYC", "Lille", "BA"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(store.DeltaKey("flights", 1), []byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	// The cache is at the tip here, so corruption only bites when the log
	// must actually replay — strip the cache to force it.
	if err := kv.Delete(store.RegistryKey("flights")); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry()
	if err := reg2.RegisterInstance("flights", paperdata.FlightHotel()); err != nil {
		t.Fatal(err)
	}
	reg2.AttachStore(kv, nil)
	if _, err := reg2.Get("flights"); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("corrupt log served: %v", err)
	}
	if _, err := reg2.Get("flights"); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("slot error not sticky: %v", err)
	}
}

// TestHTTPIngest exercises POST /instances/{id}/rows and the new metrics
// fields end to end.
func TestHTTPIngest(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := srv.Client()

	var res IngestResult
	doJSON(t, client, "POST", srv.URL+"/instances/flights/rows",
		map[string]any{"insert_r": [][]string{{"NYC", "Lille", "BA"}}, "insert_p": [][]string{{"Lille", "BA"}}},
		200, &res)
	if res.Version != 1 || res.Classes == 0 {
		t.Fatalf("ingest response: %+v", res)
	}
	doJSON(t, client, "POST", srv.URL+"/instances/nope/rows",
		map[string]any{"delete_r": []int{0}}, 404, nil)
	doJSON(t, client, "POST", srv.URL+"/instances/flights/rows",
		map[string]any{"insert_r": [][]string{{"wrong-arity"}}}, 400, nil)
	doJSON(t, client, "POST", srv.URL+"/instances/flights/rows",
		map[string]any{"delete_p": []int{99}}, 400, nil)

	var met Metrics
	doJSON(t, client, "GET", srv.URL+"/debug/metrics", nil, 200, &met)
	if met.DeltasIngested != 1 || met.Registry.Ingests != 1 {
		t.Fatalf("metrics after ingest: %+v", met)
	}
}

// TestConcurrentIngestAndAnswering runs sessions and ingests concurrently;
// under -race this is the proof that the versioned registry, lazy session
// migration and policy-cache migration are safe together.
func TestConcurrentIngestAndAnswering(t *testing.T) {
	reg := testRegistry(t)
	m, err := NewManager(reg, Options{PolicyCache: joininference.NewPolicyCache(0)})
	if err != nil {
		t.Fatal(err)
	}
	goal := flightGoal(t)
	const ingests = 12

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			ctx := context.Background()
			oracle := joininference.HonestOracle(goal)
			for {
				select {
				case <-stop:
					return
				default:
				}
				info, err := m.Create(Params{Instance: "flights", Strategy: joininference.StrategyBU, Seed: seed})
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				for {
					qs, err := m.Questions(ctx, info.ID, 2)
					if err != nil {
						// A concurrent ingest can retire the session between
						// calls; anything else is a bug.
						if errors.Is(err, joininference.ErrInconsistent) || errors.Is(err, ErrSessionNotFound) {
							break
						}
						t.Errorf("questions: %v", err)
						return
					}
					if len(qs) == 0 {
						if err := m.Delete(info.ID); err != nil && !errors.Is(err, ErrSessionNotFound) {
							t.Errorf("delete: %v", err)
						}
						break
					}
					answers := make([]Answer, len(qs))
					for i, q := range qs {
						l, err := oracle.Label(ctx, q)
						if err != nil {
							t.Errorf("oracle: %v", err)
							return
						}
						answers[i] = Answer{QuestionRef: q.Ref(), Positive: bool(l)}
					}
					if _, err := m.Answer(ctx, info.ID, answers); err != nil {
						if errors.Is(err, joininference.ErrInconsistent) || errors.Is(err, ErrSessionNotFound) {
							break
						}
						t.Errorf("answer: %v", err)
						return
					}
				}
			}
		}(int64(w + 1))
	}

	for i := 0; i < ingests; i++ {
		_, err := m.Ingest("flights", joininference.Delta{
			InsertR: []joininference.Tuple{{fmt.Sprintf("City%d", i), "NYC", "AA"}},
			InsertP: []joininference.Tuple{{fmt.Sprintf("City%d", i), "AF"}},
		})
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	met := m.Metrics()
	if met.DeltasIngested != ingests || met.Registry.Ingests != ingests {
		t.Fatalf("ingest counters: %+v", met)
	}
	entry, err := reg.Get("flights")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Inst.Version() != ingests {
		t.Fatalf("final version %d, want %d", entry.Inst.Version(), ingests)
	}
}

package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	joininference "repro"
	"repro/internal/obs"
	"repro/internal/store"
)

// Service snapshot binary form, the record the store keeps per session:
//
//	"JSRV" | 1B version | uvarint len(id) | id | uvarint len(instance) |
//	instance | binary root snapshot (joininference.AppendBinary)
//
// The id is embedded (not only implied by the key) so a record is
// self-describing and survives being copied between stores.
var serviceSnapMagic = []byte("JSRV")

const serviceSnapVersion = 1

// maxServiceSnapName bounds the id/instance strings in a record.
const maxServiceSnapName = 4096

// encodeServiceSnapshot builds the binary store record for a session.
func encodeServiceSnapshot(snap *SessionSnapshot) []byte {
	buf := append([]byte(nil), serviceSnapMagic...)
	buf = append(buf, serviceSnapVersion)
	buf = binary.AppendUvarint(buf, uint64(len(snap.ID)))
	buf = append(buf, snap.ID...)
	buf = binary.AppendUvarint(buf, uint64(len(snap.Instance)))
	buf = append(buf, snap.Instance...)
	return snap.Snapshot.AppendBinary(buf)
}

// decodeServiceSnapshot parses either wire form of a service snapshot:
// the binary store record (by magic) or the legacy JSON file body. Errors
// wrap joininference.ErrBadSnapshot.
func decodeServiceSnapshot(data []byte) (*SessionSnapshot, error) {
	if !strings.HasPrefix(string(data), string(serviceSnapMagic)) {
		var snap SessionSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("%w: %v", joininference.ErrBadSnapshot, err)
		}
		if snap.Snapshot == nil {
			return nil, fmt.Errorf("%w: service snapshot without session state", joininference.ErrBadSnapshot)
		}
		if err := snap.Snapshot.Validate(); err != nil {
			return nil, err
		}
		return &snap, nil
	}
	b := data[len(serviceSnapMagic):]
	if len(b) == 0 || b[0] != serviceSnapVersion {
		return nil, fmt.Errorf("%w: service snapshot container version", joininference.ErrBadSnapshot)
	}
	b = b[1:]
	id, b, err := readLenString(b)
	if err != nil {
		return nil, err
	}
	instance, b, err := readLenString(b)
	if err != nil {
		return nil, err
	}
	sn, err := joininference.DecodeBinarySnapshot(b)
	if err != nil {
		return nil, err
	}
	return &SessionSnapshot{ID: id, Instance: instance, Snapshot: sn}, nil
}

func readLenString(b []byte) (string, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > maxServiceSnapName || uint64(len(b)-w) < n {
		return "", nil, fmt.Errorf("%w: bad string in service snapshot", joininference.ErrBadSnapshot)
	}
	return string(b[w : w+int(n)]), b[w+int(n):], nil
}

// MigratePersistDir converts a legacy JSON persist dir into the store:
// every *.json session file is decoded, re-encoded binary, written to the
// store, and renamed to *.json.migrated so the next boot does not redo it
// (renaming also keeps a stale JSON copy from shadowing newer store state).
// Files that do not decode are left in place and logged, never fatal. It
// returns how many sessions were migrated.
func MigratePersistDir(kv store.KV, dir string, log *slog.Logger) (int, error) {
	log = obs.OrDiscard(log)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("service: reading persist dir: %w", err)
	}
	migrated := 0
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		path := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			log.Warn("migrating session file failed", "path", path, "err", err)
			continue
		}
		snap, err := decodeServiceSnapshot(data)
		if err != nil {
			log.Warn("migrating session file failed", "path", path, "err", err)
			continue
		}
		if !validID(snap.ID) {
			log.Warn("migrating session file failed: malformed id", "path", path, "id", snap.ID)
			continue
		}
		if err := kv.Put(store.SessionKey(snap.ID), encodeServiceSnapshot(snap)); err != nil {
			return migrated, fmt.Errorf("service: migrating %s: %w", path, err)
		}
		if err := os.Rename(path, path+".migrated"); err != nil {
			log.Warn("marking session file migrated failed", "path", path, "err", err)
		}
		migrated++
	}
	if migrated > 0 {
		if err := kv.Sync(); err != nil {
			return migrated, fmt.Errorf("service: syncing store after migration: %w", err)
		}
	}
	return migrated, nil
}

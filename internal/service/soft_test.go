package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	joininference "repro"
)

// driveSoft answers a soft managed session with a 4-worker panel per
// question — mallory always wrong, the rest honest — until no questions
// remain, returning how many questions were asked.
func driveSoft(t *testing.T, m *Manager, id string, goal joininference.Pred) int {
	t.Helper()
	ctx := context.Background()
	oracle := joininference.HonestOracle(goal)
	asked := 0
	for rounds := 0; ; rounds++ {
		if rounds > 1000 {
			t.Fatal("soft session did not converge")
		}
		qs, err := m.Questions(ctx, id, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			return asked
		}
		var answers []Answer
		for _, q := range qs {
			asked++
			l, err := oracle.Label(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			truth := bool(l)
			answers = append(answers,
				Answer{QuestionRef: q.Ref(), Positive: !truth, Worker: "mallory"},
				Answer{QuestionRef: q.Ref(), Positive: truth, Worker: "alice"},
				Answer{QuestionRef: q.Ref(), Positive: truth, Worker: "bob"},
				Answer{QuestionRef: q.Ref(), Positive: truth, Worker: "carol"},
			)
		}
		if _, err := m.Answer(ctx, id, answers); err != nil {
			t.Fatal(err)
		}
	}
}

// TestManagerSoftSession drives a soft session end to end through the
// manager: per-worker votes aggregate under the belief threshold, the crowd
// metrics attribute every vote, Explain reports attributions, and a
// snapshot resume carries the soft parameters.
func TestManagerSoftSession(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(Params{
		Instance: "flights", Strategy: joininference.StrategyTD,
		SoftThreshold: 2, ErrorBudget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Soft == nil || !info.Soft.Enabled || info.Soft.Threshold != 2 || info.Soft.ErrorBudget != 2 {
		t.Fatalf("fresh soft info: %+v", info.Soft)
	}

	driveSoft(t, m, info.ID, flightGoal(t))

	final, err := m.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done {
		t.Fatalf("session not done: %+v", final)
	}
	if final.Soft == nil || final.Soft.Votes == 0 {
		t.Fatalf("final soft stats: %+v", final.Soft)
	}

	ex, err := m.Explain(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Attributions) != final.Asked {
		t.Fatalf("explain has %d attributions, session committed %d answers",
			len(ex.Attributions), final.Asked)
	}
	if ex.Soft == nil || !ex.Soft.Enabled {
		t.Fatalf("explain soft stats: %+v", ex.Soft)
	}
	for _, a := range ex.Attributions {
		if len(a.Workers) == 0 {
			t.Fatalf("attribution %+v has no worker votes", a.Ref)
		}
	}

	met := m.Metrics()
	if met.Crowd == nil {
		t.Fatal("crowd metrics absent after soft commits")
	}
	if met.Crowd.Commits != int64(final.Asked) {
		t.Errorf("crowd commits = %d, want %d", met.Crowd.Commits, final.Asked)
	}
	if met.Crowd.Votes != int64(4*final.Asked) {
		t.Errorf("crowd votes = %d, want %d", met.Crowd.Votes, 4*final.Asked)
	}
	byWorker := make(map[string]WorkerCounters, len(met.Crowd.Workers))
	for _, w := range met.Crowd.Workers {
		byWorker[w.Worker] = w
	}
	if w := byWorker["mallory"]; w.Votes != int64(final.Asked) || w.Agreed != 0 {
		t.Errorf("mallory counters = %+v, want %d votes and 0 agreed", w, final.Asked)
	}
	if w := byWorker["alice"]; w.Votes != int64(final.Asked) || w.Agreed != int64(final.Asked) {
		t.Errorf("alice counters = %+v, want %d votes all agreed", w, final.Asked)
	}

	// A snapshot carries the soft layer: resuming restores the threshold,
	// budget, and vote evidence.
	snap, err := m.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
	resumed, err := m.Resume(snap)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Soft == nil || !resumed.Soft.Enabled || resumed.Soft.Threshold != 2 ||
		resumed.Soft.ErrorBudget != 2 || resumed.Soft.Votes != final.Soft.Votes {
		t.Fatalf("resumed soft stats: %+v, want %+v", resumed.Soft, final.Soft)
	}
	ex2, err := m.Explain(resumed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex2.Attributions) != len(ex.Attributions) {
		t.Fatalf("resumed explain has %d attributions, want %d", len(ex2.Attributions), len(ex.Attributions))
	}
}

// TestHTTPExplainAndCrowdMetrics exercises the wire form: the explain
// endpoint serves attributions plus soft counters, and /debug/metrics
// exposes the per-worker crowd section.
func TestHTTPExplainAndCrowdMetrics(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := srv.Client()

	var info Info
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions", createRequest{Params: Params{
		Instance: "flights", Strategy: joininference.StrategyBU,
		SoftThreshold: 2, ErrorBudget: 1,
	}}, http.StatusCreated, &info)

	driveSoft(t, m, info.ID, flightGoal(t))

	var ex Explanation
	doJSON(t, client, http.MethodGet, fmt.Sprintf("%s/sessions/%s/explain", srv.URL, info.ID),
		nil, http.StatusOK, &ex)
	if ex.ID != info.ID || len(ex.Attributions) == 0 || ex.Soft == nil {
		t.Fatalf("explain response: id=%q attributions=%d soft=%+v", ex.ID, len(ex.Attributions), ex.Soft)
	}

	var met Metrics
	doJSON(t, client, http.MethodGet, srv.URL+"/debug/metrics", nil, http.StatusOK, &met)
	if met.Crowd == nil || met.Crowd.Commits == 0 || len(met.Crowd.Workers) != 4 {
		t.Fatalf("crowd metrics over HTTP: %+v", met.Crowd)
	}

	// A hard session has no explain-breaking state: the endpoint still
	// serves attributions, with no soft section.
	var hard Info
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions", createRequest{Params: Params{
		Instance: "flights", Strategy: joininference.StrategyBU,
	}}, http.StatusCreated, &hard)
	driveToDone(t, m, hard.ID, flightGoal(t), 2)
	var hardEx Explanation
	doJSON(t, client, http.MethodGet, fmt.Sprintf("%s/sessions/%s/explain", srv.URL, hard.ID),
		nil, http.StatusOK, &hardEx)
	if len(hardEx.Attributions) == 0 || hardEx.Soft != nil {
		t.Fatalf("hard explain response: attributions=%d soft=%+v", len(hardEx.Attributions), hardEx.Soft)
	}

	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/nope/explain", nil, http.StatusNotFound, nil)
}

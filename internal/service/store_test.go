package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	joininference "repro"
	"repro/internal/paperdata"
	"repro/internal/store"
)

func ex21Goal(t *testing.T) joininference.Pred {
	t.Helper()
	u := joininference.NewSemijoinSession(paperdata.Example21()).Universe()
	goal, err := joininference.PredFromNames(u, [2]string{"A1", "B2"})
	if err != nil {
		t.Fatal(err)
	}
	return goal
}

// driveN answers the first n questions of a managed session honestly,
// returning their refs in order.
func driveN(t *testing.T, m *Manager, id string, goal joininference.Pred, k, n int) []joininference.QuestionRef {
	t.Helper()
	ctx := context.Background()
	oracle := joininference.HonestOracle(goal)
	var refs []joininference.QuestionRef
	for len(refs) < n {
		qs, err := m.Questions(ctx, id, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			return refs
		}
		answers := make([]Answer, len(qs))
		for i, q := range qs {
			l, err := oracle.Label(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			answers[i] = Answer{QuestionRef: q.Ref(), Positive: bool(l)}
			refs = append(refs, q.Ref())
		}
		if _, err := m.Answer(ctx, id, answers); err != nil {
			t.Fatal(err)
		}
	}
	return refs
}

// TestManagerStoreRestartDifferential is the acceptance proof for
// store-backed persistence: for every strategy, join and semijoin sessions,
// and Workers ∈ {1, 4}, a session interrupted by a full server restart —
// manager closed, log backend closed and reopened from disk — resumes with
// bit-identical remaining questions to the uninterrupted reference.
func TestManagerStoreRestartDifferential(t *testing.T) {
	for _, id := range joininference.KnownStrategies() {
		for _, semijoin := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%s/semijoin=%v/workers=%d", id, semijoin, workers)
				t.Run(name, func(t *testing.T) {
					instance, goal := "flights", flightGoal(t)
					if semijoin {
						instance, goal = "ex21", ex21Goal(t)
					}
					params := Params{
						Instance: instance, Semijoin: semijoin,
						Strategy: id, Seed: 7, Parallelism: workers,
					}
					// Uninterrupted reference.
					ref0, err := NewManager(testRegistry(t), Options{})
					if err != nil {
						t.Fatal(err)
					}
					info, err := ref0.Create(params)
					if err != nil {
						t.Fatal(err)
					}
					ref := driveToDone(t, ref0, info.ID, goal, 2)

					// Interrupted run over a real on-disk store.
					dir := t.TempDir()
					kv, err := store.OpenLog(dir, store.LogOptions{})
					if err != nil {
						t.Fatal(err)
					}
					m1, err := NewManager(testRegistry(t), Options{Store: kv})
					if err != nil {
						t.Fatal(err)
					}
					info, err = m1.Create(params)
					if err != nil {
						t.Fatal(err)
					}
					got := driveN(t, m1, info.ID, goal, 2, 2)
					if err := m1.Close(context.Background()); err != nil {
						t.Fatal(err)
					}
					if err := kv.Close(); err != nil {
						t.Fatal(err)
					}

					// Full restart: reopen the log, rebuild the manager, and
					// finish the session under its original id.
					kv2, err := store.OpenLog(dir, store.LogOptions{})
					if err != nil {
						t.Fatal(err)
					}
					defer kv2.Close()
					m2, err := NewManager(testRegistry(t), Options{Store: kv2})
					if err != nil {
						t.Fatal(err)
					}
					restored, err := m2.Get(info.ID)
					if err != nil {
						t.Fatalf("session %s not restored: %v", info.ID, err)
					}
					if restored.Asked != len(got) {
						t.Fatalf("restored at %d answers, want %d", restored.Asked, len(got))
					}
					got = append(got, driveToDone(t, m2, info.ID, goal, 2)...)
					if len(got) != len(ref) {
						t.Fatalf("%d questions across the restart, want %d\n got %v\nwant %v", len(got), len(ref), got, ref)
					}
					for i := range ref {
						if got[i] != ref[i] {
							t.Fatalf("question %d = %+v, want %+v", i, got[i], ref[i])
						}
					}
				})
			}
		}
	}
}

// TestManagerStoreKill9: store-backed sessions write through on create and
// on every applied answer, so a hard crash — no Close, no eviction, no
// Sync — loses nothing that was acked. Simulated by copying the log file
// bytes mid-run and restarting from the copy: those bytes are exactly what
// a kill -9 leaves on disk.
func TestManagerStoreKill9(t *testing.T) {
	goal := flightGoal(t)
	params := Params{Instance: "flights", Strategy: joininference.StrategyL2S, Seed: 7}

	ref0, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ref0.Create(params)
	if err != nil {
		t.Fatal(err)
	}
	ref := driveToDone(t, ref0, info.ID, goal, 2)

	dir := t.TempDir()
	kv, err := store.OpenLog(dir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	m1, err := NewManager(testRegistry(t), Options{Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	info, err = m1.Create(params)
	if err != nil {
		t.Fatal(err)
	}
	got := driveN(t, m1, info.ID, goal, 2, 2)

	// The crash: neither the manager nor the log is closed — the on-disk
	// bytes at this instant are all a restart gets.
	data, err := os.ReadFile(filepath.Join(dir, "store.log"))
	if err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "store.log"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	kv2, err := store.OpenLog(dir2, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	m2, err := NewManager(testRegistry(t), Options{Store: kv2})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := m2.Get(info.ID)
	if err != nil {
		t.Fatalf("session %s lost in the crash: %v", info.ID, err)
	}
	if restored.Asked != len(got) {
		t.Fatalf("restored at %d answers, want %d", restored.Asked, len(got))
	}
	got = append(got, driveToDone(t, m2, info.ID, goal, 2)...)
	if len(got) != len(ref) {
		t.Fatalf("%d questions across the crash, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("question %d = %+v, want %+v", i, got[i], ref[i])
		}
	}
}

// TestMigratePersistDir: a legacy JSON persist dir converts into the store
// on boot, the restored session continues bit-identically, the consumed
// files are renamed so the next boot is idempotent, and legacy JSON
// snapshots keep restoring through the store path.
func TestMigratePersistDir(t *testing.T) {
	goal := flightGoal(t)
	params := Params{Instance: "flights", Strategy: joininference.StrategyL2S, Seed: 3}

	// Reference, uninterrupted.
	ref0, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := ref0.Create(params)
	if err != nil {
		t.Fatal(err)
	}
	ref := driveToDone(t, ref0, info.ID, goal, 1)

	// Legacy deployment: JSON persist dir, interrupted mid-session.
	dir := t.TempDir()
	m1, err := NewManager(testRegistry(t), Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	info, err = m1.Create(params)
	if err != nil {
		t.Fatal(err)
	}
	got := driveN(t, m1, info.ID, goal, 1, 2)
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID+".json")); err != nil {
		t.Fatalf("legacy JSON snapshot missing: %v", err)
	}

	// New deployment: store plus -migrate-persist-dir.
	kv := store.NewMem()
	m2, err := NewManager(testRegistry(t), Options{Store: kv, MigratePersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, driveToDone(t, m2, info.ID, goal, 1)...)
	if len(got) != len(ref) {
		t.Fatalf("%d questions across migration, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("question %d = %+v, want %+v", i, got[i], ref[i])
		}
	}
	// The consumed file was renamed, so a second migrating boot finds
	// nothing to do and the store's (newer) state wins.
	if _, err := os.Stat(filepath.Join(dir, info.ID+".json")); !os.IsNotExist(err) {
		t.Errorf("JSON file still present after migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID+".json.migrated")); err != nil {
		t.Errorf("migrated marker missing: %v", err)
	}
	n, err := MigratePersistDir(kv, dir, nil)
	if err != nil || n != 0 {
		t.Errorf("second migration moved %d sessions (err %v), want 0", n, err)
	}
}

// TestStoreRestoresLegacyJSONRecord: a store record holding the legacy JSON
// body (not the binary form) still restores — the compatibility path for
// records written by hand or by older tooling.
func TestStoreRestoresLegacyJSONRecord(t *testing.T) {
	goal := flightGoal(t)
	m0, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m0.Create(Params{Instance: "flights", Strategy: joininference.StrategyBU})
	if err != nil {
		t.Fatal(err)
	}
	driveN(t, m0, info.ID, goal, 1, 2)
	snap, err := m0.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	kv := store.NewMem()
	if err := kv.Put(store.SessionKey(snap.ID), data); err != nil {
		t.Fatal(err)
	}
	m1, err := NewManager(testRegistry(t), Options{Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := m1.Get(snap.ID)
	if err != nil {
		t.Fatalf("JSON store record not restored: %v", err)
	}
	if restored.Asked != 2 {
		t.Errorf("restored at %d answers, want 2", restored.Asked)
	}
}

// TestStoreCorruptSessionRecordSkipped: one corrupt session record must not
// take boot down or poison other sessions.
func TestStoreCorruptSessionRecordSkipped(t *testing.T) {
	kv := store.NewMem()
	m0, err := NewManager(testRegistry(t), Options{Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m0.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatal(err)
	}
	driveN(t, m0, info.ID, flightGoal(t), 1, 1)
	if err := m0.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(store.SessionKey("deadbeefdeadbeef"), []byte("JSRV garbage")); err != nil {
		t.Fatal(err)
	}
	m1, err := NewManager(testRegistry(t), Options{Store: kv})
	if err != nil {
		t.Fatalf("boot failed on a corrupt record: %v", err)
	}
	if _, err := m1.Get(info.ID); err != nil {
		t.Errorf("healthy session lost: %v", err)
	}
	if _, err := m1.Get("deadbeefdeadbeef"); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("corrupt session served: %v", err)
	}
}

// TestStoreDeleteEvictedSession: deleting a session that lives only as a
// store record removes the record, so it does not resurrect on reboot.
func TestStoreDeleteEvictedSession(t *testing.T) {
	kv := store.NewMem()
	now := time.Now()
	clock := func() time.Time { return now }
	m, err := NewManager(testRegistry(t), Options{Store: kv, TTL: time.Minute, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if n := m.SweepExpired(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, ok, _ := kv.Get(store.SessionKey(info.ID)); !ok {
		t.Fatal("evicted session not persisted to the store")
	}
	if err := m.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := kv.Get(store.SessionKey(info.ID)); ok {
		t.Error("deleted session's record survived")
	}
	m2, err := NewManager(testRegistry(t), Options{Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Get(info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("deleted session resurrected: %v", err)
	}
}

// TestManagerMetricsIncludeStore: /debug/metrics payloads carry the store's
// counters once a store is configured.
func TestManagerMetricsIncludeStore(t *testing.T) {
	kv := store.NewMem()
	m, err := NewManager(testRegistry(t), Options{Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatal(err)
	}
	driveN(t, m, info.ID, flightGoal(t), 1, 1)
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	met := m.Metrics()
	if met.Store == nil {
		t.Fatal("metrics omit the store section")
	}
	if met.Store.Puts == 0 || met.Store.Keys == 0 {
		t.Errorf("store counters empty: %+v", met.Store)
	}
	data, err := json.Marshal(met)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["store"]; !ok {
		t.Errorf("metrics JSON missing store key: %s", data)
	}
	// Without a store the section is omitted entirely.
	m2, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Metrics().Store != nil {
		t.Error("storeless manager reports store metrics")
	}
}

// TestRegistryStoreCache: with a store attached, an instance loads from its
// source exactly once across registry rebuilds — later boots decode the
// cached record — and a corrupt record falls back to the source.
func TestRegistryStoreCache(t *testing.T) {
	kv := store.NewMem()
	loads := 0
	newReg := func() *Registry {
		reg := NewRegistry()
		if err := reg.Register("flights", func() (*joininference.Instance, error) {
			loads++
			return paperdata.FlightHotel(), nil
		}); err != nil {
			t.Fatal(err)
		}
		reg.AttachStore(kv, nil)
		return reg
	}
	e1, err := newReg().Get("flights")
	if err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("first boot loaded %d times", loads)
	}
	// Second boot: served from the store, the source never runs.
	e2, err := newReg().Get("flights")
	if err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("second boot re-loaded the source (%d loads)", loads)
	}
	// The cached entry drives sessions identically to the source-loaded one.
	goal := flightGoal(t)
	seq := func(e *Entry) []joininference.QuestionRef {
		m := NewRegistry()
		if err := m.RegisterInstance("i", e.Inst); err != nil {
			t.Fatal(err)
		}
		mgr, err := NewManager(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		info, err := mgr.Create(Params{Instance: "i", Strategy: joininference.StrategyL2S})
		if err != nil {
			t.Fatal(err)
		}
		return driveToDone(t, mgr, info.ID, goal, 1)
	}
	a, b := seq(e1), seq(e2)
	if len(a) != len(b) {
		t.Fatalf("cached entry asks %d questions, source entry %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("question %d diverged: %+v vs %+v", i, b[i], a[i])
		}
	}
	// Corrupt record: fall back to the source and overwrite the record.
	if err := kv.Put(store.RegistryKey("flights"), []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := newReg().Get("flights"); err != nil {
		t.Fatal(err)
	}
	if loads != 2 {
		t.Fatalf("corrupt record did not fall back to the source (%d loads)", loads)
	}
	if _, err := newReg().Get("flights"); err != nil {
		t.Fatal(err)
	}
	if loads != 2 {
		t.Fatal("fallback did not rewrite the cache record")
	}
}

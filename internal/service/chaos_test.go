package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	joininference "repro"
	"repro/internal/paperdata"
	"repro/internal/resilience"
	"repro/internal/store"
)

// readyStatus fetches GET /readyz and returns its HTTP status.
func readyStatus(t *testing.T, client *http.Client, base string) int {
	t.Helper()
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// waitReady polls /readyz until it reports want (200 or 503) or the
// deadline passes.
func waitReady(t *testing.T, client *http.Client, base string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if got := readyStatus(t, client, base); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz did not reach %d within %v", want, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// questionRound plays one question/answer round for a session over HTTP:
// fetch up to k questions, answer them honestly, and return the refs
// asked (nil when the session is done). Every request must succeed — the
// resilience machinery absorbs store faults; they never surface to
// clients as errors.
func questionRound(t *testing.T, client *http.Client, base, id string, inst *joininference.Instance, goal joininference.Pred, k int) []joininference.QuestionRef {
	t.Helper()
	var qr wireQuestions
	doJSON(t, client, http.MethodGet, fmt.Sprintf("%s/sessions/%s/questions?k=%d", base, id, k), nil, http.StatusOK, &qr)
	if qr.Done {
		return nil
	}
	answers := honestAnswers(inst, goal, qr.Questions)
	var res AnswerResult
	doJSON(t, client, http.MethodPost, fmt.Sprintf("%s/sessions/%s/answers", base, id), answersRequest{Answers: answers}, http.StatusOK, &res)
	refs := make([]joininference.QuestionRef, len(answers))
	for i, a := range answers {
		refs[i] = a.QuestionRef
	}
	return refs
}

// TestChaosSoak is the resilience soak (run it under -race): N concurrent
// sessions served over HTTP while the store misbehaves — transient
// errors, latency spikes, torn writes, then a full outage and recovery.
// The invariants:
//
//   - no request ever fails: store faults degrade persistence, never
//     serving (and the middleware records zero recovered panics);
//   - question sequences are bit-identical to a fault-free run — faults
//     touch durability only, not inference;
//   - the outage trips the breaker and /readyz turns 503 (degraded);
//     clearing it recovers the breaker and /readyz, visibly in metrics;
//   - after a clean shutdown every session restores from the store, done,
//     with its full transcript.
func TestChaosSoak(t *testing.T) {
	n, faultRounds := 16, 2
	if testing.Short() {
		n, faultRounds = 6, 1
	}
	const k = 2

	inner := store.NewMem()
	fault := store.NewFault(inner, store.FaultConfig{
		Seed:          42,
		ErrorRate:     0.10,
		LatencyRate:   0.05,
		Latency:       200 * time.Microsecond,
		TornWriteRate: 0.05,
	})
	fault.SetEnabled(false) // phase 0 and boot restore run clean
	kv := store.NewRetry(fault, store.RetryOptions{
		Attempts: 2,
		Base:     100 * time.Microsecond,
		Max:      time.Millisecond,
	})
	breaker := resilience.NewBreaker(resilience.BreakerOptions{Threshold: 3, Cooloff: 50 * time.Millisecond})
	pc := joininference.NewPolicyCache(8 << 20)
	pc.AttachStore(kv, 0, joininference.WithTierBreaker(breaker))
	bundle := NewObs()
	m, err := NewManager(testRegistry(t), Options{
		Store:          kv,
		StoreBreaker:   breaker,
		PolicyCache:    pc,
		MaxConcurrent:  8,
		MaxQueue:       64,
		RequestTimeout: time.Minute,
		Obs:            bundle,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := srv.Client()
	inst := paperdata.FlightHotel()
	goal := flightGoal(t)

	strategies := []joininference.StrategyID{
		joininference.StrategyBU, joininference.StrategyTD,
		joininference.StrategyL1S, joininference.StrategyL2S,
		joininference.StrategyRND,
	}
	params := make([]Params, n)
	ids := make([]string, n)
	refs := make([][]joininference.QuestionRef, n)
	for i := range params {
		params[i] = Params{Instance: "flights", Strategy: strategies[i%len(strategies)], Seed: int64(i + 1)}
		var info Info
		doJSON(t, client, http.MethodPost, srv.URL+"/sessions", createRequest{Params: params[i]}, http.StatusCreated, &info)
		ids[i] = info.ID
	}

	// concurrentRound plays one round for every session in parallel.
	concurrentRound := func() {
		var wg sync.WaitGroup
		for i := range ids {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				refs[i] = append(refs[i], questionRound(t, client, srv.URL, ids[i], inst, goal, k)...)
			}(i)
		}
		wg.Wait()
	}

	// Phase 0: one clean round, store healthy.
	concurrentRound()
	if got := readyStatus(t, client, srv.URL); got != http.StatusOK {
		t.Fatalf("/readyz = %d while healthy, want 200", got)
	}

	// Phase 1: faults on (errors, latency spikes, torn writes) — serving
	// must not notice.
	fault.SetEnabled(true)
	for r := 0; r < faultRounds; r++ {
		concurrentRound()
	}

	// Phase 2: full outage. Answers still succeed (RAM is the source of
	// truth), persists queue behind the tripped breaker, /readyz degrades.
	fault.SetConfig(store.FaultConfig{Seed: 43, ErrorRate: 1})
	concurrentRound()
	waitReady(t, client, srv.URL, http.StatusServiceUnavailable, 5*time.Second)

	// Phase 3: outage over — the write-behind worker's retries are the
	// half-open probes; the breaker closes, the queue drains, /readyz
	// recovers, and the trip/recovery are visible in metrics.
	fault.SetEnabled(false)
	waitReady(t, client, srv.URL, http.StatusOK, 10*time.Second)
	res := m.Metrics().Resilience
	if res == nil || res.BreakerTrips < 1 || res.BreakerRecoveries < 1 {
		t.Fatalf("breaker trip/recovery not visible in metrics: %+v", res)
	}

	// Phase 4: original fault profile back on; drive every session to
	// completion.
	fault.SetConfig(store.FaultConfig{
		Seed:          42,
		ErrorRate:     0.10,
		LatencyRate:   0.05,
		Latency:       200 * time.Microsecond,
		TornWriteRate: 0.05,
	})
	fault.SetEnabled(true)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				round := questionRound(t, client, srv.URL, ids[i], inst, goal, k)
				if round == nil {
					return
				}
				refs[i] = append(refs[i], round...)
			}
		}(i)
	}
	wg.Wait()

	// Faults never surfaced: every request above demanded 200/201, and the
	// middleware recovered no panics.
	if p := bundle.HTTP.Panics.Value(); p != 0 {
		t.Errorf("middleware recovered %d panics, want 0", p)
	}

	// Bit-identical question sequences: replay every session on a clean
	// manager (no store, no faults) with the same params and batching.
	ref, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range params {
		info, err := ref.Create(params[i])
		if err != nil {
			t.Fatal(err)
		}
		want := driveToDone(t, ref, info.ID, goal, k)
		if len(refs[i]) != len(want) {
			t.Fatalf("session %d (%s): %d questions under faults, %d clean", i, params[i].Strategy, len(refs[i]), len(want))
		}
		for j := range want {
			if refs[i][j] != want[j] {
				t.Fatalf("session %d (%s): question %d = %v under faults, %v clean", i, params[i].Strategy, j, refs[i][j], want[j])
			}
		}
	}

	// Clean shutdown (faults off, as joinserve does) must drain the
	// write-behind queue; a fresh manager over the same store then
	// restores every session, done, with its full transcript.
	fault.SetEnabled(false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("shutdown drain failed: %v", err)
	}
	m2, err := NewManager(testRegistry(t), Options{Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	for i, id := range ids {
		info, err := m2.Get(id)
		if err != nil {
			t.Fatalf("session %d lost across restart: %v", i, err)
		}
		if !info.Done || info.Asked != len(refs[i]) {
			t.Errorf("session %d restored done=%v asked=%d, want done=true asked=%d", i, info.Done, info.Asked, len(refs[i]))
		}
	}
}

// TestAdmissionControl429: a saturated route sheds with 429 + Retry-After
// instead of queueing without bound.
func TestAdmissionControl429(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{MaxConcurrent: 1, MaxQueue: 0})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := srv.Client()

	info, err := m.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatal(err)
	}

	// Hold the route's only slot, then hit it over HTTP.
	release, err := m.gateFor(routeQuestions).Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Get(srv.URL + "/sessions/" + info.ID + "/questions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated route = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if shed := m.gateFor(routeQuestions).Shed(); shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}

	// Releasing the slot restores service; other routes were never gated
	// by this one.
	release()
	var qr wireQuestions
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/"+info.ID+"/questions", nil, http.StatusOK, &qr)
	if len(qr.Questions) == 0 {
		t.Error("no questions after release")
	}
}

// TestRequestTimeout503: an expired server-side deadline answers 503 +
// Retry-After, not a hung request.
func TestRequestTimeout503(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{RequestTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := srv.Client()

	info, err := m.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Get(srv.URL + "/sessions/" + info.ID + "/questions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestHalfOpenProbeBusyDoesNotWedge: while the breaker is half-open, the
// persist worker's probe can land on a session that is mid-operation
// (TryLock fails → persistBusy). That probe never reaches the store, so
// it must be released — the regression was probing=true leaking, wedging
// the breaker half-open permanently: persists queued forever and /readyz
// stayed 503 until restart. persistBusy is likely during an outage since
// sessions are actively locked while answering.
func TestHalfOpenProbeBusyDoesNotWedge(t *testing.T) {
	inner := store.NewMem()
	fault := store.NewFault(inner, store.FaultConfig{Seed: 11, ErrorRate: 1})
	fault.SetEnabled(false)
	breaker := resilience.NewBreaker(resilience.BreakerOptions{Threshold: 1, Cooloff: 5 * time.Millisecond})
	m, err := NewManager(testRegistry(t), Options{Store: fault, StoreBreaker: breaker})
	if err != nil {
		t.Fatal(err)
	}

	// A dead store trips the threshold-1 breaker on the create write-through
	// and queues the session for write-behind retry.
	fault.SetEnabled(true)
	info, err := m.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatalf("create must survive a dead store: %v", err)
	}

	// Hold the session's lock across several cooloffs: every half-open
	// probe the worker takes hits persistBusy while the store stays dead,
	// then heals mid-hold.
	m.mu.Lock()
	ms := m.sessions[info.ID]
	m.mu.Unlock()
	ms.mu.Lock()
	time.Sleep(50 * time.Millisecond)
	fault.SetEnabled(false)
	ms.mu.Unlock()

	// With the session unlocked and the store healed, the next probe must
	// close the breaker and drain the queue.
	deadline := time.Now().Add(5 * time.Second)
	for breaker.State() != resilience.BreakerClosed || m.pq.depth() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker wedged: state=%v queue_depth=%d", breaker.State(), m.pq.depth())
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestReadyzTransitions walks /readyz through healthy → degraded →
// recovered as the store fails and heals.
func TestReadyzTransitions(t *testing.T) {
	inner := store.NewMem()
	fault := store.NewFault(inner, store.FaultConfig{Seed: 7, ErrorRate: 1})
	fault.SetEnabled(false)
	breaker := resilience.NewBreaker(resilience.BreakerOptions{Threshold: 1, Cooloff: 20 * time.Millisecond})
	m, err := NewManager(testRegistry(t), Options{Store: fault, StoreBreaker: breaker})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := srv.Client()

	if got := readyStatus(t, client, srv.URL); got != http.StatusOK {
		t.Fatalf("healthy /readyz = %d, want 200", got)
	}

	// Break the store; the next persist (session create writes through)
	// trips the threshold-1 breaker and degrades readiness.
	fault.SetEnabled(true)
	if _, err := m.Create(Params{Instance: "flights"}); err != nil {
		t.Fatalf("create must survive a dead store: %v", err)
	}
	waitReady(t, client, srv.URL, http.StatusServiceUnavailable, 5*time.Second)

	// Heal it; the write-behind worker's probe closes the breaker and
	// drains the queue.
	fault.SetEnabled(false)
	waitReady(t, client, srv.URL, http.StatusOK, 10*time.Second)
}

package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	joininference "repro"
)

const minute = time.Minute

// TestManagerSharedPolicyCache: sessions created through one manager share
// the policy cache per instance — the first pays for the strategy, later
// ones (and resumed ones) hit, and all ask bit-identical sequences.
func TestManagerSharedPolicyCache(t *testing.T) {
	goal := flightGoal(t)
	params := Params{Instance: "flights", Strategy: joininference.StrategyL2S}

	// Reference sequence from a cache-less manager.
	plain, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := plain.Create(params)
	if err != nil {
		t.Fatal(err)
	}
	want := driveToDone(t, plain, info.ID, goal, 2)

	cache := joininference.NewPolicyCache(0)
	m, err := NewManager(testRegistry(t), Options{PolicyCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Create(params)
	if err != nil {
		t.Fatal(err)
	}
	got := driveToDone(t, m, first.ID, goal, 2)
	if len(got) != len(want) {
		t.Fatalf("cold cached session asked %d questions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cold cached question %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	before := cache.Stats()
	second, err := m.Create(params)
	if err != nil {
		t.Fatal(err)
	}
	got = driveToDone(t, m, second.ID, goal, 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("warm cached question %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	after := cache.Stats()
	if after.Hits == before.Hits {
		t.Error("second session over the same instance never hit the shared cache")
	}
	if after.Misses != before.Misses {
		t.Errorf("second session missed %d times on an unbounded warm cache", after.Misses-before.Misses)
	}
}

// TestManagerPolicyCacheConcurrent exercises the shared cache under
// concurrent managed sessions (run with -race).
func TestManagerPolicyCacheConcurrent(t *testing.T) {
	goal := flightGoal(t)
	cache := joininference.NewPolicyCache(0)
	m, err := NewManager(testRegistry(t), Options{PolicyCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := joininference.KnownStrategies()[w%len(joininference.KnownStrategies())]
			info, err := m.Create(Params{Instance: "flights", Strategy: id, Seed: 3})
			if err != nil {
				t.Error(err)
				return
			}
			driveToDone(t, m, info.ID, goal, 2)
		}(w)
	}
	wg.Wait()
	if st := cache.Stats(); st.Publishes == 0 {
		t.Error("no nodes published by concurrent sessions")
	}
}

// TestManagerPolicyCacheWarm precomputes through the manager and checks a fresh
// session starts on pure hits.
func TestManagerPolicyCacheWarm(t *testing.T) {
	goal := flightGoal(t)
	cache := joininference.NewPolicyCache(0)
	m, err := NewManager(testRegistry(t), Options{PolicyCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	const depth = 2
	n, err := m.WarmPolicy(context.Background(), Params{Instance: "flights", Strategy: joininference.StrategyL2S}, depth)
	if err != nil {
		t.Fatal(err)
	}
	if n < depth {
		t.Fatalf("warmed %d nodes, want ≥ %d", n, depth)
	}
	before := cache.Stats()
	info, err := m.Create(Params{Instance: "flights", Strategy: joininference.StrategyL2S})
	if err != nil {
		t.Fatal(err)
	}
	driveToDone(t, m, info.ID, goal, 1)
	if hits := cache.Stats().Hits - before.Hits; hits < depth {
		t.Errorf("post-warm session hit %d times, want ≥ %d", hits, depth)
	}

	// Warm requests that cannot be served fail loudly.
	if _, err := m.WarmPolicy(context.Background(), Params{Instance: "flights", Semijoin: true}, 2); err == nil {
		t.Error("semijoin warm accepted")
	}
	if _, err := m.WarmPolicy(context.Background(), Params{Instance: "nope"}, 2); err == nil {
		t.Error("unknown instance warm accepted")
	}
	plain, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.WarmPolicy(context.Background(), Params{Instance: "flights"}, 2); err == nil {
		t.Error("warm without a cache accepted")
	}
}

// TestMetricsEndpoint drives the HTTP handler and checks the counters the
// /debug/metrics endpoint reports.
func TestMetricsEndpoint(t *testing.T) {
	goal := flightGoal(t)
	cache := joininference.NewPolicyCache(0)
	m, err := NewManager(testRegistry(t), Options{PolicyCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	for i := 0; i < 2; i++ {
		info, err := m.Create(Params{Instance: "flights", Strategy: joininference.StrategyTD})
		if err != nil {
			t.Fatal(err)
		}
		driveToDone(t, m, info.ID, goal, 1)
	}
	resp, err := http.Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var met Metrics
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	if met.SessionsLive != 2 || met.SessionsCreated != 2 {
		t.Errorf("sessions live=%d created=%d, want 2/2", met.SessionsLive, met.SessionsCreated)
	}
	if met.QuestionsServed == 0 || met.AnswersApplied == 0 {
		t.Errorf("questions=%d answers=%d, want > 0", met.QuestionsServed, met.AnswersApplied)
	}
	if met.PolicyCache == nil {
		t.Fatal("no policy cache stats reported")
	}
	if met.PolicyCache.Publishes == 0 {
		t.Error("policy cache saw no publishes")
	}
	if met.PolicyCache.Hits == 0 {
		t.Error("second TD session should have hit the shared cache")
	}
}

// TestMetricsOmitsCacheWhenDisabled: without a configured cache the
// metrics document must not claim one.
func TestMetricsOmitsCacheWhenDisabled(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if met := m.Metrics(); met.PolicyCache != nil {
		t.Errorf("policy cache stats reported without a cache: %+v", met.PolicyCache)
	}
}

// TestJanitorIntervalResolution covers the configurable sweep interval.
func TestJanitorIntervalResolution(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{TTL: 40 * minute}, "1m0s"},                            // capped
		{Options{TTL: 2 * minute}, "30s"},                              // ttl/4
		{Options{TTL: 40 * minute, SweepInterval: 5 * minute}, "5m0s"}, // explicit
	}
	for _, tc := range cases {
		if got := tc.opts.JanitorInterval().String(); got != tc.want {
			t.Errorf("JanitorInterval(%+v) = %s, want %s", tc.opts, got, tc.want)
		}
	}
}

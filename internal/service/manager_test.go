package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	joininference "repro"
	"repro/internal/paperdata"
)

// testRegistry returns a registry with the paper's running examples: the
// flight/hotel join instance and the Example 2.1 semijoin instance.
func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if err := reg.RegisterInstance("flights", paperdata.FlightHotel()); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterInstance("ex21", paperdata.Example21()); err != nil {
		t.Fatal(err)
	}
	return reg
}

func flightGoal(t *testing.T) joininference.Pred {
	t.Helper()
	u := joininference.NewSession(paperdata.FlightHotel()).Universe()
	goal, err := joininference.PredFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if err != nil {
		t.Fatal(err)
	}
	return goal
}

// driveToDone answers a managed session honestly until no questions remain,
// returning the refs of every applied question in order.
func driveToDone(t *testing.T, m *Manager, id string, goal joininference.Pred, k int) []joininference.QuestionRef {
	t.Helper()
	ctx := context.Background()
	oracle := joininference.HonestOracle(goal)
	var refs []joininference.QuestionRef
	for {
		qs, err := m.Questions(ctx, id, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			return refs
		}
		answers := make([]Answer, len(qs))
		for i, q := range qs {
			l, err := oracle.Label(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			answers[i] = Answer{QuestionRef: q.Ref(), Positive: bool(l)}
			refs = append(refs, q.Ref())
		}
		if _, err := m.Answer(ctx, id, answers); err != nil {
			t.Fatal(err)
		}
	}
}

func TestManagerLifecycle(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(Params{Instance: "flights", Strategy: joininference.StrategyL2S})
	if err != nil {
		t.Fatal(err)
	}
	if info.Done || info.Asked != 0 || info.Classes == 0 {
		t.Fatalf("fresh session info: %+v", info)
	}
	goal := flightGoal(t)
	driveToDone(t, m, info.ID, goal, 2)
	p, err := m.Predicate(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done {
		t.Error("session should be done")
	}
	u := joininference.NewSession(paperdata.FlightHotel()).Universe()
	if p.Predicate != goal.Format(u) {
		t.Errorf("inferred %q, want %q", p.Predicate, goal.Format(u))
	}
	if p.SQL == "" {
		t.Error("empty SQL rendering")
	}
	snap, err := m.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Instance != "flights" || snap.Snapshot.Asked != p.Asked {
		t.Errorf("snapshot %+v inconsistent with predicate info %+v", snap, p)
	}
	if err := m.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("want ErrSessionNotFound after delete, got %v", err)
	}
}

func TestManagerSemijoinSession(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(Params{Instance: "ex21", Semijoin: true})
	if err != nil {
		t.Fatal(err)
	}
	u := joininference.NewSemijoinSession(paperdata.Example21()).Universe()
	goal, err := joininference.PredFromNames(u, [2]string{"A1", "B2"})
	if err != nil {
		t.Fatal(err)
	}
	refs := driveToDone(t, m, info.ID, goal, 2)
	if len(refs) == 0 {
		t.Fatal("no questions asked")
	}
	for _, r := range refs {
		if !r.Semijoin() {
			t.Errorf("join ref %v from a semijoin session", r)
		}
	}
	p, err := m.Predicate(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done {
		t.Error("semijoin session should be done")
	}
}

func TestManagerRejectsBadCreates(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(Params{Instance: "no-such"}); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("want ErrUnknownInstance, got %v", err)
	}
	if _, err := m.Create(Params{Instance: "flights", Strategy: "BOGUS"}); !errors.Is(err, joininference.ErrUnknownStrategy) {
		t.Errorf("want ErrUnknownStrategy, got %v", err)
	}
	// A snapshot naming a strategy this build does not know must be
	// rejected at resume, not turned into a session that 400s forever.
	if _, err := m.Resume(&SessionSnapshot{Instance: "flights", Snapshot: &joininference.Snapshot{
		Version: joininference.SnapshotVersion, Kind: joininference.SnapshotKindJoin, Strategy: "L3S",
	}}); !errors.Is(err, joininference.ErrUnknownStrategy) {
		t.Errorf("want ErrUnknownStrategy on resume, got %v", err)
	}
}

// TestResumeSanitizesHostileID: a client-supplied id is a filesystem path
// component under -persist-dir, so anything but the 16-hex newID shape is
// replaced with a fresh id instead of reaching filepath.Join.
func TestResumeSanitizesHostileID(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(testRegistry(t), Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Resume(&SessionSnapshot{
		ID:       "../../tmp/evil",
		Instance: "flights",
		Snapshot: &joininference.Snapshot{Version: joininference.SnapshotVersion, Kind: joininference.SnapshotKindJoin},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "../../tmp/evil" || !validID(info.ID) {
		t.Errorf("hostile id survived as %q", info.ID)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID+".json")); err != nil {
		t.Errorf("session not persisted under the sanitized id: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "..", "..", "tmp", "evil.json")); err == nil {
		t.Error("snapshot escaped the persist dir")
	}
}

// TestDeleteEvictedSessionRemovesSnapshot: DELETE on a session that only
// exists as a TTL-evicted file on disk removes the file so it cannot
// resurrect on the next boot.
func TestDeleteEvictedSessionRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	m, err := NewManager(testRegistry(t), Options{TTL: time.Minute, PersistDir: dir, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if n := m.SweepExpired(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if err := m.Delete(info.ID); err != nil {
		t.Fatalf("deleting an evicted-to-disk session: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID+".json")); !os.IsNotExist(err) {
		t.Errorf("snapshot file survived delete: %v", err)
	}
	m2, err := NewManager(testRegistry(t), Options{PersistDir: dir, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Get(info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("deleted session resurrected: %v", err)
	}
}

// TestAnswerBatchRejectsBadRefUpfront: a malformed ref rejects the whole
// batch before any answer is recorded.
func TestAnswerBatchRejectsBadRefUpfront(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	qs, err := m.Questions(ctx, info.ID, 1)
	if err != nil || len(qs) == 0 {
		t.Fatalf("questions: %v, %d", err, len(qs))
	}
	batch := []Answer{
		{QuestionRef: qs[0].Ref(), Positive: true},
		{QuestionRef: joininference.QuestionRef{RIndex: 99, PIndex: 99}, Positive: true},
	}
	res, err := m.Answer(ctx, info.ID, batch)
	if err == nil {
		t.Fatal("batch with a malformed ref accepted")
	}
	if res.Applied != 0 {
		t.Errorf("applied %d answers before rejecting the batch, want 0", res.Applied)
	}
	got, err := m.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Asked != 0 {
		t.Errorf("session recorded %d answers from a rejected batch", got.Asked)
	}
}

// TestManagerConcurrentAccess exercises the per-session locking under the
// race detector: goroutines driving their own sessions in parallel, plus
// several goroutines hammering one shared session (where answers may
// legitimately be skipped as already-decided).
func TestManagerConcurrentAccess(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	goal := flightGoal(t)
	ctx := context.Background()
	oracle := joininference.HonestOracle(goal)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			info, err := m.Create(Params{Instance: "flights", Seed: int64(n), Strategy: joininference.StrategyRND})
			if err != nil {
				t.Error(err)
				return
			}
			for {
				qs, err := m.Questions(ctx, info.ID, 2)
				if err != nil || len(qs) == 0 {
					if err != nil {
						t.Error(err)
					}
					return
				}
				answers := make([]Answer, len(qs))
				for j, q := range qs {
					l, _ := oracle.Label(ctx, q)
					answers[j] = Answer{QuestionRef: q.Ref(), Positive: bool(l)}
				}
				if _, err := m.Answer(ctx, info.ID, answers); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}

	shared, err := m.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				qs, err := m.Questions(ctx, shared.ID, 2)
				if err != nil || len(qs) == 0 {
					if err != nil {
						t.Error(err)
					}
					return
				}
				answers := make([]Answer, len(qs))
				for j, q := range qs {
					l, _ := oracle.Label(ctx, q)
					answers[j] = Answer{QuestionRef: q.Ref(), Positive: bool(l)}
				}
				// Races between answerers are expected to skip; only real
				// failures are errors.
				if _, err := m.Answer(ctx, shared.ID, answers); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	p, err := m.Predicate(shared.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done {
		t.Error("shared session not done after concurrent drive")
	}
	u := joininference.NewSession(paperdata.FlightHotel()).Universe()
	if p.Predicate != goal.Format(u) {
		t.Errorf("concurrent drive inferred %q, want %q", p.Predicate, goal.Format(u))
	}
}

func TestTTLEvictionPersistsAndRestores(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	m, err := NewManager(testRegistry(t), Options{TTL: time.Minute, PersistDir: dir, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatal(err)
	}
	goal := flightGoal(t)
	ctx := context.Background()
	oracle := joininference.HonestOracle(goal)
	qs, err := m.Questions(ctx, info.ID, 1)
	if err != nil || len(qs) == 0 {
		t.Fatalf("questions: %v, %d", err, len(qs))
	}
	l, _ := oracle.Label(ctx, qs[0])
	if _, err := m.Answer(ctx, info.ID, []Answer{{QuestionRef: qs[0].Ref(), Positive: bool(l)}}); err != nil {
		t.Fatal(err)
	}

	if n := m.SweepExpired(); n != 0 {
		t.Fatalf("swept %d fresh sessions", n)
	}
	advance(2 * time.Minute)
	if n := m.SweepExpired(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if _, err := m.Get(info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("evicted session still present: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID+".json")); err != nil {
		t.Fatalf("no persisted snapshot: %v", err)
	}

	// A fresh manager over the same dir restores the session, answers
	// intact.
	m2, err := NewManager(testRegistry(t), Options{PersistDir: dir, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Asked != 1 {
		t.Errorf("restored session has %d answers, want 1", got.Asked)
	}
}

// TestPersistRestoreDeterminism is the acceptance differential through the
// service layer: a session driven halfway, persisted via Close, restored by
// a new manager and driven on asks bit-identical remaining questions and
// infers the same predicate as an uninterrupted manager-driven session.
func TestPersistRestoreDeterminism(t *testing.T) {
	goal := flightGoal(t)
	u := joininference.NewSession(paperdata.FlightHotel()).Universe()
	for _, strat := range []joininference.StrategyID{joininference.StrategyL2S, joininference.StrategyRND} {
		t.Run(string(strat), func(t *testing.T) {
			params := Params{Instance: "flights", Strategy: strat, Seed: 11}

			mFull, err := NewManager(testRegistry(t), Options{})
			if err != nil {
				t.Fatal(err)
			}
			full, err := mFull.Create(params)
			if err != nil {
				t.Fatal(err)
			}
			fullRefs := driveToDone(t, mFull, full.ID, goal, 1)
			if len(fullRefs) < 2 {
				t.Fatalf("want ≥ 2 questions, got %d", len(fullRefs))
			}
			fullPred, err := mFull.Predicate(full.ID)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			ctx := context.Background()
			oracle := joininference.HonestOracle(goal)
			mA, err := NewManager(testRegistry(t), Options{PersistDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			interrupted, err := mA.Create(params)
			if err != nil {
				t.Fatal(err)
			}
			half := len(fullRefs) / 2
			var prefix []joininference.QuestionRef
			for len(prefix) < half {
				qs, err := mA.Questions(ctx, interrupted.ID, 1)
				if err != nil || len(qs) == 0 {
					t.Fatalf("questions: %v, %d", err, len(qs))
				}
				l, _ := oracle.Label(ctx, qs[0])
				if _, err := mA.Answer(ctx, interrupted.ID, []Answer{{QuestionRef: qs[0].Ref(), Positive: bool(l)}}); err != nil {
					t.Fatal(err)
				}
				prefix = append(prefix, qs[0].Ref())
			}
			if err := mA.Close(ctx); err != nil {
				t.Fatal(err)
			}

			mB, err := NewManager(testRegistry(t), Options{PersistDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			rest := driveToDone(t, mB, interrupted.ID, goal, 1)
			got := append(append([]joininference.QuestionRef(nil), prefix...), rest...)
			if len(got) != len(fullRefs) {
				t.Fatalf("restored run asked %d questions, uninterrupted %d", len(got), len(fullRefs))
			}
			for i := range got {
				if got[i] != fullRefs[i] {
					t.Fatalf("question %d diverged: %v vs %v", i, got[i], fullRefs[i])
				}
			}
			restoredPred, err := mB.Predicate(interrupted.ID)
			if err != nil {
				t.Fatal(err)
			}
			if restoredPred.Predicate != fullPred.Predicate {
				t.Errorf("restored predicate %q ≠ uninterrupted %q", restoredPred.Predicate, fullPred.Predicate)
			}
			if restoredPred.Predicate != goal.Format(u) {
				t.Errorf("restored predicate %q ≠ goal %q", restoredPred.Predicate, goal.Format(u))
			}
		})
	}
}

func TestManagerClosedRefusesWork(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(Params{Instance: "flights"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(info.ID); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
	if _, err := m.Create(Params{Instance: "flights"}); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed on create, got %v", err)
	}
	if err := m.Close(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("second close: want ErrClosed, got %v", err)
	}
}

func TestRegistryLazyAndConcurrent(t *testing.T) {
	loads := 0
	reg := NewRegistry()
	if err := reg.Register("lazy", func() (*joininference.Instance, error) {
		loads++
		return paperdata.FlightHotel(), nil
	}); err != nil {
		t.Fatal(err)
	}
	if loads != 0 {
		t.Fatal("source ran at registration time")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := reg.Get("lazy"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if loads != 1 {
		t.Errorf("source ran %d times, want 1", loads)
	}
	if err := reg.Register("lazy", nil); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := reg.Get("missing"); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("want ErrUnknownInstance, got %v", err)
	}
}

package service

import (
	"context"
	"fmt"
	"testing"

	joininference "repro"
	"repro/internal/paperdata"
)

// BenchmarkSessionManager measures service throughput: each iteration
// creates a session through the manager and drives it to convergence with
// honest answers (create + N×(questions, answer) + predicate). The
// parallel variants model concurrent users hitting one manager; T-classes
// are precomputed once in the registry, so the per-session cost is the
// question loop itself.
func BenchmarkSessionManager(b *testing.B) {
	inst := paperdata.FlightHotel()
	u := joininference.NewSession(inst).Universe()
	goal, err := joininference.PredFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if err != nil {
		b.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.RegisterInstance("flights", inst); err != nil {
		b.Fatal(err)
	}
	if _, err := reg.Get("flights"); err != nil { // pay class precompute up front
		b.Fatal(err)
	}
	oracle := joininference.HonestOracle(goal)
	ctx := context.Background()

	drive := func(m *Manager) error {
		info, err := m.Create(Params{Instance: "flights", Strategy: joininference.StrategyTD})
		if err != nil {
			return err
		}
		for {
			qs, err := m.Questions(ctx, info.ID, 2)
			if err != nil {
				return err
			}
			if len(qs) == 0 {
				break
			}
			answers := make([]Answer, len(qs))
			for i, q := range qs {
				l, err := oracle.Label(ctx, q)
				if err != nil {
					return err
				}
				answers[i] = Answer{QuestionRef: q.Ref(), Positive: bool(l)}
			}
			if _, err := m.Answer(ctx, info.ID, answers); err != nil {
				return err
			}
		}
		if _, err := m.Predicate(info.ID); err != nil {
			return err
		}
		return m.Delete(info.ID)
	}

	b.Run("serial", func(b *testing.B) {
		m, err := NewManager(reg, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := drive(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, par := range []int{4, 16} {
		b.Run(fmt.Sprintf("parallel%d", par), func(b *testing.B) {
			m, err := NewManager(reg, Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetParallelism(par)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := drive(m); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	joininference "repro"
	"repro/internal/obs"
	"repro/internal/paperdata"
)

// BenchmarkObs measures the telemetry tax on warm L2S serving. The http
// pair is the headline number: each iteration drives one session to
// convergence through the real handler stack (mux, middleware, JSON
// codec), once with no telemetry ("off") and once fully instrumented —
// metrics, per-segment histograms, HTTP middleware metrics and an active
// tracer ("on"). The manager pair strips the HTTP layer and measures the
// bare per-call floor of the span + histogram instrumentation, which is
// proportionally larger only because a warm in-process drive is a few
// microseconds of work. BENCH_obs.json records both; the ≤5% serving
// budget applies to the http pair.
func BenchmarkObs(b *testing.B) {
	inst := paperdata.FlightHotel()
	u := joininference.NewSession(inst).Universe()
	goal, err := joininference.PredFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if err != nil {
		b.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.RegisterInstance("flights", inst); err != nil {
		b.Fatal(err)
	}
	if _, err := reg.Get("flights"); err != nil { // pay class precompute up front
		b.Fatal(err)
	}
	oracle := joininference.HonestOracle(goal)
	ctx := context.Background()

	driveManager := func(m *Manager) error {
		info, err := m.Create(Params{Instance: "flights", Strategy: joininference.StrategyL2S})
		if err != nil {
			return err
		}
		for {
			qs, err := m.Questions(ctx, info.ID, 2)
			if err != nil {
				return err
			}
			if len(qs) == 0 {
				break
			}
			answers := make([]Answer, len(qs))
			for i, q := range qs {
				l, err := oracle.Label(ctx, q)
				if err != nil {
					return err
				}
				answers[i] = Answer{QuestionRef: q.Ref(), Positive: bool(l)}
			}
			if _, err := m.Answer(ctx, info.ID, answers); err != nil {
				return err
			}
		}
		return m.Delete(info.ID)
	}

	do := func(h http.Handler, method, path string, body any, out any) error {
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				return err
			}
		}
		req := httptest.NewRequest(method, path, &buf)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code/100 != 2 {
			return fmt.Errorf("%s %s: status %d: %s", method, path, rec.Code, rec.Body.String())
		}
		if out != nil {
			return json.Unmarshal(rec.Body.Bytes(), out)
		}
		return nil
	}

	driveHandler := func(h http.Handler) error {
		var info Info
		if err := do(h, http.MethodPost, "/sessions",
			Params{Instance: "flights", Strategy: joininference.StrategyL2S}, &info); err != nil {
			return err
		}
		for {
			var qr wireQuestions
			if err := do(h, http.MethodGet, "/sessions/"+info.ID+"/questions?k=2", nil, &qr); err != nil {
				return err
			}
			if len(qr.Questions) == 0 {
				break
			}
			var res AnswerResult
			if err := do(h, http.MethodPost, "/sessions/"+info.ID+"/answers",
				answersRequest{Answers: honestAnswers(inst, goal, qr.Questions)}, &res); err != nil {
				return err
			}
		}
		return do(h, http.MethodDelete, "/sessions/"+info.ID, nil, nil)
	}

	fullBundle := func() *Obs {
		bundle := NewObs()
		bundle.Tracer = obs.NewTracer(0)
		return bundle
	}

	b.Run("http/off", func(b *testing.B) {
		m, err := NewManager(reg, Options{})
		if err != nil {
			b.Fatal(err)
		}
		h := NewHandler(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := driveHandler(h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http/on", func(b *testing.B) {
		m, err := NewManager(reg, Options{Obs: fullBundle()})
		if err != nil {
			b.Fatal(err)
		}
		h := NewHandler(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := driveHandler(h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("manager/off", func(b *testing.B) {
		m, err := NewManager(reg, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := driveManager(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("manager/on", func(b *testing.B) {
		m, err := NewManager(reg, Options{Obs: fullBundle()})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := driveManager(m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	joininference "repro"
	"repro/internal/paperdata"
	"repro/internal/resilience"
	"repro/internal/store"
)

// BenchmarkResilience measures what the resilience machinery costs when
// everything is healthy — the only regime where its overhead matters.
// Each iteration drives one warm L2S session to convergence through the
// real handler stack against an in-memory store. "off" is the bare
// manager; "gate+breaker" adds per-route admission gates and the circuit
// breaker on the persist path and the policy tier (the budgeted pair:
// ≤2% when healthy); "full" adds the store retry wrapper and the
// per-request deadline, whose timer context is the one real allocation
// cost (~4 allocs/request). BENCH_resilience.json records all three —
// compare variants across alternating single-variant runs, not within
// one process, or heap carry-over skews the later ones.
func BenchmarkResilience(b *testing.B) {
	inst := paperdata.FlightHotel()
	u := joininference.NewSession(inst).Universe()
	goal, err := joininference.PredFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if err != nil {
		b.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.RegisterInstance("flights", inst); err != nil {
		b.Fatal(err)
	}
	if _, err := reg.Get("flights"); err != nil { // pay class precompute up front
		b.Fatal(err)
	}

	do := func(h http.Handler, method, path string, body any, out any) error {
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				return err
			}
		}
		req := httptest.NewRequest(method, path, &buf)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code/100 != 2 {
			return fmt.Errorf("%s %s: status %d: %s", method, path, rec.Code, rec.Body.String())
		}
		if out != nil {
			return json.Unmarshal(rec.Body.Bytes(), out)
		}
		return nil
	}
	driveHandler := func(h http.Handler) error {
		var info Info
		if err := do(h, http.MethodPost, "/sessions",
			Params{Instance: "flights", Strategy: joininference.StrategyL2S}, &info); err != nil {
			return err
		}
		for {
			var qr wireQuestions
			if err := do(h, http.MethodGet, "/sessions/"+info.ID+"/questions?k=2", nil, &qr); err != nil {
				return err
			}
			if len(qr.Questions) == 0 {
				break
			}
			var res AnswerResult
			if err := do(h, http.MethodPost, "/sessions/"+info.ID+"/answers",
				answersRequest{Answers: honestAnswers(inst, goal, qr.Questions)}, &res); err != nil {
				return err
			}
		}
		return do(h, http.MethodDelete, "/sessions/"+info.ID, nil, nil)
	}

	run := func(b *testing.B, opts Options) {
		m, err := NewManager(reg, opts)
		if err != nil {
			b.Fatal(err)
		}
		h := NewHandler(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := driveHandler(h); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("http/off", func(b *testing.B) {
		kv := store.NewMem()
		pc := joininference.NewPolicyCache(8 << 20)
		pc.AttachStore(kv, 0)
		run(b, Options{Store: kv, PolicyCache: pc})
	})
	b.Run("http/gate+breaker", func(b *testing.B) {
		kv := store.NewMem()
		breaker := resilience.NewBreaker(resilience.BreakerOptions{})
		pc := joininference.NewPolicyCache(8 << 20)
		pc.AttachStore(kv, 0, joininference.WithTierBreaker(breaker))
		run(b, Options{
			Store:         kv,
			StoreBreaker:  breaker,
			PolicyCache:   pc,
			MaxConcurrent: 64,
			MaxQueue:      64,
		})
	})
	b.Run("http/full", func(b *testing.B) {
		kv := store.NewRetry(store.NewMem(), store.RetryOptions{Attempts: 3})
		breaker := resilience.NewBreaker(resilience.BreakerOptions{})
		pc := joininference.NewPolicyCache(8 << 20)
		pc.AttachStore(kv, 0, joininference.WithTierBreaker(breaker))
		run(b, Options{
			Store:          kv,
			StoreBreaker:   breaker,
			PolicyCache:    pc,
			RequestTimeout: time.Minute,
			MaxConcurrent:  64,
			MaxQueue:       64,
		})
	})
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	joininference "repro"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// NewHandler mounts the manager's operations as an HTTP/JSON API:
//
//	POST   /sessions                  create a session ({"instance": ...,
//	                                  "strategy": ..., ...}) or resume one
//	                                  ({"snapshot": <service snapshot>})
//	GET    /sessions                  list sessions
//	GET    /sessions/{id}             session status
//	GET    /sessions/{id}/questions?k=N   up to N pairwise-informative
//	                                  questions for parallel crowd dispatch
//	POST   /sessions/{id}/answers     {"answers": [{"r":..,"p":..,"positive":..}]}
//	GET    /sessions/{id}/predicate   current inferred predicate (text + SQL)
//	GET    /sessions/{id}/explain     per-answer Banzhaf attribution scores
//	                                  ("why this join?") plus soft-layer
//	                                  counters for error-tolerant sessions
//	GET    /sessions/{id}/snapshot    durable snapshot (resumable elsewhere)
//	DELETE /sessions/{id}             discard the session
//	GET    /instances                 registered instance names
//	POST   /instances/{id}/rows       ingest one delta ({"insert_r": [[..]],
//	                                  "insert_p": [[..]], "delete_r": [..],
//	                                  "delete_p": [..]}) — the instance moves
//	                                  to its next version, T-classes and live
//	                                  sessions follow incrementally
//	GET    /healthz                   liveness
//	GET    /readyz                    readiness: store breaker position,
//	                                  write-behind queue depth, registry and
//	                                  restore health; 503 while degraded
//	GET    /debug/metrics             operational counters (sessions
//	                                  live/created/evicted, questions
//	                                  served, deltas ingested, sessions
//	                                  migrated/retired, policy-cache
//	                                  hits/misses, registry cache hits vs
//	                                  re-parses, per-worker crowd
//	                                  reliability counters)
//	GET    /metrics                   the same plus latency histograms, in
//	                                  Prometheus text exposition (only with
//	                                  Options.Obs)
//	GET    /debug/trace?session=&limit=  recently finished trace spans,
//	                                  oldest first, plus per-operation
//	                                  latency percentiles (only with
//	                                  Options.Obs)
//
// The whole mux is wrapped in the telemetry middleware: every request gets
// a request id (X-Request-ID accepted in, always set on the response), an
// access-log line, a per-route latency histogram, a root trace span, and
// panic recovery. Request contexts thread into the inference engine, so a
// client disconnect cancels even a long L2S lookahead mid-computation.
//
// Resilience: with Options.RequestTimeout every handler runs under a
// per-request deadline (an expired deadline answers 503 + Retry-After);
// with Options.MaxConcurrent the compute-heavy routes (create/resume,
// questions, answers, ingest) sit behind per-route admission gates that
// shed excess load with 429 + Retry-After instead of queueing without
// bound; GET /readyz reports store/registry/restore health (503 while
// degraded — the node still serves, but load balancers should prefer
// healthy peers).
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	// gated wraps a handler in its route's admission gate: saturation sheds
	// with 429 (the client retries elsewhere), a deadline expiring while
	// queued answers 503 — in both cases without spending any compute.
	gated := func(route string, h http.HandlerFunc) http.HandlerFunc {
		g := m.gateFor(route)
		if g == nil {
			return h
		}
		return func(w http.ResponseWriter, r *http.Request) {
			release, err := g.Acquire(r.Context())
			if err != nil {
				httpError(w, statusFor(err), fmt.Errorf("admission (%s): %w", route, err))
				return
			}
			defer release()
			h(w, r)
		}
	}
	mux.HandleFunc("POST /sessions", gated(routeCreate, func(w http.ResponseWriter, r *http.Request) {
		var req createRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		var info Info
		var err error
		if req.Snapshot != nil {
			info, err = m.Resume(req.Snapshot)
		} else {
			info, err = m.Create(req.Params)
		}
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	}))
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, listResponse{Sessions: m.List()})
	})
	mux.HandleFunc("GET /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("GET /sessions/{id}/questions", gated(routeQuestions, func(w http.ResponseWriter, r *http.Request) {
		k := 1
		if s := r.URL.Query().Get("k"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("k must be a positive integer, got %q", s))
				return
			}
			k = n
		}
		qs, err := m.Questions(r.Context(), r.PathValue("id"), k)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, questionsResponse{Questions: qs, Done: len(qs) == 0})
	}))
	mux.HandleFunc("POST /sessions/{id}/answers", gated(routeAnswers, func(w http.ResponseWriter, r *http.Request) {
		var req answersRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		res, err := m.Answer(r.Context(), r.PathValue("id"), req.Answers)
		if err != nil {
			// Answers apply in order, so a mid-batch failure (inconsistent
			// label, spent budget) leaves a prefix recorded — report the
			// counts so the client knows exactly what was kept.
			writeJSON(w, statusFor(err), answersError{
				Error: err.Error(), Applied: res.Applied, Skipped: res.Skipped,
			})
			return
		}
		writeJSON(w, http.StatusOK, res)
	}))
	mux.HandleFunc("GET /sessions/{id}/predicate", func(w http.ResponseWriter, r *http.Request) {
		p, err := m.Predicate(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("GET /sessions/{id}/explain", func(w http.ResponseWriter, r *http.Request) {
		ex, err := m.Explain(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, ex)
	})
	mux.HandleFunc("GET /sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		snap, err := m.Snapshot(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("DELETE /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Delete(r.PathValue("id")); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /instances", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, instancesResponse{Instances: m.reg.Names()})
	})
	mux.HandleFunc("POST /instances/{id}/rows", gated(routeIngest, func(w http.ResponseWriter, r *http.Request) {
		var req ingestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		res, err := m.Ingest(r.PathValue("id"), req.delta())
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		h := m.Health()
		code := http.StatusOK
		if h.Status != "ok" {
			// Degraded, not down: the node keeps serving from live compute
			// and RAM, but load balancers should prefer healthy peers.
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("GET /debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Metrics())
	})
	cfg := obs.MiddlewareConfig{Logger: m.opts.Logger}
	if o := m.opts.Obs; o != nil {
		cfg.Metrics = o.HTTP
		cfg.Tracer = o.Tracer
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", obs.PromContentType)
			_ = o.Metrics.WritePrometheus(w)
		})
		mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
			limit := 0
			if s := r.URL.Query().Get("limit"); s != "" {
				n, err := strconv.Atoi(s)
				if err != nil || n < 1 {
					httpError(w, http.StatusBadRequest, fmt.Errorf("limit must be a positive integer, got %q", s))
					return
				}
				limit = n
			}
			session := r.URL.Query().Get("session")
			writeJSON(w, http.StatusOK, traceResponse{
				Spans:   o.Tracer.Recent(session, limit),
				Total:   o.Tracer.Total(),
				Summary: o.Tracer.Summarize(),
			})
		})
	}
	return obs.Middleware(withRequestTimeout(mux, m.opts.RequestTimeout), cfg)
}

// withRequestTimeout caps every request's context at d (0 = no cap). The
// deadline threads through handlers into the engine, so an over-budget L2S
// lookahead stops computing and the handler answers 503 + Retry-After via
// statusFor(context.DeadlineExceeded).
func withRequestTimeout(next http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// traceResponse is the body of GET /debug/trace: the retained spans
// (filtered/limited per the query), how many spans ever finished, and
// exact per-operation latency percentiles over the retained window.
type traceResponse struct {
	Spans   []obs.Span        `json:"spans"`
	Total   uint64            `json:"total"`
	Summary []obs.NameSummary `json:"summary,omitempty"`
}

// createRequest accepts either creation params or a snapshot to resume.
type createRequest struct {
	Params
	Snapshot *SessionSnapshot `json:"snapshot,omitempty"`
}

type listResponse struct {
	Sessions []Info `json:"sessions"`
}

type questionsResponse struct {
	// Questions marshal through Question.MarshalJSON: row indexes, values
	// and attribute names. Done is true when none remain (Γ reached).
	Questions []joininference.Question `json:"questions"`
	Done      bool                     `json:"done"`
}

type answersRequest struct {
	Answers []Answer `json:"answers"`
}

type instancesResponse struct {
	Instances []string `json:"instances"`
}

// ingestRequest is the body of POST /instances/{id}/rows: rows to append
// and current row indexes to delete, applied as one atomic delta (one new
// instance version).
type ingestRequest struct {
	InsertR [][]string `json:"insert_r,omitempty"`
	InsertP [][]string `json:"insert_p,omitempty"`
	DeleteR []int      `json:"delete_r,omitempty"`
	DeleteP []int      `json:"delete_p,omitempty"`
}

func (req ingestRequest) delta() joininference.Delta {
	d := joininference.Delta{DeleteR: req.DeleteR, DeleteP: req.DeleteP}
	for _, t := range req.InsertR {
		d.InsertR = append(d.InsertR, joininference.Tuple(t))
	}
	for _, t := range req.InsertP {
		d.InsertP = append(d.InsertP, joininference.Tuple(t))
	}
	return d
}

type errorResponse struct {
	Error string `json:"error"`
}

// answersError is the error body of POST /sessions/{id}/answers: the
// failure plus how much of the batch was recorded before it.
type answersError struct {
	Error   string `json:"error"`
	Applied int    `json:"applied"`
	Skipped int    `json:"skipped"`
}

// statusFor maps service and inference errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrSessionNotFound), errors.Is(err, ErrUnknownInstance):
		return http.StatusNotFound
	case errors.Is(err, joininference.ErrBudgetExhausted),
		errors.Is(err, joininference.ErrInconsistent),
		errors.Is(err, joininference.ErrStaleVersion):
		return http.StatusConflict
	case errors.Is(err, joininference.ErrUnknownStrategy),
		errors.Is(err, joininference.ErrBadSnapshot),
		errors.Is(err, joininference.ErrBadTranscript),
		errors.Is(err, joininference.ErrBadQuestionRef),
		errors.Is(err, ErrBadDelta):
		return http.StatusBadRequest
	case errors.Is(err, resilience.ErrSaturated):
		// Admission gate full: shed, retry elsewhere (Retry-After is set).
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		// The server-side request deadline expired: overload, not client
		// error — 503 + Retry-After tells the client to back off and retry.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but a 4xx keeps logs
		// honest.
		return http.StatusRequestTimeout
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		// Shed or degraded: tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

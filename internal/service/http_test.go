package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	joininference "repro"
	"repro/internal/paperdata"
	"repro/internal/predicate"
)

// wireQuestion is the client-side decoding of a question's wire form.
type wireQuestion struct {
	R                int      `json:"r"`
	P                int      `json:"p"`
	RTuple           []string `json:"r_tuple"`
	PTuple           []string `json:"p_tuple"`
	EquivalentTuples int64    `json:"equivalent_tuples"`
}

type wireQuestions struct {
	Questions []wireQuestion `json:"questions"`
	Done      bool           `json:"done"`
}

// doJSON performs a request and decodes the JSON response into out
// (skipped when out is nil), failing the test on unexpected status.
func doJSON(t *testing.T, client *http.Client, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// honestAnswers labels wire questions against the goal using only the row
// indexes — exactly what a remote crowd UI would do with its own copy of
// the data.
func honestAnswers(inst *joininference.Instance, goal joininference.Pred, qs []wireQuestion) []Answer {
	u := predicate.NewUniverse(inst)
	out := make([]Answer, len(qs))
	for i, q := range qs {
		var positive bool
		if q.P < 0 {
			for _, tP := range inst.P.Tuples {
				if goal.Selects(u, inst.R.Tuples[q.R], tP) {
					positive = true
					break
				}
			}
		} else {
			positive = goal.Selects(u, inst.R.Tuples[q.R], inst.P.Tuples[q.P])
		}
		out[i] = Answer{QuestionRef: joininference.QuestionRef{RIndex: q.R, PIndex: q.P}, Positive: positive}
	}
	return out
}

// driveHTTP answers a session over the wire until done, returning the refs
// asked in order.
func driveHTTP(t *testing.T, client *http.Client, base, id string, inst *joininference.Instance, goal joininference.Pred, k int) []joininference.QuestionRef {
	t.Helper()
	var refs []joininference.QuestionRef
	for {
		var qr wireQuestions
		doJSON(t, client, http.MethodGet, fmt.Sprintf("%s/sessions/%s/questions?k=%d", base, id, k), nil, http.StatusOK, &qr)
		if qr.Done {
			return refs
		}
		answers := honestAnswers(inst, goal, qr.Questions)
		for _, a := range answers {
			refs = append(refs, a.QuestionRef)
		}
		var res AnswerResult
		doJSON(t, client, http.MethodPost, fmt.Sprintf("%s/sessions/%s/answers", base, id), answersRequest{Answers: answers}, http.StatusOK, &res)
	}
}

// TestHTTPEndToEnd is the CI smoke: create a session over HTTP, answer
// batches of questions to convergence, and fetch the predicate.
func TestHTTPEndToEnd(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := srv.Client()
	inst := paperdata.FlightHotel()
	goal := flightGoal(t)

	var inst2 instancesResponse
	doJSON(t, client, http.MethodGet, srv.URL+"/instances", nil, http.StatusOK, &inst2)
	if len(inst2.Instances) != 2 {
		t.Fatalf("instances = %v", inst2.Instances)
	}

	var info Info
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions",
		Params{Instance: "flights", Strategy: joininference.StrategyL2S}, http.StatusCreated, &info)
	if info.ID == "" || info.Done {
		t.Fatalf("created info: %+v", info)
	}

	refs := driveHTTP(t, client, srv.URL, info.ID, inst, goal, 2)
	if len(refs) == 0 {
		t.Fatal("no questions asked over HTTP")
	}

	var p PredicateInfo
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/"+info.ID+"/predicate", nil, http.StatusOK, &p)
	if !p.Done {
		t.Error("session should be done")
	}
	u := joininference.NewSession(inst).Universe()
	if p.Predicate != goal.Format(u) {
		t.Errorf("inferred %q over HTTP, want %q", p.Predicate, goal.Format(u))
	}

	var snap SessionSnapshot
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/"+info.ID+"/snapshot", nil, http.StatusOK, &snap)
	if snap.ID != info.ID || snap.Snapshot == nil || snap.Snapshot.Asked != p.Asked {
		t.Errorf("snapshot over HTTP: %+v", snap)
	}

	doJSON(t, client, http.MethodDelete, srv.URL+"/sessions/"+info.ID, nil, http.StatusNoContent, nil)
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/"+info.ID, nil, http.StatusNotFound, nil)
}

// TestHTTPSnapshotResumeRoundtrip hands a snapshot fetched over HTTP back
// to POST /sessions and checks the resumed session picks up where the
// original left off.
func TestHTTPSnapshotResumeRoundtrip(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := srv.Client()
	inst := paperdata.FlightHotel()
	goal := flightGoal(t)

	var info Info
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions", Params{Instance: "flights"}, http.StatusCreated, &info)
	var qr wireQuestions
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/"+info.ID+"/questions?k=1", nil, http.StatusOK, &qr)
	answers := honestAnswers(inst, goal, qr.Questions)
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions/"+info.ID+"/answers", answersRequest{Answers: answers}, http.StatusOK, nil)

	var snap SessionSnapshot
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/"+info.ID+"/snapshot", nil, http.StatusOK, &snap)
	doJSON(t, client, http.MethodDelete, srv.URL+"/sessions/"+info.ID, nil, http.StatusNoContent, nil)

	var resumed Info
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions", createRequest{Snapshot: &snap}, http.StatusCreated, &resumed)
	if resumed.Asked != 1 {
		t.Fatalf("resumed with %d answers, want 1", resumed.Asked)
	}
	driveHTTP(t, client, srv.URL, resumed.ID, inst, goal, 1)
	var p PredicateInfo
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/"+resumed.ID+"/predicate", nil, http.StatusOK, &p)
	u := joininference.NewSession(inst).Universe()
	if !p.Done || p.Predicate != goal.Format(u) {
		t.Errorf("resumed session inferred %q (done=%v), want %q", p.Predicate, p.Done, goal.Format(u))
	}
}

// TestHTTPPersistRestoreDeterminism is the acceptance differential through
// the HTTP server's persist/restore path: answer halfway against server A,
// shut it down (persisting), boot server B on the same directory, finish
// there — the combined question sequence and final predicate must be
// bit-identical to an uninterrupted run.
func TestHTTPPersistRestoreDeterminism(t *testing.T) {
	inst := paperdata.FlightHotel()
	goal := flightGoal(t)
	u := joininference.NewSession(inst).Universe()
	params := Params{Instance: "flights", Strategy: joininference.StrategyRND, Seed: 5}

	// Uninterrupted reference run (its own server).
	mFull, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srvFull := httptest.NewServer(NewHandler(mFull))
	defer srvFull.Close()
	var full Info
	doJSON(t, srvFull.Client(), http.MethodPost, srvFull.URL+"/sessions", params, http.StatusCreated, &full)
	fullRefs := driveHTTP(t, srvFull.Client(), srvFull.URL, full.ID, inst, goal, 1)
	var fullPred PredicateInfo
	doJSON(t, srvFull.Client(), http.MethodGet, srvFull.URL+"/sessions/"+full.ID+"/predicate", nil, http.StatusOK, &fullPred)
	if len(fullRefs) < 2 {
		t.Fatalf("want ≥ 2 questions, got %d", len(fullRefs))
	}

	// Server A: answer half, then shut down with persistence.
	dir := t.TempDir()
	mA, err := NewManager(testRegistry(t), Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(NewHandler(mA))
	var interrupted Info
	doJSON(t, srvA.Client(), http.MethodPost, srvA.URL+"/sessions", params, http.StatusCreated, &interrupted)
	half := len(fullRefs) / 2
	var prefix []joininference.QuestionRef
	for len(prefix) < half {
		var qr wireQuestions
		doJSON(t, srvA.Client(), http.MethodGet, srvA.URL+"/sessions/"+interrupted.ID+"/questions?k=1", nil, http.StatusOK, &qr)
		if qr.Done {
			t.Fatal("done before the interruption point")
		}
		answers := honestAnswers(inst, goal, qr.Questions)
		doJSON(t, srvA.Client(), http.MethodPost, srvA.URL+"/sessions/"+interrupted.ID+"/answers", answersRequest{Answers: answers}, http.StatusOK, nil)
		prefix = append(prefix, answers[0].QuestionRef)
	}
	srvA.Close()
	if err := mA.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Server B: restore from disk, finish the run.
	mB, err := NewManager(testRegistry(t), Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(NewHandler(mB))
	defer srvB.Close()
	var restored Info
	doJSON(t, srvB.Client(), http.MethodGet, srvB.URL+"/sessions/"+interrupted.ID, nil, http.StatusOK, &restored)
	if restored.Asked != half {
		t.Fatalf("restored with %d answers, want %d", restored.Asked, half)
	}
	rest := driveHTTP(t, srvB.Client(), srvB.URL, interrupted.ID, inst, goal, 1)

	got := append(append([]joininference.QuestionRef(nil), prefix...), rest...)
	if len(got) != len(fullRefs) {
		t.Fatalf("restored run asked %d questions, uninterrupted %d", len(got), len(fullRefs))
	}
	for i := range got {
		if got[i] != fullRefs[i] {
			t.Fatalf("question %d diverged after restore: %v vs %v", i, got[i], fullRefs[i])
		}
	}
	var p PredicateInfo
	doJSON(t, srvB.Client(), http.MethodGet, srvB.URL+"/sessions/"+interrupted.ID+"/predicate", nil, http.StatusOK, &p)
	if p.Predicate != fullPred.Predicate || p.Predicate != goal.Format(u) {
		t.Errorf("restored predicate %q, uninterrupted %q, goal %q", p.Predicate, fullPred.Predicate, goal.Format(u))
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	m, err := NewManager(testRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := srv.Client()

	doJSON(t, client, http.MethodPost, srv.URL+"/sessions", Params{Instance: "no-such"}, http.StatusNotFound, nil)
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions", Params{Instance: "flights", Strategy: "BOGUS"}, http.StatusBadRequest, nil)
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/deadbeef", nil, http.StatusNotFound, nil)
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/deadbeef/questions?k=0", nil, http.StatusBadRequest, nil)
	doJSON(t, client, http.MethodDelete, srv.URL+"/sessions/deadbeef", nil, http.StatusNotFound, nil)

	// A malformed question ref is the client's fault: 400, not 500, and
	// nothing from the batch is recorded.
	var bad Info
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions", Params{Instance: "flights"}, http.StatusCreated, &bad)
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions/"+bad.ID+"/answers",
		answersRequest{Answers: []Answer{{QuestionRef: joininference.QuestionRef{RIndex: 99, PIndex: 99}, Positive: true}}},
		http.StatusBadRequest, nil)
	var after Info
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/"+bad.ID, nil, http.StatusOK, &after)
	if after.Asked != 0 {
		t.Errorf("rejected batch recorded %d answers", after.Asked)
	}

	// A spent budget maps to 409 while questions remain.
	var info Info
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions", Params{Instance: "flights", Budget: 1}, http.StatusCreated, &info)
	var qr wireQuestions
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/"+info.ID+"/questions?k=1", nil, http.StatusOK, &qr)
	answers := honestAnswers(paperdata.FlightHotel(), flightGoal(t), qr.Questions)
	doJSON(t, client, http.MethodPost, srv.URL+"/sessions/"+info.ID+"/answers", answersRequest{Answers: answers}, http.StatusOK, nil)
	doJSON(t, client, http.MethodGet, srv.URL+"/sessions/"+info.ID+"/questions?k=1", nil, http.StatusConflict, nil)
}

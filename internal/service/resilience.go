package service

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/store"
)

// Admission routes: the compute-heavy endpoints each get their own gate so
// a flood of lookahead-heavy question fetches cannot starve answer
// submissions (which carry paid crowd work) of slots.
const (
	routeCreate    = "create"
	routeQuestions = "questions"
	routeAnswers   = "answers"
	routeIngest    = "ingest"
)

var admissionRoutes = []string{routeCreate, routeQuestions, routeAnswers, routeIngest}

// gateFor returns the admission gate for a route ("" / unknown routes and
// an unconfigured manager return nil = unlimited).
func (m *Manager) gateFor(route string) *resilience.Gate {
	return m.gates[route]
}

// persistQueue is the write-behind retry queue: session ids whose store
// persist failed (or was skipped by an open breaker) wait here for the
// background worker to re-persist them. Bounded and deduplicated — a
// session already queued is not queued twice, and when the queue is full
// the newest id is dropped (counted); the session's RAM copy remains the
// source of truth and every later answer re-queues it, so a drop delays
// durability, never loses state.
type persistQueue struct {
	mu      sync.Mutex
	pending []string
	member  map[string]bool
	limit   int

	drops   atomic.Int64
	retries atomic.Int64

	// wake nudges the worker when work arrives; 1-buffered so an add never
	// blocks.
	wake chan struct{}
}

func newPersistQueue(limit int) *persistQueue {
	if limit <= 0 {
		limit = 1024
	}
	return &persistQueue{
		member: make(map[string]bool),
		limit:  limit,
		wake:   make(chan struct{}, 1),
	}
}

// add queues a session id for re-persist; reports whether it was queued
// (false = duplicate or dropped).
func (q *persistQueue) add(id string) bool {
	q.mu.Lock()
	if q.member[id] {
		q.mu.Unlock()
		return true // already pending; the retry will pick up the newest state
	}
	if len(q.pending) >= q.limit {
		q.mu.Unlock()
		q.drops.Add(1)
		return false
	}
	q.member[id] = true
	q.pending = append(q.pending, id)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

// pop removes and returns the oldest queued id.
func (q *persistQueue) pop() (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return "", false
	}
	id := q.pending[0]
	q.pending = q.pending[1:]
	delete(q.member, id)
	return id, true
}

func (q *persistQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// startPersistWorker runs the write-behind loop: pop a queued session,
// wait out the breaker if it is open (its retry attempts are the breaker's
// half-open probes), re-persist, and back off between failures. Returns a
// stop func; the worker also exits when stop's channel closes mid-sleep.
func (m *Manager) startPersistWorker() (stop func()) {
	done := make(chan struct{})
	go func() {
		bo := resilience.Backoff{Base: 25 * time.Millisecond, Max: time.Second}
		attempt := 0
		sleep := func(d time.Duration) bool {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return true
			case <-done:
				return false
			}
		}
		for {
			id, ok := m.pq.pop()
			if !ok {
				select {
				case <-m.pq.wake:
					continue
				case <-done:
					return
				}
			}
			if !m.breaker.Allow() {
				// Open breaker: hold the id and wait out (part of) the
				// cool-off; the next pass becomes the half-open probe.
				m.pq.add(id)
				if !sleep(bo.Delay(attempt, nil)) {
					return
				}
				attempt++
				continue
			}
			m.pq.retries.Add(1)
			switch m.repersist(id) {
			case persistOK, persistGone:
				attempt = 0
			case persistUnsnapshotable:
				// A session-state problem, not store health: retrying cannot
				// heal it, so drop the id instead of re-queueing forever (a
				// permanently non-empty queue would report the node degraded
				// over a non-store fault). The RAM copy keeps serving and any
				// later answer re-queues a fresh snapshot attempt.
				m.log.Error("dropping unsnapshotable session from persist retry queue", "session", id)
				attempt = 0
			case persistBusy:
				// The session is mid-operation; its own completion path will
				// persist. Re-queue cheaply and yield.
				m.pq.add(id)
				if !sleep(5 * time.Millisecond) {
					return
				}
			case persistFailed:
				m.pq.add(id)
				if !sleep(bo.Delay(attempt, nil)) {
					return
				}
				attempt++
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

type persistOutcome int

const (
	persistOK persistOutcome = iota
	persistGone
	persistBusy
	persistFailed
	persistUnsnapshotable
)

// repersist re-persists one queued session by id. The caller's Allow()
// already admitted this attempt (in half-open, as the single probe), so
// every path that does not reach the store must CancelProbe — otherwise
// a busy or deleted session would leak the probe and wedge the breaker
// half-open permanently.
func (m *Manager) repersist(id string) persistOutcome {
	m.mu.Lock()
	ms := m.sessions[id]
	m.mu.Unlock()
	if ms == nil {
		// Deleted or already evicted post-persist; nothing to save (eviction
		// only happens after a successful persist).
		m.breaker.CancelProbe()
		return persistGone
	}
	if !ms.mu.TryLock() {
		m.breaker.CancelProbe()
		return persistBusy
	}
	defer ms.mu.Unlock()
	if ms.gone {
		m.breaker.CancelProbe()
		return persistGone
	}
	// Direct, not breaker-gated: the worker loop's Allow() already took the
	// slot (in half-open, the single probe) — re-checking here would consume
	// the probe without ever resolving it, wedging the breaker half-open.
	return m.persistStoreDirect(ms)
}

// persistStoreLocked writes the session record through the breaker;
// callers hold ms.mu. On an open breaker or a store failure the id goes to
// the write-behind queue and the RAM copy keeps serving — a dying disk
// never blocks (or loses) an answer. Reports whether the record is now
// durably written.
func (m *Manager) persistStoreLocked(ms *managed) bool {
	if !m.breaker.Allow() {
		m.pq.add(ms.id)
		return false
	}
	return m.persistStoreDirect(ms) == persistOK
}

// persistStoreDirect writes the record unconditionally (no breaker gate —
// used by shutdown drain and half-open probes via persistStoreLocked),
// still reporting the outcome to the breaker. Callers hold ms.mu.
func (m *Manager) persistStoreDirect(ms *managed) persistOutcome {
	snap, err := ms.snapshotLocked()
	if err != nil {
		// A snapshot failure is a session-state problem, not store health:
		// the store was never touched, so release the probe this admission
		// may have been instead of leaking it (which would wedge the breaker
		// half-open).
		m.breaker.CancelProbe()
		m.log.Warn("snapshotting session failed", "session", ms.id, "err", err)
		return persistUnsnapshotable
	}
	if err := m.opts.Store.Put(store.SessionKey(ms.id), encodeServiceSnapshot(snap)); err != nil {
		m.breaker.Failure(err)
		m.pq.add(ms.id)
		m.log.Warn("persisting session failed; queued for retry",
			"session", ms.id, "err", err, "queue_depth", m.pq.depth())
		return persistFailed
	}
	m.breaker.Success()
	return persistOK
}

// Health is the /readyz report: overall status plus per-component detail.
// Status is "ok" or "degraded"; degraded nodes keep serving (sessions run
// from live compute and RAM) but operators and load balancers should
// prefer healthy peers.
type Health struct {
	Status   string           `json:"status"`
	Store    *StoreHealth     `json:"store,omitempty"`
	Registry *ComponentHealth `json:"registry,omitempty"`
	Restore  *ComponentHealth `json:"restore,omitempty"`
}

// StoreHealth reports the persistence tier: breaker position, failure
// streak, and the write-behind queue.
type StoreHealth struct {
	Status string `json:"status"`
	// Breaker is the circuit position: closed, half-open, or open.
	Breaker string `json:"breaker"`
	// ConsecutiveFailures is the current failure streak feeding the breaker.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// QueueDepth is how many sessions await re-persist; Retries counts
	// worker re-persist attempts; Dropped counts ids the bounded queue
	// refused (delayed durability, not data loss).
	QueueDepth int   `json:"queue_depth"`
	Retries    int64 `json:"retries,omitempty"`
	Dropped    int64 `json:"dropped,omitempty"`
	// Trips / Recoveries count breaker open and close transitions.
	Trips      int64 `json:"trips,omitempty"`
	Recoveries int64 `json:"recoveries,omitempty"`
	// LastError is the most recent store failure ("" when healthy).
	LastError string `json:"last_error,omitempty"`
}

// ComponentHealth is a simple status + detail pair.
type ComponentHealth struct {
	Status string `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// degradedQueueDepth is how many pending re-persists it takes to degrade
// /readyz while the breaker is still closed. A closed breaker with a short
// queue is a node absorbing transient faults as designed; flipping
// readiness over every blip (and back when the worker drains one id)
// would churn load balancers over a healthy node.
const degradedQueueDepth = 16

// Health reports the node's serving health. The store is degraded while
// its breaker is not closed or the re-persist backlog is substantial
// (>= degradedQueueDepth); the registry while any instance load has stuck
// in error. Boot-restore failures are reported ("incomplete") but do not
// degrade the node forever — the snapshots are gone, flapping /readyz over
// them helps no one.
func (m *Manager) Health() Health {
	h := Health{Status: "ok"}
	if m.opts.Store != nil {
		trips, recoveries := m.breaker.Counters()
		sh := &StoreHealth{
			Status:              "ok",
			Breaker:             m.breaker.State().String(),
			ConsecutiveFailures: m.breaker.ConsecutiveFailures(),
			QueueDepth:          m.pq.depth(),
			Retries:             m.pq.retries.Load(),
			Dropped:             m.pq.drops.Load(),
			Trips:               trips,
			Recoveries:          recoveries,
			LastError:           m.breaker.LastError(),
		}
		if sh.Breaker != "closed" || sh.QueueDepth >= degradedQueueDepth {
			sh.Status = "degraded"
			h.Status = "degraded"
		}
		h.Store = sh
	}
	if failed := m.reg.Failed(); len(failed) > 0 {
		h.Registry = &ComponentHealth{Status: "degraded", Detail: "failed instance loads: " + strings.Join(failed, ", ")}
		h.Status = "degraded"
	} else {
		h.Registry = &ComponentHealth{Status: "ok"}
	}
	if n := m.restoreFails.Value(); n > 0 {
		h.Restore = &ComponentHealth{Status: "incomplete", Detail: fmt.Sprintf("%d persisted session(s) failed to restore", n)}
	} else {
		h.Restore = &ComponentHealth{Status: "ok"}
	}
	return h
}

// Degraded reports whether the node is currently degraded (the `degraded`
// gauge reads this).
func (m *Manager) Degraded() bool { return m.Health().Status != "ok" }

// ResilienceMetrics is the "resilience" section of /debug/metrics: breaker
// position and transition counts, the write-behind queue, and per-route
// admission gates.
type ResilienceMetrics struct {
	BreakerState       string             `json:"breaker_state"`
	BreakerTrips       int64              `json:"breaker_trips"`
	BreakerRecoveries  int64              `json:"breaker_recoveries"`
	PersistQueueDepth  int                `json:"persist_queue_depth"`
	PersistRetries     int64              `json:"persist_retries"`
	PersistDropped     int64              `json:"persist_dropped"`
	RestoreFailures    int64              `json:"restore_failures,omitempty"`
	Admission          []AdmissionMetrics `json:"admission,omitempty"`
	Degraded           bool               `json:"degraded"`
	StoreLastError     string             `json:"store_last_error,omitempty"`
	ConsecutiveFailure int                `json:"consecutive_failures,omitempty"`
}

// AdmissionMetrics is one route's gate counters.
type AdmissionMetrics struct {
	Route    string `json:"route"`
	InFlight int64  `json:"in_flight"`
	Queued   int64  `json:"queued"`
	Shed     int64  `json:"shed"`
	Admitted int64  `json:"admitted"`
}

// resilienceMetrics snapshots the resilience state for Metrics(); nil when
// neither a store nor admission control is configured.
func (m *Manager) resilienceMetrics() *ResilienceMetrics {
	if m.opts.Store == nil && len(m.gates) == 0 {
		return nil
	}
	out := &ResilienceMetrics{BreakerState: m.breaker.State().String()}
	if m.opts.Store != nil {
		out.BreakerTrips, out.BreakerRecoveries = m.breaker.Counters()
		out.PersistQueueDepth = m.pq.depth()
		out.PersistRetries = m.pq.retries.Load()
		out.PersistDropped = m.pq.drops.Load()
		out.StoreLastError = m.breaker.LastError()
		out.ConsecutiveFailure = m.breaker.ConsecutiveFailures()
	}
	out.RestoreFailures = m.restoreFails.Value()
	out.Degraded = m.Degraded()
	for _, route := range admissionRoutes {
		if g := m.gates[route]; g != nil {
			out.Admission = append(out.Admission, AdmissionMetrics{
				Route:    route,
				InFlight: g.InFlight(),
				Queued:   g.QueueDepth(),
				Shed:     g.Shed(),
				Admitted: g.Admitted(),
			})
		}
	}
	return out
}

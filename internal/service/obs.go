package service

import (
	"time"

	joininference "repro"
	"repro/internal/obs"
)

// Obs bundles the telemetry backends the service layer reports into: a
// metric registry (served at GET /metrics in Prometheus text form), a span
// tracer (GET /debug/trace, optional JSONL sink), and the HTTP middleware
// instruments. Construct one with NewObs, hand it to every manager via
// Options.Obs, and mount it once — managers over a shared Obs re-register
// idempotently. All of it is optional: a nil *Obs disables telemetry
// without any call-site branching.
type Obs struct {
	// Metrics is the registry behind GET /metrics; Tracer records spans for
	// GET /debug/trace (replaceable before wiring, e.g. for a larger ring).
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// HTTP are the middleware's per-route instruments.
	HTTP *obs.HTTPMetrics

	// Pre-resolved children of the hot-path families, so an observation is
	// two atomic adds with no map lookup:
	//
	//	question_segment_seconds{segment="strategy"|"cache"|"store"}
	//	policy_pagein_seconds
	//	store_op_seconds{op="append"|"fsync"|"compact"}
	segStrategy, segCache, segStore *obs.Histogram
	pageIn                          *obs.Histogram
	opAppend, opFsync, opCompact    *obs.Histogram
	storeOps                        *obs.HistogramVec
}

// NewObs builds the service telemetry bundle: a fresh registry with the
// hot-path families pre-registered, and a tracer with the default ring
// capacity.
func NewObs() *Obs {
	o := &Obs{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer(0)}
	o.HTTP = obs.NewHTTPMetrics(o.Metrics)
	seg := o.Metrics.HistogramVec("question_segment_seconds",
		"Per-question serving latency by segment: a live strategy run, a policy-cache hit, or the post-answer store persist.",
		"segment", nil)
	o.segStrategy = seg.With("strategy")
	o.segCache = seg.With("cache")
	o.segStore = seg.With("store")
	o.pageIn = o.Metrics.Histogram("policy_pagein_seconds",
		"Policy-cache tier-2 page-in latency: an LRU miss streaming a stored subtree back into RAM.", nil)
	o.storeOps = o.Metrics.HistogramVec("store_op_seconds",
		"Persistent store operation latency, by op (append, fsync, compact).", "op", nil)
	o.opAppend = o.storeOps.With("append")
	o.opFsync = o.storeOps.With("fsync")
	o.opCompact = o.storeOps.With("compact")
	return o
}

// Observe implements joininference.Telemetry: session hot paths report
// strategy/cache fetch segments here, the policy cache its page-ins. The
// event and duration are value types and the histograms pre-resolved, so
// the call allocates nothing.
func (o *Obs) Observe(ev joininference.TelemetryEvent, d time.Duration) {
	if o == nil {
		return
	}
	switch ev {
	case joininference.TelemetryStrategy:
		o.segStrategy.Observe(d.Seconds())
	case joininference.TelemetryCache:
		o.segCache.Observe(d.Seconds())
	case joininference.TelemetryPageIn:
		o.pageIn.Observe(d.Seconds())
	}
}

// StoreObserver adapts the bundle to store.LogOptions.Observe, feeding the
// store's append/fsync/compact timings into store_op_seconds. Returns nil
// on a nil receiver, which the store treats as "no telemetry".
func (o *Obs) StoreObserver() func(op string, d time.Duration) {
	if o == nil {
		return nil
	}
	return func(op string, d time.Duration) {
		switch op {
		case "append":
			o.opAppend.Observe(d.Seconds())
		case "fsync":
			o.opFsync.Observe(d.Seconds())
		case "compact":
			o.opCompact.Observe(d.Seconds())
		default:
			o.storeOps.With(op).Observe(d.Seconds())
		}
	}
}

// observeStoreSegment reports one post-answer persist duration into
// question_segment_seconds{segment="store"}.
func (o *Obs) observeStoreSegment(start time.Time) {
	if o == nil {
		return
	}
	o.segStore.ObserveSince(start)
}

// bind exposes the manager's existing counters — expvar session counters,
// registry load stats, policy-cache residency, store residency, crowd
// totals — as function-backed metrics read at exposition time, so nothing
// is counted twice. Re-binding (a fresh manager over a shared Obs, the
// restart path) replaces the previous manager's closures.
func (o *Obs) bind(m *Manager) {
	if o == nil {
		return
	}
	r := o.Metrics
	r.GaugeFunc("sessions_live", "Sessions currently resident in memory.", func() float64 {
		m.mu.Lock()
		n := len(m.sessions)
		m.mu.Unlock()
		return float64(n)
	})
	r.CounterFunc("sessions_created_total", "Sessions created.", func() float64 { return float64(m.met.created.Value()) })
	r.CounterFunc("sessions_resumed_total", "Sessions resumed (boot-time restores included).", func() float64 { return float64(m.met.resumed.Value()) })
	r.CounterFunc("sessions_evicted_total", "Sessions evicted by TTL sweeps.", func() float64 { return float64(m.met.evicted.Value()) })
	r.CounterFunc("sessions_deleted_total", "Sessions explicitly deleted.", func() float64 { return float64(m.met.deleted.Value()) })
	r.CounterFunc("questions_served_total", "Questions handed out.", func() float64 { return float64(m.met.questions.Value()) })
	r.CounterFunc("answers_applied_total", "Answers recorded (skipped answers excluded).", func() float64 { return float64(m.met.answers.Value()) })
	r.CounterFunc("deltas_ingested_total", "Deltas applied through Ingest.", func() float64 { return float64(m.met.ingests.Value()) })
	r.CounterFunc("sessions_migrated_total", "Live sessions carried onto a new instance version.", func() float64 { return float64(m.met.migrated.Value()) })
	r.CounterFunc("sessions_retired_total", "Sessions retired as inconsistent under new data.", func() float64 { return float64(m.met.retired.Value()) })
	r.CounterFunc("registry_cache_hits_total", "Instances served from the store's instance cache.", func() float64 { return float64(m.reg.Stats().CacheHits) })
	r.CounterFunc("registry_reparses_total", "Instances rebuilt from their source.", func() float64 { return float64(m.reg.Stats().Reparses) })
	r.CounterFunc("registry_deltas_replayed_total", "Delta-log records rolled forward at load time.", func() float64 { return float64(m.reg.Stats().DeltasReplayed) })
	r.CounterFunc("crowd_votes_total", "Worker votes behind committed soft answers.", func() float64 { return float64(m.crowdVotes()) })
	r.CounterFunc("soft_commits_total", "Soft-inference commit events.", func() float64 { return float64(m.crowdCommits()) })
	r.CounterFunc("soft_retractions_total", "Soft-inference retraction events.", func() float64 { return float64(m.crowdRetractions()) })
	if pc := m.opts.PolicyCache; pc != nil {
		r.CounterFunc("policy_cache_hits_total", "Policy-cache LRU hits.", func() float64 { return float64(pc.Stats().Hits) })
		r.CounterFunc("policy_cache_misses_total", "Policy-cache misses (LRU and tier 2).", func() float64 { return float64(pc.Stats().Misses) })
		r.CounterFunc("policy_cache_tier2_hits_total", "Policy-cache lookups served by the store tier.", func() float64 { return float64(pc.Stats().Tier2Hits) })
		r.CounterFunc("policy_cache_pageins_total", "Policy nodes paged in from the store tier.", func() float64 { return float64(pc.Stats().PageIns) })
		r.GaugeFunc("policy_cache_bytes", "Bytes resident in the policy cache.", func() float64 { return float64(pc.Stats().Bytes) })
		r.GaugeFunc("policy_cache_nodes", "Nodes resident in the policy cache.", func() float64 { return float64(pc.Stats().Nodes) })
		r.GaugeFunc("policy_cache_hit_ratio", "Policy-cache hit ratio (LRU + tier-2 hits over lookups) since boot.", func() float64 {
			st := pc.Stats()
			total := st.Hits + st.Misses
			if total == 0 {
				return 0
			}
			return float64(st.Hits+st.Tier2Hits) / float64(total)
		})
	}
	if kv := m.opts.Store; kv != nil {
		r.CounterFunc("store_gets_total", "Store point reads.", func() float64 { return float64(kv.Stats().Gets) })
		r.CounterFunc("store_puts_total", "Store writes.", func() float64 { return float64(kv.Stats().Puts) })
		r.CounterFunc("store_compactions_total", "Store log compactions.", func() float64 { return float64(kv.Stats().Compactions) })
		r.GaugeFunc("store_live_bytes", "Live record bytes in the store.", func() float64 { return float64(kv.Stats().LiveBytes) })
		r.GaugeFunc("store_dead_bytes", "Log garbage bytes awaiting compaction.", func() float64 { return float64(kv.Stats().DeadBytes) })
		r.GaugeFunc("store_breaker_state", "Store circuit position: 0 closed, 1 half-open, 2 open.", func() float64 {
			return float64(m.breaker.State())
		})
		r.CounterFunc("store_breaker_trips_total", "Store breaker open transitions.", func() float64 {
			t, _ := m.breaker.Counters()
			return float64(t)
		})
		r.CounterFunc("store_breaker_recoveries_total", "Store breaker close transitions after a trip.", func() float64 {
			_, rec := m.breaker.Counters()
			return float64(rec)
		})
		r.GaugeFunc("persist_queue_depth", "Sessions awaiting write-behind re-persist.", func() float64 {
			return float64(m.pq.depth())
		})
		r.CounterFunc("persist_retries_total", "Write-behind re-persist attempts.", func() float64 {
			return float64(m.pq.retries.Load())
		})
		r.CounterFunc("persist_dropped_total", "Re-persist requests refused by the bounded queue.", func() float64 {
			return float64(m.pq.drops.Load())
		})
	}
	r.GaugeFunc("degraded", "1 while any component (store, registry) is degraded.", func() float64 {
		if m.Degraded() {
			return 1
		}
		return 0
	})
	if len(m.gates) > 0 {
		inflight := r.GaugeVec("admission_inflight", "Requests holding an admission slot, by route.", "route")
		queued := r.GaugeVec("admission_queue_depth", "Requests waiting for an admission slot, by route.", "route")
		shed := r.CounterVec("admission_shed_total", "Requests shed with 429, by route.", "route")
		for _, route := range admissionRoutes {
			g := m.gates[route]
			if g == nil {
				continue
			}
			inflight.SetFunc(route, func() float64 { return float64(g.InFlight()) })
			queued.SetFunc(route, func() float64 { return float64(g.QueueDepth()) })
			shed.SetFunc(route, func() float64 { return float64(g.Shed()) })
		}
	}
}

// crowdVotes/crowdCommits/crowdRetractions read one crowd counter each
// under crowdMu, for the function-backed metrics.
func (m *Manager) crowdVotes() int64 {
	m.crowdMu.Lock()
	defer m.crowdMu.Unlock()
	return m.crowd.votes
}

func (m *Manager) crowdCommits() int64 {
	m.crowdMu.Lock()
	defer m.crowdMu.Unlock()
	return m.crowd.commits
}

func (m *Manager) crowdRetractions() int64 {
	m.crowdMu.Lock()
	defer m.crowdMu.Unlock()
	return m.crowd.retractions
}

// tracer returns the bundle's tracer (nil without one — every Tracer
// method is nil-safe).
func (m *Manager) tracer() *obs.Tracer {
	if m.opts.Obs == nil {
		return nil
	}
	return m.opts.Obs.Tracer
}

// Package service is the transport-agnostic serving layer over the root
// joininference package: a registry of named instances, a goroutine-safe
// SessionManager with TTL eviction and disk persistence, and an HTTP/JSON
// handler (NewHandler) that cmd/joinserve mounts. Nothing here is specific
// to HTTP — the manager is equally usable behind gRPC, a message queue, or
// in-process.
package service

import (
	"fmt"
	"os"
	"sort"
	"sync"

	joininference "repro"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/tpch"
)

// Entry is a loaded, ready-to-serve instance: the relations plus T-classes
// precomputed once and shared by every join session over it.
type Entry struct {
	// Name is the registry key.
	Name string
	// Inst is the two-relation instance.
	Inst *joininference.Instance
	// Classes are the precomputed T-classes (join sessions adopt them via
	// WithPrecomputedClasses, skipping the product scan per session).
	Classes *joininference.ClassSet
}

// Source lazily produces an instance; it runs at most once per registry
// entry, on first use.
type Source func() (*joininference.Instance, error)

type regSlot struct {
	src  Source
	once sync.Once
	e    *Entry
	err  error
}

// Registry maps stable names to lazily-loaded instances. All methods are
// safe for concurrent use; loading (and T-class precomputation) happens at
// most once per name, concurrent first users block on the same load.
//
// With a store attached (AttachStore), a loaded entry — tuples plus
// precomputed T-classes — is cached as one binary record keyed by name, and
// later boots decode it instead of re-parsing CSV, re-generating TPC-H, or
// re-scanning the product. Like the policy cache, a name must uniquely
// identify the instance's data; registering different data under a name
// the store has seen requires clearing the store or picking a new name.
type Registry struct {
	mu    sync.Mutex
	slots map[string]*regSlot
	kv    store.KV
	logf  func(string, ...any)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{slots: make(map[string]*regSlot)} }

// Register adds a named source; registering a duplicate name is an error.
func (r *Registry) Register(name string, src Source) error {
	if name == "" {
		return fmt.Errorf("service: instance name must be non-empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.slots[name]; ok {
		return fmt.Errorf("service: instance %q already registered", name)
	}
	r.slots[name] = &regSlot{src: src}
	return nil
}

// RegisterInstance registers an already-built instance (e.g. for tests).
func (r *Registry) RegisterInstance(name string, inst *joininference.Instance) error {
	return r.Register(name, func() (*joininference.Instance, error) { return inst, nil })
}

// RegisterCSV registers a pair of CSV files loaded on first use.
func (r *Registry) RegisterCSV(name, rPath, pPath string) error {
	return r.Register(name, func() (*joininference.Instance, error) {
		if _, err := os.Stat(rPath); err != nil {
			return nil, fmt.Errorf("service: instance %q: %w", name, err)
		}
		if _, err := os.Stat(pPath); err != nil {
			return nil, fmt.Errorf("service: instance %q: %w", name, err)
		}
		return joininference.LoadCSV(rPath, pPath)
	})
}

// RegisterTPCH registers one of the paper's five TPC-H goal joins,
// generated deterministically on first use.
func (r *Registry) RegisterTPCH(name string, j tpch.Join, multiplier int, seed int64) error {
	return r.Register(name, func() (*joininference.Instance, error) {
		d, err := tpch.Generate(multiplier, seed)
		if err != nil {
			return nil, err
		}
		inst, _, err := d.Instance(j)
		return inst, err
	})
}

// RegisterSynth registers a synthetic instance (Section 5.2 generator),
// generated deterministically on first use.
func (r *Registry) RegisterSynth(name string, cfg synth.Config, seed int64) error {
	return r.Register(name, func() (*joininference.Instance, error) {
		return synth.Generate(cfg, seed)
	})
}

// ErrUnknownInstance is wrapped by Get for names never registered.
var ErrUnknownInstance = fmt.Errorf("service: unknown instance")

// AttachStore caches loaded entries in the KV store. Attach before first
// use (wiring happens at boot); logf receives cache diagnostics, nil
// discards them.
func (r *Registry) AttachStore(kv store.KV, logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r.mu.Lock()
	r.kv = kv
	r.logf = logf
	r.mu.Unlock()
}

// Get loads (once) and returns the named entry: from the store cache when
// attached and populated, else from the source (and then into the cache).
func (r *Registry) Get(name string) (*Entry, error) {
	r.mu.Lock()
	slot, ok := r.slots[name]
	kv, logf := r.kv, r.logf
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, name)
	}
	slot.once.Do(func() {
		if kv != nil {
			if data, ok, err := kv.Get(store.RegistryKey(name)); err == nil && ok {
				inst, cs, err := joininference.DecodeInstanceCache(data)
				if err == nil {
					slot.e = &Entry{Name: name, Inst: inst, Classes: cs}
					return
				}
				// A corrupt cache record falls back to the source — it will
				// be overwritten below.
				logf("service: instance cache %q: %v", name, err)
			}
		}
		inst, err := slot.src()
		if err != nil {
			slot.err = err
			return
		}
		cs := joininference.PrecomputeClasses(inst)
		slot.e = &Entry{Name: name, Inst: inst, Classes: cs}
		if kv != nil {
			if err := kv.Put(store.RegistryKey(name), joininference.EncodeInstanceCache(inst, cs)); err != nil {
				logf("service: caching instance %q: %v", name, err)
			}
		}
	})
	return slot.e, slot.err
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.slots))
	for n := range r.slots {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefaultRegistry returns a registry preloaded with the paper's workloads:
// the five TPC-H goal joins at multiplier 1 ("tpch-join1" … "tpch-join5")
// and the six synthetic Figure 7 configurations ("synth-1" … "synth-6"),
// all at seed 1. Everything is lazy — nothing is generated until a session
// is created over it.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, j := range tpch.AllJoins() {
		// Registration cannot fail on fresh names; ignore the nil error.
		_ = r.RegisterTPCH(fmt.Sprintf("tpch-join%d", int(j)), j, 1, 1)
	}
	for i, cfg := range synth.PaperConfigs() {
		_ = r.RegisterSynth(fmt.Sprintf("synth-%d", i+1), cfg, 1)
	}
	return r
}

// Package service is the transport-agnostic serving layer over the root
// joininference package: a registry of named instances, a goroutine-safe
// SessionManager with TTL eviction and disk persistence, and an HTTP/JSON
// handler (NewHandler) that cmd/joinserve mounts. Nothing here is specific
// to HTTP — the manager is equally usable behind gRPC, a message queue, or
// in-process.
package service

import (
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"

	joininference "repro"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/tpch"
)

// Entry is a loaded, ready-to-serve snapshot of an instance at one version:
// the relations plus T-classes precomputed once and shared by every join
// session over it. Entries are immutable — an ingest replaces the slot's
// entry with a new one rather than mutating it, so a caller holding an
// Entry always sees a consistent (instance, classes) pair.
type Entry struct {
	// Name is the registry key.
	Name string
	// Inst is the two-relation instance, at the version current when the
	// entry was fetched.
	Inst *joininference.Instance
	// Classes are the precomputed T-classes of that version (join sessions
	// adopt them via WithPrecomputedClasses, skipping the product scan per
	// session).
	Classes *joininference.ClassSet
}

// Source lazily produces an instance; it runs at most once per registry
// entry, on first use.
type Source func() (*joininference.Instance, error)

type regSlot struct {
	src Source

	// mu serializes loading and ingests for this slot; concurrent first
	// users block on the same load.
	mu     sync.Mutex
	loaded bool
	e      *Entry
	err    error
	// updates is the in-process version history since load, oldest first:
	// updates[k] transforms version base+k into base+k+1, where base is the
	// version the slot loaded at. Live sessions pinned to an older version
	// migrate forward through it (UpdatesSince). Append-only.
	updates []*joininference.InstanceUpdate
}

// Registry maps stable names to lazily-loaded instances. All methods are
// safe for concurrent use; loading (and T-class precomputation) happens at
// most once per name, concurrent first users block on the same load.
//
// With a store attached (AttachStore), a loaded entry — tuples plus
// precomputed T-classes — is cached as one binary record keyed by name, and
// later boots decode it instead of re-parsing CSV, re-generating TPC-H, or
// re-scanning the product. Ingested deltas (Ingest) are appended to the
// store's delta log, so a boot whose cached record predates the tip replays
// the missing deltas through the incremental maintenance path instead of
// recomputing anything. Like the policy cache, a name must uniquely
// identify the instance's data; registering different data under a name
// the store has seen requires clearing the store or picking a new name.
type Registry struct {
	mu    sync.Mutex
	slots map[string]*regSlot
	kv    store.KV
	log   *slog.Logger

	met registryMetrics
}

// registryMetrics counts how entries were brought to serving state:
// cacheHits decoded the store's instance cache, reparses ran the source
// (CSV parse, TPC-H generation, product scan), deltasReplayed counts
// delta-log records rolled forward at load, ingests counts live deltas
// applied.
type registryMetrics struct {
	cacheHits, reparses, deltasReplayed, ingests expvar.Int
}

// RegistryStats is a point-in-time snapshot of a registry's counters,
// served under /debug/metrics.
type RegistryStats struct {
	// CacheHits counts entries served from the store's instance cache;
	// Reparses counts entries built from their source (first ever load, or
	// a corrupt/version-skewed cache record).
	CacheHits int64 `json:"cache_hits"`
	Reparses  int64 `json:"reparses"`
	// DeltasReplayed counts delta-log records rolled forward at load time;
	// Ingests counts deltas applied live.
	DeltasReplayed int64 `json:"deltas_replayed"`
	Ingests        int64 `json:"ingests"`
}

// Failed returns the names of entries whose one-shot load failed (the
// error sticks until restart — see loadLocked), sorted. Slots mid-load are
// skipped without blocking: loading is not failure, and health probes must
// never queue behind a TPC-H generation.
func (r *Registry) Failed() []string {
	r.mu.Lock()
	slots := make(map[string]*regSlot, len(r.slots))
	for name, s := range r.slots {
		slots[name] = s
	}
	r.mu.Unlock()
	var out []string
	for name, s := range slots {
		if !s.mu.TryLock() {
			continue
		}
		if s.loaded && s.err != nil {
			out = append(out, name)
		}
		s.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Stats returns the registry's counters.
func (r *Registry) Stats() RegistryStats {
	return RegistryStats{
		CacheHits:      r.met.cacheHits.Value(),
		Reparses:       r.met.reparses.Value(),
		DeltasReplayed: r.met.deltasReplayed.Value(),
		Ingests:        r.met.ingests.Value(),
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{slots: make(map[string]*regSlot)} }

// Register adds a named source; registering a duplicate name is an error.
func (r *Registry) Register(name string, src Source) error {
	if name == "" {
		return fmt.Errorf("service: instance name must be non-empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.slots[name]; ok {
		return fmt.Errorf("service: instance %q already registered", name)
	}
	r.slots[name] = &regSlot{src: src}
	return nil
}

// RegisterInstance registers an already-built instance (e.g. for tests).
func (r *Registry) RegisterInstance(name string, inst *joininference.Instance) error {
	return r.Register(name, func() (*joininference.Instance, error) { return inst, nil })
}

// RegisterCSV registers a pair of CSV files loaded on first use.
func (r *Registry) RegisterCSV(name, rPath, pPath string) error {
	return r.Register(name, func() (*joininference.Instance, error) {
		if _, err := os.Stat(rPath); err != nil {
			return nil, fmt.Errorf("service: instance %q: %w", name, err)
		}
		if _, err := os.Stat(pPath); err != nil {
			return nil, fmt.Errorf("service: instance %q: %w", name, err)
		}
		return joininference.LoadCSV(rPath, pPath)
	})
}

// RegisterTPCH registers one of the paper's five TPC-H goal joins,
// generated deterministically on first use.
func (r *Registry) RegisterTPCH(name string, j tpch.Join, multiplier int, seed int64) error {
	return r.Register(name, func() (*joininference.Instance, error) {
		d, err := tpch.Generate(multiplier, seed)
		if err != nil {
			return nil, err
		}
		inst, _, err := d.Instance(j)
		return inst, err
	})
}

// RegisterSynth registers a synthetic instance (Section 5.2 generator),
// generated deterministically on first use.
func (r *Registry) RegisterSynth(name string, cfg synth.Config, seed int64) error {
	return r.Register(name, func() (*joininference.Instance, error) {
		return synth.Generate(cfg, seed)
	})
}

// ErrUnknownInstance is wrapped by Get for names never registered.
var ErrUnknownInstance = fmt.Errorf("service: unknown instance")

// ErrBadDelta wraps delta validation failures (arity mismatch, out-of-range
// or double deletes) reported by Ingest.
var ErrBadDelta = errors.New("service: bad delta")

// AttachStore caches loaded entries in the KV store. Attach before first
// use (wiring happens at boot); log receives cache diagnostics as
// structured records, nil discards them.
func (r *Registry) AttachStore(kv store.KV, log *slog.Logger) {
	r.mu.Lock()
	r.kv = kv
	r.log = obs.OrDiscard(log)
	r.mu.Unlock()
}

// slot resolves a name to its slot plus the store wiring, without loading.
func (r *Registry) slot(name string) (*regSlot, store.KV, *slog.Logger, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot, ok := r.slots[name]
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %q", ErrUnknownInstance, name)
	}
	return slot, r.kv, obs.OrDiscard(r.log), nil
}

// Get loads (once) and returns the named entry at its current version: from
// the store cache when attached and populated, else from the source (and
// then into the cache) — in both cases rolled forward through any delta-log
// records newer than the loaded version.
func (r *Registry) Get(name string) (*Entry, error) {
	slot, kv, log, err := r.slot(name)
	if err != nil {
		return nil, err
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	r.loadLocked(slot, name, kv, log)
	return slot.e, slot.err
}

// loadLocked brings a slot to serving state; callers hold slot.mu. The
// load is attempted once: a source or delta-log failure sticks (retrying
// cannot help and hammering a broken source per request helps less).
func (r *Registry) loadLocked(slot *regSlot, name string, kv store.KV, log *slog.Logger) {
	if slot.loaded {
		return
	}
	slot.loaded = true
	var inst *joininference.Instance
	var cs *joininference.ClassSet
	if kv != nil {
		if data, ok, err := kv.Get(store.RegistryKey(name)); err == nil && ok {
			if i, c, err := joininference.DecodeInstanceCache(data); err == nil {
				inst, cs = i, c
				r.met.cacheHits.Add(1)
			} else {
				// A corrupt cache record falls back to the source — it will
				// be overwritten below.
				log.Warn("instance cache record rejected", "instance", name, "err", err)
			}
		}
	}
	fromCache := inst != nil
	if inst == nil {
		i, err := slot.src()
		if err != nil {
			slot.err = err
			return
		}
		inst, cs = i, joininference.PrecomputeClasses(i)
		r.met.reparses.Add(1)
	}
	// Roll forward through delta-log records past the loaded version. Each
	// replay runs the same incremental maintenance path a live ingest does,
	// so a restored instance is bit-identical to the one that served before
	// the restart. A gap or corrupt record is an error, not a fallback: the
	// log is the only record of ingested rows, and serving without them
	// would silently fork the history.
	replayed := 0
	if kv != nil {
		err := store.ReplayDeltaLog(kv, name, inst.Version(), func(version int64, d joininference.Delta) error {
			upd, err := joininference.ApplyDelta(inst, cs, d)
			if err != nil {
				return err
			}
			inst, cs = upd.To, upd.Classes
			replayed++
			return nil
		})
		if err != nil {
			slot.err = fmt.Errorf("service: replaying delta log for %q: %w", name, err)
			return
		}
		r.met.deltasReplayed.Add(int64(replayed))
	}
	slot.e = &Entry{Name: name, Inst: inst, Classes: cs}
	if kv != nil && (!fromCache || replayed > 0) {
		// Advance the cached record to the tip so the next boot decodes and
		// replays nothing.
		if err := kv.Put(store.RegistryKey(name), joininference.EncodeInstanceCache(inst, cs)); err != nil {
			log.Warn("caching instance failed", "instance", name, "err", err)
		}
	}
}

// Ingest applies one delta to the named instance: the data moves to the
// next version, the T-classes are maintained incrementally, the delta is
// appended to the store's log (when one is attached) and the cached entry
// record is advanced. The returned update carries everything downstream
// layers need to follow — Session.ApplyUpdate for live sessions,
// PolicyCache.ApplyUpdate for memoized decision trees. Validation failures
// wrap ErrBadDelta; nothing changes on error.
func (r *Registry) Ingest(name string, d joininference.Delta) (*joininference.InstanceUpdate, error) {
	slot, kv, log, err := r.slot(name)
	if err != nil {
		return nil, err
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	r.loadLocked(slot, name, kv, log)
	if slot.err != nil {
		return nil, slot.err
	}
	upd, err := joininference.ApplyDelta(slot.e.Inst, slot.e.Classes, d)
	if err != nil {
		if errors.Is(err, joininference.ErrStaleVersion) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	if kv != nil {
		// Store failures are logged, not fatal: the in-memory chain has
		// already advanced (the version history is linear and cannot be
		// rewound), and wedging the slot over a persistence error would take
		// live serving down with it.
		if err := store.AppendDelta(kv, name, upd.Version(), upd.Delta); err != nil {
			log.Warn("persisting delta failed", "instance", name, "err", err)
		}
		if err := kv.Put(store.RegistryKey(name), joininference.EncodeInstanceCache(upd.To, upd.Classes)); err != nil {
			log.Warn("caching instance failed", "instance", name, "err", err)
		}
	}
	slot.e = &Entry{Name: name, Inst: upd.To, Classes: upd.Classes}
	slot.updates = append(slot.updates, upd)
	r.met.ingests.Add(1)
	return upd, nil
}

// UpdatesSince returns the updates transforming version v of the named
// instance into its current tip, oldest first (empty when v is the tip).
// The history window starts at the version the slot loaded at; asking for
// anything outside [base, tip] is an error.
func (r *Registry) UpdatesSince(name string, v int64) ([]*joininference.InstanceUpdate, error) {
	slot, _, _, err := r.slot(name)
	if err != nil {
		return nil, err
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if !slot.loaded || slot.err != nil || slot.e == nil {
		return nil, nil
	}
	tip := slot.e.Inst.Version()
	base := tip - int64(len(slot.updates))
	if v < base || v > tip {
		return nil, fmt.Errorf("service: instance %q version %d outside the update window [%d, %d]", name, v, base, tip)
	}
	// slot.updates is append-only, so handing out a sub-slice is safe.
	return slot.updates[v-base:], nil
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.slots))
	for n := range r.slots {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefaultRegistry returns a registry preloaded with the paper's workloads:
// the five TPC-H goal joins at multiplier 1 ("tpch-join1" … "tpch-join5")
// and the six synthetic Figure 7 configurations ("synth-1" … "synth-6"),
// all at seed 1. Everything is lazy — nothing is generated until a session
// is created over it.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, j := range tpch.AllJoins() {
		// Registration cannot fail on fresh names; ignore the nil error.
		_ = r.RegisterTPCH(fmt.Sprintf("tpch-join%d", int(j)), j, 1, 1)
	}
	for i, cfg := range synth.PaperConfigs() {
		_ = r.RegisterSynth(fmt.Sprintf("synth-%d", i+1), cfg, 1)
	}
	return r
}

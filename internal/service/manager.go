package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	joininference "repro"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/store"
)

// Sentinel errors of the service layer.
var (
	// ErrSessionNotFound reports an id the manager does not hold (never
	// created, evicted, or deleted).
	ErrSessionNotFound = errors.New("service: session not found")
	// ErrClosed reports use of a manager after Close.
	ErrClosed = errors.New("service: manager closed")
)

// Params configures a new session. The zero value of each field means the
// root package's default (strategy TD, seed 1, no budget, serial lookahead).
type Params struct {
	// Instance names a registry entry.
	Instance string `json:"instance"`
	// Semijoin selects a semijoin session (questions are single rows of R).
	Semijoin bool `json:"semijoin,omitempty"`
	// Strategy, Seed, Budget, Parallelism mirror the root package options.
	Strategy    joininference.StrategyID `json:"strategy,omitempty"`
	Seed        int64                    `json:"seed,omitempty"`
	Budget      int                      `json:"budget,omitempty"`
	Parallelism int                      `json:"parallelism,omitempty"`
	// SoftThreshold > 0 enables error-tolerant soft inference with that
	// belief threshold (WithSoftInference); ErrorBudget > 0 allows that
	// many committed answers to be retracted on contradiction
	// (WithErrorBudget — which implies soft inference at the default
	// threshold when SoftThreshold is unset).
	SoftThreshold float64 `json:"soft_threshold,omitempty"`
	ErrorBudget   int     `json:"error_budget,omitempty"`
}

// Info is a session's public status.
type Info struct {
	ID       string                   `json:"id"`
	Instance string                   `json:"instance"`
	Semijoin bool                     `json:"semijoin,omitempty"`
	Strategy joininference.StrategyID `json:"strategy,omitempty"`
	Asked    int                      `json:"asked"`
	Budget   int                      `json:"budget,omitempty"`
	// Classes is the number of T-classes (the worst-case number of
	// questions); 0 for semijoin sessions.
	Classes int `json:"classes,omitempty"`
	// Done reports the halt condition Γ: the predicate is determined.
	Done bool `json:"done"`
	// Soft carries the soft layer's counters for error-tolerant sessions;
	// nil for hard sessions.
	Soft *joininference.SoftStats `json:"soft,omitempty"`
}

// Answer is one labeled question coming back from a worker. Worker and
// Weight are meaningful only for soft sessions: they attribute the vote to
// a worker id and scale its belief contribution (0 means unit weight).
// Hard sessions ignore them.
type Answer struct {
	joininference.QuestionRef
	Positive bool    `json:"positive"`
	Worker   string  `json:"worker,omitempty"`
	Weight   float64 `json:"weight,omitempty"`
}

// AnswerResult reports what a batch of answers did to the session.
type AnswerResult struct {
	// Applied counts answers recorded; Skipped counts answers whose
	// question an earlier answer (possibly in the same batch) had already
	// decided — normal in parallel crowd rounds, not an error.
	Applied int  `json:"applied"`
	Skipped int  `json:"skipped"`
	Asked   int  `json:"asked"`
	Done    bool `json:"done"`
}

// PredicateInfo is the current inference result.
type PredicateInfo struct {
	// Predicate is the inferred predicate in the package's textual form
	// (parseable back with ParsePredicate); "TRUE" is the empty conjunction.
	Predicate string `json:"predicate"`
	// SQL renders it as a runnable join (or semijoin) query.
	SQL   string `json:"sql"`
	Asked int    `json:"asked"`
	Done  bool   `json:"done"`
}

// SessionSnapshot is the service-level durable form of a session: the root
// package's Snapshot plus the instance name needed to rebuild it. This is
// what GET /sessions/{id}/snapshot returns and what --persist-dir writes.
type SessionSnapshot struct {
	ID       string                  `json:"id"`
	Instance string                  `json:"instance"`
	Snapshot *joininference.Snapshot `json:"snapshot"`
}

// Options configures a Manager.
type Options struct {
	// TTL evicts sessions idle longer than this on SweepExpired; 0 disables
	// eviction.
	TTL time.Duration
	// SweepInterval is how often the janitor (StartJanitor with
	// JanitorInterval) sweeps for expired sessions; 0 derives it from the
	// TTL (a quarter of it, capped at one minute).
	SweepInterval time.Duration
	// PersistDir, when non-empty, persists sessions to disk on eviction and
	// Close, and restores them in NewManager.
	PersistDir string
	// Store, when non-nil, persists sessions as compact binary records in
	// the KV store instead of one JSON file per session, and restores them
	// in NewManager. It takes precedence over PersistDir (use
	// MigratePersistDir to convert an existing JSON dir). The manager does
	// not own the store — the caller closes it after Close.
	Store store.KV
	// MigratePersistDir, when non-empty alongside Store, converts the
	// legacy JSON persist dir into the store before restoring (see the
	// MigratePersistDir function).
	MigratePersistDir string
	// PolicyCache, when non-nil, is shared by every session the manager
	// creates or resumes: sessions over the same instance memoize their
	// strategy's decision tree in it, so the first user of a popular
	// instance pays for the lookahead and later ones hit the cache.
	PolicyCache *joininference.PolicyCache
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// Logger receives restore/persist diagnostics and migration/retraction
	// events as structured records; nil discards them.
	Logger *slog.Logger
	// Obs, when non-nil, wires the manager into the telemetry bundle:
	// sessions report per-question strategy/cache/store latency segments,
	// the policy cache its page-in timings, the manager's counters become
	// /metrics families, and Questions/Answer run under trace spans.
	Obs *Obs
	// RequestTimeout bounds each HTTP request served by NewHandler with a
	// per-request context deadline (reaching the L2S lookahead, which
	// checks cancellation); 0 disables the wrap.
	RequestTimeout time.Duration
	// MaxConcurrent, when positive, bounds in-flight requests per
	// compute-heavy route (session create/resume, questions, answers,
	// ingest); MaxQueue bounds how many more may wait for a slot before new
	// arrivals are shed with 429. Zero MaxConcurrent disables admission
	// control.
	MaxConcurrent int
	MaxQueue      int
	// StoreBreaker, when non-nil alongside Store, is the circuit breaker
	// guarding the persist path (share it with the policy tier via
	// WithTierBreaker so one store-health verdict governs both). Nil with a
	// Store builds a private breaker from BreakerThreshold/BreakerCooloff.
	StoreBreaker *resilience.Breaker
	// BreakerThreshold and BreakerCooloff configure the private breaker
	// (defaults 5 consecutive failures, 5s cool-off); ignored when
	// StoreBreaker is set.
	BreakerThreshold int
	BreakerCooloff   time.Duration
	// PersistQueueLimit bounds the write-behind retry queue (default 1024
	// session ids).
	PersistQueueLimit int
}

// JanitorInterval resolves the sweep cadence: the configured SweepInterval,
// or TTL/4 capped at one minute when unset.
func (o Options) JanitorInterval() time.Duration {
	if o.SweepInterval > 0 {
		return o.SweepInterval
	}
	interval := o.TTL / 4
	if interval > time.Minute {
		interval = time.Minute
	}
	return interval
}

// Manager owns live sessions: create/answer/snapshot/evict with per-session
// locking — concurrent requests to different sessions proceed in parallel,
// even while one session computes an expensive L2S lookahead — plus TTL
// eviction and disk persistence. All methods are safe for concurrent use.
type Manager struct {
	reg  *Registry
	opts Options
	now  func() time.Time
	log  *slog.Logger
	met  *managerMetrics

	mu       sync.Mutex
	sessions map[string]*managed
	closed   bool

	// breaker guards the store persist path (nil-safe: always closed
	// without a store); pq is the write-behind retry queue its failures
	// feed; stopPersist stops the background re-persist worker.
	breaker     *resilience.Breaker
	pq          *persistQueue
	stopPersist func()
	// gates are the per-route admission gates (empty map without admission
	// control); restoreFails counts boot-restore records that were skipped.
	gates        map[string]*resilience.Gate
	restoreFails expvar.Int

	// crowdMu guards the service-wide worker-reliability counters, fed by
	// the soft-inference commit/retraction events sessions emit.
	crowdMu sync.Mutex
	crowd   crowdCounters
}

// crowdCounters aggregates soft-inference vote outcomes across every
// session the manager serves.
type crowdCounters struct {
	votes       int64
	commits     int64
	retractions int64
	workers     map[string]*workerTally
}

type workerTally struct {
	votes, agreed, retracted int64
}

// WorkerCounters is one worker's service-wide vote record: votes behind
// committed answers, how many of those agreed with the committed label,
// and how many were later retracted. The ratio agreed/votes is an
// empirical reliability estimate.
type WorkerCounters struct {
	Worker    string `json:"worker"`
	Votes     int64  `json:"votes"`
	Agreed    int64  `json:"agreed"`
	Retracted int64  `json:"retracted"`
}

// CrowdMetrics is the "crowd" section of /debug/metrics: soft-inference
// totals plus the per-worker breakdown.
type CrowdMetrics struct {
	// Votes counts worker votes behind committed answers; Commits and
	// Retractions count soft commit and retraction events.
	Votes       int64            `json:"votes"`
	Commits     int64            `json:"commits"`
	Retractions int64            `json:"retractions"`
	Workers     []WorkerCounters `json:"workers,omitempty"`
}

// absorbSoftEvents drains a session's soft commit/retraction events into
// the service-wide crowd counters; callers hold ms.mu.
func (m *Manager) absorbSoftEvents(ms *managed) {
	if !ms.sess.Soft() {
		return
	}
	events := ms.sess.SoftEvents()
	if len(events) == 0 {
		return
	}
	m.crowdMu.Lock()
	defer m.crowdMu.Unlock()
	if m.crowd.workers == nil {
		m.crowd.workers = make(map[string]*workerTally)
	}
	for _, ev := range events {
		switch ev.Kind {
		case joininference.SoftCommit:
			m.crowd.commits++
			m.crowd.votes += int64(len(ev.Votes))
			for _, v := range ev.Votes {
				w := m.tallyLocked(v.Worker)
				w.votes++
				if v.Positive == ev.Positive {
					w.agreed++
				}
			}
		case joininference.SoftRetract:
			m.crowd.retractions++
			for _, v := range ev.Votes {
				m.tallyLocked(v.Worker).retracted++
			}
			m.log.Warn("soft answer retracted",
				"session", ms.id, "instance", ms.params.Instance, "votes", len(ev.Votes))
		}
	}
}

// tallyLocked returns the tally for a worker id (anonymous votes pool
// under ""); callers hold crowdMu.
func (m *Manager) tallyLocked(worker string) *workerTally {
	w := m.crowd.workers[worker]
	if w == nil {
		w = &workerTally{}
		m.crowd.workers[worker] = w
	}
	return w
}

// crowdMetrics snapshots the crowd counters, workers sorted by id; nil
// when no soft events were ever absorbed.
func (m *Manager) crowdMetrics() *CrowdMetrics {
	m.crowdMu.Lock()
	defer m.crowdMu.Unlock()
	if m.crowd.commits == 0 && m.crowd.retractions == 0 {
		return nil
	}
	out := &CrowdMetrics{
		Votes:       m.crowd.votes,
		Commits:     m.crowd.commits,
		Retractions: m.crowd.retractions,
	}
	for id, w := range m.crowd.workers {
		out.Workers = append(out.Workers, WorkerCounters{
			Worker: id, Votes: w.votes, Agreed: w.agreed, Retracted: w.retracted,
		})
	}
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].Worker < out.Workers[j].Worker })
	return out
}

// managerMetrics are the manager's monotonic counters, expvar-typed
// (atomic, individually publishable) so command frontends can expose them
// without extra locking.
type managerMetrics struct {
	created, resumed, evicted, deleted expvar.Int
	questions, answers                 expvar.Int
	ingests, migrated, retired         expvar.Int
}

// Metrics is a point-in-time snapshot of the manager's operational
// counters, served by joinserve's /debug/metrics endpoint and publishable
// as an expvar.Func.
type Metrics struct {
	// SessionsLive counts sessions currently resident in memory.
	SessionsLive int `json:"sessions_live"`
	// SessionsCreated / SessionsResumed count Create and Resume successes
	// (boot-time restores count as resumes); SessionsEvicted counts TTL
	// sweeps, SessionsDeleted explicit deletions.
	SessionsCreated int64 `json:"sessions_created"`
	SessionsResumed int64 `json:"sessions_resumed"`
	SessionsEvicted int64 `json:"sessions_evicted"`
	SessionsDeleted int64 `json:"sessions_deleted"`
	// QuestionsServed counts questions handed out; AnswersApplied counts
	// answers recorded (skipped answers excluded).
	QuestionsServed int64 `json:"questions_served"`
	AnswersApplied  int64 `json:"answers_applied"`
	// DeltasIngested counts deltas applied through Ingest;
	// SessionsMigrated counts live sessions carried onto a new instance
	// version at a question boundary; SessionsRetired counts sessions
	// dropped because their answers turned inconsistent under the new data.
	DeltasIngested   int64 `json:"deltas_ingested"`
	SessionsMigrated int64 `json:"sessions_migrated"`
	SessionsRetired  int64 `json:"sessions_retired"`
	// Registry reports how instances reached serving state (cache hits vs
	// re-parses, delta-log replays).
	Registry RegistryStats `json:"registry"`
	// PolicyCache reports the shared policy cache's counters when one is
	// configured.
	PolicyCache *joininference.PolicyCacheStats `json:"policy_cache,omitempty"`
	// Store reports the persistent store's counters (gets/puts/scans,
	// live/dead bytes, compactions) when one is configured.
	Store *store.Stats `json:"store,omitempty"`
	// Crowd reports soft-inference vote outcomes per worker (present once
	// any soft session has committed or retracted an answer).
	Crowd *CrowdMetrics `json:"crowd,omitempty"`
	// Resilience reports the breaker, write-behind persist queue, and
	// per-route admission gates (present when a store or admission control
	// is configured).
	Resilience *ResilienceMetrics `json:"resilience,omitempty"`
}

// Metrics returns the manager's current counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	live := len(m.sessions)
	m.mu.Unlock()
	out := Metrics{
		SessionsLive:     live,
		SessionsCreated:  m.met.created.Value(),
		SessionsResumed:  m.met.resumed.Value(),
		SessionsEvicted:  m.met.evicted.Value(),
		SessionsDeleted:  m.met.deleted.Value(),
		QuestionsServed:  m.met.questions.Value(),
		AnswersApplied:   m.met.answers.Value(),
		DeltasIngested:   m.met.ingests.Value(),
		SessionsMigrated: m.met.migrated.Value(),
		SessionsRetired:  m.met.retired.Value(),
		Registry:         m.reg.Stats(),
	}
	if m.opts.PolicyCache != nil {
		st := m.opts.PolicyCache.Stats()
		out.PolicyCache = &st
	}
	if m.opts.Store != nil {
		st := m.opts.Store.Stats()
		out.Store = &st
	}
	out.Crowd = m.crowdMetrics()
	out.Resilience = m.resilienceMetrics()
	return out
}

// managed pairs a session with its lock and bookkeeping. The manager's map
// lock is never held while a session's lock is awaited, so slow sessions
// do not serialize the service.
type managed struct {
	mu       sync.Mutex
	id       string
	params   Params
	sess     *joininference.Session
	lastUsed time.Time
	gone     bool
	// done caches Session.Done() — for semijoin sessions an NP-hard scan —
	// so status calls don't recompute it; nil = unknown, reset when answers
	// are applied. Guarded by mu.
	done *bool

	// infoMu guards lastInfo: the status as of the last completed
	// operation, served by List when the session is busy mid-operation.
	infoMu   sync.Mutex
	lastInfo Info
}

// NewManager builds a manager over the registry. With a PersistDir it
// restores every persisted session before returning; files that no longer
// decode or resume are skipped (and logged), never fatal — a corrupt
// snapshot must not take the service down.
func NewManager(reg *Registry, opts Options) (*Manager, error) {
	m := &Manager{
		reg:      reg,
		opts:     opts,
		now:      opts.Now,
		log:      obs.OrDiscard(opts.Logger),
		met:      &managerMetrics{},
		sessions: make(map[string]*managed),
	}
	if m.now == nil {
		m.now = time.Now
	}
	m.gates = make(map[string]*resilience.Gate)
	if opts.MaxConcurrent > 0 {
		for _, route := range admissionRoutes {
			m.gates[route] = resilience.NewGate(opts.MaxConcurrent, opts.MaxQueue)
		}
	}
	if opts.Store != nil {
		m.breaker = opts.StoreBreaker
		if m.breaker == nil {
			log := m.log
			m.breaker = resilience.NewBreaker(resilience.BreakerOptions{
				Threshold: opts.BreakerThreshold,
				Cooloff:   opts.BreakerCooloff,
				OnChange: func(from, to resilience.BreakerState) {
					log.Warn("store breaker state change", "from", from.String(), "to", to.String())
				},
			})
		}
		m.pq = newPersistQueue(opts.PersistQueueLimit)
	}
	if opts.Obs != nil {
		opts.Obs.bind(m)
		if opts.PolicyCache != nil {
			opts.PolicyCache.SetTelemetry(opts.Obs)
		}
	}
	switch {
	case opts.Store != nil:
		if opts.MigratePersistDir != "" {
			n, err := MigratePersistDir(opts.Store, opts.MigratePersistDir, m.log)
			if err != nil {
				return nil, err
			}
			if n > 0 {
				m.log.Info("migrated legacy persist dir into the store",
					"sessions", n, "dir", opts.MigratePersistDir)
			}
		}
		if err := m.restoreStore(); err != nil {
			return nil, err
		}
	case opts.PersistDir != "":
		if err := os.MkdirAll(opts.PersistDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: persist dir: %w", err)
		}
		if err := m.restoreAll(); err != nil {
			return nil, err
		}
	}
	if opts.Store != nil {
		m.stopPersist = m.startPersistWorker()
	}
	return m, nil
}

// Create builds a session over a registered instance and returns its info.
func (m *Manager) Create(p Params) (Info, error) {
	if err := validStrategy(p.Strategy); err != nil {
		return Info{}, err
	}
	entry, err := m.reg.Get(p.Instance)
	if err != nil {
		return Info{}, err
	}
	opts := m.sessionOptions(p)
	var sess *joininference.Session
	if p.Semijoin {
		sess = joininference.NewSemijoinSession(entry.Inst, opts...)
	} else {
		opts = append(opts, joininference.WithPrecomputedClasses(entry.Classes))
		sess = joininference.NewSession(entry.Inst, opts...)
	}
	info, err := m.add("", p, sess)
	if err == nil {
		m.met.created.Add(1)
	}
	return info, err
}

// sessionOptions translates creation params into root-package options,
// attaching the shared policy cache (keyed by the instance's registry
// name) when one is configured.
func (m *Manager) sessionOptions(p Params) []joininference.Option {
	var opts []joininference.Option
	if p.Strategy != "" {
		opts = append(opts, joininference.WithStrategy(p.Strategy))
	}
	if p.Seed != 0 {
		opts = append(opts, joininference.WithSeed(p.Seed))
	}
	if p.Budget != 0 {
		opts = append(opts, joininference.WithBudget(p.Budget))
	}
	if p.Parallelism != 0 {
		opts = append(opts, joininference.WithParallelism(p.Parallelism))
	}
	if p.SoftThreshold > 0 {
		opts = append(opts, joininference.WithSoftInference(p.SoftThreshold))
	}
	if p.ErrorBudget > 0 {
		opts = append(opts, joininference.WithErrorBudget(p.ErrorBudget))
	}
	if m.opts.PolicyCache != nil {
		opts = append(opts, joininference.WithPolicyCache(m.opts.PolicyCache, p.Instance))
	}
	if m.opts.Obs != nil {
		opts = append(opts, joininference.WithTelemetry(m.opts.Obs))
	}
	return opts
}

// validStrategy rejects unknown strategy ids at session creation instead of
// at the first question ("" selects the root package's default).
func validStrategy(id joininference.StrategyID) error {
	if id == "" {
		return nil
	}
	for _, known := range joininference.KnownStrategies() {
		if id == known {
			return nil
		}
	}
	return fmt.Errorf("%w: %q", joininference.ErrUnknownStrategy, id)
}

// Resume rebuilds a session from a service snapshot (same determinism
// guarantee as joininference.ResumeSession) and registers it — under its
// original id when still free, else a fresh one.
func (m *Manager) Resume(snap *SessionSnapshot) (Info, error) {
	if snap == nil || snap.Snapshot == nil {
		return Info{}, fmt.Errorf("%w: empty service snapshot", joininference.ErrBadSnapshot)
	}
	// Reject unknown strategy ids now: ResumeSession materializes the
	// strategy lazily, and a zombie session that 400s on every /questions
	// call (and re-restores from disk on every boot) helps nobody.
	if err := validStrategy(snap.Snapshot.Strategy); err != nil {
		return Info{}, err
	}
	entry, err := m.reg.Get(snap.Instance)
	if err != nil {
		return Info{}, err
	}
	var opts []joininference.Option
	semijoin := snap.Snapshot.Kind == joininference.SnapshotKindSemijoin
	if !semijoin {
		opts = append(opts, joininference.WithPrecomputedClasses(entry.Classes))
	}
	if m.opts.PolicyCache != nil {
		opts = append(opts, joininference.WithPolicyCache(m.opts.PolicyCache, snap.Instance))
	}
	if m.opts.Obs != nil {
		opts = append(opts, joininference.WithTelemetry(m.opts.Obs))
	}
	sess, err := joininference.ResumeSession(entry.Inst, snap.Snapshot, opts...)
	if err != nil {
		return Info{}, err
	}
	p := Params{
		Instance:    snap.Instance,
		Semijoin:    semijoin,
		Strategy:    snap.Snapshot.Strategy,
		Seed:        snap.Snapshot.Seed,
		Budget:      snap.Snapshot.Budget,
		Parallelism: snap.Snapshot.Parallelism,
	}
	if snap.Snapshot.Soft != nil {
		// ResumeSession already re-enabled the soft layer from the
		// snapshot; mirror it in the params so Info reports it.
		p.SoftThreshold = snap.Snapshot.Soft.Threshold
		p.ErrorBudget = snap.Snapshot.Soft.ErrorBudget
	}
	info, err := m.add(snap.ID, p, sess)
	if err == nil {
		m.met.resumed.Add(1)
	}
	return info, err
}

// WarmPolicy precomputes the policy decision tree of a registered instance
// breadth-first to the given depth (see PolicyCache.Precompute), so the
// first depth questions of future sessions with these params are pure
// cache hits. The params' budget is ignored — warming stops for everyone
// if the tree is cut short — and semijoin trees warm organically as
// sessions run. It returns the number of nodes expanded.
func (m *Manager) WarmPolicy(ctx context.Context, p Params, depth int) (int, error) {
	if m.opts.PolicyCache == nil {
		return 0, fmt.Errorf("service: no policy cache configured")
	}
	if p.Semijoin {
		return 0, fmt.Errorf("service: semijoin policy trees cannot be precomputed")
	}
	if err := validStrategy(p.Strategy); err != nil {
		return 0, err
	}
	entry, err := m.reg.Get(p.Instance)
	if err != nil {
		return 0, err
	}
	p.Budget = 0
	opts := append(m.sessionOptions(p), joininference.WithPrecomputedClasses(entry.Classes))
	return m.opts.PolicyCache.Precompute(ctx, entry.Inst, p.Instance, depth, opts...)
}

// add registers a session under id (or a fresh random id when the
// requested one is malformed or taken) and returns its info.
func (m *Manager) add(id string, p Params, sess *joininference.Session) (Info, error) {
	ms := &managed{params: p, sess: sess, lastUsed: m.now()}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Info{}, ErrClosed
	}
	if !validID(id) || m.sessions[id] != nil {
		for {
			id = newID()
			if m.sessions[id] == nil {
				break
			}
		}
	}
	ms.id = id
	m.sessions[id] = ms
	// Write the record through immediately: a session created (or resumed)
	// just before a crash must exist after the restart. Exclusive access —
	// nothing else can reach ms until m.mu drops.
	m.storePersist(ms)
	return ms.info(), nil
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: crypto/rand unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// validID reports whether id has the exact shape newID produces. Ids
// arrive from clients (resume bodies, URL paths) and are used as path
// components under PersistDir, so anything else — "../../tmp/evil",
// absolute paths, empty strings — must never reach filepath.Join.
func validID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// isDone returns the session's halt state through the done cache; callers
// hold ms.mu (or have exclusive access).
func (ms *managed) isDone() bool {
	if ms.done == nil {
		d := ms.sess.Done()
		ms.done = &d
	}
	return *ms.done
}

// info builds the session's status and refreshes the lastInfo cache;
// callers hold ms.mu (or have exclusive access).
func (ms *managed) info() Info {
	in := Info{
		ID:       ms.id,
		Instance: ms.params.Instance,
		Semijoin: ms.params.Semijoin,
		Strategy: ms.params.Strategy,
		Asked:    ms.sess.Questions(),
		Budget:   ms.sess.Budget(),
		Classes:  ms.sess.Classes(),
		Done:     ms.isDone(),
	}
	if ms.sess.Soft() {
		st := ms.sess.SoftStats()
		in.Soft = &st
	}
	ms.infoMu.Lock()
	ms.lastInfo = in
	ms.infoMu.Unlock()
	return in
}

// acquire locks the named session for exclusive use; the caller must call
// release. The manager map lock is dropped before the session lock is
// taken, so a slow session never blocks unrelated requests.
func (m *Manager) acquire(id string) (*managed, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	ms := m.sessions[id]
	m.mu.Unlock()
	if ms == nil {
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	ms.mu.Lock()
	if ms.gone {
		ms.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	return ms, nil
}

func (m *Manager) release(ms *managed) {
	ms.lastUsed = m.now()
	ms.mu.Unlock()
}

// Get returns the session's status.
func (m *Manager) Get(id string) (Info, error) {
	ms, err := m.acquire(id)
	if err != nil {
		return Info{}, err
	}
	defer m.release(ms)
	return ms.info(), nil
}

// List returns every live session's status, sorted by id.
func (m *Manager) List() []Info {
	m.mu.Lock()
	all := make([]*managed, 0, len(m.sessions))
	for _, ms := range m.sessions {
		all = append(all, ms)
	}
	m.mu.Unlock()
	out := make([]Info, 0, len(all))
	for _, ms := range all {
		// Never wait on a session mid-operation (it may be deep in an L2S
		// lookahead): serve its status as of the last completed operation
		// instead.
		if !ms.mu.TryLock() {
			ms.infoMu.Lock()
			out = append(out, ms.lastInfo)
			ms.infoMu.Unlock()
			continue
		}
		if !ms.gone {
			out = append(out, ms.info())
		}
		ms.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IngestResult reports what one delta did across the service: the new
// instance version and class counts, plus what happened to the shared
// policy cache's memoized decision trees.
type IngestResult struct {
	Instance string `json:"instance"`
	// Version is the instance version the delta produced; Classes the
	// T-class count at that version.
	Version int64 `json:"version"`
	Classes int   `json:"classes"`
	// ClassesMinted / ClassesRetired count T-classes the delta created and
	// emptied.
	ClassesMinted  int `json:"classes_minted"`
	ClassesRetired int `json:"classes_retired"`
	// PolicyTrees* / PolicyNodes* count what the update did to the shared
	// policy cache's resident trees (all zero without a cache).
	PolicyTreesMigrated int `json:"policy_trees_migrated,omitempty"`
	PolicyTreesDropped  int `json:"policy_trees_dropped,omitempty"`
	PolicyNodesMigrated int `json:"policy_nodes_migrated,omitempty"`
	PolicyNodesRetired  int `json:"policy_nodes_retired,omitempty"`
}

// Ingest applies one delta to a registered instance: the registry advances
// the data and its T-classes to the next version (persisting the delta when
// a store is attached), the shared policy cache migrates or retires its
// memoized trees, and live sessions follow at their next question boundary
// — a session resumed on the new version and one migrated onto it ask
// bit-identical questions.
func (m *Manager) Ingest(name string, d joininference.Delta) (IngestResult, error) {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return IngestResult{}, ErrClosed
	}
	upd, err := m.reg.Ingest(name, d)
	if err != nil {
		return IngestResult{}, err
	}
	m.met.ingests.Add(1)
	res := IngestResult{
		Instance:       name,
		Version:        upd.Version(),
		Classes:        upd.Classes.Len(),
		ClassesMinted:  upd.ClassesMinted(),
		ClassesRetired: upd.ClassesRetired(),
	}
	if m.opts.PolicyCache != nil {
		inv := m.opts.PolicyCache.ApplyUpdate(name, upd)
		res.PolicyTreesMigrated = inv.TreesMigrated
		res.PolicyTreesDropped = inv.TreesDropped
		res.PolicyNodesMigrated = inv.NodesMigrated
		res.PolicyNodesRetired = inv.NodesRetired
	}
	return res, nil
}

// migrateLocked carries the session onto its instance's current version
// when ingests have advanced it, applying the pending updates in order
// through the incremental maintenance path. Sessions migrate at question
// boundaries (Questions, Answer) — status, predicate and snapshot reads
// serve the version the session last interacted on. A session whose
// surviving answers turn inconsistent under the new data (a semijoin
// positive losing its last witness) is retired: removed from the manager
// with its persisted copy, and the caller's request fails with the
// underlying ErrInconsistent. Callers hold ms.mu.
func (m *Manager) migrateLocked(ms *managed) error {
	upds, err := m.reg.UpdatesSince(ms.params.Instance, ms.sess.InstanceVersion())
	if err != nil || len(upds) == 0 {
		return err
	}
	for _, upd := range upds {
		if err := ms.sess.ApplyUpdate(upd); err != nil {
			m.retireLocked(ms)
			m.log.Warn("session retired: inconsistent under new data",
				"session", ms.id, "instance", ms.params.Instance,
				"version", upd.Version(), "err", err)
			return fmt.Errorf("service: session %s cannot follow instance %q to version %d: %w",
				ms.id, ms.params.Instance, upd.Version(), err)
		}
	}
	ms.done = nil
	ms.info()
	m.met.migrated.Add(1)
	m.log.Info("session migrated",
		"session", ms.id, "instance", ms.params.Instance,
		"version", ms.sess.InstanceVersion(), "updates", len(upds))
	m.storePersist(ms)
	return nil
}

// retireLocked removes a session that can no longer serve, deleting its
// persisted copy so it does not resurrect on the next boot. Callers hold
// ms.mu (which stays held — the caller's release unlocks it).
func (m *Manager) retireLocked(ms *managed) {
	ms.gone = true
	m.mu.Lock()
	delete(m.sessions, ms.id)
	m.mu.Unlock()
	m.met.retired.Add(1)
	if m.opts.Store != nil {
		if err := m.opts.Store.Delete(store.SessionKey(ms.id)); err != nil {
			m.log.Warn("removing persisted session failed", "session", ms.id, "err", err)
		}
	} else if m.opts.PersistDir != "" {
		if err := os.Remove(m.persistPath(ms.id)); err != nil && !os.IsNotExist(err) {
			m.log.Warn("removing persisted session failed", "session", ms.id, "err", err)
		}
	}
}

// Questions returns up to k pairwise-informative questions for parallel
// dispatch. The context cancels mid-computation (including inside an L2S
// lookahead). An empty slice means the session is done.
func (m *Manager) Questions(ctx context.Context, id string, k int) ([]joininference.Question, error) {
	sp := m.tracer().StartLeaf(ctx, "session.questions")
	sp.SetSession(id)
	defer sp.End()
	ms, err := m.acquire(id)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	defer m.release(ms)
	// The request's deadline may have expired while waiting for the session
	// lock; honor it before computing anything (cheap strategies never
	// check ctx themselves).
	if err := ctx.Err(); err != nil {
		sp.SetError(err)
		return nil, err
	}
	if err := m.migrateLocked(ms); err != nil {
		sp.SetError(err)
		return nil, err
	}
	qs, err := ms.sess.NextQuestions(ctx, k)
	sp.SetError(err)
	if err == nil {
		// NextQuestions just answered the done question for free.
		d := len(qs) == 0
		ms.done = &d
		ms.info()
		m.met.questions.Add(int64(len(qs)))
	}
	return qs, err
}

// Answer applies a batch of labeled questions. Answers whose question an
// earlier answer already decided are skipped and counted, mirroring
// Session.AnswerBatch; a ref that does not address the instance at all is
// an error.
func (m *Manager) Answer(ctx context.Context, id string, answers []Answer) (AnswerResult, error) {
	sp := m.tracer().StartLeaf(ctx, "session.answers")
	sp.SetSession(id)
	defer sp.End()
	ms, err := m.acquire(id)
	if err != nil {
		sp.SetError(err)
		return AnswerResult{}, err
	}
	defer m.release(ms)
	if err := ctx.Err(); err != nil {
		sp.SetError(err)
		return AnswerResult{}, err
	}
	if err := m.migrateLocked(ms); err != nil {
		sp.SetError(err)
		return AnswerResult{}, err
	}
	var res AnswerResult
	// Store-backed sessions persist on every applied answer, not just at
	// eviction/shutdown: a kill -9 then restart loses nothing that was
	// acked. Registered after the release defer, so it runs while ms.mu is
	// still held — and on early-return errors too, which may have applied a
	// prefix of the batch. This is the per-question "store" latency segment.
	defer func() {
		if res.Applied > 0 {
			m.storePersistTimed(ms)
		}
	}()
	// Resolve every ref before applying anything, so a malformed ref
	// rejects the whole batch instead of leaving it half-recorded (the
	// client could not tell which half).
	qs := make([]joininference.Question, len(answers))
	for i, a := range answers {
		q, err := ms.sess.QuestionByRef(a.QuestionRef)
		if err != nil {
			sp.SetError(err)
			return res, err
		}
		qs[i] = q
	}
	soft := ms.sess.Soft()
	// Soft sessions emit commit/retraction events as votes apply; fold
	// them into the service-wide crowd counters even when the batch fails
	// partway (the applied prefix produced real events). Registered while
	// ms.mu is still held.
	if soft {
		defer m.absorbSoftEvents(ms)
	}
	for i, a := range answers {
		if err := ctx.Err(); err != nil {
			sp.SetError(err)
			return res, err
		}
		if !ms.sess.IsInformative(qs[i]) {
			res.Skipped++
			continue
		}
		label := joininference.Negative
		if a.Positive {
			label = joininference.Positive
		}
		var err error
		if soft {
			// Route through the belief layer: the vote accumulates and
			// commits only when the class's belief clears the threshold.
			err = ms.sess.AnswerVote(qs[i], label, joininference.Vote{Worker: a.Worker, Weight: a.Weight})
		} else {
			err = ms.sess.Answer(qs[i], label)
		}
		if err != nil {
			sp.SetError(err)
			return res, err
		}
		res.Applied++
		// Count (and invalidate Done) immediately, not after the loop: an
		// early return — cancellation, a later bad answer — must not leave a
		// stale Done or an answers_applied count below what the session
		// actually recorded.
		m.met.answers.Add(1)
		ms.done = nil
	}
	res.Asked = ms.sess.Questions()
	res.Done = ms.isDone()
	ms.info()
	return res, nil
}

// Explanation is a session's answer-attribution report: a Banzhaf-style
// contribution score per committed answer ("why did you infer this
// join?"), plus the soft layer's counters when the session is error-
// tolerant. Served by GET /sessions/{id}/explain.
type Explanation struct {
	ID           string                            `json:"id"`
	Attributions []joininference.AnswerAttribution `json:"attributions"`
	Soft         *joininference.SoftStats          `json:"soft,omitempty"`
}

// Explain returns the session's per-answer attribution report.
func (m *Manager) Explain(id string) (*Explanation, error) {
	ms, err := m.acquire(id)
	if err != nil {
		return nil, err
	}
	defer m.release(ms)
	out := &Explanation{ID: id, Attributions: ms.sess.Explain()}
	if ms.sess.Soft() {
		st := ms.sess.SoftStats()
		out.Soft = &st
	}
	return out, nil
}

// Predicate returns the current inferred predicate (text and SQL).
func (m *Manager) Predicate(id string) (PredicateInfo, error) {
	ms, err := m.acquire(id)
	if err != nil {
		return PredicateInfo{}, err
	}
	defer m.release(ms)
	u := ms.sess.Universe()
	p := ms.sess.Inferred()
	return PredicateInfo{
		Predicate: p.Format(u),
		SQL:       joininference.SQL(u, p, ms.params.Semijoin, false),
		Asked:     ms.sess.Questions(),
		Done:      ms.isDone(),
	}, nil
}

// Snapshot captures the session's durable state without disturbing it.
func (m *Manager) Snapshot(id string) (*SessionSnapshot, error) {
	ms, err := m.acquire(id)
	if err != nil {
		return nil, err
	}
	defer m.release(ms)
	return ms.snapshotLocked()
}

// snapshotLocked builds the service snapshot; callers hold ms.mu.
func (ms *managed) snapshotLocked() (*SessionSnapshot, error) {
	sn, err := ms.sess.Snapshot()
	if err != nil {
		return nil, err
	}
	return &SessionSnapshot{ID: ms.id, Instance: ms.params.Instance, Snapshot: sn}, nil
}

// Delete removes a session the client is done with, discarding any
// persisted copy (deletion is explicit abandonment — unlike TTL eviction,
// which persists first). A session that only exists as a TTL-evicted
// snapshot on disk is deletable too: its file is removed so it does not
// resurrect on the next boot.
func (m *Manager) Delete(id string) error {
	ms, err := m.acquire(id)
	if err != nil {
		if errors.Is(err, ErrSessionNotFound) && validID(id) {
			if m.opts.Store != nil {
				if _, ok, _ := m.opts.Store.Get(store.SessionKey(id)); ok {
					if rmErr := m.opts.Store.Delete(store.SessionKey(id)); rmErr == nil {
						m.met.deleted.Add(1)
						return nil
					}
				}
			} else if m.opts.PersistDir != "" {
				if rmErr := os.Remove(m.persistPath(id)); rmErr == nil {
					m.met.deleted.Add(1)
					return nil
				}
			}
		}
		return err
	}
	ms.gone = true
	ms.mu.Unlock()
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
	m.met.deleted.Add(1)
	if m.opts.Store != nil {
		if err := m.opts.Store.Delete(store.SessionKey(id)); err != nil {
			m.log.Warn("removing persisted session failed", "session", id, "err", err)
		}
	} else if m.opts.PersistDir != "" {
		if err := os.Remove(m.persistPath(id)); err != nil && !os.IsNotExist(err) {
			m.log.Warn("removing persisted session failed", "session", id, "err", err)
		}
	}
	return nil
}

// SweepExpired evicts sessions idle past the TTL, persisting each first
// when a PersistDir is configured, and returns how many were evicted.
func (m *Manager) SweepExpired() int {
	if m.opts.TTL <= 0 {
		return 0
	}
	cutoff := m.now().Add(-m.opts.TTL)
	m.mu.Lock()
	candidates := make([]*managed, 0, len(m.sessions))
	for _, ms := range m.sessions {
		candidates = append(candidates, ms)
	}
	m.mu.Unlock()
	evicted := 0
	for _, ms := range candidates {
		// A session whose lock is held is in use right now — by definition
		// not idle; never let the janitor queue behind a long lookahead.
		if !ms.mu.TryLock() {
			continue
		}
		if ms.gone || !ms.lastUsed.Before(cutoff) {
			ms.mu.Unlock()
			continue
		}
		if !m.persistLocked(ms) && m.opts.Store != nil {
			// The store refused the snapshot (breaker open or a live
			// failure): the RAM copy is the only good copy, so the session
			// stays resident — degraded mode trades memory for never losing
			// an answered session. The write-behind worker (and the next
			// sweep) will retry.
			ms.mu.Unlock()
			continue
		}
		ms.gone = true
		ms.mu.Unlock()
		m.mu.Lock()
		delete(m.sessions, ms.id)
		m.mu.Unlock()
		m.met.evicted.Add(1)
		evicted++
	}
	if evicted > 0 && m.opts.Store != nil {
		// One fsync per sweep makes evicted snapshots machine-crash durable
		// without paying it per session.
		if err := m.opts.Store.Sync(); err != nil {
			m.log.Warn("syncing store after sweep failed", "err", err)
		}
	}
	return evicted
}

// StartJanitor sweeps expired sessions every interval until the returned
// stop function is called.
func (m *Manager) StartJanitor(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.SweepExpired()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Close persists every live session (when persistence is configured) and
// shuts the manager; subsequent calls fail with ErrClosed. The context
// bounds how long persistence may take. Unlike List/SweepExpired, Close
// deliberately waits for each session's in-flight operation to finish —
// skipping one would lose its latest answers; callers drain request
// traffic first (cmd/joinserve runs http.Server.Shutdown before Close).
//
// With a store, Close also drains the write-behind queue: every session is
// persisted directly (bypassing the breaker — shutdown is the final
// probe), and store failures are retried with backoff until they succeed
// or the context expires; sessions that fail to snapshot are not retried
// (the failure is deterministic) but still produce an error. An error
// return means some sessions exist only in the process's dying memory —
// the operator's signal to keep the disk.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.closed = true
	all := make([]*managed, 0, len(m.sessions))
	for _, ms := range m.sessions {
		all = append(all, ms)
	}
	m.sessions = make(map[string]*managed)
	m.mu.Unlock()
	if m.stopPersist != nil {
		m.stopPersist()
	}
	var failed []*managed
	lost := 0 // unsnapshotable sessions: retrying cannot help, but report them
	for _, ms := range all {
		if err := ctx.Err(); err != nil {
			return err
		}
		ms.mu.Lock()
		if !ms.gone {
			if m.opts.Store != nil {
				switch m.persistStoreDirect(ms) {
				case persistOK:
				case persistUnsnapshotable:
					lost++
				default:
					failed = append(failed, ms)
				}
			} else {
				m.persistLocked(ms)
			}
			ms.gone = true
		}
		ms.mu.Unlock()
	}
	// Drain: re-persist failures with backoff until the context gives up.
	bo := resilience.Backoff{Base: 25 * time.Millisecond, Max: 500 * time.Millisecond}
	for attempt := 0; len(failed) > 0; attempt++ {
		t := time.NewTimer(bo.Delay(attempt, nil))
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("service: %d session(s) not persisted at shutdown: %w", len(failed), ctx.Err())
		case <-t.C:
		}
		still := failed[:0]
		for _, ms := range failed {
			ms.mu.Lock()
			out := m.persistStoreDirect(ms)
			ms.mu.Unlock()
			switch out {
			case persistOK:
			case persistUnsnapshotable:
				lost++
			default:
				still = append(still, ms)
			}
		}
		failed = still
	}
	if m.opts.Store != nil && len(all) > 0 {
		// One fsync covers the whole shutdown batch.
		if err := m.opts.Store.Sync(); err != nil {
			return fmt.Errorf("service: syncing store: %w", err)
		}
	}
	if lost > 0 {
		return fmt.Errorf("service: %d session(s) could not be snapshotted at shutdown", lost)
	}
	return nil
}

// persistPath is the snapshot file for a session id.
func (m *Manager) persistPath(id string) string {
	return filepath.Join(m.opts.PersistDir, id+".json")
}

// storePersist write-throughs the session record after a state change;
// callers hold ms.mu (or have exclusive access). A no-op without a store:
// the legacy persist dir keeps its cheaper persist-on-evict behavior.
func (m *Manager) storePersist(ms *managed) {
	if m.opts.Store == nil {
		return
	}
	m.persistLocked(ms)
}

// storePersistTimed is storePersist plus the per-question "store" latency
// segment (question_segment_seconds{segment="store"}) — used on the answer
// path, where the persist is part of what the client waits for.
func (m *Manager) storePersistTimed(ms *managed) {
	if o := m.opts.Obs; o != nil && m.opts.Store != nil {
		defer o.observeStoreSegment(time.Now())
	}
	m.storePersist(ms)
}

// persistLocked writes the session's snapshot to the store (binary, via
// the breaker — failures queue for write-behind retry) or the persist dir
// (JSON; failures are logged, not fatal); callers hold ms.mu. Reports
// whether the snapshot is durably written now (always true when nothing is
// configured — there is nothing to lose).
func (m *Manager) persistLocked(ms *managed) bool {
	if m.opts.Store != nil {
		return m.persistStoreLocked(ms)
	}
	if m.opts.PersistDir == "" {
		return true
	}
	snap, err := ms.snapshotLocked()
	if err != nil {
		m.log.Warn("snapshotting session failed", "session", ms.id, "err", err)
		return false
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		m.log.Warn("encoding session failed", "session", ms.id, "err", err)
		return false
	}
	tmp := m.persistPath(ms.id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		m.log.Warn("persisting session failed", "session", ms.id, "err", err)
		return false
	}
	if err := os.Rename(tmp, m.persistPath(ms.id)); err != nil {
		m.log.Warn("persisting session failed", "session", ms.id, "err", err)
		return false
	}
	return true
}

// restoreStore resumes every session record in the store. Records that
// fail to decode or resume are skipped with a log line, never fatal — a
// corrupt snapshot must not take the service down.
func (m *Manager) restoreStore() error {
	type rec struct {
		id   string
		data []byte
	}
	var recs []rec
	err := m.opts.Store.Scan(store.SessionPrefix(), func(key, value []byte) bool {
		id, err := store.SessionID(key)
		if err != nil {
			m.log.Warn("restoring session record failed", "err", err)
			m.restoreFails.Add(1)
			return true
		}
		// Copy out: Resume replays whole transcripts, far too slow to run
		// under the store's scan (whose buffers are per-call anyway).
		recs = append(recs, rec{id: id, data: append([]byte(nil), value...)})
		return true
	})
	if err != nil {
		return fmt.Errorf("service: scanning store: %w", err)
	}
	for _, r := range recs {
		snap, err := decodeServiceSnapshot(r.data)
		if err != nil {
			m.log.Warn("decoding session failed", "session", r.id, "err", err)
			m.restoreFails.Add(1)
			continue
		}
		if snap.ID != r.id {
			m.log.Warn("session record id mismatch; using the key",
				"key_id", r.id, "record_id", snap.ID)
			snap.ID = r.id
		}
		if _, err := m.Resume(snap); err != nil {
			m.log.Warn("restoring session failed", "session", r.id, "err", err)
			m.restoreFails.Add(1)
			continue
		}
	}
	return nil
}

// restoreAll resumes every *.json snapshot in the persist dir. Files that
// fail to decode or resume are skipped with a log line.
func (m *Manager) restoreAll() error {
	entries, err := os.ReadDir(m.opts.PersistDir)
	if err != nil {
		return fmt.Errorf("service: reading persist dir: %w", err)
	}
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		path := filepath.Join(m.opts.PersistDir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			m.log.Warn("reading session file failed", "path", path, "err", err)
			m.restoreFails.Add(1)
			continue
		}
		var snap SessionSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			m.log.Warn("decoding session file failed", "path", path, "err", err)
			m.restoreFails.Add(1)
			continue
		}
		if _, err := m.Resume(&snap); err != nil {
			m.log.Warn("restoring session failed", "path", path, "err", err)
			m.restoreFails.Add(1)
			continue
		}
	}
	return nil
}

package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): per family one # HELP and one # TYPE
// line followed by its samples; histograms expand into cumulative _bucket
// series (le labels, +Inf last), _sum and _count. Families are emitted in
// name order, children in label-value order, so the output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		f.mu.Lock()
		values := append([]string(nil), f.order...)
		children := make([]*child, len(values))
		for i, v := range values {
			children[i] = f.children[v]
		}
		f.mu.Unlock()
		sort.Sort(&byLabel{values, children})

		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')

		for i, c := range children {
			label := ""
			if f.labelName != "" {
				label = f.labelName + `="` + escapeLabel(values[i]) + `"`
			}
			switch {
			case c.hist != nil:
				writeHistogram(bw, f.name, label, c.hist.Snapshot())
			case c.fn != nil:
				writeSample(bw, f.name, label, c.fn())
			case c.counter != nil:
				writeSample(bw, f.name, label, float64(c.counter.Value()))
			case c.gauge != nil:
				writeSample(bw, f.name, label, c.gauge.Value())
			}
		}
	}
	return bw.Flush()
}

// byLabel sorts children by label value, keeping the two slices aligned.
type byLabel struct {
	values   []string
	children []*child
}

func (b *byLabel) Len() int           { return len(b.values) }
func (b *byLabel) Less(i, j int) bool { return b.values[i] < b.values[j] }
func (b *byLabel) Swap(i, j int) {
	b.values[i], b.values[j] = b.values[j], b.values[i]
	b.children[i], b.children[j] = b.children[j], b.children[i]
}

// writeSample emits `name{label} value` (or `name value` without labels).
func writeSample(bw *bufio.Writer, name, label string, v float64) {
	bw.WriteString(name)
	if label != "" {
		bw.WriteByte('{')
		bw.WriteString(label)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// writeHistogram emits the cumulative _bucket/_sum/_count expansion. extra
// is the family's own label pair ("" for scalar histograms); the le label
// composes after it.
func writeHistogram(bw *bufio.Writer, name, extra string, s HistogramSnapshot) {
	cum := int64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		writeBucket(bw, name, extra, formatFloat(bound), cum)
	}
	if len(s.Counts) > 0 {
		cum += s.Counts[len(s.Counts)-1]
	}
	writeBucket(bw, name, extra, "+Inf", cum)
	bw.WriteString(name)
	bw.WriteString("_sum")
	if extra != "" {
		bw.WriteByte('{')
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(s.Sum))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	if extra != "" {
		bw.WriteByte('{')
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
}

func writeBucket(bw *bufio.Writer, name, extra, le string, cum int64) {
	bw.WriteString(name)
	bw.WriteString("_bucket{")
	if extra != "" {
		bw.WriteString(extra)
		bw.WriteByte(',')
	}
	bw.WriteString(`le="`)
	bw.WriteString(le)
	bw.WriteString(`"} `)
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes \ and newline in HELP text per the format spec.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// escapeLabel escapes \, " and newline in label values per the format spec.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Span is one finished, timed operation. Spans of the same request share
// one Trace id (the request id the HTTP middleware generates or accepts
// via X-Request-ID), and nest through Parent, so "where did this slow
// question burn its time" reads straight off the trace.
type Span struct {
	// Trace is the request id shared by every span of one request; ID and
	// Parent link the spans of a trace into a tree (Parent 0 = root).
	Trace  string `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name is the operation ("http GET /sessions/{id}/questions",
	// "session.questions", …); Session attributes the span to a session id
	// when one is involved.
	Name    string `json:"name"`
	Session string `json:"session,omitempty"`
	// Start and Duration time the operation; Err carries the operation's
	// error text, empty on success.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// Tracer records finished spans into a bounded in-RAM ring buffer and,
// when a sink is attached, streams them as JSON lines. All methods are
// safe for concurrent use and nil-safe — a nil *Tracer starts inert
// no-op spans, so instrumented code needs no enablement branching.
type Tracer struct {
	seq atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int
	total uint64

	sinkMu sync.Mutex
	sink   io.Writer
}

// NewTracer returns a tracer retaining the last capacity finished spans
// (capacity <= 0 selects 256). The ring is the tracer's steady-state
// cache footprint — every finished span writes one rotating slot — so
// capacities far beyond the default trade serving throughput for history.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// SetSink streams every finished span to w as one JSON line each (the
// -trace-log option). Writes are serialized; a nil w detaches the sink.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.sinkMu.Lock()
	t.sink = w
	t.sinkMu.Unlock()
}

// ctxKey keys the tracer's context value.
type ctxKey int

const ctxSpan ctxKey = 0

// spanCtx is the single context record spans thread through call trees: the
// request id plus the innermost span's id. One value (instead of separate
// request-id and span-id entries) keeps Start at one context allocation.
type spanCtx struct {
	trace string
	span  uint64
}

// WithRequestID returns a context carrying the request id; spans started
// under it adopt the id as their Trace.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxSpan, &spanCtx{trace: id})
}

// RequestID returns the context's request id, or "" when none is set.
func RequestID(ctx context.Context) string {
	if sc, ok := ctx.Value(ctxSpan).(*spanCtx); ok {
		return sc.trace
	}
	return ""
}

// idBase is a per-process random prefix for generated request ids; idSeq
// disambiguates within the process. Together they are unique in-process
// and collision-resistant across processes without a rand syscall per id.
var (
	idBase = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; a zero base
			// beats a panic in a logging path.
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	idSeq atomic.Uint64
)

// NewRequestID returns a fresh 16-hex-digit request id.
func NewRequestID() string {
	var buf [16]byte
	copy(buf[:8], idBase)
	n := idSeq.Add(1)
	for i := 15; i >= 8; i-- {
		buf[i] = "0123456789abcdef"[n&0xf]
		n >>= 4
	}
	return string(buf[:])
}

// ActiveSpan is an in-flight span. The zero of a nil tracer is a nil
// *ActiveSpan whose methods all no-op, so `ctx, sp := tracer.Start(...);
// defer sp.End()` is safe with telemetry off.
//
// ActiveSpans are pooled: End recycles the span, so a finished span must
// not be touched again (the derived context only references the embedded
// spanCtx, which End leaves behind for any still-running children).
type ActiveSpan struct {
	t     *Tracer
	sc    *spanCtx // handed to the derived context; not pooled
	span  Span
	start time.Time
}

var spanPool = sync.Pool{New: func() any { return new(ActiveSpan) }}

// Start opens a span named name under ctx: the span adopts the context's
// request id as its trace (generating one when absent) and the context's
// current span as its parent, and the returned context carries the new
// span so children nest. Call End to record it.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	sp := t.startLeaf(ctx, name)
	if sp.span.Trace == "" {
		sp.span.Trace = NewRequestID()
	}
	sp.sc = &spanCtx{trace: sp.span.Trace, span: sp.span.ID}
	return context.WithValue(ctx, ctxSpan, sp.sc), sp
}

// StartLeaf opens a span that will have no children: it adopts the
// context's trace and parent like Start but derives no new context, which
// keeps leaf instrumentation allocation-free. With no trace on ctx the
// span stays unattributed (Trace "") rather than minting an id nothing
// else will share.
func (t *Tracer) StartLeaf(ctx context.Context, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return t.startLeaf(ctx, name)
}

func (t *Tracer) startLeaf(ctx context.Context, name string) *ActiveSpan {
	sp := spanPool.Get().(*ActiveSpan)
	sp.t = t
	sp.start = time.Now()
	sp.span = Span{Name: name, ID: t.seq.Add(1)}
	if sc, ok := ctx.Value(ctxSpan).(*spanCtx); ok {
		sp.span.Trace = sc.trace
		sp.span.Parent = sc.span
	}
	return sp
}

// StartRoot opens the root span of a request whose id is already known
// (the HTTP middleware's case): one context record carries both the
// request id and the span id, so handler-side spans nest under it.
func (t *Tracer) StartRoot(ctx context.Context, name, requestID string) (context.Context, *ActiveSpan) {
	if t == nil {
		return WithRequestID(ctx, requestID), nil
	}
	sp := spanPool.Get().(*ActiveSpan)
	sp.t = t
	sp.start = time.Now()
	sp.span = Span{Name: name, ID: t.seq.Add(1), Trace: requestID}
	sp.sc = &spanCtx{trace: requestID, span: sp.span.ID}
	return context.WithValue(ctx, ctxSpan, sp.sc), sp
}

// SetName renames the span (e.g. once the matched HTTP route is known).
func (sp *ActiveSpan) SetName(name string) {
	if sp == nil {
		return
	}
	sp.span.Name = name
}

// SetSession attributes the span to a session id.
func (sp *ActiveSpan) SetSession(id string) {
	if sp == nil {
		return
	}
	sp.span.Session = id
}

// SetError records the operation's error on the span; nil errors clear it.
func (sp *ActiveSpan) SetError(err error) {
	if sp == nil {
		return
	}
	if err == nil {
		sp.span.Err = ""
		return
	}
	sp.span.Err = err.Error()
}

// End finishes the span: its duration is computed and the record lands in
// the tracer's ring (and sink). End is idempotent only in the sense that
// calling it on a nil span is a no-op; finished spans must not be reused.
func (sp *ActiveSpan) End() {
	if sp == nil || sp.t == nil {
		return
	}
	sp.span.Start = sp.start
	sp.span.Duration = time.Since(sp.start)
	sp.t.record(&sp.span)
	*sp = ActiveSpan{}
	spanPool.Put(sp)
}

// record appends a finished span to the ring and the sink.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, *s)
	} else {
		t.ring[t.next] = *s
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
	t.mu.Unlock()

	t.sinkMu.Lock()
	sink := t.sink
	if sink != nil {
		// One marshal + one Write per span keeps lines atomic for line-based
		// consumers; errors are dropped (the sink is diagnostics, not truth).
		if b, err := json.Marshal(s); err == nil {
			b = append(b, '\n')
			_, _ = sink.Write(b)
		}
	}
	t.sinkMu.Unlock()
}

// Recent returns up to limit of the most recently finished spans, oldest
// first, optionally filtered to one session id ("" keeps all). limit <= 0
// means all retained spans.
func (t *Tracer) Recent(session string, limit int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, 0, len(t.ring))
	// Ring order: t.ring[next:] are the oldest entries once wrapped.
	for i := 0; i < len(t.ring); i++ {
		s := t.ring[(t.next+i)%len(t.ring)]
		if session == "" || s.Session == session {
			out = append(out, s)
		}
	}
	t.mu.Unlock()
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Total returns how many spans have ever finished (retained or rotated
// out).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// NameSummary aggregates the retained spans of one operation name.
type NameSummary struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	// P50/P95/P99 are duration percentiles in seconds over the retained
	// spans (exact, not bucket-estimated — the ring holds raw durations).
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Summarize groups the retained spans by name and reports exact latency
// percentiles per name, sorted by name.
func (t *Tracer) Summarize() []NameSummary {
	if t == nil {
		return nil
	}
	byName := make(map[string][]float64)
	for _, s := range t.Recent("", 0) {
		byName[s.Name] = append(byName[s.Name], s.Duration.Seconds())
	}
	out := make([]NameSummary, 0, len(byName))
	for name, durs := range byName {
		n := NameSummary{Name: name, Count: len(durs)}
		n.P50, _ = stats.Percentile(durs, 50)
		n.P95, _ = stats.Percentile(durs, 95)
		n.P99, _ = stats.Percentile(durs, 99)
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

// TestNilInstruments: every instrument no-ops on a nil receiver — the
// guarantee that lets hot paths skip enablement branching.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter not inert")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge not inert")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil histogram not inert")
	}
	var cv *CounterVec
	cv.With("x").Inc()
	var hv *HistogramVec
	hv.With("x").Observe(1)
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{1, 2, 1, 1} // (≤1, ≤2, ≤4, +Inf)
	for i, c := range s.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if s.Count != 5 || math.Abs(s.Sum-16.5) > 1e-12 {
		t.Errorf("count/sum = %d/%v", s.Count, s.Sum)
	}
	// Median falls in the (1, 2] bucket: rank 2.5 of 5, bucket holds ranks
	// 2..3, interpolates to 1 + (2.5-1)/2 = 1.75.
	if q, ok := s.Quantile(0.5); !ok || math.Abs(q-1.75) > 1e-9 {
		t.Errorf("p50 = %v, %v", q, ok)
	}
	// Beyond the last bound reports the last bound.
	if q, ok := s.Quantile(1); !ok || q != 4 {
		t.Errorf("p100 = %v, %v", q, ok)
	}
	if _, ok := (HistogramSnapshot{}).Quantile(0.5); ok {
		t.Error("empty snapshot quantile should report !ok")
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram(nil) // DefBuckets
	for i := 0; i < 100; i++ {
		h.Observe(1e-4)
	}
	sum := h.Summary()
	if sum.Count != 100 {
		t.Errorf("summary count = %d", sum.Count)
	}
	if sum.P50 <= 0 || sum.P99 < sum.P50 {
		t.Errorf("summary percentiles not ordered: %+v", sum)
	}
}

// TestRegistryIdempotent: re-registering a name returns the same
// instrument; a kind clash returns an inert one instead of corrupting the
// exposition.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help")
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registered counter is a different instrument")
	}
	if g := r.Gauge("x_total", "clash"); g != nil {
		t.Error("kind clash should return a nil (inert) instrument")
	}
	if h := r.Histogram("x_total", "clash", nil); h != nil {
		t.Error("kind clash should return a nil (inert) histogram")
	}
	// The inert instrument is still safe to use.
	r.Gauge("x_total", "clash").Set(1)
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this is the concurrency guarantee, and the totals must add
// up regardless.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%10) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
	s := h.Snapshot()
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != workers*per {
		t.Errorf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

// TestVecConcurrent creates and updates labeled children from many
// goroutines (map access under the family lock).
func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("ops_total", "help", "op")
	labels := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				cv.With(labels[(w+i)%len(labels)]).Inc()
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, l := range labels {
		total += cv.With(l).Value()
	}
	if total != 8*500 {
		t.Errorf("total = %d, want %d", total, 8*500)
	}
}

func TestFuncMetricsRebind(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("x", "help", func() float64 { return 1 })
	// Re-binding (fresh manager over a shared registry) replaces the closure.
	r.GaugeFunc("x", "help", func() float64 { return 2 })
	var buf stringsBuilder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !containsLine(got, "x 2") {
		t.Errorf("exposition = %q, want sample `x 2`", got)
	}
}

func TestGaugeVecAndSetFunc(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("queue_depth", "Waiters by route.", "route")
	gv.With("questions").Set(3)
	shed := int64(0)
	cv := r.CounterVec("shed_total", "Shed requests by route.", "route")
	cv.SetFunc("answers", func() float64 { return float64(shed) })
	gv.SetFunc("answers", func() float64 { return 7 })
	shed = 12

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`queue_depth{route="questions"} 3`,
		`queue_depth{route="answers"} 7`,
		`shed_total{route="answers"} 12`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Rebinding an existing label value swaps the reader.
	cv.SetFunc("answers", func() float64 { return 99 })
	buf.Reset()
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `shed_total{route="answers"} 99`) {
		t.Error("SetFunc rebind did not win")
	}

	// Nil safety.
	var nv *GaugeVec
	nv.With("x").Set(1)
	nv.SetFunc("x", func() float64 { return 1 })
	var ncv *CounterVec
	ncv.SetFunc("x", func() float64 { return 1 })
}

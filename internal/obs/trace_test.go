package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithRequestID(context.Background(), "req-1")
	ctx, root := tr.Start(ctx, "outer")
	_, child := tr.Start(ctx, "inner")
	child.SetSession("s1")
	child.End()
	root.End()

	spans := tr.Recent("", 0)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	inner, outer := spans[0], spans[1] // finish order: inner first
	if inner.Name != "inner" || outer.Name != "outer" {
		t.Fatalf("order = %s, %s", inner.Name, outer.Name)
	}
	if inner.Trace != "req-1" || outer.Trace != "req-1" {
		t.Errorf("trace ids = %q, %q, want req-1", inner.Trace, outer.Trace)
	}
	if inner.Parent != outer.ID {
		t.Errorf("inner.Parent = %d, want %d", inner.Parent, outer.ID)
	}
	if outer.Parent != 0 {
		t.Errorf("outer.Parent = %d, want 0 (root)", outer.Parent)
	}
	if got := tr.Recent("s1", 0); len(got) != 1 || got[0].Name != "inner" {
		t.Errorf("session filter = %+v", got)
	}
}

func TestStartGeneratesRequestID(t *testing.T) {
	tr := NewTracer(4)
	ctx, sp := tr.Start(context.Background(), "op")
	if RequestID(ctx) == "" {
		t.Error("Start should stamp a request id into the context")
	}
	sp.SetError(errors.New("boom"))
	sp.End()
	if got := tr.Recent("", 0); len(got) != 1 || got[0].Err != "boom" {
		t.Errorf("spans = %+v", got)
	}
}

func TestRingRotation(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(context.Background(), "op")
		sp.End()
	}
	spans := tr.Recent("", 0)
	if len(spans) != 4 {
		t.Fatalf("retained = %d, want 4", len(spans))
	}
	// Oldest first: ids 7, 8, 9, 10.
	for i, s := range spans {
		if want := uint64(7 + i); s.ID != want {
			t.Errorf("span %d id = %d, want %d", i, s.ID, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
	if limited := tr.Recent("", 2); len(limited) != 2 || limited[1].ID != 10 {
		t.Errorf("limit: %+v", limited)
	}
}

func TestSinkWritesJSONLines(t *testing.T) {
	tr := NewTracer(4)
	var buf bytes.Buffer
	tr.SetSink(&buf)
	_, sp := tr.Start(WithRequestID(context.Background(), "abc"), "op")
	sp.End()
	line := strings.TrimSpace(buf.String())
	var s Span
	if err := json.Unmarshal([]byte(line), &s); err != nil {
		t.Fatalf("sink line %q: %v", line, err)
	}
	if s.Trace != "abc" || s.Name != "op" {
		t.Errorf("sink span = %+v", s)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "op")
	sp.SetName("renamed")
	sp.SetSession("s")
	sp.SetError(errors.New("x"))
	sp.End()
	if ctx == nil {
		t.Error("nil tracer should return the caller's context")
	}
	if tr.Recent("", 0) != nil || tr.Total() != 0 || tr.Summarize() != nil {
		t.Error("nil tracer not inert")
	}
	tr.SetSink(&bytes.Buffer{})
}

// TestTracerConcurrent records spans from many goroutines; run under
// -race this is the concurrency guarantee.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var buf bytes.Buffer
	tr.SetSink(&buf)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ctx, sp := tr.Start(context.Background(), "op")
				_, inner := tr.Start(ctx, "inner")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Total(); got != workers*per*2 {
		t.Errorf("total = %d, want %d", got, workers*per*2)
	}
	// Every sink line must be valid JSON (writes are serialized, never torn).
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("torn sink line %q: %v", line, err)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 5; i++ {
		_, sp := tr.Start(context.Background(), "a")
		sp.End()
	}
	_, sp := tr.Start(context.Background(), "b")
	sp.End()
	sums := tr.Summarize()
	if len(sums) != 2 || sums[0].Name != "a" || sums[1].Name != "b" {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Count != 5 || sums[1].Count != 1 {
		t.Errorf("counts = %d, %d", sums[0].Count, sums[1].Count)
	}
	if sums[0].P99 < sums[0].P50 {
		t.Errorf("percentiles not ordered: %+v", sums[0])
	}
}

package obs

import (
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync"
	"time"
)

// RequestIDHeader carries the request id on requests (accepted when the
// client supplies a plausible one) and responses (always set).
const RequestIDHeader = "X-Request-ID"

// HTTPMetrics are the middleware's instruments, registered as:
//
//	http_requests_total{route}            counter
//	http_request_duration_seconds{route}  histogram
//	panics_total                          counter (recovered handler panics)
//
// The route label is the mux pattern that served the request (e.g.
// "GET /sessions/{id}/questions"), never the raw path — cardinality stays
// bounded by the API surface.
type HTTPMetrics struct {
	Requests *CounterVec
	Duration *HistogramVec
	Panics   *Counter
}

// NewHTTPMetrics registers the middleware's instruments in r.
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.CounterVec("http_requests_total", "HTTP requests served, by matched route.", "route"),
		Duration: r.HistogramVec("http_request_duration_seconds", "HTTP request latency in seconds, by matched route.", "route", nil),
		Panics:   r.Counter("panics_total", "Handler panics recovered by the middleware."),
	}
}

// MiddlewareConfig wires the middleware's outputs; every field is
// optional — a zero config still provides request ids and panic recovery.
type MiddlewareConfig struct {
	// Metrics receives per-route counters and latency histograms.
	Metrics *HTTPMetrics
	// Tracer opens one root span per request, named after the matched
	// route; handler-side spans started from the request context nest
	// under it and share its trace (= request) id.
	Tracer *Tracer
	// Logger receives one access-log line per request (level Info) and
	// panic reports (level Error), each carrying the request id.
	Logger *slog.Logger
}

// Middleware wraps next with the telemetry envelope: request-id
// generation/propagation (X-Request-ID in, context + response header
// out), panic recovery (stack logged with the request id, 500 returned,
// panics_total incremented), an access log line, a per-route duration
// histogram, and a root trace span. The route label and span name use the
// ServeMux pattern matched inside next, so cardinality stays bounded.
func Middleware(next http.Handler, cfg MiddlewareConfig) http.Handler {
	logger := OrDiscard(cfg.Logger)
	// routes caches per-route span names and resolved instruments; the key
	// set is bounded by the mux patterns (plus "unmatched"), so the map
	// stops growing once every route has been hit.
	var routes sync.Map // route -> *routeEntry
	routeEntry := func(route string) *mwRoute {
		if e, ok := routes.Load(route); ok {
			return e.(*mwRoute)
		}
		e := &mwRoute{spanName: "http " + route}
		if cfg.Metrics != nil {
			e.requests = cfg.Metrics.Requests.With(route)
			e.duration = cfg.Metrics.Duration.With(route)
		}
		actual, _ := routes.LoadOrStore(route, e)
		return actual.(*mwRoute)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(RequestIDHeader)
		if !validRequestID(reqID) {
			reqID = NewRequestID()
		}
		ctx, sp := cfg.Tracer.StartRoot(r.Context(), "http", reqID)
		w.Header().Set(RequestIDHeader, reqID)
		// The shallow copy is shared with the mux, which sets Pattern on it
		// during routing — read r only after next returns.
		r = r.WithContext(ctx)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				// A handler panic must not kill the connection silently:
				// record it, log the stack with the request id, and answer
				// 500 unless the handler already wrote a response.
				cfg.Metrics.panicsCounter().Inc()
				logger.Error("handler panic",
					"request_id", reqID,
					"method", r.Method,
					"path", r.URL.Path,
					"panic", p,
					"stack", string(debug.Stack()),
				)
				if !rec.wrote {
					http.Error(rec, "internal server error", http.StatusInternalServerError)
				}
			}
			route := r.Pattern
			if route == "" {
				route = "unmatched"
			}
			d := time.Since(start)
			ent := routeEntry(route)
			ent.requests.Inc()
			ent.duration.Observe(d.Seconds())
			if sp != nil {
				sp.SetName(ent.spanName)
				sp.End()
			}
			// The Enabled gate keeps a disabled access log free: the varargs
			// below box every field on evaluation, before slog's own check.
			if logger.Enabled(r.Context(), slog.LevelInfo) {
				logger.Info("http request",
					"request_id", reqID,
					"method", r.Method,
					"path", r.URL.Path,
					"route", route,
					"status", rec.status(),
					"bytes", rec.bytes,
					"duration", d,
				)
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// mwRoute is one route's cached middleware state: the root span's name and
// the pre-resolved instruments (nil without metrics — the nil-safe
// no-ops keep the serving path branch-free).
type mwRoute struct {
	spanName string
	requests *Counter
	duration *Histogram
}

// panicsCounter tolerates a nil receiver so the recovery path needs no
// metrics wiring to stay safe.
func (m *HTTPMetrics) panicsCounter() *Counter {
	if m == nil {
		return nil
	}
	return m.Panics
}

// validRequestID accepts client-supplied request ids that are short,
// printable ASCII — anything else (empty, control characters, log-breaking
// junk) is replaced with a generated id.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' || id[i] == '"' {
			return false
		}
	}
	return true
}

// statusRecorder captures the response status and size for the access log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.code = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if !s.wrote {
		s.code = http.StatusOK
		s.wrote = true
	}
	n, err := s.ResponseWriter.Write(b)
	s.bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes when the underlying writer supports
// them.
func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *statusRecorder) status() int {
	if !s.wrote {
		return http.StatusOK
	}
	return s.code
}

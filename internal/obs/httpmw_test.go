package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// mwFixture builds a mux with one normal and one panicking route behind
// the full middleware stack, logging JSON to a buffer.
func mwFixture() (http.Handler, *Registry, *Tracer, *bytes.Buffer) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /hello/{name}", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hi "+r.PathValue("name"))
	})
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	reg := NewRegistry()
	tr := NewTracer(16)
	logBuf := &bytes.Buffer{}
	h := Middleware(mux, MiddlewareConfig{
		Metrics: NewHTTPMetrics(reg),
		Tracer:  tr,
		Logger:  slog.New(slog.NewJSONHandler(logBuf, nil)),
	})
	return h, reg, tr, logBuf
}

func TestMiddlewareRequestIDAndRoute(t *testing.T) {
	h, reg, tr, logBuf := mwFixture()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/hello/world", nil))
	reqID := rec.Header().Get(RequestIDHeader)
	if reqID == "" {
		t.Fatal("no X-Request-ID on the response")
	}
	if rec.Body.String() != "hi world" {
		t.Fatalf("body = %q", rec.Body.String())
	}

	// The access log line carries the generated request id and the matched
	// route pattern, not the raw path.
	var line map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("access log not one JSON line: %q", logBuf.String())
	}
	if line["request_id"] != reqID {
		t.Errorf("log request_id = %v, want %s", line["request_id"], reqID)
	}
	if line["route"] != "GET /hello/{name}" {
		t.Errorf("log route = %v", line["route"])
	}
	if line["status"] != float64(200) {
		t.Errorf("log status = %v", line["status"])
	}

	// The root span shares the same request id and is named by the route.
	spans := tr.Recent("", 0)
	if len(spans) != 1 || spans[0].Trace != reqID || spans[0].Name != "http GET /hello/{name}" {
		t.Errorf("spans = %+v", spans)
	}

	// Metrics counted the route.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !containsLine(buf.String(), `http_requests_total{route="GET /hello/{name}"} 1`) {
		t.Errorf("metrics missing route counter:\n%s", buf.String())
	}
}

func TestMiddlewarePropagatesClientRequestID(t *testing.T) {
	h, _, tr, _ := mwFixture()
	req := httptest.NewRequest("GET", "/hello/a", nil)
	req.Header.Set(RequestIDHeader, "client-id-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "client-id-42" {
		t.Errorf("response id = %q, want the client's", got)
	}
	if spans := tr.Recent("", 0); len(spans) != 1 || spans[0].Trace != "client-id-42" {
		t.Errorf("spans = %+v", spans)
	}

	// Junk ids (control characters would corrupt logs) are replaced.
	req = httptest.NewRequest("GET", "/hello/a", nil)
	req.Header.Set(RequestIDHeader, "bad\nid")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got == "bad\nid" || got == "" {
		t.Errorf("junk id kept: %q", got)
	}
}

func TestMiddlewarePanicRecovery(t *testing.T) {
	h, reg, _, logBuf := mwFixture()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil)) // must not propagate
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	reqID := rec.Header().Get(RequestIDHeader)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !containsLine(buf.String(), "panics_total 1") {
		t.Errorf("panics_total not incremented:\n%s", buf.String())
	}
	// The panic log line carries the request id and a stack trace.
	logs := logBuf.String()
	if !strings.Contains(logs, "kaboom") || !strings.Contains(logs, reqID) {
		t.Errorf("panic log missing panic value or request id: %s", logs)
	}
	if !strings.Contains(logs, "goroutine") {
		t.Errorf("panic log missing stack: %s", logs)
	}
}

func TestMiddlewareUnmatchedRoute(t *testing.T) {
	h, reg, _, _ := mwFixture()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !containsLine(buf.String(), `http_requests_total{route="unmatched"} 1`) {
		t.Errorf("unmatched requests should label as unmatched:\n%s", buf.String())
	}
}

// TestMiddlewareZeroConfig: a zero config still provides request ids and
// panic recovery.
func TestMiddlewareZeroConfig(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("zero")
	}), MiddlewareConfig{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d", rec.Code)
	}
	if rec.Header().Get(RequestIDHeader) == "" {
		t.Error("no request id with zero config")
	}
}

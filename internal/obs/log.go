package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a structured logger writing to w. format selects the
// handler: "json" (machine-parseable JSON lines) or "text" (logfmt-style
// key=value, the default for anything else). Every joinserve line goes
// through a logger built here, so startup, warm, shutdown and migration
// events carry levels and parseable fields.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// DiscardLogger returns a logger that drops everything — the nil-logger
// normalization target, so call sites never nil-check.
func DiscardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// OrDiscard normalizes a possibly-nil logger to a usable one.
func OrDiscard(l *slog.Logger) *slog.Logger {
	if l == nil {
		return DiscardLogger()
	}
	return l
}

// ParseLevel parses a -log-level flag value (debug, info, warn, error;
// case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

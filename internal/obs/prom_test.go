package obs

import (
	"strconv"
	"strings"
	"testing"
)

// stringsBuilder aliases strings.Builder so test files can share it.
type stringsBuilder = strings.Builder

// containsLine reports whether exposition output contains the exact line.
func containsLine(out, line string) bool {
	for _, l := range strings.Split(out, "\n") {
		if l == line {
			return true
		}
	}
	return false
}

// checkPromGrammar validates text-exposition output: every sample belongs
// to a family whose # HELP and # TYPE lines came first, TYPE is a known
// kind, histogram samples use only the _bucket/_sum/_count suffixes, and
// every value parses as a float. Returns the families seen.
func checkPromGrammar(t *testing.T, out string) map[string]string {
	t.Helper()
	types := make(map[string]string) // family -> kind
	helped := make(map[string]bool)
	for ln, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := parts[0], parts[1]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown TYPE %q", ln+1, kind)
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE before HELP for %s", ln+1, name)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			types[name] = kind
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		default:
			// A sample: name[{labels}] value.
			rest := line
			name := rest
			if i := strings.IndexAny(rest, "{ "); i >= 0 {
				name = rest[:i]
			}
			if i := strings.IndexByte(rest, '{'); i >= 0 {
				j := strings.IndexByte(rest, '}')
				if j < i {
					t.Fatalf("line %d: malformed labels: %q", ln+1, line)
				}
				rest = rest[j+1:]
			} else {
				rest = rest[len(name):]
			}
			val := strings.TrimSpace(rest)
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("line %d: bad sample value %q: %v", ln+1, val, err)
			}
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suffix); base != name && types[base] == "histogram" {
					family = base
					break
				}
			}
			kind, ok := types[family]
			if !ok {
				t.Fatalf("line %d: sample %s before its TYPE line", ln+1, name)
			}
			if kind == "histogram" && family == name {
				t.Fatalf("line %d: histogram %s emitted a bare sample", ln+1, name)
			}
		}
	}
	return types
}

// TestWritePrometheusGrammar is the golden grammar test: a registry with
// every instrument kind renders output that parses as valid text
// exposition, with HELP/TYPE preceding samples.
func TestWritePrometheusGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Requests served.").Add(3)
	r.Gauge("sessions_live", "Live sessions.").Set(2)
	r.CounterFunc("derived_total", "Derived counter.", func() float64 { return 7 })
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	cv := r.CounterVec("ops_total", "Ops by kind.", "kind")
	cv.With("read").Add(2)
	cv.With("write").Inc()
	hv := r.HistogramVec("op_seconds", "Op latency by kind.", "kind", []float64{1})
	hv.With("read").Observe(0.5)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	types := checkPromGrammar(t, out)

	want := map[string]string{
		"requests_total":  "counter",
		"sessions_live":   "gauge",
		"derived_total":   "counter",
		"latency_seconds": "histogram",
		"ops_total":       "counter",
		"op_seconds":      "histogram",
	}
	for name, kind := range want {
		if types[name] != kind {
			t.Errorf("family %s: kind %q, want %q", name, types[name], kind)
		}
	}

	// Histogram expansion: cumulative buckets ending at +Inf == _count.
	for _, line := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		`latency_seconds_count 3`,
		`ops_total{kind="read"} 2`,
		`ops_total{kind="write"} 1`,
		`op_seconds_bucket{kind="read",le="1"} 1`,
		`derived_total 7`,
	} {
		if !containsLine(out, line) {
			t.Errorf("exposition missing line %q\n%s", line, out)
		}
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("weird_total", "help with \\ and\nnewline", "k").With("a\"b\\c\nd").Inc()
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP weird_total help with \\ and\nnewline`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
	// Every line must still be well-formed — a raw newline in HELP or a
	// label would split a line and break the grammar.
	checkPromGrammar(t, out)
}

func TestNilRegistryWrites(t *testing.T) {
	var r *Registry
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

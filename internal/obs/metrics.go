// Package obs is the dependency-free telemetry subsystem of the serving
// stack: atomic counters, gauges and fixed-bucket latency histograms
// registered in a concurrency-safe Registry with Prometheus text
// exposition (prom.go), a lightweight Tracer with context-propagated span
// ids and a bounded in-RAM ring buffer (trace.go), structured-logging
// constructors over log/slog (log.go), and HTTP middleware providing
// request ids, access logs, per-route latency histograms and panic
// recovery (httpmw.go).
//
// Everything is built for hot paths: instruments are lock-free atomics,
// every method is nil-safe (a nil *Counter, *Histogram, *Tracer or
// *ActiveSpan is an inert no-op, so call sites need no "is telemetry on?"
// branching), and the observation paths allocate nothing — the
// allocation-free lookahead serving path stays allocation-free with
// telemetry detached.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use; all methods are safe for concurrent use and nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. The zero value is ready to use; all methods
// are safe for concurrent use and nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// DefBuckets are the default latency histogram bounds, in seconds: 1µs to
// 10s, wide enough for a sub-microsecond cache hit and a multi-second
// semijoin CONS⋉ scan in the same histogram.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets (upper bounds in
// ascending order, +Inf implicit) and tracks their sum. Observations are
// two atomic adds — no locks, no allocation. All methods are safe for
// concurrent use and nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// NewHistogram builds a standalone histogram (not registered anywhere)
// with the given bucket upper bounds; nil or empty bounds select
// DefBuckets. Bounds must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan beats binary search here: latency observations cluster in
	// the small buckets, and ~22 comparisons worst case is noise next to the
	// two atomic RMWs.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts are per-bucket (not
	// cumulative) counts, with one extra entry for the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. Concurrent observations
// may straddle the copy; each bucket is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) from the bucket counts
// by linear interpolation inside the target bucket (the same estimate
// Prometheus's histogram_quantile computes). Observations beyond the last
// bound report the last bound. ok is false when the histogram is empty or
// q is out of range.
func (s HistogramSnapshot) Quantile(q float64) (float64, bool) {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || q < 0 || q > 1 || len(s.Bounds) == 0 {
		return 0, false
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1], true
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi, true
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac, true
		}
	}
	return s.Bounds[len(s.Bounds)-1], true
}

// Summary condenses a histogram into the operational numbers /debug
// endpoints report.
type Summary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary estimates p50/p95/p99 from the bucket counts.
func (h *Histogram) Summary() Summary {
	s := h.Snapshot()
	out := Summary{Count: s.Count, Sum: s.Sum}
	out.P50, _ = s.Quantile(0.50)
	out.P95, _ = s.Quantile(0.95)
	out.P99, _ = s.Quantile(0.99)
	return out
}

// metricKind discriminates family types for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled instance of a family: exactly one of the fields is
// set. fn-backed children read their value at exposition time, so existing
// counters (expvar, cache stats) expose without double bookkeeping.
type child struct {
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is one named metric with zero or more labeled children. A family
// with labelName "" has a single child under the empty label value.
type family struct {
	name, help string
	kind       metricKind
	labelName  string
	bounds     []float64

	mu       sync.Mutex
	children map[string]*child
	order    []string // label values in creation order
}

func (f *family) get(labelValue string) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labelValue]; ok {
		return c
	}
	c := &child{}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = NewHistogram(f.bounds)
	}
	f.children[labelValue] = c
	f.order = append(f.order, labelValue)
	return c
}

// Registry holds metric families and renders them (prom.go). All methods
// are safe for concurrent use; registering an existing name returns the
// existing instrument, so wiring code may run more than once per process.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// lookup returns the named family, creating it on first use. A name
// re-registered with a different kind returns nil — the caller gets an
// inert instrument instead of corrupting the exposition.
func (r *Registry) lookup(name, help string, kind metricKind, labelName string, bounds []float64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			return nil
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labelName: labelName,
		bounds: bounds, children: make(map[string]*child),
	}
	r.fams[name] = f
	return f
}

// Counter registers (or returns) a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, "", nil)
	if f == nil {
		return nil
	}
	return f.get("").counter
}

// Gauge registers (or returns) a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, "", nil)
	if f == nil {
		return nil
	}
	return f.get("").gauge
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for counters that already live elsewhere (expvar,
// cache stats) and should not be double-counted.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, kindCounter, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, kindGauge, fn)
}

func (r *Registry) registerFunc(name, help string, kind metricKind, fn func() float64) {
	f := r.lookup(name, help, kind, "", nil)
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[""]; ok {
		c.fn = fn // re-binding (a fresh manager over a shared registry) wins
		c.counter, c.gauge = nil, nil
		return
	}
	f.children[""] = &child{fn: fn}
	f.order = append(f.order, "")
}

// Histogram registers (or returns) a scalar histogram; nil bounds select
// DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, kindHistogram, "", bounds)
	if f == nil {
		return nil
	}
	return f.get("").hist
}

// CounterVec registers (or returns) a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, labelName string) *CounterVec {
	f := r.lookup(name, help, kindCounter, labelName, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// GaugeVec registers (or returns) a gauge family keyed by one label.
func (r *Registry) GaugeVec(name, help, labelName string) *GaugeVec {
	f := r.lookup(name, help, kindGauge, labelName, nil)
	if f == nil {
		return nil
	}
	return &GaugeVec{f: f}
}

// HistogramVec registers (or returns) a histogram family keyed by one
// label; nil bounds select DefBuckets.
func (r *Registry) HistogramVec(name, help, labelName string, bounds []float64) *HistogramVec {
	f := r.lookup(name, help, kindHistogram, labelName, bounds)
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}

// CounterVec is a counter family keyed by one label. Nil-safe.
type CounterVec struct{ f *family }

// With returns the counter for a label value, creating it on first use.
// Resolve once and cache the result on hot paths.
func (v *CounterVec) With(labelValue string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	return v.f.get(labelValue).counter
}

// SetFunc binds a label value to a function read at exposition time — for
// per-label counters that already live elsewhere (a gate's shed count)
// and should not be double-counted. Rebinding an existing label wins.
func (v *CounterVec) SetFunc(labelValue string, fn func() float64) {
	if v == nil || v.f == nil {
		return
	}
	v.f.setFunc(labelValue, fn)
}

// GaugeVec is a gauge family keyed by one label. Nil-safe.
type GaugeVec struct{ f *family }

// With returns the gauge for a label value, creating it on first use.
// Resolve once and cache the result on hot paths.
func (v *GaugeVec) With(labelValue string) *Gauge {
	if v == nil || v.f == nil {
		return nil
	}
	return v.f.get(labelValue).gauge
}

// SetFunc binds a label value to a function read at exposition time.
func (v *GaugeVec) SetFunc(labelValue string, fn func() float64) {
	if v == nil || v.f == nil {
		return
	}
	v.f.setFunc(labelValue, fn)
}

// setFunc installs (or rebinds) a fn-backed child under labelValue.
func (f *family) setFunc(labelValue string, fn func() float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labelValue]; ok {
		c.fn = fn
		c.counter, c.gauge, c.hist = nil, nil, nil
		return
	}
	f.children[labelValue] = &child{fn: fn}
	f.order = append(f.order, labelValue)
}

// HistogramVec is a histogram family keyed by one label. Nil-safe.
type HistogramVec struct{ f *family }

// With returns the histogram for a label value, creating it on first use.
// Resolve once and cache the result on hot paths.
func (v *HistogramVec) With(labelValue string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	return v.f.get(labelValue).hist
}

// families returns the registered families sorted by name, and for each a
// stable copy of its label values (creation order).
func (r *Registry) families() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

package tpch

import (
	"strconv"
	"testing"

	"repro/internal/predicate"
)

func TestSFToMultiplier(t *testing.T) {
	cases := []struct {
		sf   float64
		want int
	}{
		{0.5, 1},
		{1, 1},
		{10, 2},
		{100, 2},
		{1000, 3},
		{100000, 4},
		{1e9, 4}, // capped
	}
	for _, c := range cases {
		if got := SFToMultiplier(c.sf); got != c.want {
			t.Errorf("SFToMultiplier(%v) = %d, want %d", c.sf, got, c.want)
		}
	}
}

func TestGenerateRowCounts(t *testing.T) {
	d := MustGenerate(1, 42)
	if d.Part.Len() != basePart {
		t.Errorf("Part rows = %d", d.Part.Len())
	}
	if d.Supplier.Len() != baseSupplier {
		t.Errorf("Supplier rows = %d", d.Supplier.Len())
	}
	if d.PartSupp.Len() != basePartSupp {
		t.Errorf("PartSupp rows = %d", d.PartSupp.Len())
	}
	if d.Customer.Len() != baseCustomer {
		t.Errorf("Customer rows = %d", d.Customer.Len())
	}
	if d.Orders.Len() != baseOrders {
		t.Errorf("Orders rows = %d", d.Orders.Len())
	}
	if d.Lineitem.Len() != baseLineitem {
		t.Errorf("Lineitem rows = %d", d.Lineitem.Len())
	}

	d2 := MustGenerate(3, 42)
	if d2.Part.Len() != 3*basePart || d2.Lineitem.Len() != 3*baseLineitem {
		t.Error("multiplier not applied")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(0, 1); err == nil {
		t.Error("multiplier 0 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate(0) did not panic")
		}
	}()
	MustGenerate(0, 1)
}

func TestForeignKeysValid(t *testing.T) {
	d := MustGenerate(2, 7)
	nPart, nSupp := d.Part.Len(), d.Supplier.Len()
	nCust, nOrd := d.Customer.Len(), d.Orders.Len()

	for _, tp := range d.PartSupp.Tuples {
		pk, _ := strconv.Atoi(tp[0])
		sk, _ := strconv.Atoi(tp[1])
		if pk < 1 || pk > nPart {
			t.Fatalf("PartSupp partkey %d out of range", pk)
		}
		if sk < 1 || sk > nSupp {
			t.Fatalf("PartSupp suppkey %d out of range", sk)
		}
	}
	for _, tp := range d.Orders.Tuples {
		ck, _ := strconv.Atoi(tp[1])
		if ck < 1 || ck > nCust {
			t.Fatalf("Orders custkey %d out of range", ck)
		}
	}
	for _, tp := range d.Lineitem.Tuples {
		ok, _ := strconv.Atoi(tp[0])
		pk, _ := strconv.Atoi(tp[1])
		sk, _ := strconv.Atoi(tp[2])
		if ok < 1 || ok > nOrd {
			t.Fatalf("Lineitem orderkey %d out of range", ok)
		}
		if pk < 1 || pk > nPart || sk < 1 || sk > nSupp {
			t.Fatalf("Lineitem part/supp key out of range")
		}
	}
	// Every part has exactly 4 PartSupp rows; every order exactly 4 lines.
	psPerPart := map[string]int{}
	for _, tp := range d.PartSupp.Tuples {
		psPerPart[tp[0]]++
	}
	for k, n := range psPerPart {
		if n != 4 {
			t.Fatalf("part %s has %d partsupp rows", k, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(1, 5)
	b := MustGenerate(1, 5)
	for i := range a.Lineitem.Tuples {
		for j := range a.Lineitem.Tuples[i] {
			if a.Lineitem.Tuples[i][j] != b.Lineitem.Tuples[i][j] {
				t.Fatal("same seed produced different Lineitem")
			}
		}
	}
}

func TestInstanceGoals(t *testing.T) {
	d := MustGenerate(1, 42)
	for _, j := range AllJoins() {
		inst, goal, err := d.Instance(j)
		if err != nil {
			t.Fatalf("%v: %v", j, err)
		}
		if goal.Size() != j.GoalSize() {
			t.Errorf("%v goal size = %d, want %d", j, goal.Size(), j.GoalSize())
		}
		u := predicate.NewUniverse(inst)
		// The FK structure guarantees the goal join is non-empty.
		if len(predicate.Join(inst, u, goal)) == 0 {
			t.Errorf("%v: goal join empty", j)
		}
	}
	if _, _, err := d.Instance(Join(99)); err == nil {
		t.Error("unknown join accepted")
	}
}

func TestJoinString(t *testing.T) {
	if Join4.String() != "Join 4" {
		t.Errorf("String = %q", Join4.String())
	}
	if len(AllJoins()) != 5 {
		t.Error("AllJoins should list 5 joins")
	}
}

// TestAccidentalMatches: the value domains must produce cross-column
// collisions beyond the key/FK pairs — the difficulty the paper evaluates.
func TestAccidentalMatches(t *testing.T) {
	d := MustGenerate(1, 42)
	inst, goal, err := d.Instance(Join1)
	if err != nil {
		t.Fatal(err)
	}
	u := predicate.NewUniverse(inst)
	// Count product pairs (on a sample) whose T contains a non-goal pair.
	accidental := 0
	for ri := 0; ri < 20; ri++ {
		for pi := 0; pi < inst.P.Len(); pi++ {
			th := predicate.T(u, inst.R.Tuples[ri], inst.P.Tuples[pi])
			if th.Size() > 0 && !th.Equal(goal) {
				accidental++
			}
		}
	}
	if accidental == 0 {
		t.Error("no accidental matches — domains too disjoint to exercise the paper's scenario")
	}
}

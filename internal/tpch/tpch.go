// Package tpch is a from-scratch, deterministic mini-dbgen for the TPC-H
// schema, standing in for the official generator (unavailable offline; see
// DESIGN.md, Substitutions).
//
// It produces the six tables the paper's five goal joins touch — Part,
// Supplier, PartSupp, Customer, Orders, Lineitem — with the benchmark's
// key / foreign-key structure, and with value domains deliberately chosen
// so that *accidental* cross-column matches occur: keys, sizes, quantities,
// brands and priorities all share small integer ranges. That is exactly the
// difficulty Section 5.1 evaluates ("a value 15 may as well represent a
// key, a size, a price, or a quantity").
//
// The paper's scaling factors (1 … 100000) are mapped to row-count
// multipliers via SFToMultiplier so Cartesian products stay laptop-scale;
// EXPERIMENTS.md records the mapping.
package tpch

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/predicate"
	"repro/internal/relation"
)

// Base row counts at multiplier 1. PartSupp keeps TPC-H's four suppliers
// per part; Lineitem keeps four lines per order.
const (
	basePart     = 100
	baseSupplier = 10
	basePartSupp = 4 * basePart
	baseCustomer = 150
	baseOrders   = 300
	baseLineitem = 4 * baseOrders
)

// Data holds one generated database.
type Data struct {
	Part, Supplier, PartSupp, Customer, Orders, Lineitem *relation.Relation
	// Multiplier is the row-count multiplier the data was generated with.
	Multiplier int
}

// SFToMultiplier maps a TPC-H scaling factor to a row-count multiplier:
// 1 + log10(sf), capped to [1, 4]. SF 1 → 1× rows; SF 100000 → 4× (capped),
// keeping the largest product (Orders × Lineitem) in the millions.
func SFToMultiplier(sf float64) int {
	if sf <= 1 {
		return 1
	}
	m := 1 + int(math.Round(math.Log10(sf)*0.6))
	if m > 4 {
		m = 4
	}
	return m
}

// Generate builds a deterministic database at the given multiplier.
func Generate(multiplier int, seed int64) (*Data, error) {
	if multiplier < 1 {
		return nil, fmt.Errorf("tpch: multiplier must be ≥ 1, got %d", multiplier)
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Data{Multiplier: multiplier}

	nPart := basePart * multiplier
	nSupp := baseSupplier * multiplier
	nPS := basePartSupp * multiplier
	nCust := baseCustomer * multiplier
	nOrd := baseOrders * multiplier
	nLine := baseLineitem * multiplier

	itoa := strconv.Itoa
	// Money and date columns use TPC-H's lexical forms ("901.23",
	// "1994-07-15"), which — exactly as in the real benchmark — never
	// collide with integer key/size/quantity domains; the accidental
	// matches the paper discusses come from the small-integer columns.
	money := func(lo, hi int) string {
		cents := lo*100 + rng.Intn((hi-lo)*100)
		return fmt.Sprintf("%d.%02d", cents/100, cents%100)
	}
	date := func() string {
		day := rng.Intn(2556) // ~7 years of days like dbgen
		return fmt.Sprintf("%d-%02d-%02d", 1992+day/365, 1+(day/30)%12, 1+day%28)
	}

	d.Part = relation.NewRelation(relation.MustSchema("Part",
		"Partkey", "PName", "Mfgr", "Brand", "PType", "PSize", "Container", "Retailprice"))
	for k := 1; k <= nPart; k++ {
		d.Part.MustAddTuple(
			itoa(k),
			"Part#"+itoa(k),
			itoa(1+rng.Intn(5)),   // Mfgr 1..5
			itoa(10+rng.Intn(25)), // Brand 10..34
			itoa(1+rng.Intn(150)), // PType 1..150
			itoa(1+rng.Intn(50)),  // PSize 1..50 — collides with keys/quantities
			itoa(1+rng.Intn(40)),  // Container 1..40
			money(900, 1100),
		)
	}

	d.Supplier = relation.NewRelation(relation.MustSchema("Supplier",
		"Suppkey", "SName", "SNationkey", "SAcctbal"))
	for k := 1; k <= nSupp; k++ {
		d.Supplier.MustAddTuple(
			itoa(k),
			"Supplier#"+itoa(k),
			itoa(rng.Intn(25)), // SNationkey 0..24 — collides with small keys
			money(0, 10000),
		)
	}

	d.PartSupp = relation.NewRelation(relation.MustSchema("PartSupp",
		"PSPartkey", "PSSuppkey", "Availqty", "Supplycost"))
	for i := 0; i < nPS; i++ {
		partkey := i/4 + 1
		suppkey := (i*7+i/4)%nSupp + 1 // spread suppliers like dbgen does
		d.PartSupp.MustAddTuple(
			itoa(partkey),
			itoa(suppkey),
			itoa(1+rng.Intn(9999)), // Availqty — collides with key ranges
			money(1, 1000),
		)
	}

	d.Customer = relation.NewRelation(relation.MustSchema("Customer",
		"Custkey", "CName", "CNationkey", "CAcctbal", "Mktsegment"))
	for k := 1; k <= nCust; k++ {
		d.Customer.MustAddTuple(
			itoa(k),
			"Customer#"+itoa(k),
			itoa(rng.Intn(25)),
			money(0, 10000),
			itoa(1+rng.Intn(5)), // Mktsegment 1..5 — collides with Mfgr, priorities
		)
	}

	d.Orders = relation.NewRelation(relation.MustSchema("Orders",
		"Orderkey", "OCustkey", "Orderstatus", "Totalprice", "Orderdate", "Orderpriority"))
	for k := 1; k <= nOrd; k++ {
		d.Orders.MustAddTuple(
			itoa(k),
			itoa(1+rng.Intn(nCust)),
			itoa(rng.Intn(3)), // Orderstatus 0..2
			money(1000, 10000),
			date(),
			itoa(1+rng.Intn(5)), // Orderpriority 1..5
		)
	}

	d.Lineitem = relation.NewRelation(relation.MustSchema("Lineitem",
		"LOrderkey", "LPartkey", "LSuppkey", "Linenumber", "Quantity", "Extendedprice", "LDiscount", "LTax"))
	for i := 0; i < nLine; i++ {
		orderkey := i/4 + 1
		d.Lineitem.MustAddTuple(
			itoa(orderkey),
			itoa(1+rng.Intn(nPart)),
			itoa(1+rng.Intn(nSupp)),
			itoa(i%4+1),          // Linenumber 1..4
			itoa(1+rng.Intn(50)), // Quantity 1..50 — collides with PSize etc.
			money(1000, 10000),
			fmt.Sprintf("0.%02d", rng.Intn(11)), // LDiscount 0.00..0.10
			fmt.Sprintf("0.%02d", rng.Intn(9)),  // LTax 0.00..0.08
		)
	}
	return d, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(multiplier int, seed int64) *Data {
	d, err := Generate(multiplier, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// Join identifies one of the paper's five goal joins (Section 5.1).
type Join int

// The five goal joins of Section 5.1 — key/foreign-key relationships, all
// unknown to the strategies.
const (
	// Join1: Part[Partkey] = Partsupp[Partkey].
	Join1 Join = iota + 1
	// Join2: Supplier[Suppkey] = Partsupp[Suppkey].
	Join2
	// Join3: Customer[Custkey] = Orders[Custkey].
	Join3
	// Join4: Orders[Orderkey] = Lineitem[Orderkey].
	Join4
	// Join5: Partsupp[Partkey] = Lineitem[Partkey] ∧
	// Partsupp[Suppkey] = Lineitem[Suppkey].
	Join5
)

// AllJoins lists the five goal joins in paper order.
func AllJoins() []Join { return []Join{Join1, Join2, Join3, Join4, Join5} }

// String implements fmt.Stringer.
func (j Join) String() string { return fmt.Sprintf("Join %d", int(j)) }

// GoalSize returns |θG|: 1 for Joins 1–4, 2 for Join 5.
func (j Join) GoalSize() int {
	if j == Join5 {
		return 2
	}
	return 1
}

// Instance returns the two-relation instance and the goal predicate for the
// join.
func (d *Data) Instance(j Join) (*relation.Instance, predicate.Pred, error) {
	var inst *relation.Instance
	var pairs [][2]string
	switch j {
	case Join1:
		inst = relation.MustInstance(d.Part, d.PartSupp)
		pairs = [][2]string{{"Partkey", "PSPartkey"}}
	case Join2:
		inst = relation.MustInstance(d.Supplier, d.PartSupp)
		pairs = [][2]string{{"Suppkey", "PSSuppkey"}}
	case Join3:
		inst = relation.MustInstance(d.Customer, d.Orders)
		pairs = [][2]string{{"Custkey", "OCustkey"}}
	case Join4:
		inst = relation.MustInstance(d.Orders, d.Lineitem)
		pairs = [][2]string{{"Orderkey", "LOrderkey"}}
	case Join5:
		inst = relation.MustInstance(d.PartSupp, d.Lineitem)
		pairs = [][2]string{{"PSPartkey", "LPartkey"}, {"PSSuppkey", "LSuppkey"}}
	default:
		return nil, predicate.Pred{}, fmt.Errorf("tpch: unknown join %d", int(j))
	}
	u := predicate.NewUniverse(inst)
	var namePairs [][2]string
	namePairs = append(namePairs, pairs...)
	goal, err := predicate.FromNames(u, namePairs...)
	if err != nil {
		return nil, predicate.Pred{}, err
	}
	return inst, goal, nil
}

package tpch

import (
	"fmt"
	"strconv"

	"repro/internal/predicate"
	"repro/internal/relation"
)

// Extended schema: Nation and Region complete the TPC-H star. The paper's
// evaluation uses only the five joins of Section 5.1; these tables and the
// extra goal joins below are provided as additional workloads (clearly
// marked Extended) for users who want to stress the inference on very
// small dimension tables, where almost every value collides with
// something.

// nationNames are the 25 TPC-H nations in nationkey order.
var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
	"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
	"IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
	"SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

// regionNames are the 5 TPC-H regions in regionkey order.
var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nationRegion maps nationkey → regionkey exactly as dbgen does.
var nationRegion = []int{
	0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
}

// ExtendedData adds the two dimension tables to a generated database.
type ExtendedData struct {
	*Data
	Nation, Region *relation.Relation
}

// Extend builds Nation and Region for the database. They are fixed-size
// (25 and 5 rows) regardless of multiplier, like the real benchmark.
func (d *Data) Extend() *ExtendedData {
	nation := relation.NewRelation(relation.MustSchema("Nation",
		"Nationkey", "NName", "NRegionkey"))
	for k, name := range nationNames {
		nation.MustAddTuple(strconv.Itoa(k), name, strconv.Itoa(nationRegion[k]))
	}
	region := relation.NewRelation(relation.MustSchema("Region",
		"Regionkey", "RName"))
	for k, name := range regionNames {
		region.MustAddTuple(strconv.Itoa(k), name)
	}
	return &ExtendedData{Data: d, Nation: nation, Region: region}
}

// ExtJoin identifies an extended goal join beyond the paper's five.
type ExtJoin int

// Extended goal joins over the dimension tables.
const (
	// ExtJoinSupplierNation: Supplier[SNationkey] = Nation[Nationkey].
	ExtJoinSupplierNation ExtJoin = iota + 1
	// ExtJoinCustomerNation: Customer[CNationkey] = Nation[Nationkey].
	ExtJoinCustomerNation
	// ExtJoinNationRegion: Nation[NRegionkey] = Region[Regionkey].
	ExtJoinNationRegion
)

// AllExtJoins lists the extended joins.
func AllExtJoins() []ExtJoin {
	return []ExtJoin{ExtJoinSupplierNation, ExtJoinCustomerNation, ExtJoinNationRegion}
}

// String implements fmt.Stringer.
func (j ExtJoin) String() string {
	switch j {
	case ExtJoinSupplierNation:
		return "Supplier ⋈ Nation"
	case ExtJoinCustomerNation:
		return "Customer ⋈ Nation"
	case ExtJoinNationRegion:
		return "Nation ⋈ Region"
	default:
		return fmt.Sprintf("ExtJoin(%d)", int(j))
	}
}

// Instance returns the instance and goal for an extended join.
func (d *ExtendedData) Instance(j ExtJoin) (*relation.Instance, predicate.Pred, error) {
	var inst *relation.Instance
	var pair [2]string
	switch j {
	case ExtJoinSupplierNation:
		inst = relation.MustInstance(d.Supplier, d.Nation)
		pair = [2]string{"SNationkey", "Nationkey"}
	case ExtJoinCustomerNation:
		inst = relation.MustInstance(d.Customer, d.Nation)
		pair = [2]string{"CNationkey", "Nationkey"}
	case ExtJoinNationRegion:
		inst = relation.MustInstance(d.Nation, d.Region)
		pair = [2]string{"NRegionkey", "Regionkey"}
	default:
		return nil, predicate.Pred{}, fmt.Errorf("tpch: unknown extended join %d", int(j))
	}
	u := predicate.NewUniverse(inst)
	goal, err := predicate.FromNames(u, pair)
	if err != nil {
		return nil, predicate.Pred{}, err
	}
	return inst, goal, nil
}

package tpch

import (
	"strconv"
	"testing"

	"repro/internal/inference"
	"repro/internal/oracle"
	"repro/internal/predicate"
	"repro/internal/strategy"
)

func TestExtendFixedDimensions(t *testing.T) {
	d := MustGenerate(3, 1).Extend()
	if d.Nation.Len() != 25 {
		t.Errorf("Nation rows = %d, want 25 regardless of multiplier", d.Nation.Len())
	}
	if d.Region.Len() != 5 {
		t.Errorf("Region rows = %d, want 5", d.Region.Len())
	}
	// Region keys of nations must be valid.
	rk := d.Nation.Schema.IndexOf("NRegionkey")
	for _, tp := range d.Nation.Tuples {
		k, _ := strconv.Atoi(tp[rk])
		if k < 0 || k > 4 {
			t.Fatalf("nation region key %d out of range", k)
		}
	}
}

func TestExtendedJoinsNonEmpty(t *testing.T) {
	d := MustGenerate(1, 42).Extend()
	for _, j := range AllExtJoins() {
		inst, goal, err := d.Instance(j)
		if err != nil {
			t.Fatalf("%v: %v", j, err)
		}
		u := predicate.NewUniverse(inst)
		if len(predicate.Join(inst, u, goal)) == 0 {
			t.Errorf("%v: goal join empty", j)
		}
	}
	if _, _, err := d.Instance(ExtJoin(99)); err == nil {
		t.Error("unknown extended join accepted")
	}
}

func TestExtJoinString(t *testing.T) {
	if ExtJoinNationRegion.String() != "Nation ⋈ Region" {
		t.Errorf("String = %q", ExtJoinNationRegion.String())
	}
	if ExtJoin(99).String() == "" {
		t.Error("unknown join should still render")
	}
}

// TestInferExtendedJoins: the inference recovers each extended goal join
// (instance-equivalent) — the dimension tables are tiny, so these runs
// also exercise dense accidental-match regimes (every nationkey collides
// with keys, priorities, sizes…).
func TestInferExtendedJoins(t *testing.T) {
	d := MustGenerate(1, 42).Extend()
	for _, j := range AllExtJoins() {
		inst, goal, err := d.Instance(j)
		if err != nil {
			t.Fatal(err)
		}
		e := inference.New(inst)
		res, err := inference.Run(e, strategy.NewTopDown(), oracle.NewHonest(inst, e.U, goal), 0)
		if err != nil {
			t.Fatalf("%v: %v", j, err)
		}
		gj := predicate.Join(inst, e.U, goal)
		rj := predicate.Join(inst, e.U, res.Predicate)
		if len(gj) != len(rj) {
			t.Errorf("%v: inferred %v not equivalent (selects %d vs %d)",
				j, res.Predicate.Format(e.U), len(rj), len(gj))
		}
	}
}

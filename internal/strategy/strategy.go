// Package strategy implements the paper's strategies for choosing which
// tuple the user labels next (Section 4): the random baseline RND, the
// local strategies BU (Algorithm 2) and TD (Algorithm 3), the lookahead
// skyline strategies L1S (Algorithm 4) and L2S (Algorithms 5–6) with a
// generalization to arbitrary depth k, and the exponential minimax-optimal
// strategy of Section 4.1, usable as a ground-truth oracle on tiny
// instances.
//
// All strategies operate on T-classes: the engine guarantees that tuples
// with equal T(t) are interchangeable, so "return a tuple" means "return a
// class index" and the engine presents the class representative.
package strategy

import (
	"math/rand"

	"repro/internal/inference"
)

// countingSource wraps a rand.Source64 and counts every draw it serves, so
// a Random strategy's exact stream position can be captured in a session
// snapshot and re-established on resume. Counting source-level draws (not
// Intn calls) is what makes resume bit-identical: one Intn may consume
// several source draws through rejection sampling.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 { c.n++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.n++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed); c.n = 0 }

// Random is the RND baseline: it labels a uniformly random informative
// tuple. A seed makes runs reproducible, and the stream position is
// observable (Pos) and restorable (NewRandomAt) so interrupted sessions
// resume with bit-identical draws.
type Random struct {
	rng *rand.Rand
	src *countingSource
}

// NewRandom returns a seeded RND strategy.
func NewRandom(seed int64) *Random { return NewRandomAt(seed, 0) }

// NewRandomAt returns a seeded RND strategy fast-forwarded past the first
// pos source draws: NewRandomAt(seed, r.Pos()) continues the exact stream
// of r. NewRandomAt(seed, 0) is NewRandom(seed).
func NewRandomAt(seed int64, pos uint64) *Random {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	r := &Random{rng: rand.New(src), src: src}
	r.SkipTo(pos)
	return r
}

// Pos returns the number of source draws consumed so far.
func (r *Random) Pos() uint64 { return r.src.n }

// SkipTo fast-forwards the source to absolute position pos, so the next
// draw happens exactly where a stream that already consumed pos draws
// would continue. Positions at or behind the current one are a no-op —
// the stream cannot rewind. Serving a memoized pick (which skips the
// live draw) uses this to keep the stream bit-identical to an unmemoized
// session's.
func (r *Random) SkipTo(pos uint64) {
	for r.src.n < pos {
		r.src.src.Int63()
		r.src.n++
	}
}

// Name implements Strategy.
func (r *Random) Name() string { return "RND" }

// Next implements Strategy.
func (r *Random) Next(e *inference.Engine) int {
	inf := e.InformativeClasses()
	if len(inf) == 0 {
		return -1
	}
	return inf[r.rng.Intn(len(inf))]
}

// BottomUp is the BU strategy (Algorithm 2): it navigates the lattice from
// the most general predicate ∅ upward, always asking about an informative
// tuple whose most specific predicate is smallest.
type BottomUp struct{}

// Name implements Strategy.
func (BottomUp) Name() string { return "BU" }

// Next implements Strategy. Classes are kept sorted by ascending |T(t)|, so
// the first informative class realizes the minimum size.
func (BottomUp) Next(e *inference.Engine) int {
	for ci := range e.Classes() {
		if e.Informative(ci) {
			return ci
		}
	}
	return -1
}

// TopDown is the TD strategy (Algorithm 3): while no positive example
// exists it asks about tuples whose most specific predicate is ⊆-maximal
// among all product tuples (descending from Ω); as soon as a positive
// example arrives the goal is known to be non-nullable and TD behaves
// exactly like BU.
type TopDown struct {
	// maximal caches the ⊆-maximal class indexes per engine.
	maximal map[*inference.Engine][]int
}

// NewTopDown returns a TD strategy.
func NewTopDown() *TopDown {
	return &TopDown{maximal: make(map[*inference.Engine][]int)}
}

// Name implements Strategy.
func (t *TopDown) Name() string { return "TD" }

// Next implements Strategy.
func (t *TopDown) Next(e *inference.Engine) int {
	if e.Sample().NumPositive() > 0 {
		return BottomUp{}.Next(e)
	}
	maxes, ok := t.maximal[e]
	if !ok {
		maxes = maximalClasses(e)
		t.maximal[e] = maxes
	}
	for _, ci := range maxes {
		if e.Informative(ci) {
			return ci
		}
	}
	// All maximal classes are labeled or uninformative; any remaining
	// informative class is below a labeled one (cannot happen with the halt
	// condition, but stay safe).
	return BottomUp{}.Next(e)
}

// maximalClasses returns indexes of classes whose predicate is ⊆-maximal
// among all classes, in class order.
func maximalClasses(e *inference.Engine) []int {
	cs := e.Classes()
	var out []int
	for i, c := range cs {
		maximal := true
		for j, d := range cs {
			if i != j && c.Theta.Set.ProperSubsetOf(d.Theta.Set) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, i)
		}
	}
	return out
}

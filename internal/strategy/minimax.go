package strategy

import (
	"fmt"

	"repro/internal/inference"
	"repro/internal/predicate"
)

// Optimal is the minimax strategy of Section 4.1: it minimizes the
// worst-case number of interactions over all goal predicates by exploring
// the full game tree (the standard minimax construction). The paper notes a
// straightforward implementation needs exponential time, "which renders it
// unusable in practice" — it is provided here as a ground-truth oracle for
// testing the efficient strategies on tiny instances.
type Optimal struct {
	// MaxClasses bounds the instance size; Next panics beyond it to avoid
	// accidental exponential blow-ups. Zero means DefaultMaxClasses.
	MaxClasses int

	memo map[string]int
}

// DefaultMaxClasses is the largest class count Optimal accepts by default
// (3^14 ≈ 4.8M memo states is still fast; beyond that it gets painful).
const DefaultMaxClasses = 14

// NewOptimal returns a minimax strategy with the default size bound.
func NewOptimal() *Optimal { return &Optimal{} }

// Name implements Strategy.
func (o *Optimal) Name() string { return "OPT" }

// minimaxState mirrors the engine's labeling state for memoization.
type minimaxState struct {
	labels []int8 // 0 unlabeled, 1 positive, 2 negative
}

func (s *minimaxState) key() string {
	b := make([]byte, len(s.labels))
	for i, l := range s.labels {
		b[i] = byte(l)
	}
	return string(b)
}

// Next implements Strategy: it returns an informative class minimizing
// 1 + max over the two answers of the optimal remaining cost.
func (o *Optimal) Next(e *inference.Engine) int {
	limit := o.MaxClasses
	if limit == 0 {
		limit = DefaultMaxClasses
	}
	if len(e.Classes()) > limit {
		panic(fmt.Sprintf("strategy: Optimal limited to %d classes, instance has %d", limit, len(e.Classes())))
	}
	if o.memo == nil {
		o.memo = make(map[string]int)
	}
	st := &minimaxState{labels: make([]int8, len(e.Classes()))}
	for ci := range e.Classes() {
		if e.IsLabeled(ci) {
			// Recover the sign from the engine's sample bookkeeping: a
			// labeled class is certain for exactly its own label.
			if e.CertainPositive(ci) {
				st.labels[ci] = 1
			} else {
				st.labels[ci] = 2
			}
		}
	}
	bestCost := -1
	bestIdx := -1
	for _, ci := range o.informative(e, st) {
		cost := 1 + o.worst(e, st, ci)
		if bestCost == -1 || cost < bestCost {
			bestCost = cost
			bestIdx = ci
		}
	}
	return bestIdx
}

// Cost returns the optimal worst-case number of interactions from the
// engine's current state; exposed for tests comparing strategies against
// the optimum.
func (o *Optimal) Cost(e *inference.Engine) int {
	ci := o.Next(e)
	if ci < 0 {
		return 0
	}
	st := &minimaxState{labels: make([]int8, len(e.Classes()))}
	for i := range e.Classes() {
		if e.IsLabeled(i) {
			if e.CertainPositive(i) {
				st.labels[i] = 1
			} else {
				st.labels[i] = 2
			}
		}
	}
	return o.value(e, st)
}

// value = 0 if no informative class; else min over informative ci of
// 1 + max over answers of value(child).
func (o *Optimal) value(e *inference.Engine, st *minimaxState) int {
	k := st.key()
	if v, ok := o.memo[k]; ok {
		return v
	}
	inf := o.informative(e, st)
	if len(inf) == 0 {
		o.memo[k] = 0
		return 0
	}
	best := -1
	for _, ci := range inf {
		cost := 1 + o.worst(e, st, ci)
		if best == -1 || cost < best {
			best = cost
		}
	}
	o.memo[k] = best
	return best
}

// worst returns max over the two answers for ci of the optimal cost of the
// resulting state.
func (o *Optimal) worst(e *inference.Engine, st *minimaxState, ci int) int {
	st.labels[ci] = 1
	vp := o.value(e, st)
	st.labels[ci] = 2
	vn := o.value(e, st)
	st.labels[ci] = 0
	if vn > vp {
		return vn
	}
	return vp
}

// informative recomputes the informative classes for a hypothetical
// labeling state using the stateless Lemma 3.3/3.4 tests.
func (o *Optimal) informative(e *inference.Engine, st *minimaxState) []int {
	cs := e.Classes()
	tpos := predicate.Omega(e.U)
	var negs []predicate.Pred
	for ci, l := range st.labels {
		switch l {
		case 1:
			tpos.Set.IntersectInPlace(cs[ci].Theta.Set)
		case 2:
			negs = append(negs, cs[ci].Theta)
		}
	}
	var out []int
	for ci, l := range st.labels {
		if l != 0 {
			continue
		}
		if !inference.CertainUnder(tpos, negs, cs[ci].Theta) {
			out = append(out, ci)
		}
	}
	return out
}

package strategy

import (
	"testing"

	"repro/internal/inference"
	"repro/internal/synth"
)

func benchEngine(b *testing.B) *inference.Engine {
	b.Helper()
	inst := synth.MustGenerate(synth.Config{AttrsR: 3, AttrsP: 3, Rows: 100, Values: 100}, 5)
	return inference.New(inst)
}

func BenchmarkNextBU(b *testing.B) {
	e := benchEngine(b)
	s := BottomUp{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(e)
	}
}

func BenchmarkNextTD(b *testing.B) {
	e := benchEngine(b)
	s := NewTopDown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(e)
	}
}

func BenchmarkNextL1S(b *testing.B) {
	e := benchEngine(b)
	s := Lookahead{K: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(e)
	}
}

func BenchmarkNextL2S(b *testing.B) {
	e := benchEngine(b)
	s := Lookahead{K: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(e)
	}
}

func BenchmarkNextHalving(b *testing.B) {
	e := benchEngine(b)
	s := Halving{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(e)
	}
}

func BenchmarkNextOptimalExample21(b *testing.B) {
	// Optimal only runs on tiny instances; measure on the paper example.
	inst := synth.MustGenerate(synth.Config{AttrsR: 2, AttrsP: 2, Rows: 4, Values: 3}, 3)
	e := inference.New(inst)
	if len(e.Classes()) > DefaultMaxClasses {
		b.Skip("instance too large for OPT")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := NewOptimal()
		o.Next(e)
	}
}

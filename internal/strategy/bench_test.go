package strategy

import (
	"testing"

	"repro/internal/inference"
	"repro/internal/oracle"
	"repro/internal/predicate"
	"repro/internal/synth"
)

func benchEngine(b *testing.B) *inference.Engine {
	b.Helper()
	inst := synth.MustGenerate(synth.Config{AttrsR: 3, AttrsP: 3, Rows: 100, Values: 100}, 5)
	return inference.New(inst)
}

func BenchmarkNextBU(b *testing.B) {
	e := benchEngine(b)
	s := BottomUp{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(e)
	}
}

func BenchmarkNextTD(b *testing.B) {
	e := benchEngine(b)
	s := NewTopDown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(e)
	}
}

func BenchmarkNextL1S(b *testing.B) {
	e := benchEngine(b)
	s := Lookahead{K: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(e)
	}
}

func BenchmarkNextL2S(b *testing.B) {
	e := benchEngine(b)
	s := Lookahead{K: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(e)
	}
}

func BenchmarkNextHalving(b *testing.B) {
	e := benchEngine(b)
	s := Halving{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(e)
	}
}

// BenchmarkColdPath measures uncached (first-user) serving on a >64-pair
// universe — the general path a policy cache cannot help. Each op is one
// full inference run; "arena" is the production allocation-free flat-arena
// path, "legacy" the pre-arena slice-based implementation it replaced
// (still the k > maxFastDepth fallback). questions/s is the custom
// throughput metric; allocs/op shows the arena discipline. Recorded in
// BENCH_coldpath.json.
func BenchmarkColdPath(b *testing.B) {
	inst := synth.MustGenerate(synth.Config{AttrsR: 9, AttrsP: 8, Rows: 6, Values: 3}, 1)
	e0 := inference.New(inst)
	if e0.U.Size() <= 64 {
		b.Fatalf("universe %d fits a word; want > 64", e0.U.Size())
	}
	classes := e0.Classes()
	goal := predicate.FromPairs(e0.U, [2]int{0, 0}, [2]int{3, 2})
	variants := []struct {
		name  string
		strat inference.Strategy
	}{
		{"L1S/arena", Lookahead{K: 1}},
		{"L1S/legacy", legacyLookahead{K: 1}},
		{"L2S/arena", Lookahead{K: 2}},
		{"L2S/legacy", legacyLookahead{K: 2}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			questions := 0
			for i := 0; i < b.N; i++ {
				e := inference.New(inst, inference.WithClasses(classes))
				res, err := inference.Run(e, v.strat, oracle.NewHonest(inst, e.U, goal), 0)
				if err != nil {
					b.Fatal(err)
				}
				questions += res.Interactions
			}
			b.ReportMetric(float64(questions)/b.Elapsed().Seconds(), "questions/s")
		})
	}
}

func BenchmarkNextOptimalExample21(b *testing.B) {
	// Optimal only runs on tiny instances; measure on the paper example.
	inst := synth.MustGenerate(synth.Config{AttrsR: 2, AttrsP: 2, Rows: 4, Values: 3}, 3)
	e := inference.New(inst)
	if len(e.Classes()) > DefaultMaxClasses {
		b.Skip("instance too large for OPT")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := NewOptimal()
		o.Next(e)
	}
}

package strategy

import (
	"math/big"

	"repro/internal/inference"
	"repro/internal/predicate"
)

// This file implements a strategy the paper does not have but points
// toward in its future work ("lookahead strategies using probabilistic
// graphical models"): version-space halving under a uniform prior over
// consistent predicates. Each question is chosen to split the set C(S) of
// consistent predicates as evenly as possible, the classic
// membership-query bisection of Angluin's framework.
//
// The key enabler is that |C(S)| is countable without enumeration:
//
//	C(S) = { θ ⊆ T(S+) | ∀ negative n: θ ⊄ T(n) }
//	|C(S)| = 2^|T(S+)| − |⋃_i P(T(S+) ∩ T(n_i))|
//
// and the union of power sets yields to inclusion–exclusion over the
// ⊆-maximal intersections — exponential in the number of *distinct
// maximal* negative intersections, which stays tiny in practice.

// maxIETerms bounds the inclusion–exclusion width; beyond it counting
// reports "unknown" and Halving falls back.
const maxIETerms = 20

// CountConsistent returns |C(S)| for positive knowledge tpos = T(S+) and
// negative examples negs, or nil if the inclusion–exclusion would need
// more than maxIETerms distinct maximal negative intersections.
func CountConsistent(tpos predicate.Pred, negs []predicate.Pred) *big.Int {
	// Collect distinct, ⊆-maximal mi = tpos ∩ T(neg_i). A subset relation
	// mi ⊆ mj makes P(mi) redundant in the union.
	var ms []predicate.Pred
	for _, n := range negs {
		m := tpos.Intersect(n)
		redundant := false
		for k := 0; k < len(ms); k++ {
			if m.Set.SubsetOf(ms[k].Set) {
				redundant = true
				break
			}
		}
		if redundant {
			continue
		}
		// Drop previously kept sets that m swallows.
		kept := ms[:0]
		for _, old := range ms {
			if !old.Set.SubsetOf(m.Set) {
				kept = append(kept, old)
			}
		}
		ms = append(kept, m)
	}
	if len(ms) > maxIETerms {
		return nil
	}

	total := pow2(tpos.Size())
	if len(ms) == 0 {
		return total
	}
	// Inclusion–exclusion over non-empty subsets of ms.
	union := new(big.Int)
	for mask := 1; mask < 1<<uint(len(ms)); mask++ {
		inter := tpos.Clone()
		bits := 0
		for i := 0; i < len(ms); i++ {
			if mask&(1<<uint(i)) != 0 {
				inter.Set.IntersectInPlace(ms[i].Set)
				bits++
			}
		}
		term := pow2(inter.Size())
		if bits%2 == 1 {
			union.Add(union, term)
		} else {
			union.Sub(union, term)
		}
	}
	return total.Sub(total, union)
}

func pow2(n int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(n))
}

// Halving asks the informative tuple whose answer splits the consistent
// predicate space most evenly (minimizing the worst-case remaining
// |C(S)|). Fallback (default L1S) handles the rare states where counting
// is infeasible.
type Halving struct {
	// Fallback is consulted when inclusion–exclusion exceeds maxIETerms;
	// nil means Lookahead{K: 1}.
	Fallback inference.Strategy
}

// Name implements Strategy.
func (h Halving) Name() string { return "HALVE" }

// Next implements Strategy.
func (h Halving) Next(e *inference.Engine) int {
	inf := e.InformativeClasses()
	if len(inf) == 0 {
		return -1
	}
	tpos := e.TPos()
	negs := e.Negatives()

	bestIdx := -1
	var bestImbalance *big.Int
	for _, ci := range inf {
		theta := e.Classes()[ci].Theta
		// Consistent predicates selecting the tuple: subsets of tpos ∩ θ
		// avoiding the same negatives.
		posCount := CountConsistent(tpos.Intersect(theta), negs)
		if posCount == nil {
			break
		}
		// Consistent predicates rejecting it: add θ as a negative.
		negCount := CountConsistent(tpos, append(append([]predicate.Pred(nil), negs...), theta))
		if negCount == nil {
			break
		}
		imbalance := new(big.Int).Sub(posCount, negCount)
		imbalance.Abs(imbalance)
		if bestIdx == -1 || imbalance.Cmp(bestImbalance) < 0 {
			bestIdx = ci
			bestImbalance = imbalance
		}
	}
	if bestIdx >= 0 {
		return bestIdx
	}
	fb := h.Fallback
	if fb == nil {
		fb = Lookahead{K: 1}
	}
	return fb.Next(e)
}

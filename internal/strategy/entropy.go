package strategy

import (
	"math"
	"sort"

	"repro/internal/inference"
	"repro/internal/predicate"
)

// Inf is the entropy value meaning "labeling this tuple ends the
// interaction regardless of further answers" (the (∞,∞) of Algorithm 5).
const Inf int64 = math.MaxInt64

// Entropy is the pair (min(u+,u−), max(u+,u−)) of Section 4.4: the
// guaranteed and optimistic number of tuples that become uninformative when
// the tuple is labeled.
type Entropy struct {
	Min, Max int64
}

// Dominates reports the paper's domination order: e dominates o iff both
// components are ≥.
func (e Entropy) Dominates(o Entropy) bool {
	return e.Min >= o.Min && e.Max >= o.Max
}

// Skyline returns the entropies not dominated by a different entropy value
// in E (duplicates collapse to one representative), ordered by descending
// Min. Sort-then-sweep: after ordering by (Min desc, Max desc), an entry
// survives iff its Max strictly exceeds every earlier entry's — any earlier
// entry has Min ≥ e.Min, so Max ≤ the running maximum means e is dominated
// (or a duplicate of the entry realizing it). O(n log n) instead of the
// former all-pairs O(n²) scan; skyline_test.go checks it differentially
// against that implementation.
func Skyline(E []Entropy) []Entropy {
	if len(E) == 0 {
		return nil
	}
	sorted := make([]Entropy, len(E))
	copy(sorted, E)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Min != sorted[b].Min {
			return sorted[a].Min > sorted[b].Min
		}
		return sorted[a].Max > sorted[b].Max
	})
	out := sorted[:0]
	bestMax := int64(-1)
	for _, e := range sorted {
		if e.Max > bestMax {
			out = append(out, e)
			bestMax = e.Max
		}
	}
	return out
}

// selectEntropy implements the choice of Algorithms 4 and 6: compute
// m = max{min(e) | e ∈ E}, then return the entropy of the skyline whose Min
// is m — which among entries with Min = m is the one with the largest Max.
func selectEntropy(E []Entropy) Entropy {
	best := Entropy{Min: -1, Max: -1}
	for _, e := range E {
		if e.Min > best.Min || (e.Min == best.Min && e.Max > best.Max) {
			best = e
		}
	}
	return best
}

// selectBestPosition applies the same selection over per-candidate
// entropies and returns the winning class index: positions[i] is a baseInf
// position with entropy ents[i]. positions arrives in class order (the
// beam re-sorts after scoring, see beamPositions), so the first evaluated
// class wins ties — the serial tie-breaking rule, which is what keeps
// parallel evaluation bit-identical to serial runs. Returns -1 for an
// empty candidate set.
func selectBestPosition(baseInf, positions []int, ents []Entropy) int {
	bestIdx := -1
	best := Entropy{Min: -1, Max: -1}
	for i, pos := range positions {
		if ents[i].Min > best.Min || (ents[i].Min == best.Min && ents[i].Max > best.Max) {
			best = ents[i]
			bestIdx = baseInf[pos]
		}
	}
	return bestIdx
}

// look carries the per-decision context shared by the lookahead
// computations: the engine, the classes informative w.r.t. the *base*
// sample (all Uninf differences in Algorithm 5 are taken against the base
// sample S), and the counting unit.
type look struct {
	e *inference.Engine
	// baseInf: informative class indexes w.r.t. the engine's sample.
	baseInf []int
	// countClasses switches the counting unit from tuples (the paper's, via
	// class cardinalities) to distinct classes; see DESIGN.md ablations.
	countClasses bool

	// Word-level fast path (entropy_fast.go), used when Ω fits in 64 bits.
	fast    bool
	tposW   uint64
	negsW   []uint64
	thetasW []uint64 // per baseInf position
	countsW []int64  // per baseInf position, shared with the arena path

	// Flat-arena general path (entropy_general.go), used for any Ω when the
	// fast path does not apply: predicates are W-word spans in []uint64
	// arenas and all set operations run in place.
	gen     bool
	gW      int      // words per predicate
	gtpos   []uint64 // base T(S+), W words
	gthetas []uint64 // per baseInf position, W words each
	gnegs   []uint64 // base negatives, W words each
	gnegN   int
}

// state is a hypothetical extension of the base sample: the updated T(S+),
// the extended negative list, and which classes the extension labeled.
type state struct {
	tpos  predicate.Pred
	negs  []predicate.Pred
	newly []int
}

func (s state) withPositive(theta predicate.Pred, ci int) state {
	return state{
		tpos:  s.tpos.Intersect(theta),
		negs:  s.negs,
		newly: append(append([]int(nil), s.newly...), ci),
	}
}

func (s state) withNegative(theta predicate.Pred, ci int) state {
	negs := make([]predicate.Pred, len(s.negs), len(s.negs)+1)
	copy(negs, s.negs)
	return state{
		tpos:  s.tpos,
		negs:  append(negs, theta),
		newly: append(append([]int(nil), s.newly...), ci),
	}
}

func (s state) labeled(ci int) bool {
	for _, x := range s.newly {
		if x == ci {
			return true
		}
	}
	return false
}

// base returns the lookahead context for the engine's current sample.
func newLook(e *inference.Engine, countClasses bool) *look {
	return &look{e: e, baseInf: e.InformativeClasses(), countClasses: countClasses}
}

func (l *look) baseState() state {
	return state{tpos: l.e.TPos(), negs: l.e.Negatives()}
}

// delta computes u = |Uninf(S_ext) \ Uninf(S_base)| for the hypothetical
// state: the number of tuples, informative under the base sample, that the
// extension makes uninformative. Newly labeled tuples themselves are not
// counted (the paper's Figure 5 counts 11, not 12, for the ∅ tuple), but
// their class twins are.
func (l *look) delta(s state) int64 {
	var sum int64
	for _, ci := range l.baseInf {
		c := l.e.Classes()[ci]
		w := c.Count
		if l.countClasses {
			w = 1
		}
		if s.labeled(ci) {
			if !l.countClasses {
				sum += w - 1
			}
			continue
		}
		if inference.CertainUnder(s.tpos, s.negs, c.Theta) {
			sum += w
		}
	}
	return sum
}

// informativeUnder returns the base-informative classes still informative
// under the hypothetical state.
func (l *look) informativeUnder(s state) []int {
	var out []int
	for _, ci := range l.baseInf {
		if s.labeled(ci) {
			continue
		}
		if !inference.CertainUnder(s.tpos, s.negs, l.e.Classes()[ci].Theta) {
			out = append(out, ci)
		}
	}
	return out
}

// entropy1 is the entropy of Section 4.4 for class ci, computed in the
// hypothetical state s (s is the base state for plain L1S; for deeper
// lookahead the u counts remain differences against the base sample).
func (l *look) entropy1(ci int, s state) Entropy {
	theta := l.e.Classes()[ci].Theta
	up := l.delta(s.withPositive(theta, ci))
	un := l.delta(s.withNegative(theta, ci))
	if up > un {
		up, un = un, up
	}
	return Entropy{Min: up, Max: un}
}

// entropyK generalizes Algorithm 5 to depth k: the guaranteed information
// from labeling class ci and then k−1 further tuples, pessimistic over the
// user's answers and optimistic over our own future choices. entropyK with
// k = 2 is exactly the paper's entropy² (Algorithm 5); k = 1 is entropy.
func (l *look) entropyK(ci int, s state, k int) Entropy {
	if k <= 1 {
		return l.entropy1(ci, s)
	}
	theta := l.e.Classes()[ci].Theta
	branch := func(ext state) Entropy {
		rest := l.informativeUnder(ext)
		if len(rest) == 0 {
			// No informative tuple left: interaction ends (lines 3–5).
			return Entropy{Min: Inf, Max: Inf}
		}
		E := make([]Entropy, 0, len(rest))
		for _, cj := range rest {
			E = append(E, l.entropyK(cj, ext, k-1))
		}
		return selectEntropy(E)
	}
	ep := branch(s.withPositive(theta, ci))
	en := branch(s.withNegative(theta, ci))
	// Lines 13–14: keep the pessimistic branch (smaller Min); on a tie the
	// smaller Max, staying conservative and deterministic.
	if en.Min < ep.Min || (en.Min == ep.Min && en.Max < ep.Max) {
		return en
	}
	return ep
}

package strategy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/inference"
	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/sample"
)

// TestFastPathMatchesGeneralFigure5: the word-level fast path reproduces
// the Figure 5 entropies exactly.
func TestFastPathMatchesGeneralFigure5(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	l := Lookahead{K: 1}
	fast := l.Entropies(e)        // dispatches to fast path (|Ω| = 6)
	slow := l.entropiesGeneral(e) // forced bitset path
	if len(fast) != len(slow) {
		t.Fatalf("entry counts differ: %d vs %d", len(fast), len(slow))
	}
	for ci, fe := range fast {
		if se, ok := slow[ci]; !ok || se != fe {
			t.Errorf("class %d: fast %v, general %v", ci, fe, slow[ci])
		}
	}
}

// TestQuickFastPathMatchesGeneral: on random instances and partial samples,
// fast and general entropies agree for k = 1 and k = 2, in both counting
// modes.
func TestQuickFastPathMatchesGeneral(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		for _, k := range []int{1, 2} {
			for _, countClasses := range []bool{false, true} {
				e := inference.New(inst)
				// Random partial labeling, honest w.r.t. a random goal.
				goal := randPred(r, e.U)
				for q := 0; q < r.Intn(3); q++ {
					inf := e.InformativeClasses()
					if len(inf) == 0 {
						break
					}
					ci := inf[r.Intn(len(inf))]
					c := e.Classes()[ci]
					l := sample.Negative
					if goal.Selects(e.U, inst.R.Tuples[c.RI], inst.P.Tuples[c.PI]) {
						l = sample.Positive
					}
					if err := e.Label(ci, l); err != nil {
						return false
					}
				}
				l := Lookahead{K: k, CountClasses: countClasses}
				fast := l.Entropies(e)
				slow := l.entropiesGeneral(e)
				if len(fast) != len(slow) {
					return false
				}
				for ci, fe := range fast {
					if slow[ci] != fe {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// labelHonestly labels up to n random informative classes according to the
// goal and reports how many were labeled.
func labelHonestly(r *rand.Rand, e *inference.Engine, goal predicate.Pred, n int) int {
	labeled := 0
	for q := 0; q < n; q++ {
		inf := e.InformativeClasses()
		if len(inf) == 0 {
			break
		}
		ci := inf[r.Intn(len(inf))]
		c := e.Classes()[ci]
		l := sample.Negative
		if goal.Selects(e.U, e.Inst.R.Tuples[c.RI], e.Inst.P.Tuples[c.PI]) {
			l = sample.Positive
		}
		if err := e.Label(ci, l); err != nil {
			return -1
		}
		labeled++
	}
	return labeled
}

// TestQuickFDeltaMatchesDelta: the word-level fdelta agrees exactly with
// the bitset delta on random instances with labeled classes, under both
// counting modes, along random mirrored hypothetical extension chains —
// the unit underneath every entropy computation.
func TestQuickFDeltaMatchesDelta(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		for _, countClasses := range []bool{false, true} {
			e := inference.New(inst)
			if labelHonestly(r, e, randPred(r, e.U), r.Intn(5)) < 0 {
				return false
			}
			lk := newLook(e, countClasses)
			if len(lk.baseInf) == 0 {
				continue
			}
			if !lk.fastReady() {
				return false // randInstance universes always fit a word
			}
			// Mirror a random extension chain on both representations.
			gs := lk.baseState()
			fs := lk.fbase()
			chain := r.Perm(len(lk.baseInf))
			if len(chain) > 3 {
				chain = chain[:3]
			}
			for _, pos := range chain {
				ci := lk.baseInf[pos]
				theta := e.Classes()[ci].Theta
				if r.Intn(2) == 0 {
					gs = gs.withPositive(theta, ci)
					fs = fs.withPositive(lk.thetasW[pos], pos)
				} else {
					gs = gs.withNegative(theta, ci)
					fs = fs.withNegative(lk.thetasW[pos], pos)
				}
				if lk.delta(gs) != lk.fdelta(fs) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickEntropiesMatchWithLabels: full Entropies vs entropiesGeneral
// agreement under CountClasses once several classes are labeled — the
// labeled-class bookkeeping is where the two paths differ structurally
// (class-index newly lists vs position chains).
func TestQuickEntropiesMatchWithLabels(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		for _, k := range []int{1, 2} {
			for _, countClasses := range []bool{false, true} {
				e := inference.New(inst)
				if labelHonestly(r, e, randPred(r, e.U), 2+r.Intn(4)) < 0 {
					return false
				}
				l := Lookahead{K: k, CountClasses: countClasses}
				fast := l.Entropies(e)
				slow := l.entropiesGeneral(e)
				if len(fast) != len(slow) {
					return false
				}
				for ci, fe := range fast {
					if slow[ci] != fe {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

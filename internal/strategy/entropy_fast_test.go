package strategy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/inference"
	"repro/internal/paperdata"
	"repro/internal/sample"
)

// TestFastPathMatchesGeneralFigure5: the word-level fast path reproduces
// the Figure 5 entropies exactly.
func TestFastPathMatchesGeneralFigure5(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	l := Lookahead{K: 1}
	fast := l.Entropies(e)        // dispatches to fast path (|Ω| = 6)
	slow := l.entropiesGeneral(e) // forced bitset path
	if len(fast) != len(slow) {
		t.Fatalf("entry counts differ: %d vs %d", len(fast), len(slow))
	}
	for ci, fe := range fast {
		if se, ok := slow[ci]; !ok || se != fe {
			t.Errorf("class %d: fast %v, general %v", ci, fe, slow[ci])
		}
	}
}

// TestQuickFastPathMatchesGeneral: on random instances and partial samples,
// fast and general entropies agree for k = 1 and k = 2, in both counting
// modes.
func TestQuickFastPathMatchesGeneral(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		for _, k := range []int{1, 2} {
			for _, countClasses := range []bool{false, true} {
				e := inference.New(inst)
				// Random partial labeling, honest w.r.t. a random goal.
				goal := randPred(r, e.U)
				for q := 0; q < r.Intn(3); q++ {
					inf := e.InformativeClasses()
					if len(inf) == 0 {
						break
					}
					ci := inf[r.Intn(len(inf))]
					c := e.Classes()[ci]
					l := sample.Negative
					if goal.Selects(e.U, inst.R.Tuples[c.RI], inst.P.Tuples[c.PI]) {
						l = sample.Positive
					}
					if err := e.Label(ci, l); err != nil {
						return false
					}
				}
				l := Lookahead{K: k, CountClasses: countClasses}
				fast := l.Entropies(e)
				slow := l.entropiesGeneral(e)
				if len(fast) != len(slow) {
					return false
				}
				for ci, fe := range fast {
					if slow[ci] != fe {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

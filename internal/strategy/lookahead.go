package strategy

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/inference"
)

// Lookahead is the k-steps lookahead skyline strategy LkS (Section 4.4):
// L1S for K = 1 (Algorithm 4), L2S for K = 2 (Algorithm 6). It asks about
// an informative tuple whose entropy^K — the guaranteed number of tuples
// that labeling it (and K−1 follow-ups) makes uninformative — is maximal
// under the skyline selection rule.
type Lookahead struct {
	// K is the lookahead depth; values < 1 behave as 1.
	K int
	// CountClasses counts distinct T-classes made uninformative instead of
	// tuples. The paper counts tuples; this is an ablation knob.
	CountClasses bool
	// MaxCandidates, when positive and K ≥ 2, restricts the expensive
	// entropy^K evaluation to the MaxCandidates informative classes with
	// the best one-step entropy (a beam). The paper evaluates every
	// informative tuple — set 0 (the default) for the exact algorithm; the
	// beam is an engineering knob for instances with thousands of classes,
	// where exact L2S is Θ(K³) per question. The beam applies on both the
	// word-level fast path and the general bitset path.
	MaxCandidates int
	// Workers fans the per-candidate entropy^K evaluations across that many
	// goroutines: 0 and 1 evaluate serially, negative uses one worker per
	// CPU. The parallel reduction applies the exact serial selection rule
	// (max Min, tie-break max Max, first class in class order wins), so the
	// chosen questions — and hence interaction counts — are bit-identical
	// for every Workers value.
	Workers int

	// evalCount, when non-nil, is atomically incremented by the number of
	// candidates whose entropy^K NextCtx evaluates after beaming; test
	// instrumentation for the beam and the worker pool.
	evalCount *atomic.Int64
}

// Name implements Strategy.
func (l Lookahead) Name() string {
	k := l.K
	if k < 1 {
		k = 1
	}
	return fmt.Sprintf("L%dS", k)
}

// Next implements Strategy.
func (l Lookahead) Next(e *inference.Engine) int {
	ci, _ := l.NextCtx(context.Background(), e)
	return ci
}

// NextCtx implements inference.ContextStrategy: identical selection to
// Next, but cancellation is observed between candidate evaluations — each
// one costs Θ(K²) certainty tests at depth 2, so this is the granularity
// at which aborting an expensive L2S decision is worthwhile. With
// Workers > 1 the candidates are evaluated concurrently; cancellation is
// still observed per candidate.
func (l Lookahead) NextCtx(ctx context.Context, e *inference.Engine) (int, error) {
	k := l.K
	if k < 1 {
		k = 1
	}
	lk := newLook(e, l.CountClasses)
	if len(lk.baseInf) == 0 {
		return -1, nil
	}
	workers := l.Workers
	var positions []int
	var ents []Entropy
	if k <= maxFastDepth {
		// Allocation-free paths: word-level when Ω fits 64 bits, flat-arena
		// otherwise. root evaluates one candidate at depth kk on a scratch.
		var root func(pos, kk int, sc *lookScratch) Entropy
		if lk.fastReady() {
			base := lk.fbase()
			root = func(pos, kk int, sc *lookScratch) Entropy {
				return lk.fentropyKRoot(pos, base, kk, sc)
			}
		} else {
			lk.generalReady()
			root = func(pos, kk int, sc *lookScratch) Entropy {
				return lk.gentropyKRoot(pos, kk, sc)
			}
		}
		var scPool sync.Pool
		getScratch := func() *lookScratch {
			if v := scPool.Get(); v != nil {
				return v.(*lookScratch)
			}
			return lk.newScratch(k)
		}
		sc0 := getScratch()
		positions = lk.beamPositions(k, l.MaxCandidates, func(pos int) Entropy {
			return root(pos, 1, sc0)
		})
		scPool.Put(sc0)
		ents = make([]Entropy, len(positions))
		if err := forEachCandidate(ctx, workers, len(positions), func(i int) {
			sc := getScratch()
			ents[i] = root(positions[i], k, sc)
			scPool.Put(sc)
		}); err != nil {
			return -1, err
		}
	} else {
		// Legacy slice-based path for depths beyond the inline chains (the
		// cost is exponential in K anyway, so these runs are tiny).
		base := lk.baseState()
		positions = lk.beamPositions(k, l.MaxCandidates, func(pos int) Entropy {
			return lk.entropy1(lk.baseInf[pos], base)
		})
		ents = make([]Entropy, len(positions))
		if err := forEachCandidate(ctx, workers, len(positions), func(i int) {
			ents[i] = lk.entropyK(lk.baseInf[positions[i]], base, k)
		}); err != nil {
			return -1, err
		}
	}
	if l.evalCount != nil {
		l.evalCount.Add(int64(len(positions)))
	}
	return selectBestPosition(lk.baseInf, positions, ents), nil
}

// beamPositions returns the baseInf positions to evaluate: all of them, or
// — when a beam is configured and the lookahead is deep — the
// MaxCandidates best by one-step entropy (stable order, so runs stay
// deterministic). score computes the one-step entropy of a baseInf
// position, letting the fast and general paths share the beam.
func (lk *look) beamPositions(k, maxCandidates int, score func(pos int) Entropy) []int {
	positions := make([]int, len(lk.baseInf))
	for i := range positions {
		positions[i] = i
	}
	if maxCandidates <= 0 || k < 2 || len(positions) <= maxCandidates {
		return positions
	}
	type scored struct {
		idx int
		ent Entropy
	}
	ss := make([]scored, len(positions))
	for i, idx := range positions {
		ss[i] = scored{idx: idx, ent: score(idx)}
	}
	sort.SliceStable(ss, func(a, b int) bool {
		if ss[a].ent.Min != ss[b].ent.Min {
			return ss[a].ent.Min > ss[b].ent.Min
		}
		return ss[a].ent.Max > ss[b].ent.Max
	})
	out := make([]int, maxCandidates)
	for i := 0; i < maxCandidates; i++ {
		out[i] = ss[i].idx
	}
	sort.Ints(out) // restore class order for deterministic tie-breaking
	return out
}

// Entropies exposes the entropy^K of every informative class for
// diagnostics and tests (e.g. reproducing Figure 5). The map is keyed by
// class index.
func (l Lookahead) Entropies(e *inference.Engine) map[int]Entropy {
	k := l.K
	if k < 1 {
		k = 1
	}
	lk := newLook(e, l.CountClasses)
	out := make(map[int]Entropy, len(lk.baseInf))
	if k <= maxFastDepth {
		if lk.fastReady() {
			base := lk.fbase()
			sc := lk.newScratch(k)
			for idx, ci := range lk.baseInf {
				out[ci] = lk.fentropyKRoot(idx, base, k, sc)
			}
			return out
		}
		lk.generalReady()
		sc := lk.newScratch(k)
		for idx, ci := range lk.baseInf {
			out[ci] = lk.gentropyKRoot(idx, k, sc)
		}
		return out
	}
	base := lk.baseState()
	for _, ci := range lk.baseInf {
		out[ci] = lk.entropyK(ci, base, k)
	}
	return out
}

// entropiesGeneral computes entropies with the general bitset path even
// when the fast path is available; used by tests to cross-check the two.
func (l Lookahead) entropiesGeneral(e *inference.Engine) map[int]Entropy {
	k := l.K
	if k < 1 {
		k = 1
	}
	lk := newLook(e, l.CountClasses)
	base := lk.baseState()
	out := make(map[int]Entropy, len(lk.baseInf))
	for _, ci := range lk.baseInf {
		out[ci] = lk.entropyK(ci, base, k)
	}
	return out
}

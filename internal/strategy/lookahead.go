package strategy

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/inference"
)

// Lookahead is the k-steps lookahead skyline strategy LkS (Section 4.4):
// L1S for K = 1 (Algorithm 4), L2S for K = 2 (Algorithm 6). It asks about
// an informative tuple whose entropy^K — the guaranteed number of tuples
// that labeling it (and K−1 follow-ups) makes uninformative — is maximal
// under the skyline selection rule.
type Lookahead struct {
	// K is the lookahead depth; values < 1 behave as 1.
	K int
	// CountClasses counts distinct T-classes made uninformative instead of
	// tuples. The paper counts tuples; this is an ablation knob.
	CountClasses bool
	// MaxCandidates, when positive and K ≥ 2, restricts the expensive
	// entropy^K evaluation to the MaxCandidates informative classes with
	// the best one-step entropy (a beam). The paper evaluates every
	// informative tuple — set 0 (the default) for the exact algorithm; the
	// beam is an engineering knob for instances with thousands of classes,
	// where exact L2S is Θ(K³) per question.
	MaxCandidates int
}

// Name implements Strategy.
func (l Lookahead) Name() string {
	k := l.K
	if k < 1 {
		k = 1
	}
	return fmt.Sprintf("L%dS", k)
}

// Next implements Strategy.
func (l Lookahead) Next(e *inference.Engine) int {
	ci, _ := l.NextCtx(context.Background(), e)
	return ci
}

// NextCtx implements inference.ContextStrategy: identical selection to
// Next, but cancellation is observed between candidate evaluations — each
// one costs Θ(K²) certainty tests at depth 2, so this is the granularity
// at which aborting an expensive L2S decision is worthwhile.
func (l Lookahead) NextCtx(ctx context.Context, e *inference.Engine) (int, error) {
	k := l.K
	if k < 1 {
		k = 1
	}
	lk := newLook(e, l.CountClasses)
	if len(lk.baseInf) == 0 {
		return -1, nil
	}
	// Compute entropy^K per informative class, then apply the selection of
	// Algorithms 4/6: maximize Min, tie-break on Max; first class in class
	// order wins ties, keeping runs deterministic.
	bestIdx := -1
	best := Entropy{Min: -1, Max: -1}
	if lk.fastReady() {
		base := lk.fbase()
		positions := lk.beamPositions(base, k, l.MaxCandidates)
		for _, idx := range positions {
			if err := ctx.Err(); err != nil {
				return -1, err
			}
			ent := lk.fentropyK(idx, base, k)
			if ent.Min > best.Min || (ent.Min == best.Min && ent.Max > best.Max) {
				best = ent
				bestIdx = lk.baseInf[idx]
			}
		}
		return bestIdx, nil
	}
	base := lk.baseState()
	for _, ci := range lk.baseInf {
		if err := ctx.Err(); err != nil {
			return -1, err
		}
		ent := lk.entropyK(ci, base, k)
		if ent.Min > best.Min || (ent.Min == best.Min && ent.Max > best.Max) {
			best = ent
			bestIdx = ci
		}
	}
	return bestIdx, nil
}

// beamPositions returns the baseInf positions to evaluate: all of them, or
// — when a beam is configured and the lookahead is deep — the
// MaxCandidates best by one-step entropy (stable order, so runs stay
// deterministic).
func (lk *look) beamPositions(base fstate, k, maxCandidates int) []int {
	positions := make([]int, len(lk.baseInf))
	for i := range positions {
		positions[i] = i
	}
	if maxCandidates <= 0 || k < 2 || len(positions) <= maxCandidates {
		return positions
	}
	type scored struct {
		idx int
		ent Entropy
	}
	ss := make([]scored, len(positions))
	for i, idx := range positions {
		ss[i] = scored{idx: idx, ent: lk.fentropy1(idx, base)}
	}
	sort.SliceStable(ss, func(a, b int) bool {
		if ss[a].ent.Min != ss[b].ent.Min {
			return ss[a].ent.Min > ss[b].ent.Min
		}
		return ss[a].ent.Max > ss[b].ent.Max
	})
	out := make([]int, maxCandidates)
	for i := 0; i < maxCandidates; i++ {
		out[i] = ss[i].idx
	}
	sort.Ints(out) // restore class order for deterministic tie-breaking
	return out
}

// Entropies exposes the entropy^K of every informative class for
// diagnostics and tests (e.g. reproducing Figure 5). The map is keyed by
// class index.
func (l Lookahead) Entropies(e *inference.Engine) map[int]Entropy {
	k := l.K
	if k < 1 {
		k = 1
	}
	lk := newLook(e, l.CountClasses)
	out := make(map[int]Entropy, len(lk.baseInf))
	if lk.fastReady() {
		base := lk.fbase()
		for idx, ci := range lk.baseInf {
			out[ci] = lk.fentropyK(idx, base, k)
		}
		return out
	}
	base := lk.baseState()
	for _, ci := range lk.baseInf {
		out[ci] = lk.entropyK(ci, base, k)
	}
	return out
}

// entropiesGeneral computes entropies with the general bitset path even
// when the fast path is available; used by tests to cross-check the two.
func (l Lookahead) entropiesGeneral(e *inference.Engine) map[int]Entropy {
	k := l.K
	if k < 1 {
		k = 1
	}
	lk := newLook(e, l.CountClasses)
	base := lk.baseState()
	out := make(map[int]Entropy, len(lk.baseInf))
	for _, ci := range lk.baseInf {
		out[ci] = lk.entropyK(ci, base, k)
	}
	return out
}

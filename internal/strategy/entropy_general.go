package strategy

// Arena-based general path for the lookahead strategies: the any-size-Ω
// counterpart of entropy_fast.go with the same allocation discipline. The
// 3SAT reduction of Theorem 6.1 builds universes of (n+1)(2n+1) pairs and
// TPC-H-extended schemas exceed 64 attribute pairs, so predicates span W =
// ⌈|Ω|/64⌉ machine words; this path lays them out in flat []uint64 arenas
// snapshotted per decision (per-class thetas, base T(S+), base negatives)
// and evaluates hypothetical extension chains with in-place span operations
// (bitset.IntersectWords / bitset.SubsetWords):
//
//   - hypothetical T(S+) values live in k per-level W-word slots of the
//     candidate's lookScratch, written by positive extensions;
//   - hypothetical negatives are just baseInf positions (their thetas are
//     already in the arena), so negative extensions write nothing at all;
//   - the newly-labeled chain is the same inline ≤ maxFastDepth array as
//     the fast path.
//
// Steady-state candidate evaluation therefore allocates nothing, and the
// 64-pair cliff of the former slice-based path (fresh Intersect per
// certainty test, copied slices per extension) is gone. entropy.go keeps
// the slice-based implementation as the k > maxFastDepth fallback and as
// the differential-test reference; entropy_general_test.go asserts exact
// agreement.

import "repro/internal/bitset"

// generalReady fills the flat-arena snapshot of the general path (any
// universe size). It always succeeds; the return value mirrors fastReady
// for symmetric dispatch.
func (l *look) generalReady() bool {
	W := bitset.WordsFor(l.e.U.Size())
	l.gW = W
	l.gtpos = make([]uint64, W)
	l.e.TPos().Set.CopyWords(l.gtpos)
	// Only ⊆-maximal negatives matter for Lemma 3.4 (inter ⊆ n implies
	// inter ⊆ n' for any n ⊆ n'), so dominated and duplicate entries are
	// dropped from the arena: identical certainty booleans, shorter loop.
	negs := l.e.Negatives()
	l.gnegs = make([]uint64, 0, len(negs)*W)
	span := make([]uint64, W)
	for i, n := range negs {
		n.Set.CopyWords(span)
		dominated := false
		for j, m := range negs {
			if i == j {
				continue
			}
			if n.Set.ProperSubsetOf(m.Set) || (n.Set.Equal(m.Set) && j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			l.gnegs = append(l.gnegs, span...)
		}
	}
	if W > 0 {
		l.gnegN = len(l.gnegs) / W
	}
	cs := l.e.Classes()
	l.gthetas = make([]uint64, len(l.baseInf)*W)
	l.countsW = make([]int64, len(l.baseInf))
	for idx, ci := range l.baseInf {
		cs[ci].Theta.Set.CopyWords(l.gthetas[idx*W : (idx+1)*W])
		l.countsW[idx] = cs[ci].Count
	}
	l.gen = true
	return true
}

// gtheta returns the arena span of baseInf position pos's theta.
func (l *look) gtheta(pos int) []uint64 {
	return l.gthetas[pos*l.gW : (pos+1)*l.gW]
}

// gstate is the hypothetical-extension state of the arena path. Like
// fstate, newly holds baseInf positions labeled along the chain; tpos
// aliases either the base arena or a per-level scratch slot; extNegs lists
// the positions whose thetas act as hypothetical negatives — no words are
// copied for negative extensions. The struct is a value: extensions copy
// it on the stack and never allocate.
type gstate struct {
	tpos      []uint64
	newlyMask uint64
	newly     [maxFastDepth]int32
	nNew      int8
	extNegs   [maxFastDepth]int32
	nExt      int8
}

func (s *gstate) labeled(idx int) bool {
	if s.newlyMask&(1<<(uint(idx)&63)) == 0 {
		return false
	}
	for i := int8(0); i < s.nNew; i++ {
		if s.newly[i] == int32(idx) {
			return true
		}
	}
	return false
}

func (s gstate) withNewly(idx int) gstate {
	s.newlyMask |= 1 << (uint(idx) & 63)
	s.newly[s.nNew] = int32(idx)
	s.nNew++
	return s
}

func (l *look) gbase() gstate { return gstate{tpos: l.gtpos} }

// gcertain is CertainUnder on arena spans: Lemma 3.3 as a span subset
// test, Lemma 3.4 with the intersection written once into the scratch
// buffer and tested against the base negatives then the chain's
// hypothetical ones. The word loops are written out inline — this is the
// innermost test of the Θ(K³) lookahead, run millions of times per
// question, and call overhead would dominate the two-or-three-word spans
// of real universes.
func (l *look) gcertain(s *gstate, theta []uint64, sc *lookScratch) bool {
	if len(s.tpos) == 2 {
		// Two words cover 65–128 pairs — TPC-H-extended scale and the whole
		// former cliff zone — so this fully unrolled variant is the common
		// general-path case.
		return l.gcertain2(s, theta)
	}
	tpos := s.tpos
	theta = theta[:len(tpos)]
	// One fused pass: build the Lemma 3.4 intersection and detect the
	// Lemma 3.3 subset (inter == tpos) along the way.
	inter := sc.inter[:len(tpos)]
	sub := true
	for i, w := range tpos {
		v := w & theta[i]
		inter[i] = v
		if v != w {
			sub = false
		}
	}
	if sub { // Lemma 3.3: tpos ⊆ theta
		return true
	}
	W := len(inter)
	negs := l.gnegs
	for off := 0; off < len(negs); off += W { // Lemma 3.4: inter ⊆ some negative
		n := negs[off : off+W]
		ok := true
		for i, w := range inter {
			if w&^n[i] != 0 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	for i := int8(0); i < s.nExt; i++ {
		off := int(s.extNegs[i]) * W
		th := l.gthetas[off : off+W]
		ok := true
		for j, w := range inter {
			if w&^th[j] != 0 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// gcertain2 is gcertain for exactly two-word predicates, with every span
// held in registers.
func (l *look) gcertain2(s *gstate, theta []uint64) bool {
	t0, t1 := s.tpos[0], s.tpos[1]
	i0, i1 := t0&theta[0], t1&theta[1]
	if i0 == t0 && i1 == t1 { // Lemma 3.3
		return true
	}
	negs := l.gnegs
	for off := 0; off+1 < len(negs); off += 2 { // Lemma 3.4
		if i0&^negs[off] == 0 && i1&^negs[off+1] == 0 {
			return true
		}
	}
	for i := int8(0); i < s.nExt; i++ {
		off := int(s.extNegs[i]) * 2
		if i0&^l.gthetas[off] == 0 && i1&^l.gthetas[off+1] == 0 {
			return true
		}
	}
	return false
}

// gdelta mirrors look.delta on the arena state.
func (l *look) gdelta(s *gstate, sc *lookScratch) int64 {
	if l.gW == 2 {
		return l.gdelta2(s)
	}
	var sum int64
	for idx := range l.countsW {
		w := l.countsW[idx]
		if l.countClasses {
			w = 1
		}
		if s.labeled(idx) {
			if !l.countClasses {
				sum += w - 1
			}
			continue
		}
		if l.gcertain(s, l.gtheta(idx), sc) {
			sum += w
		}
	}
	return sum
}

// gdelta2 is gdelta for two-word predicates with the certainty test
// inlined into the loop — this is the innermost Θ(K) sweep of the Θ(K³)
// lookahead, so the per-class call and slice overhead is worth removing.
func (l *look) gdelta2(s *gstate) int64 {
	var sum int64
	t0, t1 := s.tpos[0], s.tpos[1]
	thetas := l.gthetas
	negs := l.gnegs
	for idx, w := range l.countsW {
		if l.countClasses {
			w = 1
		}
		if s.labeled(idx) {
			if !l.countClasses {
				sum += w - 1
			}
			continue
		}
		i0, i1 := t0&thetas[2*idx], t1&thetas[2*idx+1]
		certain := i0 == t0 && i1 == t1 // Lemma 3.3
		if !certain {
			for off := 0; off+1 < len(negs); off += 2 { // Lemma 3.4
				if i0&^negs[off] == 0 && i1&^negs[off+1] == 0 {
					certain = true
					break
				}
			}
		}
		if !certain {
			for i := int8(0); i < s.nExt; i++ {
				o := int(s.extNegs[i]) * 2
				if i0&^thetas[o] == 0 && i1&^thetas[o+1] == 0 {
					certain = true
					break
				}
			}
		}
		if certain {
			sum += w
		}
	}
	return sum
}

// ginformativeInto appends the baseInf positions still informative under s
// to buf (a per-level restBuf slot).
func (l *look) ginformativeInto(s *gstate, buf []int32, sc *lookScratch) []int32 {
	for idx := range l.countsW {
		if s.labeled(idx) {
			continue
		}
		if !l.gcertain(s, l.gtheta(idx), sc) {
			buf = append(buf, int32(idx))
		}
	}
	return buf
}

// gwithPositive intersects the chain's T(S+) with theta into the scratch
// slot of the current depth. Slot d is written only by the extension made
// from a depth-d state: ancestors occupy lower slots, and sibling branches
// run strictly one after the other, so reuse is safe — the same argument
// as the fast path's negative buffer.
func (l *look) gwithPositive(s gstate, idx int, sc *lookScratch) gstate {
	W := l.gW
	dst := sc.tpos[int(s.nNew)*W : (int(s.nNew)+1)*W]
	bitset.IntersectWords(dst, s.tpos, l.gtheta(idx))
	ext := s.withNewly(idx)
	ext.tpos = dst
	return ext
}

// gwithNegative records position idx as a hypothetical negative: its theta
// already lives in the arena, so the extension is pure chain bookkeeping.
func gwithNegative(s gstate, idx int) gstate {
	ext := s.withNewly(idx)
	ext.extNegs[ext.nExt] = int32(idx)
	ext.nExt++
	return ext
}

// gentropy1 mirrors look.entropy1 for baseInf position idx.
func (l *look) gentropy1(idx int, s gstate, sc *lookScratch) Entropy {
	extP := l.gwithPositive(s, idx, sc)
	up := l.gdelta(&extP, sc)
	extN := gwithNegative(s, idx)
	un := l.gdelta(&extN, sc)
	if up > un {
		up, un = un, up
	}
	return Entropy{Min: up, Max: un}
}

// gentropyKRoot evaluates candidate idx from the base state.
func (l *look) gentropyKRoot(idx, k int, sc *lookScratch) Entropy {
	return l.gentropyK(idx, l.gbase(), k, sc)
}

// gentropyK mirrors look.entropyK for baseInf position idx.
func (l *look) gentropyK(idx int, s gstate, k int, sc *lookScratch) Entropy {
	if k <= 1 {
		return l.gentropy1(idx, s, sc)
	}
	ep := l.gbranch(l.gwithPositive(s, idx, sc), k, sc)
	en := l.gbranch(gwithNegative(s, idx), k, sc)
	if en.Min < ep.Min || (en.Min == ep.Min && en.Max < ep.Max) {
		return en
	}
	return ep
}

// gbranch is one answer branch, folding selectEntropy's rule like fbranch.
func (l *look) gbranch(ext gstate, k int, sc *lookScratch) Entropy {
	rest := l.ginformativeInto(&ext, l.restBuf(sc, int(ext.nNew)), sc)
	if len(rest) == 0 {
		return Entropy{Min: Inf, Max: Inf}
	}
	best := Entropy{Min: -1, Max: -1}
	for _, j := range rest {
		e := l.gentropyK(int(j), ext, k-1, sc)
		if e.Min > best.Min || (e.Min == best.Min && e.Max > best.Max) {
			best = e
		}
	}
	return best
}

package strategy

import (
	"context"

	"repro/internal/pool"
)

// The per-candidate entropy^K evaluations of NextCtx are independent —
// each works on its own hypothetical extension of the base sample and only
// reads shared state — so they fan across cores with the per-call bounded
// fan-out of internal/pool. Selection stays bit-identical to the serial
// path because results land in per-candidate slots and the reduction runs
// serially in class order afterwards (see selectBestPosition).

// forEachCandidate runs eval(i) for every i in [0, n) on the worker pool;
// cancellation is observed per candidate. workers follows the shared
// convention: 0/1 serial, negative = one worker per CPU.
func forEachCandidate(ctx context.Context, workers, n int, eval func(i int)) error {
	return pool.ForEach(ctx, workers, n, eval)
}

package strategy

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/inference"
	"repro/internal/oracle"
	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/relation"
	"repro/internal/sample"
)

// classFor returns the engine class index whose Theta equals T(ri, pi).
func classFor(e *inference.Engine, ri, pi int) int {
	theta := predicate.T(e.U, e.Inst.R.Tuples[ri], e.Inst.P.Tuples[pi])
	for ci, c := range e.Classes() {
		if c.Theta.Equal(theta) {
			return ci
		}
	}
	return -1
}

func runWith(t *testing.T, strat inference.Strategy, goal predicate.Pred) inference.Result {
	t.Helper()
	inst := paperdata.Example21()
	e := inference.New(inst)
	orc := oracle.NewHonest(inst, e.U, goal)
	res, err := inference.Run(e, strat, orc, 2*len(e.Classes()))
	if err != nil {
		t.Fatalf("%s run: %v", strat.Name(), err)
	}
	// Sanity: instance equivalence.
	gj := predicate.Join(inst, e.U, goal)
	rj := predicate.Join(inst, e.U, res.Predicate)
	if len(gj) != len(rj) {
		t.Fatalf("%s: result %v not equivalent to goal %v", strat.Name(), res.Predicate, goal)
	}
	return res
}

func TestNames(t *testing.T) {
	if (BottomUp{}).Name() != "BU" {
		t.Error("BU name")
	}
	if NewTopDown().Name() != "TD" {
		t.Error("TD name")
	}
	if NewRandom(1).Name() != "RND" {
		t.Error("RND name")
	}
	if (Lookahead{K: 1}).Name() != "L1S" {
		t.Error("L1S name")
	}
	if (Lookahead{K: 2}).Name() != "L2S" {
		t.Error("L2S name")
	}
	if (Lookahead{}).Name() != "L1S" {
		t.Error("K=0 should behave as L1S")
	}
	if NewOptimal().Name() != "OPT" {
		t.Error("OPT name")
	}
}

// TestBUFirstAsksEmptyPredicate: Section 4.3 — BU first asks the tuple
// t0 = (t3,t1') corresponding to ∅; if positive, one interaction suffices;
// the strategy then proceeds with (t2,t1') for {(A1,B3)}.
func TestBUWalkthrough(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	bu := BottomUp{}
	first := bu.Next(e)
	if got := e.Classes()[first].Theta; !got.IsEmpty() {
		t.Fatalf("BU first pick has T = %v, want ∅", got)
	}
	// Goal ∅: one interaction.
	res := runWith(t, BottomUp{}, predicate.Empty())
	if res.Interactions != 1 {
		t.Errorf("BU on goal ∅: %d interactions, want 1", res.Interactions)
	}
	// Negative answer ⇒ next pick is the size-1 class {(A1,B3)}.
	if err := e.Label(first, sample.Negative); err != nil {
		t.Fatal(err)
	}
	second := bu.Next(e)
	want := predicate.FromPairs(e.U, [2]int{0, 2})
	if !e.Classes()[second].Theta.Equal(want) {
		t.Errorf("BU second pick = %v, want %v", e.Classes()[second].Theta, want)
	}
}

// TestBUWorstCaseLabelsEverything: with goal Ω (all answers negative), BU
// asks about every class — the drawback Section 4.3 points out.
func TestBUWorstCaseLabelsEverything(t *testing.T) {
	res := runWith(t, BottomUp{}, predicate.Pred{Set: predicate.Omega(predicate.NewUniverse(paperdata.Example21())).Set})
	if res.Interactions != 12 {
		t.Errorf("BU on goal Ω: %d interactions, want 12 (all classes)", res.Interactions)
	}
}

// TestTDWalkthrough: Section 4.3 — with an empty sample TD asks tuples
// corresponding to ⊆-maximal predicates.
func TestTDWalkthrough(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	td := NewTopDown()
	first := td.Next(e)
	theta := e.Classes()[first].Theta
	// Must be one of the 7 maximal classes.
	for ci, c := range e.Classes() {
		if ci == first {
			continue
		}
		if theta.Set.ProperSubsetOf(c.Theta.Set) {
			t.Fatalf("TD first pick %v is below %v", theta, c.Theta)
		}
	}
	// After a positive example TD behaves as BU: smallest informative.
	if err := e.Label(first, sample.Positive); err != nil {
		t.Fatal(err)
	}
	if !e.Done() {
		next := td.Next(e)
		min := -1
		for ci := range e.Classes() {
			if e.Informative(ci) {
				if min == -1 || e.Classes()[ci].Theta.Size() < min {
					min = e.Classes()[ci].Theta.Size()
				}
			}
		}
		if e.Classes()[next].Theta.Size() != min {
			t.Errorf("TD after positive picked size %d, min is %d", e.Classes()[next].Theta.Size(), min)
		}
	}
}

// TestTDBetterThanBUOnOmega: TD infers goal Ω without labeling the whole
// product (Lemma 3.4 prunes below each negative maximal node).
func TestTDBetterThanBUOnOmega(t *testing.T) {
	u := predicate.NewUniverse(paperdata.Example21())
	goal := predicate.Omega(u)
	resTD := runWith(t, NewTopDown(), goal)
	resBU := runWith(t, BottomUp{}, goal)
	if resTD.Interactions >= resBU.Interactions {
		t.Errorf("TD (%d) should beat BU (%d) on goal Ω", resTD.Interactions, resBU.Interactions)
	}
	// Labeling the 7 maximal classes negative leaves everything below
	// certain-negative: exactly 7 interactions.
	if resTD.Interactions != 7 {
		t.Errorf("TD on goal Ω: %d interactions, want 7", resTD.Interactions)
	}
}

// TestEntropyFigure5 recomputes the entropy of every tuple of the empty
// sample against Figure 5.
//
// One cell of the figure disagrees with the paper's own Lemma 3.3: for
// (t2,t1') with T = {(A1,B3)} the figure claims u+ = 2, but four classes
// are ⊇-supersets of {(A1,B3)} ((t1,t1'), (t1,t3'), (t2,t3'), (t3,t2')),
// all of which Lemma 3.3 makes certain positive, so u+ = 4 and the entropy
// is (1,4), not (1,2). Every other row matches the figure exactly; see
// EXPERIMENTS.md. We assert the lemma-correct values.
func TestEntropyFigure5(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	ent := Lookahead{K: 1}.Entropies(e)

	want := map[[2]int]Entropy{
		{0, 0}: {0, 2},  // (t1,t1')
		{0, 1}: {0, 1},  // (t1,t2')
		{0, 2}: {1, 2},  // (t1,t3')
		{1, 0}: {1, 4},  // (t2,t1') — figure says (1,2); see comment above
		{1, 1}: {1, 1},  // (t2,t2')
		{1, 2}: {0, 4},  // (t2,t3')
		{2, 0}: {0, 11}, // (t3,t1')
		{2, 1}: {0, 2},  // (t3,t2')
		{2, 2}: {0, 1},  // (t3,t3')
		{3, 0}: {0, 2},  // (t4,t1')
		{3, 1}: {1, 1},  // (t4,t2')
		{3, 2}: {0, 1},  // (t4,t3')
	}
	for pr, w := range want {
		ci := classFor(e, pr[0], pr[1])
		got, ok := ent[ci]
		if !ok {
			t.Errorf("(t%d,t%d') missing from entropies", pr[0]+1, pr[1]+1)
			continue
		}
		if got != w {
			t.Errorf("entropy(t%d,t%d') = %v, want %v", pr[0]+1, pr[1]+1, got, w)
		}
	}
}

// TestL1SFirstPick: with the lemma-correct entropies, the maximal Min is 1
// and among Min=1 entropies the largest Max is 4, so L1S picks (t2,t1').
func TestL1SFirstPick(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	ci := Lookahead{K: 1}.Next(e)
	if want := classFor(e, 1, 0); ci != want {
		t.Errorf("L1S first pick = class %d (%v), want (t2,t1')",
			ci, e.Classes()[ci].Theta)
	}
}

// TestEntropy2Walkthrough replays the Section 4.4 example: with
// S = {((t1,t3'),+), ((t3,t1'),−)}, entropy²((t2,t1')) = (3,3).
func TestEntropy2Walkthrough(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	if err := e.Label(classFor(e, 0, 2), sample.Positive); err != nil {
		t.Fatal(err)
	}
	if err := e.Label(classFor(e, 2, 0), sample.Negative); err != nil {
		t.Fatal(err)
	}
	ent := Lookahead{K: 2}.Entropies(e)
	ci := classFor(e, 1, 0) // (t2,t1')
	got, ok := ent[ci]
	if !ok {
		t.Fatal("(t2,t1') should be informative")
	}
	if (got != Entropy{3, 3}) {
		t.Errorf("entropy²((t2,t1')) = %v, want (3,3)", got)
	}
	// The positive branch ends the interaction: verify via the branch
	// detail — labeling (t2,t1') positive leaves no informative tuple.
	e2 := inference.New(inst)
	e2.Label(classFor(e2, 0, 2), sample.Positive)
	e2.Label(classFor(e2, 2, 0), sample.Negative)
	e2.Label(classFor(e2, 1, 0), sample.Positive)
	if !e2.Done() {
		t.Error("labeling (t2,t1') positive should end the interaction")
	}
}

func TestSkyline(t *testing.T) {
	E := []Entropy{{0, 2}, {0, 1}, {1, 2}, {1, 1}, {0, 4}, {0, 11}}
	sky := Skyline(E)
	want := map[Entropy]bool{{1, 2}: true, {0, 11}: true}
	if len(sky) != 2 {
		t.Fatalf("skyline = %v, want [(1,2) (0,11)]", sky)
	}
	for _, e := range sky {
		if !want[e] {
			t.Errorf("unexpected skyline entry %v", e)
		}
	}
	// Duplicates collapse.
	if got := Skyline([]Entropy{{1, 1}, {1, 1}}); len(got) != 1 {
		t.Errorf("duplicate skyline = %v", got)
	}
}

func TestDominates(t *testing.T) {
	if !(Entropy{1, 2}).Dominates(Entropy{1, 1}) {
		t.Error("(1,2) should dominate (1,1)")
	}
	if !(Entropy{1, 2}).Dominates(Entropy{0, 2}) {
		t.Error("(1,2) should dominate (0,2)")
	}
	if (Entropy{1, 2}).Dominates(Entropy{2, 2}) {
		t.Error("(1,2) should not dominate (2,2)")
	}
	if (Entropy{1, 2}).Dominates(Entropy{0, 3}) {
		t.Error("(1,2) should not dominate (0,3)")
	}
}

// TestAllStrategiesInferAllGoals: every strategy infers an
// instance-equivalent predicate for every non-nullable goal of Example 2.1
// plus Ω, within |classes| interactions.
func TestAllStrategiesInferAllGoals(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	e0 := inference.New(inst)
	goals := []predicate.Pred{predicate.Omega(u)}
	for _, c := range e0.Classes() {
		goals = append(goals, c.Theta)
	}
	strats := []func() inference.Strategy{
		func() inference.Strategy { return BottomUp{} },
		func() inference.Strategy { return NewTopDown() },
		func() inference.Strategy { return NewRandom(42) },
		func() inference.Strategy { return Lookahead{K: 1} },
		func() inference.Strategy { return Lookahead{K: 2} },
	}
	for _, mk := range strats {
		for gi, goal := range goals {
			strat := mk()
			res := runWith(t, strat, goal)
			if res.Interactions > 12 {
				t.Errorf("%s goal %d: %d interactions", strat.Name(), gi, res.Interactions)
			}
		}
	}
}

// TestOptimalIsLowerBound: on Example 2.1, the minimax-optimal worst case
// is a lower bound for every strategy's worst case over all goals.
func TestOptimalIsLowerBound(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	opt := NewOptimal()
	optWorst := opt.Cost(e)
	if optWorst <= 0 || optWorst > 12 {
		t.Fatalf("optimal worst case = %d", optWorst)
	}

	u := predicate.NewUniverse(inst)
	goals := []predicate.Pred{predicate.Omega(u)}
	for _, c := range e.Classes() {
		goals = append(goals, c.Theta)
	}
	for _, mk := range []func() inference.Strategy{
		func() inference.Strategy { return BottomUp{} },
		func() inference.Strategy { return NewTopDown() },
		func() inference.Strategy { return Lookahead{K: 1} },
		func() inference.Strategy { return Lookahead{K: 2} },
	} {
		worst := 0
		name := ""
		for _, goal := range goals {
			strat := mk()
			name = strat.Name()
			res := runWith(t, strat, goal)
			if res.Interactions > worst {
				worst = res.Interactions
			}
		}
		if worst < optWorst {
			t.Errorf("%s worst case %d beats the optimal %d — minimax bug", name, worst, optWorst)
		}
	}

	// The optimal strategy itself achieves its own bound.
	worst := 0
	for _, goal := range goals {
		inst := paperdata.Example21()
		e := inference.New(inst)
		orc := oracle.NewHonest(inst, e.U, goal)
		res, err := inference.Run(e, NewOptimal(), orc, 2*len(e.Classes()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Interactions > worst {
			worst = res.Interactions
		}
	}
	if worst != optWorst {
		t.Errorf("OPT achieved worst case %d, minimax value is %d", worst, optWorst)
	}
}

func TestOptimalPanicsOnLargeInstances(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Optimal did not panic beyond MaxClasses")
		}
	}()
	inst := paperdata.Example21()
	e := inference.New(inst)
	o := &Optimal{MaxClasses: 3}
	o.Next(e)
}

// TestQuickTDOmegaCostsMaximalClasses: with goal Ω (all answers negative)
// TD labels at most the ⊆-maximal classes — the pruning argument of
// Section 4.3 — on random instances.
func TestQuickTDOmegaCostsMaximalClasses(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		e := inference.New(inst)
		// Count ⊆-maximal classes.
		maxCount := 0
		for i, c := range e.Classes() {
			maximal := true
			for j, d := range e.Classes() {
				if i != j && c.Theta.Set.ProperSubsetOf(d.Theta.Set) {
					maximal = false
					break
				}
			}
			if maximal {
				maxCount++
			}
		}
		goal := predicate.Omega(e.U)
		// Goal Ω may select tuples (if some class has T = Ω they are
		// positive); restrict to instances where Ω selects nothing so all
		// answers are negative.
		for _, c := range e.Classes() {
			if goal.MoreGeneralThan(c.Theta) {
				return true // skip: Ω non-nullable here
			}
		}
		res, err := inference.Run(e, NewTopDown(), oracle.NewHonest(inst, e.U, goal), 0)
		if err != nil {
			return false
		}
		return res.Interactions <= maxCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRandomReproducible(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	goal := predicate.FromPairs(u, [2]int{0, 0})
	run := func(seed int64) int {
		e := inference.New(inst)
		res, err := inference.Run(e, NewRandom(seed), oracle.NewHonest(inst, e.U, goal), 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Interactions
	}
	if run(7) != run(7) {
		t.Error("same seed gave different interaction counts")
	}
}

// TestCountClassesMode: with CountClasses the entropies count classes
// (here identical to tuples since all class sizes are 1) — and on an
// instance with duplicated rows the two modes differ.
func TestCountClassesMode(t *testing.T) {
	R := relation.NewRelation(relation.MustSchema("R", "A1"))
	R.MustAddTuple("1")
	R.MustAddTuple("1") // duplicate row: class sizes 2
	P := relation.NewRelation(relation.MustSchema("P", "B1", "B2"))
	P.MustAddTuple("1", "0")
	P.MustAddTuple("1", "1")
	P.MustAddTuple("0", "2")
	inst := relation.MustInstance(R, P)

	eTuples := inference.New(inst)
	entT := Lookahead{K: 1}.Entropies(eTuples)
	eClasses := inference.New(inst)
	entC := Lookahead{K: 1, CountClasses: true}.Entropies(eClasses)

	differs := false
	for ci, a := range entT {
		if b, ok := entC[ci]; ok && a != b {
			differs = true
		}
	}
	if !differs {
		t.Error("tuple- and class-counting should differ on duplicated rows")
	}
}

// TestQuickLookaheadNeverWorseThanClasses: all strategies terminate within
// the class budget on random instances and return equivalent predicates.
func TestQuickStrategiesAlwaysTerminate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		for _, mk := range []func() inference.Strategy{
			func() inference.Strategy { return BottomUp{} },
			func() inference.Strategy { return NewTopDown() },
			func() inference.Strategy { return NewRandom(seed) },
			func() inference.Strategy { return Lookahead{K: 1} },
			func() inference.Strategy { return Lookahead{K: 2} },
		} {
			e := inference.New(inst)
			goal := randPred(r, e.U)
			orc := oracle.NewHonest(inst, e.U, goal)
			res, err := inference.Run(e, mk(), orc, len(e.Classes()))
			if err != nil {
				return false
			}
			gj := predicate.Join(inst, e.U, goal)
			rj := predicate.Join(inst, e.U, res.Predicate)
			if len(gj) != len(rj) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randInstance(r *rand.Rand) *relation.Instance {
	n := 1 + r.Intn(3)
	m := 1 + r.Intn(3)
	vals := 1 + r.Intn(4)
	ra := make([]string, n)
	for i := range ra {
		ra[i] = "A" + strconv.Itoa(i+1)
	}
	pa := make([]string, m)
	for i := range pa {
		pa[i] = "B" + strconv.Itoa(i+1)
	}
	R := relation.NewRelation(relation.MustSchema("R", ra...))
	P := relation.NewRelation(relation.MustSchema("P", pa...))
	for i := 0; i < 2+r.Intn(4); i++ {
		tr := make(relation.Tuple, n)
		for k := range tr {
			tr[k] = strconv.Itoa(r.Intn(vals))
		}
		R.Tuples = append(R.Tuples, tr)
	}
	for i := 0; i < 2+r.Intn(4); i++ {
		tp := make(relation.Tuple, m)
		for k := range tp {
			tp[k] = strconv.Itoa(r.Intn(vals))
		}
		P.Tuples = append(P.Tuples, tp)
	}
	return relation.MustInstance(R, P)
}

func randPred(r *rand.Rand, u *predicate.Universe) predicate.Pred {
	var p predicate.Pred
	for id := 0; id < u.Size(); id++ {
		if r.Intn(3) == 0 {
			p.Set.Add(id)
		}
	}
	return p
}

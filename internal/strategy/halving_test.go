package strategy

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/inference"
	"repro/internal/oracle"
	"repro/internal/paperdata"
	"repro/internal/predicate"
)

// bruteCountConsistent enumerates all θ ⊆ Ω; ground truth for the
// inclusion–exclusion counter.
func bruteCountConsistent(size int, tpos predicate.Pred, negs []predicate.Pred) *big.Int {
	count := 0
	for mask := 0; mask < 1<<uint(size); mask++ {
		var p predicate.Pred
		for b := 0; b < size; b++ {
			if mask&(1<<uint(b)) != 0 {
				p.Set.Add(b)
			}
		}
		if !p.Set.SubsetOf(tpos.Set) {
			continue
		}
		bad := false
		for _, n := range negs {
			if p.Set.SubsetOf(n.Set) {
				bad = true
				break
			}
		}
		if !bad {
			count++
		}
	}
	return big.NewInt(int64(count))
}

func TestCountConsistentEmptySample(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	got := CountConsistent(predicate.Omega(u), nil)
	if got.Cmp(big.NewInt(64)) != 0 { // 2^6
		t.Errorf("count = %v, want 64", got)
	}
}

func TestCountConsistentWithNegatives(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	tpos := predicate.Omega(u)
	// One negative with T = ∅: only θ = ∅ is excluded → 63.
	got := CountConsistent(tpos, []predicate.Pred{predicate.Empty()})
	if got.Cmp(big.NewInt(63)) != 0 {
		t.Errorf("count = %v, want 63", got)
	}
}

// TestQuickCountConsistentMatchesBruteForce validates the
// inclusion–exclusion against enumeration on random states.
func TestQuickCountConsistentMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 1 + r.Intn(10)
		randP := func() predicate.Pred {
			var p predicate.Pred
			for b := 0; b < size; b++ {
				if r.Intn(2) == 0 {
					p.Set.Add(b)
				}
			}
			return p
		}
		tpos := randP()
		var negs []predicate.Pred
		for k := 0; k < r.Intn(5); k++ {
			negs = append(negs, randP())
		}
		got := CountConsistent(tpos, negs)
		if got == nil {
			return true // fallback case, permitted
		}
		return got.Cmp(bruteCountConsistent(size, tpos, negs)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHalvingSplitInvariant: for any informative tuple, the predicates
// selecting it plus the predicates rejecting it partition C(S).
func TestHalvingSplitInvariant(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	tpos := e.TPos()
	total := CountConsistent(tpos, nil)
	for _, ci := range e.InformativeClasses() {
		theta := e.Classes()[ci].Theta
		pos := CountConsistent(tpos.Intersect(theta), nil)
		neg := CountConsistent(tpos, []predicate.Pred{theta})
		sum := new(big.Int).Add(pos, neg)
		if sum.Cmp(total) != 0 {
			t.Errorf("class %d: %v + %v ≠ %v", ci, pos, neg, total)
		}
	}
}

// TestHalvingInfersAllGoals: HALVE terminates with instance-equivalent
// predicates on every goal of Example 2.1.
func TestHalvingInfersAllGoals(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	e0 := inference.New(inst)
	goals := []predicate.Pred{predicate.Omega(u)}
	for _, c := range e0.Classes() {
		goals = append(goals, c.Theta)
	}
	worst := 0
	for gi, goal := range goals {
		e := inference.New(inst)
		res, err := inference.Run(e, Halving{}, oracle.NewHonest(inst, e.U, goal), 24)
		if err != nil {
			t.Fatalf("goal %d: %v", gi, err)
		}
		gj := predicate.Join(inst, e.U, goal)
		rj := predicate.Join(inst, e.U, res.Predicate)
		if len(gj) != len(rj) {
			t.Errorf("goal %d: not instance-equivalent", gi)
		}
		if res.Interactions > worst {
			worst = res.Interactions
		}
	}
	// Version-space halving should stay near the information-theoretic
	// bound: |C(∅)| = 64 consistent predicates collapse to instance
	// equivalence within far fewer questions than the 12 classes.
	if worst > 9 {
		t.Errorf("HALVE worst case = %d interactions, expected ≤ 9", worst)
	}
}

func TestHalvingName(t *testing.T) {
	if (Halving{}).Name() != "HALVE" {
		t.Error("name")
	}
}

// TestHalvingFallback: a custom fallback is used when counting declines
// (forced here by a stub returning nil is impossible without >20 distinct
// maximal negatives, so instead verify the default fallback path never
// triggers on the paper instance — the strategy itself must pick a class).
func TestHalvingAlwaysPicksInformative(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	for !e.Done() {
		ci := (Halving{}).Next(e)
		if ci < 0 || !e.Informative(ci) {
			t.Fatalf("HALVE picked invalid class %d", ci)
		}
		if err := e.Label(ci, false); err != nil {
			t.Fatal(err)
		}
	}
}

package strategy

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/inference"
	"repro/internal/oracle"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/sample"
	"repro/internal/synth"
)

// generalPathInstance returns an instance whose pair universe exceeds 64
// bits (Ω = 9·8 = 72), forcing the lookahead onto the general bitset path;
// every product tuple lands in its own T-class, so rows² informative
// classes exist at the start.
func generalPathInstance(t *testing.T, rows int) *inference.Engine {
	t.Helper()
	inst := synth.MustGenerate(synth.Config{AttrsR: 9, AttrsP: 8, Rows: rows, Values: 3}, 1)
	e := inference.New(inst)
	if e.U.Size() <= 64 {
		t.Fatalf("universe %d fits a word; want > 64", e.U.Size())
	}
	lk := newLook(e, false)
	if lk.fastReady() {
		t.Fatal("fast path unexpectedly available on a >64-pair universe")
	}
	return e
}

// TestWorkersDeterministicFastPath: on random word-size instances, NextCtx
// picks the same class at every Workers value, and whole runs ask the same
// number of questions — parallel evaluation must be bit-identical to
// serial.
func TestWorkersDeterministicFastPath(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		inst := randInstance(r)
		goal := randPred(r, inference.New(inst).U)
		for _, k := range []int{1, 2} {
			e := inference.New(inst)
			serial, err := Lookahead{K: k}.NextCtx(ctx, e)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 4, 16, -1} {
				got, err := Lookahead{K: k, Workers: w}.NextCtx(ctx, e)
				if err != nil {
					t.Fatal(err)
				}
				if got != serial {
					t.Fatalf("trial %d K=%d workers=%d: picked %d, serial picked %d", trial, k, w, got, serial)
				}
			}
			// Whole-run agreement: identical questions means identical
			// interaction counts and inferred predicates.
			base, err := inference.Run(inference.New(inst), Lookahead{K: k},
				oracle.NewHonest(inst, inference.New(inst).U, goal), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{4, 16} {
				res, err := inference.Run(inference.New(inst), Lookahead{K: k, Workers: w},
					oracle.NewHonest(inst, inference.New(inst).U, goal), 0)
				if err != nil {
					t.Fatal(err)
				}
				if res.Interactions != base.Interactions || !res.Predicate.Equal(base.Predicate) {
					t.Fatalf("trial %d K=%d workers=%d: run diverged (%d vs %d interactions)",
						trial, k, w, res.Interactions, base.Interactions)
				}
			}
		}
	}
}

// TestWorkersDeterministicGeneralPath: the same determinism guarantee on
// the general bitset path (Ω > 64).
func TestWorkersDeterministicGeneralPath(t *testing.T) {
	ctx := context.Background()
	e := generalPathInstance(t, 5)
	serial := (Lookahead{K: 2}).Next(e)
	for _, w := range []int{1, 4, 16} {
		got, err := Lookahead{K: 2, Workers: w}.NextCtx(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		if got != serial {
			t.Fatalf("workers=%d: picked %d, serial picked %d", w, got, serial)
		}
	}
}

// TestGeneralPathBeamLimitsEvaluations is the regression test for the
// silently-ignored beam: on a >64-pair universe (general path) with 64
// informative classes, MaxCandidates must cap the number of entropy^K
// evaluations. Before the fix the beam was applied only on the word-level
// fast path, so exactly this instance shape ran exact L2S regardless of
// the knob.
func TestGeneralPathBeamLimitsEvaluations(t *testing.T) {
	e := generalPathInstance(t, 8)
	inf := len(e.InformativeClasses())
	if inf <= 8 {
		t.Fatalf("want > 8 informative classes, got %d", inf)
	}
	var evals atomic.Int64
	beamed := Lookahead{K: 2, MaxCandidates: 8, evalCount: &evals}
	ci, err := beamed.NextCtx(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if got := evals.Load(); got != 8 {
		t.Errorf("beam 8 evaluated %d candidates; want exactly 8", got)
	}
	if ci < 0 || !e.Informative(ci) {
		t.Errorf("beamed pick %d is not an informative class", ci)
	}
}

// TestGeneralPathNoBeamEvaluatesAll: without a beam the general path still
// evaluates every informative candidate (the counter counts what the beam
// would have cut).
func TestGeneralPathNoBeamEvaluatesAll(t *testing.T) {
	e := generalPathInstance(t, 5)
	inf := len(e.InformativeClasses())
	var evals atomic.Int64
	exact := Lookahead{K: 2, evalCount: &evals}
	if _, err := exact.NextCtx(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	if got := evals.Load(); got != int64(inf) {
		t.Errorf("exact L2S evaluated %d candidates; want all %d", got, inf)
	}
}

// TestBeamAgreesAcrossPaths: the beam's candidate selection (one-step
// entropy scoring plus stable ordering) must be identical whether scored
// by the fast or the general path, so beamed runs do not depend on which
// path an instance happens to take.
func TestBeamAgreesAcrossPaths(t *testing.T) {
	inst := paperdata.Example21()
	e := inference.New(inst)
	lk := newLook(e, false)
	if !lk.fastReady() {
		t.Fatal("Example 2.1 should take the fast path")
	}
	fb := lk.fbase()
	gb := lk.baseState()
	for _, beam := range []int{1, 2, 4, 8} {
		fast := lk.beamPositions(2, beam, func(pos int) Entropy { return lk.fentropy1(pos, fb) })
		general := lk.beamPositions(2, beam, func(pos int) Entropy { return lk.entropy1(lk.baseInf[pos], gb) })
		if len(fast) != len(general) {
			t.Fatalf("beam %d: %d vs %d positions", beam, len(fast), len(general))
		}
		for i := range fast {
			if fast[i] != general[i] {
				t.Fatalf("beam %d: position %d differs (%d vs %d)", beam, i, fast[i], general[i])
			}
		}
	}
}

// TestParallelNextCtxCancellation: a cancelled context aborts a parallel
// L2S decision with the context's error.
func TestParallelNextCtxCancellation(t *testing.T) {
	inst := synth.MustGenerate(synth.Config{AttrsR: 3, AttrsP: 3, Rows: 50, Values: 100}, 5)
	e := inference.New(inst)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 8} {
		ci, err := Lookahead{K: 2, Workers: w}.NextCtx(ctx, e)
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if ci != -1 {
			t.Errorf("workers=%d: ci = %d, want -1", w, ci)
		}
	}
}

// TestDeepLookaheadFallsBackToGeneral: depths beyond the fast path's inline
// chain (maxFastDepth) must still work — they route to the general path,
// which handles arbitrary K. A three-class instance keeps the exponential
// recursion trivially small.
func TestDeepLookaheadFallsBackToGeneral(t *testing.T) {
	R := relation.NewRelation(relation.MustSchema("R", "A"))
	P := relation.NewRelation(relation.MustSchema("P", "B"))
	R.Tuples = append(R.Tuples, relation.Tuple{"1"}, relation.Tuple{"2"})
	P.Tuples = append(P.Tuples, relation.Tuple{"1"}, relation.Tuple{"3"})
	inst := relation.MustInstance(R, P)
	e := inference.New(inst)
	deep := Lookahead{K: maxFastDepth + 1, Workers: 4}
	ci, err := deep.NextCtx(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if ci < 0 || !e.Informative(ci) {
		t.Fatalf("deep lookahead picked %d; want an informative class", ci)
	}
	if err := e.Label(ci, sample.Negative); err != nil {
		t.Fatal(err)
	}
}

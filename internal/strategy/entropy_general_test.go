package strategy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/inference"
	"repro/internal/oracle"
	"repro/internal/predicate"
	"repro/internal/synth"
)

// legacyLookahead replays the pre-arena general path: per-candidate
// entropies via the slice-based reference implementation (entropy.go's
// state/entropyK, kept as the k > maxFastDepth fallback) reduced with the
// exact serial selection rule. Differential tests and BenchmarkColdPath
// compare the production paths against it.
type legacyLookahead struct {
	K            int
	CountClasses bool
}

func (s legacyLookahead) Name() string { return fmt.Sprintf("legacy-L%dS", s.K) }

func (s legacyLookahead) Next(e *inference.Engine) int {
	lk := newLook(e, s.CountClasses)
	if len(lk.baseInf) == 0 {
		return -1
	}
	base := lk.baseState()
	best := Entropy{Min: -1, Max: -1}
	bestIdx := -1
	for _, ci := range lk.baseInf {
		ent := lk.entropyK(ci, base, s.K)
		if ent.Min > best.Min || (ent.Min == best.Min && ent.Max > best.Max) {
			best = ent
			bestIdx = ci
		}
	}
	return bestIdx
}

// bigInstance returns a >64-pair instance (Ω = 9·8 = 72), forcing the
// lookahead onto the arena general path.
func bigInstance(tb testing.TB, rows int, seed int64) *inference.Engine {
	tb.Helper()
	inst := synth.MustGenerate(synth.Config{AttrsR: 9, AttrsP: 8, Rows: rows, Values: 3}, seed)
	e := inference.New(inst)
	if e.U.Size() <= 64 {
		tb.Fatalf("universe %d fits a word; want > 64", e.U.Size())
	}
	return e
}

// TestArenaMatchesLegacyBigUniverse: on >64-pair universes the arena
// general path computes exactly the legacy path's entropies, for k = 1, 2,
// both counting modes, with and without labeled classes.
func TestArenaMatchesLegacyBigUniverse(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		e := bigInstance(t, 5, seed)
		r := rand.New(rand.NewSource(seed))
		goal := randPred(r, e.U)
		if labelHonestly(r, e, goal, r.Intn(4)) < 0 {
			t.Fatal("labeling failed")
		}
		for _, k := range []int{1, 2} {
			for _, cc := range []bool{false, true} {
				l := Lookahead{K: k, CountClasses: cc}
				arena := l.Entropies(e) // dispatches to the arena path (Ω = 72)
				legacy := l.entropiesGeneral(e)
				if len(arena) != len(legacy) {
					t.Fatalf("seed %d k=%d cc=%v: entry counts differ: %d vs %d", seed, k, cc, len(arena), len(legacy))
				}
				for ci, ae := range arena {
					if legacy[ci] != ae {
						t.Errorf("seed %d k=%d cc=%v class %d: arena %v, legacy %v", seed, k, cc, ci, ae, legacy[ci])
					}
				}
			}
		}
	}
}

// TestQuickArenaMatchesLegacySmallUniverse: on random word-size instances
// the arena path (forced, since dispatch would take the fast path) agrees
// with the legacy implementation — the three paths compute one function.
func TestQuickArenaMatchesLegacySmallUniverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstance(r)
		for _, k := range []int{1, 2} {
			for _, cc := range []bool{false, true} {
				e := inference.New(inst)
				if labelHonestly(r, e, randPred(r, e.U), r.Intn(4)) < 0 {
					return false
				}
				lk := newLook(e, cc)
				if len(lk.baseInf) == 0 {
					continue
				}
				lk.generalReady()
				sc := lk.newScratch(k)
				base := lk.baseState()
				for idx, ci := range lk.baseInf {
					if lk.gentropyKRoot(idx, k, sc) != lk.entropyK(ci, base, k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestArenaSequenceMatchesLegacy: whole interactions on a >64-pair
// universe ask bit-identical question sequences whether the entropies come
// from the arena path (at any worker count) or the legacy reference.
func TestArenaSequenceMatchesLegacy(t *testing.T) {
	for _, k := range []int{1, 2} {
		for _, workers := range []int{1, 4} {
			e := bigInstance(t, 5, 1)
			ref := bigInstance(t, 5, 1)
			goal := predicate.FromPairs(e.U, [2]int{0, 0})
			orc := oracle.NewHonest(e.Inst, e.U, goal)
			arena := Lookahead{K: k, Workers: workers}
			legacy := legacyLookahead{K: k}
			for step := 0; !e.Done(); step++ {
				got := arena.Next(e)
				want := legacy.Next(ref)
				if got != want {
					t.Fatalf("K=%d workers=%d step %d: arena picked %d, legacy picked %d", k, workers, step, got, want)
				}
				l := orc.LabelFor(e.Classes()[got].RI, e.Classes()[got].PI)
				if err := e.Label(got, l); err != nil {
					t.Fatal(err)
				}
				if err := ref.Label(want, l); err != nil {
					t.Fatal(err)
				}
			}
			if !ref.Done() {
				t.Fatalf("K=%d workers=%d: legacy engine not done when arena engine is", k, workers)
			}
		}
	}
}

// TestAllocFreeCandidateEvalFast: steady-state candidate evaluation on the
// word-level fast path allocates nothing (the allocation-regression guard
// for the Θ(K³) inner loop).
func TestAllocFreeCandidateEvalFast(t *testing.T) {
	inst := synth.MustGenerate(synth.Config{AttrsR: 3, AttrsP: 3, Rows: 10, Values: 3}, 1)
	e := inference.New(inst)
	r := rand.New(rand.NewSource(1))
	if labelHonestly(r, e, randPred(r, e.U), 2) < 0 {
		t.Fatal("labeling failed")
	}
	lk := newLook(e, false)
	if !lk.fastReady() {
		t.Fatal("expected fast path")
	}
	if len(lk.baseInf) == 0 {
		t.Fatal("no informative classes")
	}
	const k = 2
	sc := lk.newScratch(k)
	base := lk.fbase()
	allocs := testing.AllocsPerRun(50, func() {
		for pos := range lk.baseInf {
			lk.fentropyKRoot(pos, base, k, sc)
		}
	})
	if allocs != 0 {
		t.Errorf("fast-path candidate evaluation allocates %.1f per run; want 0", allocs)
	}
}

// TestAllocFreeCandidateEvalGeneral: the same guard on the arena general
// path over a >64-pair universe.
func TestAllocFreeCandidateEvalGeneral(t *testing.T) {
	e := bigInstance(t, 5, 1)
	r := rand.New(rand.NewSource(1))
	if labelHonestly(r, e, randPred(r, e.U), 2) < 0 {
		t.Fatal("labeling failed")
	}
	lk := newLook(e, false)
	if lk.fastReady() {
		t.Fatal("fast path unexpectedly available on a >64-pair universe")
	}
	lk.generalReady()
	if len(lk.baseInf) == 0 {
		t.Fatal("no informative classes")
	}
	const k = 2
	sc := lk.newScratch(k)
	allocs := testing.AllocsPerRun(20, func() {
		for pos := range lk.baseInf {
			lk.gentropyKRoot(pos, k, sc)
		}
	})
	if allocs != 0 {
		t.Errorf("general-path candidate evaluation allocates %.1f per run; want 0", allocs)
	}
}

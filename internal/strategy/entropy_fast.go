package strategy

// Word-level fast path for the lookahead strategies. When the pair universe
// Ω fits in 64 bits (n·m ≤ 64 — true for every realistic schema pair, and
// for all of the paper's experiments), predicates are single machine words
// and the certainty tests of Lemmas 3.3/3.4 become three integer
// operations. The lookahead inner loop runs Θ(K³) certainty tests per
// question (K = informative classes), so this path is what makes L2S
// practical at TPC-H scale; entropy_fast_test.go asserts it agrees exactly
// with the general bitset path.
//
// The fast state is allocation-free along a hypothetical extension chain:
// the newly-labeled set is a fixed inline chain of ≤ maxFastDepth positions
// guarded by a one-word position filter, and negative extensions append
// into a scratch buffer reserved once per candidate (fentropyKRoot), so the
// Θ(K²) extensions evaluated per candidate allocate nothing.

// maxFastDepth bounds the lookahead depth the fast path supports: a
// hypothetical chain labels one class per level, and the chain is stored
// inline to avoid per-extension allocations. Deeper lookaheads (which are
// computationally absurd anyway — the cost is exponential in K) fall back
// to the general bitset path.
const maxFastDepth = 8

// fastReady reports whether the fast path can be used and fills the
// word-level snapshot.
func (l *look) fastReady() bool {
	tposW, ok := l.e.TPos().Set.AsWord()
	if !ok {
		return false
	}
	negs := l.e.Negatives()
	negsW := make([]uint64, len(negs))
	for i, n := range negs {
		w, ok := n.Set.AsWord()
		if !ok {
			return false
		}
		negsW[i] = w
	}
	cs := l.e.Classes()
	thetas := make([]uint64, len(l.baseInf))
	counts := make([]int64, len(l.baseInf))
	for idx, ci := range l.baseInf {
		w, ok := cs[ci].Theta.Set.AsWord()
		if !ok {
			return false
		}
		thetas[idx] = w
		counts[idx] = cs[ci].Count
	}
	l.fast = true
	l.tposW = tposW
	l.negsW = negsW
	l.thetasW = thetas
	l.countsW = counts
	return true
}

// fstate is the hypothetical-extension state of the fast path. newly holds
// *positions into baseInf* (not class indexes) of the classes labeled along
// this chain; newlyMask is a one-word filter over position mod 64 (exact
// when ≤ 64 informative classes exist, a conservative pre-test otherwise)
// so the common "not labeled" case is a single AND. The whole struct is a
// value: extensions copy it on the stack and never allocate.
type fstate struct {
	tpos      uint64
	negs      []uint64
	newlyMask uint64
	newly     [maxFastDepth]int32
	nNew      int8
}

func (s *fstate) labeled(idx int) bool {
	if s.newlyMask&(1<<(uint(idx)&63)) == 0 {
		return false
	}
	for i := int8(0); i < s.nNew; i++ {
		if s.newly[i] == int32(idx) {
			return true
		}
	}
	return false
}

func (s fstate) withNewly(idx int) fstate {
	s.newlyMask |= 1 << (uint(idx) & 63)
	s.newly[s.nNew] = int32(idx)
	s.nNew++
	return s
}

func (l *look) fbase() fstate { return fstate{tpos: l.tposW, negs: l.negsW} }

// fcertain is CertainUnder on words.
func fcertain(tpos uint64, negs []uint64, theta uint64) bool {
	if tpos&^theta == 0 { // Lemma 3.3: tpos ⊆ theta
		return true
	}
	inter := tpos & theta
	for _, n := range negs { // Lemma 3.4: inter ⊆ some negative
		if inter&^n == 0 {
			return true
		}
	}
	return false
}

// fdelta mirrors look.delta on the fast state.
func (l *look) fdelta(s fstate) int64 {
	var sum int64
	for idx, th := range l.thetasW {
		w := l.countsW[idx]
		if l.countClasses {
			w = 1
		}
		if s.labeled(idx) {
			if !l.countClasses {
				sum += w - 1
			}
			continue
		}
		if fcertain(s.tpos, s.negs, th) {
			sum += w
		}
	}
	return sum
}

// finformativeUnder returns baseInf positions still informative under s.
func (l *look) finformativeUnder(s fstate) []int {
	var out []int
	for idx, th := range l.thetasW {
		if s.labeled(idx) {
			continue
		}
		if !fcertain(s.tpos, s.negs, th) {
			out = append(out, idx)
		}
	}
	return out
}

func (s fstate) withPositive(theta uint64, idx int) fstate {
	ext := s.withNewly(idx)
	ext.tpos = s.tpos & theta
	return ext
}

// withNegative appends theta to the negative list in place. The scratch
// buffer reserved by fentropyKRoot makes the append allocation-free; the
// slot it overwrites is safe to reuse because sibling branches of the
// lookahead recursion are evaluated strictly one after the other, and no
// evaluation retains the extension past its own subtree.
func (s fstate) withNegative(theta uint64, idx int) fstate {
	ext := s.withNewly(idx)
	ext.negs = append(s.negs, theta)
	return ext
}

// fentropy1 mirrors look.entropy1 for baseInf position idx.
func (l *look) fentropy1(idx int, s fstate) Entropy {
	theta := l.thetasW[idx]
	up := l.fdelta(s.withPositive(theta, idx))
	un := l.fdelta(s.withNegative(theta, idx))
	if up > un {
		up, un = un, up
	}
	return Entropy{Min: up, Max: un}
}

// fentropyKRoot evaluates candidate idx from the base state with a private
// scratch negative buffer: concurrent candidate evaluations never share an
// append target, and the ≤ k negative extensions along any chain reuse the
// reserved capacity instead of reallocating.
func (l *look) fentropyKRoot(idx int, s fstate, k int) Entropy {
	negs := make([]uint64, len(s.negs), len(s.negs)+k)
	copy(negs, s.negs)
	s.negs = negs
	return l.fentropyK(idx, s, k)
}

// fentropyK mirrors look.entropyK for baseInf position idx.
func (l *look) fentropyK(idx int, s fstate, k int) Entropy {
	if k <= 1 {
		return l.fentropy1(idx, s)
	}
	theta := l.thetasW[idx]
	branch := func(ext fstate) Entropy {
		rest := l.finformativeUnder(ext)
		if len(rest) == 0 {
			return Entropy{Min: Inf, Max: Inf}
		}
		E := make([]Entropy, 0, len(rest))
		for _, j := range rest {
			E = append(E, l.fentropyK(j, ext, k-1))
		}
		return selectEntropy(E)
	}
	ep := branch(s.withPositive(theta, idx))
	en := branch(s.withNegative(theta, idx))
	if en.Min < ep.Min || (en.Min == ep.Min && en.Max < ep.Max) {
		return en
	}
	return ep
}

package strategy

// Word-level fast path for the lookahead strategies. When the pair universe
// Ω fits in 64 bits (n·m ≤ 64 — true for every realistic schema pair, and
// for all of the paper's experiments), predicates are single machine words
// and the certainty tests of Lemmas 3.3/3.4 become three integer
// operations. The lookahead inner loop runs Θ(K³) certainty tests per
// question (K = informative classes), so this path is what makes L2S
// practical at TPC-H scale; entropy_fast_test.go asserts it agrees exactly
// with the general bitset path.
//
// The fast state is allocation-free along a hypothetical extension chain:
// the newly-labeled set is a fixed inline chain of ≤ maxFastDepth positions
// guarded by a one-word position filter, negative extensions append into
// the candidate's lookScratch buffer (reserved once, reused across
// candidates), and the per-level informative lists live in the scratch's
// rest arena — so steady-state candidate evaluation allocates nothing.
// Universes beyond 64 pairs run the identically-disciplined flat-arena
// path of entropy_general.go instead of falling off a cliff.

// maxFastDepth bounds the lookahead depth the inline extension chains of
// both the word-level fast path and the arena-based general path support:
// a hypothetical chain labels one class per level, and the chain is stored
// inline to avoid per-extension allocations. Deeper lookaheads (which are
// computationally absurd anyway — the cost is exponential in K) fall back
// to the legacy slice-based path.
const maxFastDepth = 8

// fastReady reports whether the fast path can be used and fills the
// word-level snapshot.
func (l *look) fastReady() bool {
	tposW, ok := l.e.TPos().Set.AsWord()
	if !ok {
		return false
	}
	negs := l.e.Negatives()
	negsW := make([]uint64, len(negs))
	for i, n := range negs {
		w, ok := n.Set.AsWord()
		if !ok {
			return false
		}
		negsW[i] = w
	}
	cs := l.e.Classes()
	thetas := make([]uint64, len(l.baseInf))
	counts := make([]int64, len(l.baseInf))
	for idx, ci := range l.baseInf {
		w, ok := cs[ci].Theta.Set.AsWord()
		if !ok {
			return false
		}
		thetas[idx] = w
		counts[idx] = cs[ci].Count
	}
	l.fast = true
	l.tposW = tposW
	l.negsW = negsW
	l.thetasW = thetas
	l.countsW = counts
	return true
}

// lookScratch is the per-candidate scratch of one lookahead evaluation:
// everything a depth-k recursion needs beyond the inline chain state, sized
// once and reused so steady-state evaluation allocates nothing. Concurrent
// candidate evaluations use distinct scratches (NextCtx pools them).
type lookScratch struct {
	// rest is the per-level informative-position arena: chain depth d
	// (1-based) appends into rest[(d-1)·K : d·K], so a frame's list
	// survives the deeper recursion it drives.
	rest []int32
	// fnegs is the fast path's negative buffer: base negatives plus k
	// reserved extension slots.
	fnegs []uint64
	// inter and tpos serve the general arena path: one W-word intersection
	// buffer for certainty tests and k W-word slots for the hypothetical
	// T(S+) after each positive extension level.
	inter []uint64
	tpos  []uint64
}

// newScratch sizes a scratch for depth-k evaluation on whichever path the
// look snapshot prepared.
func (l *look) newScratch(k int) *lookScratch {
	sc := &lookScratch{rest: make([]int32, 0, k*len(l.baseInf))}
	if l.fast {
		sc.fnegs = make([]uint64, 0, len(l.negsW)+k)
	}
	if l.gen {
		sc.inter = make([]uint64, l.gW)
		sc.tpos = make([]uint64, k*l.gW)
	}
	return sc
}

// restBuf returns the empty per-level informative buffer for chain depth d.
func (l *look) restBuf(sc *lookScratch, depth int) []int32 {
	K := len(l.baseInf)
	off := (depth - 1) * K
	return sc.rest[off : off : off+K]
}

// fstate is the hypothetical-extension state of the fast path. newly holds
// *positions into baseInf* (not class indexes) of the classes labeled along
// this chain; newlyMask is a one-word filter over position mod 64 (exact
// when ≤ 64 informative classes exist, a conservative pre-test otherwise)
// so the common "not labeled" case is a single AND. The whole struct is a
// value: extensions copy it on the stack and never allocate.
type fstate struct {
	tpos      uint64
	negs      []uint64
	newlyMask uint64
	newly     [maxFastDepth]int32
	nNew      int8
}

func (s *fstate) labeled(idx int) bool {
	if s.newlyMask&(1<<(uint(idx)&63)) == 0 {
		return false
	}
	for i := int8(0); i < s.nNew; i++ {
		if s.newly[i] == int32(idx) {
			return true
		}
	}
	return false
}

func (s fstate) withNewly(idx int) fstate {
	s.newlyMask |= 1 << (uint(idx) & 63)
	s.newly[s.nNew] = int32(idx)
	s.nNew++
	return s
}

func (l *look) fbase() fstate { return fstate{tpos: l.tposW, negs: l.negsW} }

// fcertain is CertainUnder on words.
func fcertain(tpos uint64, negs []uint64, theta uint64) bool {
	if tpos&^theta == 0 { // Lemma 3.3: tpos ⊆ theta
		return true
	}
	inter := tpos & theta
	for _, n := range negs { // Lemma 3.4: inter ⊆ some negative
		if inter&^n == 0 {
			return true
		}
	}
	return false
}

// fdelta mirrors look.delta on the fast state.
func (l *look) fdelta(s fstate) int64 {
	var sum int64
	for idx, th := range l.thetasW {
		w := l.countsW[idx]
		if l.countClasses {
			w = 1
		}
		if s.labeled(idx) {
			if !l.countClasses {
				sum += w - 1
			}
			continue
		}
		if fcertain(s.tpos, s.negs, th) {
			sum += w
		}
	}
	return sum
}

// finformativeInto appends the baseInf positions still informative under s
// to buf (a per-level restBuf slot).
func (l *look) finformativeInto(s fstate, buf []int32) []int32 {
	for idx, th := range l.thetasW {
		if s.labeled(idx) {
			continue
		}
		if !fcertain(s.tpos, s.negs, th) {
			buf = append(buf, int32(idx))
		}
	}
	return buf
}

func (s fstate) withPositive(theta uint64, idx int) fstate {
	ext := s.withNewly(idx)
	ext.tpos = s.tpos & theta
	return ext
}

// withNegative appends theta to the negative list in place. The scratch
// buffer reserved by fentropyKRoot makes the append allocation-free; the
// slot it overwrites is safe to reuse because sibling branches of the
// lookahead recursion are evaluated strictly one after the other, and no
// evaluation retains the extension past its own subtree.
func (s fstate) withNegative(theta uint64, idx int) fstate {
	ext := s.withNewly(idx)
	ext.negs = append(s.negs, theta)
	return ext
}

// fentropy1 mirrors look.entropy1 for baseInf position idx.
func (l *look) fentropy1(idx int, s fstate) Entropy {
	theta := l.thetasW[idx]
	up := l.fdelta(s.withPositive(theta, idx))
	un := l.fdelta(s.withNegative(theta, idx))
	if up > un {
		up, un = un, up
	}
	return Entropy{Min: up, Max: un}
}

// fentropyKRoot evaluates candidate idx from the base state on the given
// scratch: the negative buffer is refilled from the base negatives with k
// extension slots reserved, so the ≤ k negative extensions along any chain
// reuse capacity instead of reallocating, and the whole evaluation is
// allocation-free.
func (l *look) fentropyKRoot(idx int, s fstate, k int, sc *lookScratch) Entropy {
	sc.fnegs = append(sc.fnegs[:0], s.negs...)
	s.negs = sc.fnegs
	return l.fentropyK(idx, s, k, sc)
}

// fentropyK mirrors look.entropyK for baseInf position idx.
func (l *look) fentropyK(idx int, s fstate, k int, sc *lookScratch) Entropy {
	if k <= 1 {
		return l.fentropy1(idx, s)
	}
	theta := l.thetasW[idx]
	ep := l.fbranch(s.withPositive(theta, idx), k, sc)
	en := l.fbranch(s.withNegative(theta, idx), k, sc)
	// Lines 13–14: keep the pessimistic branch (smaller Min); on a tie the
	// smaller Max, staying conservative and deterministic.
	if en.Min < ep.Min || (en.Min == ep.Min && en.Max < ep.Max) {
		return en
	}
	return ep
}

// fbranch is one answer branch of Algorithm 5 lines 3–12: the best
// entropy^(k−1) among the classes still informative under ext, or (∞,∞)
// when none remain. The selection folds selectEntropy's rule (max Min,
// tie-break max Max, first wins) so no entropy slice is materialized.
func (l *look) fbranch(ext fstate, k int, sc *lookScratch) Entropy {
	rest := l.finformativeInto(ext, l.restBuf(sc, int(ext.nNew)))
	if len(rest) == 0 {
		// No informative tuple left: interaction ends (lines 3–5).
		return Entropy{Min: Inf, Max: Inf}
	}
	best := Entropy{Min: -1, Max: -1}
	for _, j := range rest {
		e := l.fentropyK(int(j), ext, k-1, sc)
		if e.Min > best.Min || (e.Min == best.Min && e.Max > best.Max) {
			best = e
		}
	}
	return best
}

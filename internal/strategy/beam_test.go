package strategy

import (
	"testing"

	"repro/internal/inference"
	"repro/internal/oracle"
	"repro/internal/paperdata"
	"repro/internal/predicate"
)

// TestBeamStillInfersCorrectly: with an aggressive beam the lookahead
// strategy must still terminate with an instance-equivalent predicate (the
// beam only affects which informative tuple is asked, never correctness).
func TestBeamStillInfersCorrectly(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	e0 := inference.New(inst)
	goals := []predicate.Pred{predicate.Omega(u), predicate.Empty()}
	for _, c := range e0.Classes() {
		goals = append(goals, c.Theta)
	}
	for _, beam := range []int{1, 2, 4} {
		for gi, goal := range goals {
			e := inference.New(inst)
			strat := Lookahead{K: 2, MaxCandidates: beam}
			res, err := inference.Run(e, strat, oracle.NewHonest(inst, e.U, goal), 24)
			if err != nil {
				t.Fatalf("beam %d goal %d: %v", beam, gi, err)
			}
			gj := predicate.Join(inst, e.U, goal)
			rj := predicate.Join(inst, e.U, res.Predicate)
			if len(gj) != len(rj) {
				t.Errorf("beam %d goal %d: not instance-equivalent", beam, gi)
			}
		}
	}
}

// TestBeamMatchesExactWhenWide: a beam at least as wide as the informative
// set is the exact algorithm.
func TestBeamMatchesExactWhenWide(t *testing.T) {
	inst := paperdata.Example21()
	exact := inference.New(inst)
	beamed := inference.New(inst)
	a := Lookahead{K: 2}
	b := Lookahead{K: 2, MaxCandidates: 100}
	for !exact.Done() {
		ca := a.Next(exact)
		cb := b.Next(beamed)
		if ca != cb {
			t.Fatalf("wide beam diverged: %d vs %d", ca, cb)
		}
		// Answer negative to keep the run long.
		if err := exact.Label(ca, false); err != nil {
			t.Fatal(err)
		}
		if err := beamed.Label(cb, false); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBeamName: the beam does not change the reported strategy name.
func TestBeamName(t *testing.T) {
	if (Lookahead{K: 2, MaxCandidates: 8}).Name() != "L2S" {
		t.Error("beam changed name")
	}
}

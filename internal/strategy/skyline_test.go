package strategy

import (
	"math/rand"
	"testing"
)

// skylineQuadratic is the former all-pairs O(n²) implementation, kept as
// the differential reference for the sort-then-sweep Skyline.
func skylineQuadratic(E []Entropy) []Entropy {
	var out []Entropy
	for i, e := range E {
		dominated := false
		for j, o := range E {
			if i == j || o == e {
				continue
			}
			if o.Dominates(e) {
				dominated = true
				break
			}
		}
		if !dominated {
			dup := false
			for _, p := range out {
				if p == e {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, e)
			}
		}
	}
	return out
}

// TestSkylineMatchesQuadratic: on random entropy sets (dense value ranges
// to force duplicates and ties) the sweep returns exactly the quadratic
// implementation's skyline, as a set.
func TestSkylineMatchesQuadratic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(40)
		E := make([]Entropy, n)
		for i := range E {
			E[i] = Entropy{Min: int64(r.Intn(6)), Max: int64(r.Intn(6))}
			if E[i].Max < E[i].Min {
				E[i].Min, E[i].Max = E[i].Max, E[i].Min
			}
			if r.Intn(10) == 0 {
				E[i] = Entropy{Min: Inf, Max: Inf}
			}
		}
		got := Skyline(E)
		want := skylineQuadratic(E)
		if len(got) != len(want) {
			t.Fatalf("trial %d E=%v: sweep %v, quadratic %v", trial, E, got, want)
		}
		ws := make(map[Entropy]bool, len(want))
		for _, e := range want {
			ws[e] = true
		}
		seen := make(map[Entropy]bool, len(got))
		for _, e := range got {
			if !ws[e] {
				t.Fatalf("trial %d E=%v: sweep kept %v, not in quadratic skyline %v", trial, E, e, want)
			}
			if seen[e] {
				t.Fatalf("trial %d: duplicate %v in sweep output", trial, e)
			}
			seen[e] = true
		}
	}
}

// TestSkylineOrdered: the sweep returns survivors with Min non-increasing
// (the sort order) and Max strictly increasing (the sweep condition) — the
// staircase shape of a 2D skyline.
func TestSkylineOrdered(t *testing.T) {
	E := []Entropy{{0, 2}, {0, 1}, {1, 2}, {1, 1}, {0, 4}, {0, 11}, {3, 3}}
	sky := Skyline(E)
	for i := 1; i < len(sky); i++ {
		if sky[i].Min > sky[i-1].Min {
			t.Fatalf("skyline %v: Min not non-increasing", sky)
		}
		if sky[i].Max <= sky[i-1].Max {
			t.Fatalf("skyline %v: Max not strictly increasing", sky)
		}
	}
}

package querytext

import (
	"testing"

	"repro/internal/paperdata"
	"repro/internal/predicate"
)

// FuzzParsePredicate checks the parser never panics, and that every
// accepted predicate formats back to text the parser accepts again with
// the same meaning.
func FuzzParsePredicate(f *testing.F) {
	f.Add("Flight.To = Hotel.City")
	f.Add("To = City AND Airline = Discount")
	f.Add("TRUE")
	f.Add("x ∧ y && z")
	f.Add("= = =")
	f.Add("Flight.To = Hotel.City AND")
	f.Fuzz(func(t *testing.T, input string) {
		u := predicate.NewUniverse(paperdata.FlightHotel())
		p, err := ParsePredicate(u, input)
		if err != nil {
			return
		}
		text := p.Format(u)
		if p.IsEmpty() {
			text = "TRUE"
		}
		back, err := ParsePredicate(u, text)
		if err != nil {
			t.Fatalf("formatted text %q rejected: %v", text, err)
		}
		if !back.Equal(p) {
			t.Fatalf("round trip changed predicate: %v vs %v", back, p)
		}
	})
}

package querytext

import (
	"strings"
	"testing"

	"repro/internal/paperdata"
	"repro/internal/predicate"
)

func universe() *predicate.Universe {
	return predicate.NewUniverse(paperdata.FlightHotel())
}

func TestParsePredicate(t *testing.T) {
	u := universe()
	want := predicate.MustFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})

	cases := []string{
		"Flight.To = Hotel.City AND Flight.Airline = Hotel.Discount",
		"flight.To = hotel.City and flight.Airline = hotel.Discount",
		"Hotel.City = Flight.To AND Hotel.Discount = Flight.Airline", // sides swapped
		"To = City ∧ Airline = Discount",                             // unqualified + unicode AND
		"To=City && Airline=Discount",
	}
	for _, c := range cases {
		got, err := ParsePredicate(u, c)
		if err != nil {
			t.Errorf("ParsePredicate(%q): %v", c, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("ParsePredicate(%q) = %v, want %v", c, got, want)
		}
	}
}

func TestParseEmptyPredicate(t *testing.T) {
	u := universe()
	for _, c := range []string{"TRUE", "true", "⊤"} {
		got, err := ParsePredicate(u, c)
		if err != nil || !got.IsEmpty() {
			t.Errorf("ParsePredicate(%q) = %v, %v", c, got, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	u := universe()
	cases := []string{
		"",
		"Flight.To",                                // no equality
		"Flight.To = Hotel.City = Hotel.X",         // double equality
		"Flight.To = Flight.From",                  // both sides R
		"Hotel.City = Hotel.Discount",              // both sides P
		"Flight.Nope = Hotel.City",                 // unknown attribute
		"Nope.To = Hotel.City",                     // unknown relation
		"Flight.To = Hotel.City AND",               // dangling AND
		"= Hotel.City",                             // empty side
		"Flight.To = Hotel.City AND AND To = City", // empty condition
	}
	for _, c := range cases {
		if _, err := ParsePredicate(u, c); err == nil {
			t.Errorf("ParsePredicate(%q) accepted", c)
		}
	}
}

func TestParseAmbiguousUnqualified(t *testing.T) {
	// Build two schemas sharing an attribute name? relation.NewInstance
	// forbids that, so ambiguity cannot arise with valid instances — the
	// error path still guards against future loosening. Unknown plain name:
	u := universe()
	if _, err := ParsePredicate(u, "Zzz = City"); err == nil {
		t.Error("unknown unqualified attribute accepted")
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	u := universe()
	preds := []predicate.Pred{
		predicate.Empty(),
		predicate.MustFromNames(u, [2]string{"To", "City"}),
		predicate.MustFromNames(u, [2]string{"To", "City"}, [2]string{"From", "Discount"}),
	}
	for _, p := range preds {
		text := p.Format(u)
		if p.IsEmpty() {
			text = "TRUE"
		}
		got, err := ParsePredicate(u, text)
		if err != nil {
			t.Errorf("round trip of %q: %v", text, err)
			continue
		}
		if !got.Equal(p) {
			t.Errorf("round trip of %q = %v, want %v", text, got, p)
		}
	}
}

func TestSQLJoin(t *testing.T) {
	u := universe()
	p := predicate.MustFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	got := SQL(u, p, SQLOptions{})
	want := `SELECT * FROM "Flight" JOIN "Hotel" ON "Flight"."To" = "Hotel"."City" AND "Flight"."Airline" = "Hotel"."Discount"`
	if got != want {
		t.Errorf("SQL = %q,\nwant  %q", got, want)
	}
}

func TestSQLCrossJoin(t *testing.T) {
	u := universe()
	got := SQL(u, predicate.Empty(), SQLOptions{})
	if !strings.Contains(got, "CROSS JOIN") {
		t.Errorf("empty predicate SQL = %q", got)
	}
}

func TestSQLSemijoin(t *testing.T) {
	u := universe()
	p := predicate.MustFromNames(u, [2]string{"To", "City"})
	got := SQL(u, p, SQLOptions{Semijoin: true})
	for _, frag := range []string{"SELECT DISTINCT", "EXISTS", `"Flight"."To" = "Hotel"."City"`} {
		if !strings.Contains(got, frag) {
			t.Errorf("semijoin SQL missing %q: %q", frag, got)
		}
	}
	// Empty semijoin: EXISTS over bare table.
	empty := SQL(u, predicate.Empty(), SQLOptions{Semijoin: true})
	if !strings.Contains(empty, "1 = 1") {
		t.Errorf("empty semijoin SQL = %q", empty)
	}
}

func TestSQLPretty(t *testing.T) {
	u := universe()
	p := predicate.MustFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	got := SQL(u, p, SQLOptions{Pretty: true})
	if !strings.Contains(got, "\n") {
		t.Errorf("pretty SQL has no newlines: %q", got)
	}
}

func TestQuoteIdent(t *testing.T) {
	if quoteIdent(`we"ird`) != `"we""ird"` {
		t.Errorf("quoteIdent = %q", quoteIdent(`we"ird`))
	}
}

// Package querytext converts join predicates to and from textual form:
// parsing user-supplied predicate expressions like
//
//	Flight.To = Hotel.City AND Flight.Airline = Hotel.Discount
//
// and emitting runnable SQL for an inferred predicate. The inference
// engine itself never needs text — this package exists for the CLI
// (accepting simulated goals) and for handing results to downstream tools.
package querytext

import (
	"fmt"
	"strings"

	"repro/internal/predicate"
)

// ParsePredicate parses a conjunction of equality conditions over the
// universe's two schemas. Accepted grammar (case-insensitive keywords):
//
//	pred     := cond ( ("AND" | "∧" | "&&") cond )* | "TRUE" | "⊤"
//	cond     := ref "=" ref
//	ref      := [relation "."] attribute
//
// Attribute references may omit the relation prefix when the attribute
// name is unambiguous across the two schemas; each condition must relate
// one R attribute and one P attribute (in either order).
func ParsePredicate(u *predicate.Universe, input string) (predicate.Pred, error) {
	s := strings.TrimSpace(input)
	if s == "" {
		return predicate.Pred{}, fmt.Errorf("querytext: empty predicate (use TRUE for the empty conjunction)")
	}
	if strings.EqualFold(s, "true") || s == "⊤" {
		return predicate.Empty(), nil
	}
	// Normalize connective spellings to a single separator.
	replacer := strings.NewReplacer("∧", "\x00", "&&", "\x00")
	norm := replacer.Replace(s)
	norm = replaceKeywordAnd(norm)
	var p predicate.Pred
	for _, part := range strings.Split(norm, "\x00") {
		cond := strings.TrimSpace(part)
		if cond == "" {
			return predicate.Pred{}, fmt.Errorf("querytext: empty condition in %q", input)
		}
		id, err := parseCondition(u, cond)
		if err != nil {
			return predicate.Pred{}, err
		}
		p.Set.Add(id)
	}
	return p, nil
}

// replaceKeywordAnd replaces word-boundary "AND"/"and" with the separator.
func replaceKeywordAnd(s string) string {
	var b strings.Builder
	fields := strings.Fields(s)
	for i, f := range fields {
		if strings.EqualFold(f, "and") {
			b.WriteByte('\x00')
			continue
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(f)
	}
	return b.String()
}

func parseCondition(u *predicate.Universe, cond string) (int, error) {
	sides := strings.Split(cond, "=")
	if len(sides) != 2 {
		return 0, fmt.Errorf("querytext: condition %q must be a single equality", cond)
	}
	l, err := resolveRef(u, strings.TrimSpace(sides[0]))
	if err != nil {
		return 0, err
	}
	r, err := resolveRef(u, strings.TrimSpace(sides[1]))
	if err != nil {
		return 0, err
	}
	switch {
	case l.isR && !r.isR:
		return u.PairID(l.idx, r.idx), nil
	case !l.isR && r.isR:
		return u.PairID(r.idx, l.idx), nil
	default:
		return 0, fmt.Errorf("querytext: condition %q must relate one %s attribute and one %s attribute",
			cond, u.RSchema.Name, u.PSchema.Name)
	}
}

type ref struct {
	isR bool
	idx int
}

func resolveRef(u *predicate.Universe, s string) (ref, error) {
	if s == "" {
		return ref{}, fmt.Errorf("querytext: empty attribute reference")
	}
	rel, attr := "", s
	if i := strings.IndexByte(s, '.'); i >= 0 {
		rel, attr = s[:i], s[i+1:]
	}
	switch {
	case rel == "":
		ri := u.RSchema.IndexOf(attr)
		pi := u.PSchema.IndexOf(attr)
		switch {
		case ri >= 0 && pi >= 0:
			return ref{}, fmt.Errorf("querytext: attribute %q is ambiguous (in both %s and %s); qualify it",
				attr, u.RSchema.Name, u.PSchema.Name)
		case ri >= 0:
			return ref{isR: true, idx: ri}, nil
		case pi >= 0:
			return ref{isR: false, idx: pi}, nil
		default:
			return ref{}, fmt.Errorf("querytext: unknown attribute %q", attr)
		}
	case strings.EqualFold(rel, u.RSchema.Name):
		i := u.RSchema.IndexOf(attr)
		if i < 0 {
			return ref{}, fmt.Errorf("querytext: %s has no attribute %q", u.RSchema.Name, attr)
		}
		return ref{isR: true, idx: i}, nil
	case strings.EqualFold(rel, u.PSchema.Name):
		i := u.PSchema.IndexOf(attr)
		if i < 0 {
			return ref{}, fmt.Errorf("querytext: %s has no attribute %q", u.PSchema.Name, attr)
		}
		return ref{isR: false, idx: i}, nil
	default:
		return ref{}, fmt.Errorf("querytext: unknown relation %q (expected %s or %s)",
			rel, u.RSchema.Name, u.PSchema.Name)
	}
}

// SQLOptions controls SQL emission.
type SQLOptions struct {
	// Semijoin emits the R ⋉θ P form (SELECT DISTINCT R.* … EXISTS) instead
	// of the plain join.
	Semijoin bool
	// Pretty inserts newlines and indentation.
	Pretty bool
}

// SQL renders the predicate as a runnable SQL statement over the
// universe's relations. The empty predicate renders as a CROSS JOIN
// (equijoin) or an EXISTS over the bare table (semijoin); identifiers are
// double-quoted.
func SQL(u *predicate.Universe, p predicate.Pred, opts SQLOptions) string {
	rName := quoteIdent(u.RSchema.Name)
	pName := quoteIdent(u.PSchema.Name)
	var conds []string
	p.Set.ForEach(func(id int) bool {
		i, j := u.Pair(id)
		conds = append(conds, fmt.Sprintf("%s.%s = %s.%s",
			rName, quoteIdent(u.RSchema.Attributes[i]),
			pName, quoteIdent(u.PSchema.Attributes[j])))
		return true
	})

	sep, indent := " ", ""
	if opts.Pretty {
		sep, indent = "\n", "  "
	}
	join := strings.Join(conds, sep+indent+"AND ")

	if opts.Semijoin {
		where := "1 = 1"
		if len(conds) > 0 {
			where = join
		}
		return fmt.Sprintf("SELECT DISTINCT %s.*%sFROM %s%sWHERE EXISTS (%sSELECT 1 FROM %s WHERE %s%s)",
			rName, sep, rName, sep, sep+indent, pName, where, sep)
	}
	if len(conds) == 0 {
		return fmt.Sprintf("SELECT *%sFROM %s%sCROSS JOIN %s", sep, rName, sep, pName)
	}
	return fmt.Sprintf("SELECT *%sFROM %s%sJOIN %s ON %s", sep, rName, sep, pName, join)
}

func quoteIdent(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

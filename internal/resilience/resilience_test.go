package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	var changes []string
	b := NewBreaker(BreakerOptions{
		Threshold: 3,
		Cooloff:   time.Second,
		Now:       func() time.Time { return now },
		OnChange: func(from, to BreakerState) {
			changes = append(changes, from.String()+"->"+to.String())
		},
	})

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker should be closed and allowing")
	}

	boom := errors.New("disk on fire")
	b.Failure(boom)
	b.Failure(boom)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	// A success resets the streak.
	b.Success()
	if got := b.ConsecutiveFailures(); got != 0 {
		t.Fatalf("failures after success = %d, want 0", got)
	}

	b.Failure(boom)
	b.Failure(boom)
	b.Failure(boom)
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must reject before cooloff")
	}
	if got := b.LastError(); got != "disk on fire" {
		t.Fatalf("LastError = %q", got)
	}

	// Cooloff elapses: exactly one probe is granted.
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooloff elapsed: probe should be allowed")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe must be rejected")
	}

	// Failed probe re-opens immediately.
	b.Failure(boom)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("fresh cooloff after failed probe")
	}

	// Next probe succeeds: breaker closes, recovery counted.
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe should be allowed")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	trips, recoveries := b.Counters()
	if trips != 2 || recoveries != 1 {
		t.Fatalf("counters = (%d trips, %d recoveries), want (2, 1)", trips, recoveries)
	}
	want := []string{
		"closed->open",
		"open->half-open",
		"half-open->open",
		"open->half-open",
		"half-open->closed",
	}
	if len(changes) != len(want) {
		t.Fatalf("transitions = %v, want %v", changes, want)
	}
	for i := range want {
		if changes[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, changes[i], want[i])
		}
	}
}

// TestBreakerCancelProbe: an admitted call whose work vanished before it
// touched the dependency must release the half-open probe slot —
// otherwise the breaker wedges half-open forever and every later Allow
// is rejected.
func TestBreakerCancelProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerOptions{
		Threshold: 1,
		Cooloff:   time.Second,
		Now:       func() time.Time { return now },
	})
	b.Failure(errors.New("boom"))
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}

	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooloff elapsed: probe should be allowed")
	}
	if b.Allow() {
		t.Fatal("probe outstanding: second Allow must be rejected")
	}
	b.CancelProbe()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after canceled probe = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("canceled probe must free the half-open slot for the next caller")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}

	// Outside half-open CancelProbe is a no-op: the breaker stays closed
	// and allowing.
	b.CancelProbe()
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("CancelProbe on a closed breaker must be a no-op")
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must allow")
	}
	b.Success()
	b.CancelProbe()
	b.Failure(errors.New("x"))
	if b.State() != BreakerClosed || b.ConsecutiveFailures() != 0 || b.LastError() != "" {
		t.Fatal("nil breaker must look closed and empty")
	}
}

func TestGateLimitsAndSheds(t *testing.T) {
	g := NewGate(2, 1)

	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// One waiter fits in the queue...
	acquired := make(chan func(), 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		acquired <- r
	}()
	waitFor(t, func() bool { return g.QueueDepth() == 1 })

	// ...the next arrival is shed immediately.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if got := g.Shed(); got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}

	// Releasing a slot admits the waiter.
	r1()
	r3 := <-acquired
	if got := g.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth = %d, want 0", got)
	}
	r2()
	r3()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	if got := g.Admitted(); got != 3 {
		t.Fatalf("Admitted = %d, want 3", got)
	}
}

func TestGateWaiterRespectsContext(t *testing.T) {
	g := NewGate(1, 4)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if got := g.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth after abandoned wait = %d, want 0", got)
	}
	// An abandoned wait is not a shed: the server did not refuse it.
	if got := g.Shed(); got != 0 {
		t.Fatalf("Shed = %d, want 0", got)
	}
}

// TestGateRejectsExpiredContext: a request whose context is already dead
// must be rejected up front, not admitted into a slot the handler would
// immediately abandon.
func TestGateRejectsExpiredContext(t *testing.T) {
	g := NewGate(1, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if g.InFlight() != 0 || g.Admitted() != 0 {
		t.Fatalf("expired request consumed a slot: inflight=%d admitted=%d", g.InFlight(), g.Admitted())
	}
	// An expired request is not a shed: the server did not refuse it.
	if got := g.Shed(); got != 0 {
		t.Fatalf("Shed = %d, want 0", got)
	}
}

func TestGateNilUnlimited(t *testing.T) {
	var g *Gate
	for i := 0; i < 100; i++ {
		release, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if NewGate(0, 5) != nil {
		t.Fatal("limit <= 0 must build a nil (unlimited) gate")
	}
}

func TestGateConcurrentStress(t *testing.T) {
	g := NewGate(4, 64)
	var wg sync.WaitGroup
	var peak sync.Mutex
	maxSeen := int64(0)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			if n := g.InFlight(); n > 4 {
				peak.Lock()
				if n > maxSeen {
					maxSeen = n
				}
				peak.Unlock()
			}
			release()
		}()
	}
	wg.Wait()
	if maxSeen > 4 {
		t.Fatalf("in-flight peaked at %d, want <= 4", maxSeen)
	}
	if g.InFlight() != 0 || g.QueueDepth() != 0 {
		t.Fatalf("gate not drained: inflight=%d queue=%d", g.InFlight(), g.QueueDepth())
	}
}

func TestBackoffDelays(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	// Deterministic midpoint without an rng: 3/4 of the exponential step.
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 7500 * time.Microsecond},
		{1, 15 * time.Millisecond},
		{2, 30 * time.Millisecond},
		{3, 60 * time.Millisecond},
		{4, 60 * time.Millisecond}, // capped at Max
		{9, 60 * time.Millisecond},
	}
	for _, c := range cases {
		if got := b.Delay(c.attempt, nil); got != c.want {
			t.Fatalf("Delay(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
	// Jittered delays stay within [d/2, d) and are deterministic per seed.
	rng := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 8; attempt++ {
		d := b.Delay(attempt, rng)
		step := b.Delay(attempt, nil) * 4 / 3
		if d < step/2 || d >= step {
			t.Fatalf("jittered Delay(%d) = %v outside [%v, %v)", attempt, d, step/2, step)
		}
	}
	a := Backoff{Base: time.Millisecond, Max: time.Second}.Delay(3, rand.New(rand.NewSource(42)))
	bb := Backoff{Base: time.Millisecond, Max: time.Second}.Delay(3, rand.New(rand.NewSource(42)))
	if a != bb {
		t.Fatalf("same seed gave different delays: %v vs %v", a, bb)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

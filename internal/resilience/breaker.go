// Package resilience holds the serving tier's fault-handling primitives:
// a circuit breaker (detect a persistently failing dependency and stop
// hammering it), a bounded-concurrency admission gate (shed load instead
// of collapsing under it), and jittered exponential backoff (retry without
// synchronized thundering herds). Everything is dependency-free,
// allocation-free on the hot path, and nil-safe — a nil *Breaker admits
// everything and a nil *Gate bounds nothing, so call sites need no
// "is resilience configured?" branching.
package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed is the healthy state: every call is allowed.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen follows the cool-off: one probe is allowed through;
	// its outcome decides between closed and open.
	BreakerHalfOpen
	// BreakerOpen is the tripped state: calls are rejected without touching
	// the dependency until the cool-off elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// BreakerOptions configures a Breaker; zero values select the defaults.
type BreakerOptions struct {
	// Threshold is how many consecutive failures trip the breaker
	// (default 5). A single success resets the count.
	Threshold int
	// Cooloff is how long the breaker stays open before allowing a
	// half-open probe (default 5s).
	Cooloff time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// OnChange, when non-nil, observes every state transition. It is called
	// under the breaker's lock — it must be fast and must not call back into
	// the breaker (logging and counter bumps are fine).
	OnChange func(from, to BreakerState)
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Threshold <= 0 {
		o.Threshold = 5
	}
	if o.Cooloff <= 0 {
		o.Cooloff = 5 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Breaker is a consecutive-failure circuit breaker. Callers ask Allow
// before touching the protected dependency and report the outcome with
// Success or Failure; after Threshold consecutive failures the breaker
// opens and Allow rejects until Cooloff elapses, then one half-open probe
// decides whether to close again. All methods are safe for concurrent use
// and nil-safe (a nil breaker is always closed).
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	lastErr  string

	trips, recoveries int64
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(opts BreakerOptions) *Breaker {
	return &Breaker{opts: opts.withDefaults()}
}

// Allow reports whether a call may proceed. In the open state it returns
// false until the cool-off elapses, then transitions to half-open and
// grants exactly one probe; further calls are rejected until the probe
// reports its outcome.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.opts.Now().Sub(b.openedAt) < b.opts.Cooloff {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a call that completed: the failure streak resets and a
// half-open (or open) breaker closes.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.lastErr = ""
	if b.state != BreakerClosed {
		b.recoveries++
		b.transition(BreakerClosed)
	}
}

// CancelProbe releases an admission that never reached the dependency:
// the caller got true from Allow but the work it was admitted for vanished
// before any call was made (nothing left to do, target busy), so neither
// Success nor Failure applies. In the half-open state this frees the
// single probe slot for the next caller; in any other state it is a
// no-op. Every Allow()=true must be resolved by exactly one of Success,
// Failure, or CancelProbe — an unresolved half-open probe wedges the
// breaker half-open forever.
func (b *Breaker) CancelProbe() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// Failure reports a failed call. A half-open probe failure re-opens
// immediately; in the closed state the Threshold-th consecutive failure
// trips the breaker.
func (b *Breaker) Failure(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if err != nil {
		b.lastErr = err.Error()
	}
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.openedAt = b.opts.Now()
		b.trips++
		b.transition(BreakerOpen)
	case BreakerClosed:
		if b.failures >= b.opts.Threshold {
			b.openedAt = b.opts.Now()
			b.trips++
			b.transition(BreakerOpen)
		}
	}
}

// transition moves to a new state, notifying OnChange; callers hold b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	if b.opts.OnChange != nil && from != to {
		b.opts.OnChange(from, to)
	}
}

// State returns the current position. An open breaker keeps reporting open
// past its cool-off until a probe actually runs — Allow, not the clock,
// performs the half-open transition.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counters returns how many times the breaker tripped open and how many
// times it recovered to closed.
func (b *Breaker) Counters() (trips, recoveries int64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.recoveries
}

// ConsecutiveFailures returns the current failure streak.
func (b *Breaker) ConsecutiveFailures() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures
}

// LastError returns the message of the most recent failure ("" after a
// success or before any failure).
func (b *Breaker) LastError() string {
	if b == nil {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}

package resilience

import (
	"math/rand"
	"time"
)

// Backoff computes jittered exponential retry delays: attempt n (0-based)
// sleeps for Base<<n capped at Max, with full jitter on the upper half so
// independent retriers decorrelate instead of stampeding in lockstep.
type Backoff struct {
	// Base is the attempt-0 delay (default 10ms).
	Base time.Duration
	// Max caps the uncapped exponential (default 2s).
	Max time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Max < b.Base {
		b.Max = b.Base
	}
	return b
}

// Delay returns the sleep before retry `attempt` (0-based). With a non-nil
// rng the delay is drawn uniformly from [d/2, d); with nil rng it is the
// deterministic midpoint 3d/4. The rng, when shared, must be externally
// synchronized by the caller.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	if rng == nil {
		return half + half/2
	}
	return half + time.Duration(rng.Int63n(int64(half)))
}

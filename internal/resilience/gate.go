package resilience

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSaturated is returned by Gate.Acquire when both the concurrency limit
// and the wait queue are full; callers should shed the request (HTTP 429).
var ErrSaturated = errors.New("resilience: saturated")

// Gate is a bounded-concurrency admission gate: at most `limit` callers run
// at once, at most `queueLimit` more wait for a slot, and everyone beyond
// that is shed immediately with ErrSaturated. Waiting respects the caller's
// context. A nil gate admits everything; all methods are nil-safe.
type Gate struct {
	tokens     chan struct{}
	queueLimit int64

	waiting  atomic.Int64
	inflight atomic.Int64
	shed     atomic.Int64
	admitted atomic.Int64
}

// NewGate builds a gate admitting `limit` concurrent holders with up to
// `queueLimit` waiters (0 = shed as soon as all slots are busy). A
// non-positive limit returns nil: unlimited admission.
func NewGate(limit, queueLimit int) *Gate {
	if limit <= 0 {
		return nil
	}
	if queueLimit < 0 {
		queueLimit = 0
	}
	return &Gate{
		tokens:     make(chan struct{}, limit),
		queueLimit: int64(queueLimit),
	}
}

// Acquire claims a slot, waiting in the bounded queue if all slots are
// busy. It returns a release func (never nil on success) that must be
// called exactly once, or an error: ErrSaturated when the queue is full,
// or ctx.Err() if the context is already expired or expires while
// waiting.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	// A dead request must not occupy a slot: without this check the
	// fast-path select below could admit it before the handler ever looks
	// at ctx.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case g.tokens <- struct{}{}:
		// Fast path: a slot was free.
	default:
		if g.waiting.Add(1) > g.queueLimit {
			g.waiting.Add(-1)
			g.shed.Add(1)
			return nil, ErrSaturated
		}
		select {
		case g.tokens <- struct{}{}:
			g.waiting.Add(-1)
		case <-ctx.Done():
			g.waiting.Add(-1)
			return nil, ctx.Err()
		}
	}
	g.inflight.Add(1)
	g.admitted.Add(1)
	return func() {
		g.inflight.Add(-1)
		<-g.tokens
	}, nil
}

// InFlight returns how many admitted callers currently hold a slot.
func (g *Gate) InFlight() int64 {
	if g == nil {
		return 0
	}
	return g.inflight.Load()
}

// QueueDepth returns how many callers are waiting for a slot.
func (g *Gate) QueueDepth() int64 {
	if g == nil {
		return 0
	}
	return g.waiting.Load()
}

// Shed returns how many callers were rejected with ErrSaturated.
func (g *Gate) Shed() int64 {
	if g == nil {
		return 0
	}
	return g.shed.Load()
}

// Admitted returns how many callers have been admitted in total.
func (g *Gate) Admitted() int64 {
	if g == nil {
		return 0
	}
	return g.admitted.Load()
}

package inference

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/predicate"
	"repro/internal/product"
	"repro/internal/relation"
	"repro/internal/sample"
)

func randInstance(rng *rand.Rand, nR, nP, vals int) *relation.Instance {
	r := relation.NewRelation(relation.MustSchema("R", "A", "B"))
	for i := 0; i < nR; i++ {
		r.MustAddTuple(strconv.Itoa(rng.Intn(vals)), strconv.Itoa(rng.Intn(vals)))
	}
	p := relation.NewRelation(relation.MustSchema("P", "C", "D"))
	for i := 0; i < nP; i++ {
		p.MustAddTuple(strconv.Itoa(rng.Intn(vals)), strconv.Itoa(rng.Intn(vals)))
	}
	return relation.MustInstance(r, p)
}

func randTuples(rng *rand.Rand, n, arity, vals int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		t := make(relation.Tuple, arity)
		for k := range t {
			t[k] = strconv.Itoa(rng.Intn(vals))
		}
		out[i] = t
	}
	return out
}

// rebuildReplay builds a fresh engine on inst (with its classes) and
// replays the surviving examples of the maintained engine, labeling by
// class identity (theta).
func rebuildReplay(t *testing.T, inst *relation.Instance, cs []*product.Class, examples []sample.Example) *Engine {
	t.Helper()
	fresh := New(inst, WithClasses(cs))
	byKey := make(map[string]int, len(cs))
	for ci, c := range cs {
		byKey[c.Theta.Key()] = ci
	}
	for _, ex := range examples {
		ci, ok := byKey[ex.Theta.Key()]
		if !ok {
			t.Fatalf("surviving example's class %v missing after delta", ex.Theta)
		}
		if err := fresh.Label(ci, ex.Label); err != nil {
			t.Fatalf("replaying example on rebuilt engine: %v", err)
		}
	}
	return fresh
}

func enginesEqual(t *testing.T, tag string, got, want *Engine) {
	t.Helper()
	if len(got.Classes()) != len(want.Classes()) {
		t.Fatalf("%s: %d classes vs %d", tag, len(got.Classes()), len(want.Classes()))
	}
	for ci := range got.Classes() {
		if got.Informative(ci) != want.Informative(ci) {
			t.Fatalf("%s: class %d informative=%v, rebuilt says %v", tag, ci, got.Informative(ci), want.Informative(ci))
		}
		if got.IsLabeled(ci) != want.IsLabeled(ci) {
			t.Fatalf("%s: class %d labeled=%v, rebuilt says %v", tag, ci, got.IsLabeled(ci), want.IsLabeled(ci))
		}
	}
	if got.NumInformative() != want.NumInformative() {
		t.Fatalf("%s: infCount %d vs %d", tag, got.NumInformative(), want.NumInformative())
	}
	if !got.TPos().Equal(want.TPos()) {
		t.Fatalf("%s: T(S+) %v vs %v", tag, got.TPos(), want.TPos())
	}
	if got.Done() != want.Done() {
		t.Fatalf("%s: Done %v vs %v", tag, got.Done(), want.Done())
	}
}

// TestEngineApplyDeltaDifferential interleaves oracle-driven labeling with
// random deltas and checks the maintained engine is state-identical to one
// rebuilt from scratch at every version.
func TestEngineApplyDeltaDifferential(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := randInstance(rng, 4+rng.Intn(4), 4+rng.Intn(4), 2+rng.Intn(3))
		u := predicate.NewUniverse(inst)
		classes := product.ClassesIndexed(inst, u)
		e := New(inst, WithClasses(classes))

		// A fixed goal predicate keeps every answer consistent across
		// deltas: pick a random class's theta.
		goal := classes[rng.Intn(len(classes))].Theta

		for step := 0; step < 10; step++ {
			// Answer a couple of informative classes.
			for q := 0; q < 2 && !e.Done(); q++ {
				inf := e.InformativeClasses()
				ci := inf[rng.Intn(len(inf))]
				l := sample.Negative
				if goal.MoreGeneralThan(e.Classes()[ci].Theta) {
					l = sample.Positive
				}
				if err := e.Label(ci, l); err != nil {
					t.Fatalf("seed %d step %d: label: %v", seed, step, err)
				}
			}
			// Apply a random delta.
			var d relation.Delta
			d.InsertR = randTuples(rng, rng.Intn(2), 2, 3)
			d.InsertP = randTuples(rng, rng.Intn(2), 2, 3)
			if rng.Intn(2) == 0 {
				for ri := 0; ri < inst.R.Len() && len(d.DeleteR) == 0; ri++ {
					if inst.RAlive(ri) && rng.Intn(4) == 0 && inst.LiveR() > 1 {
						d.DeleteR = append(d.DeleteR, ri)
					}
				}
				for pi := 0; pi < inst.P.Len() && len(d.DeleteP) == 0; pi++ {
					if inst.PAlive(pi) && rng.Intn(4) == 0 && inst.LiveP() > 1 {
						d.DeleteP = append(d.DeleteP, pi)
					}
				}
			}
			next, err := inst.ApplyDelta(d)
			if err != nil {
				t.Fatalf("seed %d step %d: relation apply: %v", seed, step, err)
			}
			dr, err := product.ApplyDelta(inst, next, u, e.Classes(), d)
			if err != nil {
				t.Fatalf("seed %d step %d: product apply: %v", seed, step, err)
			}
			if _, err := e.ApplyDelta(next, dr); err != nil {
				t.Fatalf("seed %d step %d: engine apply: %v", seed, step, err)
			}
			want := rebuildReplay(t, next, dr.Classes, e.Sample().Examples())
			enginesEqual(t, "after delta", e, want)
			inst, classes = next, dr.Classes
		}
	}
}

// Package inference implements the paper's core contribution: the
// characterization of certain/uninformative tuples (Section 3.4) and the
// general interactive inference algorithm (Algorithm 1, Section 4.1).
//
// The engine works on T-classes of the Cartesian product (package product):
// tuples with equal most specific predicate T(t) are interchangeable for
// inference, so certainty, informativeness and strategy decisions are all
// per class. An Engine holds the evolving sample and answers the PTIME
// membership tests of Theorem 3.5:
//
//	t ∈ Cert+(S) ⇔ T(S+) ⊆ T(t)                      (Lemma 3.3)
//	t ∈ Cert−(S) ⇔ ∃t'∈S−: T(S+) ∩ T(t) ⊆ T(t')      (Lemma 3.4)
//
// and a tuple is informative iff it is unlabeled and in neither set
// (Lemma 3.2 equates uninformative and certain examples).
package inference

import (
	"errors"
	"fmt"

	"repro/internal/predicate"
	"repro/internal/product"
	"repro/internal/relation"
	"repro/internal/sample"
)

// ErrInconsistent is returned when the user's labels admit no consistent
// join predicate (lines 6–7 of Algorithm 1); with an honest user it never
// occurs.
var ErrInconsistent = errors.New("inference: sample is inconsistent with every equijoin predicate")

// Engine is the inference state for one instance: its T-classes, the
// current sample, and per-class labeling bookkeeping.
type Engine struct {
	Inst    *relation.Instance
	U       *predicate.Universe
	classes []*product.Class

	s       *sample.Sample
	labeled []int8 // 0 unlabeled, 1 positive, 2 negative (per class)
	negs    []predicate.Pred
}

// Option configures engine construction.
type Option func(*options)

type options struct {
	classes []*product.Class
}

// WithClasses supplies precomputed T-classes (e.g. shared across runs with
// different goals); by default the engine computes them with the indexed
// scan.
func WithClasses(cs []*product.Class) Option {
	return func(o *options) { o.classes = cs }
}

// New builds an engine for the instance.
func New(inst *relation.Instance, opts ...Option) *Engine {
	var o options
	for _, f := range opts {
		f(&o)
	}
	u := predicate.NewUniverse(inst)
	cs := o.classes
	if cs == nil {
		cs = product.ClassesIndexed(inst, u)
	}
	return &Engine{
		Inst:    inst,
		U:       u,
		classes: cs,
		s:       sample.New(u),
		labeled: make([]int8, len(cs)),
	}
}

// Classes returns the T-classes in the engine's deterministic order. The
// slice is shared; callers must not mutate it.
func (e *Engine) Classes() []*product.Class { return e.classes }

// Sample returns the current sample (shared, read-only for callers).
func (e *Engine) Sample() *sample.Sample { return e.s }

// TPos returns T(S+), Ω while no positive example exists.
func (e *Engine) TPos() predicate.Pred { return e.s.TPos() }

// Negatives returns the T values of negative examples (shared slice).
func (e *Engine) Negatives() []predicate.Pred { return e.negs }

// IsLabeled reports whether class ci has been labeled.
func (e *Engine) IsLabeled(ci int) bool { return e.labeled[ci] != 0 }

// CertainPositive reports whether the tuples of class ci are certain to be
// selected by every predicate consistent with the current sample.
func (e *Engine) CertainPositive(ci int) bool {
	return CertainPositive(e.s.TPos(), e.classes[ci].Theta)
}

// CertainNegative reports whether the tuples of class ci are certain to be
// rejected by every predicate consistent with the current sample.
func (e *Engine) CertainNegative(ci int) bool {
	return CertainNegative(e.s.TPos(), e.negs, e.classes[ci].Theta)
}

// Informative reports whether labeling class ci would shrink the set of
// consistent predicates (Theorem 3.5: decidable in PTIME).
func (e *Engine) Informative(ci int) bool {
	if e.labeled[ci] != 0 {
		return false
	}
	return !e.CertainPositive(ci) && !e.CertainNegative(ci)
}

// InformativeClasses returns the indexes of all informative classes, in
// class order.
func (e *Engine) InformativeClasses() []int {
	var out []int
	for ci := range e.classes {
		if e.Informative(ci) {
			out = append(out, ci)
		}
	}
	return out
}

// Done reports the halt condition Γ: no informative tuple remains, i.e.
// exactly one predicate is consistent up to instance equivalence.
func (e *Engine) Done() bool {
	for ci := range e.classes {
		if e.Informative(ci) {
			return false
		}
	}
	return true
}

// Label records the user's label for (the representative of) class ci. It
// returns ErrInconsistent if the resulting sample admits no consistent
// predicate.
func (e *Engine) Label(ci int, l sample.Label) error {
	if ci < 0 || ci >= len(e.classes) {
		return fmt.Errorf("inference: class index %d out of range", ci)
	}
	if e.labeled[ci] != 0 {
		return fmt.Errorf("inference: class %d already labeled", ci)
	}
	c := e.classes[ci]
	e.s.Add(sample.Example{RI: c.RI, PI: c.PI, Theta: c.Theta, Label: l})
	if l == sample.Positive {
		e.labeled[ci] = 1
	} else {
		e.labeled[ci] = 2
		e.negs = append(e.negs, c.Theta)
	}
	if !e.s.Consistent() {
		return ErrInconsistent
	}
	return nil
}

// Result returns the inferred predicate T(S+): the most specific predicate
// consistent with the sample, instance-equivalent to the user's goal once
// Done() holds (Section 3.3). With no positive examples this is Ω, exactly
// as the paper prescribes for empty goal joins.
func (e *Engine) Result() predicate.Pred { return e.s.TPos().Clone() }

// CertainPositive is the stateless Lemma 3.3 test: under positive knowledge
// tpos = T(S+), a tuple with most specific predicate theta is certainly
// selected iff tpos ⊆ theta.
func CertainPositive(tpos, theta predicate.Pred) bool {
	return tpos.MoreGeneralThan(theta)
}

// CertainNegative is the stateless Lemma 3.4 test: a tuple with most
// specific predicate theta is certainly rejected iff some negative example
// t' satisfies T(S+) ∩ theta ⊆ T(t').
func CertainNegative(tpos predicate.Pred, negs []predicate.Pred, theta predicate.Pred) bool {
	inter := tpos.Intersect(theta)
	for _, n := range negs {
		if inter.MoreGeneralThan(n) {
			return true
		}
	}
	return false
}

// CertainUnder reports whether a class is certain (either sign) under
// hypothetical knowledge (tpos, negs); used by lookahead strategies to
// evaluate what-if labelings without mutating the engine.
func CertainUnder(tpos predicate.Pred, negs []predicate.Pred, theta predicate.Pred) bool {
	return CertainPositive(tpos, theta) || CertainNegative(tpos, negs, theta)
}

// Package inference implements the paper's core contribution: the
// characterization of certain/uninformative tuples (Section 3.4) and the
// general interactive inference algorithm (Algorithm 1, Section 4.1).
//
// The engine works on T-classes of the Cartesian product (package product):
// tuples with equal most specific predicate T(t) are interchangeable for
// inference, so certainty, informativeness and strategy decisions are all
// per class. An Engine holds the evolving sample and answers the PTIME
// membership tests of Theorem 3.5:
//
//	t ∈ Cert+(S) ⇔ T(S+) ⊆ T(t)                      (Lemma 3.3)
//	t ∈ Cert−(S) ⇔ ∃t'∈S−: T(S+) ∩ T(t) ⊆ T(t')      (Lemma 3.4)
//
// and a tuple is informative iff it is unlabeled and in neither set
// (Lemma 3.2 equates uninformative and certain examples).
package inference

import (
	"errors"
	"fmt"

	"repro/internal/predicate"
	"repro/internal/product"
	"repro/internal/relation"
	"repro/internal/sample"
)

// ErrInconsistent is returned when the user's labels admit no consistent
// join predicate (lines 6–7 of Algorithm 1); with an honest user it never
// occurs.
var ErrInconsistent = errors.New("inference: sample is inconsistent with every equijoin predicate")

// Engine is the inference state for one instance: its T-classes, the
// current sample, and per-class labeling bookkeeping.
//
// Certainty is cached incrementally: under any sample extension a class
// that is certain stays certain (T(S+) only shrinks, so the Lemma 3.3 and
// 3.4 conditions are monotone in the sample — consistency is not even
// required). Each Label therefore re-examines only the classes still
// informative, restricted to what the label can flip: a negative example
// leaves T(S+) unchanged, so only the one new Lemma 3.4 witness is tested.
// This makes Done O(1) and Informative O(1) instead of O(|negs|) scans
// with an allocation per class per call.
type Engine struct {
	Inst    *relation.Instance
	U       *predicate.Universe
	classes []*product.Class

	s       *sample.Sample
	labeled []int8 // 0 unlabeled, 1 positive, 2 negative (per class)
	negs    []predicate.Pred

	// settled[ci] records that class ci is labeled or certain (either
	// sign); monotone, so it never reverts. infCount counts the zeros.
	settled  []bool
	infCount int
	// infScratch backs InformativeClasses; inter is the intersection
	// scratch of the incremental certainty sweeps.
	infScratch []int
	inter      predicate.Pred
}

// Option configures engine construction.
type Option func(*options)

type options struct {
	classes []*product.Class
}

// WithClasses supplies precomputed T-classes (e.g. shared across runs with
// different goals); by default the engine computes them with the indexed
// scan.
func WithClasses(cs []*product.Class) Option {
	return func(o *options) { o.classes = cs }
}

// New builds an engine for the instance.
func New(inst *relation.Instance, opts ...Option) *Engine {
	var o options
	for _, f := range opts {
		f(&o)
	}
	u := predicate.NewUniverse(inst)
	cs := o.classes
	if cs == nil {
		cs = product.ClassesIndexed(inst, u)
	}
	e := &Engine{
		Inst:    inst,
		U:       u,
		classes: cs,
		s:       sample.New(u),
		labeled: make([]int8, len(cs)),
		settled: make([]bool, len(cs)),
	}
	// Initial certainty: with no negatives, only Lemma 3.3 can settle a
	// class, and T(S+) = Ω, so exactly the classes with Theta = Ω start
	// certain (their tuples are selected by every predicate).
	tpos := e.s.TPos()
	for ci, c := range cs {
		if CertainPositive(tpos, c.Theta) {
			e.settled[ci] = true
		} else {
			e.infCount++
		}
	}
	return e
}

// Classes returns the T-classes in the engine's deterministic order. The
// slice is shared; callers must not mutate it.
func (e *Engine) Classes() []*product.Class { return e.classes }

// Sample returns the current sample (shared, read-only for callers).
func (e *Engine) Sample() *sample.Sample { return e.s }

// TPos returns T(S+), Ω while no positive example exists.
func (e *Engine) TPos() predicate.Pred { return e.s.TPos() }

// Negatives returns the T values of negative examples (shared slice).
func (e *Engine) Negatives() []predicate.Pred { return e.negs }

// IsLabeled reports whether class ci has been labeled.
func (e *Engine) IsLabeled(ci int) bool { return e.labeled[ci] != 0 }

// CertainPositive reports whether the tuples of class ci are certain to be
// selected by every predicate consistent with the current sample.
func (e *Engine) CertainPositive(ci int) bool {
	return CertainPositive(e.s.TPos(), e.classes[ci].Theta)
}

// CertainNegative reports whether the tuples of class ci are certain to be
// rejected by every predicate consistent with the current sample.
func (e *Engine) CertainNegative(ci int) bool {
	return CertainNegative(e.s.TPos(), e.negs, e.classes[ci].Theta)
}

// Informative reports whether labeling class ci would shrink the set of
// consistent predicates (Theorem 3.5: decidable in PTIME). Served from the
// incrementally maintained certainty cache in O(1).
func (e *Engine) Informative(ci int) bool {
	return !e.settled[ci]
}

// InformativeClasses returns the indexes of all informative classes, in
// class order. The returned slice is a scratch buffer owned by the engine:
// it is valid until the next InformativeClasses or Label call and must not
// be mutated or retained across either.
func (e *Engine) InformativeClasses() []int {
	e.infScratch = e.infScratch[:0]
	for ci, done := range e.settled {
		if !done {
			e.infScratch = append(e.infScratch, ci)
		}
	}
	return e.infScratch
}

// NumInformative returns the number of informative classes in O(1).
func (e *Engine) NumInformative() int { return e.infCount }

// Done reports the halt condition Γ: no informative tuple remains, i.e.
// exactly one predicate is consistent up to instance equivalence. O(1).
func (e *Engine) Done() bool { return e.infCount == 0 }

// Label records the user's label for (the representative of) class ci. It
// returns ErrInconsistent if the resulting sample admits no consistent
// predicate.
func (e *Engine) Label(ci int, l sample.Label) error {
	if ci < 0 || ci >= len(e.classes) {
		return fmt.Errorf("inference: class index %d out of range", ci)
	}
	if e.labeled[ci] != 0 {
		return fmt.Errorf("inference: class %d already labeled", ci)
	}
	c := e.classes[ci]
	e.s.Add(sample.Example{RI: c.RI, PI: c.PI, Theta: c.Theta, Label: l})
	if l == sample.Positive {
		e.labeled[ci] = 1
	} else {
		e.labeled[ci] = 2
		e.negs = append(e.negs, c.Theta)
	}
	e.settle(ci)
	if l == sample.Positive {
		e.sweepPositive()
	} else {
		e.sweepNegative(c.Theta)
	}
	if !e.s.Consistent() {
		return ErrInconsistent
	}
	return nil
}

// settle marks class ci uninformative if it was not already.
func (e *Engine) settle(ci int) {
	if !e.settled[ci] {
		e.settled[ci] = true
		e.infCount--
	}
}

// sweepPositive re-examines the still-informative classes after a positive
// example shrank T(S+): both lemmas can newly fire, so the full certainty
// test runs — but only over informative classes, with the intersection in
// scratch.
func (e *Engine) sweepPositive() {
	tpos := e.s.TPos()
	for ci, done := range e.settled {
		if done {
			continue
		}
		th := e.classes[ci].Theta
		if CertainPositive(tpos, th) || e.certainNegativeScratch(tpos, th) {
			e.settle(ci)
		}
	}
}

// certainNegativeScratch is CertainNegative with the intersection computed
// into the engine's scratch predicate instead of a fresh allocation.
func (e *Engine) certainNegativeScratch(tpos, theta predicate.Pred) bool {
	predicate.IntersectInto(&e.inter, tpos, theta)
	for _, n := range e.negs {
		if e.inter.MoreGeneralThan(n) {
			return true
		}
	}
	return false
}

// sweepNegative re-examines the still-informative classes after a negative
// example: T(S+) is unchanged, so Lemma 3.3 cannot newly fire and Lemma 3.4
// needs testing against the one new witness only — O(1) per class.
func (e *Engine) sweepNegative(newNeg predicate.Pred) {
	tpos := e.s.TPos()
	for ci, done := range e.settled {
		if done {
			continue
		}
		predicate.IntersectInto(&e.inter, tpos, e.classes[ci].Theta)
		if e.inter.MoreGeneralThan(newNeg) {
			e.settle(ci)
		}
	}
}

// Result returns the inferred predicate T(S+): the most specific predicate
// consistent with the sample, instance-equivalent to the user's goal once
// Done() holds (Section 3.3). With no positive examples this is Ω, exactly
// as the paper prescribes for empty goal joins.
func (e *Engine) Result() predicate.Pred { return e.s.TPos().Clone() }

// CertainPositive is the stateless Lemma 3.3 test: under positive knowledge
// tpos = T(S+), a tuple with most specific predicate theta is certainly
// selected iff tpos ⊆ theta.
func CertainPositive(tpos, theta predicate.Pred) bool {
	return tpos.MoreGeneralThan(theta)
}

// CertainNegative is the stateless Lemma 3.4 test: a tuple with most
// specific predicate theta is certainly rejected iff some negative example
// t' satisfies T(S+) ∩ theta ⊆ T(t').
func CertainNegative(tpos predicate.Pred, negs []predicate.Pred, theta predicate.Pred) bool {
	inter := tpos.Intersect(theta)
	for _, n := range negs {
		if inter.MoreGeneralThan(n) {
			return true
		}
	}
	return false
}

// CertainUnder reports whether a class is certain (either sign) under
// hypothetical knowledge (tpos, negs); used by lookahead strategies to
// evaluate what-if labelings without mutating the engine.
func CertainUnder(tpos predicate.Pred, negs []predicate.Pred, theta predicate.Pred) bool {
	return CertainPositive(tpos, theta) || CertainNegative(tpos, negs, theta)
}

// CertainUnderWith is CertainUnder with the Lemma 3.4 intersection computed
// into the caller-provided scratch predicate, so repeated hypothetical
// tests (e.g. the batch pairwise-informativeness scan) allocate nothing.
func CertainUnderWith(inter *predicate.Pred, tpos predicate.Pred, negs []predicate.Pred, theta predicate.Pred) bool {
	if CertainPositive(tpos, theta) {
		return true
	}
	predicate.IntersectInto(inter, tpos, theta)
	for _, n := range negs {
		if inter.MoreGeneralThan(n) {
			return true
		}
	}
	return false
}

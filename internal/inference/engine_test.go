package inference

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/relation"
	"repro/internal/sample"
)

// classIndexFor returns the engine's class index for product tuple (ri,pi).
func classIndexFor(e *Engine, ri, pi int) int {
	theta := predicate.T(e.U, e.Inst.R.Tuples[ri], e.Inst.P.Tuples[pi])
	for ci, c := range e.Classes() {
		if c.Theta.Equal(theta) {
			return ci
		}
	}
	return -1
}

func mustLabel(t *testing.T, e *Engine, ri, pi int, l sample.Label) {
	t.Helper()
	ci := classIndexFor(e, ri, pi)
	if ci < 0 {
		t.Fatalf("no class for tuple (%d,%d)", ri, pi)
	}
	if err := e.Label(ci, l); err != nil {
		t.Fatalf("Label(%d,%d,%v): %v", ri, pi, l, err)
	}
}

// TestUninformativeSection34 replays the example of Section 3.4: with goal
// θG = {(A2,B3)} and S = {((t2,t2'),+), ((t1,t3'),−)}, the examples
// ((t4,t1'),+) and ((t2,t1'),−) are uninformative.
func TestUninformativeSection34(t *testing.T) {
	inst := paperdata.Example21()
	e := New(inst)
	mustLabel(t, e, 1, 1, sample.Positive) // (t2,t2')
	mustLabel(t, e, 0, 2, sample.Negative) // (t1,t3')

	// (t4,t1') must be certain-positive: T(S+) = {(A1,B1),(A2,B3)} ⊆
	// T(t4,t1') = {(A1,B1),(A1,B2),(A2,B3)}.
	ci := classIndexFor(e, 3, 0)
	if !e.CertainPositive(ci) {
		t.Error("(t4,t1') should be certain positive")
	}
	if e.Informative(ci) {
		t.Error("(t4,t1') should be uninformative")
	}
	// (t2,t1') must be certain-negative: T(S+) ∩ T(t2,t1') = ∅ ⊆ T(t1,t3')?
	// T(t2,t1') = {(A1,B3)}, T(S+) ∩ it = ∅ ⊆ any negative — certain.
	cj := classIndexFor(e, 1, 0)
	if !e.CertainNegative(cj) {
		t.Error("(t2,t1') should be certain negative")
	}
	if e.Informative(cj) {
		t.Error("(t2,t1') should be uninformative")
	}
}

// TestUninformativeSection44 replays the larger walkthrough of Section 4.4:
// S = {((t1,t3'),+), ((t3,t1'),−)} leaves exactly five informative tuples.
func TestUninformativeSection44(t *testing.T) {
	inst := paperdata.Example21()
	e := New(inst)
	mustLabel(t, e, 0, 2, sample.Positive) // (t1,t3')
	mustLabel(t, e, 2, 0, sample.Negative) // (t3,t1')

	// Uninf(S) = {(t2,t3')+, (t1,t2')−, (t2,t2')−, (t3,t3')−, (t4,t3')−}.
	wantUninf := map[[2]int]bool{
		{1, 2}: true, {0, 1}: true, {1, 1}: true, {2, 2}: true, {3, 2}: true,
	}
	wantInf := map[[2]int]bool{
		{0, 0}: true, {1, 0}: true, {2, 1}: true, {3, 0}: true, {3, 1}: true,
	}
	for ri := 0; ri < 4; ri++ {
		for pi := 0; pi < 3; pi++ {
			ci := classIndexFor(e, ri, pi)
			got := e.Informative(ci)
			switch {
			case wantUninf[[2]int{ri, pi}] && got:
				t.Errorf("(t%d,t%d') should be uninformative", ri+1, pi+1)
			case wantInf[[2]int{ri, pi}] && !got:
				t.Errorf("(t%d,t%d') should be informative", ri+1, pi+1)
			}
		}
	}
	if got := len(e.InformativeClasses()); got != 5 {
		t.Errorf("informative count = %d, want 5", got)
	}
	if e.Done() {
		t.Error("Done() should be false with informative tuples left")
	}
	// The sign of the certainty must match the paper's labels.
	if !e.CertainPositive(classIndexFor(e, 1, 2)) {
		t.Error("(t2,t3') should be certain positive")
	}
	for _, pr := range [][2]int{{0, 1}, {1, 1}, {2, 2}, {3, 2}} {
		if !e.CertainNegative(classIndexFor(e, pr[0], pr[1])) {
			t.Errorf("(t%d,t%d') should be certain negative", pr[0]+1, pr[1]+1)
		}
	}
}

func TestLabelErrors(t *testing.T) {
	inst := paperdata.Example21()
	e := New(inst)
	if err := e.Label(-1, sample.Positive); err == nil {
		t.Error("negative index accepted")
	}
	if err := e.Label(len(e.Classes()), sample.Positive); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := e.Label(0, sample.Positive); err != nil {
		t.Fatalf("first label: %v", err)
	}
	if err := e.Label(0, sample.Negative); err == nil {
		t.Error("double label accepted")
	}
}

func TestInconsistentLabeling(t *testing.T) {
	inst := paperdata.Example21()
	e := New(inst)
	// Label (t1,t2') and (t1,t3') positive: T(S+) = ∅ — then a negative
	// label on anything is inconsistent ((∅ selects everything).
	mustLabel(t, e, 0, 1, sample.Positive)
	mustLabel(t, e, 0, 2, sample.Positive)
	ci := classIndexFor(e, 2, 0)
	if err := e.Label(ci, sample.Negative); err != ErrInconsistent {
		t.Errorf("err = %v, want ErrInconsistent", err)
	}
}

// TestInstanceEquivalentSingleTuple replays Section 3.3: on the one-tuple
// instance, after the single positive label the engine returns
// T(S+) = {(A1,B1),(A2,B1)}, which is instance-equivalent to the goal
// {(A1,B1)}.
func TestInstanceEquivalentSingleTuple(t *testing.T) {
	inst := paperdata.SingleTuple()
	e := New(inst)
	if len(e.Classes()) != 1 {
		t.Fatalf("classes = %d, want 1", len(e.Classes()))
	}
	// The single tuple has T(t) = Ω, so *every* predicate selects it: it is
	// certain positive already under the empty sample and the halt
	// condition holds with zero questions. The returned predicate is the
	// same T(S+) = {(A1,B1),(A2,B1)} the paper's walkthrough obtains after
	// one label.
	if e.Informative(0) {
		t.Fatal("the only tuple is certain positive, hence uninformative")
	}
	if !e.Done() {
		t.Error("Done() should hold immediately")
	}
	want := predicate.MustFromNames(e.U, [2]string{"A1", "B1"}, [2]string{"A2", "B1"})
	if !e.Result().Equal(want) {
		t.Errorf("Result = %v, want %v", e.Result().Format(e.U), want.Format(e.U))
	}
	goal := predicate.MustFromNames(e.U, [2]string{"A1", "B1"})
	// Instance equivalence: same join result on I.
	gj := predicate.Join(inst, e.U, goal)
	rj := predicate.Join(inst, e.U, e.Result())
	if len(gj) != len(rj) {
		t.Error("result not instance-equivalent to goal")
	}
}

// TestAllNegativesYieldsOmega: per Section 3.3, when the user labels
// everything negative the engine returns T(S+) = Ω.
func TestAllNegativesYieldsOmega(t *testing.T) {
	inst := paperdata.Example21()
	e := New(inst)
	for !e.Done() {
		ci := -1
		for i := range e.Classes() {
			if e.Informative(i) {
				ci = i
				break
			}
		}
		if err := e.Label(ci, sample.Negative); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Result().Equal(predicate.Omega(e.U)) {
		t.Errorf("Result = %v, want Ω", e.Result())
	}
}

func TestWithClassesOption(t *testing.T) {
	inst := paperdata.Example21()
	e1 := New(inst)
	e2 := New(inst, WithClasses(e1.Classes()))
	if len(e2.Classes()) != len(e1.Classes()) {
		t.Error("WithClasses not honored")
	}
}

// bruteforceCertain computes Cert±(S) from the definition by enumerating
// C(S) ⊆ P(Ω); ground truth for the Lemma 3.3/3.4 tests.
func bruteforceCertain(e *Engine, theta predicate.Pred) (certPos, certNeg bool) {
	size := e.U.Size()
	certPos, certNeg = true, true
	found := false
	for mask := 0; mask < 1<<uint(size); mask++ {
		var p predicate.Pred
		for b := 0; b < size; b++ {
			if mask&(1<<uint(b)) != 0 {
				p.Set.Add(b)
			}
		}
		if !e.Sample().ConsistentWith(p) {
			continue
		}
		found = true
		if p.MoreGeneralThan(theta) {
			certNeg = false // selected by some consistent predicate
		} else {
			certPos = false
		}
	}
	if !found {
		return false, false // inconsistent sample: not meaningful
	}
	return certPos, certNeg
}

// TestQuickLemma33and34: the PTIME certainty tests agree with brute-force
// enumeration of all consistent predicates on random instances (this is
// simultaneously a test of Lemma 3.2, since brute force computes Cert from
// the C(S) definition).
func TestQuickLemma33and34(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := smallRandomInstance(r)
		e := New(inst)
		// Label a few random classes honestly w.r.t. a random goal.
		goal := randomPred(r, e.U)
		for k := 0; k < 2+r.Intn(3); k++ {
			inf := e.InformativeClasses()
			if len(inf) == 0 {
				break
			}
			ci := inf[r.Intn(len(inf))]
			c := e.Classes()[ci]
			l := sample.Negative
			if goal.Selects(e.U, inst.R.Tuples[c.RI], inst.P.Tuples[c.PI]) {
				l = sample.Positive
			}
			if err := e.Label(ci, l); err != nil {
				return false // honest labels can never be inconsistent
			}
		}
		for ci, c := range e.Classes() {
			wantPos, wantNeg := bruteforceCertain(e, c.Theta)
			if e.CertainPositive(ci) != wantPos {
				return false
			}
			if e.CertainNegative(ci) != wantNeg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func smallRandomInstance(r *rand.Rand) *relation.Instance {
	n := 1 + r.Intn(2)
	m := 1 + r.Intn(2)
	vals := 1 + r.Intn(3)
	ra := make([]string, n)
	for i := range ra {
		ra[i] = "A" + strconv.Itoa(i+1)
	}
	pa := make([]string, m)
	for i := range pa {
		pa[i] = "B" + strconv.Itoa(i+1)
	}
	R := relation.NewRelation(relation.MustSchema("R", ra...))
	P := relation.NewRelation(relation.MustSchema("P", pa...))
	for i := 0; i < 2+r.Intn(3); i++ {
		tr := make(relation.Tuple, n)
		for k := range tr {
			tr[k] = strconv.Itoa(r.Intn(vals))
		}
		R.Tuples = append(R.Tuples, tr)
	}
	for i := 0; i < 2+r.Intn(3); i++ {
		tp := make(relation.Tuple, m)
		for k := range tp {
			tp[k] = strconv.Itoa(r.Intn(vals))
		}
		P.Tuples = append(P.Tuples, tp)
	}
	return relation.MustInstance(R, P)
}

func randomPred(r *rand.Rand, u *predicate.Universe) predicate.Pred {
	var p predicate.Pred
	for id := 0; id < u.Size(); id++ {
		if r.Intn(3) == 0 {
			p.Set.Add(id)
		}
	}
	return p
}

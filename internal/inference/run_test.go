package inference

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/oracle"
	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/sample"
)

// firstInformative is a trivial strategy for engine-level tests (it is in
// fact BU, since classes are sorted by predicate size).
type firstInformative struct{}

func (firstInformative) Name() string { return "first" }
func (firstInformative) Next(e *Engine) int {
	for ci := range e.Classes() {
		if e.Informative(ci) {
			return ci
		}
	}
	return -1
}

// badStrategy returns an out-of-range index.
type badStrategy struct{}

func (badStrategy) Name() string       { return "bad" }
func (badStrategy) Next(e *Engine) int { return 10000 }

// uninformativeStrategy returns a labeled/uninformative class.
type uninformativeStrategy struct{ inner firstInformative }

func (uninformativeStrategy) Name() string { return "uninf" }
func (s uninformativeStrategy) Next(e *Engine) int {
	for ci := range e.Classes() {
		if !e.Informative(ci) {
			return ci
		}
	}
	return s.inner.Next(e)
}

func TestRunInfersGoalEquivalent(t *testing.T) {
	inst := paperdata.Example21()
	e := New(inst)
	goal := predicate.FromPairs(e.U, [2]int{1, 2}) // θG = {(A2,B3)}
	orc := oracle.NewHonest(inst, e.U, goal)
	res, err := Run(e, firstInformative{}, orc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interactions == 0 || res.Interactions > 12 {
		t.Errorf("interactions = %d", res.Interactions)
	}
	// The result must be instance-equivalent to the goal.
	gj := predicate.Join(inst, e.U, goal)
	rj := predicate.Join(inst, e.U, res.Predicate)
	if len(gj) != len(rj) {
		t.Fatalf("result %v not instance-equivalent to goal %v", res.Predicate, goal)
	}
	for i := range gj {
		if gj[i] != rj[i] {
			t.Fatalf("join mismatch at %d", i)
		}
	}
}

func TestRunMaxInteractions(t *testing.T) {
	inst := paperdata.Example21()
	e := New(inst)
	orc := oracle.NewHonest(inst, e.U, predicate.Empty())
	if _, err := Run(e, firstInformative{}, orc, 0); err != nil {
		t.Errorf("unlimited run failed: %v", err)
	}
	e2 := New(inst)
	goal := predicate.FromPairs(e2.U, [2]int{1, 2})
	if _, err := Run(e2, firstInformative{}, oracle.NewHonest(inst, e2.U, goal), 1); err == nil {
		t.Error("1-interaction cap not enforced")
	}
}

func TestRunRejectsBadStrategies(t *testing.T) {
	inst := paperdata.Example21()
	e := New(inst)
	orc := oracle.NewHonest(inst, e.U, predicate.Empty())
	if _, err := Run(e, badStrategy{}, orc, 0); err == nil {
		t.Error("out-of-range strategy index accepted")
	}
	e2 := New(inst)
	e2.Label(0, sample.Positive) // make class 0 labeled (T=∅ → everything certain+... pick another)
	_ = e2
	// Exercise the uninformative-selection guard: after one positive label
	// some classes are certain; uninformativeStrategy picks one.
	e3 := New(inst)
	goal := predicate.FromPairs(e3.U, [2]int{1, 2})
	orc3 := oracle.NewHonest(inst, e3.U, goal)
	// Label the first class manually so an uninformative class exists.
	if err := e3.Label(0, orc3.LabelFor(e3.Classes()[0].RI, e3.Classes()[0].PI)); err != nil {
		t.Fatal(err)
	}
	if !e3.Done() {
		if _, err := Run(e3, uninformativeStrategy{}, orc3, 0); err == nil {
			t.Error("uninformative selection accepted")
		}
	}
}

func TestRunDetectsDishonestUser(t *testing.T) {
	inst := paperdata.Example21()
	e := New(inst)
	goal := predicate.FromPairs(e.U, [2]int{1, 2})
	adv := &oracle.Adversary{
		Honest:    oracle.NewHonest(inst, e.U, goal),
		FlipAfter: 1,
	}
	_, err := Run(e, firstInformative{}, adv, 0)
	if err == nil {
		t.Skip("adversary flip did not force inconsistency on this trace")
	}
	if err != ErrInconsistent {
		t.Errorf("err = %v, want ErrInconsistent", err)
	}
}

// TestQuickRunAlwaysInstanceEquivalent: for random instances and random
// goal predicates, the inference loop terminates within |classes| labels
// and returns a predicate with exactly the goal's join result.
func TestQuickRunAlwaysInstanceEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := smallRandomInstance(r)
		e := New(inst)
		goal := randomPred(r, e.U)
		orc := oracle.NewHonest(inst, e.U, goal)
		res, err := Run(e, firstInformative{}, orc, len(e.Classes()))
		if err != nil {
			return false
		}
		gj := predicate.Join(inst, e.U, goal)
		rj := predicate.Join(inst, e.U, res.Predicate)
		if len(gj) != len(rj) {
			return false
		}
		for i := range gj {
			if gj[i] != rj[i] {
				return false
			}
		}
		// The returned predicate must moreover be the most specific
		// consistent one: every positive example's T contains it.
		return e.Sample().ConsistentWith(res.Predicate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

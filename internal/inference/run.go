package inference

import (
	"context"
	"fmt"

	"repro/internal/predicate"
	"repro/internal/sample"
)

// Strategy selects the next class to present to the user (the Υ of
// Algorithm 1). It is called only while informative classes remain and must
// return the index of an informative class.
type Strategy interface {
	// Name identifies the strategy in reports ("BU", "TD", "L1S", …).
	Name() string
	// Next returns the index of the class whose representative tuple the
	// user should label next.
	Next(e *Engine) int
}

// ContextStrategy is a Strategy whose selection can be cancelled mid-way —
// implemented by the lookahead strategies, whose per-question cost is
// Θ(K³) certainty tests and worth interrupting on large instances.
type ContextStrategy interface {
	Strategy
	// NextCtx behaves like Next but aborts with the context's error as soon
	// as cancellation is observed.
	NextCtx(ctx context.Context, e *Engine) (int, error)
}

// Oracle answers membership queries: the label for product tuple
// (R.Tuples[ri], P.Tuples[pi]). It models the user of the interactive
// scenario (Section 3.2).
type Oracle interface {
	LabelFor(ri, pi int) sample.Label
}

// Result reports the outcome of an inference run.
type Result struct {
	// Predicate is T(S+), the most specific predicate consistent with the
	// user's answers; instance-equivalent to the goal (Section 3.3).
	Predicate predicate.Pred
	// Interactions is the number of tuples the user labeled.
	Interactions int
	// ClassesTotal is the number of T-classes of the product.
	ClassesTotal int
}

// Run executes the general inference algorithm (Algorithm 1) with the given
// strategy and oracle until the halt condition Γ holds (no informative
// tuple remains), then returns the inferred predicate.
//
// MaxInteractions, if positive, bounds the number of questions; exceeding
// it returns an error (useful against buggy strategies — an honest run can
// never need more labels than there are classes).
func Run(e *Engine, strat Strategy, oracle Oracle, maxInteractions int) (Result, error) {
	res := Result{ClassesTotal: len(e.classes)}
	for !e.Done() {
		if maxInteractions > 0 && res.Interactions >= maxInteractions {
			return res, fmt.Errorf("inference: strategy %s exceeded %d interactions", strat.Name(), maxInteractions)
		}
		ci := strat.Next(e)
		if ci < 0 || ci >= len(e.classes) {
			return res, fmt.Errorf("inference: strategy %s returned invalid class %d", strat.Name(), ci)
		}
		if !e.Informative(ci) {
			return res, fmt.Errorf("inference: strategy %s selected uninformative class %d", strat.Name(), ci)
		}
		c := e.classes[ci]
		l := oracle.LabelFor(c.RI, c.PI)
		res.Interactions++
		if err := e.Label(ci, l); err != nil {
			return res, err
		}
	}
	res.Predicate = e.Result()
	return res, nil
}

package inference

import (
	"math/rand"
	"testing"

	"repro/internal/sample"
	"repro/internal/synth"
)

// statelessInformative recomputes informativeness from first principles —
// the pre-incremental implementation the certainty cache must agree with
// after every label.
func statelessInformative(e *Engine, ci int) bool {
	if e.IsLabeled(ci) {
		return false
	}
	th := e.Classes()[ci].Theta
	return !CertainPositive(e.TPos(), th) && !CertainNegative(e.TPos(), e.Negatives(), th)
}

// checkIncremental compares the cached certainty state against the
// stateless recomputation for every class, plus the derived aggregates.
func checkIncremental(t *testing.T, e *Engine, step int) {
	t.Helper()
	want := 0
	for ci := range e.Classes() {
		ref := statelessInformative(e, ci)
		if got := e.Informative(ci); got != ref {
			t.Fatalf("step %d class %d: cached Informative=%v, stateless=%v", step, ci, got, ref)
		}
		if ref {
			want++
		}
	}
	if got := e.NumInformative(); got != want {
		t.Fatalf("step %d: NumInformative=%d, stateless count=%d", step, got, want)
	}
	if got := e.Done(); got != (want == 0) {
		t.Fatalf("step %d: Done=%v with %d informative classes", step, got, want)
	}
	inf := e.InformativeClasses()
	if len(inf) != want {
		t.Fatalf("step %d: InformativeClasses returned %d entries, want %d", step, len(inf), want)
	}
	for _, ci := range inf {
		if !statelessInformative(e, ci) {
			t.Fatalf("step %d: InformativeClasses contains uninformative class %d", step, ci)
		}
	}
}

// TestIncrementalMatchesStateless: the certainty cache agrees with the
// stateless recomputation after every honest label, on single-word and
// multi-word (Ω > 64) universes.
func TestIncrementalMatchesStateless(t *testing.T) {
	configs := []synth.Config{
		{AttrsR: 3, AttrsP: 3, Rows: 12, Values: 4},
		{AttrsR: 9, AttrsP: 8, Rows: 5, Values: 3}, // Ω = 72: multi-word predicates
	}
	for _, cfg := range configs {
		for seed := int64(0); seed < 6; seed++ {
			inst := synth.MustGenerate(cfg, seed)
			e := New(inst)
			r := rand.New(rand.NewSource(seed))
			// Honest labeling w.r.t. a random class's theta as goal: θ
			// selects a tuple iff θ ⊆ T(t), so no inconsistency arises.
			goal := e.Classes()[r.Intn(len(e.Classes()))].Theta
			checkIncremental(t, e, 0)
			for step := 1; !e.Done(); step++ {
				inf := e.InformativeClasses()
				ci := inf[r.Intn(len(inf))]
				l := sample.Negative
				if goal.MoreGeneralThan(e.Classes()[ci].Theta) {
					l = sample.Positive
				}
				if err := e.Label(ci, l); err != nil {
					t.Fatalf("cfg %v seed %d step %d: %v", cfg, seed, step, err)
				}
				checkIncremental(t, e, step)
			}
		}
	}
}

// TestIncrementalSurvivesInconsistency: certainty is monotone in the raw
// sample (consistency is not required for Lemmas 3.3/3.4 to only gain
// witnesses), so even after a rejected label the cache matches the
// stateless tests — the state a caller observes before discarding the
// engine is coherent.
func TestIncrementalSurvivesInconsistency(t *testing.T) {
	inst := synth.MustGenerate(synth.Config{AttrsR: 3, AttrsP: 3, Rows: 10, Values: 3}, 2)
	for seed := int64(0); seed < 10; seed++ {
		e := New(inst)
		r := rand.New(rand.NewSource(seed))
		for step := 1; !e.Done(); step++ {
			inf := e.InformativeClasses()
			ci := inf[r.Intn(len(inf))]
			err := e.Label(ci, sample.Label(r.Intn(2) == 0))
			checkIncremental(t, e, step)
			if err != nil {
				break // engine would be discarded by callers; state checked above
			}
		}
	}
}

// TestInformativeClassesScratchReuse: successive calls reuse one backing
// array (the documented contract) and still return correct contents.
func TestInformativeClassesScratchReuse(t *testing.T) {
	inst := synth.MustGenerate(synth.Config{AttrsR: 2, AttrsP: 2, Rows: 6, Values: 3}, 1)
	e := New(inst)
	a := e.InformativeClasses()
	b := e.InformativeClasses()
	if len(a) == 0 || len(b) != len(a) {
		t.Fatalf("scratch calls disagree: %d vs %d", len(a), len(b))
	}
	if &a[0] != &b[0] {
		t.Error("InformativeClasses did not reuse its scratch backing array")
	}
	allocs := testing.AllocsPerRun(100, func() { e.InformativeClasses() })
	if allocs != 0 {
		t.Errorf("InformativeClasses allocates %.1f per call; want 0 steady-state", allocs)
	}
}

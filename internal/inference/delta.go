// Incremental engine maintenance under an instance delta. The engine's
// per-class state is a function of (class Theta, sample): settled[ci] holds
// iff the class is labeled or certain under the current sample — the
// invariant Label's sweeps maintain. A delta therefore only has to
// re-examine what it can actually flip:
//
//   - Surviving classes keep their Theta, so while the sample is intact
//     (no example's row was deleted) their certainty is untouched — only
//     classes minted by the delta need the certainty test.
//   - Deleting rows can drop examples. Certainty is anti-monotone under
//     example removal (T(S+) only grows, witnesses only disappear), so a
//     class that was informative stays informative; only the classes those
//     examples were settling — the settled-but-now-unlabeled ones — are
//     re-tested, exactly Lemma 3.4's witnesses in reverse.
//
// The result is state-identical to rebuilding the engine from scratch on
// the new version and replaying the surviving examples (delta_test.go
// checks differentially).
package inference

import (
	"fmt"

	"repro/internal/predicate"
	"repro/internal/product"
	"repro/internal/relation"
	"repro/internal/sample"
)

// ApplyDelta moves the engine onto the next instance version, given the
// maintained T-classes from product.ApplyDelta. It returns the number of
// sample examples dropped because a row they reference was deleted.
//
// Removing examples can only widen the version space, never contradict it,
// so ApplyDelta does not fail on an honest history; the error covers
// mismatched arguments only.
func (e *Engine) ApplyDelta(newInst *relation.Instance, dr *product.DeltaResult) (dropped int, err error) {
	if newInst.Version() != e.Inst.Version()+1 {
		return 0, fmt.Errorf("inference: delta target version %d does not follow %d", newInst.Version(), e.Inst.Version())
	}
	if len(dr.Remap) != len(e.classes) {
		return 0, fmt.Errorf("inference: delta remap covers %d classes, engine has %d", len(dr.Remap), len(e.classes))
	}

	nl := make([]int8, len(dr.Classes))
	ns := make([]bool, len(dr.Classes))
	for oi, ni := range dr.Remap {
		if ni >= 0 {
			nl[ni] = e.labeled[oi]
			ns[ni] = e.settled[oi]
		}
	}

	var droppedEx []sample.Example
	for _, ex := range e.s.Examples() {
		if !newInst.RAlive(ex.RI) || !newInst.PAlive(ex.PI) {
			droppedEx = append(droppedEx, ex)
		}
	}

	if len(droppedEx) == 0 {
		// Sample intact: survivors keep their certainty verbatim; only
		// minted classes are unknown.
		tpos := e.s.TPos()
		for _, ni := range dr.Added {
			if CertainUnderWith(&e.inter, tpos, e.negs, dr.Classes[ni].Theta) {
				ns[ni] = true
			}
		}
	} else {
		// Rebuild the sample from the surviving examples, preserving
		// order, then re-test exactly the classes the dropped examples
		// could have been settling: the settled-but-unlabeled survivors
		// (anti-monotonicity keeps unsettled classes unsettled) plus the
		// minted ones.
		s2 := sample.New(e.U)
		var negs2 []predicate.Pred
		for _, ex := range e.s.Examples() {
			if !newInst.RAlive(ex.RI) || !newInst.PAlive(ex.PI) {
				continue
			}
			s2.Add(ex)
			if ex.Label == sample.Negative {
				negs2 = append(negs2, ex.Theta)
			}
		}
		byKey := make(map[string]int, len(dr.Classes))
		for ni, c := range dr.Classes {
			byKey[c.Theta.Key()] = ni
		}
		for _, ex := range droppedEx {
			if ni, ok := byKey[ex.Theta.Key()]; ok {
				nl[ni] = 0
			}
		}
		tpos := s2.TPos()
		for ni, c := range dr.Classes {
			if nl[ni] != 0 || !ns[ni] {
				continue
			}
			ns[ni] = CertainUnderWith(&e.inter, tpos, negs2, c.Theta)
		}
		for _, ni := range dr.Added {
			if !ns[ni] && CertainUnderWith(&e.inter, tpos, negs2, dr.Classes[ni].Theta) {
				ns[ni] = true
			}
		}
		if !s2.Consistent() {
			// Unreachable for a sample that was consistent before the
			// delta (removal cannot introduce inconsistency); guarded for
			// defense in depth.
			return len(droppedEx), ErrInconsistent
		}
		e.s = s2
		e.negs = negs2
	}

	infCount := 0
	for _, done := range ns {
		if !done {
			infCount++
		}
	}
	e.Inst = newInst
	e.classes = dr.Classes
	e.labeled = nl
	e.settled = ns
	e.infCount = infCount
	return len(droppedEx), nil
}

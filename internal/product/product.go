// Package product implements the Cartesian-product engine the inference
// strategies run on.
//
// The key observation (Section 5.3) is that two product tuples t, t' with
// T(t) = T(t') are interchangeable for the inference process: every
// consistent predicate selects either both or neither, so labeling one
// determines the other. The engine therefore groups D = R × P into
// *T-classes* — one entry per distinct most specific predicate — keeping a
// representative tuple and the number of tuples in the class. All strategy
// computation is then polynomial in the number of classes, not in |D|.
//
// Two collection paths are provided:
//
//   - Classes: a straightforward O(|R|·|P|) scan, evaluating T per pair.
//   - ClassesIndexed: builds an inverted index value → attribute positions;
//     only pairs of tuples sharing at least one value can have T(t) ≠ ∅, so
//     the scan enumerates candidate pairs through the index and credits all
//     remaining pairs to the ∅ class in O(1). On sparse instances (TPC-H
//     scale) this avoids almost the entire product.
package product

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/predicate"
	"repro/internal/relation"
)

// Class is one T-equivalence class of the Cartesian product: the set of
// product tuples t with T(t) equal to Theta.
type Class struct {
	// Theta is the most specific predicate T(t) shared by the class.
	Theta predicate.Pred
	// RI, PI index a representative tuple (R.Tuples[RI], P.Tuples[PI]).
	RI, PI int
	// Count is the number of product tuples in the class.
	Count int64
}

// Classes scans the full product and groups it into T-classes. Classes are
// returned in a deterministic order: ascending |Theta|, then by first
// occurrence in row-major product order.
func Classes(inst *relation.Instance, u *predicate.Universe) []*Class {
	byKey := make(map[string]*Class)
	var order []*Class
	for ri, tR := range inst.R.Tuples {
		if !inst.RAlive(ri) {
			continue
		}
		for pi, tP := range inst.P.Tuples {
			if !inst.PAlive(pi) {
				continue
			}
			th := predicate.T(u, tR, tP)
			k := th.Key()
			if c, ok := byKey[k]; ok {
				c.Count++
				continue
			}
			c := &Class{Theta: th, RI: ri, PI: pi, Count: 1}
			byKey[k] = c
			order = append(order, c)
		}
	}
	sortClasses(order)
	return order
}

// ClassesIndexed groups the product into T-classes using a shared-value
// inverted index, touching only pairs that can have a non-empty T. The
// result is identical to Classes (same classes, counts, representatives and
// order); only the work differs: per R row, candidate P rows come from the
// index (stamp-marked, no per-row allocation), and each candidate pair's T
// is assembled from a per-P-row value → attribute-position table instead of
// the naive O(n·m) comparison sweep.
func ClassesIndexed(inst *relation.Instance, u *predicate.Universe) []*Class {
	nP := inst.P.Len()
	nPLive := inst.LiveP()
	// For each value, the live P-row indexes containing it (deduped,
	// ascending); dead rows are invisible to the index.
	pIndex := make(map[relation.Value][]int)
	// For each P row, its value → attribute positions table.
	pPos := make([]map[relation.Value][]int, nP)
	for pi, tP := range inst.P.Tuples {
		if !inst.PAlive(pi) {
			continue
		}
		pos := make(map[relation.Value][]int, len(tP))
		for j, v := range tP {
			if _, ok := pos[v]; !ok {
				pIndex[v] = append(pIndex[v], pi)
			}
			pos[v] = append(pos[v], j)
		}
		pPos[pi] = pos
	}

	byKey := make(map[string]*Class)
	var order []*Class
	empty := &Class{Theta: predicate.Empty(), RI: -1, PI: -1}

	// Stamp-marked candidate set, reused across R rows.
	stamp := make([]int, nP)
	cur := 0
	var pis []int

	for ri, tR := range inst.R.Tuples {
		if !inst.RAlive(ri) {
			continue
		}
		cur++
		pis = pis[:0]
		for _, v := range tR {
			for _, pi := range pIndex[v] {
				if stamp[pi] != cur {
					stamp[pi] = cur
					pis = append(pis, pi)
				}
			}
		}
		sort.Ints(pis) // deterministic representative choice
		for _, pi := range pis {
			th := tFromPositions(u, tR, pPos[pi])
			k := th.Key()
			if c, ok := byKey[k]; ok {
				c.Count++
				continue
			}
			c := &Class{Theta: th, RI: ri, PI: pi, Count: 1}
			byKey[k] = c
			order = append(order, c)
		}
		// Every live non-candidate pair has T = ∅.
		rest := int64(nPLive - len(pis))
		if rest > 0 {
			if empty.Count == 0 {
				// First occurrence: representative is the first live
				// non-candidate pi for this row.
				empty.RI = ri
				for pi := 0; pi < nP; pi++ {
					if inst.PAlive(pi) && stamp[pi] != cur {
						empty.PI = pi
						break
					}
				}
			}
			empty.Count += rest
		}
	}
	if empty.Count > 0 {
		order = append(order, empty)
	}
	sortClasses(order)
	return order
}

// tFromPositions computes T(tR, tP) given tP's value → positions table.
func tFromPositions(u *predicate.Universe, tR relation.Tuple, pos map[relation.Value][]int) predicate.Pred {
	s := bitset.New(u.Size())
	for i, v := range tR {
		for _, j := range pos[v] {
			s.Add(u.PairID(i, j))
		}
	}
	return predicate.Pred{Set: s}
}

// sortClasses orders classes by ascending predicate size, breaking ties by
// representative position in row-major product order. This is the order
// local strategies scan, and it makes runs reproducible.
func sortClasses(cs []*Class) {
	sort.SliceStable(cs, func(a, b int) bool {
		sa, sb := cs[a].Theta.Size(), cs[b].Theta.Size()
		if sa != sb {
			return sa < sb
		}
		if cs[a].RI != cs[b].RI {
			return cs[a].RI < cs[b].RI
		}
		return cs[a].PI < cs[b].PI
	})
}

// MaxClasses returns the classes whose Theta is ⊆-maximal among the given
// classes — the starting points of the top-down strategy (Algorithm 3).
func MaxClasses(cs []*Class) []*Class {
	var out []*Class
	for i, c := range cs {
		maximal := true
		for j, d := range cs {
			if i != j && c.Theta.Set.ProperSubsetOf(d.Theta.Set) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, c)
		}
	}
	return out
}

// JoinRatio computes the paper's instance-complexity measure (Section 5.3):
// the average size of the distinct most specific predicates occurring in
// the product, (Σ_{θ∈N} |θ|) / |N| with N = {T(t) | t ∈ D}.
func JoinRatio(cs []*Class) float64 {
	if len(cs) == 0 {
		return 0
	}
	sum := 0
	for _, c := range cs {
		sum += c.Theta.Size()
	}
	return float64(sum) / float64(len(cs))
}

// TotalCount sums class sizes; equals |R|·|P|.
func TotalCount(cs []*Class) int64 {
	var n int64
	for _, c := range cs {
		n += c.Count
	}
	return n
}

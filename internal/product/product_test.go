package product

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/paperdata"
	"repro/internal/predicate"
	"repro/internal/relation"
)

func TestClassesExample21(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	cs := Classes(inst, u)
	// Figure 3: all 12 product tuples have pairwise distinct T values.
	if len(cs) != 12 {
		t.Fatalf("got %d classes, want 12", len(cs))
	}
	for _, c := range cs {
		if c.Count != 1 {
			t.Errorf("class %v has count %d, want 1", c.Theta, c.Count)
		}
	}
	if TotalCount(cs) != inst.ProductSize() {
		t.Errorf("TotalCount = %d, want %d", TotalCount(cs), inst.ProductSize())
	}
	// Section 5.3: sizes 1×0, 1×1, 7×2, 3×3.
	sizeHist := map[int]int{}
	for _, c := range cs {
		sizeHist[c.Theta.Size()]++
	}
	if sizeHist[0] != 1 || sizeHist[1] != 1 || sizeHist[2] != 7 || sizeHist[3] != 3 {
		t.Errorf("size histogram = %v, want map[0:1 1:1 2:7 3:3]", sizeHist)
	}
	// Deterministic order: ascending size.
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Theta.Size() > cs[i].Theta.Size() {
			t.Errorf("classes not ordered by size at %d", i)
		}
	}
}

func TestJoinRatioExample21(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	cs := Classes(inst, u)
	// Section 5.3 computes the join ratio of this instance as exactly 2.
	if got := JoinRatio(cs); got != 2.0 {
		t.Errorf("JoinRatio = %v, want 2", got)
	}
	if JoinRatio(nil) != 0 {
		t.Error("JoinRatio(nil) should be 0")
	}
}

func TestClassesGroupEqualT(t *testing.T) {
	// Two identical R rows: every class must have count 2.
	R := relation.NewRelation(relation.MustSchema("R", "A1"))
	R.MustAddTuple("1")
	R.MustAddTuple("1")
	P := relation.NewRelation(relation.MustSchema("P", "B1", "B2"))
	P.MustAddTuple("1", "0")
	P.MustAddTuple("0", "1")
	P.MustAddTuple("2", "2")
	inst := relation.MustInstance(R, P)
	u := predicate.NewUniverse(inst)
	cs := Classes(inst, u)
	if len(cs) != 3 {
		t.Fatalf("got %d classes, want 3", len(cs))
	}
	for _, c := range cs {
		if c.Count != 2 {
			t.Errorf("class %v count = %d, want 2", c.Theta, c.Count)
		}
		if c.RI != 0 {
			t.Errorf("representative should be first occurrence (RI=0), got %d", c.RI)
		}
	}
}

func TestMaxClassesExample21(t *testing.T) {
	inst := paperdata.Example21()
	u := predicate.NewUniverse(inst)
	cs := Classes(inst, u)
	maxes := MaxClasses(cs)
	// Figure 4: the three size-3 predicates are maximal, and so are the
	// four size-2 predicates not contained in any size-3 one
	// ({(A1,B1),(A2,B2)}, {(A1,B3),(A2,B3)}, {(A1,B1),(A2,B1)},
	// {(A2,B2),(A2,B3)}) — 7 maximal classes in total.
	if len(maxes) != 7 {
		t.Fatalf("got %d maximal classes, want 7", len(maxes))
	}
	size3 := 0
	for _, c := range maxes {
		switch c.Theta.Size() {
		case 3:
			size3++
		case 2:
		default:
			t.Errorf("maximal class %v has unexpected size %d", c.Theta, c.Theta.Size())
		}
	}
	if size3 != 3 {
		t.Errorf("got %d size-3 maximal classes, want 3", size3)
	}
	// No maximal class may be a proper subset of another maximal class.
	for i, c := range maxes {
		for j, d := range maxes {
			if i != j && c.Theta.Set.ProperSubsetOf(d.Theta.Set) {
				t.Errorf("maximal class %v ⊂ %v", c.Theta, d.Theta)
			}
		}
	}
}

func TestClassesIndexedAgreesOnPaperInstances(t *testing.T) {
	for _, inst := range []*relation.Instance{
		paperdata.Example21(),
		paperdata.FlightHotel(),
		paperdata.SingleTuple(),
	} {
		u := predicate.NewUniverse(inst)
		assertSameClasses(t, Classes(inst, u), ClassesIndexed(inst, u))
	}
}

func assertSameClasses(t *testing.T, a, b []*Class) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("class count mismatch: %d vs %d", len(a), len(b))
	}
	am := make(map[string]*Class, len(a))
	for _, c := range a {
		am[c.Theta.Key()] = c
	}
	for _, c := range b {
		d, ok := am[c.Theta.Key()]
		if !ok {
			t.Fatalf("indexed scan produced extra class %v", c.Theta)
		}
		if c.Count != d.Count {
			t.Fatalf("class %v count mismatch: %d vs %d", c.Theta, d.Count, c.Count)
		}
	}
}

func TestClassesIndexedEmptyClassRepresentative(t *testing.T) {
	// An instance where some pairs share no value: the ∅ class must have a
	// valid representative whose T is indeed ∅.
	R := relation.NewRelation(relation.MustSchema("R", "A1"))
	R.MustAddTuple("1")
	R.MustAddTuple("7")
	P := relation.NewRelation(relation.MustSchema("P", "B1"))
	P.MustAddTuple("1")
	P.MustAddTuple("9")
	inst := relation.MustInstance(R, P)
	u := predicate.NewUniverse(inst)
	cs := ClassesIndexed(inst, u)
	var empty *Class
	for _, c := range cs {
		if c.Theta.IsEmpty() {
			empty = c
		}
	}
	if empty == nil {
		t.Fatal("no ∅ class found")
	}
	if empty.Count != 3 { // (1,9), (7,1), (7,9)
		t.Errorf("∅ class count = %d, want 3", empty.Count)
	}
	if empty.RI < 0 || empty.PI < 0 {
		t.Fatalf("∅ class has no representative")
	}
	got := predicate.T(u, inst.R.Tuples[empty.RI], inst.P.Tuples[empty.PI])
	if !got.IsEmpty() {
		t.Errorf("∅ representative has T = %v", got)
	}
}

func randomInstance(r *rand.Rand) *relation.Instance {
	n := 1 + r.Intn(3)
	m := 1 + r.Intn(3)
	vals := 1 + r.Intn(5)
	attrsR := make([]string, n)
	for i := range attrsR {
		attrsR[i] = "A" + strconv.Itoa(i+1)
	}
	attrsP := make([]string, m)
	for j := range attrsP {
		attrsP[j] = "B" + strconv.Itoa(j+1)
	}
	R := relation.NewRelation(relation.MustSchema("R", attrsR...))
	P := relation.NewRelation(relation.MustSchema("P", attrsP...))
	for i, rows := 0, 1+r.Intn(8); i < rows; i++ {
		tr := make(relation.Tuple, n)
		for k := range tr {
			tr[k] = strconv.Itoa(r.Intn(vals))
		}
		R.Tuples = append(R.Tuples, tr)
	}
	for i, rows := 0, 1+r.Intn(8); i < rows; i++ {
		tp := make(relation.Tuple, m)
		for k := range tp {
			tp[k] = strconv.Itoa(r.Intn(vals))
		}
		P.Tuples = append(P.Tuples, tp)
	}
	return relation.MustInstance(R, P)
}

// TestQuickIndexedMatchesFullScan: the inverted-index collection path must
// produce exactly the same classes as the exhaustive scan.
func TestQuickIndexedMatchesFullScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randomInstance(r)
		u := predicate.NewUniverse(inst)
		a := Classes(inst, u)
		b := ClassesIndexed(inst, u)
		if len(a) != len(b) {
			return false
		}
		am := make(map[string]int64, len(a))
		for _, c := range a {
			am[c.Theta.Key()] = c.Count
		}
		for _, c := range b {
			if am[c.Theta.Key()] != c.Count {
				return false
			}
		}
		return TotalCount(b) == inst.ProductSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickRepresentativesConsistent: each class representative's T must
// equal the class predicate, and counts must partition the product.
func TestQuickRepresentativesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randomInstance(r)
		u := predicate.NewUniverse(inst)
		for _, c := range ClassesIndexed(inst, u) {
			got := predicate.T(u, inst.R.Tuples[c.RI], inst.P.Tuples[c.PI])
			if !got.Equal(c.Theta) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Incremental T-class maintenance. A row delta touches only the product
// pairs it creates or destroys: inserting an R row adds one pair per live
// P row, deleting a P row removes one pair per surviving R row. ApplyDelta
// walks exactly those pairs — in Decker's incremental-checking spirit,
// "check only what the update can flip" — merging each into an existing
// class or minting a new one, and never recomputes the classes the delta
// cannot reach. The result is bit-identical to rebuilding with
// ClassesIndexed on the new version: same classes, counts, representatives
// and canonical order (delta_test.go checks differentially).
package product

import (
	"fmt"

	"repro/internal/predicate"
	"repro/internal/relation"
)

// DeltaResult describes how one relation.Delta transformed a class list.
type DeltaResult struct {
	// Classes are the T-classes of the new version, in canonical order.
	// Classes untouched by the delta are shared (same *Class pointers)
	// with the old slice; touched ones are fresh copies, so the old slice
	// stays valid for readers of the old version.
	Classes []*Class
	// Remap maps old class indexes to new ones; -1 marks a retired class
	// (its last product pair was deleted).
	Remap []int
	// Added lists new-order indexes of classes minted by the delta.
	Added []int
	// Retired counts retired classes.
	Retired int
	// CountChanged reports whether any surviving class's Count changed —
	// the signal count-weighted consumers (lookahead entropy) key on.
	CountChanged bool
}

// pairBefore orders product pairs row-major, the representative order.
func pairBefore(ri, pi, ri2, pi2 int) bool {
	if ri != ri2 {
		return ri < ri2
	}
	return pi < pi2
}

// ApplyDelta maintains oldClasses — the T-classes of oldInst, as produced
// by Classes/ClassesIndexed — under d, where newInst is oldInst.ApplyDelta(d).
// Both instance versions must be supplied because they share tuple storage;
// the caller (who performed the relation-level apply) has both at hand.
// oldClasses is never mutated.
func ApplyDelta(oldInst, newInst *relation.Instance, u *predicate.Universe, oldClasses []*Class, d relation.Delta) (*DeltaResult, error) {
	if newInst.Version() != oldInst.Version()+1 {
		return nil, fmt.Errorf("product: delta result version %d does not follow %d", newInst.Version(), oldInst.Version())
	}
	nOldR, nOldP := oldInst.R.Len(), oldInst.P.Len()

	// work[i] evolves from oldClasses[i]; cow marks private copies.
	work := make([]*Class, len(oldClasses))
	copy(work, oldClasses)
	cow := make([]bool, len(work))
	mutate := func(i int) *Class {
		if !cow[i] {
			cp := *work[i]
			work[i] = &cp
			cow[i] = true
		}
		return work[i]
	}
	byKey := make(map[string]int, len(work))
	for i, c := range work {
		byKey[c.Theta.Key()] = i
	}

	delR := make([]bool, nOldR)
	for _, ri := range d.DeleteR {
		delR[ri] = true
	}
	delP := make([]bool, nOldP)
	for _, pi := range d.DeleteP {
		delP[pi] = true
	}
	// Tuples are read through newInst: indexes are stable and the new
	// headers cover both old and inserted rows.
	rT := newInst.R.Tuples
	pT := newInst.P.Tuples

	countChanged := false
	// repDirty marks classes whose representative pair was deleted; their
	// coordinates become the sentinel (maxInt, maxInt) — "no known
	// representative" — which loses every row-major comparison, so addPair's
	// minimum tracking just works. addedOf counts pairs the delta added to
	// each class.
	const noRep = int(^uint(0) >> 1)
	repDirty := make(map[int]bool)
	addedOf := make(map[int]int64)

	removePair := func(ri, pi int) error {
		th := predicate.T(u, rT[ri], pT[pi])
		i, ok := byKey[th.Key()]
		if !ok {
			return fmt.Errorf("product: deleted pair (%d,%d) has no class — stale class list", ri, pi)
		}
		c := mutate(i)
		c.Count--
		if c.Count < 0 {
			return fmt.Errorf("product: class count underflow at pair (%d,%d) — stale class list", ri, pi)
		}
		countChanged = true
		if c.RI == ri && c.PI == pi {
			repDirty[i] = true
			c.RI, c.PI = noRep, noRep
		}
		return nil
	}
	// Removed pairs: deleted R rows × old live P rows, plus surviving old
	// R rows × deleted P rows.
	for _, ri := range d.DeleteR {
		for pi := 0; pi < nOldP; pi++ {
			if !oldInst.PAlive(pi) {
				continue
			}
			if err := removePair(ri, pi); err != nil {
				return nil, err
			}
		}
	}
	for _, pi := range d.DeleteP {
		for ri := 0; ri < nOldR; ri++ {
			if !oldInst.RAlive(ri) || delR[ri] {
				continue
			}
			if err := removePair(ri, pi); err != nil {
				return nil, err
			}
		}
	}

	var added []int // work indexes of minted classes
	addPair := func(ri, pi int) {
		th := predicate.T(u, rT[ri], pT[pi])
		k := th.Key()
		if i, ok := byKey[k]; ok {
			c := mutate(i)
			c.Count++
			addedOf[i]++
			countChanged = countChanged || i < len(oldClasses)
			// The new pair may precede the current representative in
			// row-major order (e.g. an old row paired with a new one).
			if pairBefore(ri, pi, c.RI, c.PI) {
				c.RI, c.PI = ri, pi
			}
			return
		}
		c := &Class{Theta: th, RI: ri, PI: pi, Count: 1}
		byKey[k] = len(work)
		added = append(added, len(work))
		work = append(work, c)
		cow = append(cow, true)
	}
	// Added pairs in row-major order: surviving old R rows × new P rows
	// first would break row-major minimality bookkeeping only if addPair
	// didn't take the min — it does, so any order is correct; we still
	// iterate new-R-major for determinism.
	for ri := nOldR; ri < newInst.R.Len(); ri++ {
		for pi := 0; pi < newInst.P.Len(); pi++ {
			if !newInst.PAlive(pi) {
				continue
			}
			addPair(ri, pi)
		}
	}
	for ri := 0; ri < nOldR; ri++ {
		if !oldInst.RAlive(ri) || delR[ri] {
			continue
		}
		for pi := nOldP; pi < newInst.P.Len(); pi++ {
			if !newInst.PAlive(pi) {
				continue
			}
			addPair(ri, pi)
		}
	}

	// Re-anchor classes whose representative died. After addPair, such a
	// class holds either the sentinel (no added pair) or the row-major
	// minimum of its *added* pairs; if any of its old pairs survived, one
	// of those may be row-major-earlier still. Scan the old product's kept
	// pairs once in row-major order, early-exiting when every orphan with
	// surviving old pairs has met its first one, and keep the smaller of
	// (first surviving old pair, added minimum).
	pending := 0
	found := make(map[int]bool)
	for i := range repDirty {
		c := work[i] // already a copy (repDirty implies mutate)
		if c.Count == 0 || c.Count == addedOf[i] {
			// Retired, or living purely on added pairs (addPair's minimum
			// is already the representative).
			continue
		}
		found[i] = false
		pending++
	}
	if pending > 0 {
	scan:
		for ri := 0; ri < nOldR; ri++ {
			if !oldInst.RAlive(ri) || delR[ri] {
				continue
			}
			for pi := 0; pi < nOldP; pi++ {
				if !oldInst.PAlive(pi) || delP[pi] {
					continue
				}
				th := predicate.T(u, rT[ri], pT[pi])
				i, ok := byKey[th.Key()]
				if !ok {
					continue
				}
				if done, isOrphan := found[i]; isOrphan && !done {
					found[i] = true
					if pairBefore(ri, pi, work[i].RI, work[i].PI) {
						work[i].RI, work[i].PI = ri, pi
					}
					pending--
					if pending == 0 {
						break scan
					}
				}
			}
		}
	}
	for i := range repDirty {
		if c := work[i]; c.Count > 0 && c.RI == noRep {
			return nil, fmt.Errorf("product: class %d has count %d but no surviving pair — stale class list", i, c.Count)
		}
	}

	// Assemble the new canonical-order slice and the index remap.
	res := &DeltaResult{CountChanged: countChanged}
	out := make([]*Class, 0, len(work))
	for _, c := range work {
		if c.Count > 0 {
			out = append(out, c)
		}
	}
	sortClasses(out)
	pos := make(map[*Class]int, len(out))
	for i, c := range out {
		pos[c] = i
	}
	res.Classes = out
	res.Remap = make([]int, len(oldClasses))
	for i := range oldClasses {
		if work[i].Count == 0 {
			res.Remap[i] = -1
			res.Retired++
		} else {
			res.Remap[i] = pos[work[i]]
		}
	}
	for _, wi := range added {
		if work[wi].Count > 0 {
			res.Added = append(res.Added, pos[work[wi]])
		}
	}
	return res, nil
}

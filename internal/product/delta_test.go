package product

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/predicate"
	"repro/internal/relation"
)

// randInstance builds a random instance with a small value domain so class
// merges, mints and retirements all occur.
func randInstance(rng *rand.Rand, nR, nP, vals int) *relation.Instance {
	r := relation.NewRelation(relation.MustSchema("R", "A", "B"))
	for i := 0; i < nR; i++ {
		r.MustAddTuple(strconv.Itoa(rng.Intn(vals)), strconv.Itoa(rng.Intn(vals)))
	}
	p := relation.NewRelation(relation.MustSchema("P", "C", "D", "E"))
	for i := 0; i < nP; i++ {
		p.MustAddTuple(strconv.Itoa(rng.Intn(vals)), strconv.Itoa(rng.Intn(vals)), strconv.Itoa(rng.Intn(vals)))
	}
	return relation.MustInstance(r, p)
}

func randTuples(rng *rand.Rand, n, arity, vals int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		t := make(relation.Tuple, arity)
		for k := range t {
			t[k] = strconv.Itoa(rng.Intn(vals))
		}
		out[i] = t
	}
	return out
}

// randDelta draws a random mixed delta against the instance's live rows.
func randDelta(rng *rand.Rand, inst *relation.Instance, vals int) relation.Delta {
	var d relation.Delta
	d.InsertR = randTuples(rng, rng.Intn(3), inst.R.Schema.Arity(), vals)
	d.InsertP = randTuples(rng, rng.Intn(3), inst.P.Schema.Arity(), vals)
	pickLive := func(n int, alive func(int) bool, max int) []int {
		var live []int
		for i := 0; i < n; i++ {
			if alive(i) {
				live = append(live, i)
			}
		}
		rng.Shuffle(len(live), func(a, b int) { live[a], live[b] = live[b], live[a] })
		k := rng.Intn(max + 1)
		if k > len(live)-1 { // keep at least one live row
			k = len(live) - 1
		}
		if k < 0 {
			k = 0
		}
		return live[:k]
	}
	d.DeleteR = pickLive(inst.R.Len(), inst.RAlive, 2)
	d.DeleteP = pickLive(inst.P.Len(), inst.PAlive, 2)
	return d
}

// classesEqual compares two class lists exactly: order, thetas,
// representatives and counts.
func classesEqual(a, b []*Class) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d classes vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Theta.Equal(b[i].Theta) {
			return fmt.Errorf("class %d: theta %v vs %v", i, a[i].Theta, b[i].Theta)
		}
		if a[i].RI != b[i].RI || a[i].PI != b[i].PI {
			return fmt.Errorf("class %d (%v): rep (%d,%d) vs (%d,%d)", i, a[i].Theta, a[i].RI, a[i].PI, b[i].RI, b[i].PI)
		}
		if a[i].Count != b[i].Count {
			return fmt.Errorf("class %d (%v): count %d vs %d", i, a[i].Theta, a[i].Count, b[i].Count)
		}
	}
	return nil
}

// TestApplyDeltaDifferential drives random delta chains and checks the
// maintained classes are bit-identical to an indexed rebuild at every
// version, and that the remap is faithful.
func TestApplyDeltaDifferential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := randInstance(rng, 3+rng.Intn(6), 3+rng.Intn(6), 2+rng.Intn(4))
		u := predicate.NewUniverse(inst)
		classes := ClassesIndexed(inst, u)
		for step := 0; step < 8; step++ {
			d := randDelta(rng, inst, 2+rng.Intn(4))
			next, err := inst.ApplyDelta(d)
			if err != nil {
				t.Fatalf("seed %d step %d: relation apply: %v", seed, step, err)
			}
			dr, err := ApplyDelta(inst, next, u, classes, d)
			if err != nil {
				t.Fatalf("seed %d step %d: product apply: %v", seed, step, err)
			}
			want := ClassesIndexed(next, u)
			if err := classesEqual(dr.Classes, want); err != nil {
				t.Fatalf("seed %d step %d (delta %+v): maintained ≠ rebuilt: %v", seed, step, d, err)
			}
			// Remap: surviving classes keep their theta; retired thetas are
			// gone from the new list.
			newKeys := make(map[string]int, len(dr.Classes))
			for i, c := range dr.Classes {
				newKeys[c.Theta.Key()] = i
			}
			retired := 0
			for oi, c := range classes {
				ni := dr.Remap[oi]
				if ni == -1 {
					retired++
					continue
				}
				if !dr.Classes[ni].Theta.Equal(c.Theta) {
					t.Fatalf("seed %d step %d: remap %d→%d changes theta", seed, step, oi, ni)
				}
			}
			if retired != dr.Retired {
				t.Fatalf("seed %d step %d: Retired=%d, remap says %d", seed, step, dr.Retired, retired)
			}
			for _, ni := range dr.Added {
				c := dr.Classes[ni]
				found := false
				for _, oc := range classes {
					if oc.Theta.Equal(c.Theta) {
						found = true
						break
					}
				}
				if found {
					t.Fatalf("seed %d step %d: Added class %d existed before", seed, step, ni)
				}
			}
			// Old classes were not mutated in place.
			old := ClassesIndexed(inst, u)
			if err := classesEqual(classes, old); err != nil {
				t.Fatalf("seed %d step %d: old classes mutated: %v", seed, step, err)
			}
			inst, classes = next, dr.Classes
		}
	}
}

// TestApplyDeltaInsertOnly checks the common ingest shape: pure inserts
// never retire classes and report count changes faithfully.
func TestApplyDeltaInsertOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := randInstance(rng, 5, 5, 3)
	u := predicate.NewUniverse(inst)
	classes := ClassesIndexed(inst, u)
	d := relation.Delta{InsertR: randTuples(rng, 1, 2, 3)}
	next, err := inst.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := ApplyDelta(inst, next, u, classes, d)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Retired != 0 {
		t.Fatalf("insert-only delta retired %d classes", dr.Retired)
	}
	if err := classesEqual(dr.Classes, ClassesIndexed(next, u)); err != nil {
		t.Fatal(err)
	}
}

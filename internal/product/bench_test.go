package product

import (
	"testing"

	"repro/internal/predicate"
	"repro/internal/synth"
)

func BenchmarkClassesFullScan(b *testing.B) {
	inst := synth.MustGenerate(synth.Config{AttrsR: 3, AttrsP: 4, Rows: 200, Values: 100}, 7)
	u := predicate.NewUniverse(inst)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Classes(inst, u)
	}
}

func BenchmarkClassesIndexed(b *testing.B) {
	inst := synth.MustGenerate(synth.Config{AttrsR: 3, AttrsP: 4, Rows: 200, Values: 100}, 7)
	u := predicate.NewUniverse(inst)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ClassesIndexed(inst, u)
	}
}

func BenchmarkJoinRatio(b *testing.B) {
	inst := synth.MustGenerate(synth.Config{AttrsR: 3, AttrsP: 4, Rows: 200, Values: 100}, 7)
	u := predicate.NewUniverse(inst)
	cs := ClassesIndexed(inst, u)
	for i := 0; i < b.N; i++ {
		JoinRatio(cs)
	}
}

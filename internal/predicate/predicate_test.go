package predicate

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/paperdata"
	"repro/internal/relation"
)

func example21() (*relation.Instance, *Universe) {
	inst := paperdata.Example21()
	return inst, NewUniverse(inst)
}

func TestUniversePairNumbering(t *testing.T) {
	_, u := example21()
	if u.Size() != 6 {
		t.Fatalf("Size = %d, want 6 (2x3)", u.Size())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			id := u.PairID(i, j)
			gi, gj := u.Pair(id)
			if gi != i || gj != j {
				t.Errorf("Pair(PairID(%d,%d)) = (%d,%d)", i, j, gi, gj)
			}
		}
	}
	if got := u.PairName(u.PairID(0, 2)); got != "(R0.A1, P0.B3)" {
		t.Errorf("PairName = %q", got)
	}
}

func TestUniversePanicsOutOfRange(t *testing.T) {
	_, u := example21()
	for _, fn := range []func(){
		func() { u.PairID(2, 0) },
		func() { u.PairID(0, 3) },
		func() { u.PairID(-1, 0) },
		func() { u.Pair(6) },
		func() { u.Pair(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range pair access did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestTFigure3 verifies T(t) for every tuple of the Cartesian product of
// Example 2.1 against the T column of Figure 3.
func TestTFigure3(t *testing.T) {
	inst, u := example21()
	// want[ri][pi] lists the expected pairs as (i,j) indexes:
	// A1→0, A2→1; B1→0, B2→1, B3→2.
	want := map[[2]int][][2]int{
		{0, 0}: {{0, 2}, {1, 0}, {1, 1}}, // (t1,t1'): (A1,B3),(A2,B1),(A2,B2)
		{0, 1}: {{0, 0}, {1, 1}},         // (t1,t2'): (A1,B1),(A2,B2)
		{0, 2}: {{0, 1}, {0, 2}},         // (t1,t3'): (A1,B2),(A1,B3)
		{1, 0}: {{0, 2}},                 // (t2,t1'): (A1,B3)
		{1, 1}: {{0, 0}, {1, 2}},         // (t2,t2'): (A1,B1),(A2,B3)
		{1, 2}: {{0, 1}, {0, 2}, {1, 0}}, // (t2,t3'): (A1,B2),(A1,B3),(A2,B1)
		{2, 0}: {},                       // (t3,t1'): ∅
		{2, 1}: {{0, 2}, {1, 2}},         // (t3,t2'): (A1,B3),(A2,B3)
		{2, 2}: {{0, 0}, {1, 0}},         // (t3,t3'): (A1,B1),(A2,B1)
		{3, 0}: {{0, 0}, {0, 1}, {1, 2}}, // (t4,t1'): (A1,B1),(A1,B2),(A2,B3)
		{3, 1}: {{0, 1}, {1, 0}},         // (t4,t2'): (A1,B2),(A2,B1)
		{3, 2}: {{1, 1}, {1, 2}},         // (t4,t3'): (A2,B2),(A2,B3)
	}
	for ri := 0; ri < inst.R.Len(); ri++ {
		for pi := 0; pi < inst.P.Len(); pi++ {
			got := T(u, inst.R.Tuples[ri], inst.P.Tuples[pi])
			exp := FromPairs(u, want[[2]int{ri, pi}]...)
			if !got.Equal(exp) {
				t.Errorf("T(t%d, t%d') = %v, want %v", ri+1, pi+1, got, exp)
			}
		}
	}
}

// TestJoinExample21 verifies the three joins computed in Example 2.1.
func TestJoinExample21(t *testing.T) {
	inst, u := example21()
	theta1 := FromPairs(u, [2]int{0, 0}, [2]int{1, 2}) // {(A1,B1),(A2,B3)}
	theta2 := FromPairs(u, [2]int{1, 1})               // {(A2,B2)}
	theta3 := FromPairs(u, [2]int{1, 0}, [2]int{1, 1}, [2]int{1, 2})

	check := func(name string, got [][2]int, want [][2]int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: join = %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: join = %v, want %v", name, got, want)
			}
		}
	}
	// R0 ⋈θ1 P0 = {(t2,t2'), (t4,t1')}
	check("theta1", Join(inst, u, theta1), [][2]int{{1, 1}, {3, 0}})
	// R0 ⋈θ2 P0 = {(t1,t1'), (t1,t2'), (t4,t3')}
	check("theta2", Join(inst, u, theta2), [][2]int{{0, 0}, {0, 1}, {3, 2}})
	// R0 ⋈θ3 P0 = ∅
	if got := Join(inst, u, theta3); len(got) != 0 {
		t.Errorf("theta3 join = %v, want empty", got)
	}
}

// TestSemijoinExample21 verifies the three semijoins of Example 2.1.
func TestSemijoinExample21(t *testing.T) {
	inst, u := example21()
	theta1 := FromPairs(u, [2]int{0, 0}, [2]int{1, 2})
	theta2 := FromPairs(u, [2]int{1, 1})
	theta3 := FromPairs(u, [2]int{1, 0}, [2]int{1, 1}, [2]int{1, 2})

	checkInts := func(name string, got, want []int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: semijoin = %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: semijoin = %v, want %v", name, got, want)
			}
		}
	}
	checkInts("theta1", Semijoin(inst, u, theta1), []int{1, 3}) // {t2, t4}
	checkInts("theta2", Semijoin(inst, u, theta2), []int{0, 3}) // {t1, t4}
	checkInts("theta3", Semijoin(inst, u, theta3), nil)         // ∅
}

func TestEmptyPredicateSelectsEverything(t *testing.T) {
	inst, u := example21()
	if got := len(Join(inst, u, Empty())); got != 12 {
		t.Errorf("∅ selects %d tuples, want all 12", got)
	}
}

func TestOmegaSelectsNothingHere(t *testing.T) {
	inst, u := example21()
	// Ω requires all attribute values equal; Example 2.1 has no such pair.
	if got := Join(inst, u, Omega(u)); len(got) != 0 {
		t.Errorf("Ω selects %v, want nothing", got)
	}
	if NonNullable(inst, u, Omega(u)) {
		t.Error("Ω should be nullable on Example 2.1")
	}
	if !NonNullable(inst, u, Empty()) {
		t.Error("∅ should be non-nullable")
	}
}

func TestTSetEmptyIsOmega(t *testing.T) {
	_, u := example21()
	if !TSet(u, nil).Equal(Omega(u)) {
		t.Error("T(∅) should be Ω")
	}
}

func TestTSetIntersection(t *testing.T) {
	inst, u := example21()
	// T({(t2,t2'), (t4,t1')}) = {(A1,B1),(A2,B3)} ∩ {(A1,B1),(A1,B2),(A2,B3)}
	//                         = {(A1,B1),(A2,B3)} — the θ0 of Example 3.1.
	ts := []Pred{
		T(u, inst.R.Tuples[1], inst.P.Tuples[1]),
		T(u, inst.R.Tuples[3], inst.P.Tuples[0]),
	}
	got := TSet(u, ts)
	want := FromPairs(u, [2]int{0, 0}, [2]int{1, 2})
	if !got.Equal(want) {
		t.Errorf("TSet = %v, want %v", got, want)
	}
}

func TestFromNames(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewUniverse(inst)
	q1, err := FromNames(u, [2]string{"To", "City"})
	if err != nil {
		t.Fatalf("FromNames: %v", err)
	}
	if q1.Size() != 1 {
		t.Errorf("Q1 size = %d", q1.Size())
	}
	if got := len(Join(inst, u, q1)); got != 4 {
		t.Errorf("Q1 selects %d tuples, want 4", got)
	}
	q2 := MustFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	if got := len(Join(inst, u, q2)); got != 2 {
		// Q2 selects (Paris→Lille AF, Lille AF) and (Lille→NYC AA, NYC AA).
		t.Errorf("Q2 selects %d tuples, want 2", got)
	}
	if !q1.MoreGeneralThan(q2) {
		t.Error("Q1 should be more general than Q2")
	}
	if _, err := FromNames(u, [2]string{"Nope", "City"}); err == nil {
		t.Error("unknown R attribute accepted")
	}
	if _, err := FromNames(u, [2]string{"To", "Nope"}); err == nil {
		t.Error("unknown P attribute accepted")
	}
}

func TestMustFromNamesPanics(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewUniverse(inst)
	defer func() {
		if recover() == nil {
			t.Error("MustFromNames with bad name did not panic")
		}
	}()
	MustFromNames(u, [2]string{"Bad", "City"})
}

func TestFormat(t *testing.T) {
	inst := paperdata.FlightHotel()
	u := NewUniverse(inst)
	q2 := MustFromNames(u, [2]string{"To", "City"}, [2]string{"Airline", "Discount"})
	want := "Flight.To = Hotel.City ∧ Flight.Airline = Hotel.Discount"
	if got := q2.Format(u); got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
	if got := Empty().Format(u); got != "⊤ (empty predicate)" {
		t.Errorf("Format(∅) = %q", got)
	}
}

// randomInstance generates a small random instance for property tests.
func randomInstance(r *rand.Rand) (*relation.Instance, *Universe) {
	n := 1 + r.Intn(3)
	m := 1 + r.Intn(3)
	rows := 1 + r.Intn(5)
	vals := 1 + r.Intn(4)
	attrsR := make([]string, n)
	for i := range attrsR {
		attrsR[i] = "A" + strconv.Itoa(i+1)
	}
	attrsP := make([]string, m)
	for j := range attrsP {
		attrsP[j] = "B" + strconv.Itoa(j+1)
	}
	R := relation.NewRelation(relation.MustSchema("R", attrsR...))
	P := relation.NewRelation(relation.MustSchema("P", attrsP...))
	for i := 0; i < rows; i++ {
		tr := make(relation.Tuple, n)
		for k := range tr {
			tr[k] = strconv.Itoa(r.Intn(vals))
		}
		R.Tuples = append(R.Tuples, tr)
		tp := make(relation.Tuple, m)
		for k := range tp {
			tp[k] = strconv.Itoa(r.Intn(vals))
		}
		P.Tuples = append(P.Tuples, tp)
	}
	inst := relation.MustInstance(R, P)
	return inst, NewUniverse(inst)
}

func randomPred(r *rand.Rand, u *Universe) Pred {
	p := Pred{}
	for id := 0; id < u.Size(); id++ {
		if r.Intn(3) == 0 {
			p.Set.Add(id)
		}
	}
	return p
}

// TestQuickSelectsIffSubsetOfT: t ∈ R ⋈θ P ⇔ θ ⊆ T(t), the fundamental
// observation of Section 3.
func TestQuickSelectsIffSubsetOfT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst, u := randomInstance(r)
		p := randomPred(r, u)
		for _, tR := range inst.R.Tuples {
			for _, tP := range inst.P.Tuples {
				if p.Selects(u, tR, tP) != p.MoreGeneralThan(T(u, tR, tP)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickAntiMonotonicity: θ1 ⊆ θ2 ⇒ R ⋈θ2 P ⊆ R ⋈θ1 P and
// R ⋉θ2 P ⊆ R ⋉θ1 P (Section 2).
func TestQuickAntiMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst, u := randomInstance(r)
		p1 := randomPred(r, u)
		p2 := p1.Union(randomPred(r, u)) // guarantee p1 ⊆ p2
		join1 := make(map[[2]int]bool)
		for _, pr := range Join(inst, u, p1) {
			join1[pr] = true
		}
		for _, pr := range Join(inst, u, p2) {
			if !join1[pr] {
				return false
			}
		}
		semi1 := make(map[int]bool)
		for _, ri := range Semijoin(inst, u, p1) {
			semi1[ri] = true
		}
		for _, ri := range Semijoin(inst, u, p2) {
			if !semi1[ri] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickSemijoinIsProjectedJoin: R ⋉θ P = Π_attrs(R)(R ⋈θ P).
func TestQuickSemijoinIsProjectedJoin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst, u := randomInstance(r)
		p := randomPred(r, u)
		proj := make(map[int]bool)
		for _, pr := range Join(inst, u, p) {
			proj[pr[0]] = true
		}
		semi := Semijoin(inst, u, p)
		if len(semi) != len(proj) {
			return false
		}
		for _, ri := range semi {
			if !proj[ri] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

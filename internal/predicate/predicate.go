// Package predicate implements equijoin and semijoin predicates over a pair
// of relations, together with the paper's central tool: the most specific
// join predicate T(t) selecting a tuple t of the Cartesian product.
//
// A join predicate θ is a subset of Ω = attrs(R) × attrs(P) (Section 2).
// Pairs are numbered i·m + j for (A_i, B_j) with m = |attrs(P)| and the
// predicate itself is a bit set over that universe, so subset tests,
// intersections and the lattice order are single-word operations for
// ordinary schemas.
package predicate

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/relation"
)

// Universe describes Ω = attrs(R) × attrs(P) for a concrete instance and
// owns the numbering of attribute pairs.
type Universe struct {
	RSchema *relation.Schema
	PSchema *relation.Schema
	n, m    int // |attrs(R)|, |attrs(P)|
}

// NewUniverse builds the pair universe for an instance.
func NewUniverse(inst *relation.Instance) *Universe {
	return &Universe{
		RSchema: inst.R.Schema,
		PSchema: inst.P.Schema,
		n:       inst.R.Schema.Arity(),
		m:       inst.P.Schema.Arity(),
	}
}

// Size returns |Ω| = n·m.
func (u *Universe) Size() int { return u.n * u.m }

// PairID maps attribute positions (i over R, j over P) to the pair index.
func (u *Universe) PairID(i, j int) int {
	if i < 0 || i >= u.n || j < 0 || j >= u.m {
		panic(fmt.Sprintf("predicate: pair (%d,%d) outside %dx%d universe", i, j, u.n, u.m))
	}
	return i*u.m + j
}

// Pair inverts PairID.
func (u *Universe) Pair(id int) (i, j int) {
	if id < 0 || id >= u.Size() {
		panic(fmt.Sprintf("predicate: pair id %d outside universe of size %d", id, u.Size()))
	}
	return id / u.m, id % u.m
}

// PairName renders pair id as "(R.A, P.B)".
func (u *Universe) PairName(id int) string {
	i, j := u.Pair(id)
	return fmt.Sprintf("(%s.%s, %s.%s)",
		u.RSchema.Name, u.RSchema.Attributes[i],
		u.PSchema.Name, u.PSchema.Attributes[j])
}

// Pred is a join predicate: a set of attribute pairs from Ω. The zero value
// is the most general predicate ∅ (select everything).
type Pred struct {
	Set bitset.Set
}

// Empty returns the most general predicate ∅.
func Empty() Pred { return Pred{} }

// Omega returns the most specific predicate Ω for the universe.
func Omega(u *Universe) Pred { return Pred{Set: bitset.Universe(u.Size())} }

// FromPairs builds a predicate from (R-attr index, P-attr index) pairs.
func FromPairs(u *Universe, pairs ...[2]int) Pred {
	s := bitset.New(u.Size())
	for _, p := range pairs {
		s.Add(u.PairID(p[0], p[1]))
	}
	return Pred{Set: s}
}

// FromNames builds a predicate from attribute-name pairs such as
// ("To", "City"). It returns an error for unknown attribute names.
func FromNames(u *Universe, pairs ...[2]string) (Pred, error) {
	s := bitset.New(u.Size())
	for _, p := range pairs {
		i := u.RSchema.IndexOf(p[0])
		if i < 0 {
			return Pred{}, fmt.Errorf("predicate: %s has no attribute %q", u.RSchema.Name, p[0])
		}
		j := u.PSchema.IndexOf(p[1])
		if j < 0 {
			return Pred{}, fmt.Errorf("predicate: %s has no attribute %q", u.PSchema.Name, p[1])
		}
		s.Add(u.PairID(i, j))
	}
	return Pred{Set: s}, nil
}

// MustFromNames is FromNames that panics on error.
func MustFromNames(u *Universe, pairs ...[2]string) Pred {
	p, err := FromNames(u, pairs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns |θ|, the number of equality conditions.
func (p Pred) Size() int { return p.Set.Len() }

// IsEmpty reports whether θ = ∅ (the most general predicate).
func (p Pred) IsEmpty() bool { return p.Set.IsEmpty() }

// Equal reports predicate equality.
func (p Pred) Equal(q Pred) bool { return p.Set.Equal(q.Set) }

// MoreGeneralThan reports p ⊆ q: p is more general than (or equal to) q.
// By anti-monotonicity (Section 2), p ⊆ q implies R ⋈q P ⊆ R ⋈p P.
func (p Pred) MoreGeneralThan(q Pred) bool { return p.Set.SubsetOf(q.Set) }

// Intersect returns p ∩ q.
func (p Pred) Intersect(q Pred) Pred { return Pred{Set: p.Set.Intersect(q.Set)} }

// IntersectInto replaces dst with p ∩ q, reusing dst's backing storage —
// the allocation-free Intersect used by the certainty-test hot paths.
func IntersectInto(dst *Pred, p, q Pred) { bitset.IntersectInto(&dst.Set, p.Set, q.Set) }

// Union returns p ∪ q.
func (p Pred) Union(q Pred) Pred { return Pred{Set: p.Set.Union(q.Set)} }

// Clone returns an independent copy.
func (p Pred) Clone() Pred { return Pred{Set: p.Set.Clone()} }

// Key returns a canonical map key for the predicate.
func (p Pred) Key() string { return p.Set.Key() }

// Format renders the predicate with attribute names, e.g.
// "Flight.To = Hotel.City ∧ Flight.Airline = Hotel.Discount"; ∅ renders as
// "⊤ (empty predicate)".
func (p Pred) Format(u *Universe) string {
	if p.IsEmpty() {
		return "⊤ (empty predicate)"
	}
	var parts []string
	p.Set.ForEach(func(id int) bool {
		i, j := u.Pair(id)
		parts = append(parts, fmt.Sprintf("%s.%s = %s.%s",
			u.RSchema.Name, u.RSchema.Attributes[i],
			u.PSchema.Name, u.PSchema.Attributes[j]))
		return true
	})
	return strings.Join(parts, " ∧ ")
}

// String renders the predicate as raw pair ids; use Format for names.
func (p Pred) String() string { return p.Set.String() }

// T computes the most specific equijoin predicate selecting the product
// tuple (tR, tP): T(t) = {(A_i, B_j) | tR[A_i] = tP[B_j]} (Section 3).
func T(u *Universe, tR, tP relation.Tuple) Pred {
	s := bitset.New(u.Size())
	for i := 0; i < u.n; i++ {
		v := tR[i]
		for j := 0; j < u.m; j++ {
			if tP[j] == v {
				s.Add(u.PairID(i, j))
			}
		}
	}
	return Pred{Set: s}
}

// TSet computes T(U) = ∩_{t∈U} T(t) for a set of product tuples given as
// their T values. For an empty U it returns Ω, the neutral element of
// intersection, which matches the paper's use: with no positive examples
// every predicate (in particular Ω) still selects all of S+.
func TSet(u *Universe, ts []Pred) Pred {
	out := Omega(u)
	for _, t := range ts {
		out.Set.IntersectInPlace(t.Set)
	}
	return out
}

// Selects reports whether θ selects the product tuple (tR, tP):
// t ∈ R ⋈θ P ⇔ θ ⊆ T(t).
func (p Pred) Selects(u *Universe, tR, tP relation.Tuple) bool {
	ok := true
	p.Set.ForEach(func(id int) bool {
		i, j := u.Pair(id)
		if tR[i] != tP[j] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Join materializes R ⋈θ P as pairs of tuple indexes (ri, pi) into the
// instance, in row-major order. Intended for tests and small instances;
// the inference engine itself never materializes joins.
func Join(inst *relation.Instance, u *Universe, p Pred) [][2]int {
	var out [][2]int
	for ri, tR := range inst.R.Tuples {
		if !inst.RAlive(ri) {
			continue
		}
		for pi, tP := range inst.P.Tuples {
			if !inst.PAlive(pi) {
				continue
			}
			if p.Selects(u, tR, tP) {
				out = append(out, [2]int{ri, pi})
			}
		}
	}
	return out
}

// Semijoin materializes R ⋉θ P = Π_attrs(R)(R ⋈θ P) as R-tuple indexes in
// increasing order.
func Semijoin(inst *relation.Instance, u *Universe, p Pred) []int {
	var out []int
	for ri, tR := range inst.R.Tuples {
		if !inst.RAlive(ri) {
			continue
		}
		for pi, tP := range inst.P.Tuples {
			if !inst.PAlive(pi) {
				continue
			}
			if p.Selects(u, tR, tP) {
				out = append(out, ri)
				break
			}
		}
	}
	return out
}

// NonNullable reports whether θ selects at least one tuple of the product
// (Section 4.2). θ is non-nullable iff θ ⊆ T(t) for some product tuple t.
func NonNullable(inst *relation.Instance, u *Universe, p Pred) bool {
	for ri, tR := range inst.R.Tuples {
		if !inst.RAlive(ri) {
			continue
		}
		for pi, tP := range inst.P.Tuples {
			if !inst.PAlive(pi) {
				continue
			}
			if p.Selects(u, tR, tP) {
				return true
			}
		}
	}
	return false
}

// Package paperdata builds the concrete instances used as running examples
// in the paper, so that tests across packages can verify against the exact
// figures: the Flight/Hotel tables of Figure 1 and the R0/P0 instance of
// Example 2.1 (with its Cartesian product, Figure 3, and lattice, Figure 4).
package paperdata

import "repro/internal/relation"

// FlightHotel returns the instance of Figure 1: four flights, three hotels.
// The two envisioned goal queries are
//
//	Q1: Flight.To = Hotel.City
//	Q2: Flight.To = Hotel.City ∧ Flight.Airline = Hotel.Discount
func FlightHotel() *relation.Instance {
	flight := relation.NewRelation(relation.MustSchema("Flight", "From", "To", "Airline"))
	flight.MustAddTuple("Paris", "Lille", "AF")
	flight.MustAddTuple("Lille", "NYC", "AA")
	flight.MustAddTuple("NYC", "Paris", "AA")
	flight.MustAddTuple("Paris", "NYC", "AF")

	hotel := relation.NewRelation(relation.MustSchema("Hotel", "City", "Discount"))
	hotel.MustAddTuple("NYC", "AA")
	hotel.MustAddTuple("Paris", "None")
	hotel.MustAddTuple("Lille", "AF")

	return relation.MustInstance(flight, hotel)
}

// Example21 returns the instance of Example 2.1:
//
//	R0(A1, A2) = {t1=(0,1), t2=(0,2), t3=(2,2), t4=(1,0)}
//	P0(B1, B2, B3) = {t1'=(1,1,0), t2'=(0,1,2), t3'=(2,0,0)}
//
// Its Cartesian product has 12 tuples, each with a distinct most specific
// join predicate (Figure 3); the corresponding lattice is Figure 4 and the
// join ratio is exactly 2 (Section 5.3).
func Example21() *relation.Instance {
	r0 := relation.NewRelation(relation.MustSchema("R0", "A1", "A2"))
	r0.MustAddTuple("0", "1") // t1
	r0.MustAddTuple("0", "2") // t2
	r0.MustAddTuple("2", "2") // t3
	r0.MustAddTuple("1", "0") // t4

	p0 := relation.NewRelation(relation.MustSchema("P0", "B1", "B2", "B3"))
	p0.MustAddTuple("1", "1", "0") // t1'
	p0.MustAddTuple("0", "1", "2") // t2'
	p0.MustAddTuple("2", "0", "0") // t3'

	return relation.MustInstance(r0, p0)
}

// SingleTuple returns the one-row instance R1/P1 of Section 3.3 used to
// illustrate instance-equivalent predicates: R1(A1,A2) = {(1,1)} and
// P1(B1) = {(1)}.
func SingleTuple() *relation.Instance {
	r1 := relation.NewRelation(relation.MustSchema("R1", "A1", "A2"))
	r1.MustAddTuple("1", "1")
	p1 := relation.NewRelation(relation.MustSchema("P1", "B1"))
	p1.MustAddTuple("1")
	return relation.MustInstance(r1, p1)
}

// Package stats provides the small set of descriptive statistics the
// experiment harness reports: streaming mean/variance (Welford), extrema
// and percentiles. Kept separate so the aggregation logic is testable in
// isolation from the experiments that feed it.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Acc is a streaming accumulator. The zero value is ready to use.
type Acc struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add records one observation.
func (a *Acc) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
	if !a.hasExtrema || x < a.min {
		a.min = x
	}
	if !a.hasExtrema || x > a.max {
		a.max = x
	}
	a.hasExtrema = true
}

// N returns the number of observations.
func (a *Acc) N() int { return a.n }

// Mean returns the arithmetic mean (0 for no observations).
func (a *Acc) Mean() float64 { return a.mean }

// Var returns the sample variance (n−1 denominator; 0 for n < 2).
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Acc) StdDev() float64 { return math.Sqrt(a.Var()) }

// Min and Max return the extrema (0 for no observations).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest observation.
func (a *Acc) Max() float64 { return a.max }

// String renders "mean ± stddev (n=…)".
func (a *Acc) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", a.Mean(), a.StdDev(), a.n)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the values using
// nearest-rank on a sorted copy. ok is false — and the value 0 — when
// values is empty or p is outside [0, 100]; callers check ok instead of
// guarding against a panic, so summarizing a window with no observations
// yet (an idle histogram, an empty trace ring) degrades to zero rather
// than taking the process down.
func Percentile(values []float64, p float64) (value float64, ok bool) {
	if len(values) == 0 || p < 0 || p > 100 {
		return 0, false
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], true
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1], true
}

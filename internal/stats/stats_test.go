package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccBasics(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Mean() != 0 || a.Var() != 0 {
		t.Error("zero Acc not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Sample variance of the classic dataset: Σ(x−5)² = 32, /7.
	if math.Abs(a.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", a.Var(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("extrema = %v, %v", a.Min(), a.Max())
	}
	if !strings.Contains(a.String(), "n=8") {
		t.Errorf("String = %q", a.String())
	}
}

func TestSingleObservation(t *testing.T) {
	var a Acc
	a.Add(3)
	if a.Mean() != 3 || a.Var() != 0 || a.StdDev() != 0 {
		t.Error("single observation stats wrong")
	}
	if a.Min() != 3 || a.Max() != 3 {
		t.Error("single observation extrema wrong")
	}
}

func TestNegativeValues(t *testing.T) {
	var a Acc
	a.Add(-5)
	a.Add(5)
	if a.Mean() != 0 || a.Min() != -5 || a.Max() != 5 {
		t.Error("negative handling wrong")
	}
}

// TestQuickWelfordMatchesTwoPass: the streaming computation agrees with the
// naive two-pass formulas.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		var a Acc
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
			a.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Var()-variance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {100, 5}, {90, 5},
	}
	for _, c := range cases {
		got, ok := Percentile(vals, c.p)
		if !ok || got != c.want {
			t.Errorf("Percentile(%v) = %v, %v, want %v, true", c.p, got, ok, c.want)
		}
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Error("Percentile mutated input")
	}
}

func TestPercentileDegenerate(t *testing.T) {
	// Empty input and out-of-range p report ok=false with a zero value
	// instead of panicking: telemetry summaries run over windows that may
	// hold no observations yet.
	for _, c := range []struct {
		vals []float64
		p    float64
	}{
		{nil, 50},
		{[]float64{}, 50},
		{[]float64{1}, -1},
		{[]float64{1}, 101},
	} {
		if got, ok := Percentile(c.vals, c.p); ok || got != 0 {
			t.Errorf("Percentile(%v, %v) = %v, %v, want 0, false", c.vals, c.p, got, ok)
		}
	}
}

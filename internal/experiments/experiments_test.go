package experiments

import (
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/tpch"
)

func TestTPCHAllJoins(t *testing.T) {
	rows, err := TPCH(TPCHOptions{Multiplier: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if len(r.Cells) != 5 {
			t.Errorf("%s: %d strategies, want 5", r.Workload, len(r.Cells))
		}
		for name, c := range r.Cells {
			if c.Interactions < 1 {
				t.Errorf("%s/%s: interactions = %v", r.Workload, name, c.Interactions)
			}
			if c.Seconds < 0 {
				t.Errorf("%s/%s: negative time", r.Workload, name)
			}
		}
		if r.JoinRatio <= 0 {
			t.Errorf("%s: join ratio %v", r.Workload, r.JoinRatio)
		}
	}
	// The size-2 goal (Join 5) must need more interactions than the size-1
	// joins for the deterministic local strategies — the paper's headline
	// shape (RND can get lucky, so it is excluded).
	for _, name := range []string{"BU", "TD"} {
		if rows[4].Cells[name].Interactions <= rows[0].Cells[name].Interactions {
			t.Errorf("%s on Join 5 (%v) should exceed Join 1 (%v)",
				name, rows[4].Cells[name].Interactions, rows[0].Cells[name].Interactions)
		}
	}
}

func TestTPCHSubset(t *testing.T) {
	rows, err := TPCH(TPCHOptions{
		Multiplier: 1,
		Seed:       1,
		Joins:      []tpch.Join{tpch.Join2},
		Makers:     DefaultMakers(1)[:2], // BU, TD
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Cells) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestSynthSmall(t *testing.T) {
	rows, err := Synth(SynthOptions{
		Config:          synth.Config{AttrsR: 2, AttrsP: 3, Rows: 20, Values: 20},
		Runs:            2,
		Seed:            7,
		MaxGoalsPerSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Size 0 must exist and BU must need exactly 1 interaction on it.
	var size0 *Row
	for i := range rows {
		if rows[i].GoalSize == 0 {
			size0 = &rows[i]
		}
	}
	if size0 == nil {
		t.Fatal("no size-0 row")
	}
	if c, ok := size0.Cells["BU"]; !ok || c.Interactions != 1 {
		t.Errorf("BU on goal ∅: %+v, want exactly 1 interaction", size0.Cells["BU"])
	}
	// Rows sorted by goal size.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].GoalSize >= rows[i].GoalSize {
			t.Error("rows not ordered by goal size")
		}
	}
}

// TestSynthParallelMatchesSequential: parallel execution must produce
// identical interaction aggregates (timings differ, but the counts and
// metadata are deterministic per seed).
func TestSynthParallelMatchesSequential(t *testing.T) {
	base := SynthOptions{
		Config:          synth.Config{AttrsR: 2, AttrsP: 3, Rows: 20, Values: 20},
		Runs:            4,
		Seed:            5,
		MaxGoalsPerSize: 3,
	}
	seq, err := Synth(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallelism = 4
	got, err := Synth(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(got) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(got))
	}
	for i := range seq {
		if seq[i].GoalSize != got[i].GoalSize || seq[i].JoinRatio != got[i].JoinRatio {
			t.Errorf("row %d metadata differs", i)
		}
		for name, c := range seq[i].Cells {
			pc, ok := got[i].Cells[name]
			if !ok {
				t.Errorf("row %d missing strategy %s in parallel run", i, name)
				continue
			}
			if c.Interactions != pc.Interactions || c.Runs != pc.Runs ||
				c.InteractionsStdDev != pc.InteractionsStdDev {
				t.Errorf("row %d %s: interactions %v/%v runs %d/%d",
					i, name, c.Interactions, pc.Interactions, c.Runs, pc.Runs)
			}
		}
	}
}

func TestExtendedMakers(t *testing.T) {
	ms := ExtendedMakers(1)
	if len(ms) != 7 {
		t.Fatalf("got %d makers, want 7", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name] = true
		if m.New(0) == nil {
			t.Errorf("maker %s builds nil strategy", m.Name)
		}
	}
	if !names["HALVE"] || !names["L3S"] {
		t.Error("extended makers missing HALVE/L3S")
	}
}

func TestBest(t *testing.T) {
	r := Row{Cells: map[string]Cell{
		"BU":  {Interactions: 5, Seconds: 0.001},
		"TD":  {Interactions: 3, Seconds: 0.002},
		"L2S": {Interactions: 3, Seconds: 0.001},
	}}
	name, c := r.Best(StrategyOrder)
	if name != "L2S" || c.Interactions != 3 {
		t.Errorf("Best = %s %+v, want L2S (tie broken by time)", name, c)
	}
	empty := Row{Cells: map[string]Cell{}}
	if name, _ := empty.Best(StrategyOrder); name != "" {
		t.Errorf("Best of empty = %q", name)
	}
}

func TestRenderers(t *testing.T) {
	rows, err := TPCH(TPCHOptions{
		Multiplier: 1,
		Seed:       3,
		Joins:      []tpch.Join{tpch.Join1, tpch.Join2},
		Makers:     DefaultMakers(3)[:3],
	})
	if err != nil {
		t.Fatal(err)
	}
	inter := RenderInteractions("Figure 6(a)", rows)
	if !strings.Contains(inter, "Join 1") || !strings.Contains(inter, "BU") {
		t.Errorf("interactions panel missing content:\n%s", inter)
	}
	times := RenderTimes("Figure 6(c)", rows)
	if !strings.Contains(times, "seconds") {
		t.Errorf("times panel missing header:\n%s", times)
	}
	table := RenderTable1(rows)
	if !strings.Contains(table, "join ratio") || !strings.Contains(table, "int.") {
		t.Errorf("table 1 missing content:\n%s", table)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(4) != "4" {
		t.Errorf("trimFloat(4) = %q", trimFloat(4))
	}
	if trimFloat(4.25) != "4.25" {
		t.Errorf("trimFloat(4.25) = %q", trimFloat(4.25))
	}
	if trimFloat(4.20) != "4.2" {
		t.Errorf("trimFloat(4.2) = %q", trimFloat(4.2))
	}
}

// TestShapeSize2TDBeatsBU: on a synthetic config, for goals of size ≥ 1,
// TD never needs more interactions than BU (TD prunes the top of the
// lattice first; BU can only match it after positives arrive).
func TestShapeLocalStrategies(t *testing.T) {
	rows, err := Synth(SynthOptions{
		Config:          synth.Config{AttrsR: 3, AttrsP: 3, Rows: 30, Values: 50},
		Runs:            3,
		Seed:            11,
		MaxGoalsPerSize: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GoalSize == 0 {
			continue
		}
		bu, okB := r.Cells["BU"]
		l2, okL := r.Cells["L2S"]
		if okB && okL && l2.Interactions > bu.Interactions*2+2 {
			t.Errorf("size %d: L2S (%v) wildly worse than BU (%v)",
				r.GoalSize, l2.Interactions, bu.Interactions)
		}
	}
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

// TestGoldenSynthPanel pins the full rendered interactions panel for a
// small seeded workload: every strategy (including seeded RND) is
// deterministic, so any drift in engine, strategies, generator or renderer
// shows up as a diff here.
func TestGoldenSynthPanel(t *testing.T) {
	rows, err := Synth(SynthOptions{
		Config:          synth.Config{AttrsR: 2, AttrsP: 2, Rows: 12, Values: 8},
		Runs:            2,
		Seed:            123,
		MaxGoalsPerSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := RenderInteractions("golden", rows)

	// Structural golden checks, robust to cosmetic renderer changes but
	// pinned on the numbers: recompute and require exact reproducibility.
	again, err := Synth(SynthOptions{
		Config:          synth.Config{AttrsR: 2, AttrsP: 2, Rows: 12, Values: 8},
		Runs:            2,
		Seed:            123,
		MaxGoalsPerSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got2 := RenderInteractions("golden", again); got2 != got {
		t.Errorf("same seed rendered differently:\n%s\nvs\n%s", got, got2)
	}

	// Sanity anchors that must hold for this workload.
	if !strings.Contains(got, "|θG| = 0") {
		t.Errorf("missing size-0 row:\n%s", got)
	}
	lines := strings.Split(got, "\n")
	var size0 string
	for _, l := range lines {
		if strings.Contains(l, "|θG| = 0") {
			size0 = l
		}
	}
	fields := strings.Fields(size0)
	// workload occupies three fields ("|θG|", "=", "0"); BU is next.
	if len(fields) < 4 || fields[3] != "1" {
		t.Errorf("BU on size 0 should be exactly 1:\n%s", size0)
	}
}

package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// StrategyOrder is the paper's column order for the per-strategy panels,
// followed by this implementation's extensions.
var StrategyOrder = []string{"BU", "TD", "L1S", "L2S", "RND", "HALVE", "L3S"}

// RenderInteractions renders the "number of interactions" panel of a
// figure: one line per workload, one column per strategy.
func RenderInteractions(title string, rows []Row) string {
	return renderPanel(title+" — number of interactions", rows, func(c Cell) string {
		return trimFloat(c.Interactions)
	})
}

// RenderTimes renders the "inference time (seconds)" panel of a figure.
func RenderTimes(title string, rows []Row) string {
	return renderPanel(title+" — inference time (seconds)", rows, func(c Cell) string {
		return fmt.Sprintf("%.4f", c.Seconds)
	})
}

func renderPanel(title string, rows []Row, cell func(Cell) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	cols := presentStrategies(rows)

	widths := make([]int, len(cols)+1)
	widths[0] = len("workload")
	for _, r := range rows {
		if len(r.Workload) > widths[0] {
			widths[0] = len(r.Workload)
		}
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		line := []string{r.Workload}
		for i, name := range cols {
			s := "-"
			if c, ok := r.Cells[name]; ok {
				s = cell(c)
			}
			line = append(line, s)
			if len(s) > widths[i+1] {
				widths[i+1] = len(s)
			}
			if len(name) > widths[i+1] {
				widths[i+1] = len(name)
			}
		}
		table = append(table, line)
	}
	fmt.Fprintf(&b, "  %-*s", widths[0], "workload")
	for i, name := range cols {
		fmt.Fprintf(&b, "  %*s", widths[i+1], name)
	}
	b.WriteByte('\n')
	for _, line := range table {
		fmt.Fprintf(&b, "  %-*s", widths[0], line[0])
		for i, s := range line[1:] {
			fmt.Fprintf(&b, "  %*s", widths[i+1], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTable1 renders the summary the way Table 1 does: instance metadata,
// best strategy by interactions, and the best strategy's time.
func RenderTable1(rows []Row) string {
	var b strings.Builder
	b.WriteString("Table 1 — description and summary of all experiments\n")
	header := []string{"dataset", "workload", "|D|", "join ratio", "best (interactions)", "time of best (s)"}
	table := [][]string{header}
	for _, r := range rows {
		name, best := r.Best(StrategyOrder)
		table = append(table, []string{
			r.Dataset,
			r.Workload,
			fmt.Sprintf("%.3g", r.ProductSize),
			fmt.Sprintf("%.3f", r.JoinRatio),
			fmt.Sprintf("%s (%s int.)", name, trimFloat(best.Interactions)),
			fmt.Sprintf("%.4f", best.Seconds),
		})
	}
	widths := make([]int, len(header))
	for _, line := range table {
		for i, s := range line {
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	for _, line := range table {
		for i, s := range line {
			fmt.Fprintf(&b, "  %-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// presentStrategies returns the strategies present in the rows, in
// StrategyOrder followed by any extras alphabetically.
func presentStrategies(rows []Row) []string {
	present := make(map[string]bool)
	for _, r := range rows {
		for name := range r.Cells {
			present[name] = true
		}
	}
	var cols []string
	for _, name := range StrategyOrder {
		if present[name] {
			cols = append(cols, name)
			delete(present, name)
		}
	}
	var extra []string
	for name := range present {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	return append(cols, extra...)
}

// trimFloat renders 4 as "4" and 4.25 as "4.25".
func trimFloat(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Package experiments reproduces the paper's experimental study
// (Section 5): Figure 6 (the five TPC-H goal joins at two scales),
// Figure 7 (six synthetic configurations, goals grouped by predicate size),
// and Table 1 (the summary with Cartesian-product sizes, join ratios, best
// strategies and timings).
//
// Each experiment measures, per strategy, the number of user interactions
// and the wall-clock inference time, exactly the two measures the paper
// reports. Results carry enough metadata to render the paper-style rows
// (render.go).
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/inference"
	"repro/internal/lattice"
	"repro/internal/oracle"
	"repro/internal/pool"
	"repro/internal/predicate"
	"repro/internal/product"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/synth"
	"repro/internal/tpch"
)

// Maker names a strategy and constructs fresh instances of it (strategies
// may carry per-run state such as RND's generator or TD's cache).
type Maker struct {
	Name string
	// New builds a fresh strategy. The seed parameter only matters for
	// randomized strategies (RND); it is derived deterministically from
	// the workload so results do not depend on scheduling.
	New func(seed int64) inference.Strategy
}

// DefaultMakers returns the paper's five strategies in its reporting order:
// BU, TD, L1S, L2S, RND.
func DefaultMakers(seed int64) []Maker {
	return DefaultMakersWorkers(seed, 1)
}

// DefaultMakersWorkers is DefaultMakers with the lookahead strategies
// fanning their per-candidate evaluation across workers goroutines
// (strategy.Lookahead.Workers). Interaction counts are unaffected — the
// parallel reduction applies the exact serial selection rule — only the
// per-question wall-clock changes.
func DefaultMakersWorkers(seed int64, workers int) []Maker {
	return []Maker{
		{Name: "BU", New: func(int64) inference.Strategy { return strategy.BottomUp{} }},
		{Name: "TD", New: func(int64) inference.Strategy { return strategy.NewTopDown() }},
		{Name: "L1S", New: func(int64) inference.Strategy { return strategy.Lookahead{K: 1, Workers: workers} }},
		{Name: "L2S", New: func(int64) inference.Strategy { return strategy.Lookahead{K: 2, Workers: workers} }},
		{Name: "RND", New: func(s int64) inference.Strategy { return strategy.NewRandom(seed ^ s) }},
	}
}

// ExtendedMakers appends this implementation's extra strategies to the
// paper's five: HALVE (version-space halving) and L3S (three-step
// lookahead). Comparing them against the originals is the
// "probabilistic lookahead" ablation DESIGN.md calls out.
func ExtendedMakers(seed int64) []Maker {
	return ExtendedMakersWorkers(seed, 1)
}

// ExtendedMakersWorkers is ExtendedMakers with the lookahead strategies
// running workers-wide candidate evaluation (see DefaultMakersWorkers).
func ExtendedMakersWorkers(seed int64, workers int) []Maker {
	return append(DefaultMakersWorkers(seed, workers),
		Maker{Name: "HALVE", New: func(int64) inference.Strategy { return strategy.Halving{} }},
		Maker{Name: "L3S", New: func(int64) inference.Strategy { return strategy.Lookahead{K: 3, MaxCandidates: 16, Workers: workers} }},
	)
}

// forEachTask runs fn(i) for every i in [0, n), fanning across at most
// workers goroutines (0 or 1 = sequential). fn must confine its writes to
// per-index slots.
func forEachTask(workers, n int, fn func(i int)) {
	pool.ForEach(context.Background(), workers, n, fn)
}

// Cell is one (strategy, workload) measurement, averaged over the
// workload's goals and runs.
type Cell struct {
	Interactions float64
	Seconds      float64
	Runs         int
	// InteractionsStdDev is the sample standard deviation across the
	// workload's goals and runs (0 for single measurements).
	InteractionsStdDev float64
}

// Row is one workload line of a figure or table.
type Row struct {
	// Dataset identifies the instance family ("TPC-H ×1", "(3, 3, 50, 100)").
	Dataset string
	// Workload identifies the goal group ("Join 1 (size 1)", "|θG| = 2").
	Workload string
	// GoalSize is |θG| for the group.
	GoalSize int
	// ProductSize, Classes, JoinRatio describe the instance(s); for
	// multi-run synthetic rows they are averages.
	ProductSize float64
	Classes     float64
	JoinRatio   float64
	// Cells maps strategy name → measurement.
	Cells map[string]Cell
}

// Best returns the strategy with the fewest interactions (ties broken by
// smaller time, then by the paper's ordering of names).
func (r Row) Best(order []string) (string, Cell) {
	bestName := ""
	var best Cell
	for _, name := range order {
		c, ok := r.Cells[name]
		if !ok {
			continue
		}
		if bestName == "" ||
			c.Interactions < best.Interactions ||
			(c.Interactions == best.Interactions && c.Seconds < best.Seconds) {
			bestName, best = name, c
		}
	}
	return bestName, best
}

// runOne executes one inference run and returns interactions and duration.
func runOne(inst *relation.Instance, classes []*product.Class, mk Maker,
	goal predicate.Pred, seed int64) (int, time.Duration, error) {
	e := inference.New(inst, inference.WithClasses(classes))
	orc := oracle.NewHonest(inst, e.U, goal)
	start := time.Now()
	res, err := inference.Run(e, mk.New(seed), orc, 4*len(classes)+16)
	if err != nil {
		return 0, 0, fmt.Errorf("%s on %s: %w", mk.Name, goal.Format(e.U), err)
	}
	return res.Interactions, time.Since(start), nil
}

// TPCHOptions configures the Figure 6 experiments.
type TPCHOptions struct {
	// Multiplier is the row-count multiplier (see tpch.SFToMultiplier).
	Multiplier int
	// Seed drives data generation and RND.
	Seed int64
	// Joins restricts the goal joins; nil means all five.
	Joins []tpch.Join
	// Makers restricts the strategies; nil means DefaultMakers(Seed).
	Makers []Maker
	// Parallelism runs that many (join, strategy) inference tasks
	// concurrently (0 or 1 = sequential, negative = one per CPU). Interaction
	// counts are unaffected
	// (every task is an independent run); per-task wall-clock times gain
	// scheduling noise, so keep it at 1 when timing precision matters.
	Parallelism int
}

// TPCH runs the Figure 6 experiment: for each goal join, every strategy's
// interaction count and inference time. Each (join, strategy) run is an
// independent task, fanned across Parallelism goroutines; results are
// merged in (join, strategy) order, so rows are deterministic regardless
// of scheduling.
func TPCH(o TPCHOptions) ([]Row, error) {
	if o.Multiplier < 1 {
		o.Multiplier = 1
	}
	joins := o.Joins
	if joins == nil {
		joins = tpch.AllJoins()
	}
	makers := o.Makers
	if makers == nil {
		makers = DefaultMakers(o.Seed)
	}
	data, err := tpch.Generate(o.Multiplier, o.Seed)
	if err != nil {
		return nil, err
	}
	// Workloads materialize lazily (first task of a join builds its
	// instance and classes) and are released once the join's last task
	// finishes, so peak memory stays at the joins currently in flight —
	// one for a sequential run, matching the old per-join loop.
	type workload struct {
		once    sync.Once
		inst    *relation.Instance
		goal    predicate.Pred
		classes []*product.Class
		stats   lattice.Stats
		err     error
		pending atomic.Int32
	}
	wls := make([]*workload, len(joins))
	for ji := range wls {
		wls[ji] = &workload{}
		wls[ji].pending.Store(int32(len(makers)))
	}
	materialize := func(ji int) *workload {
		wl := wls[ji]
		wl.once.Do(func() {
			inst, goal, err := data.Instance(joins[ji])
			if err != nil {
				wl.err = err
				return
			}
			u := predicate.NewUniverse(inst)
			wl.inst, wl.goal = inst, goal
			wl.classes = product.ClassesIndexed(inst, u)
			wl.stats = lattice.ComputeStats(wl.classes)
		})
		return wl
	}
	type taskResult struct {
		n   int
		d   time.Duration
		err error
	}
	results := make([]taskResult, len(joins)*len(makers))
	forEachTask(o.Parallelism, len(results), func(i int) {
		ji, mi := i/len(makers), i%len(makers)
		wl := materialize(ji)
		if wl.err != nil {
			results[i] = taskResult{err: wl.err}
		} else {
			n, d, err := runOne(wl.inst, wl.classes, makers[mi], wl.goal, int64(joins[ji])*1009)
			results[i] = taskResult{n: n, d: d, err: err}
		}
		if wl.pending.Add(-1) == 0 {
			wl.inst, wl.classes = nil, nil // stats and goal stay for the rows
		}
	})
	var rows []Row
	for ji, j := range joins {
		st := wls[ji].stats
		row := Row{
			Dataset:     fmt.Sprintf("TPC-H ×%d", o.Multiplier),
			Workload:    fmt.Sprintf("%s (size %d)", j, j.GoalSize()),
			GoalSize:    j.GoalSize(),
			ProductSize: float64(st.ProductSize),
			Classes:     float64(st.Classes),
			JoinRatio:   st.JoinRatio,
			Cells:       make(map[string]Cell, len(makers)),
		}
		for mi, mk := range makers {
			res := results[ji*len(makers)+mi]
			if res.err != nil {
				return nil, res.err
			}
			row.Cells[mk.Name] = Cell{
				Interactions: float64(res.n),
				Seconds:      res.d.Seconds(),
				Runs:         1,
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SynthOptions configures the Figure 7 experiments.
type SynthOptions struct {
	Config synth.Config
	// Runs is the number of random instances averaged (the paper uses 100).
	Runs int
	// Seed is the base seed; run i uses Seed+i.
	Seed int64
	// MaxGoalsPerSize caps the number of goal predicates evaluated per
	// predicate size in each run (0 = all non-nullable goals, as the
	// paper). The cap samples deterministically by taking the first goals
	// in canonical order.
	MaxGoalsPerSize int
	// MaxGoalSize bounds the goal sizes reported (the paper plots 0–4).
	MaxGoalSize int
	// Makers restricts the strategies; nil means DefaultMakers(Seed).
	Makers []Maker
	// Parallelism runs that many (strategy, goal) inference tasks
	// concurrently (0 or 1 = sequential, negative = one per CPU) —
	// finer-grained than whole
	// instances, so cores stay busy even for a single slow run. Interaction
	// counts are unaffected (every task is an independent, deterministically
	// seeded run); per-task wall-clock times gain scheduling noise, so keep
	// it at 1 when timing precision matters.
	Parallelism int
}

// Synth runs the Figure 7 experiment for one configuration: average
// interactions and time per strategy, grouped by goal-predicate size.
func Synth(o SynthOptions) ([]Row, error) {
	if o.Runs < 1 {
		o.Runs = 1
	}
	if o.MaxGoalSize == 0 {
		o.MaxGoalSize = 4
	}
	makers := o.Makers
	if makers == nil {
		makers = DefaultMakers(o.Seed)
	}

	// Phase 1: generate the instances (one per run, each independently
	// seeded), in parallel — generation is cheap but not free at 100 runs.
	// All runs are held live through phase 3 so tasks can be enumerated and
	// scheduled freely; the paper configurations yield a few dozen classes
	// per instance, so even 100 runs stay in the low megabytes.
	type instanceData struct {
		inst    *relation.Instance
		classes []*product.Class
		stats   lattice.Stats
		goals   map[int][]predicate.Pred
		err     error
	}
	insts := make([]instanceData, o.Runs)
	forEachTask(o.Parallelism, o.Runs, func(run int) {
		inst, err := synth.Generate(o.Config, o.Seed+int64(run))
		if err != nil {
			insts[run] = instanceData{err: err}
			return
		}
		u := predicate.NewUniverse(inst)
		classes := product.ClassesIndexed(inst, u)
		insts[run] = instanceData{
			inst:    inst,
			classes: classes,
			stats:   lattice.ComputeStats(classes),
			goals:   lattice.GoalsBySize(classes),
		}
	})
	for run := range insts {
		if err := insts[run].err; err != nil {
			return nil, err
		}
	}

	// Phase 2: flatten every (run, size, strategy, goal) inference into an
	// independent task. The task order (run-major, then size, strategy,
	// goal) is the exact order the old sequential loop measured in, so the
	// aggregation below is bit-compatible with it.
	type task struct {
		run, size, mi int
		goal          predicate.Pred
		seed          int64
		inter, secs   float64
		err           error
	}
	var tasks []task
	for run := 0; run < o.Runs; run++ {
		goals := insts[run].goals
		for size := 0; size <= o.MaxGoalSize; size++ {
			gs := goals[size]
			if o.MaxGoalsPerSize > 0 && len(gs) > o.MaxGoalsPerSize {
				gs = gs[:o.MaxGoalsPerSize]
			}
			for mi := range makers {
				for gi, goal := range gs {
					tasks = append(tasks, task{
						run: run, size: size, mi: mi, goal: goal,
						seed: int64(run)*1000003 + int64(size)*1009 + int64(gi)*31,
					})
				}
			}
		}
	}

	// Phase 3: execute the tasks on the worker pool; each writes only its
	// own slot.
	forEachTask(o.Parallelism, len(tasks), func(i int) {
		t := &tasks[i]
		id := insts[t.run]
		n, d, err := runOne(id.inst, id.classes, makers[t.mi], t.goal, t.seed)
		if err != nil {
			t.err = err
			return
		}
		t.inter, t.secs = float64(n), d.Seconds()
	})

	// Phase 4: merge in task order so aggregates are deterministic
	// regardless of scheduling.
	type acc struct {
		inter, secs stats.Acc
	}
	accs := make(map[int]map[string]*acc) // size → strategy → accumulators
	var prodSum, classSum, ratioSum float64
	instances := 0
	for run := 0; run < o.Runs; run++ {
		st := insts[run].stats
		prodSum += float64(st.ProductSize)
		classSum += float64(st.Classes)
		ratioSum += st.JoinRatio
		instances++
	}
	for i := range tasks {
		t := &tasks[i]
		if t.err != nil {
			return nil, t.err
		}
		if accs[t.size] == nil {
			accs[t.size] = make(map[string]*acc)
		}
		name := makers[t.mi].Name
		a := accs[t.size][name]
		if a == nil {
			a = &acc{}
			accs[t.size][name] = a
		}
		a.inter.Add(t.inter)
		a.secs.Add(t.secs)
	}

	var rows []Row
	for size := 0; size <= o.MaxGoalSize; size++ {
		byStrat := accs[size]
		if byStrat == nil {
			continue
		}
		row := Row{
			Dataset:     o.Config.String(),
			Workload:    fmt.Sprintf("|θG| = %d", size),
			GoalSize:    size,
			ProductSize: prodSum / float64(instances),
			Classes:     classSum / float64(instances),
			JoinRatio:   ratioSum / float64(instances),
			Cells:       make(map[string]Cell, len(byStrat)),
		}
		for name, a := range byStrat {
			if a.inter.N() == 0 {
				continue
			}
			row.Cells[name] = Cell{
				Interactions:       a.inter.Mean(),
				Seconds:            a.secs.Mean(),
				Runs:               a.inter.N(),
				InteractionsStdDev: a.inter.StdDev(),
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1 assembles the summary table from TPC-H rows at the two scales and
// the six synthetic configurations. makers nil means DefaultMakers(seed);
// parallelism fans the inference tasks like TPCHOptions/SynthOptions do.
func Table1(seed int64, synthRuns, maxGoalsPerSize, parallelism int, makers []Maker) ([]Row, error) {
	var rows []Row
	for _, mult := range []int{1, tpch.SFToMultiplier(100000)} {
		rs, err := TPCH(TPCHOptions{Multiplier: mult, Seed: seed, Makers: makers, Parallelism: parallelism})
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	for _, cfg := range synth.PaperConfigs() {
		rs, err := Synth(SynthOptions{
			Config:          cfg,
			Runs:            synthRuns,
			Seed:            seed,
			MaxGoalsPerSize: maxGoalsPerSize,
			Makers:          makers,
			Parallelism:     parallelism,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}

// Package experiments reproduces the paper's experimental study
// (Section 5): Figure 6 (the five TPC-H goal joins at two scales),
// Figure 7 (six synthetic configurations, goals grouped by predicate size),
// and Table 1 (the summary with Cartesian-product sizes, join ratios, best
// strategies and timings).
//
// Each experiment measures, per strategy, the number of user interactions
// and the wall-clock inference time, exactly the two measures the paper
// reports. Results carry enough metadata to render the paper-style rows
// (render.go).
package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/inference"
	"repro/internal/lattice"
	"repro/internal/oracle"
	"repro/internal/predicate"
	"repro/internal/product"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/synth"
	"repro/internal/tpch"
)

// Maker names a strategy and constructs fresh instances of it (strategies
// may carry per-run state such as RND's generator or TD's cache).
type Maker struct {
	Name string
	// New builds a fresh strategy. The seed parameter only matters for
	// randomized strategies (RND); it is derived deterministically from
	// the workload so results do not depend on scheduling.
	New func(seed int64) inference.Strategy
}

// DefaultMakers returns the paper's five strategies in its reporting order:
// BU, TD, L1S, L2S, RND.
func DefaultMakers(seed int64) []Maker {
	return []Maker{
		{Name: "BU", New: func(int64) inference.Strategy { return strategy.BottomUp{} }},
		{Name: "TD", New: func(int64) inference.Strategy { return strategy.NewTopDown() }},
		{Name: "L1S", New: func(int64) inference.Strategy { return strategy.Lookahead{K: 1} }},
		{Name: "L2S", New: func(int64) inference.Strategy { return strategy.Lookahead{K: 2} }},
		{Name: "RND", New: func(s int64) inference.Strategy { return strategy.NewRandom(seed ^ s) }},
	}
}

// ExtendedMakers appends this implementation's extra strategies to the
// paper's five: HALVE (version-space halving) and L3S (three-step
// lookahead). Comparing them against the originals is the
// "probabilistic lookahead" ablation DESIGN.md calls out.
func ExtendedMakers(seed int64) []Maker {
	return append(DefaultMakers(seed),
		Maker{Name: "HALVE", New: func(int64) inference.Strategy { return strategy.Halving{} }},
		Maker{Name: "L3S", New: func(int64) inference.Strategy { return strategy.Lookahead{K: 3, MaxCandidates: 16} }},
	)
}

// Cell is one (strategy, workload) measurement, averaged over the
// workload's goals and runs.
type Cell struct {
	Interactions float64
	Seconds      float64
	Runs         int
	// InteractionsStdDev is the sample standard deviation across the
	// workload's goals and runs (0 for single measurements).
	InteractionsStdDev float64
}

// Row is one workload line of a figure or table.
type Row struct {
	// Dataset identifies the instance family ("TPC-H ×1", "(3, 3, 50, 100)").
	Dataset string
	// Workload identifies the goal group ("Join 1 (size 1)", "|θG| = 2").
	Workload string
	// GoalSize is |θG| for the group.
	GoalSize int
	// ProductSize, Classes, JoinRatio describe the instance(s); for
	// multi-run synthetic rows they are averages.
	ProductSize float64
	Classes     float64
	JoinRatio   float64
	// Cells maps strategy name → measurement.
	Cells map[string]Cell
}

// Best returns the strategy with the fewest interactions (ties broken by
// smaller time, then by the paper's ordering of names).
func (r Row) Best(order []string) (string, Cell) {
	bestName := ""
	var best Cell
	for _, name := range order {
		c, ok := r.Cells[name]
		if !ok {
			continue
		}
		if bestName == "" ||
			c.Interactions < best.Interactions ||
			(c.Interactions == best.Interactions && c.Seconds < best.Seconds) {
			bestName, best = name, c
		}
	}
	return bestName, best
}

// runOne executes one inference run and returns interactions and duration.
func runOne(inst *relation.Instance, classes []*product.Class, mk Maker,
	goal predicate.Pred, seed int64) (int, time.Duration, error) {
	e := inference.New(inst, inference.WithClasses(classes))
	orc := oracle.NewHonest(inst, e.U, goal)
	start := time.Now()
	res, err := inference.Run(e, mk.New(seed), orc, 4*len(classes)+16)
	if err != nil {
		return 0, 0, fmt.Errorf("%s on %s: %w", mk.Name, goal.Format(e.U), err)
	}
	return res.Interactions, time.Since(start), nil
}

// TPCHOptions configures the Figure 6 experiments.
type TPCHOptions struct {
	// Multiplier is the row-count multiplier (see tpch.SFToMultiplier).
	Multiplier int
	// Seed drives data generation and RND.
	Seed int64
	// Joins restricts the goal joins; nil means all five.
	Joins []tpch.Join
	// Makers restricts the strategies; nil means DefaultMakers(Seed).
	Makers []Maker
}

// TPCH runs the Figure 6 experiment: for each goal join, every strategy's
// interaction count and inference time.
func TPCH(o TPCHOptions) ([]Row, error) {
	if o.Multiplier < 1 {
		o.Multiplier = 1
	}
	joins := o.Joins
	if joins == nil {
		joins = tpch.AllJoins()
	}
	makers := o.Makers
	if makers == nil {
		makers = DefaultMakers(o.Seed)
	}
	data, err := tpch.Generate(o.Multiplier, o.Seed)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, j := range joins {
		inst, goal, err := data.Instance(j)
		if err != nil {
			return nil, err
		}
		u := predicate.NewUniverse(inst)
		classes := product.ClassesIndexed(inst, u)
		st := lattice.ComputeStats(classes)
		row := Row{
			Dataset:     fmt.Sprintf("TPC-H ×%d", o.Multiplier),
			Workload:    fmt.Sprintf("%s (size %d)", j, j.GoalSize()),
			GoalSize:    j.GoalSize(),
			ProductSize: float64(st.ProductSize),
			Classes:     float64(st.Classes),
			JoinRatio:   st.JoinRatio,
			Cells:       make(map[string]Cell, len(makers)),
		}
		for _, mk := range makers {
			n, d, err := runOne(inst, classes, mk, goal, int64(j)*1009)
			if err != nil {
				return nil, err
			}
			row.Cells[mk.Name] = Cell{
				Interactions: float64(n),
				Seconds:      d.Seconds(),
				Runs:         1,
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SynthOptions configures the Figure 7 experiments.
type SynthOptions struct {
	Config synth.Config
	// Runs is the number of random instances averaged (the paper uses 100).
	Runs int
	// Seed is the base seed; run i uses Seed+i.
	Seed int64
	// MaxGoalsPerSize caps the number of goal predicates evaluated per
	// predicate size in each run (0 = all non-nullable goals, as the
	// paper). The cap samples deterministically by taking the first goals
	// in canonical order.
	MaxGoalsPerSize int
	// MaxGoalSize bounds the goal sizes reported (the paper plots 0–4).
	MaxGoalSize int
	// Makers restricts the strategies; nil means DefaultMakers(Seed).
	Makers []Maker
	// Parallelism runs that many instances concurrently (0 or 1 =
	// sequential). Interaction counts are unaffected (every run is
	// independently seeded); per-run wall-clock times gain scheduling
	// noise, so keep it at 1 when timing precision matters.
	Parallelism int
}

// Synth runs the Figure 7 experiment for one configuration: average
// interactions and time per strategy, grouped by goal-predicate size.
func Synth(o SynthOptions) ([]Row, error) {
	if o.Runs < 1 {
		o.Runs = 1
	}
	if o.MaxGoalSize == 0 {
		o.MaxGoalSize = 4
	}
	makers := o.Makers
	if makers == nil {
		makers = DefaultMakers(o.Seed)
	}

	type measure struct {
		size  int
		name  string
		inter float64
		secs  float64
	}
	type runResult struct {
		prod, classes, ratio float64
		measures             []measure
		err                  error
	}

	// oneRun executes all goals × strategies for one generated instance.
	oneRun := func(run int) runResult {
		inst, err := synth.Generate(o.Config, o.Seed+int64(run))
		if err != nil {
			return runResult{err: err}
		}
		u := predicate.NewUniverse(inst)
		classes := product.ClassesIndexed(inst, u)
		st := lattice.ComputeStats(classes)
		res := runResult{
			prod:    float64(st.ProductSize),
			classes: float64(st.Classes),
			ratio:   st.JoinRatio,
		}
		goals := lattice.GoalsBySize(classes)
		for size := 0; size <= o.MaxGoalSize; size++ {
			gs := goals[size]
			if o.MaxGoalsPerSize > 0 && len(gs) > o.MaxGoalsPerSize {
				gs = gs[:o.MaxGoalsPerSize]
			}
			for _, mk := range makers {
				for gi, goal := range gs {
					n, d, err := runOne(inst, classes, mk, goal,
						int64(run)*1000003+int64(size)*1009+int64(gi)*31)
					if err != nil {
						res.err = err
						return res
					}
					res.measures = append(res.measures, measure{
						size: size, name: mk.Name,
						inter: float64(n), secs: d.Seconds(),
					})
				}
			}
		}
		return res
	}

	results := make([]runResult, o.Runs)
	if o.Parallelism > 1 {
		sem := make(chan struct{}, o.Parallelism)
		var wg sync.WaitGroup
		for run := 0; run < o.Runs; run++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(run int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[run] = oneRun(run)
			}(run)
		}
		wg.Wait()
	} else {
		for run := 0; run < o.Runs; run++ {
			results[run] = oneRun(run)
		}
	}

	type acc struct {
		inter, secs stats.Acc
	}
	accs := make(map[int]map[string]*acc) // size → strategy → accumulators
	var prodSum, classSum, ratioSum float64
	instances := 0
	// Merge in run order so aggregates are deterministic regardless of
	// scheduling.
	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
		prodSum += res.prod
		classSum += res.classes
		ratioSum += res.ratio
		instances++
		for _, m := range res.measures {
			if accs[m.size] == nil {
				accs[m.size] = make(map[string]*acc)
			}
			a := accs[m.size][m.name]
			if a == nil {
				a = &acc{}
				accs[m.size][m.name] = a
			}
			a.inter.Add(m.inter)
			a.secs.Add(m.secs)
		}
	}

	var rows []Row
	for size := 0; size <= o.MaxGoalSize; size++ {
		byStrat := accs[size]
		if byStrat == nil {
			continue
		}
		row := Row{
			Dataset:     o.Config.String(),
			Workload:    fmt.Sprintf("|θG| = %d", size),
			GoalSize:    size,
			ProductSize: prodSum / float64(instances),
			Classes:     classSum / float64(instances),
			JoinRatio:   ratioSum / float64(instances),
			Cells:       make(map[string]Cell, len(byStrat)),
		}
		for name, a := range byStrat {
			if a.inter.N() == 0 {
				continue
			}
			row.Cells[name] = Cell{
				Interactions:       a.inter.Mean(),
				Seconds:            a.secs.Mean(),
				Runs:               a.inter.N(),
				InteractionsStdDev: a.inter.StdDev(),
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1 assembles the summary table from TPC-H rows at the two scales and
// the six synthetic configurations.
func Table1(seed int64, synthRuns int, maxGoalsPerSize int) ([]Row, error) {
	var rows []Row
	for _, mult := range []int{1, tpch.SFToMultiplier(100000)} {
		rs, err := TPCH(TPCHOptions{Multiplier: mult, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	for _, cfg := range synth.PaperConfigs() {
		rs, err := Synth(SynthOptions{
			Config:          cfg,
			Runs:            synthRuns,
			Seed:            seed,
			MaxGoalsPerSize: maxGoalsPerSize,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}

package joinpath

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/inference"
	"repro/internal/predicate"
	"repro/internal/relation"
	"repro/internal/strategy"
	"repro/internal/tpch"
)

// tpchPath builds the Customer → Orders → Lineitem chain.
func tpchPath(t testing.TB) (*Path, Goal) {
	t.Helper()
	data := tpch.MustGenerate(1, 42)
	p, err := NewPath(data.Customer, data.Orders, data.Lineitem)
	if err != nil {
		t.Fatal(err)
	}
	_, u0 := p.Step(0)
	g0, err := predicate.FromNames(u0, [2]string{"Custkey", "OCustkey"})
	if err != nil {
		t.Fatal(err)
	}
	_, u1 := p.Step(1)
	g1, err := predicate.FromNames(u1, [2]string{"Orderkey", "LOrderkey"})
	if err != nil {
		t.Fatal(err)
	}
	return p, Goal{g0, g1}
}

func TestNewPathValidation(t *testing.T) {
	data := tpch.MustGenerate(1, 1)
	if _, err := NewPath(data.Customer); err == nil {
		t.Error("single relation accepted")
	}
	if _, err := NewPath(data.Customer, data.Customer); err == nil {
		t.Error("repeated relation (overlapping attrs) accepted")
	}
	p, err := NewPath(data.Customer, data.Orders, data.Lineitem)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps() != 2 {
		t.Errorf("Steps = %d", p.Steps())
	}
}

func TestInferTPCHPath(t *testing.T) {
	p, goal := tpchPath(t)
	orc := &GoalOracle{Path: p, Goal: goal}
	res, err := Infer(p, func() inference.Strategy { return strategy.NewTopDown() }, orc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Preds) != 2 || len(res.PerStep) != 2 {
		t.Fatalf("result shape: %+v", res)
	}
	if res.Interactions != res.PerStep[0]+res.PerStep[1] {
		t.Error("interaction total mismatch")
	}
	// Instance equivalence per step ⇒ identical path join.
	want, err := Eval(p, goal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(p, res.Preds)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("path join sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("path join rows differ at %d", i)
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("goal path join should be non-empty (FK chain)")
	}
}

func TestEvalValidation(t *testing.T) {
	p, goal := tpchPath(t)
	if _, err := Eval(p, goal[:1]); err == nil {
		t.Error("short goal accepted")
	}
}

func TestFormat(t *testing.T) {
	p, goal := tpchPath(t)
	s := Format(p, goal)
	if !strings.Contains(s, "Custkey") || !strings.Contains(s, "⋈") {
		t.Errorf("Format = %q", s)
	}
}

// TestQuickPathInference: random 3-relation chains, random pairwise goals;
// inference always reproduces the goal's path join.
func TestQuickPathInference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rels := make([]*relation.Relation, 3)
		for k := range rels {
			arity := 1 + r.Intn(2)
			attrs := make([]string, arity)
			for i := range attrs {
				attrs[i] = "R" + strconv.Itoa(k) + "A" + strconv.Itoa(i)
			}
			rel := relation.NewRelation(relation.MustSchema("Rel"+strconv.Itoa(k), attrs...))
			for n := 0; n < 2+r.Intn(3); n++ {
				tp := make(relation.Tuple, arity)
				for i := range tp {
					tp[i] = strconv.Itoa(r.Intn(3))
				}
				rel.Tuples = append(rel.Tuples, tp)
			}
			rels[k] = rel
		}
		p, err := NewPath(rels...)
		if err != nil {
			return false
		}
		goal := make(Goal, p.Steps())
		for s := range goal {
			_, u := p.Step(s)
			var pred predicate.Pred
			for id := 0; id < u.Size(); id++ {
				if r.Intn(3) == 0 {
					pred.Set.Add(id)
				}
			}
			goal[s] = pred
		}
		res, err := Infer(p, func() inference.Strategy { return strategy.BottomUp{} },
			&GoalOracle{Path: p, Goal: goal})
		if err != nil {
			return false
		}
		want, err := Eval(p, goal)
		if err != nil {
			return false
		}
		got, err := Eval(p, res.Preds)
		if err != nil {
			return false
		}
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			for j := range want[i] {
				if want[i][j] != got[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

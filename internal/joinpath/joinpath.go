// Package joinpath extends the two-relation inference to *join paths*
// R1 ⋈θ1 R2 ⋈θ2 … ⋈θk−1 Rk — an extension the paper names explicitly as
// future work (Section 7: "extend our approach … to join paths").
//
// The inference decomposes along the path: each consecutive pair (Ri,
// Ri+1) is an independent two-relation instance, and the user answers
// membership questions about pairs of adjacent tuples. Decomposition is
// sound because a path-join predicate is exactly a tuple of pairwise
// predicates, and a pair of adjacent rows appears in the path join iff it
// appears in the pairwise join and both rows survive the neighbouring
// semijoins — the membership oracle hides none of the pairwise structure.
package joinpath

import (
	"fmt"

	"repro/internal/inference"
	"repro/internal/predicate"
	"repro/internal/relation"
	"repro/internal/sample"
)

// Path is a sequence of ≥ 2 relations with pairwise-disjoint attribute
// sets between neighbours.
type Path struct {
	Relations []*relation.Relation
	// steps caches the adjacent-pair instances.
	steps []*relation.Instance
}

// NewPath validates the chain and builds the adjacent instances.
func NewPath(rels ...*relation.Relation) (*Path, error) {
	if len(rels) < 2 {
		return nil, fmt.Errorf("joinpath: need at least 2 relations, got %d", len(rels))
	}
	p := &Path{Relations: rels}
	for i := 0; i+1 < len(rels); i++ {
		inst, err := relation.NewInstance(rels[i], rels[i+1])
		if err != nil {
			return nil, fmt.Errorf("joinpath: step %d: %w", i+1, err)
		}
		p.steps = append(p.steps, inst)
	}
	return p, nil
}

// Steps returns the number of pairwise joins (len(Relations) − 1).
func (p *Path) Steps() int { return len(p.steps) }

// Step returns the i-th adjacent instance (0-based) and its universe.
func (p *Path) Step(i int) (*relation.Instance, *predicate.Universe) {
	inst := p.steps[i]
	return inst, predicate.NewUniverse(inst)
}

// Goal is a path-join predicate: one pairwise predicate per step.
type Goal []predicate.Pred

// Oracle answers adjacency membership queries: does the pair
// (Relations[step][ri], Relations[step+1][pi]) belong to the user's
// step-th join?
type Oracle interface {
	LabelPair(step, ri, pi int) sample.Label
}

// GoalOracle is the honest oracle for a known path goal.
type GoalOracle struct {
	Path *Path
	Goal Goal
}

// LabelPair implements Oracle.
func (g *GoalOracle) LabelPair(step, ri, pi int) sample.Label {
	inst, u := g.Path.Step(step)
	if g.Goal[step].Selects(u, inst.R.Tuples[ri], inst.P.Tuples[pi]) {
		return sample.Positive
	}
	return sample.Negative
}

// stepOracle adapts Oracle to the single-instance inference interface.
type stepOracle struct {
	inner Oracle
	step  int
}

func (s stepOracle) LabelFor(ri, pi int) sample.Label {
	return s.inner.LabelPair(s.step, ri, pi)
}

// Result reports a path inference run.
type Result struct {
	// Preds holds the inferred pairwise predicates, one per step.
	Preds Goal
	// Interactions is the total number of labels across all steps.
	Interactions int
	// PerStep is the interaction count per step.
	PerStep []int
}

// Infer runs the pairwise inference along the path. newStrategy constructs
// a fresh strategy per step (strategies carry per-instance state).
func Infer(p *Path, newStrategy func() inference.Strategy, orc Oracle) (Result, error) {
	if len(p.steps) == 0 {
		return Result{}, fmt.Errorf("joinpath: path not built with NewPath")
	}
	var res Result
	for i := range p.steps {
		e := inference.New(p.steps[i])
		stepRes, err := inference.Run(e, newStrategy(), stepOracle{inner: orc, step: i}, 0)
		if err != nil {
			return res, fmt.Errorf("joinpath: step %d: %w", i+1, err)
		}
		res.Preds = append(res.Preds, stepRes.Predicate)
		res.PerStep = append(res.PerStep, stepRes.Interactions)
		res.Interactions += stepRes.Interactions
	}
	return res, nil
}

// Eval materializes the path join as index tuples (one index per
// relation), in lexicographic order. Intended for tests and small data.
func Eval(p *Path, g Goal) ([][]int, error) {
	if len(g) != p.Steps() {
		return nil, fmt.Errorf("joinpath: goal has %d predicates, path has %d steps", len(g), p.Steps())
	}
	// Start with all rows of the first relation, extend step by step.
	current := make([][]int, p.Relations[0].Len())
	for i := range current {
		current[i] = []int{i}
	}
	for s := 0; s < p.Steps(); s++ {
		inst, u := p.Step(s)
		var next [][]int
		for _, prefix := range current {
			tR := inst.R.Tuples[prefix[len(prefix)-1]]
			for pi, tP := range inst.P.Tuples {
				if g[s].Selects(u, tR, tP) {
					row := append(append([]int(nil), prefix...), pi)
					next = append(next, row)
				}
			}
		}
		current = next
	}
	return current, nil
}

// Format renders the path predicate with attribute names.
func Format(p *Path, g Goal) string {
	out := ""
	for i, pred := range g {
		_, u := p.Step(i)
		if i > 0 {
			out += "  ⋈  "
		}
		out += pred.Format(u)
	}
	return out
}

package policy

import (
	"reflect"
	"sort"
	"testing"
)

func TestInvalidateSubtreesPureRekey(t *testing.T) {
	c := New(0)
	old := Key{Instance: "inst", Version: 0, Strategy: "BU"}
	nu := Key{Instance: "inst", Version: 1, Strategy: "BU"}
	root := []byte(nil)
	child := AppendEdge(nil, 3, true)
	c.Publish(old, root, 0, Node{Chosen: 3, Pivots: []int{5, 7}, Complete: true})
	c.Publish(old, child, 0, Node{Chosen: -1, Complete: true})

	migrated, retired := c.InvalidateSubtrees(Migration{Old: old, New: nu})
	if migrated != 2 || retired != 0 {
		t.Fatalf("migrated, retired = %d, %d", migrated, retired)
	}
	if _, ok := c.Lookup(old, root, 0); ok {
		t.Error("old-version node still resident")
	}
	n, ok := c.Lookup(nu, root, 0)
	if !ok || n.Chosen != 3 || !reflect.DeepEqual(n.Pivots, []int{5, 7}) || !n.Complete {
		t.Fatalf("re-keyed root = %+v, %v", n, ok)
	}
	if n, ok := c.Lookup(nu, child, 0); !ok || n.Chosen != -1 || !n.Complete {
		t.Fatalf("re-keyed leaf = %+v, %v", n, ok)
	}
	if st := c.Stats(); st.Migrated != 2 || st.Invalidated != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidateSubtreesDropDone(t *testing.T) {
	c := New(0)
	old := Key{Instance: "inst", Strategy: "BU"}
	nu := Key{Instance: "inst", Version: 1, Strategy: "BU"}
	c.Publish(old, nil, 0, Node{Chosen: 2, Pivots: []int{4}, Complete: true})
	c.Publish(old, AppendEdge(nil, 2, false), 0, Node{Chosen: -1})

	// Minted classes: "no question remains" no longer holds and batch scans
	// are no longer exhaustive.
	migrated, retired := c.InvalidateSubtrees(Migration{Old: old, New: nu, DropDone: true})
	if migrated != 1 || retired != 1 {
		t.Fatalf("migrated, retired = %d, %d", migrated, retired)
	}
	n, ok := c.Lookup(nu, nil, 0)
	if !ok || n.Chosen != 2 || n.Complete {
		t.Fatalf("surviving node = %+v, %v (Complete must clear)", n, ok)
	}
	if _, ok := c.Lookup(nu, AppendEdge(nil, 2, false), 0); ok {
		t.Error("Chosen==-1 node survived a DropDone migration")
	}
}

func TestInvalidateSubtreesRemap(t *testing.T) {
	c := New(0)
	old := Key{Instance: "inst", Strategy: "TD"}
	nu := Key{Instance: "inst", Version: 1, Strategy: "TD"}
	// Class 1 retires; classes 2, 3 shift down to 1, 2.
	remap := []int{0, -1, 1, 2}

	c.Publish(old, AppendEdge(nil, 2, true), 5, Node{Chosen: 3, Pivots: []int{0, 2}, Complete: true, RNGAfter: 6})
	c.Publish(old, AppendEdge(nil, 1, true), 0, Node{Chosen: 0})                                       // prefix hits the retired class
	c.Publish(old, nil, 0, Node{Chosen: 1, Pivots: []int{3}})                                          // chosen pick retired
	c.Publish(old, AppendEdge(nil, 0, false), 0, Node{Chosen: 0, Pivots: []int{2, 1}, Complete: true}) // second pivot retired

	migrated, retired := c.InvalidateSubtrees(Migration{Old: old, New: nu, Remap: remap})
	if migrated != 2 || retired != 2 {
		t.Fatalf("migrated, retired = %d, %d", migrated, retired)
	}
	// The fully-live node: prefix, chosen and pivots all rewritten; the RNG
	// position is part of the node address and survives untouched.
	n, ok := c.Lookup(nu, AppendEdge(nil, 1, true), 5)
	if !ok || n.Chosen != 2 || !reflect.DeepEqual(n.Pivots, []int{0, 1}) || !n.Complete || n.RNGAfter != 6 {
		t.Fatalf("remapped node = %+v, %v", n, ok)
	}
	// The pivot-retired node: pivots truncate at the first retired pick and
	// Complete clears (the cut scan is no longer exhaustive).
	n, ok = c.Lookup(nu, AppendEdge(nil, 0, false), 0)
	if !ok || n.Chosen != 0 || !reflect.DeepEqual(n.Pivots, []int{1}) || n.Complete {
		t.Fatalf("pivot-truncated node = %+v, %v", n, ok)
	}
	if _, ok := c.Lookup(nu, AppendEdge(nil, 1, true), 0); ok {
		t.Error("node whose chosen pick retired survived (collides with remapped prefix at different rngPos is fine, same rngPos 0 must miss)")
	}
}

func TestInvalidateDropsWholeTree(t *testing.T) {
	c := New(0)
	k := Key{Instance: "inst", Strategy: "⋉"}
	other := Key{Instance: "inst", Strategy: "BU"}
	c.Publish(k, nil, 0, Node{Chosen: 1})
	c.Publish(k, AppendEdge(nil, 1, true), 0, Node{Chosen: 2})
	c.Publish(other, nil, 0, Node{Chosen: 9})

	if dropped := c.Invalidate(k); dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
	if _, ok := c.Lookup(k, nil, 0); ok {
		t.Error("invalidated node still resident")
	}
	if n, ok := c.Lookup(other, nil, 0); !ok || n.Chosen != 9 {
		t.Error("unrelated tree was touched")
	}
	if st := c.Stats(); st.Invalidated != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTreesListsResidentVersionTrees(t *testing.T) {
	c := New(0)
	c.Publish(Key{Instance: "a", Version: 3, Strategy: "BU"}, nil, 0, Node{})
	c.Publish(Key{Instance: "a", Version: 3, Strategy: "RND", Seed: 7}, nil, 0, Node{})
	c.Publish(Key{Instance: "a", Version: 2, Strategy: "BU"}, nil, 0, Node{}) // older version
	c.Publish(Key{Instance: "b", Version: 3, Strategy: "BU"}, nil, 0, Node{}) // other instance

	keys := c.Trees("a", 3)
	sort.Slice(keys, func(i, j int) bool { return keys[i].Strategy < keys[j].Strategy })
	if len(keys) != 2 || keys[0].Strategy != "BU" || keys[1].Strategy != "RND" || keys[1].Seed != 7 {
		t.Fatalf("Trees = %+v", keys)
	}
}

func TestRemapPrefixRejectsMalformed(t *testing.T) {
	if _, ok := remapPrefix(string([]byte{0x80}), []int{0}); ok {
		t.Error("truncated uvarint accepted")
	}
	if _, ok := remapPrefix(string(AppendEdge(nil, 5, true)), []int{0, 1}); ok {
		t.Error("out-of-range class accepted")
	}
	got, ok := remapPrefix(string(AppendEdge(AppendEdge(nil, 0, true), 2, false)), []int{1, -1, 0})
	if !ok || got != string(AppendEdge(AppendEdge(nil, 1, true), 0, false)) {
		t.Errorf("remap = %x, %v", got, ok)
	}
}
